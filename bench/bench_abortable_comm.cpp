// E6 -- The abortable-register communication mechanisms of Section 6
// (Figures 4 and 5).
//
// Part A: final-value messaging. A writer pushes one value to a reader
// through a SWSR abortable register while both run continuously; we
// sweep the abort-policy aggressiveness and report the delivery latency
// (steps until the reader holds the value) and the abort traffic. The
// adaptive read backoff must beat even the always-abort-on-overlap
// adversary.
//
// Part B: heartbeats. We compare the paper's two-register scheme with
// the rejected one-register scheme against (i) a healthy sender and
// (ii) a sender stuck forever inside a single write. The one-register
// scheme is fooled by (ii) -- "my read aborted" only proves the writer
// is alive, not timely.
#include <memory>

#include "bench_util.hpp"
#include "omega/hb_channel.hpp"
#include "omega/msg_channel.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

sim::Task msg_writer(sim::SimEnv& env, omega::MsgEndpoint<std::int64_t>& ep,
                     const std::vector<std::int64_t>& source) {
  for (;;) {
    co_await omega::write_msgs(env, ep, source);
    co_await env.yield();
  }
}

sim::Task msg_reader(sim::SimEnv& env, omega::MsgEndpoint<std::int64_t>& ep) {
  for (;;) {
    co_await omega::read_msgs(env, ep);
    co_await env.yield();
  }
}

struct DeliveryResult {
  bool delivered = false;
  sim::Step latency = 0;
  std::uint64_t read_aborts = 0;
  std::uint64_t write_aborts = 0;
};

DeliveryResult run_delivery(registers::AbortPolicy* policy,
                            std::uint64_t seed) {
  sim::World world(2, std::make_unique<sim::RandomSchedule>(seed));
  auto eps = omega::make_msg_mesh<std::int64_t>(world, policy, 0);
  std::vector<std::int64_t> source(2, 0);
  source[1] = 4242;
  world.spawn(0, "w", [&](sim::SimEnv& env) {
    return msg_writer(env, eps[0], source);
  });
  world.spawn(1, "r", [&](sim::SimEnv& env) {
    return msg_reader(env, eps[1]);
  });
  DeliveryResult r;
  r.delivered = world.run_until(
      [&] { return eps[1].prev_msg_from[0] == 4242; }, 3000000);
  r.latency = world.now();
  r.read_aborts = world.total_read_aborts();
  r.write_aborts = world.total_write_aborts();
  return r;
}

// -- part B ------------------------------------------------------------------

sim::Task hb_sender(sim::SimEnv& env, omega::HbEndpoint& ep,
                    const std::vector<bool>& dest) {
  for (;;) {
    co_await omega::send_heartbeat(env, ep, dest);
    co_await env.yield();
  }
}

sim::Task hb_receiver(sim::SimEnv& env, omega::HbEndpoint& ep) {
  for (;;) {
    co_await omega::receive_heartbeat(env, ep);
    co_await env.yield();
  }
}

sim::Task single_receiver(sim::SimEnv& env, omega::SingleRegHbReceiver& r) {
  for (;;) {
    co_await omega::receive_heartbeat_single(env, r);
    co_await env.yield();
  }
}

sim::Task stuck_writer(sim::SimEnv& env,
                       sim::AbortableReg<omega::HbCounter> reg) {
  (void)co_await env.write(reg, 1);  // the response step never arrives
}

struct HbResult {
  double two_reg_active_fraction = 0;
  double one_reg_active_fraction = 0;
};

HbResult run_heartbeat(bool sender_stuck, std::uint64_t seed) {
  std::vector<sim::Pid> script;
  script.push_back(0);  // one step for p0: invoke (and stall if stuck)
  sim::World world(2,
                   sender_stuck
                       ? std::unique_ptr<sim::Schedule>(
                             std::make_unique<sim::ScriptedSchedule>(
                                 [] {
                                   std::vector<sim::Pid> s;
                                   s.push_back(0);
                                   for (int i = 0; i < 400000; ++i)
                                     s.push_back(1);
                                   return s;
                                 }()))
                       : std::unique_ptr<sim::Schedule>(
                             std::make_unique<sim::RandomSchedule>(seed)));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto eps = omega::make_hb_mesh(world, &policy);
  omega::SingleRegHbReceiver single{eps[1].in1[0]};
  std::vector<bool> dest(2, true);

  if (sender_stuck) {
    auto reg = eps[0].out1[1];
    world.spawn(0, "stuck", [reg](sim::SimEnv& env) {
      return stuck_writer(env, reg);
    });
  } else {
    world.spawn(0, "hb", [&](sim::SimEnv& env) {
      return hb_sender(env, eps[0], dest);
    });
  }
  world.spawn(1, "recv2", [&](sim::SimEnv& env) {
    return hb_receiver(env, eps[1]);
  });
  world.spawn(1, "recv1", [&](sim::SimEnv& env) {
    return single_receiver(env, single);
  });

  // Sample both verdicts over the run (after a warmup quarter).
  std::uint64_t samples = 0, two_active = 0, one_active = 0;
  const sim::Step total = 400000;
  world.run(total / 4);
  world.add_step_observer([&](sim::Step, sim::Pid) {
    ++samples;
    if (eps[1].active_set[0]) ++two_active;
    if (single.active) ++one_active;
  });
  world.run(total * 3 / 4);
  HbResult r;
  r.two_reg_active_fraction =
      samples ? static_cast<double>(two_active) / samples : 0;
  r.one_reg_active_fraction =
      samples ? static_cast<double>(one_active) / samples : 0;
  return r;
}

}  // namespace

int main() {
  banner("E6a: final-value messaging over abortable registers (Figure 4)",
         "adaptive read backoff delivers the final value even against the "
         "always-abort-on-overlap adversary.");

  Table table_a({"abort policy", "delivered?", "steps to delivery",
                 "read aborts", "write aborts"});
  {
    registers::NeverAbortPolicy p;
    const auto r = run_delivery(&p, 11);
    table_a.row({"never abort (control)", r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  for (double prob : {0.3, 0.6, 0.9}) {
    registers::ProbabilisticAbortPolicy p(21, prob, prob, 0.5);
    const auto r = run_delivery(&p, 13);
    table_a.row({fmt("abort w.p. %.1f", prob), r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  {
    registers::AlwaysAbortPolicy p(
        registers::AlwaysAbortPolicy::Effect::Alternate);
    const auto r = run_delivery(&p, 17);
    table_a.row({"ALWAYS abort on overlap", r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  table_a.print();

  banner("E6b: heartbeat schemes (Figure 5 vs the rejected one-register "
         "scheme)",
         "an abort only proves the writer is alive; one register cannot "
         "distinguish a timely writer from one stuck inside a write.");

  Table table_b({"sender", "2-register: judged active",
                 "1-register: judged active", "correct verdict"});
  {
    const auto r = run_heartbeat(/*sender_stuck=*/false, 23);
    table_b.row({"healthy & timely",
                 fmt("%.0f%% of time", 100 * r.two_reg_active_fraction),
                 fmt("%.0f%% of time", 100 * r.one_reg_active_fraction),
                 "active"});
  }
  {
    const auto r = run_heartbeat(/*sender_stuck=*/true, 29);
    table_b.row({"stuck inside one write forever",
                 fmt("%.0f%% of time", 100 * r.two_reg_active_fraction),
                 fmt("%.0f%% of time", 100 * r.one_reg_active_fraction),
                 "INACTIVE"});
  }
  table_b.print();

  std::printf(
      "\nreading (B): for the stuck sender the one-register receiver stays\n"
      "at ~100%% active (every read overlaps the immortal write and aborts)\n"
      "while the paper's two-register receiver drops to ~0%%: its reads of\n"
      "the second register return the same stale value and expose the "
      "stall.\n");
  return 0;
}
