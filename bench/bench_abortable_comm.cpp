// E6 -- The abortable-register communication mechanisms of Section 6
// (Figures 4 and 5).
//
// Part A: final-value messaging. A writer pushes one value to a reader
// through a SWSR abortable register while both run continuously; we
// sweep the abort-policy aggressiveness and report the delivery latency
// (steps until the reader holds the value) and the abort traffic. The
// adaptive read backoff must beat even the always-abort-on-overlap
// adversary.
//
// Part B: heartbeats. We compare the paper's two-register scheme with
// the rejected one-register scheme against (i) a healthy sender and
// (ii) a sender stuck forever inside a single write. The one-register
// scheme is fooled by (ii) -- "my read aborted" only proves the writer
// is alive, not timely.
//
// Part C (E14): a degraded link. The message register is jammed for a
// window mid-run; we report how long the reader's LinkHealth takes to
// confirm quarantine, how long after the jam lifts the link heals, and
// the delivery throughput before, during and after -- the self-healing
// channel must recover its healthy rate.
#include <memory>

#include "bench_util.hpp"
#include "omega/hb_channel.hpp"
#include "omega/msg_channel.hpp"
#include "registers/reg_faults.hpp"
#include "sim/faultplan.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

sim::Task msg_writer(sim::SimEnv& env, omega::MsgEndpoint<std::int64_t>& ep,
                     const std::vector<std::int64_t>& source) {
  for (;;) {
    co_await omega::write_msgs(env, ep, source);
    co_await env.yield();
  }
}

sim::Task msg_reader(sim::SimEnv& env, omega::MsgEndpoint<std::int64_t>& ep) {
  for (;;) {
    co_await omega::read_msgs(env, ep);
    co_await env.yield();
  }
}

struct DeliveryResult {
  bool delivered = false;
  sim::Step latency = 0;
  std::uint64_t read_aborts = 0;
  std::uint64_t write_aborts = 0;
};

DeliveryResult run_delivery(registers::AbortPolicy* policy,
                            std::uint64_t seed) {
  sim::World world(2, std::make_unique<sim::RandomSchedule>(seed));
  auto eps = omega::make_msg_mesh<std::int64_t>(world, policy, 0);
  std::vector<std::int64_t> source(2, 0);
  source[1] = 4242;
  world.spawn(0, "w", [&](sim::SimEnv& env) {
    return msg_writer(env, eps[0], source);
  });
  world.spawn(1, "r", [&](sim::SimEnv& env) {
    return msg_reader(env, eps[1]);
  });
  DeliveryResult r;
  r.delivered = world.run_until(
      [&] { return eps[1].prev_msg_from[0] == 4242; }, 3000000);
  r.latency = world.now();
  r.read_aborts = world.total_read_aborts();
  r.write_aborts = world.total_write_aborts();
  return r;
}

// -- part B ------------------------------------------------------------------

sim::Task hb_sender(sim::SimEnv& env, omega::HbEndpoint& ep,
                    const std::vector<bool>& dest) {
  for (;;) {
    co_await omega::send_heartbeat(env, ep, dest);
    co_await env.yield();
  }
}

sim::Task hb_receiver(sim::SimEnv& env, omega::HbEndpoint& ep) {
  for (;;) {
    co_await omega::receive_heartbeat(env, ep);
    co_await env.yield();
  }
}

sim::Task single_receiver(sim::SimEnv& env, omega::SingleRegHbReceiver& r) {
  for (;;) {
    co_await omega::receive_heartbeat_single(env, r);
    co_await env.yield();
  }
}

sim::Task stuck_writer(sim::SimEnv& env, omega::HbEndpoint::Reg reg) {
  // The response step never arrives.
  (void)co_await env.write(reg, omega::HbStamp::make(1));
}

struct HbResult {
  double two_reg_active_fraction = 0;
  double one_reg_active_fraction = 0;
};

HbResult run_heartbeat(bool sender_stuck, std::uint64_t seed) {
  std::vector<sim::Pid> script;
  script.push_back(0);  // one step for p0: invoke (and stall if stuck)
  sim::World world(2,
                   sender_stuck
                       ? std::unique_ptr<sim::Schedule>(
                             std::make_unique<sim::ScriptedSchedule>(
                                 [] {
                                   std::vector<sim::Pid> s;
                                   s.push_back(0);
                                   for (int i = 0; i < 400000; ++i)
                                     s.push_back(1);
                                   return s;
                                 }()))
                       : std::unique_ptr<sim::Schedule>(
                             std::make_unique<sim::RandomSchedule>(seed)));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto eps = omega::make_hb_mesh(world, &policy);
  omega::SingleRegHbReceiver single{eps[1].in1[0]};
  std::vector<bool> dest(2, true);

  if (sender_stuck) {
    auto reg = eps[0].out1[1];
    world.spawn(0, "stuck", [reg](sim::SimEnv& env) {
      return stuck_writer(env, reg);
    });
  } else {
    world.spawn(0, "hb", [&](sim::SimEnv& env) {
      return hb_sender(env, eps[0], dest);
    });
  }
  world.spawn(1, "recv2", [&](sim::SimEnv& env) {
    return hb_receiver(env, eps[1]);
  });
  world.spawn(1, "recv1", [&](sim::SimEnv& env) {
    return single_receiver(env, single);
  });

  // Sample both verdicts over the run (after a warmup quarter).
  std::uint64_t samples = 0, two_active = 0, one_active = 0;
  const sim::Step total = 400000;
  world.run(total / 4);
  world.add_step_observer([&](sim::Step, sim::Pid) {
    ++samples;
    if (eps[1].active_set[0]) ++two_active;
    if (single.active) ++one_active;
  });
  world.run(total * 3 / 4);
  HbResult r;
  r.two_reg_active_fraction =
      samples ? static_cast<double>(two_active) / samples : 0;
  r.one_reg_active_fraction =
      samples ? static_cast<double>(one_active) / samples : 0;
  return r;
}

// -- part C ------------------------------------------------------------------

sim::Task counting_writer(sim::SimEnv& env,
                          omega::MsgEndpoint<std::int64_t>& ep) {
  std::vector<std::int64_t> source(2, 0);
  for (;;) {
    // A fresh value per settled write keeps deliveries flowing, so the
    // reader-side throughput is meaningful in every phase.
    if (ep.prev_write_done[1]) ++source[1];
    co_await omega::write_msgs(env, ep, source);
    co_await env.yield();
  }
}

struct DegradedLinkResult {
  sim::Step detect_latency = 0;    ///< jam start -> quarantine confirmed
  sim::Step heal_latency = 0;      ///< jam end -> quarantine lifted
  std::uint64_t aborted_polls = 0; ///< reader polls the jam swallowed
  double healthy_per_1k = 0;       ///< deliveries per 1000 steps, pre-jam
  double jammed_per_1k = 0;        ///< ... inside the jam window
  double healed_per_1k = 0;        ///< ... after the link healed
};

DegradedLinkResult run_degraded_link(std::uint64_t seed) {
  constexpr sim::Step kJamFrom = 200000;
  constexpr sim::Step kJamTo = 500000;
  constexpr sim::Step kEnd = 1100000;

  sim::FaultPlan plan(seed);
  plan.link_fault(0, 1, sim::LinkPart::Msg, registers::RegFaultKind::Jam,
                  kJamFrom, kJamTo);

  registers::NeverAbortPolicy calm;
  registers::RegisterFaultInjector injector(seed, &calm);

  sim::World world(2, std::make_unique<sim::RandomSchedule>(seed));
  omega::LinkHealthOptions health;
  health.suspect_after = 12;
  health.jam_rounds = 8;
  health.heal_rounds = 2;
  health.write_jam_rounds = 64;
  health.probe_backoff = {/*base=*/16, /*cap=*/128, /*free_retries=*/0};
  auto eps = omega::make_msg_mesh<std::int64_t>(world, &injector, 0,
                                                "MsgRegister", health);
  eps[0].refresh_period = 8;
  plan.arm(injector, world);

  world.spawn(0, "w", [&](sim::SimEnv& env) {
    return counting_writer(env, eps[0]);
  });
  world.spawn(1, "r", [&](sim::SimEnv& env) {
    return msg_reader(env, eps[1]);
  });

  sim::Step detect_at = 0, heal_at = 0;
  std::int64_t last_seen = 0;
  std::uint64_t healthy = 0, jammed = 0, healed = 0;
  world.add_step_observer([&](sim::Step now, sim::Pid) {
    const bool q = eps[1].in_health[0].quarantined();
    if (q && detect_at == 0 && now >= kJamFrom) detect_at = now;
    if (!q && detect_at != 0 && heal_at == 0 && now >= kJamTo) heal_at = now;
    if (eps[1].prev_msg_from[0] != last_seen) {
      last_seen = eps[1].prev_msg_from[0];
      if (now < kJamFrom) {
        ++healthy;
      } else if (now < kJamTo) {
        ++jammed;
      } else if (heal_at != 0) {
        ++healed;
      }
    }
  });
  world.run(kEnd);

  DegradedLinkResult r;
  r.detect_latency = detect_at > kJamFrom ? detect_at - kJamFrom : 0;
  r.heal_latency = heal_at > kJamTo ? heal_at - kJamTo : 0;
  r.aborted_polls = eps[1].in_health[0].abort_rounds();
  r.healthy_per_1k = 1000.0 * static_cast<double>(healthy) / kJamFrom;
  r.jammed_per_1k =
      1000.0 * static_cast<double>(jammed) / (kJamTo - kJamFrom);
  if (heal_at != 0 && heal_at < kEnd) {
    r.healed_per_1k =
        1000.0 * static_cast<double>(healed) / (kEnd - heal_at);
  }
  return r;
}

}  // namespace

int main() {
  banner("E6a: final-value messaging over abortable registers (Figure 4)",
         "adaptive read backoff delivers the final value even against the "
         "always-abort-on-overlap adversary.");

  Table table_a({"abort policy", "delivered?", "steps to delivery",
                 "read aborts", "write aborts"});
  {
    registers::NeverAbortPolicy p;
    const auto r = run_delivery(&p, 11);
    table_a.row({"never abort (control)", r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  for (double prob : {0.3, 0.6, 0.9}) {
    registers::ProbabilisticAbortPolicy p(21, prob, prob, 0.5);
    const auto r = run_delivery(&p, 13);
    table_a.row({fmt("abort w.p. %.1f", prob), r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  {
    registers::AlwaysAbortPolicy p(
        registers::AlwaysAbortPolicy::Effect::Alternate);
    const auto r = run_delivery(&p, 17);
    table_a.row({"ALWAYS abort on overlap", r.delivered ? "yes" : "NO",
                 fmt_u(r.latency), fmt_u(r.read_aborts),
                 fmt_u(r.write_aborts)});
  }
  table_a.print();

  banner("E6b: heartbeat schemes (Figure 5 vs the rejected one-register "
         "scheme)",
         "an abort only proves the writer is alive; one register cannot "
         "distinguish a timely writer from one stuck inside a write.");

  Table table_b({"sender", "2-register: judged active",
                 "1-register: judged active", "correct verdict"});
  {
    const auto r = run_heartbeat(/*sender_stuck=*/false, 23);
    table_b.row({"healthy & timely",
                 fmt("%.0f%% of time", 100 * r.two_reg_active_fraction),
                 fmt("%.0f%% of time", 100 * r.one_reg_active_fraction),
                 "active"});
  }
  {
    const auto r = run_heartbeat(/*sender_stuck=*/true, 29);
    table_b.row({"stuck inside one write forever",
                 fmt("%.0f%% of time", 100 * r.two_reg_active_fraction),
                 fmt("%.0f%% of time", 100 * r.one_reg_active_fraction),
                 "INACTIVE"});
  }
  table_b.print();

  std::printf(
      "\nreading (B): for the stuck sender the one-register receiver stays\n"
      "at ~100%% active (every read overlaps the immortal write and aborts)\n"
      "while the paper's two-register receiver drops to ~0%%: its reads of\n"
      "the second register return the same stale value and expose the "
      "stall.\n");

  banner("E14: degraded link -- detection latency and post-recovery "
         "throughput",
         "a jammed message register is confirmed by the reader's health "
         "score at a bounded polling cost, and the link recovers its "
         "healthy delivery rate after the jam lifts.");

  Table table_c({"seed", "detect latency", "heal latency", "aborted polls",
                 "healthy del/1k", "jammed del/1k", "healed del/1k"});
  for (std::uint64_t seed : {31, 37, 41}) {
    const auto r = run_degraded_link(seed);
    table_c.row({fmt_u(seed), fmt_u(r.detect_latency),
                 fmt_u(r.heal_latency), fmt_u(r.aborted_polls),
                 fmt("%.1f", r.healthy_per_1k), fmt("%.1f", r.jammed_per_1k),
                 fmt("%.1f", r.healed_per_1k)});
  }
  table_c.print();

  std::printf(
      "\nreading (C): detect latency counts steps from jam start to the\n"
      "reader's quarantine confirmation (a full abort streak, paced by the\n"
      "adaptive read backoff); aborted polls are the reads the jam\n"
      "swallowed -- bounded, because readTimeout saturates at its cap\n"
      "instead of growing forever. The healed rate matching the healthy\n"
      "rate is the self-healing acceptance: quarantine costs nothing once\n"
      "the medium recovers.\n");
  return 0;
}
