// Simulator throughput (google-benchmark): steps/second of the
// deterministic kernel across representative configurations. Not a
// paper experiment -- an engineering dial that tells users how many
// model steps their budget buys (all sim-based experiments are priced
// in steps).
#include <benchmark/benchmark.h>

#include "bench_json_gbench.hpp"

#include <memory>

#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace {

using namespace tbwf;

sim::Task spin(sim::SimEnv& env) {
  for (;;) co_await env.yield();
}

sim::Task hammer(sim::SimEnv& env, sim::AtomicReg<std::int64_t> reg) {
  for (;;) {
    const auto v = co_await env.read(reg);
    co_await env.write(reg, v + 1);
  }
}

void BM_YieldOnlySteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::World world(n, std::make_unique<sim::RoundRobinSchedule>());
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "spin", [](sim::SimEnv& env) { return spin(env); });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_RegisterOpSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::World world(n, std::make_unique<sim::RoundRobinSchedule>());
  auto reg = world.make_atomic<std::int64_t>("r", 0);
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "rw", [reg](sim::SimEnv& env) {
      return hammer(env, reg);
    });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_FullTbwfStackSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  sim::World world(n,
                   std::make_unique<sim::TimelinessSchedule>(specs, 1));
  core::TbwfSystem<qa::Counter> sys(world, 0,
                                    core::OmegaBackend::AtomicRegisters);
  struct Worker {
    static sim::Task run(sim::SimEnv& env,
                         core::TbwfObject<qa::Counter>& obj) {
      for (;;) (void)co_await obj.invoke(env, qa::Counter::Op{1});
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](sim::SimEnv& env) {
      return Worker::run(env, sys.object());
    });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

}  // namespace

BENCHMARK(BM_YieldOnlySteps)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_RegisterOpSteps)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_FullTbwfStackSteps)->Arg(2)->Arg(4)->Arg(8);

int main(int argc, char** argv) {
  return tbwf::bench::run_gbench_with_json(argc, argv, "sim_throughput");
}
