// Simulator throughput (google-benchmark): steps/second of the
// deterministic kernel across representative configurations. Not a
// paper experiment -- an engineering dial that tells users how many
// model steps their budget buys (all sim-based experiments are priced
// in steps).
//
// E19 (batching ablation, sim side): the post hook additionally runs
// DETERMINISTIC saturating workloads -- batched announce/combine/help
// engine vs the plain per-op QA construction -- for a fixed step
// budget and records ops completed per budget (gated, unit "rounds")
// and shared-register writes per op (the Alistarh et al. lower-bound
// axis, informational). Unbatched rows carry variant "before".
#include <benchmark/benchmark.h>

#include "bench_json_gbench.hpp"

#include <memory>

#include "core/tbwf.hpp"
#include "qa/qa_batched.hpp"
#include "qa/qa_universal.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace {

using namespace tbwf;

sim::Task spin(sim::SimEnv& env) {
  for (;;) co_await env.yield();
}

sim::Task hammer(sim::SimEnv& env, sim::AtomicReg<std::int64_t> reg) {
  for (;;) {
    const auto v = co_await env.read(reg);
    co_await env.write(reg, v + 1);
  }
}

void BM_YieldOnlySteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::World world(n, std::make_unique<sim::RoundRobinSchedule>());
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "spin", [](sim::SimEnv& env) { return spin(env); });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_RegisterOpSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::World world(n, std::make_unique<sim::RoundRobinSchedule>());
  auto reg = world.make_atomic<std::int64_t>("r", 0);
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "rw", [reg](sim::SimEnv& env) {
      return hammer(env, reg);
    });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

void BM_FullTbwfStackSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  sim::World world(n,
                   std::make_unique<sim::TimelinessSchedule>(specs, 1));
  core::TbwfSystem<qa::Counter> sys(world, 0,
                                    core::OmegaBackend::AtomicRegisters);
  struct Worker {
    static sim::Task run(sim::SimEnv& env,
                         core::TbwfObject<qa::Counter>& obj) {
      for (;;) (void)co_await obj.invoke(env, qa::Counter::Op{1});
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](sim::SimEnv& env) {
      return Worker::run(env, sys.object());
    });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

// Saturating multi-producer batched engine: steps/second of the whole
// announce/combine/help machinery under contention.
void BM_BatchedEngineSteps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::World world(n, std::make_unique<sim::RandomSchedule>(1));
  qa::BatchedQaUniversal<qa::Counter> obj(world, 0);
  struct Worker {
    static sim::Task run(sim::SimEnv& env,
                         qa::BatchedQaUniversal<qa::Counter>& obj) {
      for (;;) (void)co_await obj.apply(env, qa::Counter::Op{1});
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](sim::SimEnv& env) {
      return Worker::run(env, obj);
    });
  }
  for (auto _ : state) {
    world.run(1000);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}

// -- E19 deterministic ablation rows ------------------------------------------

constexpr sim::Step kBudget = 60000;

struct AblationPoint {
  std::uint64_t ops = 0;
  std::uint64_t writes = 0;
};

AblationPoint run_batched(int n) {
  sim::World world(n, std::make_unique<sim::RandomSchedule>(7));
  qa::BatchedQaUniversal<qa::Counter> obj(world, 0);
  std::vector<std::uint64_t> done(n, 0);
  struct Worker {
    static sim::Task run(sim::SimEnv& env,
                         qa::BatchedQaUniversal<qa::Counter>& obj,
                         std::uint64_t& done) {
      for (;;) {
        (void)co_await obj.apply(env, qa::Counter::Op{1});
        ++done;
      }
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, p](sim::SimEnv& env) {
      return Worker::run(env, obj, done[static_cast<std::size_t>(p)]);
    });
  }
  world.run(kBudget);
  AblationPoint point;
  for (sim::Pid p = 0; p < n; ++p) {
    point.ops += done[static_cast<std::size_t>(p)];
    point.writes += obj.shared_writes(p);
  }
  return point;
}

AblationPoint run_unbatched(int n) {
  sim::World world(n, std::make_unique<sim::RandomSchedule>(7));
  qa::QaUniversal<qa::Counter> obj(world, 0);
  std::vector<std::uint64_t> done(n, 0);
  struct Worker {
    static sim::Task run(sim::SimEnv& env, qa::QaUniversal<qa::Counter>& obj,
                         std::uint64_t& done) {
      for (;;) {
        auto r = co_await obj.invoke(env, qa::Counter::Op{1});
        while (r.bottom()) {
          r = co_await obj.query(env);
          if (r.bottom()) co_await env.yield();
        }
        if (r.ok()) ++done;
      }
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, p](sim::SimEnv& env) {
      return Worker::run(env, obj, done[static_cast<std::size_t>(p)]);
    });
  }
  world.run(kBudget);
  AblationPoint point;
  for (sim::Pid p = 0; p < n; ++p) {
    point.ops += done[static_cast<std::size_t>(p)];
    point.writes += obj.publishes(p);
  }
  return point;
}

void derive_ablation_rows(tbwf::bench::JsonReporter& json,
                          const std::vector<tbwf::bench::GBenchRow>&) {
  using tbwf::bench::fmt_f;
  using tbwf::bench::fmt_i;
  using tbwf::bench::fmt_u;
  for (const int n : {2, 4, 8}) {
    const AblationPoint batched = run_batched(n);
    const AblationPoint unbatched = run_unbatched(n);
    const std::string budget = fmt_u(kBudget);
    json.row("ops_per_budget", static_cast<double>(batched.ops), "rounds",
             /*seed=*/7,
             {{"engine", "batched"}, {"n", fmt_i(n)}, {"steps", budget}});
    json.row("ops_per_budget", static_cast<double>(unbatched.ops), "rounds",
             /*seed=*/7,
             {{"engine", "unbatched"}, {"n", fmt_i(n)}, {"steps", budget},
              {"variant", "before"}});
    if (batched.ops > 0) {
      json.row("writes_per_op",
               static_cast<double>(batched.writes) /
                   static_cast<double>(batched.ops),
               "writes/op", /*seed=*/7,
               {{"engine", "batched"}, {"n", fmt_i(n)}, {"steps", budget}});
    }
    if (unbatched.ops > 0) {
      json.row("writes_per_op",
               static_cast<double>(unbatched.writes) /
                   static_cast<double>(unbatched.ops),
               "writes/op", /*seed=*/7,
               {{"engine", "unbatched"}, {"n", fmt_i(n)}, {"steps", budget},
                {"variant", "before"}});
    }
  }
}

}  // namespace

BENCHMARK(BM_YieldOnlySteps)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_RegisterOpSteps)->Arg(1)->Arg(4)->Arg(16);
BENCHMARK(BM_FullTbwfStackSteps)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_BatchedEngineSteps)->Arg(2)->Arg(4)->Arg(8);

int main(int argc, char** argv) {
  return tbwf::bench::run_gbench_with_json(argc, argv, "sim_throughput", {},
                                           derive_ablation_rows);
}
