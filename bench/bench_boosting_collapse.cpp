// E9 -- Boosting is not gracefully degrading (Sections 1.2 and 2).
//
// Timeline view of the failure E1 aggregates: n processes issue ops
// forever; at a chosen moment the flaky process stalls while holding
// the booster's panic token (realized as a crash -- the limit case of
// untimeliness; the booster has no timeout so any sufficiently long
// stall behaves identically). We chart completions of the TIMELY
// processes per window, before and after, for the boosted baseline,
// the TBWF stack, and the lock-free CAS baseline.
#include <memory>

#include "baselines/boosted_wf.hpp"
#include "baselines/lf_universal.hpp"
#include "bench_util.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kN = 4;
constexpr sim::Step kWindow = 500000;
constexpr int kWindowsAfter = 6;

std::vector<std::uint64_t> windowed(const core::OpLog& log, sim::Step upto,
                                    int windows) {
  std::vector<std::uint64_t> out(windows, 0);
  for (sim::Pid p = 0; p < 3; ++p) {  // timely survivors only
    for (const auto s : log.completions[p]) {
      if (s >= upto) continue;
      const auto w = s / kWindow;
      if (w < out.size()) ++out[w];
    }
  }
  return out;
}

std::string timeline_cell(const std::vector<std::uint64_t>& xs,
                          std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < xs.size(); ++i) {
    if (i > from) out += " ";
    out += fmt_u(xs[i]);
  }
  return out;
}

}  // namespace

int main() {
  banner("E9: one untimely process vs the boosting baselines",
         "with [7]/[11]-style boosting, one stalled process freezes all "
         "timely processes; TBWF and lock-free CAS keep them going.");

  auto specs = sim::uniform_specs(kN, sim::ActivitySpec::timely(4 * kN));

  // --- boosted baseline: capture the token, then stall the owner -------
  sim::World wb(kN, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  baselines::BoostedWf<qa::Counter> boosted(wb, 0);
  for (sim::Pid p = 0; p < kN; ++p) {
    wb.spawn(p, "w", [&](sim::SimEnv& env) {
      return counter_worker(env, boosted);
    });
  }
  const bool captured = wb.run_until(
      [&] {
        return wb.peek(boosted.token_handle()).owner == 3 &&
               wb.peek(boosted.panic_handle());
      },
      30000000, 1);
  const sim::Step stall_at_b = wb.now();
  if (captured) wb.crash(3);
  wb.run(kWindowsAfter * kWindow);

  // --- TBWF under the same event ----------------------------------------
  sim::World wt(kN, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  core::TbwfSystem<qa::Counter> tb(wt, 0,
                                   core::OmegaBackend::AtomicRegisters);
  for (sim::Pid p = 0; p < kN; ++p) {
    wt.spawn(p, "w", [&](sim::SimEnv& env) {
      return counter_worker(env, tb.object());
    });
  }
  wt.run(stall_at_b);
  wt.crash(3);
  wt.run(kWindowsAfter * kWindow);

  // --- lock-free CAS under the same event ---------------------------------
  sim::World wl(kN, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  baselines::LfUniversal<qa::Counter> lf(wl, 0);
  for (sim::Pid p = 0; p < kN; ++p) {
    wl.spawn(p, "w", [&](sim::SimEnv& env) {
      return counter_worker(env, lf);
    });
  }
  wl.run(stall_at_b);
  wl.crash(3);
  wl.run(kWindowsAfter * kWindow);

  std::printf("\np3 stalls (holding the booster's panic token) at step "
              "%llu.\ncompletions of the three TIMELY processes per %llu-"
              "step window AFTER the stall:\n\n",
              static_cast<unsigned long long>(stall_at_b),
              static_cast<unsigned long long>(kWindow));

  // Use only windows that completed before the run ended (a trailing
  // partial window would read as a spurious freeze).
  const std::size_t first_after = stall_at_b / kWindow + 1;
  const int total_windows = static_cast<int>(wb.now() / kWindow);
  Table table({"system", "timely ops per window (after the stall ->)",
               "verdict"});
  {
    const auto xs = windowed(boosted.log(), wb.now(), total_windows);
    const bool frozen = xs.back() == 0;
    table.row({"boosted-WF [7,11]", timeline_cell(xs, first_after),
               frozen ? "FROZEN (total loss of liveness)" : "survived (!)"});
  }
  {
    const auto xs = windowed(tb.object().log(), wt.now(), total_windows);
    table.row({"TBWF (this paper)", timeline_cell(xs, first_after),
               xs.back() > 0 ? "timely processes unaffected" : "frozen (!)"});
  }
  {
    const auto xs = windowed(lf.log(), wl.now(), total_windows);
    table.row({"lock-free CAS", timeline_cell(xs, first_after),
               xs.back() > 0 ? "unaffected (needs CAS)" : "frozen (!)"});
  }
  table.print();

  std::printf(
      "\nreading: the boosting family's correctness argument needs EVERY\n"
      "process to be timely; a single partial loss of synchrony becomes a\n"
      "total loss of liveness. TBWF pays a constant-factor throughput tax\n"
      "instead, and needs nothing stronger than (abortable) registers.\n");
  return 0;
}
