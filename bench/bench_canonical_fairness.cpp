// E8 -- Canonical use of Omega-Delta (Definition 6, Theorem 7, and the
// closing discussion of Section 7).
//
// All-timely runs of the TBWF object with and without Figure 7's line 2
// (wait until LEADER != self before re-candidating). With the wait,
// leadership rotates and the object is shared fairly; without it, the
// incumbent re-candidates before Omega-Delta can observe its retirement,
// keeps its low counter, and monopolizes the object.
#include <memory>

#include "bench_util.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

struct FairnessResult {
  std::vector<std::uint64_t> suffix_ops;
  double jain = 0;
  std::uint64_t total = 0;
};

FairnessResult run(int n, bool canonical, std::uint64_t seed,
                   sim::Step steps) {
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  core::TbwfSystem<qa::Counter> sys(world, 0,
                                    core::OmegaBackend::AtomicRegisters);
  sys.object().set_canonical(canonical);
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](sim::SimEnv& env) {
      return counter_worker(env, sys.object());
    });
  }
  world.run(steps);
  FairnessResult r;
  r.suffix_ops = completions_since(sys.object().log(), steps / 2);
  r.jain = util::jain_fairness(r.suffix_ops);
  r.total = sum_over(r.suffix_ops);
  return r;
}

std::string dist_cell(const std::vector<std::uint64_t>& xs) {
  std::string out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += "/";
    out += fmt_u(xs[i]);
  }
  return out;
}

}  // namespace

int main() {
  banner("E8: the canonical wait is load-bearing (Figure 7 line 2)",
         "without the canonical use of Omega-Delta, one timely process "
         "monopolizes the object and starves the other timely processes.");

  Table table({"n", "mode", "suffix ops per process", "Jain fairness",
               "suffix total"});
  for (int n : {3, 4, 6, 8}) {
    const sim::Step steps = 2000000ULL * n;
    {
      const auto r = run(n, true, 70 + n, steps);
      table.row({fmt_i(n), "canonical", dist_cell(r.suffix_ops),
                 fmt_f(r.jain, 3), fmt_u(r.total)});
    }
    {
      const auto r = run(n, false, 70 + n, steps);
      table.row({fmt_i(n), "NON-canonical", dist_cell(r.suffix_ops),
                 fmt_f(r.jain, 3), fmt_u(r.total)});
    }
  }
  table.print();

  std::printf(
      "\nreading: canonical fairness stays near 1.0 (perfect sharing);\n"
      "non-canonical fairness collapses towards 1/n as one process hogs\n"
      "the leadership. Note the monopolist often posts a HIGHER total --\n"
      "monopolization is cheap for the monopolist, which is exactly why\n"
      "the discipline has to be imposed by the transformation.\n");
  return 0;
}
