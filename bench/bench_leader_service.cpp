// Experiment E16: long-haul leader-service soak with joint SLO +
// progress grading, and the advice-vs-probe routing ablation.
//
// Drives the soak harness (src/soak/soak.hpp) on both backends --
// deterministic simulator (Omega-Delta on abortable registers) and real
// threads (LeaseElector) -- in both routing modes, prints each run's
// SLO report next to its TBWF conformance verdict, and emits
// BENCH_leader_service.json (tbwf-bench-v1) for the CI regression gate.
//
// Gating discipline: only the simulator rows carry gated units ("steps"
// latencies, "bool" verdicts) -- they are bit-deterministic per seed, so
// any drift is a real behavior change. The rt rows are wall-clock on a
// shared CI box (and run under sanitizers in the smoke job), so they
// are emitted with informational units and enforced here only at the
// progress axis via the exit code.
//
// Usage: bench_leader_service [--quick] [--seed=N] [--backend=sim|rt|both]
//        [--membership] [--clock-faults]
//
// --membership switches both backends from the static/flicker group to
// generated epoch churn (seed-replayable join/leave/replace events with
// fenced reconfiguration and per-epoch conformance grades). Every row
// carries a "membership" config key so churn rows and static rows can
// never be compared against each other by the regression gate.
//
// --clock-faults adds generated per-seat clock faults (skew / drift /
// jumps / freezes through the supervisor's FaultClock) to the rt runs
// and arms the service's drift-margin guard; the simulator has no
// wall clock, so its runs are unchanged. Every row carries a
// "clock_faults" config key for the same never-cross-compare reason.
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "soak/soak.hpp"

namespace {

using namespace tbwf;

double per_million(double part, double whole) {
  return whole <= 0 ? 0 : 1e6 * part / whole;
}

double probes_per_request(const soak::ServiceStats& stats) {
  return stats.submitted == 0
             ? 0
             : static_cast<double>(stats.route_probes) /
                   static_cast<double>(stats.submitted);
}

struct Outcome {
  int runs = 0;
  int progress_failures = 0;
  int sim_joint_failures = 0;
  int rt_slo_failures = 0;
};

void run_sim(bench::JsonReporter& json, bench::Table& table, Outcome& outcome,
             std::uint64_t seed, bool quick, bool membership,
             bool clock_faults, soak::RouteMode mode) {
  soak::SimSoakOptions options = quick ? soak::SimSoakOptions::quick(seed)
                                       : soak::SimSoakOptions::full(seed);
  options.service.route = mode;
  if (membership) options.membership = soak::MembershipMode::kEpochChurn;
  json.set_meta("sim_n", std::to_string(options.n));
  const soak::SimSoakResult result = soak::run_sim_soak(options);

  const std::string mode_name = soak::to_string(mode);
  std::printf("\n--- sim / %s / seed %llu ---\n", mode_name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("%s\n", result.summary().c_str());
  std::printf("%s", result.slo.summary().c_str());

  const std::vector<std::pair<std::string, std::string>> config = {
      {"backend", "sim"},
      {"mode", mode_name},
      {"membership", membership ? "epoch-churn" : "static"},
      {"clock_faults", clock_faults ? "on" : "off"}};
  const soak::ServiceStats& stats = result.stats;
  json.row("requests", static_cast<double>(stats.submitted), "req", seed,
           config);
  json.row("completed_ppm", per_million(static_cast<double>(stats.completed),
                                        static_cast<double>(stats.submitted)),
           "ppm", seed, config);
  json.row("route_p99", static_cast<double>(stats.route.p99()), "steps", seed,
           config);
  json.row("commit_p99", static_cast<double>(stats.commit.p99()), "steps",
           seed, config);
  json.row("route_probes_per_req", probes_per_request(stats), "probes/req",
           seed, config);
  json.row("unavailable_ppm",
           1e6 * result.availability.unavailable_fraction(), "ppm", seed,
           config);
  json.row("joint_ok", result.joint.ok() ? 1.0 : 0.0, "bool", seed, config);

  table.row({"sim", mode_name, bench::fmt_u(stats.submitted),
             bench::fmt_u(stats.completed),
             bench::fmt_u(stats.route.p99()),
             bench::fmt_u(stats.commit.p99()),
             bench::fmt_f(probes_per_request(stats)),
             bench::fmt_f(100.0 * result.availability.unavailable_fraction()),
             result.joint.ok() ? "ok" : "FAIL"});

  ++outcome.runs;
  if (!result.progress.ok) ++outcome.progress_failures;
  if (!result.joint.ok()) ++outcome.sim_joint_failures;
}

void run_rt(bench::JsonReporter& json, bench::Table& table, Outcome& outcome,
            std::uint64_t seed, bool quick, bool membership,
            bool clock_faults, soak::RouteMode mode) {
  soak::RtSoakOptions options = quick ? soak::RtSoakOptions::quick(seed)
                                      : soak::RtSoakOptions::full(seed);
  options.service.route = mode;
  options.membership_churn = membership;
  options.clock_faults = clock_faults;
  json.set_meta("rt_nthreads", std::to_string(options.nthreads));
  const soak::RtSoakResult result = soak::run_rt_soak(options);

  const std::string mode_name = soak::to_string(mode);
  std::printf("\n--- rt / %s / seed %llu ---\n", mode_name.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("%s\n", result.summary().c_str());
  std::printf("%s", result.slo.summary().c_str());

  const std::vector<std::pair<std::string, std::string>> config = {
      {"backend", "rt"},
      {"mode", mode_name},
      {"membership", membership ? "epoch-churn" : "static"},
      {"clock_faults", clock_faults ? "on" : "off"}};
  const soak::ServiceStats& stats = result.stats;
  const double seconds = static_cast<double>(result.run_end_ns) / 1e9;
  json.row("requests", static_cast<double>(stats.submitted), "req", seed,
           config);
  json.row("throughput",
           seconds <= 0 ? 0 : static_cast<double>(stats.completed) / seconds,
           "req/s", seed, config);
  json.row("route_p99_us", static_cast<double>(stats.route.p99()) / 1e3,
           "us", seed, config);
  json.row("commit_p99_us", static_cast<double>(stats.commit.p99()) / 1e3,
           "us", seed, config);
  json.row("route_probes_per_req", probes_per_request(stats), "probes/req",
           seed, config);
  json.row("unavailable_ppm",
           1e6 * result.availability.unavailable_fraction(), "ppm", seed,
           config);
  // "flag", not "bool": wall-clock SLO grades on a shared (sanitized)
  // CI box are informational; the progress axis gates via exit code.
  json.row("joint_ok", result.joint.ok() ? 1.0 : 0.0, "flag", seed, config);
  json.row("clock_degraded_seats",
           static_cast<double>(result.progress.clock_degraded.size()),
           "flag", seed, config);

  table.row({"rt", mode_name, bench::fmt_u(stats.submitted),
             bench::fmt_u(stats.completed),
             bench::fmt_u(stats.route.p99() / 1000),
             bench::fmt_u(stats.commit.p99() / 1000),
             bench::fmt_f(probes_per_request(stats)),
             bench::fmt_f(100.0 * result.availability.unavailable_fraction()),
             result.joint.ok() ? "ok" : "FAIL"});

  ++outcome.runs;
  if (!result.progress.ok) ++outcome.progress_failures;
  if (!result.slo.ok) ++outcome.rt_slo_failures;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool membership = false;
  bool clock_faults = false;
  std::uint64_t seed = 1;
  std::string backend = "both";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--membership") {
      membership = true;
    } else if (arg == "--clock-faults") {
      clock_faults = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--backend=", 0) == 0) {
      backend = arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--seed=N] [--backend=sim|rt|both] "
                   "[--membership] [--clock-faults]\n",
                   argv[0]);
      return 2;
    }
  }
  const bool want_sim = backend == "sim" || backend == "both";
  const bool want_rt = backend == "rt" || backend == "both";
  if (!want_sim && !want_rt) {
    std::fprintf(stderr, "unknown --backend=%s\n", backend.c_str());
    return 2;
  }

  bench::banner(
      "E16: leader-service soak, SLO x progress, advice-vs-probe routing",
      "a soaked leader service is graded on two independent axes, and "
      "advice-mode routing measurably cuts route cost");

  bench::JsonReporter json("leader_service");
  json.set_config("variant", "after");
  json.set_config("profile", quick ? "quick" : "full");
  json.set_meta("backend_filter", backend);
  json.set_meta("membership", membership ? "epoch-churn" : "static");
  json.set_meta("clock_faults", clock_faults ? "on" : "off");

  bench::Table table({"backend", "mode", "submitted", "completed",
                      "route_p99", "commit_p99", "probes/req", "unavail%",
                      "joint"});
  Outcome outcome;
  for (const soak::RouteMode mode :
       {soak::RouteMode::kProbe, soak::RouteMode::kAdvice}) {
    if (want_sim) {
      run_sim(json, table, outcome, seed, quick, membership, clock_faults,
              mode);
    }
    if (want_rt) {
      run_rt(json, table, outcome, seed, quick, membership, clock_faults,
             mode);
    }
  }

  std::printf("\n(sim latencies in steps; rt latencies in us)\n");
  table.print();
  json.write_file(bench::bench_json_path("BENCH_leader_service.json"));

  if (outcome.progress_failures > 0 || outcome.sim_joint_failures > 0) {
    std::fprintf(stderr,
                 "FAIL: %d/%d runs failed progress, %d sim runs failed the "
                 "joint verdict\n",
                 outcome.progress_failures, outcome.runs,
                 outcome.sim_joint_failures);
    return 1;
  }
  if (outcome.rt_slo_failures > 0) {
    std::printf("note: %d rt run(s) missed the SLO budget (wall-clock "
                "grade; not gating)\n",
                outcome.rt_slo_failures);
  }
  return 0;
}
