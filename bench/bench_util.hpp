// Shared helpers for the experiment harnesses: fixed-width table
// printing and common workload drivers. Each bench binary regenerates
// one experiment row-set recorded in EXPERIMENTS.md.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::bench {

inline void banner(const std::string& title, const std::string& claim) {
  std::printf("\n==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================"
              "================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += std::string(width[c], '-') + "  ";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

inline std::string fmt_u(std::uint64_t v) {
  return fmt("%llu", static_cast<unsigned long long>(v));
}
inline std::string fmt_i(std::int64_t v) {
  return fmt("%lld", static_cast<long long>(v));
}
inline std::string fmt_f(double v, int digits = 2) {
  return fmt("%.*f", digits, v);
}

/// Endless counter-increment worker usable with any object exposing
/// Co<Result> invoke(env, Counter::Op).
template <class Obj>
sim::Task counter_worker(sim::SimEnv& env, Obj& obj) {
  for (;;) {
    (void)co_await obj.invoke(env, qa::Counter::Op{1});
  }
}

/// Completions per process restricted to steps >= cutoff.
inline std::vector<std::uint64_t> completions_since(const core::OpLog& log,
                                                    sim::Step cutoff) {
  std::vector<std::uint64_t> out;
  for (const auto& cs : log.completions) {
    std::uint64_t k = 0;
    for (const auto s : cs) {
      if (s >= cutoff) ++k;
    }
    out.push_back(k);
  }
  return out;
}

inline std::uint64_t min_over(const std::vector<std::uint64_t>& xs,
                              const std::vector<sim::Pid>& pids) {
  std::uint64_t best = ~0ULL;
  for (const auto p : pids) best = std::min(best, xs[p]);
  return pids.empty() ? 0 : best;
}

inline std::uint64_t sum_over(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  for (const auto x : xs) total += x;
  return total;
}

}  // namespace tbwf::bench
