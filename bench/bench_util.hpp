// Shared helpers for the experiment harnesses: fixed-width table
// printing and common workload drivers. Each bench binary regenerates
// one experiment row-set recorded in EXPERIMENTS.md.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::bench {

inline void banner(const std::string& title, const std::string& claim) {
  std::printf("\n==============================================================="
              "=================\n");
  std::printf("%s\n", title.c_str());
  std::printf("claim: %s\n", claim.c_str());
  std::printf("================================================================"
              "================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    // Size the width vector to the longest ROW, not just the header
    // count: a row with trailing extra cells (common for annotated
    // last columns) must print them, not silently truncate -- and
    // print_row below indexes width[] for every cell it prints.
    std::size_t ncols = headers_.size();
    for (const auto& r : rows_) ncols = std::max(ncols, r.size());
    std::vector<std::size_t> width(ncols, 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(width[c]), cells[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string sep;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      sep += std::string(width[c], '-') + "  ";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

inline std::string fmt_u(std::uint64_t v) {
  return fmt("%llu", static_cast<unsigned long long>(v));
}
inline std::string fmt_i(std::int64_t v) {
  return fmt("%lld", static_cast<long long>(v));
}
inline std::string fmt_f(double v, int digits = 2) {
  return fmt("%.*f", digits, v);
}

/// Machine-readable experiment output: one JSON document per bench
/// binary, schema "tbwf-bench-v1":
///   {"experiment": "<id>", "schema": "tbwf-bench-v1",
///    "rows": [{"config": {"<k>": "<v>", ...}, "metric": "<name>",
///              "value": <number>, "unit": "<unit>", "seed": <u64>}]}
/// Config values are strings. Defaults installed with set_config apply
/// to every subsequent row; per-row pairs override by key. The files
/// land at bench_json_path() (BENCH_<id>.json) and feed the CI
/// bench-smoke regression gate plus the EXPERIMENTS.md tables.
class JsonReporter {
 public:
  explicit JsonReporter(std::string experiment)
      : experiment_(std::move(experiment)) {}

  /// Sticky config key applied to every row added after this call.
  void set_config(const std::string& key, const std::string& value) {
    upsert(defaults_, key, value);
  }

  /// Extra run-metadata key stamped into the document's top-level
  /// "meta" object (overrides the automatic keys on collision).
  void set_meta(const std::string& key, const std::string& value) {
    upsert(meta_, key, value);
  }

  void row(const std::string& metric, double value, const std::string& unit,
           std::uint64_t seed,
           const std::vector<std::pair<std::string, std::string>>& config =
               {}) {
    Row r;
    r.config = defaults_;
    for (const auto& kv : config) upsert(r.config, kv.first, kv.second);
    r.metric = metric;
    r.value = value;
    r.unit = unit;
    r.seed = seed;
    rows_.push_back(std::move(r));
  }

  std::string str() const {
    std::string out = "{\n  \"experiment\": " + quote(experiment_) +
                      ",\n  \"schema\": \"tbwf-bench-v1\",\n  \"meta\": {";
    const Config meta = stamped_meta();
    for (std::size_t i = 0; i < meta.size(); ++i) {
      if (i > 0) out += ", ";
      out += quote(meta[i].first) + ": " + quote(meta[i].second);
    }
    out += "},\n  \"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out += (i == 0 ? "\n" : ",\n");
      out += "    {\"config\": {";
      for (std::size_t c = 0; c < r.config.size(); ++c) {
        if (c > 0) out += ", ";
        out += quote(r.config[c].first) + ": " + quote(r.config[c].second);
      }
      out += "}, \"metric\": " + quote(r.metric);
      out += ", \"value\": " + fmt("%.17g", r.value);
      out += ", \"unit\": " + quote(r.unit);
      out += ", \"seed\": " + fmt_u(r.seed) + "}";
    }
    out += "\n  ]\n}\n";
    return out;
  }

  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string body = str();
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  using Config = std::vector<std::pair<std::string, std::string>>;
  struct Row {
    Config config;
    std::string metric;
    double value = 0;
    std::string unit;
    std::uint64_t seed = 0;
  };

  static void upsert(Config& config, const std::string& key,
                     const std::string& value) {
    for (auto& kv : config) {
      if (kv.first == key) {
        kv.second = value;
        return;
      }
    }
    config.emplace_back(key, value);
  }

  /// Automatic run metadata: the producing commit (CI exports
  /// GITHUB_SHA; local runs may export TBWF_GIT_SHA), the row count and
  /// how many distinct seeds fed the rows -- enough provenance to tell
  /// two BENCH_*.json artifacts apart. set_meta() entries override.
  Config stamped_meta() const {
    Config meta;
    const char* sha = std::getenv("TBWF_GIT_SHA");
    if (sha == nullptr || *sha == '\0') sha = std::getenv("GITHUB_SHA");
    upsert(meta, "git_sha", sha != nullptr && *sha != '\0' ? sha : "unknown");
    upsert(meta, "rows", fmt_u(rows_.size()));
    std::vector<std::uint64_t> seeds;
    for (const Row& r : rows_) {
      bool known = false;
      for (const std::uint64_t s : seeds) known = known || s == r.seed;
      if (!known) seeds.push_back(r.seed);
    }
    upsert(meta, "distinct_seeds", fmt_u(seeds.size()));
    for (const auto& kv : meta_) upsert(meta, kv.first, kv.second);
    return meta;
  }

  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            out += fmt("\\u%04x", ch);
          } else {
            out += ch;
          }
      }
    }
    return out + "\"";
  }

  std::string experiment_;
  Config defaults_;
  Config meta_;
  std::vector<Row> rows_;
};

/// Where a bench binary drops its BENCH_<id>.json: $TBWF_BENCH_JSON_DIR
/// if set (CI points it at the workspace root), else the working
/// directory.
inline std::string bench_json_path(const std::string& filename) {
  const char* dir = std::getenv("TBWF_BENCH_JSON_DIR");
  if (dir == nullptr || *dir == '\0') return filename;
  std::string path = dir;
  if (path.back() != '/') path += '/';
  return path + filename;
}

/// Endless counter-increment worker usable with any object exposing
/// Co<Result> invoke(env, Counter::Op).
template <class Obj>
sim::Task counter_worker(sim::SimEnv& env, Obj& obj) {
  for (;;) {
    (void)co_await obj.invoke(env, qa::Counter::Op{1});
  }
}

/// Completions per process restricted to steps >= cutoff.
inline std::vector<std::uint64_t> completions_since(const core::OpLog& log,
                                                    sim::Step cutoff) {
  std::vector<std::uint64_t> out;
  for (const auto& cs : log.completions) {
    std::uint64_t k = 0;
    for (const auto s : cs) {
      if (s >= cutoff) ++k;
    }
    out.push_back(k);
  }
  return out;
}

inline std::uint64_t min_over(const std::vector<std::uint64_t>& xs,
                              const std::vector<sim::Pid>& pids) {
  std::uint64_t best = ~0ULL;
  for (const auto p : pids) best = std::min(best, xs[p]);
  return pids.empty() ? 0 : best;
}

inline std::uint64_t sum_over(const std::vector<std::uint64_t>& xs) {
  std::uint64_t total = 0;
  for (const auto x : xs) total += x;
  return total;
}

}  // namespace tbwf::bench
