// E20: the universality tax across the data-structure zoo.
//
// Every zoo object exists twice: a handwritten register-based
// specialist and the QA-universal instantiation of its Sequential
// type (plus the batched engine). This harness prices the gap on both
// backends:
//  * sim rows (gated, unit "rounds"): Ok operations completed inside a
//    fixed deterministic step budget, identical seed and workload for
//    every engine -- the ratio IS the universality tax in model steps;
//  * rt rows (informational, unit "ops/s"): wall-clock throughput of
//    the same object/engine matrix on real threads -- noisy on shared
//    runners, so the gate checks the rows exist but not their values;
//  * tax rows (informational, unit "x"): specialist / engine ratio per
//    object and backend.
// The JSON lands at BENCH_zoo.json and feeds the CI bench gate plus
// the docs/ZOO.md table.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "rt/rt_qa.hpp"
#include "rt/rt_qa_batched.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "zoo/ledger.hpp"
#include "zoo/rt_zoo.hpp"
#include "zoo/snapshot.hpp"
#include "zoo/turn_queue.hpp"
#include "zoo/zoo_harness.hpp"
#include "zoo/zoo_types.hpp"

namespace {

using namespace tbwf;
using namespace tbwf::zoo;

constexpr std::uint64_t kSeed = 7;
constexpr sim::Step kBudget = 60000;  ///< sim step budget per config
constexpr int kSimN = 4;
constexpr int kRtThreads = 3;
constexpr std::uint64_t kRtOps = 4000;  ///< Ok ops per thread per config
constexpr int kCap = 8;  ///< bounded queue capacity in both backends

using Queue = BoundedQueueOf<kCap>;

// -- sim side -----------------------------------------------------------------

/// Saturating workload: every process loops op -> chase bottom via
/// query -> next op, for a fixed step budget. Returns total Ok ops.
template <class S, class Obj, class MakeFn, class OpFn>
std::uint64_t sim_ok_ops(int n, MakeFn make, OpFn next_op) {
  sim::World world(n, std::make_unique<sim::RandomSchedule>(kSeed));
  auto obj = make(world);
  std::vector<std::uint64_t> done(static_cast<std::size_t>(n), 0);
  struct Worker {
    static sim::Task run(sim::SimEnv& env, Obj& obj, OpFn next_op,
                         std::uint64_t& done) {
      const sim::Pid p = env.pid();
      for (std::uint64_t k = 0;; ++k) {
        auto r = co_await obj.invoke(env, next_op(p, k));
        while (r.bottom()) {
          co_await env.yield();
          r = co_await obj.query(env);
        }
        if (r.ok()) ++done;
      }
    }
  };
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, p](sim::SimEnv& env) {
      return Worker::run(env, *obj, next_op, done[static_cast<std::size_t>(p)]);
    });
  }
  world.run(kBudget);
  std::uint64_t total = 0;
  for (const std::uint64_t d : done) total += d;
  return total;
}

// The per-object workloads; identical across engines and backends so
// the only variable is the construction being priced.
SnapshotType::Op snapshot_op(int p, std::uint64_t k) {
  return k % 2 == 0 ? SnapshotType::update(p, static_cast<std::int64_t>(k))
                    : SnapshotType::scan();
}
Queue::Op queue_op(int p, std::uint64_t k) {
  return p % 2 == 0 ? Queue::enqueue(static_cast<std::int64_t>(k))
                    : Queue::dequeue();
}
LedgerType::Op ledger_op(int p, std::uint64_t k, int n) {
  return k % 2 == 0
             ? LedgerType::put(p, static_cast<std::int64_t>(k))
             : LedgerType::get((p + 1) % n);
}

struct SimPoint {
  std::uint64_t specialist = 0;
  std::uint64_t universal = 0;
  std::uint64_t batched = 0;
};

SimPoint sim_snapshot() {
  SimPoint pt;
  const auto op = [](sim::Pid p, std::uint64_t k) { return snapshot_op(p, k); };
  pt.specialist = sim_ok_ops<SnapshotType, WfSnapshot>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<WfSnapshot>(w, SnapshotType::initial(w.n()));
      },
      op);
  pt.universal = sim_ok_ops<SnapshotType, UniversalZoo<SnapshotType>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<UniversalZoo<SnapshotType>>(
            w, SnapshotType::initial(w.n()));
      },
      op);
  pt.batched = sim_ok_ops<SnapshotType, BatchedZoo<SnapshotType>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<BatchedZoo<SnapshotType>>(
            w, SnapshotType::initial(w.n()));
      },
      op);
  return pt;
}

SimPoint sim_queue() {
  SimPoint pt;
  const auto op = [](sim::Pid p, std::uint64_t k) { return queue_op(p, k); };
  pt.specialist = sim_ok_ops<Queue, TurnQueue<kCap>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<TurnQueue<kCap>>(w, Queue::State{});
      },
      op);
  pt.universal = sim_ok_ops<Queue, UniversalZoo<Queue>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<UniversalZoo<Queue>>(w, Queue::State{});
      },
      op);
  pt.batched = sim_ok_ops<Queue, BatchedZoo<Queue>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<BatchedZoo<Queue>>(w, Queue::State{});
      },
      op);
  return pt;
}

SimPoint sim_ledger() {
  SimPoint pt;
  const auto op = [](sim::Pid p, std::uint64_t k) {
    return ledger_op(p, k, kSimN);
  };
  pt.specialist = sim_ok_ops<LedgerType, WfLedger>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<WfLedger>(w, LedgerType::State{});
      },
      op);
  pt.universal = sim_ok_ops<LedgerType, UniversalZoo<LedgerType>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<UniversalZoo<LedgerType>>(w,
                                                          LedgerType::State{});
      },
      op);
  pt.batched = sim_ok_ops<LedgerType, BatchedZoo<LedgerType>>(
      kSimN,
      [](sim::World& w) {
        return std::make_unique<BatchedZoo<LedgerType>>(w, LedgerType::State{});
      },
      op);
  return pt;
}

// -- rt side ------------------------------------------------------------------

/// kRtOps Ok operations per thread; an F fate re-issues the same op, a
/// bottom chases through query. Returns total Ok ops per second.
template <class Obj, class OpFn>
double rt_ok_ops_per_sec(Obj& obj, OpFn next_op, const char* tag) {
  std::fprintf(stderr, "rt %s...\n", tag);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kRtThreads);
  for (int tid = 0; tid < kRtThreads; ++tid) {
    threads.emplace_back([&, tid] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // The QA protocols run on abortable registers, which only promise
      // obstruction-freedom under contention: two threads re-issuing and
      // re-querying in lockstep can abort each other indefinitely. The
      // tid-skewed sleep breaks the symmetry so someone always runs solo
      // long enough to decide.
      std::uint64_t stalls = 0;
      const auto backoff = [&] {
        ++stalls;
        if (stalls % 512 == 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(20 * (tid + 1)));
        } else if (stalls % 8 == 0) {
          std::this_thread::yield();
        }
      };
      for (std::uint64_t k = 0; k < kRtOps;) {
        auto r = obj.invoke(static_cast<std::uint32_t>(tid), next_op(tid, k));
        while (r.bottom()) {
          backoff();
          r = obj.query(static_cast<std::uint32_t>(tid));
        }
        if (r.ok()) {
          ++k;
        } else {
          backoff();  // F: the op aborted with no effect; re-issue it
        }
      }
    });
  }
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0 ? static_cast<double>(kRtThreads) *
                        static_cast<double>(kRtOps) / secs
                  : 0.0;
}

struct RtPoint {
  double specialist = 0;
  double universal = 0;
  double batched = 0;
};

RtPoint rt_snapshot() {
  RtPoint pt;
  const auto op = [](int tid, std::uint64_t k) { return snapshot_op(tid, k); };
  {
    RtZooSnapshot obj(kRtThreads, SnapshotType::initial(kRtThreads));
    pt.specialist = rt_ok_ops_per_sec(obj, op, "snap/spec");
  }
  {
    rt::RtQaUniversal<SnapshotType> obj(kRtThreads,
                                        SnapshotType::initial(kRtThreads));
    pt.universal = rt_ok_ops_per_sec(obj, op, "snap/uni");
  }
  {
    rt::RtQaBatched<SnapshotType> obj(kRtThreads,
                                      SnapshotType::initial(kRtThreads));
    pt.batched = rt_ok_ops_per_sec(obj, op, "snap/bat");
  }
  return pt;
}

RtPoint rt_queue() {
  RtPoint pt;
  const auto op = [](int tid, std::uint64_t k) { return queue_op(tid, k); };
  {
    RtZooQueue<kCap> obj(kRtThreads);
    pt.specialist = rt_ok_ops_per_sec(obj, op, "queue/spec");
  }
  {
    rt::RtQaUniversal<Queue> obj(kRtThreads, Queue::State{});
    pt.universal = rt_ok_ops_per_sec(obj, op, "queue/uni");
  }
  {
    rt::RtQaBatched<Queue> obj(kRtThreads, Queue::State{});
    pt.batched = rt_ok_ops_per_sec(obj, op, "queue/bat");
  }
  return pt;
}

RtPoint rt_ledger() {
  RtPoint pt;
  const auto op = [](int tid, std::uint64_t k) {
    return ledger_op(tid, k, kRtThreads);
  };
  {
    RtZooLedger obj(kRtThreads, LedgerType::State{});
    pt.specialist = rt_ok_ops_per_sec(obj, op, "ledger/spec");
  }
  {
    rt::RtQaUniversal<LedgerType> obj(kRtThreads, LedgerType::State{});
    pt.universal = rt_ok_ops_per_sec(obj, op, "ledger/uni");
  }
  {
    rt::RtQaBatched<LedgerType> obj(kRtThreads, LedgerType::State{});
    pt.batched = rt_ok_ops_per_sec(obj, op, "ledger/bat");
  }
  return pt;
}

double ratio(double a, double b) { return b > 0 ? a / b : 0.0; }

}  // namespace

int main() {
  using bench::fmt_f;
  using bench::fmt_i;
  using bench::fmt_u;

  bench::banner("E20: universality tax across the zoo",
                "a QA-universal object costs a bounded constant factor over "
                "its handwritten specialist, on both backends");

  bench::JsonReporter json("zoo");
  json.set_meta("objects", "snapshot,queue,ledger");

  const char* names[3] = {"snapshot", "queue", "ledger"};
  const SimPoint sim_pts[3] = {sim_snapshot(), sim_queue(), sim_ledger()};
  const RtPoint rt_pts[3] = {rt_snapshot(), rt_queue(), rt_ledger()};

  bench::Table table({"object", "backend", "specialist", "universal",
                      "batched", "tax(uni)", "tax(bat)"});
  for (int i = 0; i < 3; ++i) {
    const SimPoint& sp = sim_pts[i];
    const RtPoint& rp = rt_pts[i];
    const double sim_tax_uni =
        ratio(static_cast<double>(sp.specialist), static_cast<double>(sp.universal));
    const double sim_tax_bat =
        ratio(static_cast<double>(sp.specialist), static_cast<double>(sp.batched));
    const double rt_tax_uni = ratio(rp.specialist, rp.universal);
    const double rt_tax_bat = ratio(rp.specialist, rp.batched);
    table.row({names[i], "sim", fmt_u(sp.specialist), fmt_u(sp.universal),
               fmt_u(sp.batched), fmt_f(sim_tax_uni), fmt_f(sim_tax_bat)});
    table.row({names[i], "rt", fmt_f(rp.specialist, 0), fmt_f(rp.universal, 0),
               fmt_f(rp.batched, 0), fmt_f(rt_tax_uni), fmt_f(rt_tax_bat)});

    // Gated deterministic rows: Ok ops inside the fixed sim budget.
    const std::vector<std::pair<const char*, std::uint64_t>> sim_rows = {
        {"specialist", sp.specialist},
        {"universal", sp.universal},
        {"batched", sp.batched}};
    for (const auto& [engine, ops] : sim_rows) {
      json.row("ops_per_budget", static_cast<double>(ops), "rounds", kSeed,
               {{"backend", "sim"},
                {"object", names[i]},
                {"engine", engine},
                {"n", fmt_i(kSimN)},
                {"steps", fmt_u(kBudget)}});
    }
    // Informational wall-clock rows (value not compared by the gate).
    const std::vector<std::pair<const char*, double>> rt_rows = {
        {"specialist", rp.specialist},
        {"universal", rp.universal},
        {"batched", rp.batched}};
    for (const auto& [engine, ops] : rt_rows) {
      json.row("throughput", ops, "ops/s", 0,
               {{"backend", "rt"},
                {"object", names[i]},
                {"engine", engine},
                {"threads", fmt_i(kRtThreads)}});
    }
    // Informational tax ratios, one per engine and backend.
    json.row("universality_tax", sim_tax_uni, "x", kSeed,
             {{"backend", "sim"}, {"object", names[i]}, {"engine", "universal"}});
    json.row("universality_tax", sim_tax_bat, "x", kSeed,
             {{"backend", "sim"}, {"object", names[i]}, {"engine", "batched"}});
    json.row("universality_tax", rt_tax_uni, "x", 0,
             {{"backend", "rt"}, {"object", names[i]}, {"engine", "universal"}});
    json.row("universality_tax", rt_tax_bat, "x", 0,
             {{"backend", "rt"}, {"object", names[i]}, {"engine", "batched"}});
  }
  table.print();

  json.write_file(bench::bench_json_path("BENCH_zoo.json"));
  return 0;
}
