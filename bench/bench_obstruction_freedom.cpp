// E2 -- TBWF implies obstruction-freedom (Section 1.1).
//
// A process running solo is, by definition, timely (timeliness is
// relative to the speed of the system's processes -- when nobody else
// takes steps, even a "slow" process is timely). So a TBWF object must
// complete every solo operation, and within a bounded number of the
// caller's own steps. We sweep the number of *present-but-stopped*
// peers (they hold registers, inflate the protocol's fan-out, but take
// no steps) and report steps per completed operation for the TBWF stack
// and the OF-only object.
#include <memory>

#include "baselines/of_object.hpp"
#include "bench_util.hpp"
#include "util/metrics.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kOps = 200;

template <class Obj>
sim::Task probe(sim::SimEnv& env, Obj& obj, util::Histogram& steps,
                bool& done) {
  for (int i = 0; i < kOps; ++i) {
    const sim::Step before = env.local_steps();
    (void)co_await obj.invoke(env, qa::Counter::Op{1});
    steps.add(env.local_steps() - before);
  }
  done = true;
}

struct Measured {
  bool completed = false;
  util::Histogram steps;
};

template <class MakeObj>
Measured run_solo(int n, MakeObj&& make_obj) {
  std::vector<sim::ActivitySpec> specs;
  specs.push_back(sim::ActivitySpec::eager());
  for (int i = 1; i < n; ++i) specs.push_back(sim::ActivitySpec::silent());
  sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 42));
  auto obj = make_obj(world);
  Measured m;
  world.spawn(0, "probe", [&](sim::SimEnv& env) {
    return probe(env, *obj, m.steps, m.completed);
  });
  world.run(50000000);
  return m;
}

}  // namespace

int main() {
  banner("E2: obstruction-freedom -- solo operations always complete, in "
         "bounded steps",
         "a solo process is timely by definition; TBWF therefore implies "
         "obstruction-freedom (Section 1.1).");

  Table table({"n (1 active + n-1 stopped)", "system", "completed",
               "steps/op p50", "steps/op p99", "steps/op max"});

  for (int n : {1, 2, 4, 8, 12}) {
    {
      auto m = run_solo(n, [](sim::World& w) {
        struct Facade {
          std::unique_ptr<core::TbwfSystem<qa::Counter>> sys;
          sim::Co<std::int64_t> invoke(sim::SimEnv& env, qa::Counter::Op op) {
            return sys->object().invoke(env, op);
          }
        };
        auto f = std::make_shared<Facade>();
        f->sys = std::make_unique<core::TbwfSystem<qa::Counter>>(
            w, 0, core::OmegaBackend::AtomicRegisters);
        return f;
      });
      table.row({fmt_i(n), "TBWF", m.completed ? fmt_u(m.steps.count()) : "STUCK",
                 fmt_u(m.steps.p50()), fmt_u(m.steps.p99()),
                 fmt_u(m.steps.max())});
    }
    {
      auto m = run_solo(n, [](sim::World& w) {
        return std::make_shared<baselines::OfObject<qa::Counter>>(w, 0);
      });
      table.row({fmt_i(n), "OF-only", m.completed ? fmt_u(m.steps.count()) : "STUCK",
                 fmt_u(m.steps.p50()), fmt_u(m.steps.p99()),
                 fmt_u(m.steps.max())});
    }
  }
  table.print();

  std::printf(
      "\nreading: both systems complete all %d solo ops, and steps/op is\n"
      "CONSTANT per configuration -- the bounded-steps half of the solo\n"
      "guarantee. The linear growth in n comes from the universal object\n"
      "reading every process's record; TBWF's extra factor is the\n"
      "Omega-Delta consultation folded into every operation.\n",
      kOps);
  return 0;
}
