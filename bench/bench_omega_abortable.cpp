// E7 -- Omega-Delta from abortable registers (Figure 6, Theorem 13).
//
// Same election scenario as E3, but over the Section 6 stack. We sweep
// the abort-policy aggressiveness and report stabilization latency and
// the abort-rate trajectory: the adaptive backoffs make the abort rate
// decline after stabilization, even under always-abort-on-overlap.
#include <memory>

#include "bench_util.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_spec.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

struct AbortableElection {
  sim::Pid leader = omega::kNoLeader;
  sim::Step stabilized_at = 0;
  bool spec_ok = false;
  std::vector<double> abort_rate_per_window;  // aborts / ops
};

AbortableElection run(int n, registers::AbortPolicy* policy,
                      std::uint64_t seed, sim::Step steps) {
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(6 * n));
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  sim::World world(n, std::move(sched));
  omega::OmegaAbortable om(world, policy);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }

  AbortableElection result;
  const int windows = 8;
  std::uint64_t prev_ops = 0, prev_aborts = 0;
  for (int w = 0; w < windows; ++w) {
    world.run(steps / windows);
    const std::uint64_t ops = world.total_reads() + world.total_writes();
    const std::uint64_t aborts =
        world.total_read_aborts() + world.total_write_aborts();
    const double rate =
        (ops - prev_ops) == 0
            ? 0
            : static_cast<double>(aborts - prev_aborts) / (ops - prev_ops);
    result.abort_rate_per_window.push_back(rate);
    prev_ops = ops;
    prev_aborts = aborts;
  }

  omega::CandidateClassification classes;
  for (sim::Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  for (const sim::Pid p : timely) {
    result.stabilized_at =
        std::max(result.stabilized_at, record.leader(p).last_change());
  }
  result.spec_ok = omega::check_omega_spec(
                       record, classes, timely,
                       (result.stabilized_at + world.now()) / 2)
                       .ok;
  result.leader = record.leader(0).final_value();
  return result;
}

std::string rates_cell(const std::vector<double>& rates) {
  std::string out;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (i) out += " ";
    out += fmt("%.3f", rates[i]);
  }
  return out;
}

}  // namespace

int main() {
  banner("E7: Omega-Delta from abortable registers (Figure 6)",
         "Definition 5 holds over abortable registers for every abort "
         "adversary; adaptive backoff makes the abort rate decay.");

  const int n = 3;
  const sim::Step steps = 4000000;

  Table table({"abort policy", "elected", "stabilized at", "spec holds?",
               "abort rate per window (time ->)"});
  {
    registers::NeverAbortPolicy p;
    const auto r = run(n, &p, 7, steps);
    table.row({"never abort (control)", fmt("p%d", r.leader),
               fmt_u(r.stabilized_at), r.spec_ok ? "yes" : "NO",
               rates_cell(r.abort_rate_per_window)});
  }
  for (double prob : {0.3, 0.6, 0.9}) {
    registers::ProbabilisticAbortPolicy p(41, prob, prob, 0.5);
    const auto r = run(n, &p, 7, steps);
    table.row({fmt("abort w.p. %.1f", prob), fmt("p%d", r.leader),
               fmt_u(r.stabilized_at), r.spec_ok ? "yes" : "NO",
               rates_cell(r.abort_rate_per_window)});
  }
  {
    registers::AlwaysAbortPolicy p(
        registers::AlwaysAbortPolicy::Effect::Alternate);
    const auto r = run(n, &p, 7, steps);
    table.row({"ALWAYS abort on overlap", fmt("p%d", r.leader),
               fmt_u(r.stabilized_at), r.spec_ok ? "yes" : "NO",
               rates_cell(r.abort_rate_per_window)});
  }
  table.print();

  std::printf(
      "\nreading: every adversary yields a stable timely leader (Theorem\n"
      "13). The per-window abort rate declines over time as the Figure\n"
      "4/5 backoffs spread readers and writers apart; it does not reach\n"
      "zero here because permanent candidates keep exchanging heartbeats\n"
      "forever, and each heartbeat read can still overlap a write.\n");
  return 0;
}
