// E12 -- Omega-Delta re-stabilization latency after fault bursts.
//
// All-permanent-candidate elections are driven into a burst of faults --
// a crash (+ later restart) of the elected leader, a stutter window that
// makes the leader untimely for a while, or an abort storm on the
// Section 6 stack -- and we report how long leadership takes to settle
// again after the burst begins. Bursts are described as FaultPlans, the
// same declarative timelines the chaos sweep tests replay from seeds.
#include <memory>

#include "bench_util.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_registers.hpp"
#include "omega/omega_spec.hpp"
#include "registers/abort_policy.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kN = 4;

template <class Omega>
bool all_agree(Omega& om, int n) {
  const sim::Pid l = om.io(0).leader;
  if (l == omega::kNoLeader) return false;
  for (sim::Pid p = 1; p < n; ++p) {
    if (om.io(p).leader != l) return false;
  }
  return true;
}

/// Last leader-output change across all processes, from the record.
sim::Step last_change_any(const omega::OmegaRecord& record) {
  sim::Step last = 0;
  for (sim::Pid p = 0; p < record.n(); ++p) {
    last = std::max(last, record.leader(p).last_change());
  }
  return last;
}

std::string latency_cell(sim::Step last_change, sim::Step burst_from) {
  if (last_change <= burst_from) return "0 (leadership kept)";
  return fmt_u(last_change - burst_from);
}

struct BurstResult {
  sim::Pid before = omega::kNoLeader;
  sim::Pid after = omega::kNoLeader;
  std::string latency;
};

// -- crash(+restart) bursts over the Figure 3 stack ---------------------------

BurstResult crash_burst(sim::Step outage, bool restart_leader) {
  sim::World world(kN, std::make_unique<sim::RoundRobinSchedule>());
  omega::OmegaRegisters om(world);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (sim::Pid p = 0; p < kN; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  BurstResult r;
  if (!world.run_until([&] { return all_agree(om, kN); }, 2000000)) {
    r.latency = "never stabilized";
    return r;
  }
  world.run(20000);  // let the election settle well clear of the burst
  r.before = om.io(0).leader;

  const sim::Step burst = world.now() + 1;
  sim::FaultPlan plan;
  plan.crash(r.before, burst);
  if (restart_leader) plan.restart(r.before, burst + outage);
  plan.install(world);
  world.run(outage + 800000);

  r.after = om.io((r.before + 1) % kN).leader;
  r.latency = latency_cell(last_change_any(record), burst);
  return r;
}

// -- stutter bursts: the leader turns untimely for a window -------------------

BurstResult stutter_burst(sim::Step period, sim::Step len) {
  // Probe run (no chaos) to learn which pid wins under this schedule, so
  // the stutter window can target the elected leader.
  sim::Pid victim = omega::kNoLeader;
  {
    sim::World probe(kN, std::make_unique<sim::RoundRobinSchedule>());
    omega::OmegaRegisters om(probe);
    om.install_all();
    for (sim::Pid p = 0; p < kN; ++p) {
      probe.spawn(p, "cand", [&om](sim::SimEnv& env) {
        return omega::permanent_candidate(env, om.io(env.pid()));
      });
    }
    if (!probe.run_until([&] { return all_agree(om, kN); }, 2000000)) {
      BurstResult r;
      r.latency = "probe never stabilized";
      return r;
    }
    victim = om.io(0).leader;
  }

  const sim::Step burst = 200000;
  sim::FaultPlan plan;
  plan.stutter(victim, burst, burst + len, period);

  sim::World world(kN,
                   plan.wrap(std::make_unique<sim::RoundRobinSchedule>()));
  omega::OmegaRegisters om(world);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (sim::Pid p = 0; p < kN; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  world.run(burst + len + 600000);

  BurstResult r;
  r.before = victim;
  r.after = om.io(0).leader;
  r.latency = latency_cell(last_change_any(record), burst);
  return r;
}

// -- abort storms over the Section 6 (abortable-register) stack ---------------

BurstResult storm_burst(double rate, sim::Step len) {
  const sim::Step burst = 200000;
  sim::FaultPlan plan;
  plan.abort_storm("", burst, burst + len, rate, /*p_effect=*/0.5);

  registers::PhasedAbortPolicy policy(29);
  plan.arm(policy);

  sim::World world(kN, std::make_unique<sim::RoundRobinSchedule>());
  omega::OmegaAbortable om(world, &policy);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (sim::Pid p = 0; p < kN; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  world.run(burst);
  BurstResult r;
  r.before = om.io(0).leader;
  world.run(len + 800000);
  r.after = om.io(0).leader;
  r.latency = latency_cell(last_change_any(record), burst);
  return r;
}

std::string pid_cell(sim::Pid p) {
  return p == omega::kNoLeader ? "?" : fmt("p%d", p);
}

}  // namespace

int main() {
  banner("E12: Omega-Delta re-stabilization after fault bursts",
         "after a burst of crashes, timing degradation, or abort storms "
         "ends, leadership settles again within a bounded number of steps "
         "(graceful degradation and recovery).");

  Table table({"burst", "configuration", "leader before", "leader after",
               "re-stabilized (steps after burst start)"});

  for (const sim::Step outage : {20000u, 100000u}) {
    const auto r = crash_burst(outage, /*restart_leader=*/true);
    table.row({"crash+restart", fmt("leader down for %llu steps",
                                    static_cast<unsigned long long>(outage)),
               pid_cell(r.before), pid_cell(r.after), r.latency});
  }
  {
    const auto r = crash_burst(50000, /*restart_leader=*/false);
    table.row({"crash (permanent)", "leader never restarts",
               pid_cell(r.before), pid_cell(r.after), r.latency});
  }
  for (const sim::Step period : {256u, 1024u, 4096u}) {
    const auto r = stutter_burst(period, /*len=*/120000);
    table.row({"stutter window",
               fmt("leader 1-in-%llu timely for 120000 steps",
                   static_cast<unsigned long long>(period)),
               pid_cell(r.before), pid_cell(r.after), r.latency});
  }
  for (const double rate : {0.7, 1.0}) {
    const auto r = storm_burst(rate, /*len=*/120000);
    table.row({"abort storm", fmt("abort w.p. %.1f for 120000 steps", rate),
               pid_cell(r.before), pid_cell(r.after), r.latency});
  }
  table.print();

  std::printf(
      "\nreading: a permanently crashed leader is replaced within a few\n"
      "hundred steps (the monitors' escalated timeouts); when it restarts,\n"
      "re-stabilization tracks the restart itself -- the rebooted process\n"
      "re-derives the standing leader without displacing it, since its\n"
      "punished counter keeps it from winning back. Stutter windows force\n"
      "a handover whose latency grows with the degradation period, up to\n"
      "the full window length when the leader is all but silent. Abort\n"
      "storms slow the heartbeat plumbing but, with the Figure 4/5\n"
      "backoffs, never unseat a stabilized leader here.\n");
  return 0;
}
