// E11/E19 -- Wall-clock cost on real threads (google-benchmark).
//
// The paper positions TBWF as the progress condition you can afford
// when strong primitives are costly and synchrony is imperfect. This
// bench prices the TBWF-style leased-leader counter (src/rt) against a
// mutex, a CAS loop and a hardware fetch_add across thread counts.
// Expect the TBWF-style design to trail the hardware primitives on raw
// throughput -- the paper's trade is progress guarantees under partial
// synchrony, not speed -- while staying within an order of magnitude.
//
// E19 (batching ablation): the saturating multi-producer pair
// BM_UnbatchedQaCounter (one full slot round per op, variant "before")
// vs BM_BatchedQaCounter (announce/combine/help engine, variant
// "after") across threads 1-8. The post hook derives the per-thread
// batched_speedup rows (unit "x", informational -- ~5.6x measured at
// threads:4 on a quiet box, see EXPERIMENTS.md E19) and the CI gate
// row batched_ge_2x (unit "bool", threads:4): check_bench_regression.py
// fails the build if the batched engine ever drops below 2x the
// unbatched construction there. The gate threshold is deliberately far
// below the measured speedup: wall-clock ratios on shared, noisy CI
// runners swing too much for a tight bool to be anything but a flake,
// while a batching engine that cannot even double the per-op
// construction is genuinely broken.
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_json_gbench.hpp"

#include "qa/sequential_type.hpp"
#include "rt/rt_baselines.hpp"
#include "rt/rt_qa.hpp"
#include "rt/rt_qa_batched.hpp"
#include "rt/rt_tbwf.hpp"

namespace {

using namespace tbwf::rt;

RtMutexCounter g_mutex_counter;
RtCasCounter g_cas_counter;
RtFaaCounter g_faa_counter;
RtTbwfCounter g_tbwf_counter;
RtTbwfObject<tbwf::qa::Counter> g_tbwf_object(8, 0);

// The E19 pair models a saturating OPEN system: each OS thread is a
// proxy for kProducers pending producers (there are always more
// producers than cores in the saturation regime the paper's batching
// argument addresses). Unbatched, a thread pushes its producers' ops
// one full promise/accept/decide round at a time; batched, it stages
// one op per owned lane and a single combine round drains every staged
// lane in the system. Engines are sized to the thread count of the run
// (n = threads, lanes = threads * kProducers) so neither side pays for
// idle capacity.
constexpr int kProducers = 16;

RtQaBatched<tbwf::qa::Counter>::Options lanes_opts(int threads) {
  RtQaBatched<tbwf::qa::Counter>::Options opts;
  opts.lanes = threads * kProducers;
  return opts;
}

RtQaBatched<tbwf::qa::Counter>& batched_for(int threads) {
  static RtQaBatched<tbwf::qa::Counter> e1(1, 0, lanes_opts(1));
  static RtQaBatched<tbwf::qa::Counter> e2(2, 0, lanes_opts(2));
  static RtQaBatched<tbwf::qa::Counter> e4(4, 0, lanes_opts(4));
  static RtQaBatched<tbwf::qa::Counter> e8(8, 0, lanes_opts(8));
  switch (threads) {
    case 1: return e1;
    case 2: return e2;
    case 4: return e4;
    default: return e8;
  }
}

RtQaUniversal<tbwf::qa::Counter>& unbatched_for(int threads) {
  static RtQaUniversal<tbwf::qa::Counter> e1(1, 0);
  static RtQaUniversal<tbwf::qa::Counter> e2(2, 0);
  static RtQaUniversal<tbwf::qa::Counter> e4(4, 0);
  static RtQaUniversal<tbwf::qa::Counter> e8(8, 0);
  switch (threads) {
    case 1: return e1;
    case 2: return e2;
    case 4: return e4;
    default: return e8;
  }
}

void BM_MutexCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_mutex_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CasCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_cas_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FaaCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_faa_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TbwfLeaseCounter(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tbwf_counter.fetch_add(tid, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TbwfUniversalObject(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_tbwf_object.invoke(tid, tbwf::qa::Counter::Op{1}));
  }
  state.SetItemsProcessed(state.iterations());
}

// The unbatched QA construction: each producer op is driven until it
// is APPLIED (invoke, chase the fate with query, re-invoke on F) --
// one full promise/accept/decide round per op, sequentially per
// producer. Both benches in this pair count applied ops; the retry
// cost of lost rounds is exactly E19's "before".
void BM_UnbatchedQaCounter(benchmark::State& state) {
  auto& obj = unbatched_for(state.threads());
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    for (int j = 0; j < kProducers; ++j) {
      for (;;) {
        auto r = obj.invoke(tid, tbwf::qa::Counter::Op{1});
        while (r.bottom()) {
          r = obj.query(tid);
          if (r.bottom()) std::this_thread::yield();
        }
        if (r.ok()) {
          benchmark::DoNotOptimize(r);
          break;
        }
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kProducers);
}

// The batched announce/combine/help engine: the thread stages one op
// on each of its kProducers lanes (one shared announce write per op),
// then collects; the first collect's combine round drains every staged
// lane, amortizing the slot round across the batch. E19's "after".
void BM_BatchedQaCounter(benchmark::State& state) {
  auto& obj = batched_for(state.threads());
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  const int lane0 = static_cast<int>(tid) * kProducers;
  for (auto _ : state) {
    for (int j = 0; j < kProducers; ++j) {
      obj.announce(tid, lane0 + j, tbwf::qa::Counter::Op{1});
    }
    for (int j = 0; j < kProducers; ++j) {
      benchmark::DoNotOptimize(obj.collect(tid, lane0 + j));
    }
  }
  state.SetItemsProcessed(state.iterations() * kProducers);
}

void derive_batching_rows(tbwf::bench::JsonReporter& json,
                          const std::vector<tbwf::bench::GBenchRow>& rows) {
  const auto find = [&rows](const char* prefix, int threads) -> double {
    for (const auto& r : rows) {
      if (r.threads == threads && r.bench.rfind(prefix, 0) == 0) {
        return r.items_per_second;
      }
    }
    return 0;
  };
  for (const int t : {1, 2, 4, 8}) {
    const double unbatched = find("BM_UnbatchedQaCounter", t);
    const double batched = find("BM_BatchedQaCounter", t);
    if (unbatched <= 0 || batched <= 0) continue;
    const double speedup = batched / unbatched;
    json.row("batched_speedup", speedup, "x", /*seed=*/0,
             {{"bench", "BatchedVsUnbatchedQa"},
              {"threads", tbwf::bench::fmt_i(t)}});
    if (t == 4) {
      // The hard CI gate: >= 2x at four saturating producers. The
      // acceptance-level >= 5x shows up in the informational
      // batched_speedup row above; the bool is set low enough to
      // survive noisy shared runners (see the header comment).
      json.row("batched_ge_2x", speedup >= 2.0 ? 1.0 : 0.0, "bool",
               /*seed=*/0,
               {{"bench", "BatchedVsUnbatchedQa"}, {"threads", "4"}});
    }
  }
}

}  // namespace

BENCHMARK(BM_MutexCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_CasCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_FaaCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_TbwfLeaseCounter)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_TbwfUniversalObject)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_UnbatchedQaCounter)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_BatchedQaCounter)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();

int main(int argc, char** argv) {
  return tbwf::bench::run_gbench_with_json(
      argc, argv, "rt_throughput",
      // Both per-op QA constructions are the "before" side of E19:
      // informational context, not gated rows. Their multi-thread
      // timings hinge on preemption luck (every op needs the slot
      // round to itself), which no fixed tolerance survives on a
      // loaded box; the batched engine and the lease-based rows are
      // the gated surface.
      {{"BM_UnbatchedQaCounter", "before"},
       {"BM_TbwfUniversalObject", "before"}},
      derive_batching_rows);
}
