// E11 -- Wall-clock cost on real threads (google-benchmark).
//
// The paper positions TBWF as the progress condition you can afford
// when strong primitives are costly and synchrony is imperfect. This
// bench prices the TBWF-style leased-leader counter (src/rt) against a
// mutex, a CAS loop and a hardware fetch_add across thread counts.
// Expect the TBWF-style design to trail the hardware primitives on raw
// throughput -- the paper's trade is progress guarantees under partial
// synchrony, not speed -- while staying within an order of magnitude.
#include <benchmark/benchmark.h>

#include "bench_json_gbench.hpp"

#include "qa/sequential_type.hpp"
#include "rt/rt_baselines.hpp"
#include "rt/rt_tbwf.hpp"

namespace {

using namespace tbwf::rt;

RtMutexCounter g_mutex_counter;
RtCasCounter g_cas_counter;
RtFaaCounter g_faa_counter;
RtTbwfCounter g_tbwf_counter;
RtTbwfObject<tbwf::qa::Counter> g_tbwf_object(8, 0);

void BM_MutexCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_mutex_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CasCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_cas_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FaaCounter(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_faa_counter.fetch_add(1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TbwfLeaseCounter(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(g_tbwf_counter.fetch_add(tid, 1));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TbwfUniversalObject(benchmark::State& state) {
  const auto tid = static_cast<std::uint32_t>(state.thread_index());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        g_tbwf_object.invoke(tid, tbwf::qa::Counter::Op{1}));
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_MutexCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_CasCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_FaaCounter)->Threads(1)->Threads(2)->Threads(4)->Threads(8)
    ->UseRealTime();
BENCHMARK(BM_TbwfLeaseCounter)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();
BENCHMARK(BM_TbwfUniversalObject)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();

int main(int argc, char** argv) {
  return tbwf::bench::run_gbench_with_json(argc, argv, "rt_throughput");
}
