// Bridge from google-benchmark to the tbwf-bench-v1 JSON schema
// (bench_util.hpp JsonReporter): a display reporter that renders the
// usual console table AND records one JSON row per benchmark run, so a
// gbench binary keeps its interactive output while feeding the CI
// regression gate. Used by bench_rt_throughput / bench_sim_throughput.
#pragma once

#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace tbwf::bench {

/// Console output plus one JsonReporter row per (non-aggregate,
/// non-errored) run: metric "throughput", value items_per_second,
/// config {"bench": run name, "threads": n}.
class GBenchJsonAdapter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonAdapter(JsonReporter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      json_.row("throughput", static_cast<double>(it->second), "items/s",
                /*seed=*/0,
                {{"bench", run.benchmark_name()},
                 {"threads", fmt_i(run.threads)}});
    }
  }

 private:
  JsonReporter& json_;
};

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<experiment>.json (tbwf-bench-v1) next to the binary or into
/// $TBWF_BENCH_JSON_DIR.
inline int run_gbench_with_json(int argc, char** argv,
                                const std::string& experiment) {
  benchmark::Initialize(&argc, &argv[0]);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter json(experiment);
  json.set_config("variant", "after");
  json.set_meta("harness", "google-benchmark");
  GBenchJsonAdapter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.write_file(bench_json_path("BENCH_" + experiment + ".json"));
  return 0;
}

}  // namespace tbwf::bench
