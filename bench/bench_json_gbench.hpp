// Bridge from google-benchmark to the tbwf-bench-v1 JSON schema
// (bench_util.hpp JsonReporter): a display reporter that renders the
// usual console table AND records one JSON row per benchmark run, so a
// gbench binary keeps its interactive output while feeding the CI
// regression gate. Used by bench_rt_throughput / bench_sim_throughput.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.hpp"

namespace tbwf::bench {

/// One measured benchmark run, kept for post-processing hooks (derived
/// rows such as speedup ratios and CI gate booleans).
struct GBenchRow {
  std::string bench;  ///< full benchmark name, e.g. "BM_X/threads:4"
  int threads = 1;
  double items_per_second = 0;
};

/// Console output plus one JsonReporter row per (non-aggregate,
/// non-errored) run: metric "throughput", value items_per_second,
/// config {"bench": run name, "threads": n}. Benchmarks registered via
/// set_variant get that variant stamped instead of the sticky default
/// (used to mark unoptimized twins as "before": informational rows the
/// regression gate skips but EXPERIMENTS.md tables quote).
class GBenchJsonAdapter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonAdapter(JsonReporter& json) : json_(json) {}

  /// Stamp rows of benchmarks whose name starts with `prefix`.
  void set_variant(const std::string& prefix, const std::string& variant) {
    variants_.emplace_back(prefix, variant);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto it = run.counters.find("items_per_second");
      if (it == run.counters.end()) continue;
      const std::string name = run.benchmark_name();
      const double value = static_cast<double>(it->second);
      std::vector<std::pair<std::string, std::string>> config = {
          {"bench", name}, {"threads", fmt_i(run.threads)}};
      for (const auto& [prefix, variant] : variants_) {
        if (name.rfind(prefix, 0) == 0) {
          config.emplace_back("variant", variant);
          break;
        }
      }
      json_.row("throughput", value, "items/s", /*seed=*/0, config);
      collected_.push_back(GBenchRow{name, run.threads, value});
    }
  }

  const std::vector<GBenchRow>& collected() const { return collected_; }

 private:
  JsonReporter& json_;
  std::vector<std::pair<std::string, std::string>> variants_;
  std::vector<GBenchRow> collected_;
};

/// Hook run after all benchmarks, before the JSON is written: derive
/// extra rows (ratios, gate booleans) from the measured runs.
using GBenchPostHook =
    std::function<void(JsonReporter&, const std::vector<GBenchRow>&)>;

/// Benchmarks whose rows should be stamped variant=<v> instead of the
/// default "after".
using GBenchVariantMap = std::vector<std::pair<std::string, std::string>>;

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<experiment>.json (tbwf-bench-v1) next to the binary or into
/// $TBWF_BENCH_JSON_DIR.
inline int run_gbench_with_json(int argc, char** argv,
                                const std::string& experiment,
                                const GBenchVariantMap& variants = {},
                                const GBenchPostHook& post = nullptr) {
  benchmark::Initialize(&argc, &argv[0]);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonReporter json(experiment);
  json.set_config("variant", "after");
  json.set_meta("harness", "google-benchmark");
  GBenchJsonAdapter reporter(json);
  for (const auto& [prefix, variant] : variants) {
    reporter.set_variant(prefix, variant);
  }
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (post) post(json, reporter.collected());
  json.write_file(bench_json_path("BENCH_" + experiment + ".json"));
  return 0;
}

}  // namespace tbwf::bench
