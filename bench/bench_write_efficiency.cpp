// E5 -- Write-efficiency of the Figure 3 implementation (closing remark
// of Section 5.2) -- and E15's scan-cache ablation on the same workload.
//
// Part 1 (E5): with permanent candidates, after stabilization the only
// process that writes to shared registers is the leader (heartbeats);
// everyone else's register activity dies out. We log every register
// write and report, per time window, how many writes came from the
// leader vs from everyone else.
//
// Part 2 (E15): the read-side counterpart. Line 13 of Figure 3 reads
// all n CounterRegisters every round; after stabilization the counters
// are frozen, so the opt-in scan cache (OmegaRegisters::set_scan_cache)
// should collapse shared-register READS per election round from n to
// roughly n / refresh_period. We run the identical workload with the
// cache off and on and report total CounterRegister reads and reads per
// round, emitting both variants into BENCH_write_efficiency.json.
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kN = 6;
constexpr sim::Step kSteps = 3000000;
constexpr sim::Step kWindow = 250000;
constexpr std::uint64_t kSeed = 5;

struct RunResult {
  sim::Pid leader = omega::kNoLeader;
  std::uint64_t counter_reads = 0;   ///< total reads of CounterRegister[*]
  std::uint64_t scan_full = 0;       ///< full line-13 scans (cache on only)
  std::uint64_t scan_skipped = 0;    ///< cached rounds (cache on only)
  std::vector<sim::World::WriteEvent> write_log;
};

RunResult run(bool scan_cache) {
  sim::WorldOptions opts;
  opts.log_writes = true;
  auto specs = sim::uniform_specs(kN, sim::ActivitySpec::timely(4 * kN));
  sim::World world(kN, std::make_unique<sim::TimelinessSchedule>(specs, kSeed),
                   opts);
  omega::OmegaRegisters om(world);
  om.set_scan_cache(scan_cache);
  om.install_all();
  for (sim::Pid p = 0; p < kN; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  world.run(kSteps);

  RunResult r;
  r.leader = om.io(0).leader;
  for (sim::Pid p = 0; p < kN; ++p) {
    r.counter_reads += world.cell_info(om.counter_register(p).idx).n_reads;
  }
  for (sim::Pid p = 0; p < kN; ++p) {
    const std::string tag = ".p" + std::to_string(p);
    r.scan_full += world.counters().get("omega.scan.full" + tag);
    r.scan_skipped += world.counters().get("omega.scan.skipped" + tag);
  }
  r.write_log = world.write_log();
  return r;
}

}  // namespace

int main() {
  banner("E5: write-efficiency of Omega-Delta from registers (Figure 3)",
         "there is a time after which only the leader (and repeated "
         "candidates, transiently) write to shared registers.");

  JsonReporter json("write_efficiency");
  const RunResult base = run(/*scan_cache=*/false);

  std::printf("\nelected leader: p%d\n\n", base.leader);

  Table table({"window (steps)", "writes by leader", "writes by others",
               "distinct non-leader writers"});
  std::map<sim::Step, std::pair<std::uint64_t, std::uint64_t>> buckets;
  std::map<sim::Step, std::map<sim::Pid, std::uint64_t>> writers;
  for (const auto& ev : base.write_log) {
    const sim::Step b = ev.step / kWindow;
    if (ev.pid == base.leader) {
      ++buckets[b].first;
    } else {
      ++buckets[b].second;
      ++writers[b][ev.pid];
    }
  }
  for (const auto& [b, counts] : buckets) {
    table.row({fmt("%llu-%llu", static_cast<unsigned long long>(b * kWindow),
                   static_cast<unsigned long long>((b + 1) * kWindow)),
               fmt_u(counts.first), fmt_u(counts.second),
               fmt_u(writers.count(b) ? writers[b].size() : 0)});
  }
  table.print();
  if (!buckets.empty()) {
    const auto& last = buckets.rbegin()->second;
    json.row("leader_writes_last_window", static_cast<double>(last.first),
             "writes", kSeed, {{"variant", "before"}});
    json.row("other_writes_last_window", static_cast<double>(last.second),
             "writes", kSeed, {{"variant", "before"}});
  }

  std::printf(
      "\nreading: the \"writes by others\" column must fall to zero after\n"
      "the stabilization prefix -- non-leaders' heartbeat tasks park on\n"
      "the -1 sentinel and their punishment writes cease once every\n"
      "faultCntr has stopped growing.\n");

  banner("E15: stabilization-aware scan caching (same workload)",
         "after stabilization the line-13 counter scan collapses from n "
         "shared reads per round to ~n/refresh_period.");

  const RunResult cached = run(/*scan_cache=*/true);

  // Cache off: every election round reads exactly n counters, so
  // reads/round == n by construction and rounds == reads / n. Cache on:
  // only full scans read; a cached round costs no register op at all.
  const double rounds_off = static_cast<double>(base.counter_reads) / kN;
  const double rounds_on =
      static_cast<double>(cached.scan_full + cached.scan_skipped);
  const double reads_per_round_off = static_cast<double>(kN);
  const double reads_per_round_on =
      rounds_on > 0 ? static_cast<double>(kN) *
                          static_cast<double>(cached.scan_full) / rounds_on
                    : 0.0;

  Table ab({"variant", "CounterRegister reads", "election rounds",
            "full scans", "cached rounds", "reads/round"});
  ab.row({"cache off", fmt_u(base.counter_reads), fmt_f(rounds_off, 0), "-",
          "-", fmt_f(reads_per_round_off)});
  ab.row({"cache on", fmt_u(cached.counter_reads), fmt_f(rounds_on, 0),
          fmt_u(cached.scan_full), fmt_u(cached.scan_skipped),
          fmt_f(reads_per_round_on, 3)});
  ab.print();

  json.row("reads_per_round", reads_per_round_off, "reads/round", kSeed,
           {{"variant", "before"}, {"scan_cache", "off"}});
  json.row("reads_per_round", reads_per_round_on, "reads/round", kSeed,
           {{"variant", "after"}, {"scan_cache", "on"}});
  json.row("election_rounds", rounds_off, "rounds", kSeed,
           {{"variant", "before"}, {"scan_cache", "off"}});
  json.row("election_rounds", rounds_on, "rounds", kSeed,
           {{"variant", "after"}, {"scan_cache", "on"}});

  std::printf(
      "\nreading: total CounterRegister reads stay flat by construction --\n"
      "sim time is priced in register operations, so a fixed step budget\n"
      "buys a fixed number of reads. The win shows up as the two derived\n"
      "columns: reads PER ELECTION ROUND collapse by ~refresh_period (the\n"
      "shared-memory traffic a round costs after stabilization), and the\n"
      "same step budget completes ~refresh_period more rounds. The cached\n"
      "run still performs a full scan on every activeSet change, faultCntr\n"
      "growth, own counter write, and at least every 64 rounds, so the\n"
      "paper's eventual-convergence arguments survive with a bounded\n"
      "observation delay.\n");

  json.write_file(bench_json_path("BENCH_write_efficiency.json"));
  return 0;
}
