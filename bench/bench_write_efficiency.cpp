// E5 -- Write-efficiency of the Figure 3 implementation (closing remark
// of Section 5.2).
//
// With permanent candidates, after stabilization the only process that
// writes to shared registers is the leader (heartbeats); everyone
// else's register activity dies out. We log every register write and
// report, per time window, how many writes came from the leader vs from
// everyone else.
#include <map>
#include <memory>

#include "bench_util.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"

using namespace tbwf;
using namespace tbwf::bench;

int main() {
  banner("E5: write-efficiency of Omega-Delta from registers (Figure 3)",
         "there is a time after which only the leader (and repeated "
         "candidates, transiently) write to shared registers.");

  const int n = 6;
  const sim::Step steps = 3000000;
  const sim::Step window = 250000;

  sim::WorldOptions opts;
  opts.log_writes = true;
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  sim::World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 5),
                   opts);
  omega::OmegaRegisters om(world);
  om.install_all();
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  world.run(steps);

  const sim::Pid leader = om.io(0).leader;
  std::printf("\nelected leader: p%d\n\n", leader);

  Table table({"window (steps)", "writes by leader", "writes by others",
               "distinct non-leader writers"});
  std::map<sim::Step, std::pair<std::uint64_t, std::uint64_t>> buckets;
  std::map<sim::Step, std::map<sim::Pid, std::uint64_t>> writers;
  for (const auto& ev : world.write_log()) {
    const sim::Step b = ev.step / window;
    if (ev.pid == leader) {
      ++buckets[b].first;
    } else {
      ++buckets[b].second;
      ++writers[b][ev.pid];
    }
  }
  for (const auto& [b, counts] : buckets) {
    table.row({fmt("%llu-%llu", static_cast<unsigned long long>(b * window),
                   static_cast<unsigned long long>((b + 1) * window)),
               fmt_u(counts.first), fmt_u(counts.second),
               fmt_u(writers.count(b) ? writers[b].size() : 0)});
  }
  table.print();

  std::printf(
      "\nreading: the \"writes by others\" column must fall to zero after\n"
      "the stabilization prefix -- non-leaders' heartbeat tasks park on\n"
      "the -1 sentinel and their punishment writes cease once every\n"
      "faultCntr has stopped growing.\n");
  return 0;
}
