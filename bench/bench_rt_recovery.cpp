// E13 -- Real-thread recovery latency after supervised faults.
//
// The rt twin of E12: instead of simulator steps, real worker threads
// run the canonical leased counter under the RtSupervisor while a
// directed fault plan kills the likely leader (with restart), stalls
// it, or storms the abortable cell. We report how long the object is
// leaderless after each fault (re-election latency, from the
// conformance checker's lease scan) and how throughput moves across
// the fault: completions per millisecond before the fault, in the
// fault window, and in the stable tail -- plus how long after the
// fault's last edge the rolling throughput first regains half its
// pre-fault level.
//
// Single-core note: this box timeslices every thread on one CPU, so
// absolute numbers are modest and noisy; the shape to look for is
// dip-then-recovery, with re-election far below the fault windows.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/conformance.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_trace.hpp"
#include "rt/rt_workloads.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kRunNs = 30000000;    // 30 ms per episode
constexpr std::uint64_t kFaultAtNs = 10000000;  // faults land at 10 ms
constexpr int kRepeats = 3;

struct Episode {
  std::string name;
  rt::RtFaultPlan plan;
  std::uint64_t fault_from_ns = 0;  ///< start of the disturbance
  std::uint64_t fault_to_ns = 0;    ///< last fault edge (recovery clock zero)
};

struct Measured {
  util::Histogram reelection_ns;
  double before_per_ms = 0;
  double during_per_ms = 0;
  double after_per_ms = 0;
  /// First ms-bucket offset past fault_to where rolling throughput
  /// regains >= 50% of `before`; kNever if it never does.
  static constexpr std::uint64_t kNever = ~0ULL;
  std::uint64_t recovered_after_ns = kNever;
};

double completions_per_ms(const std::vector<std::uint64_t>& done,
                          std::uint64_t from_ns, std::uint64_t to_ns) {
  if (to_ns <= from_ns) return 0.0;
  std::size_t n = 0;
  for (const std::uint64_t t : done) {
    if (t >= from_ns && t < to_ns) ++n;
  }
  return static_cast<double>(n) /
         (static_cast<double>(to_ns - from_ns) / 1e6);
}

Measured run_episode(const Episode& ep, std::uint64_t repeat) {
  rt::LeasedCounterWorkload work(kThreads);
  rt::RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = std::chrono::nanoseconds(kRunNs);
  options.on_restart = work.on_restart();
  rt::RtFaultPlan plan = ep.plan;  // same plan each repeat; OS varies
  (void)repeat;
  rt::RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto snap = sup.snapshot();
  core::RtConformanceOptions conf;
  const auto report = core::check_rt_conformance(snap, plan, conf);

  const auto merged = snap.merged();
  std::vector<std::uint64_t> done;
  for (const auto& ev : merged) {
    if (ev.kind == rt::RtEventKind::kOpComplete) done.push_back(ev.at_ns);
  }
  std::sort(done.begin(), done.end());

  Measured m;
  // Handoff latency: each kill/stall event to the next lease
  // acquisition by anyone. (The conformance checker's stricter
  // leaderless scan only samples faults that land mid-tenure; the
  // handoff is defined for every fault and is the user-visible gap.)
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].kind != rt::RtEventKind::kKill &&
        merged[i].kind != rt::RtEventKind::kStall) {
      continue;
    }
    for (std::size_t j = i + 1; j < merged.size(); ++j) {
      if (merged[j].kind == rt::RtEventKind::kLeaseAcquire) {
        m.reelection_ns.add(merged[j].at_ns - merged[i].at_ns);
        break;
      }
    }
  }
  m.reelection_ns.merge(report.reelection_ns);
  m.before_per_ms = completions_per_ms(done, 2000000, ep.fault_from_ns);
  m.during_per_ms =
      completions_per_ms(done, ep.fault_from_ns, ep.fault_to_ns);
  m.after_per_ms = completions_per_ms(done, ep.fault_to_ns, kRunNs);
  for (std::uint64_t off = 0; ep.fault_to_ns + off + 1000000 <= kRunNs;
       off += 1000000) {
    const double rate = completions_per_ms(done, ep.fault_to_ns + off,
                                           ep.fault_to_ns + off + 1000000);
    if (rate >= 0.5 * m.before_per_ms) {
      m.recovered_after_ns = off;
      break;
    }
  }
  return m;
}

std::string fmt_ms(double per_ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", per_ms);
  return buf;
}

std::string fmt_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

int main() {
  banner("E13: rt recovery latency after supervised faults",
         "after a leader dies/stalls/storms, re-election is quick and "
         "throughput dips then recovers (graceful degradation in clock "
         "units)");

  std::vector<Episode> episodes;
  {
    Episode e;
    e.name = "leader-kill+restart";
    e.plan.kill(0, kFaultAtNs, /*restart_after_ns=*/4000000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 4000000;
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "leader-kill permanent";
    e.plan.kill(0, kFaultAtNs);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 1000000;  // death is instantaneous
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "leader-stall 4ms";
    e.plan.stall(0, kFaultAtNs, 4000000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 4000000;
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "abort-storm 90% 6ms";
    e.plan.storm(kFaultAtNs, kFaultAtNs + 6000000, 900000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 6000000;
    episodes.push_back(e);
  }

  Table table({"episode", "reelect p50 (us)", "reelect max (us)",
               "tput before (/ms)", "during", "after",
               "recovered after (ms)"});
  for (const auto& ep : episodes) {
    util::Histogram reelect;
    double before = 0, during = 0, after = 0;
    std::uint64_t recovered = 0;
    bool never = false;
    for (int r = 0; r < kRepeats; ++r) {
      const Measured m = run_episode(ep, static_cast<std::uint64_t>(r));
      reelect.merge(m.reelection_ns);
      before += m.before_per_ms / kRepeats;
      during += m.during_per_ms / kRepeats;
      after += m.after_per_ms / kRepeats;
      if (m.recovered_after_ns == Measured::kNever) {
        never = true;
      } else {
        recovered = std::max(recovered, m.recovered_after_ns);
      }
    }
    table.row({ep.name,
               reelect.empty() ? "-" : fmt_us(reelect.p50()),
               reelect.empty() ? "-" : fmt_us(reelect.max()),
               fmt_ms(before), fmt_ms(during), fmt_ms(after),
               never ? "never"
                     : fmt_ms(static_cast<double>(recovered) / 1e6)});
  }
  table.print();
  std::printf(
      "\nreelection = lease-holder death/stall to the next acquisition\n"
      "(conformance lease scan); recovered = worst repeat's first 1 ms\n"
      "bucket past the fault's last edge at >= 50%% of the pre-fault "
      "rate.\n");
  return 0;
}
