// E13 -- Real-thread recovery latency after supervised faults.
//
// The rt twin of E12: instead of simulator steps, real worker threads
// run the canonical leased counter under the RtSupervisor while a
// directed fault plan kills the likely leader (with restart), stalls
// it, or storms the abortable cell. We report how long the object is
// leaderless after each fault (re-election latency, from the
// conformance checker's lease scan) and how throughput moves across
// the fault: completions per millisecond before the fault, in the
// fault window, and in the stable tail -- plus how long after the
// fault's last edge the rolling throughput first regains half its
// pre-fault level.
//
// E18 rides along: the graded-degradation sweep for clock faults. A
// ladder of permanent skew magnitudes is applied to one seat's clock
// (through the supervisor's FaultClock) and each rung reports the
// realized progress grade next to the conformance checker's
// clock-degraded excuse set and the post-fault throughput: the curve to
// look for is wait-free at zero skew degrading to lock-free -- never to
// a violation -- once the skewed seat is excused from timeliness.
//
// Both experiments emit BENCH_rt_recovery.json (tbwf-bench-v1). Every
// row is informational ("us", "/ms", "flag"): rt wall-clock numbers on
// a shared CI box must not gate on magnitude, only on presence.
//
// Single-core note: this box timeslices every thread on one CPU, so
// absolute numbers are modest and noisy; the shape to look for is
// dip-then-recovery, with re-election far below the fault windows.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/conformance.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_trace.hpp"
#include "rt/rt_workloads.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kThreads = 4;
constexpr std::uint64_t kRunNs = 30000000;    // 30 ms per episode
constexpr std::uint64_t kFaultAtNs = 10000000;  // faults land at 10 ms
constexpr int kRepeats = 3;

struct Episode {
  std::string name;
  rt::RtFaultPlan plan;
  std::uint64_t fault_from_ns = 0;  ///< start of the disturbance
  std::uint64_t fault_to_ns = 0;    ///< last fault edge (recovery clock zero)
};

struct Measured {
  util::Histogram reelection_ns;
  double before_per_ms = 0;
  double during_per_ms = 0;
  double after_per_ms = 0;
  /// First ms-bucket offset past fault_to where rolling throughput
  /// regains >= 50% of `before`; kNever if it never does.
  static constexpr std::uint64_t kNever = ~0ULL;
  std::uint64_t recovered_after_ns = kNever;
  core::RtGuaranteeGrade grade = core::RtGuaranteeGrade::kNone;
  std::size_t clock_degraded = 0;
};

/// Wait-free = 3 down to none = 0, so the degradation curve plots as a
/// monotone ordinal.
int grade_ord(core::RtGuaranteeGrade grade) {
  switch (grade) {
    case core::RtGuaranteeGrade::kWaitFree: return 3;
    case core::RtGuaranteeGrade::kLockFree: return 2;
    case core::RtGuaranteeGrade::kObstructionFree: return 1;
    case core::RtGuaranteeGrade::kNone: return 0;
  }
  return 0;
}

double completions_per_ms(const std::vector<std::uint64_t>& done,
                          std::uint64_t from_ns, std::uint64_t to_ns) {
  if (to_ns <= from_ns) return 0.0;
  std::size_t n = 0;
  for (const std::uint64_t t : done) {
    if (t >= from_ns && t < to_ns) ++n;
  }
  return static_cast<double>(n) /
         (static_cast<double>(to_ns - from_ns) / 1e6);
}

Measured run_episode(const Episode& ep, std::uint64_t repeat) {
  rt::LeasedCounterWorkload work(kThreads);
  rt::RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = std::chrono::nanoseconds(kRunNs);
  options.on_restart = work.on_restart();
  rt::RtFaultPlan plan = ep.plan;  // same plan each repeat; OS varies
  (void)repeat;
  rt::RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto snap = sup.snapshot();
  core::RtConformanceOptions conf;
  const auto report = core::check_rt_conformance(snap, plan, conf);

  const auto merged = snap.merged();
  std::vector<std::uint64_t> done;
  for (const auto& ev : merged) {
    if (ev.kind == rt::RtEventKind::kOpComplete) done.push_back(ev.at_ns);
  }
  std::sort(done.begin(), done.end());

  Measured m;
  // Handoff latency: each kill/stall event to the next lease
  // acquisition by anyone. (The conformance checker's stricter
  // leaderless scan only samples faults that land mid-tenure; the
  // handoff is defined for every fault and is the user-visible gap.)
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (merged[i].kind != rt::RtEventKind::kKill &&
        merged[i].kind != rt::RtEventKind::kStall) {
      continue;
    }
    for (std::size_t j = i + 1; j < merged.size(); ++j) {
      if (merged[j].kind == rt::RtEventKind::kLeaseAcquire) {
        m.reelection_ns.add(merged[j].at_ns - merged[i].at_ns);
        break;
      }
    }
  }
  m.reelection_ns.merge(report.reelection_ns);
  m.grade = report.grade;
  m.clock_degraded = report.clock_degraded.size();
  m.before_per_ms = completions_per_ms(done, 2000000, ep.fault_from_ns);
  m.during_per_ms =
      completions_per_ms(done, ep.fault_from_ns, ep.fault_to_ns);
  m.after_per_ms = completions_per_ms(done, ep.fault_to_ns, kRunNs);
  for (std::uint64_t off = 0; ep.fault_to_ns + off + 1000000 <= kRunNs;
       off += 1000000) {
    const double rate = completions_per_ms(done, ep.fault_to_ns + off,
                                           ep.fault_to_ns + off + 1000000);
    if (rate >= 0.5 * m.before_per_ms) {
      m.recovered_after_ns = off;
      break;
    }
  }
  return m;
}

std::string fmt_ms(double per_ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", per_ms);
  return buf;
}

std::string fmt_us(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

int main() {
  banner("E13: rt recovery latency after supervised faults",
         "after a leader dies/stalls/storms, re-election is quick and "
         "throughput dips then recovers (graceful degradation in clock "
         "units)");

  std::vector<Episode> episodes;
  {
    Episode e;
    e.name = "leader-kill+restart";
    e.plan.kill(0, kFaultAtNs, /*restart_after_ns=*/4000000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 4000000;
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "leader-kill permanent";
    e.plan.kill(0, kFaultAtNs);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 1000000;  // death is instantaneous
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "leader-stall 4ms";
    e.plan.stall(0, kFaultAtNs, 4000000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 4000000;
    episodes.push_back(e);
  }
  {
    Episode e;
    e.name = "abort-storm 90% 6ms";
    e.plan.storm(kFaultAtNs, kFaultAtNs + 6000000, 900000);
    e.fault_from_ns = kFaultAtNs;
    e.fault_to_ns = kFaultAtNs + 6000000;
    episodes.push_back(e);
  }

  JsonReporter json("rt_recovery");
  json.set_config("variant", "after");

  Table table({"episode", "reelect p50 (us)", "reelect max (us)",
               "tput before (/ms)", "during", "after",
               "recovered after (ms)"});
  for (const auto& ep : episodes) {
    util::Histogram reelect;
    double before = 0, during = 0, after = 0;
    std::uint64_t recovered = 0;
    bool never = false;
    for (int r = 0; r < kRepeats; ++r) {
      const Measured m = run_episode(ep, static_cast<std::uint64_t>(r));
      reelect.merge(m.reelection_ns);
      before += m.before_per_ms / kRepeats;
      during += m.during_per_ms / kRepeats;
      after += m.after_per_ms / kRepeats;
      if (m.recovered_after_ns == Measured::kNever) {
        never = true;
      } else {
        recovered = std::max(recovered, m.recovered_after_ns);
      }
    }
    table.row({ep.name,
               reelect.empty() ? "-" : fmt_us(reelect.p50()),
               reelect.empty() ? "-" : fmt_us(reelect.max()),
               fmt_ms(before), fmt_ms(during), fmt_ms(after),
               never ? "never"
                     : fmt_ms(static_cast<double>(recovered) / 1e6)});
    const std::vector<std::pair<std::string, std::string>> config = {
        {"experiment", "E13"}, {"episode", ep.name}};
    if (!reelect.empty()) {
      json.row("reelect_p50_us", static_cast<double>(reelect.p50()) / 1e3,
               "us", 0, config);
      json.row("reelect_max_us", static_cast<double>(reelect.max()) / 1e3,
               "us", 0, config);
    }
    json.row("tput_before_per_ms", before, "/ms", 0, config);
    json.row("tput_after_per_ms", after, "/ms", 0, config);
  }
  table.print();
  std::printf(
      "\nreelection = lease-holder death/stall to the next acquisition\n"
      "(conformance lease scan); recovered = worst repeat's first 1 ms\n"
      "bucket past the fault's last edge at >= 50%% of the pre-fault "
      "rate.\n");

  banner("E18: graded degradation under clock skew",
         "as one seat's clock skews further ahead, the run's realized "
         "grade degrades from wait-free to lock-free -- the loss is the "
         "excused clock-degraded seat, never a violation");

  constexpr std::int64_t kSkewLadderNs[] = {0, 500000, 1000000, 2000000,
                                            4000000};
  Table dtable({"skew (us)", "grade (best)", "clock-degraded",
                "tput before (/ms)", "after", "reelect p50 (us)"});
  for (const std::int64_t mag : kSkewLadderNs) {
    Episode ep;
    ep.name = "skew " + std::to_string(mag / 1000) + "us";
    if (mag != 0) {
      // Permanent: the distortion itself is part of the stable suffix,
      // so the conformance checker grades THROUGH it instead of waiting
      // it out -- that is the whole point of the curve.
      ep.plan.clock_fault(rt::RtClockFaultKind::Skew, /*tid=*/0, kFaultAtNs,
                          rt::RtClockFaultEvent::kForeverNs, mag);
    }
    ep.fault_from_ns = kFaultAtNs;
    ep.fault_to_ns = kFaultAtNs;
    // Best of the repeats: a realized grade is demonstrated capability,
    // and single-core scheduling noise can only destroy evidence of
    // timeliness, never fabricate it -- worst-of would plot outliers.
    int best_ord = 0;
    std::size_t degraded = 0;
    double before = 0, after = 0;
    util::Histogram reelect;
    for (int r = 0; r < kRepeats; ++r) {
      const Measured m = run_episode(ep, static_cast<std::uint64_t>(r));
      best_ord = std::max(best_ord, grade_ord(m.grade));
      degraded = std::max(degraded, m.clock_degraded);
      before += m.before_per_ms / kRepeats;
      after += m.after_per_ms / kRepeats;
      reelect.merge(m.reelection_ns);
    }
    static const char* kOrdName[] = {"none", "obstruction-free",
                                     "lock-free", "wait-free"};
    dtable.row({std::to_string(mag / 1000), kOrdName[best_ord],
                std::to_string(degraded), fmt_ms(before), fmt_ms(after),
                reelect.empty() ? "-" : fmt_us(reelect.p50())});
    const std::vector<std::pair<std::string, std::string>> config = {
        {"experiment", "E18"},
        {"skew_us", std::to_string(mag / 1000)}};
    json.row("grade_ord", static_cast<double>(best_ord), "flag", 0, config);
    json.row("clock_degraded_seats", static_cast<double>(degraded), "flag",
             0, config);
    json.row("tput_after_per_ms", after, "/ms", 0, config);
  }
  dtable.print();
  std::printf(
      "\ngrade = best repeat's realized conformance grade (3 = wait-free\n"
      "... 0 = none); clock-degraded = seats the checker excused from\n"
      "timeliness because the plan faulted their clock in the suffix.\n");

  json.write_file(bench_json_path("BENCH_rt_recovery.json"));
  return 0;
}
