// E3 -- Omega-Delta election latency and stability (Definition 5,
// Theorems 7/11/12).
//
// All-permanent-candidate runs over the atomic-register implementation
// (Figure 3): we sweep n and the candidate mix and report (a) the step
// at which the leadership stabilized system-wide (last change of any
// permanent candidate's LEADER output), (b) the elected leader, and
// (c) whether the Definition 5 checker passed over the suffix.
#include <memory>

#include "bench_util.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "omega/omega_spec.hpp"
#include "sim/trajectory.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

struct ElectionResult {
  sim::Step stabilized_at = 0;
  sim::Pid leader = omega::kNoLeader;
  bool spec_ok = false;
};

ElectionResult run_election(int n, int flickering, std::uint64_t seed,
                            sim::Step steps) {
  std::vector<sim::ActivitySpec> specs;
  for (int i = 0; i < n; ++i) {
    if (i < flickering) {
      specs.push_back(sim::ActivitySpec::growing_flicker(
          1500 + 200 * i, 300 + 50 * i));
    } else {
      specs.push_back(sim::ActivitySpec::timely(4 * n));
    }
  }
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  sim::World world(n, std::move(sched));
  omega::OmegaRegisters om(world);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "cand", [&om](sim::SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  world.run(steps);

  ElectionResult r;
  omega::CandidateClassification classes;
  for (sim::Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  // Stabilization: the last leader change across the *timely* permanent
  // candidates (flickering processes update their outputs only when they
  // get steps, so their trajectories trail behind harmlessly).
  for (const sim::Pid p : timely) {
    r.stabilized_at = std::max(r.stabilized_at, record.leader(p).last_change());
  }
  const auto check = omega::check_omega_spec(
      record, classes, timely, (r.stabilized_at + steps) / 2,
      /*require_leader_permanent=*/false, &world.trace());
  r.leader = record.leader(timely.empty() ? 0 : timely.front()).final_value();
  r.spec_ok = check.ok;
  return r;
}

}  // namespace

int main() {
  banner("E3: Omega-Delta election latency (Figure 3 implementation)",
         "if some timely process is a permanent candidate, a timely leader "
         "is elected and every permanent candidate converges to it.");

  Table table({"n", "flickering", "elected", "stabilized at step",
               "Definition 5 holds?"});
  JsonReporter json("omega_election");
  json.set_config("variant", "after");
  const auto emit = [&json](int n, int flicker, std::uint64_t seed,
                            const ElectionResult& r) {
    const std::vector<std::pair<std::string, std::string>> config = {
        {"n", fmt_i(n)}, {"flickering", fmt_i(flicker)}};
    json.row("stabilized_at", static_cast<double>(r.stabilized_at), "steps",
             seed, config);
    json.row("spec_ok", r.spec_ok ? 1.0 : 0.0, "bool", seed, config);
  };

  for (int n : {2, 4, 8, 12}) {
    const sim::Step steps = 400000ULL * n;
    const std::uint64_t seed = 17 + n;
    const auto r = run_election(n, 0, seed, steps);
    table.row({fmt_i(n), "0", r.leader == omega::kNoLeader
                                  ? "?"
                                  : fmt("p%d", r.leader),
               fmt_u(r.stabilized_at), r.spec_ok ? "yes" : "NO"});
    emit(n, 0, seed, r);
  }
  for (int n : {4, 8}) {
    for (int flicker : {1, 2, 3}) {
      const sim::Step steps = 2500000ULL * n;
      const std::uint64_t seed = 31 + n + flicker;
      const auto r = run_election(n, flicker, seed, steps);
      table.row({fmt_i(n), fmt_i(flicker),
                 r.leader == omega::kNoLeader ? "?" : fmt("p%d", r.leader),
                 fmt_u(r.stabilized_at), r.spec_ok ? "yes" : "NO"});
      emit(n, flicker, seed, r);
    }
  }
  table.print();
  json.write_file(bench_json_path("BENCH_omega_election.json"));

  std::printf(
      "\nreading: stabilization grows with n (monitor timeouts adapt per\n"
      "pair) and with the number of flickering candidates (each flicker\n"
      "episode punishes the flaky process until its counter exceeds every\n"
      "timely candidate's). The elected leader is always a timely process\n"
      "-- never one of the flickering ones, regardless of pid order.\n");
  return 0;
}
