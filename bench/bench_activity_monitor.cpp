// E4 -- Activity monitor property matrix (Definition 9, Theorem 10).
//
// For the pair (p0 monitors p1) we sweep every combination of the two
// inputs' limit behaviours (eventually-on / eventually-off /
// oscillating) and the target's timeliness, and report the converged
// STATUS, the FAULTCNTR trajectory (mid-run vs end-of-run), and the
// bounded/unbounded verdict -- one row per case of Definition 9.
#include <memory>

#include "bench_util.hpp"
#include "monitor/activity_monitor.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

enum class Mode { On, Off, Osc };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::On:  return "eventually on";
    case Mode::Off: return "eventually off";
    case Mode::Osc: return "oscillating";
  }
  return "?";
}

struct CaseResult {
  monitor::Status status;
  std::uint64_t faults_mid = 0;
  std::uint64_t faults_end = 0;
};

CaseResult run_case(Mode monitoring, Mode active_for, bool target_timely,
                    std::uint64_t seed) {
  std::vector<sim::ActivitySpec> specs = {
      sim::ActivitySpec::timely(4),
      target_timely ? sim::ActivitySpec::timely(4)
                    : sim::ActivitySpec::growing_flicker(300, 60),
  };
  sim::World world(2, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  monitor::MonitorMatrix monitors(world);
  monitors.install_all();
  auto& io = monitors.io(0, 1);
  auto& af = monitors.active_for(1, 0);

  auto drive = [](Mode mode, bool& flag, int cycle) {
    switch (mode) {
      case Mode::On:  flag = true; break;
      case Mode::Off: flag = (cycle < 3); break;
      case Mode::Osc: flag = (cycle % 2 == 0); break;
    }
  };
  for (int cycle = 0; cycle < 24; ++cycle) {
    drive(monitoring, io.monitoring, cycle);
    drive(active_for, af.active_for, cycle);
    world.run(2500);
  }
  // Limit behaviour suffix.
  drive(monitoring, io.monitoring, 1000000);
  drive(active_for, af.active_for, 1000001);
  world.run(120000);
  CaseResult r;
  r.faults_mid = io.fault_cntr;
  world.run(600000);
  r.faults_end = io.fault_cntr;
  r.status = io.status;
  return r;
}

std::string bounded_cell(const CaseResult& r, bool expect_unbounded) {
  const bool grew = r.faults_end > r.faults_mid + 1;
  if (expect_unbounded) return grew ? "UNBOUNDED (prop 6)" : "bounded (?)";
  return grew ? "GREW (?)" : "bounded (prop 5)";
}

}  // namespace

int main() {
  banner("E4: activity monitor A(p,q) -- Definition 9 property matrix",
         "status converges per properties 1-4; faultCntr is bounded in "
         "every case of property 5 and unbounded exactly in property 6.");

  Table table({"monitoring", "active-for", "q timely?", "final status",
               "faults mid/end", "faultCntr verdict"});

  std::uint64_t seed = 1000;
  for (Mode mon : {Mode::On, Mode::Off, Mode::Osc}) {
    for (Mode act : {Mode::On, Mode::Off, Mode::Osc}) {
      const auto r = run_case(mon, act, /*target_timely=*/true, ++seed);
      table.row({mode_name(mon), mode_name(act), "yes",
                 monitor::to_string(r.status),
                 fmt("%llu / %llu",
                     static_cast<unsigned long long>(r.faults_mid),
                     static_cast<unsigned long long>(r.faults_end)),
                 bounded_cell(r, false)});
    }
  }
  // Property 6: the one configuration where faultCntr must diverge.
  {
    const auto r = run_case(Mode::On, Mode::On, /*target_timely=*/false,
                            ++seed);
    table.row({mode_name(Mode::On), mode_name(Mode::On), "NO (degrading)",
               monitor::to_string(r.status),
               fmt("%llu / %llu",
                   static_cast<unsigned long long>(r.faults_mid),
                   static_cast<unsigned long long>(r.faults_end)),
               bounded_cell(r, true)});
  }
  // Property 5b: the target crashes.
  {
    std::vector<sim::ActivitySpec> specs = {sim::ActivitySpec::timely(4),
                                            sim::ActivitySpec::timely(4)};
    sim::World world(2,
                     std::make_unique<sim::TimelinessSchedule>(specs, 999));
    world.schedule_crash(1, 30000);
    monitor::MonitorMatrix monitors(world);
    monitors.install_all();
    monitors.io(0, 1).monitoring = true;
    monitors.active_for(1, 0).active_for = true;
    world.run(200000);
    const auto mid = monitors.io(0, 1).fault_cntr;
    world.run(600000);
    CaseResult r{monitors.io(0, 1).status, mid, monitors.io(0, 1).fault_cntr};
    table.row({"eventually on", "eventually on", "crashed",
               monitor::to_string(r.status),
               fmt("%llu / %llu",
                   static_cast<unsigned long long>(r.faults_mid),
                   static_cast<unsigned long long>(r.faults_end)),
               bounded_cell(r, false)});
  }
  table.print();

  std::printf(
      "\nreading: only the (on, on, untimely) row diverges -- the monitor\n"
      "suspects exactly the processes that are genuinely not p-timely,\n"
      "and the -1 sentinel keeps willing inactivity and crashes from\n"
      "being punished forever.\n");
  return 0;
}
