// E10 -- The query-abortable universal construction (the substrate the
// paper takes from [2]; ours is a register-based abort-on-contention
// Paxos -- see src/qa/qa_universal.hpp).
//
// Wait-freedom and contention behaviour: per concurrency level we
// report steps per *attempted* operation (bounded regardless of
// contention -- that is wait-freedom), the fraction of attempts that
// returned bottom, and the end-to-end accounting check (counter value
// == applied increments). Both base-register families are measured.
#include <memory>

#include "bench_util.hpp"
#include "qa/qa_universal.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

struct QaStats {
  util::Histogram steps_per_attempt;
  std::uint64_t attempts = 0;
  std::uint64_t bottoms = 0;
  std::uint64_t applied = 0;
  bool consistent = false;
};

template <class Base>
sim::Task qa_worker(sim::SimEnv& env, qa::QaUniversal<qa::Counter, Base>& obj,
                    int ops, QaStats& stats, int& done) {
  for (int i = 0; i < ops; ++i) {
    const sim::Step before = env.local_steps();
    auto r = co_await obj.invoke(env, qa::Counter::Op{1});
    stats.steps_per_attempt.add(env.local_steps() - before);
    ++stats.attempts;
    while (r.bottom()) {
      ++stats.bottoms;
      const sim::Step qbefore = env.local_steps();
      r = co_await obj.query(env);
      stats.steps_per_attempt.add(env.local_steps() - qbefore);
      ++stats.attempts;
      if (r.bottom()) co_await env.yield();
    }
    if (r.ok()) ++stats.applied;
  }
  ++done;
}

template <class Base>
QaStats run(int n, int ops_per_proc, registers::AbortPolicy* policy,
            std::uint64_t seed) {
  sim::World world(n, std::make_unique<sim::RandomSchedule>(seed));
  qa::QaUniversal<qa::Counter, Base> obj(world, 0, policy);
  QaStats stats;
  int done = 0;
  for (sim::Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, ops_per_proc](sim::SimEnv& env) {
      return qa_worker<Base>(env, obj, ops_per_proc, stats, done);
    });
  }
  world.run_until([&] { return done == n; }, 200000000);
  stats.consistent =
      obj.peek_frontier().state == static_cast<std::int64_t>(stats.applied);
  return stats;
}

void emit(Table& table, const char* base, int n, const QaStats& s) {
  table.row({base, fmt_i(n), fmt_u(s.attempts),
             fmt("%.1f%%", s.attempts
                               ? 100.0 * s.bottoms / s.attempts
                               : 0.0),
             fmt_u(s.steps_per_attempt.p50()),
             fmt_u(s.steps_per_attempt.p99()),
             fmt_u(s.steps_per_attempt.max()),
             s.consistent ? "yes" : "NO"});
}

}  // namespace

int main() {
  banner("E10: the query-abortable universal object -- wait-freedom under "
         "contention",
         "every attempt returns in O(n) of the caller's steps (possibly "
         "with bottom); solo attempts never abort; successful ops "
         "linearize.");

  Table table({"base registers", "n procs", "attempts", "bottom rate",
               "steps/attempt p50", "p99", "max", "state==applied?"});

  for (int n : {1, 2, 4, 6, 8}) {
    const int ops = 400 / n;
    {
      const auto s = run<qa::AtomicBase>(n, ops, nullptr, 50 + n);
      emit(table, "atomic", n, s);
    }
    {
      registers::ProbabilisticAbortPolicy policy(60 + n, 0.5, 0.5, 0.5);
      const auto s = run<qa::AbortableBase>(n, ops, &policy, 50 + n);
      emit(table, "abortable (p=0.5)", n, s);
    }
  }
  table.print();

  std::printf(
      "\nreading: the max steps/attempt column stays ~linear in n at every\n"
      "contention level -- that bounded per-attempt cost IS wait-freedom\n"
      "(attempts may abort, but they always return). The bottom rate is 0\n"
      "for n=1 (solo never aborts) and grows with contention; the caller\n"
      "recovers the fate of every aborted op through query, and the final\n"
      "accounting is exact in every configuration.\n");
  return 0;
}
