// E1 -- Graceful degradation (Section 1.1).
//
// n processes all issue an infinite stream of counter increments; k of
// them are timely, the rest flicker with ever-growing silent gaps. As k
// goes from 0 to n, the paper says TBWF progress interpolates from
// obstruction-freedom through lock-freedom all the way to wait-freedom:
// every timely process is protected, no matter how many processes
// degrade. The baselines bracket it:
//   - OF-only: no guarantee under any contention;
//   - boosted-WF ([7]/[11]-style): assumes ALL processes timely -- a
//     single flaky process can freeze everyone;
//   - CAS lock-free: system-wide progress but individual starvation
//     possible (and it needs a primitive TBWF does without).
//
// Reported per (system, k): completions of the worst-off timely process
// in the measured suffix, total completions, and whether every timely
// process kept progressing (the TBWF verdict).
#include <memory>

#include "baselines/boosted_wf.hpp"
#include "baselines/lf_universal.hpp"
#include "baselines/of_object.hpp"
#include "bench_util.hpp"

using namespace tbwf;
using namespace tbwf::bench;

namespace {

constexpr int kN = 6;
constexpr sim::Step kSteps = 6000000;
constexpr sim::Step kWarmup = 2000000;
constexpr sim::Step kMaxGap = 1000000;

std::vector<sim::ActivitySpec> specs_for(int k, std::uint64_t /*seed*/) {
  std::vector<sim::ActivitySpec> specs;
  for (int i = 0; i < kN; ++i) {
    if (i < k) {
      specs.push_back(sim::ActivitySpec::timely(4 * kN));
    } else {
      specs.push_back(sim::ActivitySpec::growing_flicker(
          2000 + 500 * i, 400 + 100 * i));
    }
  }
  return specs;
}

struct RunResult {
  std::uint64_t worst_timely = 0;
  std::uint64_t total = 0;
  bool tbwf_holds = false;
};

template <class MakeObj>
RunResult run_system(int k, std::uint64_t seed, MakeObj&& make_obj) {
  auto specs = specs_for(k, seed);
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  sim::World world(kN, std::move(sched));
  auto obj = make_obj(world);
  for (sim::Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](sim::SimEnv& env) {
      return counter_worker(env, *obj);
    });
  }
  world.run(kSteps);

  RunResult r;
  const auto counts = completions_since(obj->log(), kWarmup);
  r.worst_timely = timely.empty() ? 0 : min_over(counts, timely);
  r.total = sum_over(counts);
  std::vector<sim::Pid> all;
  for (sim::Pid p = 0; p < kN; ++p) all.push_back(p);
  const auto report = core::analyze_progress(obj->log(), world.now(),
                                             kWarmup, kMaxGap, all);
  r.tbwf_holds = core::check_tbwf(report, timely).holds;
  return r;
}

std::string verdict_cell(const RunResult& r, int k) {
  if (k == 0) return "n/a (no timely)";
  return r.tbwf_holds ? "yes" : "NO";
}

}  // namespace

int main() {
  banner("E1: graceful degradation -- progress vs number of timely processes",
         "TBWF protects exactly the timely processes for every k; the "
         "boosted baseline needs k = n; OF-only guarantees nothing.");

  Table table({"k timely", "system", "worst timely proc ops", "total ops",
               "all timely protected?"});

  for (int k = 0; k <= kN; ++k) {
    const std::uint64_t seed = 100 + k;
    {
      auto r = run_system(k, seed, [](sim::World& w) {
        auto sys = std::make_shared<core::TbwfSystem<qa::Counter>>(
            w, 0, core::OmegaBackend::AtomicRegisters);
        struct Facade {
          std::shared_ptr<core::TbwfSystem<qa::Counter>> sys;
          sim::Co<std::int64_t> invoke(sim::SimEnv& env, qa::Counter::Op op) {
            return sys->object().invoke(env, op);
          }
          const core::OpLog& log() const { return sys->object().log(); }
        };
        return std::make_shared<Facade>(Facade{sys});
      });
      table.row({fmt_i(k), "TBWF (this paper)", fmt_u(r.worst_timely),
                 fmt_u(r.total), verdict_cell(r, k)});
    }
    {
      auto r = run_system(k, seed, [](sim::World& w) {
        return std::make_shared<baselines::OfObject<qa::Counter>>(w, 0);
      });
      table.row({fmt_i(k), "OF-only", fmt_u(r.worst_timely), fmt_u(r.total),
                 verdict_cell(r, k)});
    }
    {
      auto r = run_system(k, seed, [](sim::World& w) {
        return std::make_shared<baselines::BoostedWf<qa::Counter>>(w, 0);
      });
      table.row({fmt_i(k), "boosted-WF [7,11]", fmt_u(r.worst_timely),
                 fmt_u(r.total), verdict_cell(r, k)});
    }
    {
      auto r = run_system(k, seed, [](sim::World& w) {
        return std::make_shared<baselines::LfUniversal<qa::Counter>>(w, 0);
      });
      table.row({fmt_i(k), "lock-free CAS", fmt_u(r.worst_timely),
                 fmt_u(r.total), verdict_cell(r, k)});
    }
  }
  table.print();

  std::printf(
      "\nreading: TBWF's \"all timely protected\" column should be yes for\n"
      "every k >= 1, and its worst-timely throughput should stay within a\n"
      "small factor across k. The boosted baseline's timely processes\n"
      "should collapse for k < n whenever a flaky process captures the\n"
      "panic token; OF-only offers no per-process floor at all.\n");
  return 0;
}
