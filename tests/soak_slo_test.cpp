// SLO grading unit tests: budget boundary semantics, the inconclusive
// (nothing-submitted) and all-failed edge cases, commit-stall
// accounting, and the availability tracker's window algebra that the
// budgets consume.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "soak/availability.hpp"
#include "soak/slo.hpp"

namespace tbwf::soak {
namespace {

/// Healthy-looking stats: 100 requests, all completed, every phase
/// latency exactly 10 (inside the histogram's exact range).
ServiceStats healthy_stats(std::uint64_t last_commit_at = 900) {
  ServiceStats stats;
  stats.submitted = 100;
  stats.completed = 100;
  stats.route.record_n(10, 100);
  stats.ack.record_n(10, 100);
  stats.commit.record_n(10, 100);
  stats.last_commit_at = last_commit_at;
  return stats;
}

AvailabilityTracker quiet_tracker(std::uint64_t end = 1000) {
  AvailabilityTracker t;
  t.observe(0, ServiceState::kOk);
  t.finish(end);
  return t;
}

bool has_violation_containing(const SloReport& r, const std::string& what) {
  for (const auto& v : r.violations) {
    if (v.find(what) != std::string::npos) return true;
  }
  return false;
}

TEST(SloTest, DefaultBudgetGradesNothingAndPasses) {
  const SloReport r = grade_slo(healthy_stats(), quiet_tracker(),
                                SloBudget{}, "steps", 1000);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.conclusive);
  EXPECT_TRUE(r.violations.empty());
}

TEST(SloTest, NothingSubmittedIsInconclusiveNotOk) {
  const SloReport r = grade_slo(ServiceStats{}, quiet_tracker(),
                                SloBudget{}, "steps", 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.conclusive);
  EXPECT_TRUE(has_violation_containing(r, "inconclusive"));
  EXPECT_EQ(slo_summary(r).verdict, "SLO-INCONCLUSIVE");
  // The joint grade treats inconclusive as a failed SLO axis.
  EXPECT_TRUE(slo_summary(r).checked);
  EXPECT_FALSE(slo_summary(r).ok);
}

TEST(SloTest, AllRequestsFailedIsAViolation) {
  ServiceStats stats;
  stats.submitted = 50;  // everything submitted, nothing ever committed
  const SloReport r =
      grade_slo(stats, quiet_tracker(), SloBudget{}, "steps", 1000);
  EXPECT_TRUE(r.conclusive);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_violation_containing(r, "failed"));
  EXPECT_EQ(slo_summary(r).verdict, "SLO-VIOLATED");
}

TEST(SloTest, LatencyBudgetBoundaryIsInclusive) {
  SloBudget at;
  at.route_p99 = 10;  // measured p99 is exactly 10: on-budget passes
  EXPECT_TRUE(
      grade_slo(healthy_stats(), quiet_tracker(), at, "steps", 1000).ok);

  SloBudget under;
  under.route_p99 = 9;
  const SloReport r =
      grade_slo(healthy_stats(), quiet_tracker(), under, "steps", 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_violation_containing(r, "route p99"));
}

TEST(SloTest, CommitStallMeasuresRunTail) {
  SloBudget budget;
  budget.max_commit_stall = 100;
  // Last commit at 900, run end 1000: the 100-step stall is on-budget.
  EXPECT_TRUE(grade_slo(healthy_stats(900), quiet_tracker(), budget,
                        "steps", 1000)
                  .ok);
  // Last commit at 899: stall 101 breaches.
  const SloReport r = grade_slo(healthy_stats(899), quiet_tracker(),
                                budget, "steps", 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.commit_stall, 101u);
  EXPECT_TRUE(has_violation_containing(r, "commit stall"));
}

TEST(SloTest, AvailabilityBudgetsGradeWindows) {
  AvailabilityTracker t;
  t.observe(0, ServiceState::kOk);
  t.observe(100, ServiceState::kNoLeader);
  t.observe(150, ServiceState::kOk);
  t.observe(500, ServiceState::kNoLeader);
  t.finish(600);  // open outage sealed at the end: [500, 600)
  ASSERT_EQ(t.windows().size(), 2u);
  EXPECT_EQ(t.total_unavailable(), 150u);
  EXPECT_EQ(t.longest_outage(), 100u);

  SloBudget fraction;
  fraction.max_unavailable_fraction = 0.25;  // 150/600 = 25%: on-budget
  EXPECT_TRUE(
      grade_slo(healthy_stats(), t, fraction, "steps", 600).ok);
  fraction.max_unavailable_fraction = 0.24;
  EXPECT_TRUE(has_violation_containing(
      grade_slo(healthy_stats(), t, fraction, "steps", 600),
      "unavailability"));

  SloBudget longest;
  longest.max_outage = 99;  // the [500, 600) window is 100 long
  EXPECT_TRUE(has_violation_containing(
      grade_slo(healthy_stats(), t, longest, "steps", 600),
      "longest outage"));
}

TEST(SloTest, EmptyAvailabilityRecordPassesTightBudgets) {
  // A run whose sampler never fired: no span, no outage, and even a
  // zero-tolerance fraction budget passes (0 is not > 0).
  AvailabilityTracker t;
  t.finish(0);
  EXPECT_EQ(t.observed_span(), 0u);
  SloBudget budget;
  budget.max_unavailable_fraction = 0.0;
  budget.max_outage = 1;
  EXPECT_TRUE(grade_slo(healthy_stats(), t, budget, "steps", 1000).ok);
}

TEST(AvailabilityTrackerTest, ZeroLengthWindowsAreDropped) {
  AvailabilityTracker t;
  t.observe(5, ServiceState::kNoLeader);
  t.observe(5, ServiceState::kOk);  // opens and closes at one instant
  t.finish(10);
  EXPECT_TRUE(t.windows().empty());
  EXPECT_EQ(t.total_unavailable(), 0u);
}

TEST(AvailabilityTrackerTest, StateChangeSplitsTheWindow) {
  AvailabilityTracker t;
  t.observe(0, ServiceState::kOk);
  t.observe(10, ServiceState::kNoLeader);
  t.observe(20, ServiceState::kWrongLeader);  // same outage, new kind
  t.observe(30, ServiceState::kOk);
  t.finish(40);
  ASSERT_EQ(t.windows().size(), 2u);
  EXPECT_EQ(t.windows()[0].state, ServiceState::kNoLeader);
  EXPECT_EQ(t.windows()[0].from, 10u);
  EXPECT_EQ(t.windows()[0].to, 20u);
  EXPECT_EQ(t.windows()[1].state, ServiceState::kWrongLeader);
  EXPECT_EQ(t.windows()[1].to, 30u);
  EXPECT_EQ(t.total_unavailable(), 20u);
}

TEST(SloTest, CompletionFractionBudget) {
  ServiceStats stats = healthy_stats();
  stats.completed = 89;  // 89% completion
  SloBudget budget;
  budget.min_completed_fraction = 0.9;
  const SloReport r =
      grade_slo(stats, quiet_tracker(), budget, "steps", 1000);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_violation_containing(r, "completed fraction"));
  budget.min_completed_fraction = 0.89;
  EXPECT_TRUE(grade_slo(stats, quiet_tracker(), budget, "steps", 1000).ok);
}

}  // namespace
}  // namespace tbwf::soak
