// The rt chaos sweep: 72 seed-replayable fault plans (kills with and
// without restart, stalls, abort storms) against the canonical leased
// counter workload on real threads, each run judged by the rt
// conformance checker. The checker derives which threads were in fact
// timely in the stable suffix and holds the run only to the graded
// guarantee it earned -- a failure therefore means the runtime broke
// TBWF's degradation contract, not that the OS scheduled unkindly.
//
// A failing case replays from its seed alone: the plan is a pure
// function of (seed, GenOptions), printed in full on failure.
//
// When RT_CONFORMANCE_REPORT names a file, every case appends its
// report summary there (the CI rt-stress job uploads it as an
// artifact).
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/conformance.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_workloads.hpp"

namespace tbwf::rt {
namespace {

RtFaultPlan::GenOptions sweep_gen_options() {
  RtFaultPlan::GenOptions g;
  g.nthreads = 4;
  g.horizon_ns = 24000000;  // 24 ms, 40% quiet tail
  return g;
}

core::RtConformanceOptions sweep_conformance_options() {
  core::RtConformanceOptions c;
  // Generous bounds: this box has one core, so timeslicing alone can
  // open multi-ms activity gaps. Threads the OS starves past the bound
  // simply grade as non-timely; the checker never blames them.
  c.timely_bound_ns = 2500000;      // 2.5 ms
  c.stabilization_ns = 3000000;     // 3 ms after the last fault edge
  c.min_suffix_ns = 4000000;        // judge at least 4 ms of calm
  c.max_completion_gap_ns = 12000000;  // 12 ms
  return c;
}

void append_report_line(const std::string& line) {
  const char* path = std::getenv("RT_CONFORMANCE_REPORT");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

class RtFaultSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtFaultSweepTest, GradedGuaranteeHolds) {
  const std::uint64_t seed = GetParam();
  const auto gen = sweep_gen_options();
  const RtFaultPlan plan = RtFaultPlan::generate(seed, gen);

  LeasedCounterWorkload work(gen.nthreads);
  RtSupervisorOptions options;
  options.nthreads = gen.nthreads;
  // Run past the horizon so the suffix is comfortably longer than
  // min_suffix even for plans whose last edge sits at 60% of it, and
  // restarts anchored on (possibly drifted) death times still land.
  options.run_for = std::chrono::nanoseconds(gen.horizon_ns + 6000000);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto report = core::check_rt_conformance(
      sup.snapshot(), plan, sweep_conformance_options(), &sup.counters());

  append_report_line(report.summary());
  ASSERT_TRUE(report.ok) << report.summary() << "\n" << plan.summary();

  // Fault accounting must match the plan exactly (every kill fired,
  // every due restart happened).
  std::uint64_t kills = 0, restarts = 0;
  for (int t = 0; t < gen.nthreads; ++t) {
    kills += sup.counters().get("rt.kills.t" + std::to_string(t));
    restarts += sup.counters().get("rt.restarts.t" + std::to_string(t));
  }
  std::uint64_t planned_restarts = 0;
  for (const auto& k : plan.kills()) {
    if (k.restart_after_ns > 0) ++planned_restarts;
  }
  EXPECT_EQ(kills, plan.kills().size()) << plan.summary();
  EXPECT_EQ(restarts, planned_restarts) << plan.summary();

  // Liveness floor: someone committed, and the cell is bounded by the
  // commit tally (the leased counter is not exactly-once; see
  // rt_workloads.hpp).
  std::uint64_t commits = 0;
  for (int t = 0; t < gen.nthreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u) << plan.summary();
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits);
}

// The instantiation prefix must keep the Rt- prefix: the tsan CI job
// selects rt tests with ctest -R '^(Rt|LeaseElector)'.
INSTANTIATE_TEST_SUITE_P(RtSeeds, RtFaultSweepTest,
                         ::testing::Range<std::uint64_t>(1, 73));

// Plan generation itself must be replayable: the acceptance contract
// is "re-run with the seed reproduces the exact plan".
TEST(RtFaultSweepPlanTest, GenerationIsDeterministic) {
  const auto gen = sweep_gen_options();
  for (std::uint64_t seed = 1; seed <= 72; ++seed) {
    const RtFaultPlan a = RtFaultPlan::generate(seed, gen);
    const RtFaultPlan b = RtFaultPlan::generate(seed, gen);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
    // Plans respect the quiet tail: the conformance suffix exists.
    EXPECT_LE(a.last_event_ns(),
              static_cast<std::uint64_t>(
                  static_cast<double>(gen.horizon_ns) * (1.0 - gen.quiet_tail)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace tbwf::rt
