// Adversarial scenarios beyond random scheduling: the contention
// adversary that engineers overlapping register operations, the
// safe-register ablation (why Figure 2 needs more than safe registers),
// Corollary 8, and random crash injection sweeps.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "monitor/activity_monitor.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/msg_channel.hpp"
#include "omega/omega_registers.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

// -- the contention adversary ----------------------------------------------------

Task rw_loop(SimEnv& env, sim::AbortableReg<I64> reg, bool writer,
             std::uint64_t& attempts) {
  for (I64 i = 1;; ++i) {
    if (writer) {
      (void)co_await env.write(reg, i);
    } else {
      (void)co_await env.read(reg);
    }
    ++attempts;
  }
}

TEST(ContentionSchedule, ForcesNearTotalAbortRate) {
  // Two victims hammer one abortable register with no backoff; the
  // adversary arms both operations before releasing either, so nearly
  // every operation overlaps and aborts.
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::ContentionSchedule>(std::vector<Pid>{0, 1}));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto reg = w->make_abortable<I64>("r", 0, &policy, 0, 1);
  std::uint64_t wa = 0, ra = 0;
  w->spawn(0, "w", [&](SimEnv& env) { return rw_loop(env, reg, true, wa); });
  w->spawn(1, "r", [&](SimEnv& env) { return rw_loop(env, reg, false, ra); });
  w->run(100000);
  const auto total_ops = w->total_reads() + w->total_writes();
  const auto total_aborts = w->total_read_aborts() + w->total_write_aborts();
  EXPECT_GT(total_ops, 10000u);
  EXPECT_GT(static_cast<double>(total_aborts) / total_ops, 0.95);
}

Task msg_writer_loop(SimEnv& env, omega::MsgEndpoint<I64>& ep,
                     const std::vector<I64>& src) {
  for (;;) {
    co_await omega::write_msgs(env, ep, src);
    co_await env.yield();
  }
}

Task msg_reader_loop(SimEnv& env, omega::MsgEndpoint<I64>& ep) {
  for (;;) {
    co_await omega::read_msgs(env, ep);
    co_await env.yield();
  }
}

TEST(ContentionSchedule, BlockingFigure4CostsTheAdversaryTimeliness) {
  // The contention adversary CAN block Figure 4 forever -- by holding
  // the writer's operation open while the reader counts down its
  // growing timeout. But look at the price: as readTimeout grows, the
  // writer receives steps ever more rarely relative to the reader, so
  // the writer is NOT q-timely -- and the paper guarantees delivery
  // only for timely writers ("this mechanism may fail to communicate
  // any information if p is not q-timely", Section 6). The adversary
  // must sacrifice exactly the hypothesis of the lemma to defeat it.
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::ContentionSchedule>(std::vector<Pid>{0, 1}));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto eps = omega::make_msg_mesh<I64>(*w, &policy, 0);
  std::vector<I64> src(2, 0);
  src[1] = 777;
  w->spawn(0, "w", [&](SimEnv& env) {
    return msg_writer_loop(env, eps[0], src);
  });
  w->spawn(1, "r", [&](SimEnv& env) {
    return msg_reader_loop(env, eps[1]);
  });
  w->run(3000000);
  EXPECT_NE(eps[1].prev_msg_from[0], 777) << "adversary blocked delivery";
  // ...and in doing so it destroyed the writer's timeliness: the gaps
  // between the writer's steps grow with the reader's timeout.
  const auto writer_bound = w->trace().timeliness(0).empirical_bound;
  EXPECT_GT(writer_bound, 50000u)
      << "blocking required starving the writer";

  // Control: the same protocol under a FAIR schedule delivers.
  auto w2 = std::make_unique<World>(2,
                                    std::make_unique<sim::RandomSchedule>(3));
  auto eps2 = omega::make_msg_mesh<I64>(*w2, &policy, 0);
  std::vector<I64> src2(2, 0);
  src2[1] = 777;
  w2->spawn(0, "w", [&](SimEnv& env) {
    return msg_writer_loop(env, eps2[0], src2);
  });
  w2->spawn(1, "r", [&](SimEnv& env) {
    return msg_reader_loop(env, eps2[1]);
  });
  EXPECT_TRUE(w2->run_until(
      [&] { return eps2[1].prev_msg_from[0] == 777; }, 5000000));
}

// -- safe registers are NOT enough for Figure 2 -------------------------------------

Task safe_monitored(SimEnv& env, sim::SafeReg<monitor::HbValue> reg,
                    const monitor::ActiveForFlag& input) {
  monitor::HbValue counter = 0;
  for (;;) {
    co_await env.write(reg, monitor::HbValue{-1});
    while (!input.active_for) co_await env.yield();
    while (input.active_for) {
      ++counter;
      co_await env.write(reg, counter);
    }
  }
}

Task safe_monitoring(SimEnv& env, sim::SafeReg<monitor::HbValue> reg,
                     monitor::MonitorIO& io) {
  std::int64_t timeout = 1, timer = 1;
  monitor::HbValue cur = 0, prev = 0;
  bool allow = true;
  for (;;) {
    io.status = monitor::Status::Unknown;
    while (!io.monitoring) co_await env.yield();
    timer = timeout;
    while (io.monitoring) {
      if (timer >= 1) --timer;
      if (timer == 0) {
        timer = timeout;
        prev = cur;
        cur = co_await env.read(reg);
        if (cur < 0) io.status = monitor::Status::Inactive;
        if (cur >= 0 && cur > prev) {
          io.status = monitor::Status::Active;
          allow = true;
        }
        if (cur >= 0 && cur <= prev) {
          io.status = monitor::Status::Inactive;
          if (allow) {
            ++io.fault_cntr;
            ++timeout;
            allow = false;
          }
        }
      } else {
        co_await env.yield();
      }
    }
  }
}

TEST(SafeRegisterAblation, Figure2OverSafeRegistersMisbehaves) {
  // Run the exact Figure 2 logic over a SAFE register with an adversary
  // that overlaps reads and writes: reads that overlap a write return
  // arbitrary values, so a perfectly timely target gets suspected --
  // arbitrary garbage can masquerade as a stalled or rewound counter.
  // This is why abortable registers being WEAKER than safe is a real
  // statement: with aborts the reader at least KNOWS the value is
  // unusable.
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::ContentionSchedule>(std::vector<Pid>{0, 1}));
  auto reg = w->make_safe<monitor::HbValue>("hb", -1);
  monitor::MonitorIO io;
  monitor::ActiveForFlag flag;
  io.monitoring = true;
  flag.active_for = true;
  w->spawn(0, "hb", [&](SimEnv& env) {
    return safe_monitored(env, reg, flag);
  });
  w->spawn(1, "mon", [&](SimEnv& env) {
    return safe_monitoring(env, reg, io);
  });
  w->run(2000000);
  // Under the overlap adversary, garbage reads keep producing spurious
  // "counter did not increase" and "counter is negative" observations;
  // the fault counter grows far beyond the atomic-register baseline
  // (2-3 total) even though the target is perfectly timely.
  EXPECT_GT(io.fault_cntr, 20u)
      << "expected spurious suspicions over safe registers";
}

// -- Corollary 8 ------------------------------------------------------------------

TEST(Corollary8, EventuallyNoOtherProcessTrustsItself) {
  // With canonical use: eventually leader_l = l and every other correct
  // process p has leader_p != p.
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 19));
  omega::OmegaRegisters om(world);
  om.install_all();
  // Canonical mixed usage: two permanent, two canonical-repeated.
  world.spawn(0, "c", [&](SimEnv& env) {
    return omega::permanent_candidate(env, om.io(0));
  });
  world.spawn(1, "c", [&](SimEnv& env) {
    return omega::permanent_candidate(env, om.io(1));
  });
  world.spawn(2, "c", [&](SimEnv& env) {
    return omega::canonical_repeated_candidate(env, om.io(2), 4000, 4000);
  });
  world.spawn(3, "c", [&](SimEnv& env) {
    return omega::canonical_repeated_candidate(env, om.io(3), 6000, 2000);
  });

  std::vector<sim::Trajectory<Pid>> leaders(n);
  for (Pid p = 0; p < n; ++p) {
    leaders[p].sample(0, om.io(p).leader);
    leaders[p].attach(world, &om.io(p).leader);
  }
  world.run(4000000);

  const Pid ell = om.io(0).leader;
  ASSERT_NE(ell, omega::kNoLeader);
  // (a) leader_l = l over the suffix.
  EXPECT_TRUE(leaders[ell].value_at(3500000) == ell &&
              leaders[ell].constant_since(3500000));
  // (b) no other process outputs itself over the suffix.
  for (Pid p = 0; p < n; ++p) {
    if (p == ell) continue;
    EXPECT_FALSE(leaders[p].always_in(3500000, world.now(), p));
    for (const auto& [step, value] : leaders[p].points()) {
      if (step >= 3500000) {
        EXPECT_NE(value, p) << "p" << p << " trusted itself at " << step;
      }
    }
  }
}

// -- random crash injection sweep ----------------------------------------------------

class CrashSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

template <class Obj>
Task forever_inc(SimEnv& env, Obj& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

TEST_P(CrashSweep, SurvivorsStayConsistentAndProgressing) {
  const auto [seed, crashes] = GetParam();
  const int n = 5;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  // Crash `crashes` processes at pseudo-random times.
  util::Rng rng(seed * 7919 + 13);
  std::vector<Pid> crashed;
  for (int i = 0; i < crashes; ++i) {
    const Pid victim = static_cast<Pid>(n - 1 - i);  // keep p0 alive
    crashed.push_back(victim);
    world.schedule_crash(victim, 200000 + rng.below(2000000));
  }
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  world.run(8000000);

  // Survivors keep completing.
  for (Pid p = 0; p < n - crashes; ++p) {
    const auto& cs = sys.object().log().completions[p];
    std::uint64_t late = 0;
    for (const auto s : cs) {
      if (s >= 6000000) ++late;
    }
    EXPECT_GT(late, 0u) << "survivor p" << p << " stopped completing";
  }
  // Exactly-once accounting still holds (counter >= recorded
  // completions; slack covers survivor in-flight ops and crashed
  // processes' last ops that landed without being recorded).
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += sys.object().log().completed(p);
  EXPECT_GE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total));
  EXPECT_LE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total) + n);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCrashCounts, CrashSweep,
    ::testing::Combine(::testing::Values(101u, 202u, 303u),
                       ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_crashes" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace tbwf

namespace tbwf {
namespace {

TEST(ContentionSchedule, FullTbwfStackSurvivesTheOverlapAdversary) {
  // Run the complete TBWF stack with every process a victim of the
  // overlap-engineering adversary. The adversary's arming discipline
  // produces extreme interleavings (every register operation it can
  // pair up overlaps), which is a wedging/consistency torture test: the
  // system must neither deadlock nor corrupt the object, and the
  // processes the adversary ends up favoring must keep completing.
  const int n = 3;
  World world(n, std::make_unique<sim::ContentionSchedule>(
                     std::vector<Pid>{0, 1, 2}));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  EXPECT_EQ(world.run(3000000), 3000000u);

  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += sys.object().log().completed(p);
  EXPECT_GT(total, 0u) << "the stack wedged under the adversary";
  const auto frontier = sys.object().qa().peek_frontier();
  EXPECT_GE(frontier.state, static_cast<I64>(total));
  EXPECT_LE(frontier.state, static_cast<I64>(total) + n);
}

}  // namespace
}  // namespace tbwf
