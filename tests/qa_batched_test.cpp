// Tests of the batched announce/combine/help throughput engine (sim
// backend): exactly-once under contention and aborts, tombstone fate
// sealing, helping (a patient process completes without ever combining)
// and the batch journal used by check_batch_conformance.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "qa/qa_batched.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::qa {
namespace {

using sim::Pid;
using sim::SimEnv;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

// -- typed fixture over the two base-register policies --------------------------------

template <class BasePolicy>
struct BaseTraits;

template <>
struct BaseTraits<AtomicBase> {
  static registers::AbortPolicy* policy(std::uint64_t) { return nullptr; }
};

template <>
struct BaseTraits<AbortableBase> {
  static registers::AbortPolicy* policy(std::uint64_t seed) {
    static thread_local std::vector<
        std::unique_ptr<registers::ProbabilisticAbortPolicy>>
        pool;
    pool.push_back(std::make_unique<registers::ProbabilisticAbortPolicy>(
        seed, 0.6, 0.6, 0.5));
    return pool.back().get();
  }
};

template <class BasePolicy>
class QaBatchedTest : public ::testing::Test {};

using BasePolicies = ::testing::Types<AtomicBase, AbortableBase>;
TYPED_TEST_SUITE(QaBatchedTest, BasePolicies);

// -- workload helpers --------------------------------------------------------------------

struct WorkerStats {
  std::uint64_t applied = 0;
  std::vector<I64> results;
  bool done = false;
};

template <class Obj>
Task apply_worker(SimEnv& env, Obj& obj, int ops, I64 delta, WorkerStats& st) {
  for (int i = 0; i < ops; ++i) {
    const I64 r = co_await obj.apply(env, Counter::Op{delta});
    ++st.applied;
    st.results.push_back(r);
  }
  st.done = true;
}

// -- solo behaviour ------------------------------------------------------------------------

TYPED_TEST(QaBatchedTest, SoloApplyAlwaysSucceedsInOrder) {
  auto w = std::make_unique<World>(1,
                                   std::make_unique<sim::RoundRobinSchedule>());
  BatchedQaUniversal<Counter, TypeParam> obj(*w, 0,
                                             BaseTraits<TypeParam>::policy(1));
  WorkerStats st;
  w->spawn(0, "worker", [&](SimEnv& env) {
    return apply_worker(env, obj, 100, 1, st);
  });
  w->run(10000000);
  ASSERT_TRUE(st.done);
  EXPECT_EQ(st.applied, 100u);
  EXPECT_EQ(obj.inner().peek_frontier().state.inner, 100);
  // Solo the engine is sequential: every result is the pre-state.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(st.results[static_cast<std::size_t>(i)], i) << "op " << i;
  }
}

// -- contention: exactly-once across schedules and abort seeds ------------------------

TYPED_TEST(QaBatchedTest, ContendedApplyIsExactlyOnce) {
  constexpr int kN = 3;
  constexpr int kOps = 40;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto w = std::make_unique<World>(
        kN, std::make_unique<sim::RandomSchedule>(seed * 31 + 7));
    typename BatchedQaUniversal<Counter, TypeParam>::Options opt;
    opt.patience = 3;
    BatchedQaUniversal<Counter, TypeParam> obj(
        *w, 0, BaseTraits<TypeParam>::policy(seed), opt);
    std::vector<WorkerStats> st(kN);
    for (Pid p = 0; p < kN; ++p) {
      w->spawn(p, "worker", [&, p](SimEnv& env) {
        return apply_worker(env, obj, kOps, 1, st[static_cast<std::size_t>(p)]);
      });
    }
    w->run(30000000);
    I64 total = 0;
    for (Pid p = 0; p < kN; ++p) {
      ASSERT_TRUE(st[static_cast<std::size_t>(p)].done) << "seed " << seed;
      total += static_cast<I64>(st[static_cast<std::size_t>(p)].applied);
    }
    EXPECT_EQ(total, kN * kOps);
    EXPECT_EQ(obj.inner().peek_frontier().state.inner, kN * kOps)
        << "seed " << seed;
    // The journal accounts for every applied op exactly once.
    std::uint64_t journalled = 0;
    for (const auto& c : obj.batch_log().commits) journalled += c.batch_size;
    EXPECT_EQ(journalled, static_cast<std::uint64_t>(kN * kOps))
        << "seed " << seed;
  }
}

// -- helping: a patient announcer completes without ever combining --------------------

TEST(QaBatchedHelping, PatientProcessIsCarriedByCombiners) {
  constexpr int kN = 3;
  auto w = std::make_unique<World>(
      kN, std::make_unique<sim::RandomSchedule>(41));
  BatchedQaUniversal<Counter>::Options opt;
  opt.patience = 4;
  BatchedQaUniversal<Counter> obj(*w, 0, nullptr, opt);
  // Process 0 never runs the slow path itself: its inclusion relies
  // entirely on the drains of processes 1 and 2.
  obj.set_patience(0, 1 << 28);
  WorkerStats st0;
  w->spawn(0, "patient", [&](SimEnv& env) {
    return apply_worker(env, obj, 30, 1, st0);
  });
  for (Pid p = 1; p < kN; ++p) {
    w->spawn(p, "busy", [&](SimEnv& env) -> Task {
      while (!st0.done) {
        (void)co_await obj.apply(env, Counter::Op{0});
      }
    });
  }
  w->run(30000000);
  ASSERT_TRUE(st0.done);
  EXPECT_EQ(st0.applied, 30u);
  EXPECT_EQ(obj.combines(0), 0u);
  EXPECT_EQ(obj.fast_completions(0), 30u);
  // Only process 0 adds non-zero deltas.
  EXPECT_EQ(obj.inner().peek_frontier().state.inner, 30);
  // Every one of its announces was included within a bounded number of
  // batch epochs (it never combined, so inclusion == helping).
  for (const auto& a : obj.batch_log().announces) {
    if (a.owner != 0) continue;
    EXPECT_NE(a.applied_at, core::BatchAnnounceEvent::kNever);
    EXPECT_FALSE(a.voided);
  }
}

// -- fate sealing: query's tombstone makes F final ------------------------------------

TEST(QaBatchedQuery, TombstoneSealsFAgainstLaterDrains) {
  constexpr int kN = 2;
  auto w = std::make_unique<World>(kN,
                                   std::make_unique<sim::RoundRobinSchedule>());
  BatchedQaUniversal<Counter>::Options opt;
  opt.patience = 0;
  opt.combine_attempts = 0;  // invoke() gives up immediately: open fate
  BatchedQaUniversal<Counter> obj(*w, 0, nullptr, opt);
  bool sealed = false;
  bool p1_done = false;
  bool ok_after_f = false;
  I64 result_after_f = -1;
  w->spawn(0, "victim", [&](SimEnv& env) -> Task {
    auto r = co_await obj.invoke(env, Counter::Op{7});
    EXPECT_TRUE(r.bottom());
    auto q = co_await obj.query(env);
    // The op was announced but never applied; the tombstone voids it.
    EXPECT_TRUE(q.not_applied());
    sealed = true;
    while (!p1_done) co_await env.yield();
    // F is final: after p1's combines drained (and deduped) the stale
    // announce, the counter holds only p1's contributions...
    EXPECT_EQ(obj.inner().peek_frontier().state.inner, 500);
    // ...and a fresh op from the victim still goes through.
    const I64 r2 = co_await obj.apply(env, Counter::Op{1});
    ok_after_f = true;
    result_after_f = r2;
  });
  w->spawn(1, "driver", [&](SimEnv& env) -> Task {
    while (!sealed) co_await env.yield();
    for (int i = 0; i < 5; ++i) {
      (void)co_await obj.apply(env, Counter::Op{100});
    }
    p1_done = true;
  });
  w->run(10000000);
  ASSERT_TRUE(ok_after_f);
  EXPECT_EQ(result_after_f, 500);
  EXPECT_EQ(obj.inner().peek_frontier().state.inner, 501);
  // The journal recorded the voided announce.
  bool saw_void = false;
  for (const auto& a : obj.batch_log().announces) {
    if (a.owner == 0 && a.voided) saw_void = true;
  }
  EXPECT_TRUE(saw_void);
}

// -- batching: saturation actually amortises slots ------------------------------------

TEST(QaBatchedThroughput, SaturationProducesMultiOpBatches) {
  constexpr int kN = 4;
  constexpr int kOps = 50;
  auto w = std::make_unique<World>(
      kN, std::make_unique<sim::RandomSchedule>(97));
  BatchedQaUniversal<Counter>::Options opt;
  opt.patience = 2;
  BatchedQaUniversal<Counter> obj(*w, 0, nullptr, opt);
  std::vector<WorkerStats> st(kN);
  for (Pid p = 0; p < kN; ++p) {
    w->spawn(p, "worker", [&, p](SimEnv& env) {
      return apply_worker(env, obj, kOps, 1, st[static_cast<std::size_t>(p)]);
    });
  }
  w->run(30000000);
  for (Pid p = 0; p < kN; ++p) {
    ASSERT_TRUE(st[static_cast<std::size_t>(p)].done);
  }
  EXPECT_EQ(obj.inner().peek_frontier().state.inner, kN * kOps);
  const auto& log = obj.batch_log();
  ASSERT_FALSE(log.commits.empty());
  EXPECT_GT(log.mean_batch_size(), 1.2);
  // Batching strictly beats one-slot-per-op: fewer decided slots than ops.
  EXPECT_LT(log.commits.size(), static_cast<std::size_t>(kN * kOps));
  // Every announce was eventually included, none voided.
  for (const auto& a : log.announces) {
    EXPECT_NE(a.applied_at, core::BatchAnnounceEvent::kNever);
    EXPECT_FALSE(a.voided);
  }
  // One announce write per op (atomic base never aborts).
  for (Pid p = 0; p < kN; ++p) {
    EXPECT_GT(obj.shared_writes(p), 0u);
  }
}

}  // namespace
}  // namespace tbwf::qa
