// Zoo object 3: the register-based ledger/map, as specialist
// (WfLedger: single-writer append-only logs with collected Lamport
// timestamps) and as QA-universal twin over LedgerType. Explorer +
// oracle at n = 2, 3; the stale-timestamp mutation must reorder two
// sequential puts in a way the oracle flags; the ledger never aborts
// (every fate Ok); differential runs check the quiescent log binds
// exactly the Ok puts on both twins under identical seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/schedule.hpp"
#include "verify/explorer.hpp"
#include "zoo/ledger.hpp"
#include "zoo/zoo_harness.hpp"

namespace tbwf::zoo {
namespace {

using verify::ExploreResult;
using verify::Explorer;
using verify::ExplorerOptions;
using verify::OpStatus;

using SpecRun = ZooExploredRun<LedgerType, WfLedger>;
using UniLedger = UniversalZoo<LedgerType>;
using UniRun = ZooExploredRun<LedgerType, UniLedger>;

SpecRun::Maker specialist_maker(LedgerMutations m = {}) {
  return [m](sim::World& w, const LedgerType::State& init) {
    auto obj = std::make_unique<WfLedger>(w, init);
    obj->set_mutations(m);
    return obj;
  };
}

UniRun::Maker universal_maker() {
  return [](sim::World& w, const LedgerType::State& init) {
    return std::make_unique<UniLedger>(w, init);
  };
}

ExplorerOptions bounds(const char* name, int max_runs = 60000) {
  ExplorerOptions opt;
  opt.name = name;
  opt.max_depth = 500;
  opt.max_runs = max_runs;
  return opt;
}

// -- explorer at n=2, n=3, both twins -------------------------------------

TEST(ZooLedger, SpecialistExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<LedgerType, WfLedger>(
                        ledger_explore_config(2), specialist_maker()),
                    bounds("zoo-ledger-spec-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooLedger, UniversalExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<LedgerType, UniLedger>(
                        ledger_explore_config(2), universal_maker()),
                    bounds("zoo-ledger-uni-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooLedger, SpecialistExplorerCleanN3) {
  Explorer explorer(make_zoo_run_factory<LedgerType, WfLedger>(
                        ledger_explore_config(3), specialist_maker()),
                    bounds("zoo-ledger-spec-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

TEST(ZooLedger, UniversalExplorerCleanN3) {
  Explorer explorer(make_zoo_run_factory<LedgerType, UniLedger>(
                        ledger_explore_config(3), universal_maker()),
                    bounds("zoo-ledger-uni-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

// -- mutation: stale timestamps -> sequential puts reorder ----------------

// p0 puts twice (local ts 1, 2 under the mutation); p1 puts once
// (local ts 1) then reads. In the schedule where p1 runs strictly
// after p0, real time forces get(7) = 30, but the mutated timestamps
// rank p0's second put highest and the get returns 20.
ZooExploreConfig<LedgerType> reorder_config() {
  ZooExploreConfig<LedgerType> config;
  config.n = 2;
  config.ops.resize(2);
  config.ops[0] = {LedgerType::put(7, 10), LedgerType::put(7, 20)};
  config.ops[1] = {LedgerType::put(7, 30), LedgerType::get(7)};
  return config;
}

TEST(ZooLedger, MutationStaleTsCaught) {
  Explorer explorer(make_zoo_run_factory<LedgerType, WfLedger>(
                        reorder_config(),
                        specialist_maker(LedgerMutations{.stale_ts = true})),
                    bounds("zoo-ledger-stalets"));
  const ExploreResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  EXPECT_NE(result.artifact.violation.find("VIOLATION"), std::string::npos);
  EXPECT_FALSE(result.artifact.schedule.empty());
}

TEST(ZooLedger, IntactLedgerCleanAtIdenticalBounds) {
  Explorer explorer(make_zoo_run_factory<LedgerType, WfLedger>(
                        reorder_config(), specialist_maker()),
                    bounds("zoo-ledger-ts-intact"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean()) << result.summary();
}

// -- the specialist never aborts ------------------------------------------

TEST(ZooLedger, SpecialistEveryFateOk) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto outcome = run_zoo_workload<LedgerType, WfLedger>(
        ledger_explore_config(3, seed), specialist_maker());
    ASSERT_TRUE(outcome.completed) << "seed " << seed;
    for (const auto& op : outcome.history) {
      EXPECT_EQ(op.status, OpStatus::Ok) << "seed " << seed;
    }
  }
}

// -- differential: quiescent log binds exactly the Ok puts ----------------

using Pair = std::pair<std::int64_t, std::int64_t>;

std::vector<Pair> pairs_of(const LedgerType::State& state) {
  std::vector<Pair> out;
  for (std::size_t i = 0; i + 1 < state.size(); i += 2) {
    out.emplace_back(state[i], state[i + 1]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

template <class S>
std::vector<Pair> ok_puts(const ZooRunOutcome<S>& outcome) {
  std::vector<Pair> out;
  for (const auto& op : outcome.history) {
    if (op.status == OpStatus::Ok && op.op.is_put) {
      out.emplace_back(op.op.key, op.op.value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ZooLedger, DifferentialSpecialistVsUniversal) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto config = ledger_explore_config(2, seed);
    const auto spec = run_zoo_workload<LedgerType, WfLedger>(
        config, specialist_maker());
    const auto uni = run_zoo_workload<LedgerType, UniLedger>(
        config, universal_maker());
    ASSERT_TRUE(spec.completed && uni.completed) << "seed " << seed;
    EXPECT_TRUE(spec.linearizable)
        << "seed " << seed << ": " << spec.oracle_summary;
    EXPECT_TRUE(uni.linearizable)
        << "seed " << seed << ": " << uni.oracle_summary;
    // Each twin's quiescent log binds exactly its Ok puts (as a pair
    // multiset; the append order is the twin's own linearization).
    EXPECT_EQ(pairs_of(spec.final_state), ok_puts(spec)) << "seed " << seed;
    EXPECT_EQ(pairs_of(uni.final_state), ok_puts(uni)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tbwf::zoo
