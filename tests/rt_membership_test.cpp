// Real-thread epoch membership: the packed view word, the fence across
// an epoch boundary (a removed leader that wakes up late must have its
// stale token rejected -- run under TSan in CI like every Rt* suite),
// generated churn draw compatibility, and the rt soak with membership
// events, including the view-thrash breach that fails only the TBWF
// axis.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "core/membership.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_membership.hpp"
#include "rt/rt_tbwf.hpp"
#include "soak/soak.hpp"

namespace tbwf {
namespace {

// -- the packed view word -------------------------------------------------------

TEST(RtMembershipView, EpochZeroHasEveryThread) {
  rt::RtMembership membership(4);
  EXPECT_EQ(membership.epoch(), 0u);
  for (int t = 0; t < 4; ++t) EXPECT_TRUE(membership.member(t));
  EXPECT_FALSE(membership.member(4));
  const auto view = membership.sample();
  EXPECT_EQ(view.epoch, 0u);
  EXPECT_TRUE(view.member(3));
  EXPECT_FALSE(view.member(4));
}

TEST(RtMembershipView, EventsBumpTheEpochAndEditTheMask) {
  rt::RtMembership membership(3);
  membership.apply({core::MembershipKind::kLeave, 2, -1, 0});
  EXPECT_EQ(membership.epoch(), 1u);
  EXPECT_FALSE(membership.member(2));
  membership.apply({core::MembershipKind::kJoin, 2, -1, 0});
  EXPECT_EQ(membership.epoch(), 2u);
  EXPECT_TRUE(membership.member(2));
  membership.apply({core::MembershipKind::kReplace, 0, 2, 0});
  EXPECT_EQ(membership.epoch(), 3u);
  EXPECT_FALSE(membership.member(0));
  EXPECT_TRUE(membership.member(2));
}

TEST(RtMembershipView, SampleIsOneConsistentWord) {
  // A reader that races apply() may see the old or the new view, but
  // never a new epoch with an old mask: both live in one atomic word.
  rt::RtMembership membership(2);
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto view = membership.sample();
      if (view.epoch % 2 == 1) {
        EXPECT_FALSE(view.member(1));
      } else {
        EXPECT_TRUE(view.member(1));
      }
    }
  });
  for (int i = 0; i < 2000; ++i) {
    membership.apply({core::MembershipKind::kLeave, 1, -1, 0});
    membership.apply({core::MembershipKind::kJoin, 1, -1, 0});
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(membership.epoch(), 4000u);
}

// -- the fence across an epoch boundary -----------------------------------------

TEST(RtMembershipFence, RevokedSeatTokenFailsValidate) {
  rt::LeaseElector elector(std::chrono::seconds(1));
  std::uint64_t token = 0;
  ASSERT_TRUE(elector.try_lead(0, &token));
  ASSERT_TRUE(elector.validate(0, token));
  // The on_membership hook revokes a departing seat's lease: the fence
  // bumps, so the removed leader's stale token is dead.
  elector.revoke(0);
  EXPECT_FALSE(elector.validate(0, token));
  // The next epoch's leader gets a strictly newer token; the old one
  // stays dead even if the same tid later rejoins and wins again.
  std::uint64_t next_token = 0;
  ASSERT_TRUE(elector.try_lead(1, &next_token));
  EXPECT_GT(next_token, token);
  EXPECT_FALSE(elector.validate(0, token));
}

TEST(RtMembershipFence, RemovedLeaderWakesUpFenced) {
  // The acceptance scenario on real threads: a leader is removed from
  // the view while it holds the lease (and is oblivious -- stalled);
  // when it wakes up, every validate() of its stale token must fail,
  // so it can accept ZERO stale writes. TSan checks the ordering.
  rt::LeaseElector elector(std::chrono::seconds(1));
  rt::RtMembership membership(2);
  std::atomic<int> phase{0};
  std::thread leader([&] {
    std::uint64_t token = 0;
    while (!elector.try_lead(0, &token)) std::this_thread::yield();
    ASSERT_TRUE(elector.validate(0, token));
    phase.store(1, std::memory_order_release);
    // "Stalled": sleeps through the reconfiguration.
    while (phase.load(std::memory_order_acquire) < 2) {
      std::this_thread::yield();
    }
    // Woke up in the new epoch: the write gate must hold.
    EXPECT_FALSE(elector.validate(0, token));
  });
  while (phase.load(std::memory_order_acquire) < 1) {
    std::this_thread::yield();
  }
  // Monitor side of RtLeaderService::on_membership for a kLeave.
  membership.apply({core::MembershipKind::kLeave, 0, -1, 0});
  elector.revoke(0);
  EXPECT_EQ(membership.epoch(), 1u);
  EXPECT_FALSE(membership.member(0));
  phase.store(2, std::memory_order_release);
  leader.join();
}

// -- generated churn ------------------------------------------------------------

std::string without_view_lines(const std::string& summary) {
  std::string out;
  std::size_t pos = 0;
  while (pos < summary.size()) {
    std::size_t end = summary.find('\n', pos);
    if (end == std::string::npos) end = summary.size();
    const std::string line = summary.substr(pos, end - pos);
    if (line.find("view ") == std::string::npos) out += line + "\n";
    pos = end + 1;
  }
  return out;
}

TEST(RtMembershipGen, DrawsAppendAfterEveryOtherFamily) {
  rt::RtFaultPlan::GenOptions base;
  base.nthreads = 4;
  base.max_reg_faults = 1;
  const rt::RtFaultPlan before = rt::RtFaultPlan::generate(77, base);
  rt::RtFaultPlan::GenOptions churn = base;
  churn.max_membership_cycles = 3;
  churn.churn_tid = 3;
  const rt::RtFaultPlan after = rt::RtFaultPlan::generate(77, churn);
  EXPECT_TRUE(before.membership().empty());
  EXPECT_EQ(without_view_lines(before.summary()),
            without_view_lines(after.summary()));
}

TEST(RtMembershipGen, ChurnTargetsThePinnedSeatAndRejoins) {
  rt::RtFaultPlan::GenOptions gen;
  gen.nthreads = 4;
  gen.max_membership_cycles = 2;
  gen.churn_tid = 3;
  bool any = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const rt::RtFaultPlan plan = rt::RtFaultPlan::generate(seed, gen);
    for (const auto& ev : plan.membership()) {
      any = true;
      EXPECT_EQ(ev.pid, 3);
      EXPECT_LT(ev.at, gen.horizon_ns);
    }
    EXPECT_TRUE(plan.member_at_end(gen.nthreads, 3));
  }
  EXPECT_TRUE(any) << "no seed drew membership events";
}

// -- the rt soak under membership churn -----------------------------------------

TEST(RtMembershipSoak, GeneratedChurnPassesJointlyWithEpochGrades) {
  auto options = soak::RtSoakOptions::quick(1);
  options.membership_churn = true;
  const auto result = soak::run_rt_soak(options);
  EXPECT_FALSE(result.plan.membership().empty());
  EXPECT_TRUE(result.joint.ok()) << result.joint.summary();
  EXPECT_EQ(result.progress.epoch_grades.size(),
            result.plan.membership().size() + 1);
}

TEST(RtMembershipSoak, RemoveAndRejoinIsFencedAndGraded) {
  auto options = soak::RtSoakOptions::quick(3);
  rt::RtFaultPlan plan(3);
  // Remove seat nthreads-1 early, re-admit it mid-run; the monitor
  // revokes its lease on departure, so any tenure it held dies at the
  // boundary and the final epoch re-earns its own verdict.
  plan.leave(static_cast<std::uint32_t>(options.nthreads - 1), 6000000);
  plan.join(static_cast<std::uint32_t>(options.nthreads - 1), 14000000);
  options.plan_override = &plan;
  const auto result = soak::run_rt_soak(options);
  EXPECT_TRUE(result.joint.ok()) << result.joint.summary();
  ASSERT_EQ(result.progress.epoch_grades.size(), 3u);
  EXPECT_FALSE(
      result.progress.epoch_grades[1].members[options.nthreads - 1]);
  EXPECT_TRUE(result.progress.epoch_grades[2].conclusive);
}

TEST(RtMembershipSoak, ViewThrashFailsOnlyTheProgressAxis) {
  auto options = soak::RtSoakOptions::quick(9);
  const auto thrash =
      soak::rt_view_thrash_plan(9, options.nthreads, 40, 4000000, 700000);
  options.plan_override = &thrash;
  const auto result = soak::run_rt_soak(options);
  EXPECT_FALSE(result.joint.progress_ok);
  EXPECT_TRUE(result.slo.ok) << result.joint.summary();
  ASSERT_FALSE(result.progress.violations.empty());
  EXPECT_NE(result.progress.violations.front().find(
                "stable suffix too short"),
            std::string::npos);
  for (const auto& grade : result.progress.epoch_grades) {
    EXPECT_FALSE(grade.conclusive);
  }
}

}  // namespace
}  // namespace tbwf
