// Degraded-channel sweeps: seeded fault plans that jam, drop, tear and
// stale-serve the Omega-Delta channel registers themselves (on top of
// crashes, stutters and abort storms), run against the full TBWF stack
// on abortable registers. The extended conformance checker must grade a
// process reachable only over jam-dead links as untimely -- it never
// awards a wait-free verdict the faulted medium did not earn -- while
// still holding the rest of the run to the paper's graded guarantees.
//
// The deterministic recovery case at the bottom is the tentpole's
// self-healing acceptance: a link quarantined under a jam window
// demonstrably rejoins after the jam lifts, and the leader
// re-stabilizes across all processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/conformance.hpp"
#include "core/tbwf.hpp"
#include "omega/omega_abortable.hpp"
#include "qa/qa_universal.hpp"
#include "registers/abort_policy.hpp"
#include "registers/reg_faults.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::LinkPart;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

constexpr int kN = 3;

template <class Obj>
Task forever_inc(SimEnv& env, Obj& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

std::vector<Pid> issuing_under(const FaultPlan& plan, int n) {
  std::vector<Pid> issuing;
  for (Pid p = 0; p < n; ++p) {
    if (!plan.crashed_at_end(p)) issuing.push_back(p);
  }
  return issuing;
}

int expected_armed(const FaultPlan& plan) {
  int regs = 0;
  for (const auto& f : plan.link_faults()) {
    regs += f.part == LinkPart::All ? 3 : 1;
  }
  return regs;
}

FaultPlan::GenOptions degraded_gen_options() {
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 400000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 1;
  opt.max_stutters = 1;
  opt.max_storms = 1;
  opt.max_link_faults = 2;
  return opt;
}

class DegradedChannelSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DegradedChannelSweep, NoUnearnedWaitFreeVerdicts) {
  const std::uint64_t seed = GetParam();
  const FaultPlan plan = FaultPlan::generate(seed, degraded_gen_options());

  registers::PhasedAbortPolicy qa_policy(seed * 3 + 1);
  registers::PhasedAbortPolicy omega_calm(seed * 5 + 2);
  plan.arm(qa_policy);
  plan.arm(omega_calm);
  // The channel registers run behind the fault injector; the calm
  // phased policy still rules whenever no register fault fires, so the
  // plan's abort storms stay in force.
  registers::RegisterFaultInjector injector(seed * 13 + 11, &omega_calm);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 991 + 7)));
  omega::OmegaAbortable::Options omega_options;
  omega_options.msg_refresh_period = 8;  // silent-drop repair on
  // Sim-scaled health thresholds: the defaults are tuned for long
  // runs, but a sweep case has ~2.5M steps -- quarantine must confirm
  // (and heal) well inside the stable suffix or a permanently jammed
  // link freezes counter views into a leader disagreement.
  omega_options.link_health.suspect_after = 12;
  omega_options.link_health.jam_rounds = 8;
  omega_options.link_health.heal_rounds = 2;
  omega_options.link_health.write_jam_rounds = 64;
  omega_options.link_health.probe_backoff = {/*base=*/16, /*cap=*/128,
                                             /*free_retries=*/0};
  core::TbwfSystem<Counter, qa::AbortableBase> sys(
      world, 0, core::OmegaBackend::AbortableRegisters, &qa_policy,
      &injector, omega_options);
  ASSERT_EQ(plan.arm(injector, world), expected_armed(plan))
      << plan.summary();

  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  plan.install(world);
  world.run(2500000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 1200000;
  copt.max_completion_gap = 800000;
  copt.min_suffix = 600000;
  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, issuing_under(plan, kN),
      copt, &world.counters());
  EXPECT_TRUE(report.ok) << report.summary() << plan.summary();

  // The soundness core of the tentpole: a pid some live peer can see
  // only over a suppressed link must never be certified suffix-timely.
  EXPECT_EQ(report.channel_degraded,
            plan.channel_degraded(kN, report.suffix_from, report.run_end));
  for (const Pid p : report.channel_degraded) {
    EXPECT_EQ(std::count(report.suffix_timely.begin(),
                         report.suffix_timely.end(), p),
              0)
        << "unearned wait-free verdict for p" << p << "\n"
        << report.summary() << plan.summary();
  }

  // An undetectable message-register partition voids every completion
  // demand; the flag and its metric must track the plan exactly.
  EXPECT_EQ(report.link_partitioned,
            plan.link_partitioned(kN, report.suffix_from, report.run_end));
  EXPECT_EQ(world.counters().get("chaos.conformance.link_partitioned"),
            report.link_partitioned ? 1u : 0u);

  // Per-link fault accounting flows through util::metrics.
  EXPECT_EQ(world.counters().get("chaos.conformance.link_faults"),
            plan.link_faults().size());
  for (const Pid p : report.channel_degraded) {
    EXPECT_EQ(world.counters().get("chaos.channel_degraded.p" +
                                   std::to_string(p)),
              1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Plans, DegradedChannelSweep,
                         ::testing::Range<std::uint64_t>(1, 102));

// Plan generation with link faults is replayable, honors the quiet
// tail, and leaves link-fault-free draws untouched.
TEST(DegradedChannelPlanTest, GenerationIsDeterministic) {
  const auto opt = degraded_gen_options();
  int with_link_faults = 0;
  for (std::uint64_t seed = 1; seed <= 101; ++seed) {
    const FaultPlan a = FaultPlan::generate(seed, opt);
    const FaultPlan b = FaultPlan::generate(seed, opt);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
    if (!a.link_faults().empty()) ++with_link_faults;
    for (const auto& f : a.link_faults()) {
      EXPECT_LT(f.from, static_cast<Step>(opt.horizon * (1 - opt.quiet_tail)))
          << "seed " << seed;
    }
  }
  // The sweep would silently test nothing if generation never drew any.
  EXPECT_GT(with_link_faults, 30);
}

// ---------------------------------------------------------------------------
// Self-healing acceptance: jam every channel register out of p0 for a
// window; p0 is demoted (quarantine and/or writeDone gating), and after
// the jam lifts the links heal, p0 rejoins, and all three processes
// re-stabilize on one leader.
// ---------------------------------------------------------------------------

TEST(DegradedChannelRecovery, QuarantinedLinkHealsAndLeaderRestabilizes) {
  const std::uint64_t seed = 42;
  FaultPlan plan(seed);
  plan.link_fault(0, 1, LinkPart::All, registers::RegFaultKind::Jam, 20000,
                  300000);
  plan.link_fault(0, 2, LinkPart::All, registers::RegFaultKind::Jam, 20000,
                  300000);

  registers::NeverAbortPolicy qa_policy;
  registers::RegisterFaultInjector injector(seed);

  World world(kN,
              plan.wrap(std::make_unique<sim::RandomSchedule>(seed * 7)));
  omega::OmegaAbortable::Options omega_options;
  omega_options.msg_refresh_period = 8;
  // Small health thresholds so quarantine confirms and heals well
  // inside the run.
  omega_options.link_health.suspect_after = 12;
  omega_options.link_health.jam_rounds = 8;
  omega_options.link_health.heal_rounds = 2;
  omega_options.link_health.write_jam_rounds = 64;
  omega_options.link_health.probe_backoff = {/*base=*/16, /*cap=*/128,
                                             /*free_retries=*/0};
  core::TbwfSystem<Counter, qa::AbortableBase> sys(
      world, 0, core::OmegaBackend::AbortableRegisters, &qa_policy,
      &injector, omega_options);
  ASSERT_EQ(plan.arm(injector, world), 6);

  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  world.run(1400000);

  const auto* om = sys.omega_abortable();
  ASSERT_NE(om, nullptr);

  // The jam was real and the health layer saw it: at least one reader
  // of a p0-outbound heartbeat link tripped quarantine and later healed.
  EXPECT_GT(injector.injected(registers::RegFaultKind::Jam), 0u);
  std::uint64_t quarantines = 0, recoveries = 0;
  for (Pid r : {1, 2}) {
    quarantines += om->hb(r).in_health[0].quarantines();
    recoveries += om->hb(r).in_health[0].recoveries();
  }
  EXPECT_GE(quarantines, 1u) << "the jam never tripped quarantine";
  EXPECT_GE(recoveries, 1u) << "the healed link never rejoined";

  // Rejoin is visible at the Figure 5 layer: p0 is back in the active
  // sets of its peers.
  EXPECT_TRUE(om->hb(1).active_set[0]);
  EXPECT_TRUE(om->hb(2).active_set[0]);

  // And at the Omega layer. Leadership legitimately rotates while the
  // workload keeps completing (each completion bumps the winner's
  // counter), so "re-stabilizes" means p0 wins whole turns again: at
  // some post-heal instant every process agrees p0 is the leader, and
  // p0 -- which can only complete while it leads in its own view --
  // keeps completing operations.
  const std::size_t ncomp_before = sys.object().log().completions[0].size();
  bool agreed_on_p0 = false;
  world.add_step_observer([&](Step, Pid) {
    bool all = true;
    for (Pid p = 0; p < kN; ++p) {
      if (om->io(p).leader != 0) all = false;
    }
    if (all) agreed_on_p0 = true;
  });
  world.run(150000);
  EXPECT_TRUE(agreed_on_p0)
      << "p0 was never re-elected by every process after the links healed";
  EXPECT_GT(sys.object().log().completions[0].size(), ncomp_before)
      << "p0 completed nothing after the links healed";
}

}  // namespace
}  // namespace tbwf
