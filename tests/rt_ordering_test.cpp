// Memory-ordering litmus tests for the rt backend, written to run under
// ThreadSanitizer (the CI tsan job's filter picks up every Rt* suite).
// Each test hammers exactly one documented publication edge of the
// relaxed-by-default discipline in src/rt/ (see docs/MODEL.md, "The rt
// memory model"): if an acquire/release pair were weakened to relaxed,
// TSan would flag the guarded plain data as racing; if the pairing is
// right, the runs are clean AND the invariants below hold.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/rt_registers.hpp"
#include "rt/rt_tbwf.hpp"
#include "rt/rt_trace.hpp"

namespace tbwf::rt {
namespace {

// A two-word payload: torn or unsynchronized publication shows up as
// a != b, and TSan sees the plain (non-atomic) members.
struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

// Edge 1: RtAbortableReg's try-lock cell. The CAS-acquire in read/write
// must pair with the release store in release(), or the plain
// value_/prev_value_ accesses of two threads race.
TEST(RtOrderingTest, AbortableRegPublishesThroughLock) {
  RtAbortableReg<Pair> reg(Pair{0, 0});
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr std::uint64_t kOpsPerThread = 20000;
  std::atomic<bool> torn{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&reg, w] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t v = (static_cast<std::uint64_t>(w) << 32) | i;
        (void)reg.write(Pair{v, v});  // aborts are fine; tears are not
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&reg, &torn] {
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        const auto v = reg.read();
        if (v.has_value() && v->a != v->b) {
          torn.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load()) << "lock handoff leaked a half-written value";
}

// Edge 2: the injector pointer. set_injector's release must make the
// windows armed BEFORE the attach visible to a concurrent consult()'s
// acquire -- attaching mid-run from another thread is the documented
// use (RtSupervisor arms, workers consult).
TEST(RtOrderingTest, InjectorArmHappensBeforeAttach) {
  RtAbortableReg<std::uint64_t> reg(0);
  RtAbortInjector injector;
  injector.arm(/*seed=*/7, /*origin_ns=*/0,
               {{0, RtAbortInjector::kForeverNs, 1000000,
                 registers::RegFaultKind::Jam}});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> aborts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      std::uint64_t local_aborts = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (!reg.write(1)) ++local_aborts;
      }
      aborts.fetch_add(local_aborts, std::memory_order_relaxed);
    });
  }
  // Attach while the workers hammer: from here on, every operation that
  // observes the pointer must also observe the armed Jam window.
  reg.set_injector(&injector);
  // A forever-Jam makes every post-attach operation abort; wait until
  // the injector has provably fired, then stop.
  while (injector.injected() < 16) std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  EXPECT_GE(injector.injected(), 16u);
  EXPECT_GE(aborts.load(), injector.injected(registers::RegFaultKind::Jam));
}

// Edge 3: the trace ring's publish/consume pair. Each record() ends in
// a release store of head; snapshot()'s acquire load must carry every
// slot write before it. The join provides an outer happens-before, but
// weakening the ring's own edge to relaxed would still be a TSan race
// on the slot array in the mid-run records between two incarnations'
// threads (same ring, sequential writers).
TEST(RtOrderingTest, TraceRingPublishConsume) {
  constexpr int kThreads = 3;
  constexpr std::uint64_t kEvents = 4096;
  constexpr std::size_t kCapacity = 1024;  // force wrap + drop accounting
  RtTrace trace(kThreads, kCapacity);

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&trace, t] {
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        trace.record(static_cast<std::uint32_t>(t), /*incarnation=*/0,
                     RtEventKind::kStep, /*at_ns=*/i + 1, /*arg=*/i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const RtTraceSnapshot snap = trace.snapshot();
  ASSERT_EQ(snap.n(), kThreads);
  for (int t = 0; t < kThreads; ++t) {
    const auto& events = snap.per_tid[static_cast<std::size_t>(t)];
    ASSERT_EQ(events.size(), trace.capacity());
    EXPECT_EQ(snap.dropped[static_cast<std::size_t>(t)],
              kEvents - trace.capacity());
    // The kept suffix must be the LAST events, intact and in order.
    for (std::size_t i = 0; i < events.size(); ++i) {
      const std::uint64_t expected = kEvents - events.size() + i;
      EXPECT_EQ(events[i].arg, expected);
      EXPECT_EQ(events[i].at_ns, expected + 1);
      EXPECT_EQ(events[i].tid, static_cast<std::uint32_t>(t));
    }
  }
}

// Edge 4: the lease word. A releasing leader's acq_rel CAS must hand
// its critical-section writes (a PLAIN counter here) to the next
// winner's acquire, across threads, with no other synchronization.
TEST(RtOrderingTest, LeaseHandsOffPlainData) {
  // Term far beyond the test runtime: an expiry mid-increment would let
  // a second leader in and turn the litmus into a real race.
  LeaseElector elector(std::chrono::minutes(5));
  constexpr int kThreads = 3;
  constexpr std::uint64_t kCommitsPerThread = 5000;
  std::uint64_t guarded = 0;  // plain: protected only by the lease

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&elector, &guarded, t] {
      const auto tid = static_cast<std::uint32_t>(t);
      std::uint64_t committed = 0;
      while (committed < kCommitsPerThread) {
        std::uint64_t token = 0;
        if (!elector.try_lead(tid, &token)) {
          std::this_thread::yield();
          continue;
        }
        ++guarded;
        ++committed;
        elector.release(tid);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(guarded, kThreads * kCommitsPerThread);
}

// Edge 5: heartbeat counters are relaxed monotone -- the documented
// contract is "value only", never ordering. The litmus is simply that
// a concurrent reader sees a nondecreasing sequence and the final value
// is exact after join.
TEST(RtOrderingTest, HeartbeatMonotoneUnderConcurrentReads) {
  RtHeartbeat hb;
  constexpr std::uint64_t kBeats = 200000;
  std::atomic<bool> regressed{false};

  std::thread writer([&hb] {
    for (std::uint64_t i = 0; i < kBeats; ++i) hb.beat();
  });
  std::thread reader([&hb, &regressed] {
    std::uint64_t prev = 0;
    for (int i = 0; i < 100000; ++i) {
      const std::uint64_t cur = hb.value();
      if (cur < prev) regressed.store(true, std::memory_order_relaxed);
      prev = cur;
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(regressed.load());
  EXPECT_EQ(hb.value(), kBeats);
}

}  // namespace
}  // namespace tbwf::rt
