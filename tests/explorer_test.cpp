// Schedule-explorer tests on the UNMUTATED QA counter stack: bounded
// exhaustive exploration comes back clean (every interleaving
// linearizable), the partial-order reductions demonstrably cut the
// tree, exploration is deterministic, and the PR-sized n=3 bounds from
// the issue are met.
#include <gtest/gtest.h>

#include <memory>

#include "qa/sequential_type.hpp"
#include "sim/schedule.hpp"
#include "verify/explorer.hpp"
#include "verify/qa_harness.hpp"

namespace tbwf::verify {
namespace {

using qa::Counter;

TEST(Explorer, SoloWorkloadExhaustsQuickly) {
  // p1 issues nothing: beyond its single task-exit step there is no
  // concurrency, so the bounded space collapses to a handful of runs.
  QaExploreConfig<Counter> config;
  config.n = 2;
  config.ops = {{Counter::Op{1}}, {}};
  ExplorerOptions opt;
  opt.max_depth = 200;
  Explorer explorer(make_qa_run_factory(config), opt);
  const ExploreResult result = explorer.explore();
  EXPECT_TRUE(result.clean()) << result.summary();
  EXPECT_FALSE(result.violation_found);
  EXPECT_LT(result.stats.runs, 50u) << result.stats.summary();
}

TEST(Explorer, UnmutatedCounterStackN2IsClean) {
  // Full bounded exploration of two concurrent increments through the
  // whole QA protocol. Every leaf is graded by the oracle; the real
  // protocol must survive all of them.
  ExplorerOptions opt;
  opt.name = "counter-n2";
  opt.max_depth = 220;
  opt.max_runs = 60000;
  Explorer explorer(make_qa_run_factory(counter_explore_config(2, 1)), opt);
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_GT(result.stats.sleep_skips + result.stats.state_prunes, 0u)
      << "reductions never fired: " << result.stats.summary();
}

TEST(Explorer, SleepSetsReduceTheTree) {
  QaExploreConfig<Counter> config;
  config.n = 2;
  config.ops = {{Counter::Op{1}}, {}};
  ExplorerOptions with;
  with.max_depth = 120;
  with.max_runs = 20000;
  ExplorerOptions without = with;
  without.sleep_sets = false;
  without.state_pruning = false;

  Explorer reduced(make_qa_run_factory(config), with);
  Explorer naive(make_qa_run_factory(config), without);
  const ExploreResult r = reduced.explore();
  const ExploreResult n = naive.explore();
  EXPECT_FALSE(r.violation_found) << r.summary();
  EXPECT_FALSE(n.violation_found) << n.summary();
  EXPECT_LE(r.stats.runs, n.stats.runs)
      << "reduced: " << r.stats.summary()
      << "\nnaive: " << n.stats.summary();
}

TEST(Explorer, ExplorationIsDeterministic) {
  ExplorerOptions opt;
  opt.max_depth = 160;
  opt.max_runs = 2000;
  const auto run_once = [&] {
    Explorer explorer(make_qa_run_factory(counter_explore_config(2, 1)),
                      opt);
    return explorer.explore();
  };
  const ExploreResult a = run_once();
  const ExploreResult b = run_once();
  EXPECT_EQ(a.violation_found, b.violation_found);
  EXPECT_EQ(a.stats.runs, b.stats.runs);
  EXPECT_EQ(a.stats.steps, b.stats.steps);
  EXPECT_EQ(a.stats.sleep_skips, b.stats.sleep_skips);
  EXPECT_EQ(a.stats.state_prunes, b.stats.state_prunes);
  EXPECT_EQ(a.stats.distinct_states, b.stats.distinct_states);
}

TEST(Explorer, PreemptionBoundCutsChoices) {
  ExplorerOptions opt;
  opt.max_depth = 160;
  opt.max_runs = 5000;
  opt.max_preemptions = 2;
  Explorer explorer(make_qa_run_factory(counter_explore_config(2, 1)), opt);
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_GT(result.stats.preemption_skips, 0u) << result.stats.summary();
}

TEST(Explorer, MeetsIssueBoundsAtN3) {
  // The issue's acceptance bar: n = 3 at PR-sized bounds visits >= 10^4
  // distinct schedules (or exhausts the reduced space early, which is
  // stronger) with no violation, in well under a minute.
  ExplorerOptions opt;
  opt.name = "counter-n3";
  opt.max_depth = 400;
  opt.max_runs = 12000;
  Explorer explorer(make_qa_run_factory(counter_explore_config(3, 1)), opt);
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.stats.runs >= 10000 || result.clean())
      << result.summary();
  // Reduction effectiveness is part of the report.
  EXPECT_GT(result.stats.sleep_skips + result.stats.state_prunes, 0u)
      << result.stats.summary();
}

}  // namespace
}  // namespace tbwf::verify
