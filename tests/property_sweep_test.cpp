// Property-style parameterized sweeps: the paper's guarantees must hold
// across seeds, schedules, abort adversaries and object types -- not
// just in the hand-picked configurations of the unit suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "omega/omega_spec.hpp"
#include "qa/qa_universal.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

// ---------------------------------------------------------------------------
// Sweep 1: QA universal counter accounting across seeds x abort rates.
// ---------------------------------------------------------------------------

class QaAccountingSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

struct SweepStats {
  std::uint64_t applied = 0;
  int done = 0;
};

template <class Base>
Task sweep_worker(SimEnv& env, qa::QaUniversal<Counter, Base>& obj, int ops,
                  SweepStats& stats) {
  for (int i = 0; i < ops; ++i) {
    auto r = co_await obj.invoke(env, Counter::Op{1});
    while (r.bottom()) {
      r = co_await obj.query(env);
      if (r.bottom()) co_await env.yield();
    }
    if (r.ok()) ++stats.applied;
  }
  ++stats.done;
}

TEST_P(QaAccountingSweep, CounterEqualsAppliedOps) {
  const auto [seed, abort_pct] = GetParam();
  const int n = 3;
  World world(n, std::make_unique<sim::RandomSchedule>(seed));
  registers::ProbabilisticAbortPolicy policy(seed * 31 + 7,
                                             abort_pct / 100.0,
                                             abort_pct / 100.0, 0.5);
  qa::QaUniversal<Counter, qa::AbortableBase> obj(world, 0, &policy);
  SweepStats stats;
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return sweep_worker(env, obj, 30, stats);
    });
  }
  ASSERT_TRUE(
      world.run_until([&] { return stats.done == n; }, 100000000));
  EXPECT_EQ(obj.peek_frontier().state, static_cast<I64>(stats.applied));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAbortRates, QaAccountingSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::Values(0, 30, 70, 100)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_abort" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 2: TBWF holds across seeds and timely/untimely mixes.
// ---------------------------------------------------------------------------

class TbwfHoldsSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

template <class Obj>
Task forever_inc(SimEnv& env, Obj& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

TEST_P(TbwfHoldsSweep, TimelyProcessesProtected) {
  const auto [seed, untimely] = GetParam();
  const int n = 4;
  std::vector<ActivitySpec> specs;
  for (int i = 0; i < n - untimely; ++i) {
    specs.push_back(ActivitySpec::timely(4 * n));
  }
  for (int i = 0; i < untimely; ++i) {
    specs.push_back(
        ActivitySpec::growing_flicker(1000 + 300 * i, 200 + 100 * i));
  }
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  World world(n, std::move(sched));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  world.run(5000000);

  std::vector<Pid> all;
  for (Pid p = 0; p < n; ++p) all.push_back(p);
  const auto report = core::analyze_progress(
      sys.object().log(), world.now(), 2000000, 1000000, all);
  const auto verdict = core::check_tbwf(report, timely);
  EXPECT_TRUE(verdict.holds) << verdict.summary() << "\n"
                             << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndMixes, TbwfHoldsSweep,
    ::testing::Combine(::testing::Values(11u, 22u, 33u),
                       ::testing::Values(0, 1, 2)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_untimely" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Sweep 3: Omega-Delta (registers) Definition 5 across seeds x schedules.
// ---------------------------------------------------------------------------

class OmegaSpecSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OmegaSpecSweep, Definition5AcrossSeeds) {
  const auto seed = GetParam();
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
  const auto timely = sched->intended_timely();
  World world(n, std::move(sched));
  omega::OmegaRegisters om(world);
  om.install_all();
  omega::OmegaRecord record(world, om.ios());
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "c", [&om](SimEnv& env) {
      return omega::permanent_candidate(env, om.io(env.pid()));
    });
  }
  // "There is a time after which ..." has a long tail here: between
  // timely processes, monitor faults become rarer as timeouts adapt but
  // the LAST fault (and hence the last leadership change) can be late.
  // Run in chunks until a whole chunk passes with no leader change.
  std::size_t prev_changes = 0;
  bool quiescent = false;
  for (int chunk = 0; chunk < 24 && !quiescent; ++chunk) {
    world.run(1000000);
    std::size_t changes = 0;
    for (Pid p = 0; p < n; ++p) changes += record.leader(p).change_count();
    quiescent = (chunk > 0 && changes == prev_changes);
    prev_changes = changes;
  }
  ASSERT_TRUE(quiescent) << "leadership never quiesced";
  omega::CandidateClassification classes;
  for (Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  Step stabilized = 0;
  for (Pid p = 0; p < n; ++p) {
    stabilized = std::max(stabilized, record.leader(p).last_change());
  }
  const auto r =
      omega::check_omega_spec(record, classes, timely, stabilized,
                              /*require_leader_permanent=*/true);
  EXPECT_TRUE(r.ok) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaSpecSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Sweep 4: solo success of the QA object across object types.
// ---------------------------------------------------------------------------

template <class S>
Task solo_typed(SimEnv& env, qa::QaUniversal<S>& obj,
                std::vector<typename S::Op> ops, int& completed) {
  for (const auto& op : ops) {
    auto r = co_await obj.invoke(env, op);
    EXPECT_TRUE(r.ok());
    ++completed;
  }
}

TEST(QaTypesSolo, StackLifoOrder) {
  World world(1, std::make_unique<sim::RoundRobinSchedule>());
  qa::QaUniversal<qa::Stack> obj(world, {});
  int completed = 0;
  world.spawn(0, "w", [&](SimEnv& env) {
    return solo_typed<qa::Stack>(
        env, obj,
        {qa::Stack::push(1), qa::Stack::push(2), qa::Stack::push(3)},
        completed);
  });
  world.run(10000);
  EXPECT_EQ(completed, 3);
  const auto s = obj.peek_frontier().state;
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.back(), 3);
}

TEST(QaTypesSolo, RegisterTypeReadsLastWrite) {
  World world(1, std::make_unique<sim::RoundRobinSchedule>());
  qa::QaUniversal<qa::RegisterType> obj(world, 0);
  int completed = 0;
  world.spawn(0, "w", [&](SimEnv& env) {
    return solo_typed<qa::RegisterType>(
        env, obj,
        {{/*is_write=*/true, 42}, {/*is_write=*/false, 0}}, completed);
  });
  world.run(10000);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(obj.peek_frontier().state, 42);
}

TEST(QaTypesSolo, QueueFifoOrder) {
  World world(1, std::make_unique<sim::RoundRobinSchedule>());
  qa::QaUniversal<qa::Queue> obj(world, {});
  int completed = 0;
  world.spawn(0, "w", [&](SimEnv& env) {
    return solo_typed<qa::Queue>(
        env, obj,
        {qa::Queue::enqueue(1), qa::Queue::enqueue(2), qa::Queue::dequeue()},
        completed);
  });
  world.run(10000);
  EXPECT_EQ(completed, 3);
  const auto s = obj.peek_frontier().state;
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.front(), 2);
}

// ---------------------------------------------------------------------------
// Sweep 5: TBWF over the queue type end-to-end (not just counters).
// ---------------------------------------------------------------------------

TEST(TbwfTypes, QueueThroughTbwfIsExactlyOnce) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 77));
  core::TbwfSystem<qa::Queue> sys(world, {},
                                  core::OmegaBackend::AtomicRegisters);
  struct Enq {
    static Task run(SimEnv& env, core::TbwfObject<qa::Queue>& obj) {
      for (I64 i = 0;; ++i) {
        (void)co_await obj.invoke(env,
                                  qa::Queue::enqueue(env.pid() * 10000 + i));
      }
    }
  };
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "e", [&](SimEnv& env) {
      return Enq::run(env, sys.object());
    });
  }
  world.run(3000000);

  // Every enqueued value appears exactly once and per-producer order is
  // preserved (completion count may trail queue size by in-flight ops).
  const auto state = sys.object().qa().peek_frontier().state;
  std::vector<I64> last(n, -1);
  for (const I64 v : state) {
    const Pid p = static_cast<Pid>(v / 10000);
    EXPECT_GT(v % 10000, last[p]) << "per-producer order broken";
    last[p] = v % 10000;
  }
  std::uint64_t completed = 0;
  for (Pid p = 0; p < n; ++p) completed += sys.object().log().completed(p);
  EXPECT_GE(state.size(), completed);
  EXPECT_LE(state.size(), completed + n);
}

}  // namespace
}  // namespace tbwf
