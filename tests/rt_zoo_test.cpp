// Real-thread zoo: the rt specialists (RtZooSnapshot, RtZooQueue,
// RtZooLedger on genuinely abortable try-lock registers) and the rt
// universal twins (RtQaUniversal over the same zoo_types.hpp specs),
// all graded by the SAME Wing-Gong oracle as the sim twins. Real-time
// operation intervals come from a global atomic ticket stamped at
// invocation and at fate settlement; per-thread histories are merged
// after join. Solo runs must never answer bottom (the graded-guarantee
// base case); contended runs chase bottoms through query until the
// fate settles, then the merged history must linearize.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/rt_qa.hpp"
#include "verify/history.hpp"
#include "verify/lin_oracle.hpp"
#include "zoo/rt_zoo.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {
namespace {

using verify::HistoryOp;
using verify::OpStatus;

// -- rt history driver ----------------------------------------------------

// Drives one op on any rt zoo object (invoke(tid, op)/query(tid)),
// chasing bottom through query until the fate settles, and records the
// interval with ticket stamps. An op that is still bottom after the
// chase budget is recorded as Bottom -- optional for the oracle.
template <class S, class Obj>
HistoryOp<S> drive_op(Obj& obj, std::uint32_t tid, typename S::Op op,
                      std::atomic<std::uint64_t>& ticket) {
  HistoryOp<S> h;
  h.pid = static_cast<sim::Pid>(tid);
  h.op = op;
  h.invoked_at = ticket.fetch_add(1, std::memory_order_acq_rel);
  auto r = obj.invoke(tid, op);
  int chases = 0;
  while (r.bottom() && chases++ < 4096) {
    std::this_thread::yield();
    r = obj.query(tid);
  }
  h.responded_at = ticket.fetch_add(1, std::memory_order_acq_rel);
  h.responses = 1;
  if (r.ok()) {
    h.status = OpStatus::Ok;
    h.result = r.value;
  } else if (r.not_applied()) {
    h.status = OpStatus::NotApplied;
  } else {
    h.status = OpStatus::Bottom;
  }
  return h;
}

template <class S, class Obj>
std::vector<HistoryOp<S>> run_threads(
    Obj& obj, const std::vector<std::vector<typename S::Op>>& ops) {
  std::atomic<std::uint64_t> ticket{1};
  std::vector<std::vector<HistoryOp<S>>> per_thread(ops.size());
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < ops.size(); ++t) {
    pool.emplace_back([&, t] {
      for (const auto& op : ops[t]) {
        per_thread[t].push_back(drive_op<S>(obj, t, op, ticket));
      }
    });
  }
  for (auto& th : pool) th.join();
  std::vector<HistoryOp<S>> merged;
  for (auto& h : per_thread) {
    merged.insert(merged.end(), h.begin(), h.end());
  }
  return merged;
}

template <class S>
void expect_linearizable(const std::vector<HistoryOp<S>>& history,
                         const typename S::State& initial, const char* tag) {
  typename verify::LinOracle<S>::Options opt;
  opt.max_states = 4000000;
  const auto verdict = verify::LinOracle<S>(opt).check(history, initial);
  EXPECT_TRUE(verdict.linearizable()) << tag << ": " << verdict.summary();
}

// -- snapshot -------------------------------------------------------------

std::vector<std::vector<SnapshotType::Op>> snapshot_ops(int nthreads,
                                                        int rounds) {
  std::vector<std::vector<SnapshotType::Op>> ops(
      static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    for (int k = 0; k < rounds; ++k) {
      ops[static_cast<std::size_t>(t)].push_back(
          SnapshotType::update(t, t * 100 + k + 1));
      ops[static_cast<std::size_t>(t)].push_back(SnapshotType::scan());
    }
  }
  return ops;
}

TEST(RtZoo, SnapshotSoloNeverBottomsAndScansExactly) {
  RtZooSnapshot snap(1, {9});
  auto r = snap.invoke(0, SnapshotType::scan());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, (std::vector<std::int64_t>{9}));
  r = snap.invoke(0, SnapshotType::update(0, 11));
  ASSERT_TRUE(r.ok());
  r = snap.invoke(0, SnapshotType::scan());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, (std::vector<std::int64_t>{11}));
}

TEST(RtZoo, SnapshotSpecialistContendedLinearizable) {
  constexpr int kThreads = 3;
  const auto initial = SnapshotType::initial(kThreads);
  RtZooSnapshot snap(kThreads, initial);
  const auto history =
      run_threads<SnapshotType>(snap, snapshot_ops(kThreads, 4));
  expect_linearizable<SnapshotType>(history, initial, "rt-snap-spec");
}

TEST(RtZoo, SnapshotUniversalContendedLinearizable) {
  constexpr int kThreads = 3;
  const auto initial = SnapshotType::initial(kThreads);
  rt::RtQaUniversal<SnapshotType> snap(kThreads, initial);
  const auto history =
      run_threads<SnapshotType>(snap, snapshot_ops(kThreads, 4));
  expect_linearizable<SnapshotType>(history, initial, "rt-snap-uni");
}

// -- ledger ---------------------------------------------------------------

std::vector<std::vector<LedgerType::Op>> ledger_ops(int nthreads,
                                                    int rounds) {
  std::vector<std::vector<LedgerType::Op>> ops(
      static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    for (int k = 0; k < rounds; ++k) {
      ops[static_cast<std::size_t>(t)].push_back(
          LedgerType::put(7, t * 100 + k));
      ops[static_cast<std::size_t>(t)].push_back(LedgerType::get(7));
    }
  }
  return ops;
}

TEST(RtZoo, LedgerSoloNeverBottoms) {
  RtZooLedger ledger(1, {});
  auto r = ledger.invoke(0, LedgerType::get(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, LedgerType::kAbsent);
  r = ledger.invoke(0, LedgerType::put(7, 42));
  ASSERT_TRUE(r.ok());
  r = ledger.invoke(0, LedgerType::get(7));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 42);
}

TEST(RtZoo, LedgerSpecialistContendedLinearizable) {
  constexpr int kThreads = 3;
  RtZooLedger ledger(kThreads, {});
  const auto history = run_threads<LedgerType>(ledger, ledger_ops(kThreads, 4));
  expect_linearizable<LedgerType>(history, {}, "rt-ledger-spec");
}

TEST(RtZoo, LedgerUniversalContendedLinearizable) {
  constexpr int kThreads = 3;
  rt::RtQaUniversal<LedgerType> ledger(kThreads, {});
  const auto history = run_threads<LedgerType>(ledger, ledger_ops(kThreads, 4));
  expect_linearizable<LedgerType>(history, {}, "rt-ledger-uni");
}

// -- bounded MPMC queue ---------------------------------------------------

using RtQ4 = BoundedQueueOf<4>;

TEST(RtZoo, QueueSoloFifoFullEmptyExact) {
  RtZooQueue<2> q(1);
  using Q = BoundedQueueOf<2>;
  auto r = q.invoke(0, Q::enqueue(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 1);
  r = q.invoke(0, Q::enqueue(2));
  ASSERT_TRUE(r.ok());
  r = q.invoke(0, Q::enqueue(3));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, Q::kFull);
  r = q.invoke(0, Q::dequeue());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 1);
  r = q.invoke(0, Q::dequeue());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, 2);
  r = q.invoke(0, Q::dequeue());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, Q::kEmpty);
}

std::vector<std::vector<RtQ4::Op>> queue_ops(int nthreads, int rounds) {
  std::vector<std::vector<RtQ4::Op>> ops(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    for (int k = 0; k < rounds; ++k) {
      ops[static_cast<std::size_t>(t)].push_back(
          RtQ4::enqueue(t * 100 + k + 1));
      ops[static_cast<std::size_t>(t)].push_back(RtQ4::dequeue());
    }
  }
  return ops;
}

// Multiset conservation over the merged history: every Ok dequeue
// returns a distinct Ok-enqueued value (exactly-once, no duplication).
void check_rt_conservation(const std::vector<HistoryOp<RtQ4>>& history) {
  std::vector<std::int64_t> enq, deq;
  for (const auto& h : history) {
    if (h.status != OpStatus::Ok) continue;
    if (h.op.is_enqueue && h.result != RtQ4::kFull) enq.push_back(h.result);
    if (!h.op.is_enqueue && h.result != RtQ4::kEmpty) deq.push_back(h.result);
  }
  for (const std::int64_t v : deq) {
    auto it = std::find(enq.begin(), enq.end(), v);
    ASSERT_NE(it, enq.end())
        << "dequeued " << v << " was never enqueued (or dequeued twice)";
    enq.erase(it);
  }
}

TEST(RtZoo, QueueSpecialistContendedLinearizable) {
  constexpr int kThreads = 3;
  RtZooQueue<4> q(kThreads);
  const auto history = run_threads<RtQ4>(q, queue_ops(kThreads, 4));
  check_rt_conservation(history);
  expect_linearizable<RtQ4>(history, {}, "rt-queue-spec");
}

TEST(RtZoo, QueueUniversalContendedLinearizable) {
  constexpr int kThreads = 3;
  rt::RtQaUniversal<RtQ4> q(kThreads, {});
  const auto history = run_threads<RtQ4>(q, queue_ops(kThreads, 4));
  check_rt_conservation(history);
  expect_linearizable<RtQ4>(history, {}, "rt-queue-uni");
}

}  // namespace
}  // namespace tbwf::zoo
