// Edge cases of the chaos conformance checker: empty traces, a single
// process running solo (the k = 0 obstruction floor), runs where every
// process ends up crashed, and runs whose timeliness exists only in the
// stable suffix. The checker must neither crash nor silently award a
// guarantee no one earned.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/conformance.hpp"
#include "core/tbwf.hpp"
#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

bool mentions(const core::ConformanceReport& report, const char* needle) {
  for (const auto& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ConformanceEdge, EmptyTraceIsInconclusiveUnderRealBounds) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  world.run(0);
  const FaultPlan plan;
  core::OpLog log(2);
  const auto report = core::check_chaos_conformance(
      world.trace(), log, plan, {0, 1}, core::ConformanceOptions{});
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "inconclusive")) << report.summary();
}

TEST(ConformanceEdge, EmptyTraceAtZeroBoundsDemandsNothing) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  world.run(0);
  const FaultPlan plan;
  core::OpLog log(2);
  core::ConformanceOptions opt;
  opt.stabilization = 0;
  opt.min_suffix = 0;
  opt.max_completion_gap = 0;
  const auto report = core::check_chaos_conformance(world.trace(), log,
                                                    plan, {0, 1}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.suffix_timely.empty());
}

TEST(ConformanceEdge, SoloRunnerIsWaitFreeAtTheObstructionFloor) {
  // k = 0 timely peers beyond itself: a lone stepper must still make
  // progress (Theorem 14's obstruction floor). Solo QA operations never
  // abort, so the checker's solo path must come back green.
  const int n = 3;
  World world(n, std::make_unique<sim::RandomSchedule>(11));
  qa::QaUniversal<Counter> obj(world, 0);
  core::OpLog log(n);
  world.spawn(0, "solo", [&](SimEnv& env) -> Task {
    for (;;) {
      ++log.started[0];
      const auto res = co_await obj.invoke(env, Counter::Op{1});
      if (res.ok()) log.completions[0].push_back(env.now());
    }
  });
  world.run(30000);

  const FaultPlan plan;
  core::ConformanceOptions opt;
  opt.timely_bound = 4;
  opt.stabilization = 2000;
  opt.min_suffix = 10000;
  opt.max_completion_gap = 2000;
  const auto report = core::check_chaos_conformance(world.trace(), log,
                                                    plan, {0}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.suffix_timely, std::vector<Pid>{0});
  EXPECT_GT(log.completed(0), 0u);
}

TEST(ConformanceEdge, AllCrashedRunDemandsNothingAtZeroBounds) {
  const int n = 3;
  FaultPlan plan;
  plan.crash(0, 5000).crash(1, 5200).crash(2, 5400);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(3)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(60000);  // halts once everyone is crashed

  core::OpLog log = sys.object().log();
  core::ConformanceOptions opt;
  opt.stabilization = 0;
  opt.min_suffix = 0;
  const auto report = core::check_chaos_conformance(
      world.trace(), log, plan, /*issuing=*/{}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.suffix_timely.empty());
}

TEST(ConformanceEdge, AllCrashedRunIsInconclusiveUnderRealBounds) {
  // Same run graded with real suffix demands: the checker must flag the
  // missing stable suffix instead of passing silently.
  const int n = 3;
  FaultPlan plan;
  plan.crash(0, 5000).crash(1, 5200).crash(2, 5400);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(3)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(60000);

  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, {},
      core::ConformanceOptions{});
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "inconclusive")) << report.summary();
}

TEST(ConformanceEdge, TimelinessOnlyInTheSuffixStillEarnsTheVerdict) {
  // p0 stutters (one step every 200) through the first 60k steps --
  // untimely by any bound -- then runs cleanly. Definition 1 is graded
  // over the stable suffix, so p0 still earns (and must honor) the
  // wait-free verdict there.
  const int n = 3;
  FaultPlan plan;
  plan.stutter(0, 0, 60000, 200);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(29)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(300000);

  core::ConformanceOptions opt;
  opt.timely_bound = 64;
  opt.stabilization = 40000;
  opt.max_completion_gap = 100000;
  opt.min_suffix = 100000;
  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, {0, 1, 2}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_NE(std::find(report.suffix_timely.begin(),
                      report.suffix_timely.end(), 0),
            report.suffix_timely.end())
      << report.summary();

  // ...and the per-phase diagnostics prove p0 was NOT timely early on.
  bool untimely_early = false;
  for (const auto& w : report.windows) {
    if (w.to <= 60000 && w.realized_bound[0] != sim::Trace::kNever &&
        w.realized_bound[0] > opt.timely_bound) {
      untimely_early = true;
    }
  }
  EXPECT_TRUE(untimely_early) << report.summary();
}

}  // namespace
}  // namespace tbwf
