// Edge cases of the chaos conformance checker: empty traces, a single
// process running solo (the k = 0 obstruction floor), runs where every
// process ends up crashed, and runs whose timeliness exists only in the
// stable suffix. The checker must neither crash nor silently award a
// guarantee no one earned.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/batch_log.hpp"
#include "core/conformance.hpp"
#include "core/tbwf.hpp"
#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "zoo/ledger.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

bool mentions(const core::ConformanceReport& report, const char* needle) {
  for (const auto& v : report.violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ConformanceEdge, EmptyTraceIsInconclusiveUnderRealBounds) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  world.run(0);
  const FaultPlan plan;
  core::OpLog log(2);
  const auto report = core::check_chaos_conformance(
      world.trace(), log, plan, {0, 1}, core::ConformanceOptions{});
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "inconclusive")) << report.summary();
}

TEST(ConformanceEdge, EmptyTraceAtZeroBoundsDemandsNothing) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  world.run(0);
  const FaultPlan plan;
  core::OpLog log(2);
  core::ConformanceOptions opt;
  opt.stabilization = 0;
  opt.min_suffix = 0;
  opt.max_completion_gap = 0;
  const auto report = core::check_chaos_conformance(world.trace(), log,
                                                    plan, {0, 1}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.suffix_timely.empty());
}

TEST(ConformanceEdge, SoloRunnerIsWaitFreeAtTheObstructionFloor) {
  // k = 0 timely peers beyond itself: a lone stepper must still make
  // progress (Theorem 14's obstruction floor). Solo QA operations never
  // abort, so the checker's solo path must come back green.
  const int n = 3;
  World world(n, std::make_unique<sim::RandomSchedule>(11));
  qa::QaUniversal<Counter> obj(world, 0);
  core::OpLog log(n);
  world.spawn(0, "solo", [&](SimEnv& env) -> Task {
    for (;;) {
      ++log.started[0];
      const auto res = co_await obj.invoke(env, Counter::Op{1});
      if (res.ok()) log.completions[0].push_back(env.now());
    }
  });
  world.run(30000);

  const FaultPlan plan;
  core::ConformanceOptions opt;
  opt.timely_bound = 4;
  opt.stabilization = 2000;
  opt.min_suffix = 10000;
  opt.max_completion_gap = 2000;
  const auto report = core::check_chaos_conformance(world.trace(), log,
                                                    plan, {0}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.suffix_timely, std::vector<Pid>{0});
  EXPECT_GT(log.completed(0), 0u);
}

TEST(ConformanceEdge, AllCrashedRunDemandsNothingAtZeroBounds) {
  const int n = 3;
  FaultPlan plan;
  plan.crash(0, 5000).crash(1, 5200).crash(2, 5400);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(3)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(60000);  // halts once everyone is crashed

  core::OpLog log = sys.object().log();
  core::ConformanceOptions opt;
  opt.stabilization = 0;
  opt.min_suffix = 0;
  const auto report = core::check_chaos_conformance(
      world.trace(), log, plan, /*issuing=*/{}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_TRUE(report.suffix_timely.empty());
}

TEST(ConformanceEdge, AllCrashedRunIsInconclusiveUnderRealBounds) {
  // Same run graded with real suffix demands: the checker must flag the
  // missing stable suffix instead of passing silently.
  const int n = 3;
  FaultPlan plan;
  plan.crash(0, 5000).crash(1, 5200).crash(2, 5400);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(3)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(60000);

  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, {},
      core::ConformanceOptions{});
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(mentions(report, "inconclusive")) << report.summary();
}

TEST(ConformanceEdge, TimelinessOnlyInTheSuffixStillEarnsTheVerdict) {
  // p0 stutters (one step every 200) through the first 60k steps --
  // untimely by any bound -- then runs cleanly. Definition 1 is graded
  // over the stable suffix, so p0 still earns (and must honor) the
  // wait-free verdict there.
  const int n = 3;
  FaultPlan plan;
  plan.stutter(0, 0, 60000, 200);
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(29)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await sys.object().invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(300000);

  core::ConformanceOptions opt;
  opt.timely_bound = 64;
  opt.stabilization = 40000;
  opt.max_completion_gap = 100000;
  opt.min_suffix = 100000;
  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, {0, 1, 2}, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_NE(std::find(report.suffix_timely.begin(),
                      report.suffix_timely.end(), 0),
            report.suffix_timely.end())
      << report.summary();

  // ...and the per-phase diagnostics prove p0 was NOT timely early on.
  bool untimely_early = false;
  for (const auto& w : report.windows) {
    if (w.to <= 60000 && w.realized_bound[0] != sim::Trace::kNever &&
        w.realized_bound[0] > opt.timely_bound) {
      untimely_early = true;
    }
  }
  EXPECT_TRUE(untimely_early) << report.summary();
}

// -- batch-epoch grading of non-QA histories --------------------------------
//
// The per-epoch checker was written for the batched engine, but it must
// degrade gracefully on runs that never touched it: a register-based
// specialist commits no batches and announces nothing, so there is
// nothing to judge -- the verdict is a vacuous pass, never a crash and
// never an invented violation.

TEST(ConformanceEdgeBatch, EmptyBatchLogOverAnEmptyWindowDemandsNothing) {
  const core::BatchLog log;
  const core::BatchConformanceOptions opt;  // suffix_from = run_end = 0
  const auto report = core::check_batch_conformance(log, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.suffix_commits, 0u);
  EXPECT_EQ(report.judged_announces, 0u);
}

TEST(ConformanceEdgeBatch, EmptyBatchLogOverARealWindowIsVacuouslyClean) {
  const core::BatchLog log;
  core::BatchConformanceOptions opt;
  opt.suffix_from = 100000;
  opt.run_end = 300000;
  opt.timely = {0, 1};
  const auto report = core::check_batch_conformance(log, opt);
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.judged_announces, 0u);
  EXPECT_EQ(report.mean_batch_size, 0.0);
}

TEST(ConformanceEdgeBatch, SpecialistOnlyRunGradesVacuouslyPerEpoch) {
  // A zoo specialist's history is graded per-op over its real
  // completion log; the per-epoch grading of the same run sees an empty
  // batch log on the same stable-suffix window and must agree there is
  // nothing to flag.
  const int n = 2;
  World world(n, std::make_unique<sim::RandomSchedule>(11));
  zoo::WfLedger ledger(world, zoo::LedgerType::State{});
  core::OpLog log(n);
  struct Worker {
    static Task run(SimEnv& env, zoo::WfLedger& ledger, core::OpLog& log) {
      const Pid p = env.pid();
      for (std::int64_t v = 0;; ++v) {
        ++log.started[p];
        (void)co_await ledger.invoke(env, zoo::LedgerType::put(p, v));
        log.completions[p].push_back(env.now());
      }
    }
  };
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return Worker::run(env, ledger, log);
    });
  }
  // Modest budget: the ledger's append-only logs make each put O(log
  // size), so long runs are quadratic in wall-clock.
  world.run(30000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 5000;
  copt.max_completion_gap = 5000;
  copt.min_suffix = 10000;
  const auto per_op = core::check_chaos_conformance(world.trace(), log,
                                                    FaultPlan{}, {0, 1}, copt);
  EXPECT_TRUE(per_op.ok) << per_op.summary();

  core::BatchConformanceOptions bopt;
  bopt.suffix_from = per_op.suffix_from;
  bopt.run_end = per_op.run_end;
  bopt.timely = per_op.suffix_timely;
  const auto per_epoch =
      core::check_batch_conformance(core::BatchLog{}, bopt);
  EXPECT_TRUE(per_epoch.ok) << per_epoch.summary();
  EXPECT_EQ(per_epoch.suffix_commits, 0u);
  EXPECT_EQ(per_epoch.judged_announces, 0u);
}

}  // namespace
}  // namespace tbwf
