// Tests of Omega-Delta from abortable registers (Figure 6) against
// Definition 5 / Theorem 7 -- Theorem 13.
#include <gtest/gtest.h>

#include <memory>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_spec.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::Step;
using sim::World;

struct Harness {
  std::unique_ptr<World> world;
  std::unique_ptr<registers::AbortPolicy> policy;
  std::unique_ptr<OmegaAbortable> omega;
  std::unique_ptr<OmegaRecord> record;
  std::vector<Pid> intended_timely;

  Harness(std::vector<ActivitySpec> specs,
          std::unique_ptr<registers::AbortPolicy> pol, std::uint64_t seed) {
    auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
    intended_timely = sched->intended_timely();
    world = std::make_unique<World>(static_cast<int>(specs.size()),
                                    std::move(sched));
    for (std::size_t p = 0; p < specs.size(); ++p) {
      if (specs[p].crash_at != sim::Trace::kNever) {
        world->schedule_crash(static_cast<Pid>(p), specs[p].crash_at);
      }
    }
    policy = std::move(pol);
    omega = std::make_unique<OmegaAbortable>(*world, policy.get());
    omega->install_all();
    record = std::make_unique<OmegaRecord>(*world, omega->ios());
  }

  void drive_permanent(Pid p) {
    world->spawn(p, "cand", [this](sim::SimEnv& env) {
      return permanent_candidate(env, omega->io(env.pid()));
    });
  }
  void drive_never(Pid p, Step dabble = 0) {
    world->spawn(p, "cand", [this, dabble](sim::SimEnv& env) {
      return never_candidate(env, omega->io(env.pid()), dabble);
    });
  }
  void drive_repeated(Pid p, Step on, Step off, bool canonical) {
    world->spawn(p, "cand", [this, on, off, canonical](sim::SimEnv& env) {
      return canonical
                 ? canonical_repeated_candidate(env, omega->io(env.pid()),
                                                on, off)
                 : repeated_candidate(env, omega->io(env.pid()), on, off);
    });
  }
};

std::unique_ptr<registers::AbortPolicy> always_abort() {
  return std::make_unique<registers::AlwaysAbortPolicy>(
      registers::AlwaysAbortPolicy::Effect::Alternate);
}

std::unique_ptr<registers::AbortPolicy> probabilistic(std::uint64_t seed) {
  return std::make_unique<registers::ProbabilisticAbortPolicy>(
      seed, /*p_abort_read=*/0.7, /*p_abort_write=*/0.7, /*p_effect=*/0.5);
}

// -- headline: the spec holds under the maximal abort adversary ---------------------

TEST(OmegaAbortable, ElectsLeaderUnderMaximalAdversary) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            always_abort(), 1);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(3000000);

  CandidateClassification classes;
  for (Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 2500000);
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(OmegaAbortable, ElectsLeaderUnderProbabilisticAborts) {
  const int n = 4;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            probabilistic(99), 2);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(3000000);

  CandidateClassification classes;
  for (Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 2500000);
  EXPECT_TRUE(result.ok) << result.summary();
}

TEST(OmegaAbortable, SingleCandidateElectsItself) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            always_abort(), 3);
  h.drive_permanent(2);
  h.drive_never(0);
  h.drive_never(1);
  h.world->run(1500000);

  CandidateClassification classes;
  classes.pcandidates = {2};
  classes.ncandidates = {0, 1};
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 1000000);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.elected, 2);
}

// -- graceful behaviour: untimely low-pid candidate loses ---------------------------

TEST(OmegaAbortable, TimelyCandidateBeatsUntimelyLowerPid) {
  std::vector<ActivitySpec> specs = {
      ActivitySpec::growing_flicker(2000, 500),
      ActivitySpec::timely(8),
      ActivitySpec::eager(),
  };
  Harness h(specs, probabilistic(7), 5);
  for (Pid p = 0; p < 3; ++p) h.drive_permanent(p);
  h.world->run(8000000);

  // The timely processes converge on a timely leader (not p0).
  const Pid l1 = h.record->leader(1).value_at(7000000);
  EXPECT_TRUE(l1 == 1 || l1 == 2) << "leader at p1 = " << l1;
  EXPECT_TRUE(h.record->leader(1).constant_since(7000000));
  EXPECT_EQ(h.record->leader(2).value_at(7000000), l1);
  EXPECT_TRUE(h.record->leader(2).constant_since(7000000));
}

// -- repeated candidates, canonical use ----------------------------------------------

TEST(OmegaAbortable, CanonicalRepeatedCandidatesTheorem7) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            probabilistic(13), 7);
  h.drive_permanent(0);
  h.drive_permanent(1);
  h.drive_repeated(2, 20000, 20000, /*canonical=*/true);
  h.world->run(8000000);

  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  classes.rcandidates = {2};
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 6000000,
                                       /*require_leader_permanent=*/true);
  EXPECT_TRUE(result.ok) << result.summary();
}

// -- adaptive backoff: aborts dry up ----------------------------------------------------

TEST(OmegaAbortable, AbortRateDecaysAfterStabilization) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            always_abort(), 11);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(1000000);
  const auto early_aborts =
      h.world->total_read_aborts() + h.world->total_write_aborts();
  h.world->run(1000000);
  const auto mid_aborts =
      h.world->total_read_aborts() + h.world->total_write_aborts();
  h.world->run(2000000);
  const auto late_aborts =
      h.world->total_read_aborts() + h.world->total_write_aborts();

  const auto second_window = mid_aborts - early_aborts;
  const auto third_window = (late_aborts - mid_aborts) / 2;  // per 1M steps
  EXPECT_LT(third_window, second_window)
      << "aborts/1M-steps should decay as backoffs adapt";
}

// -- crash of the leader -------------------------------------------------------------

TEST(OmegaAbortable, LeaderCrashTriggersReelection) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(6 * n)),
            probabilistic(5), 13);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(2000000);
  const Pid first = h.omega->io(2).leader;
  ASSERT_NE(first, kNoLeader);

  h.world->crash(first);
  h.world->run(4000000);
  for (Pid p = 0; p < n; ++p) {
    if (p == first) continue;
    const Pid l = h.omega->io(p).leader;
    EXPECT_NE(l, first) << "p" << p << " still trusts the crashed leader";
    EXPECT_NE(l, kNoLeader);
  }
}

// -- determinism ------------------------------------------------------------------------

TEST(OmegaAbortable, RunsAreReproducible) {
  auto run_once = [](std::uint64_t seed) {
    const int n = 3;
    Harness h(sim::uniform_specs(n, ActivitySpec::eager()),
              probabilistic(seed), seed);
    for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
    h.world->run(500000);
    std::vector<Pid> leaders;
    for (Pid p = 0; p < n; ++p) leaders.push_back(h.omega->io(p).leader);
    return leaders;
  };
  EXPECT_EQ(run_once(21), run_once(21));
}

}  // namespace
}  // namespace tbwf::omega
