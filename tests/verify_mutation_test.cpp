// Mutation-testing proof for the verify stack: each planted protocol
// fault must be CAUGHT -- by an oracle VIOLATION or a conformance
// failure -- with a replayable counterexample, and the unmutated stack
// must stay clean under the same bounds.
//
//   1. QaMutations::drop_decide_fence skips QaUniversal's step-5
//      validation read: two rounds can decide different values at one
//      slot (a lost update). The schedule explorer must find a
//      non-linearizable interleaving and minimize it.
//   2. OmegaRegisters freeze-leader pins each process's announced
//      LEADER after its first announcement: when the announced leader
//      crashes, survivors wait on a dead process forever -- a
//      wait-freedom conformance violation.
//   3. OmegaRegisters torn-counter-write makes punishment writes store
//      the old counter value (the write's intent is torn off):
//      leadership oscillates forever under a repeated candidate, where
//      the intact protocol quiesces.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/conformance.hpp"
#include "core/tbwf_object.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "qa/sequential_type.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"
#include "verify/artifact.hpp"
#include "verify/explorer.hpp"
#include "verify/qa_harness.hpp"

namespace tbwf::verify {
namespace {

using qa::Counter;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

// -- mutant 1: dropped decide fence in the QA universal -----------------------

QaExploreConfig<Counter> fence_config(bool drop_fence) {
  auto config = counter_explore_config(2, 1);
  config.mutations.drop_decide_fence = drop_fence;
  return config;
}

ExplorerOptions fence_bounds(const char* name) {
  ExplorerOptions opt;
  opt.name = name;
  opt.max_depth = 220;
  opt.max_runs = 60000;
  return opt;
}

TEST(MutationDropFence, ExplorerFindsTheLostUpdate) {
  Explorer explorer(make_qa_run_factory(fence_config(true)),
                    fence_bounds("drop-decide-fence"));
  const ExploreResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  EXPECT_NE(result.artifact.violation.find("VIOLATION"), std::string::npos);
  EXPECT_FALSE(result.artifact.schedule.empty());
  // Minimization keeps the witness small enough to read.
  EXPECT_LE(result.artifact.schedule.size(), 40u) << result.summary();

  // The artifact replays: the scripted prefix reproduces the exact
  // violation and the exact trace.
  auto factory = make_qa_run_factory(fence_config(true));
  auto run = factory(
      std::make_unique<sim::ScriptedSchedule>(result.artifact.schedule));
  run->world().run(static_cast<Step>(result.artifact.schedule.size()));
  EXPECT_FALSE(run->check().empty());
  EXPECT_EQ(run->world().trace().digest(), result.artifact.trace_digest);

  // ...and survives a save/load round trip.
  const std::string path = ::testing::TempDir() + "drop_fence_cex.txt";
  ASSERT_TRUE(result.artifact.save(path));
  const auto loaded = CounterexampleArtifact::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->schedule, result.artifact.schedule);
  EXPECT_EQ(loaded->trace_digest, result.artifact.trace_digest);
  EXPECT_EQ(loaded->n, 2);
  std::remove(path.c_str());
}

TEST(MutationDropFence, UnmutatedStackIsCleanAtTheSameBounds) {
  Explorer explorer(make_qa_run_factory(fence_config(false)),
                    fence_bounds("decide-fence-intact"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean()) << result.summary();
}

// -- mutant 2: stale-leader Omega-Delta ---------------------------------------

core::ConformanceReport freeze_leader_run(bool freeze) {
  const int n = 3;
  sim::FaultPlan plan;
  plan.crash(0, 60000);  // p0 wins the initial (counter, pid) tie-break
  World world(n, plan.wrap(std::make_unique<sim::RandomSchedule>(991)));
  omega::OmegaRegisters om(world);
  om.set_mutation_freeze_leader(freeze);
  om.install_all();
  core::TbwfObject<Counter> obj(
      world, 0, [&](Pid p) -> omega::OmegaIO& { return om.io(p); });
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) -> Task {
      for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
    });
  }
  plan.install(world);
  world.run(500000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 150000;
  copt.max_completion_gap = 150000;
  copt.min_suffix = 200000;
  return core::check_chaos_conformance(world.trace(), obj.log(), plan,
                                       {1, 2}, copt);
}

TEST(MutationFreezeLeader, SurvivorsStarveOnTheDeadLeader) {
  const auto report = freeze_leader_run(true);
  ASSERT_FALSE(report.ok) << report.summary();
  bool wait_freedom_violated = false;
  for (const std::string& v : report.violations) {
    if (v.find("wait-freedom") != std::string::npos) {
      wait_freedom_violated = true;
    }
  }
  EXPECT_TRUE(wait_freedom_violated) << report.summary();

  // The graded report carries the progress failure even when no oracle
  // ran on this run.
  const auto graded = core::grade_run(report, core::SafetySummary{});
  EXPECT_FALSE(graded.ok());
}

TEST(MutationFreezeLeader, IntactOmegaPassesTheSameScenario) {
  const auto report = freeze_leader_run(false);
  EXPECT_TRUE(report.ok) << report.summary();
}

// -- mutant 3: torn counter write ---------------------------------------------

std::size_t late_churn(bool torn, Step total, Step window) {
  const int n = 2;
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 23));
  omega::OmegaRegisters om(world);
  om.set_mutation_torn_counter_write(torn);
  om.install_all();
  world.spawn(0, "r", [&](SimEnv& env) {
    return omega::repeated_candidate(env, om.io(0), 8000, 8000);
  });
  world.spawn(1, "p", [&](SimEnv& env) {
    return omega::permanent_candidate(env, om.io(1));
  });
  sim::Trajectory<Pid> leader1;
  leader1.sample(0, om.io(1).leader);
  leader1.attach(world, &om.io(1).leader);
  world.run(total);
  return leader1.changes_in(total - window, total);
}

TEST(MutationTornCounterWrite, LeadershipOscillatesForever) {
  // Punishment writes that store the old value never raise any counter,
  // so the repeated candidate r (smallest (counter, pid)) steals the
  // leadership back on every rejoin -- the oscillation Figure 3's
  // self-punishment exists to kill.
  EXPECT_GE(late_churn(true, 4000000, 1000000), 10u);
}

TEST(MutationTornCounterWrite, IntactWritesQuiesce) {
  EXPECT_EQ(late_churn(false, 4000000, 1000000), 0u);
}

}  // namespace
}  // namespace tbwf::verify
