// Tests of the Trajectory<T> change-point recorder used by the spec
// checkers.
#include <gtest/gtest.h>

#include <memory>

#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

TEST(Trajectory, RecordsOnlyChangePoints) {
  Trajectory<int> t;
  t.sample(0, 1);
  t.sample(1, 1);
  t.sample(2, 1);
  t.sample(3, 2);
  t.sample(4, 2);
  EXPECT_EQ(t.points().size(), 2u);
  EXPECT_EQ(t.change_count(), 1u);
  EXPECT_EQ(t.final_value(), 2);
  EXPECT_EQ(t.last_change(), 3u);
}

TEST(Trajectory, ValueAtInterpolatesBetweenChanges) {
  Trajectory<int> t;
  t.sample(0, 10);
  t.sample(5, 20);
  t.sample(9, 30);
  EXPECT_EQ(t.value_at(0), 10);
  EXPECT_EQ(t.value_at(4), 10);
  EXPECT_EQ(t.value_at(5), 20);
  EXPECT_EQ(t.value_at(8), 20);
  EXPECT_EQ(t.value_at(100), 30);
}

TEST(Trajectory, ConstantSince) {
  Trajectory<int> t;
  t.sample(0, 1);
  t.sample(50, 2);
  EXPECT_TRUE(t.constant_since(50));
  EXPECT_TRUE(t.constant_since(60));
  EXPECT_FALSE(t.constant_since(49));
}

TEST(Trajectory, ChangesInWindow) {
  Trajectory<int> t;
  t.sample(0, 0);
  t.sample(10, 1);
  t.sample(20, 2);
  t.sample(30, 3);
  EXPECT_EQ(t.changes_in(0, 100), 3u);
  EXPECT_EQ(t.changes_in(10, 21), 2u);
  EXPECT_EQ(t.changes_in(11, 20), 0u);
  EXPECT_EQ(t.changes_in(31, 100), 0u);
}

TEST(Trajectory, AlwaysIn) {
  Trajectory<int> t;
  t.sample(0, 5);
  t.sample(10, 6);
  EXPECT_TRUE(t.always_in(0, 10, 5));
  EXPECT_FALSE(t.always_in(0, 11, 5));
  EXPECT_TRUE(t.always_in(10, 20, 6));
}

// -- edge cases: empty trajectories, single points, empty windows -------------

TEST(Trajectory, EmptyTrajectoryEdgeCases) {
  Trajectory<int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.change_count(), 0u);
  EXPECT_EQ(t.points().size(), 0u);
  // Window queries on a trajectory with no samples: no changes anywhere,
  // and always_in is false (there is no evidence of any value).
  EXPECT_EQ(t.changes_in(0, 100), 0u);
  EXPECT_FALSE(t.always_in(0, 100, 0));
  EXPECT_FALSE(t.constant_since(0));
}

TEST(Trajectory, SinglePointEdgeCases) {
  Trajectory<int> t;
  t.sample(5, 42);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.change_count(), 0u);  // the initial sample is not a change
  EXPECT_EQ(t.final_value(), 42);
  EXPECT_EQ(t.last_change(), 5u);
  EXPECT_EQ(t.value_at(5), 42);
  EXPECT_EQ(t.value_at(1000), 42);
  EXPECT_TRUE(t.constant_since(5));
  EXPECT_TRUE(t.constant_since(100));
  EXPECT_FALSE(t.constant_since(4));
  EXPECT_EQ(t.changes_in(0, 1000), 0u);
  EXPECT_TRUE(t.always_in(5, 100, 42));
  EXPECT_FALSE(t.always_in(5, 100, 41));
}

TEST(Trajectory, EmptyWindowQueries) {
  Trajectory<int> t;
  t.sample(0, 1);
  t.sample(10, 2);
  // Zero-length windows contain no change points and vacuously satisfy
  // always_in.
  EXPECT_EQ(t.changes_in(10, 10), 0u);
  EXPECT_EQ(t.changes_in(5, 5), 0u);
  EXPECT_TRUE(t.always_in(7, 7, 999));
  EXPECT_TRUE(t.always_in(0, 0, 999));
}

TEST(Trajectory, WindowBoundariesAreHalfOpen) {
  Trajectory<int> t;
  t.sample(0, 0);
  t.sample(10, 1);
  // A change exactly at `from` counts; exactly at `to` does not.
  EXPECT_EQ(t.changes_in(10, 11), 1u);
  EXPECT_EQ(t.changes_in(9, 10), 0u);
}

TEST(Trajectory, RepeatedEqualSamplesNeverChange) {
  Trajectory<int> t;
  for (Step s = 0; s < 100; ++s) t.sample(s, 7);
  EXPECT_EQ(t.points().size(), 1u);
  EXPECT_EQ(t.change_count(), 0u);
  EXPECT_EQ(t.last_change(), 0u);
  EXPECT_TRUE(t.constant_since(0));
}

Task toggler(SimEnv& env, int& var) {
  for (;;) {
    var = 1 - var;
    co_await env.yield();
  }
}

TEST(Trajectory, AttachSamplesAfterEveryStep) {
  auto w = std::make_unique<World>(1, std::make_unique<RoundRobinSchedule>());
  int var = 0;
  Trajectory<int> t;
  t.sample(0, var);
  t.attach(*w, &var);
  w->spawn(0, "t", [&var](SimEnv& env) { return toggler(env, var); });
  w->run(10);
  // The variable flips every step: ten changes recorded.
  EXPECT_GE(t.change_count(), 9u);
  EXPECT_EQ(t.value_at(3), var == 0 ? 0 : t.value_at(3));  // total function
}

}  // namespace
}  // namespace tbwf::sim
