// LogHistogram unit tests: the HDR-style bucket geometry (exact range,
// contiguity, bounded relative width), conservative quantiles, weighted
// recording and merge algebra the soak harness depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "soak/latency_histogram.hpp"

namespace tbwf::soak {
namespace {

TEST(LogHistogramTest, ExactRangeIsBucketPerValue) {
  for (std::uint64_t v = 0; v <= LogHistogram::kExactMax; ++v) {
    const std::size_t i = LogHistogram::index_of(v);
    EXPECT_EQ(LogHistogram::bucket_lower(i), v);
    EXPECT_EQ(LogHistogram::bucket_upper(i), v);
  }
}

TEST(LogHistogramTest, BucketsAreContiguous) {
  // Every bucket starts exactly where the previous one ends: no gaps,
  // no overlaps, across the exact range and many power-of-two tiers.
  for (std::size_t i = 0; i + 1 < 1500; ++i) {
    EXPECT_EQ(LogHistogram::bucket_upper(i) + 1,
              LogHistogram::bucket_lower(i + 1))
        << "bucket " << i;
  }
}

TEST(LogHistogramTest, IndexRoundTripsAndIsMonotone) {
  std::vector<std::uint64_t> probes;
  for (std::uint64_t v = 0; v < 1000; ++v) probes.push_back(v);
  for (int k = 6; k < 63; ++k) {
    const std::uint64_t p = 1ULL << k;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
  }
  std::size_t prev = 0;
  std::uint64_t prev_v = 0;
  for (const std::uint64_t v : probes) {
    const std::size_t i = LogHistogram::index_of(v);
    ASSERT_LT(i, LogHistogram::kBuckets) << "v=" << v;
    EXPECT_LE(LogHistogram::bucket_lower(i), v) << "v=" << v;
    EXPECT_GE(LogHistogram::bucket_upper(i), v) << "v=" << v;
    if (v >= prev_v) EXPECT_GE(i, prev) << "v=" << v;
    prev = i;
    prev_v = v;
  }
}

TEST(LogHistogramTest, RelativeBucketWidthIsBounded) {
  // Above the exact range each bucket's width is at most lower/32:
  // a recorded value is over-reported by < ~3.2% of itself.
  for (std::size_t i = 2 * LogHistogram::kSubBuckets; i < 1500; ++i) {
    const std::uint64_t lower = LogHistogram::bucket_lower(i);
    const std::uint64_t width =
        LogHistogram::bucket_upper(i) - lower + 1;
    EXPECT_LE(width * LogHistogram::kSubBuckets, lower) << "bucket " << i;
  }
}

TEST(LogHistogramTest, EmptyHistogramReportsZeros) {
  const LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.p50(), 0u);
  EXPECT_EQ(h.p999(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, QuantilesAreConservativeAndTight) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  for (const double q : {0.50, 0.90, 0.99}) {
    const std::uint64_t exact =
        static_cast<std::uint64_t>(q * 1000.0 + 0.9999999);
    const std::uint64_t reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;         // never under-reports
    EXPECT_LE(reported, exact + exact / 32 + 1) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 1000u);
}

TEST(LogHistogramTest, QuantileClampsToObservedMax) {
  LogHistogram h;
  h.record(5);
  h.record(1000000);
  // The top bucket's upper bound exceeds 1000000; the quantile must
  // clamp to the exact maximum seen.
  EXPECT_EQ(h.p999(), 1000000u);
  EXPECT_EQ(h.p50(), 5u);
}

TEST(LogHistogramTest, WeightedRecordCountsAsRepeats) {
  LogHistogram a;
  a.record_n(7, 1000);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.p50(), 7u);
  EXPECT_EQ(a.p999(), 7u);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);

  // record_n(v, n) is equivalent to n record(v) calls.
  LogHistogram b;
  for (int i = 0; i < 1000; ++i) b.record(7);
  EXPECT_EQ(a.p99(), b.p99());
  EXPECT_EQ(a.count(), b.count());

  a.record_n(9, 0);  // zero-weight records are no-ops
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_EQ(a.max(), 7u);
}

TEST(LogHistogramTest, MergeMatchesSingleHistogram) {
  LogHistogram evens, odds, all;
  for (std::uint64_t v = 0; v < 2000; ++v) {
    (v % 2 == 0 ? evens : odds).record(v * 3);
    all.record(v * 3);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), all.count());
  EXPECT_EQ(evens.min(), all.min());
  EXPECT_EQ(evens.max(), all.max());
  EXPECT_DOUBLE_EQ(evens.mean(), all.mean());
  for (const double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    EXPECT_EQ(evens.quantile(q), all.quantile(q)) << "q=" << q;
  }

  LogHistogram empty;
  evens.merge(empty);  // merging an empty histogram changes nothing
  EXPECT_EQ(evens.count(), all.count());
  empty.merge(evens);  // merging INTO an empty one adopts everything
  EXPECT_EQ(empty.p99(), all.p99());
}

}  // namespace
}  // namespace tbwf::soak
