// Tests for the PR's two read-path optimizations:
//
//  1. OmegaRegisters scan caching (opt-in): after stabilization a
//     candidate reuses its (counter, activeSet) snapshot instead of
//     re-reading all n CounterRegisters each round, with full scans
//     forced by any local epoch bump (activeSet change, faultCntr
//     growth, own counter write) and at least every refresh period.
//  2. The channel sweeps' bulk-skip fast path (always on, exactly
//     equivalent): ReadMsgs / ReceiveHeartbeat invocations that provably
//     cannot fire a poll are satisfied in O(1); the read schedule must
//     be bit-identical to the naive per-call timer walk.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "omega/candidate_drivers.hpp"
#include "omega/hb_channel.hpp"
#include "omega/msg_channel.hpp"
#include "omega/omega_registers.hpp"
#include "omega/omega_spec.hpp"
#include "registers/abort_policy.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

// -- OmegaRegisters scan caching ----------------------------------------------

struct CacheHarness {
  std::unique_ptr<World> world;
  std::unique_ptr<OmegaRegisters> omega;
  std::unique_ptr<OmegaRecord> record;
  std::vector<Pid> intended_timely;

  CacheHarness(std::vector<ActivitySpec> specs, std::uint64_t seed,
               bool scan_cache) {
    auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
    intended_timely = sched->intended_timely();
    world = std::make_unique<World>(static_cast<int>(specs.size()),
                                    std::move(sched));
    omega = std::make_unique<OmegaRegisters>(*world);
    omega->set_scan_cache(scan_cache);
    omega->install_all();
    record = std::make_unique<OmegaRecord>(*world, omega->ios());
    for (Pid p = 0; p < static_cast<Pid>(specs.size()); ++p) {
      world->spawn(p, "cand", [this](SimEnv& env) {
        return permanent_candidate(env, omega->io(env.pid()));
      });
    }
  }

  std::uint64_t scans(const char* which) const {
    std::uint64_t total = 0;
    for (Pid p = 0; p < static_cast<Pid>(omega->n()); ++p) {
      total += world->counters().get(std::string("omega.scan.") + which +
                                     ".p" + std::to_string(p));
    }
    return total;
  }

  /// Bench-style check: cutoff halfway between the observed system-wide
  /// stabilization point (over the *timely* candidates -- a flickering
  /// process's output trails harmlessly) and the end of the run, with
  /// the step trace exempting processes that barely ran in the suffix.
  SpecCheckResult check_stabilized(Step steps) const {
    Step stabilized_at = 0;
    for (const Pid p : intended_timely) {
      stabilized_at = std::max(stabilized_at, record->leader(p).last_change());
    }
    CandidateClassification classes;
    for (Pid p = 0; p < static_cast<Pid>(omega->n()); ++p) {
      classes.pcandidates.push_back(p);
    }
    return check_omega_spec(*record, classes, intended_timely,
                            (stabilized_at + steps) / 2,
                            /*require_leader_permanent=*/false,
                            &world->trace());
  }
};

// The cached run must still satisfy Definition 5 wherever the uncached
// one does: same specs, same seeds, both verdicts must pass and both
// elected leaders must be intended-timely processes.
TEST(ScanCache, VerdictEquivalenceMiniSweep) {
  const int n = 4;
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    for (const bool cached : {false, true}) {
      CacheHarness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)),
                     seed, cached);
      h.world->run(400000);
      const auto result = h.check_stabilized(400000);
      EXPECT_TRUE(result.ok) << "seed " << seed << " cached " << cached
                             << ": " << result.summary();
      EXPECT_NE(result.elected, kNoLeader);
      bool timely = false;
      for (const Pid p : h.intended_timely) timely |= (p == result.elected);
      EXPECT_TRUE(timely) << "seed " << seed << " cached " << cached
                          << " elected non-timely p" << result.elected;
    }
  }
}

// The ablation acceptance criterion: after stabilization a cached
// candidate performs STRICTLY fewer shared-register reads per round --
// here at least 10x fewer across the run (the uncached implementation
// reads n registers every round, i.e. skip fraction 0).
TEST(ScanCache, StrictlyFewerSharedReadsPerRound) {
  const int n = 6;
  CacheHarness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)),
                 /*seed=*/5, /*scan_cache=*/true);
  const Step steps = 1500000;  // this workload stabilizes around 500k (E5)
  h.world->run(steps);

  const std::uint64_t full = h.scans("full");
  const std::uint64_t skipped = h.scans("skipped");
  ASSERT_GT(full, 0u);
  ASSERT_GT(skipped, 0u);
  // reads/round = n * full / (full + skipped); demand >= 10x reduction.
  EXPECT_GT(skipped, 9 * full)
      << "skip fraction too low: full=" << full << " skipped=" << skipped;
  // The election itself still works.
  const auto result = h.check_stabilized(steps);
  EXPECT_TRUE(result.ok) << result.summary();
}

// A stale cache must be refreshed when the world moves underneath it:
// with a flickering process in the mix, candidates keep punishing it
// (faultCntr epoch bumps) and their own activeSet views keep changing,
// so full scans must significantly exceed the 1-per-refresh-period
// floor of a quiet run -- and the verdict must still hold.
TEST(ScanCache, EpochBumpForcesFullScan) {
  const int n = 4;
  std::vector<ActivitySpec> specs;
  specs.push_back(ActivitySpec::growing_flicker(1500, 300));
  for (int i = 1; i < n; ++i) specs.push_back(ActivitySpec::timely(4 * n));

  CacheHarness h(specs, /*seed=*/35, /*scan_cache=*/true);
  const Step steps = 6000000;
  h.world->run(steps);

  const std::uint64_t full = h.scans("full");
  const std::uint64_t skipped = h.scans("skipped");
  ASSERT_GT(full, 0u);
  // A fully quiet run scans exactly once per (period + 1)-round cycle
  // (one full scan, then `period` cached rounds while cache_age runs
  // 0..period-1), so full == (full + skipped) / (period + 1) on the
  // nose. Instability-driven invalidations -- activeSet flips and
  // faultCntr bumps from the flickering p0 -- push the full-scan count
  // strictly above that floor.
  const std::uint64_t cycle =
      static_cast<std::uint64_t>(h.omega->scan_refresh_period()) + 1;
  EXPECT_GT(full * cycle, full + skipped)
      << "no epoch bump ever forced a scan: full=" << full
      << " skipped=" << skipped;

  const auto result = h.check_stabilized(steps);
  EXPECT_TRUE(result.ok) << result.summary();
  // The flickering process must never be the stabilized leader.
  EXPECT_NE(result.elected, 0);
}

// -- channel sweep bulk-skip ---------------------------------------------------

Task idle_proc(SimEnv& env) {
  for (;;) co_await env.yield();
}

// Inline coroutine lambdas would dangle their captures (the frame
// outlives the lambda object); spawn free coroutines, repo-style.
Task msg_reader_loop(SimEnv& env, MsgEndpoint<I64>& ep,
                     std::vector<std::uint64_t>& reads_after_call) {
  for (;;) {
    co_await read_msgs(env, ep);
    reads_after_call.push_back(env.world().total_reads());
    co_await env.yield();
  }
}

Task hb_sender_loop(SimEnv& env, HbEndpoint& ep, std::vector<bool> dest) {
  for (;;) {
    co_await send_heartbeat(env, ep, dest);
    co_await env.yield();
  }
}

Task hb_receiver_loop(SimEnv& env, HbEndpoint& ep) {
  for (;;) {
    co_await receive_heartbeat(env, ep);
    co_await env.yield();
  }
}

// Reference check for ReadMsgs: with a silent writer, the adaptive
// timeout walks 1, 2, 3, ... and the k-th poll lands exactly at call
// number k(k+1)/2. The bulk-skip path must reproduce that schedule
// bit-for-bit (every skip is paid back before the next real sweep).
TEST(MsgSweepSkip, ReadScheduleBitIdentical) {
  const int n = 2;
  World world(n, std::make_unique<sim::RandomSchedule>(3));
  registers::NeverAbortPolicy policy;
  auto eps = make_msg_mesh<I64>(world, &policy, 0);

  std::vector<std::uint64_t> reads_after_call;
  world.spawn(0, "idle", [](SimEnv& env) { return idle_proc(env); });
  world.spawn(1, "reader", [&eps, &reads_after_call](SimEnv& env) {
    return msg_reader_loop(env, eps[1], reads_after_call);
  });
  const std::size_t kCalls = 300;
  ASSERT_TRUE(world.run_until(
      [&] { return reads_after_call.size() >= kCalls; }, 5000000));

  // Naive per-call timer walk (the pre-skip implementation).
  std::uint64_t reads = 0;
  std::int64_t timer = 1, timeout = 1;
  for (std::size_t call = 0; call < kCalls; ++call) {
    if (timer >= 1) --timer;
    if (timer == 0) {
      ++reads;      // solo read, never aborts, always stale here
      ++timeout;    // no fresh value ever arrives
      timer = timeout - 1;  // reloaded BEFORE the timeout grew
    }
    ASSERT_EQ(reads_after_call[call], reads) << "diverged at call " << call;
  }
}

// A quarantined heartbeat link must keep probing (and eventually heal)
// through the bulk-skip fast path: the probe delays land in hb_timer and
// are exactly the values the skip banks on.
TEST(HbSweepSkip, QuarantineProbesAndHealsThroughSkip) {
  const int n = 2;
  World world(n, std::make_unique<sim::RandomSchedule>(9));
  registers::NeverAbortPolicy policy;
  auto eps = make_hb_mesh(world, &policy);

  // Reader-side quarantine of link p0 -> p1, as a degraded-medium
  // detector would trip it (fault_threshold sound faults).
  for (int i = 0; i < 4 && !eps[1].in_health[0].quarantined(); ++i) {
    eps[1].in_health[0].observe_corrupt();
  }
  ASSERT_TRUE(eps[1].in_health[0].quarantined());

  std::vector<bool> dest(n, true);
  dest[0] = false;
  world.spawn(0, "sender", [&eps, dest](SimEnv& env) {
    return hb_sender_loop(env, eps[0], dest);
  });
  world.spawn(1, "receiver", [&eps](SimEnv& env) {
    return hb_receiver_loop(env, eps[1]);
  });

  // The sender's fresh stamps are probe successes; the link must heal
  // and the peer must rejoin the active set.
  ASSERT_TRUE(world.run_until(
      [&] {
        return !eps[1].in_health[0].quarantined() && eps[1].active_set[0];
      },
      2000000));
  EXPECT_GE(eps[1].in_health[0].recoveries(), 1u);
}

}  // namespace
}  // namespace tbwf::omega
