// The batch-epoch restatement of the graded guarantees must agree with
// the per-op grading on the SAME runs: a FaultPlan chaos sweep drives
// the batched engine, each run is judged twice -- per-op by
// check_chaos_conformance over the completion log, per-epoch by
// check_batch_conformance over the batch journal -- and the verdicts
// must match. A deliberate helping breach (nobody ever combines) must
// fail BOTH checkers, and the epoch checker's individual bounds are
// unit-tested on hand-built journals.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/batch_log.hpp"
#include "core/conformance.hpp"
#include "core/tbwf_object.hpp"
#include "qa/qa_batched.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::core {
namespace {

using qa::BatchedQaUniversal;
using qa::Counter;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

constexpr int kN = 3;

std::vector<Pid> issuing_under(const sim::FaultPlan& plan, int n) {
  std::vector<Pid> issuing;
  for (Pid p = 0; p < n; ++p) {
    if (!plan.crashed_at_end(p)) issuing.push_back(p);
  }
  return issuing;
}

ConformanceOptions per_op_options() {
  ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 1000000;
  copt.max_completion_gap = 600000;
  copt.min_suffix = 500000;
  return copt;
}

BatchConformanceOptions batch_options_from(const ConformanceReport& report) {
  BatchConformanceOptions bopt;
  bopt.suffix_from = report.suffix_from;
  bopt.run_end = report.run_end;
  bopt.timely = report.suffix_timely;
  bopt.max_inclusion_batches = 64;
  bopt.max_inclusion_steps = 600000;
  bopt.max_commit_gap = 600000;
  bopt.end_grace = 600000;
  return bopt;
}

struct RunResult {
  ConformanceReport per_op;
  BatchConformanceReport per_epoch;
};

// Run the batched engine under a generated crash/stutter plan and judge
// it both ways. With `breach` set, every slow path is disabled
// (combine_attempts = 0 and invoke-only workers that never query):
// announces keep flowing but no batch can ever commit.
RunResult chaos_run(std::uint64_t seed, bool breach) {
  sim::FaultPlan::GenOptions gopt;
  gopt.n = kN;
  gopt.horizon = 400000;
  gopt.quiet_tail = 0.5;
  gopt.max_crash_cycles = 2;
  gopt.max_stutters = 2;
  gopt.max_storms = 0;
  sim::FaultPlan plan = sim::FaultPlan::generate(seed, gopt);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 977 + 13)));
  BatchedQaUniversal<Counter>::Options opt;
  opt.patience = 4;
  if (breach) opt.combine_attempts = 0;
  BatchedQaUniversal<Counter> obj(world, 0, nullptr, opt);
  OpLog log(kN);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "batched-inc", [&, p, breach](SimEnv& env) -> Task {
      for (;;) {
        ++log.started[p];
        if (breach) {
          // Bounded invoke, never query: each retry re-announces, and
          // with the slow path off nothing ever commits.
          auto r = co_await obj.invoke(env, Counter::Op{1});
          if (!r.ok()) continue;
        } else {
          (void)co_await obj.apply(env, Counter::Op{1});
        }
        log.completions[p].push_back(env.now());
      }
    });
  }
  plan.install(world);
  world.run(2000000);

  RunResult out;
  out.per_op = check_chaos_conformance(world.trace(), log, plan,
                                       issuing_under(plan, kN),
                                       per_op_options());
  out.per_epoch =
      check_batch_conformance(obj.batch_log(), batch_options_from(out.per_op));
  return out;
}

class BatchChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchChaosSweep, PerEpochVerdictMatchesPerOp) {
  const RunResult r = chaos_run(GetParam(), /*breach=*/false);
  EXPECT_TRUE(r.per_op.ok) << r.per_op.summary();
  EXPECT_TRUE(r.per_epoch.ok) << r.per_epoch.summary();
  EXPECT_EQ(r.per_op.ok, r.per_epoch.ok)
      << "per-op:\n"
      << r.per_op.summary() << "per-epoch:\n"
      << r.per_epoch.summary();
  // The sweep actually exercised batching in the judged window.
  EXPECT_GT(r.per_epoch.suffix_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Plans, BatchChaosSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// The breach: with the slow path disabled, announces pend forever, no
// batch commits, nothing completes. BOTH graders must fail.
TEST(BatchConformanceBreach, DisabledHelpingFailsBothCheckers) {
  const RunResult r = chaos_run(3, /*breach=*/true);
  EXPECT_FALSE(r.per_op.ok) << r.per_op.summary();
  EXPECT_FALSE(r.per_epoch.ok) << r.per_epoch.summary();
  EXPECT_EQ(r.per_op.ok, r.per_epoch.ok);
  EXPECT_EQ(r.per_epoch.suffix_commits, 0u);
}

// -- hand-built journals: each bound fires individually ------------------------

BatchLog commits_every(Step period, Step from, Step to) {
  BatchLog log;
  std::uint64_t slot = 0;
  for (Step s = from; s < to; s += period) {
    BatchCommitEvent c;
    c.slot = ++slot;
    c.decider = 0;
    c.step = s;
    c.batch_size = 1;
    log.commits.push_back(c);
  }
  return log;
}

BatchConformanceOptions tight_options() {
  BatchConformanceOptions bopt;
  bopt.suffix_from = 1000;
  bopt.run_end = 100000;
  bopt.timely = {0};
  bopt.max_inclusion_batches = 4;
  bopt.max_inclusion_steps = 50000;
  bopt.max_commit_gap = 50000;
  bopt.end_grace = 1000;
  return bopt;
}

TEST(ConformanceEdgeBatch, TimelyAnnounceIncludedLateInEpochsViolates) {
  BatchLog log = commits_every(100, 1000, 100000);
  BatchAnnounceEvent a;
  a.owner = 0;
  a.uid = 42;
  a.announced_at = 2000;
  a.applied_at = 3000;  // 10 epochs later with period 100 > bound 4
  a.applied_slot = 1;
  log.announces.push_back(a);
  const auto report = check_batch_conformance(log, tight_options());
  ASSERT_FALSE(report.ok) << report.summary();
  EXPECT_GE(report.max_inclusion_observed, 4u);
  bool wait_violation = false;
  for (const std::string& v : report.violations) {
    if (v.find("wait-free") != std::string::npos) wait_violation = true;
  }
  EXPECT_TRUE(wait_violation) << report.summary();
}

TEST(ConformanceEdgeBatch, PromptInclusionPasses) {
  BatchLog log = commits_every(100, 1000, 100000);
  BatchAnnounceEvent a;
  a.owner = 0;
  a.uid = 42;
  a.announced_at = 2000;
  a.applied_at = 2150;  // within 2 epochs
  a.applied_slot = 1;
  log.announces.push_back(a);
  const auto report = check_batch_conformance(log, tight_options());
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.judged_announces, 1u);
}

TEST(ConformanceEdgeBatch, StalledBatchStreamViolatesLockFreedom) {
  // One early commit, then silence while an announce pends far longer
  // than max_commit_gap.
  BatchLog log = commits_every(100, 1000, 1200);
  BatchAnnounceEvent a;
  a.owner = 1;  // NOT timely: only the lock-freedom axis judges it
  a.uid = 7;
  a.announced_at = 2000;
  log.announces.push_back(a);
  const auto report = check_batch_conformance(log, tight_options());
  ASSERT_FALSE(report.ok) << report.summary();
  bool lock_violation = false;
  for (const std::string& v : report.violations) {
    if (v.find("lock-free") != std::string::npos) lock_violation = true;
  }
  EXPECT_TRUE(lock_violation) << report.summary();
}

TEST(ConformanceEdgeBatch, VoidedAndYoungAnnouncesAreExcused) {
  BatchLog log = commits_every(100, 1000, 100000);
  BatchAnnounceEvent voided;
  voided.owner = 0;
  voided.uid = 9;
  voided.announced_at = 2000;
  voided.applied_at = 90000;  // way past every bound, but voided
  voided.applied_slot = 880;
  voided.voided = true;
  log.announces.push_back(voided);
  BatchAnnounceEvent young;
  young.owner = 0;
  young.uid = 12;
  young.announced_at = 99500;  // within end_grace of run_end
  log.announces.push_back(young);
  const auto report = check_batch_conformance(log, tight_options());
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.judged_announces, 0u);
}

}  // namespace
}  // namespace tbwf::core
