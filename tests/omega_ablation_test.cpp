// Ablation of Figure 3's self-punishment (lines 7-8). The paper's
// design note: without it, a process r that repeatedly joins and leaves
// the competition -- and happens to hold the smallest (counter, pid) --
// makes leadership oscillate between r and another candidate forever.
// With it, r's counter grows on every re-entry and the oscillation
// dies out.
#include <gtest/gtest.h>

#include <memory>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::World;

/// Leader changes observed at the permanent candidate p1 during the
/// final `window` steps of a `total`-step run, with r = p0 toggling
/// candidacy forever (non-canonically -- the adversarial usage).
std::size_t late_leader_churn(bool self_punishment, Step total,
                              Step window) {
  const int n = 2;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 23));
  OmegaRegisters om(world);
  om.set_self_punishment(self_punishment);
  om.install_all();
  // r = p0 wins every (counter, pid) tie-break; it joins and leaves
  // forever, ignoring the canonical discipline.
  world.spawn(0, "r", [&](SimEnv& env) {
    return repeated_candidate(env, om.io(0), 8000, 8000);
  });
  world.spawn(1, "p", [&](SimEnv& env) {
    return permanent_candidate(env, om.io(1));
  });
  sim::Trajectory<Pid> leader1;
  leader1.sample(0, om.io(1).leader);
  leader1.attach(world, &om.io(1).leader);
  world.run(total);
  return leader1.changes_in(total - window, total);
}

TEST(SelfPunishmentAblation, WithoutItLeadershipOscillatesForever) {
  const auto churn = late_leader_churn(false, 4000000, 1000000);
  // Every rejoin of r steals the leadership back; with detection
  // latency that is roughly one flip per few rejoin cycles, sustained
  // through the final million steps.
  EXPECT_GE(churn, 10u) << "expected sustained oscillation";
}

TEST(SelfPunishmentAblation, WithItLeadershipQuiesces) {
  const auto churn = late_leader_churn(true, 4000000, 1000000);
  EXPECT_EQ(churn, 0u) << "self-punishment should end the oscillation";
}

}  // namespace
}  // namespace tbwf::omega
