// Tests of abort policies and register semantics beyond the basics in
// sim_world_test: policy decision logic, contention statistics, and the
// linearization behaviour of successful operations on abortable registers.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using sim::AbortableReg;
using sim::Pid;
using sim::SimEnv;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

registers::OpContext make_ctx(Pid pid, bool is_write,
                              std::vector<Pid> overlaps) {
  registers::OpContext ctx;
  ctx.pid = pid;
  ctx.is_write = is_write;
  ctx.overlap_pids = std::move(overlaps);
  return ctx;
}

// -- policy unit tests -----------------------------------------------------------

TEST(AbortPolicy, NeverAbortAlwaysSucceeds) {
  registers::NeverAbortPolicy p;
  EXPECT_EQ(p.on_contended_read(make_ctx(0, false, {1})),
            registers::ReadOutcome::Success);
  EXPECT_EQ(p.on_contended_write(make_ctx(0, true, {1})),
            registers::WriteOutcome::Success);
}

TEST(AbortPolicy, AlwaysAbortAborts) {
  registers::AlwaysAbortPolicy p(registers::AlwaysAbortPolicy::Effect::Never);
  EXPECT_EQ(p.on_contended_read(make_ctx(0, false, {1})),
            registers::ReadOutcome::Abort);
  EXPECT_EQ(p.on_contended_write(make_ctx(0, true, {1})),
            registers::WriteOutcome::AbortNoEffect);
}

TEST(AbortPolicy, AlwaysAbortAlternateFlipsEffect) {
  registers::AlwaysAbortPolicy p(
      registers::AlwaysAbortPolicy::Effect::Alternate);
  const auto a = p.on_contended_write(make_ctx(0, true, {1}));
  const auto b = p.on_contended_write(make_ctx(0, true, {1}));
  EXPECT_NE(a, b);
  EXPECT_TRUE(a == registers::WriteOutcome::AbortWithEffect ||
              b == registers::WriteOutcome::AbortWithEffect);
}

TEST(AbortPolicy, ProbabilisticRatesRoughlyCalibrated) {
  registers::ProbabilisticAbortPolicy p(/*seed=*/3, /*p_abort_read=*/0.25,
                                        /*p_abort_write=*/0.75,
                                        /*p_effect=*/0.5);
  int read_aborts = 0, write_aborts = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (p.on_contended_read(make_ctx(0, false, {1})) ==
        registers::ReadOutcome::Abort) {
      ++read_aborts;
    }
    if (p.on_contended_write(make_ctx(0, true, {1})) !=
        registers::WriteOutcome::Success) {
      ++write_aborts;
    }
  }
  EXPECT_NEAR(read_aborts / static_cast<double>(trials), 0.25, 0.02);
  EXPECT_NEAR(write_aborts / static_cast<double>(trials), 0.75, 0.02);
}

TEST(AbortPolicy, TargetedHitsOnlyVictims) {
  registers::TargetedAbortPolicy p({2, 4});
  EXPECT_EQ(p.on_contended_read(make_ctx(2, false, {0})),
            registers::ReadOutcome::Abort);
  EXPECT_EQ(p.on_contended_read(make_ctx(3, false, {0})),
            registers::ReadOutcome::Success);
  EXPECT_EQ(p.on_contended_write(make_ctx(4, true, {0})),
            registers::WriteOutcome::AbortNoEffect);
  EXPECT_EQ(p.on_contended_write(make_ctx(0, true, {2})),
            registers::WriteOutcome::Success);
}

// -- linearization of successful abortable ops ---------------------------------------

Task writer_loop(SimEnv& env, AbortableReg<I64> reg, int count,
                 std::vector<bool>& results) {
  for (int i = 1; i <= count; ++i) {
    const bool ok = co_await env.write(reg, i);
    results.push_back(ok);
  }
}

Task reader_loop(SimEnv& env, AbortableReg<I64> reg, int count,
                 std::vector<std::optional<I64>>& seen) {
  for (int i = 0; i < count; ++i) {
    seen.push_back(co_await env.read(reg));
  }
}

TEST(AbortableRegister, SuccessfulReadsAreMonotone) {
  // A single writer writes 1..N in order; successful reads must observe a
  // non-decreasing sequence (each effect replaces the value).
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::RandomSchedule>(21));
  registers::ProbabilisticAbortPolicy policy(5, 0.5, 0.5, 0.5);
  auto reg = w->make_abortable<I64>("ar", 0, &policy, /*writer=*/0,
                                    /*reader=*/1);
  std::vector<bool> writes;
  std::vector<std::optional<I64>> reads;
  w->spawn(0, "w", [&](SimEnv& env) {
    return writer_loop(env, reg, 200, writes);
  });
  w->spawn(1, "r", [&](SimEnv& env) {
    return reader_loop(env, reg, 200, reads);
  });
  w->run(100000);
  I64 prev = 0;
  int successful = 0;
  for (const auto& r : reads) {
    if (!r.has_value()) continue;
    EXPECT_GE(*r, prev);
    prev = *r;
    ++successful;
  }
  EXPECT_GT(successful, 0);
}

TEST(AbortableRegister, StatsCountAborts) {
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::ScriptedSchedule>(
             std::vector<Pid>{0, 1, 0, 1}, /*loop=*/true));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto reg = w->make_abortable<I64>("ar", 0, &policy);
  std::vector<bool> writes;
  std::vector<std::optional<I64>> reads;
  w->spawn(0, "w", [&](SimEnv& env) {
    return writer_loop(env, reg, 10, writes);
  });
  w->spawn(1, "r", [&](SimEnv& env) {
    return reader_loop(env, reg, 10, reads);
  });
  w->run(40);
  const auto& info = w->cell_info(reg.idx);
  EXPECT_GT(info.n_write_aborts, 0u);
  EXPECT_GT(info.n_read_aborts, 0u);
  EXPECT_EQ(info.n_reads, info.n_read_aborts);  // all contended => all abort
}

// The adaptive pattern from Section 6: a reader that backs off on abort
// eventually reads solo and succeeds, even under AlwaysAbortPolicy.
Task backoff_reader(SimEnv& env, AbortableReg<I64> reg, bool& got_value,
                    I64& value) {
  std::uint64_t timeout = 1;
  for (;;) {
    for (std::uint64_t i = 0; i < timeout; ++i) co_await env.yield();
    const auto r = co_await env.read(reg);
    if (r.has_value()) {
      got_value = true;
      value = *r;
      co_return;
    }
    ++timeout;  // back off: read less often
  }
}

Task persistent_writer(SimEnv& env, AbortableReg<I64> reg, I64 v) {
  // Keep writing until one write succeeds (the Figure 4 discipline).
  for (;;) {
    const bool ok = co_await env.write(reg, v);
    if (ok) co_return;
  }
}

TEST(AbortableRegister, BackoffBeatsAlwaysAbortAdversary) {
  auto w = std::make_unique<World>(
      2, std::make_unique<sim::RoundRobinSchedule>());
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto reg = w->make_abortable<I64>("ar", 0, &policy, 0, 1);
  bool got = false;
  I64 value = 0;
  w->spawn(0, "w", [&](SimEnv& env) {
    return persistent_writer(env, reg, 99);
  });
  w->spawn(1, "r", [&](SimEnv& env) {
    return backoff_reader(env, reg, got, value);
  });
  w->run(100000);
  EXPECT_TRUE(got);
  EXPECT_EQ(value, 99);
}

TEST(BoundedBackoff, DoublesFromBaseAndSaturatesAtCap) {
  registers::BoundedBackoff backoff{{.base = 2, .cap = 16, .free_retries = 1}};
  EXPECT_EQ(backoff.delay(0), 0u);  // free retry
  EXPECT_EQ(backoff.delay(1), 2u);
  EXPECT_EQ(backoff.delay(2), 4u);
  EXPECT_EQ(backoff.delay(3), 8u);
  EXPECT_EQ(backoff.delay(4), 16u);
  EXPECT_EQ(backoff.delay(5), 16u);    // capped
  EXPECT_EQ(backoff.delay(200), 16u);  // no overflow at silly attempts
}

TEST(BoundedBackoff, JitterStaysInHalfOpenBand) {
  registers::BoundedBackoff backoff{{.base = 4, .cap = 1024, .free_retries = 0}};
  util::Rng rng(7);
  for (int attempt = 1; attempt < 12; ++attempt) {
    const std::uint64_t full = backoff.delay(attempt);
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t j = backoff.jittered_delay(attempt, rng);
      EXPECT_GE(j, full / 2);
      EXPECT_LE(j, full);
    }
  }
}

}  // namespace
}  // namespace tbwf
