// Real-thread tests of the batched announce/combine/help engine:
// exactness under contention, tombstone fate sealing, the helping bound
// for a thread that never combines, and a soak asserting the
// hazard-pointer reclamation keeps memory bounded (no allocator hole).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "qa/sequential_type.hpp"
#include "rt/rt_qa_batched.hpp"

namespace tbwf::rt {
namespace {

using I64 = std::int64_t;
using Obj = RtQaBatched<qa::Counter>;

TEST(RtQaBatched, SoloApplyCountsExactlyInOrder) {
  Obj obj(1, 0);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(obj.apply(0, qa::Counter::Op{1}), i);
  }
  EXPECT_EQ(obj.state_snapshot().state.inner, 500);
  EXPECT_EQ(obj.ops_started(0), 500u);
}

TEST(RtQaBatched, ContendedApplyIsExactlyOnce) {
  constexpr int kThreads = 4;
  constexpr int kOps = 1000;
  Obj obj(kThreads, 0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        (void)obj.apply(static_cast<Obj::Tid>(t), qa::Counter::Op{1});
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(obj.state_snapshot().state.inner, kThreads * kOps);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(obj.ops_started(static_cast<Obj::Tid>(t)),
              static_cast<std::uint64_t>(kOps));
    EXPECT_LE(obj.ring_high_water(static_cast<Obj::Tid>(t)),
              obj.ring_capacity());
  }
  EXPECT_LE(obj.live_nodes(), obj.live_node_bound());
  EXPECT_GE(obj.live_nodes(), 1);
}

TEST(RtQaBatched, InvokeQueryFatesAccountExactly) {
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  Obj obj(kThreads, 0);
  std::vector<I64> applied(kThreads, 0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const auto tid = static_cast<Obj::Tid>(t);
      for (int i = 0; i < kOps; ++i) {
        auto r = obj.invoke(tid, qa::Counter::Op{1});
        while (r.bottom()) {
          r = obj.query(tid);
          if (r.bottom()) std::this_thread::yield();
        }
        if (r.ok()) ++applied[static_cast<std::size_t>(t)];
      }
    });
  }
  for (auto& th : pool) th.join();
  I64 total = 0;
  for (int t = 0; t < kThreads; ++t) total += applied[static_cast<std::size_t>(t)];
  // Every resolved Ok was applied exactly once; every F was not applied.
  EXPECT_EQ(obj.state_snapshot().state.inner, total);
}

TEST(RtQaBatched, QueryTombstoneSealsOpenFate) {
  Obj::Options opt;
  opt.patience = 0;
  opt.combine_attempts = 0;  // invoke() gives up at once: fate stays open
  Obj obj(1, 0, opt);
  auto r = obj.invoke(0, qa::Counter::Op{7});
  ASSERT_TRUE(r.bottom());
  auto q = obj.query(0);
  EXPECT_TRUE(q.not_applied());  // tombstone voided the op; F is final
  EXPECT_EQ(obj.state_snapshot().state.inner, 0);
  // A fresh op from the same thread still goes through afterwards.
  EXPECT_EQ(obj.apply(0, qa::Counter::Op{1}), 0);
  EXPECT_EQ(obj.state_snapshot().state.inner, 1);
}

// Helping bound: a thread with unbounded patience NEVER runs the slow
// path, yet completes every op because combiners drain its announce.
TEST(RtQaBatched, HelpingCarriesPatientThread) {
  constexpr int kThreads = 3;
  constexpr int kOps = 200;
  Obj::Options opt;
  opt.patience = 16;
  Obj obj(kThreads, 0, opt);
  obj.set_patience(0, INT_MAX);
  std::atomic<bool> patient_done{false};
  std::vector<std::thread> pool;
  pool.emplace_back([&] {
    for (int i = 0; i < kOps; ++i) {
      (void)obj.apply(0, qa::Counter::Op{1});
    }
    patient_done.store(true, std::memory_order_release);
  });
  for (int t = 1; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      while (!patient_done.load(std::memory_order_acquire)) {
        (void)obj.apply(static_cast<Obj::Tid>(t), qa::Counter::Op{0});
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(obj.combines(0), 0u);
  EXPECT_EQ(obj.fast_completions(0), static_cast<std::uint64_t>(kOps));
  // Only thread 0 adds non-zero deltas.
  EXPECT_EQ(obj.state_snapshot().state.inner, kOps);
}

// Soak: saturating applies for TBWF_BATCHED_SOAK_MS (default 2 s; CI
// runs 60 s) must keep reclamation bounded -- the retire-ring
// high-water stays within capacity and live frontier nodes never exceed
// the analytic bound. This is the no-unbounded-garbage criterion.
TEST(RtQaBatchedSoak, ReclamationStaysBounded) {
  int soak_ms = 2000;
  if (const char* env = std::getenv("TBWF_BATCHED_SOAK_MS")) {
    soak_ms = std::max(1, std::atoi(env));
  }
  constexpr int kThreads = 4;
  Obj obj(kThreads, 0);
  std::atomic<bool> stop{false};
  std::vector<I64> ops(kThreads, 0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const auto tid = static_cast<Obj::Tid>(t);
      while (!stop.load(std::memory_order_acquire)) {
        (void)obj.apply(tid, qa::Counter::Op{1});
        ++ops[static_cast<std::size_t>(t)];
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(soak_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  I64 total = 0;
  for (int t = 0; t < kThreads; ++t) {
    total += ops[static_cast<std::size_t>(t)];
    EXPECT_LE(obj.ring_high_water(static_cast<Obj::Tid>(t)),
              obj.ring_capacity())
        << "thread " << t;
  }
  EXPECT_EQ(obj.state_snapshot().state.inner, total);
  EXPECT_LE(obj.live_nodes(), obj.live_node_bound());
  EXPECT_GE(obj.live_nodes(), 1);
  EXPECT_GT(total, 0);
}

}  // namespace
}  // namespace tbwf::rt
