// Chaos sweeps: seeded fault plans (crashes, restarts, stutter phases,
// abort storms) run against the three object stacks, with the TBWF
// conformance checker asserting the paper's graded guarantees over the
// stable suffix of every run. Any violation message carries the plan
// seed, so a red case replays deterministically.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/conformance.hpp"
#include "core/tbwf.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "qa/qa_universal.hpp"
#include "registers/abort_policy.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

constexpr int kN = 3;

template <class Obj>
Task forever_inc(SimEnv& env, Obj& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

std::vector<Pid> issuing_under(const FaultPlan& plan, int n) {
  // Processes the plan leaves permanently crashed stop issuing; everyone
  // else (including restarted processes) keeps going.
  std::vector<Pid> issuing;
  for (Pid p = 0; p < n; ++p) {
    if (!plan.crashed_at_end(p)) issuing.push_back(p);
  }
  return issuing;
}

// ---------------------------------------------------------------------------
// Sweep 1: full TBWF stack on Omega-Delta from atomic registers.
// ---------------------------------------------------------------------------

class ChaosOmegaRegistersSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosOmegaRegistersSweep, GradedGuaranteesHold) {
  const std::uint64_t seed = GetParam();
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 400000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 2;
  opt.max_stutters = 2;
  opt.max_storms = 0;  // atomic registers: no abort adversary to arm
  const FaultPlan plan = FaultPlan::generate(seed, opt);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 977 + 13)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  plan.install(world);
  world.run(2000000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 1000000;
  copt.max_completion_gap = 600000;
  copt.min_suffix = 500000;
  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, issuing_under(plan, kN),
      copt, &world.counters());
  EXPECT_TRUE(report.ok) << report.summary() << plan.summary();
  EXPECT_EQ(world.counters().get("chaos.conformance.ok"),
            report.ok ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosOmegaRegistersSweep,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---------------------------------------------------------------------------
// Sweep 2: full TBWF stack on Omega-Delta from abortable registers
// (Theorem 15 configuration) under abort storms as well.
// ---------------------------------------------------------------------------

class ChaosOmegaAbortableSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosOmegaAbortableSweep, GradedGuaranteesHold) {
  const std::uint64_t seed = GetParam();
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 400000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 2;
  opt.max_stutters = 1;
  opt.max_storms = 2;
  const FaultPlan plan = FaultPlan::generate(seed, opt);

  registers::PhasedAbortPolicy qa_policy(seed * 3 + 1);
  registers::PhasedAbortPolicy omega_policy(seed * 5 + 2);
  plan.arm(qa_policy);
  plan.arm(omega_policy);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 991 + 7)));
  core::TbwfSystem<Counter, qa::AbortableBase> sys(
      world, 0, core::OmegaBackend::AbortableRegisters, &qa_policy,
      &omega_policy);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  plan.install(world);
  world.run(2500000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 1200000;
  copt.max_completion_gap = 800000;
  copt.min_suffix = 600000;
  const auto report = core::check_chaos_conformance(
      world.trace(), sys.object().log(), plan, issuing_under(plan, kN),
      copt, &world.counters());
  EXPECT_TRUE(report.ok) << report.summary() << plan.summary();
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosOmegaAbortableSweep,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// Sweep 3: bare QA universal object over abortable base registers, with
// a query/retry workload (no leader election in the loop).
// ---------------------------------------------------------------------------

Task qa_chaos_worker(SimEnv& env,
                     qa::QaUniversal<Counter, qa::AbortableBase>& obj,
                     core::OpLog& log) {
  const Pid p = env.pid();
  for (;;) {
    ++log.started[p];
    auto r = co_await obj.invoke(env, Counter::Op{1});
    while (r.bottom()) {
      r = co_await obj.query(env);
      if (r.bottom()) co_await env.yield();
    }
    // ok or not_applied: either way the operation's fate is resolved and
    // the worker moves on -- that resolution is the completion event.
    log.completions[p].push_back(env.now());
  }
}

class ChaosQaUniversalSweep
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosQaUniversalSweep, GradedGuaranteesHold) {
  const std::uint64_t seed = GetParam();
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 200000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 2;
  opt.max_stutters = 1;
  opt.max_storms = 2;
  const FaultPlan plan = FaultPlan::generate(seed, opt);

  registers::PhasedAbortPolicy policy(seed * 7 + 3);
  plan.arm(policy);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 983 + 5)));
  qa::QaUniversal<Counter, qa::AbortableBase> obj(world, 0, &policy);
  core::OpLog log(kN);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return qa_chaos_worker(env, obj, log);
    });
  }
  plan.install(world);
  world.run(600000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 150000;
  copt.max_completion_gap = 150000;
  copt.min_suffix = 200000;
  const auto report = core::check_chaos_conformance(
      world.trace(), log, plan, issuing_under(plan, kN), copt,
      &world.counters());
  EXPECT_TRUE(report.ok) << report.summary() << plan.summary();
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosQaUniversalSweep,
                         ::testing::Range<std::uint64_t>(1, 33));

// ---------------------------------------------------------------------------
// Recovery acceptance: a crashed candidate that restarts (and is then
// timely) becomes the stable Omega-Delta leader again.
// ---------------------------------------------------------------------------

TEST(ChaosRecovery, RestartedCandidateBecomesStableLeader) {
  World world(3, std::make_unique<sim::RoundRobinSchedule>());
  omega::OmegaRegisters om(world);
  om.install_all();
  // Only p0 is ever a candidate; p1/p2 run Omega-Delta but stay out.
  world.spawn(0, "cand", [&om](SimEnv& env) {
    return omega::permanent_candidate(env, om.io(env.pid()));
  });
  ASSERT_TRUE(world.run_until([&] { return om.io(0).leader == 0; },
                              2000000));

  const Step crash_at = world.now() + 1;
  world.schedule_crash(0, crash_at);
  world.run(50000);
  ASSERT_TRUE(world.crashed(0));

  world.restart(0);
  ASSERT_FALSE(world.crashed(0));
  // The rebooted candidate task re-raises CANDIDATE and, being timely
  // from here on, p0 must win leadership back...
  ASSERT_TRUE(world.run_until([&] { return om.io(0).leader == 0; },
                              4000000))
      << "restarted candidate never regained leadership";
  // ...stably: it is the only candidate, so once re-elected nothing can
  // displace it.
  const Step regained = world.now();
  world.run(200000);
  EXPECT_EQ(om.io(0).leader, 0);
  EXPECT_LE(world.trace().max_gap_in(0, regained, world.now()), 3u);
  EXPECT_EQ(world.trace().crash_count(0), 1u);
  EXPECT_EQ(world.trace().restart_count(0), 1u);
}

}  // namespace
}  // namespace tbwf
