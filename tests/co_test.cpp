// Tests of the nested sub-procedure coroutine type Co<T>: value
// delivery, exception propagation through nested frames, interaction
// with register-operation suspension, and RAII teardown.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

using I64 = std::int64_t;

std::unique_ptr<World> make_world(int n = 1) {
  return std::make_unique<World>(n, std::make_unique<RoundRobinSchedule>());
}

// -- value propagation ------------------------------------------------------

Co<I64> leaf_value(SimEnv& env, I64 v) {
  co_await env.yield();
  co_return v;
}

Co<I64> mid_sum(SimEnv& env) {
  const I64 a = co_await leaf_value(env, 10);
  const I64 b = co_await leaf_value(env, 32);
  co_return a + b;
}

Task value_driver(SimEnv& env, I64& out) {
  out = co_await mid_sum(env);
}

TEST(Co, ValuesPropagateThroughTwoLevels) {
  auto w = make_world();
  I64 out = 0;
  w->spawn(0, "t", [&](SimEnv& env) { return value_driver(env, out); });
  w->run(100);
  EXPECT_EQ(out, 42);
}

// -- move-only results --------------------------------------------------------

Co<std::unique_ptr<I64>> make_boxed(SimEnv& env, I64 v) {
  co_await env.yield();
  co_return std::make_unique<I64>(v);
}

Task boxed_driver(SimEnv& env, I64& out) {
  auto boxed = co_await make_boxed(env, 7);
  out = *boxed;
}

TEST(Co, MoveOnlyResultsWork) {
  auto w = make_world();
  I64 out = 0;
  w->spawn(0, "t", [&](SimEnv& env) { return boxed_driver(env, out); });
  w->run(100);
  EXPECT_EQ(out, 7);
}

// -- exceptions ----------------------------------------------------------------

Co<void> thrower(SimEnv& env, int depth) {
  co_await env.yield();
  if (depth == 0) throw std::runtime_error("boom");
  co_await thrower(env, depth - 1);
}

Task catching_driver(SimEnv& env, bool& caught) {
  try {
    co_await thrower(env, 3);
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
}

TEST(Co, ExceptionsUnwindNestedFramesToTheCaller) {
  auto w = make_world();
  bool caught = false;
  w->spawn(0, "t", [&](SimEnv& env) { return catching_driver(env, caught); });
  w->run(100);
  EXPECT_TRUE(caught);
}

Task uncaught_driver(SimEnv& env) {
  co_await thrower(env, 1);
}

TEST(Co, UncaughtExceptionSurfacesFromRun) {
  auto w = make_world();
  w->spawn(0, "t", [&](SimEnv& env) { return uncaught_driver(env); });
  EXPECT_THROW(w->run(100), std::runtime_error);
}

// -- suspension across nesting ----------------------------------------------------

Co<I64> slow_leaf(SimEnv& env, AtomicReg<I64> reg) {
  // Two register ops: the whole stack suspends twice per op.
  const I64 a = co_await env.read(reg);
  co_await env.write(reg, a + 1);
  co_return a;
}

Task interleave_driver(SimEnv& env, AtomicReg<I64> reg, int times) {
  for (int i = 0; i < times; ++i) {
    (void)co_await slow_leaf(env, reg);
  }
}

TEST(Co, NestedSuspensionInterleavesAcrossProcesses) {
  auto w = make_world(2);
  auto reg = w->make_atomic<I64>("r", 0);
  w->spawn(0, "a", [&](SimEnv& env) {
    return interleave_driver(env, reg, 20);
  });
  w->spawn(1, "b", [&](SimEnv& env) {
    return interleave_driver(env, reg, 20);
  });
  w->run(10000);
  // Round-robin lockstep makes every read see the other's write: no
  // lost updates in this exact interleaving (read@t, write@t+2
  // alternate perfectly).
  EXPECT_GT(w->peek(reg), 0);
  EXPECT_LE(w->peek(reg), 40);
}

// -- teardown with live nested frames ----------------------------------------------

Co<void> sleeper(SimEnv& env) {
  for (;;) co_await env.yield();
}

Co<void> nested_sleeper(SimEnv& env) {
  co_await sleeper(env);
}

Task sleeper_driver(SimEnv& env) {
  co_await nested_sleeper(env);
}

TEST(Co, WorldTeardownDestroysSuspendedNestedStacks) {
  // Destroying the world with coroutines suspended three frames deep
  // must release every frame (ASAN-clean).
  auto w = make_world();
  w->spawn(0, "t", [&](SimEnv& env) { return sleeper_driver(env); });
  w->run(50);
  w.reset();
  SUCCEED();
}

Task spin_task(SimEnv& env, int& counter) {
  for (;;) {
    ++counter;
    co_await env.yield();
  }
}

TEST(Co, CrashDestroysSuspendedNestedStacks) {
  auto w = make_world(2);
  int other = 0;
  w->spawn(0, "t", [&](SimEnv& env) { return sleeper_driver(env); });
  w->spawn(1, "b", [&other](SimEnv& env) { return spin_task(env, other); });
  w->run(50);
  w->crash(0);  // destroys the three-deep suspended stack
  w->run(50);
  EXPECT_GT(other, 50);
}

}  // namespace
}  // namespace tbwf::sim
