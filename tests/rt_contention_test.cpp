// TSan-targeted contention tests for the rt primitives: real threads
// hammering RtAbortableReg, the storm injector, and the heartbeat slot.
// The point is the memory-model surface (run these under the tsan CI
// job), plus the abortable-register contract under genuine concurrency:
// aborted writes never take effect, solo operations never abort.
//
// Single-core note: this box has one CPU, so the loops yield liberally
// and every bound is generous -- the assertions are contract checks,
// not timing checks.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/rt_registers.hpp"

namespace tbwf::rt {
namespace {

TEST(RtAbortableRegContentionTest, AbortedWritesNeverTakeEffect) {
  // Each thread writes values tagged with its own id and a strictly
  // growing sequence, announcing each attempt before the write and
  // recording each success after it. Readers must only ever observe
  // announced values, and the final register value (after all threads
  // joined) must be one its writer saw succeed -- if an aborted write
  // leaked its value, the last effective write could be one whose
  // writer saw `false`.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  RtAbortableReg<std::uint64_t> reg(0);
  std::vector<std::atomic<std::uint64_t>> attempted(kThreads);
  std::vector<std::atomic<std::uint64_t>> committed(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    attempted[i].store(0);
    committed[i].store(0);
  }
  std::atomic<bool> bad_read{false};

  auto worker = [&](std::uint64_t id) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::uint64_t v = (id << 32) | static_cast<std::uint64_t>(i + 1);
      attempted[id].store(v, std::memory_order_release);
      if (reg.write(v)) committed[id].store(v, std::memory_order_release);
      const auto r = reg.read();
      if (r.has_value() && *r != 0) {
        const std::uint64_t writer = *r >> 32;
        // Values from nowhere (wrong tag) or from the future (beyond
        // what the writer has announced) are both corruption.
        if (writer >= kThreads ||
            *r > attempted[writer].load(std::memory_order_acquire)) {
          bad_read.store(true);
          return;
        }
      }
      if ((i & 63) == 0) std::this_thread::yield();
    }
  };

  std::vector<std::thread> threads;
  for (std::uint64_t id = 0; id < kThreads; ++id) {
    threads.emplace_back(worker, id);
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(bad_read.load());

  // The globally last effective write is its writer's latest success;
  // a leaked aborted write here would exceed the writer's committed
  // record.
  const auto final_value = reg.read();
  ASSERT_TRUE(final_value.has_value());
  if (*final_value != 0) {
    const std::uint64_t writer = *final_value >> 32;
    ASSERT_LT(writer, static_cast<std::uint64_t>(kThreads));
    EXPECT_EQ(*final_value, committed[writer].load());
  }
}

TEST(RtAbortableRegContentionTest, SoloOperationsNeverAbortAfterQuiesce) {
  // Phase 1: real contention (some ops abort, that is fine). Phase 2:
  // all contenders joined; the surviving solo thread's operations must
  // never abort -- the property every Section 6 back-off mechanism
  // rests on.
  RtAbortableReg<std::int64_t> reg(0);
  std::atomic<bool> stop{false};
  std::vector<std::thread> noise;
  for (int i = 0; i < 3; ++i) {
    noise.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        (void)reg.read();
        (void)reg.write(1);
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    (void)reg.read();
    if ((i & 15) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : noise) t.join();

  // Quiesced: every solo op must succeed.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(reg.write(i)) << "solo write aborted at op " << i;
    const auto r = reg.read();
    ASSERT_TRUE(r.has_value()) << "solo read aborted at op " << i;
    EXPECT_EQ(*r, i);
  }
}

TEST(RtAbortableRegContentionTest, SoloNeverAbortsWithIdleInjectorAttached) {
  // An attached injector whose windows are all closed must not perturb
  // the solo guarantee.
  RtAbortInjector injector;
  injector.arm(/*seed=*/42, /*origin_ns=*/0,
               {{.from_ns = 0, .to_ns = 1, .rate_millionths = 1000000}});
  RtAbortableReg<std::int64_t> reg(0);
  reg.set_injector(&injector);  // window [0ns, 1ns) is long gone
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reg.write(i));
    ASSERT_TRUE(reg.read().has_value());
  }
  EXPECT_EQ(injector.injected(), 0u);
}

TEST(RtStormInjectorTest, FullRateWindowAbortsEverythingInsideIt) {
  // An always-open window at rate 1.0: every op aborts while it is
  // open, and the injector counts each one.
  RtAbortInjector injector;
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  injector.arm(/*seed=*/7, /*origin_ns=*/now_ns,
               {{.from_ns = 0, .to_ns = ~0ULL, .rate_millionths = 1000000}});
  RtAbortableReg<std::int64_t> reg(0);
  reg.set_injector(&injector);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(reg.write(i));
    EXPECT_FALSE(reg.read().has_value());
  }
  EXPECT_EQ(injector.injected(), 1000u);
  // Storm aborts have no effect: the register kept its initial value.
  reg.set_injector(nullptr);
  const auto r = reg.read();
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0);
}

TEST(RtStormInjectorTest, ConcurrentFiresAreRaceFreeAndCounted) {
  // Several threads drawing from the injector at once: the draw counter
  // and injected tally are atomics; TSan checks the rest.
  RtAbortInjector injector;
  injector.arm(/*seed=*/11, /*origin_ns=*/0,
               {{.from_ns = 0, .to_ns = ~0ULL, .rate_millionths = 500000}});
  constexpr int kThreads = 4;
  constexpr int kDraws = 5000;
  std::vector<std::atomic<std::uint64_t>> hits(kThreads);
  for (auto& h : hits) h.store(0);
  std::vector<std::thread> threads;
  for (int id = 0; id < kThreads; ++id) {
    threads.emplace_back([&, id] {
      std::uint64_t mine = 0;
      for (int i = 0; i < kDraws; ++i) {
        if (injector.fire()) ++mine;
        if ((i & 255) == 0) std::this_thread::yield();
      }
      hits[id].store(mine);
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(injector.injected(), total);
  // Rate 0.5 over 20k draws: expect roughly half, with a wide berth.
  EXPECT_GT(total, static_cast<std::uint64_t>(kThreads * kDraws / 4));
  EXPECT_LT(total, static_cast<std::uint64_t>(kThreads * kDraws * 3 / 4));
}

TEST(RtHeartbeatContentionTest, ReadersSeeMonotoneBeats) {
  RtHeartbeat hb;
  constexpr std::uint64_t kBeats = 20000;
  std::atomic<bool> regression{false};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (last < kBeats) {
        const std::uint64_t v = hb.value();
        if (v < last) {
          regression.store(true);
          return;
        }
        last = v;
        std::this_thread::yield();
      }
    });
  }
  for (std::uint64_t i = 0; i < kBeats; ++i) {
    hb.beat();
    if ((i & 1023) == 0) std::this_thread::yield();
  }
  for (auto& t : readers) t.join();
  EXPECT_FALSE(regression.load());
  EXPECT_EQ(hb.value(), kBeats);
}

}  // namespace
}  // namespace tbwf::rt
