// Soak-harness integration tests: a clean churned run passes BOTH
// grading axes, the injected breach plans fail exactly the SLO axis
// while progress conformance stays satisfied (the two axes are
// independent), and advice-mode routing measurably cuts route cost on
// both backends.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "soak/soak.hpp"

namespace tbwf::soak {
namespace {

bool mentions(const SloReport& r, const std::string& what) {
  for (const auto& v : r.violations) {
    if (v.find(what) != std::string::npos) return true;
  }
  return false;
}

// -- sim ------------------------------------------------------------------------

TEST(SoakServiceTest, CleanChurnedRunPassesJointVerdict) {
  const SimSoakResult result = run_sim_soak(SimSoakOptions::quick(1));
  EXPECT_TRUE(result.progress.ok) << result.progress.summary();
  EXPECT_TRUE(result.slo.ok) << result.slo.summary();
  EXPECT_TRUE(result.slo.conclusive);
  EXPECT_TRUE(result.joint.ok()) << result.joint.summary();
  // The quick profile still pushes real volume through the router.
  EXPECT_GT(result.stats.submitted, 100000u);
  EXPECT_GT(result.stats.completed, 0u);
}

TEST(SoakServiceTest, BlackoutChurnBreachesSloNotProgress) {
  SimSoakOptions options = SimSoakOptions::quick(5);
  // Three crash-everyone blackouts, each a guaranteed 100k-step
  // no-leader window, all inside the first half of the 1.2M-step run:
  // the stable tail still earns its progress grade while the
  // cumulative-unavailability budget (tightened to 10%) blows.
  const sim::FaultPlan plan =
      blackout_churn_plan(5, options.n, /*blackouts=*/3,
                          /*first_at=*/100000, /*spacing=*/150000,
                          /*outage=*/100000);
  options.plan_override = &plan;
  options.budget.max_unavailable_fraction = 0.10;
  const SimSoakResult result = run_sim_soak(options);

  EXPECT_TRUE(result.progress.ok) << result.progress.summary();
  EXPECT_FALSE(result.slo.ok) << result.slo.summary();
  EXPECT_TRUE(result.slo.conclusive);
  EXPECT_TRUE(mentions(result.slo, "unavailability"))
      << result.slo.summary();
  EXPECT_FALSE(result.joint.ok());
  // The blackouts really were observed as no-leader windows (~16% of
  // the run for this seed; deterministic, so the floor is safe).
  EXPECT_GE(result.availability.windows().size(), 3u);
  EXPECT_GT(result.availability.total_unavailable(), 150000u);
}

TEST(SoakServiceTest, AdviceModeCutsRouteCost) {
  SimSoakOptions probe = SimSoakOptions::quick(3);
  probe.service.route = RouteMode::kProbe;
  SimSoakOptions advice = SimSoakOptions::quick(3);
  advice.service.route = RouteMode::kAdvice;
  const SimSoakResult probed = run_sim_soak(probe);
  const SimSoakResult advised = run_sim_soak(advice);

  ASSERT_GT(probed.stats.submitted, 0u);
  ASSERT_GT(advised.stats.submitted, 0u);
  const double probe_cost =
      static_cast<double>(probed.stats.route_probes) /
      static_cast<double>(probed.stats.submitted);
  const double advice_cost =
      static_cast<double>(advised.stats.route_probes) /
      static_cast<double>(advised.stats.submitted);
  EXPECT_LT(advice_cost, probe_cost);
  EXPECT_LE(advised.stats.route.p99(), probed.stats.route.p99());
  // Advice mode trades verification for trust, not correctness: it
  // still completes its requests and passes the joint verdict.
  EXPECT_TRUE(advised.joint.ok()) << advised.joint.summary();
}

TEST(SoakServiceTest, AtomicBackendAlsoPasses) {
  const SimSoakResult result =
      run_sim_soak(SimSoakOptions::quick(11, SimBackend::kAtomic));
  EXPECT_TRUE(result.joint.ok()) << result.joint.summary();
  EXPECT_GT(result.stats.submitted, 100000u);
}

// -- rt -------------------------------------------------------------------------

TEST(RtSoakServiceTest, CleanChurnedRunPassesProgressAndGradesSlo) {
  const RtSoakResult result = run_rt_soak(RtSoakOptions::quick(3));
  EXPECT_TRUE(result.progress.ok) << result.progress.summary();
  EXPECT_TRUE(result.slo.conclusive);
  EXPECT_GT(result.stats.submitted, 0u);
  // Wall-clock availability budgets are graded but not asserted here:
  // on a contended CI core a parallel test run can deschedule the
  // workers past any outage budget (the bench marks rt SLO rows
  // informational for the same reason). The breach axis the jam test
  // flips -- a frozen commit stream -- must never appear in a clean run.
  EXPECT_FALSE(mentions(result.slo, "commit stall"))
      << result.slo.summary();
  // The joint verdict must agree with its two inputs.
  EXPECT_EQ(result.joint.ok(), result.progress.ok && result.slo.ok);
}

TEST(RtSoakServiceTest, JammedMediumBreachesSloWhileProgressExcuses) {
  RtSoakOptions options = RtSoakOptions::quick(7);
  // Permanently jam the shared state cell 10ms into the ~32ms run:
  // commits freeze, so the final commit stall (~22ms) blows the
  // 16ms budget -- while the progress checker correctly excuses the
  // jammed medium instead of demanding completions it cannot earn.
  const rt::RtFaultPlan plan = jammed_medium_plan(7, 10000000);
  options.plan_override = &plan;
  const RtSoakResult result = run_rt_soak(options);

  EXPECT_TRUE(result.progress.ok) << result.progress.summary();
  EXPECT_TRUE(result.progress.medium_jammed);
  EXPECT_FALSE(result.slo.ok) << result.slo.summary();
  EXPECT_TRUE(mentions(result.slo, "commit stall"))
      << result.slo.summary();
  EXPECT_FALSE(result.joint.ok());
}

TEST(RtSoakServiceTest, AdviceModeCutsRouteCost) {
  RtSoakOptions probe = RtSoakOptions::quick(3);
  probe.service.route = RouteMode::kProbe;
  RtSoakOptions advice = RtSoakOptions::quick(3);
  advice.service.route = RouteMode::kAdvice;
  const RtSoakResult probed = run_rt_soak(probe);
  const RtSoakResult advised = run_rt_soak(advice);

  ASSERT_GT(probed.stats.submitted, 0u);
  ASSERT_GT(advised.stats.submitted, 0u);
  const double probe_cost =
      static_cast<double>(probed.stats.route_probes) /
      static_cast<double>(probed.stats.submitted);
  const double advice_cost =
      static_cast<double>(advised.stats.route_probes) /
      static_cast<double>(advised.stats.submitted);
  // Probe mode pays >= confirm_probes observations per routed batch;
  // advice mode pays one. The ratio is structural, so it holds even
  // under sanitizer timing noise.
  EXPECT_LT(advice_cost, probe_cost);
}

}  // namespace
}  // namespace tbwf::soak
