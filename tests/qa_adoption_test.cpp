// Tests of the QA construction's adoption path: a value accepted by a
// process that then stalls or crashes must be finished (decided) by the
// next proposer, never lost and never duplicated -- the subtle recovery
// machinery behind "an aborted operation may have taken effect".
#include <gtest/gtest.h>

#include <memory>

#include "qa/qa_universal.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::qa {
namespace {

using sim::Pid;
using sim::SimEnv;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

Task one_inc(SimEnv& env, QaUniversal<Counter>& obj, QaResponse<I64>& out) {
  out = co_await obj.invoke(env, Counter::Op{1});
}

TEST(QaAdoption, FloatingAcceptIsFinishedByNextProposer) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  QaUniversal<Counter> obj(world, 0);

  // Phase 1: p0 runs ALONE until its accept for slot 1 is published,
  // then crashes before deciding.
  QaResponse<I64> r0;
  world.spawn(0, "w0", [&](SimEnv& env) { return one_inc(env, obj, r0); });
  ASSERT_TRUE(world.run_until(
      [&] { return obj.peek_record(0).accepted.seq == 1; }, 10000, 1));
  ASSERT_EQ(obj.peek_frontier().seq, 0u) << "must crash BEFORE deciding";
  world.crash(0);

  // Phase 2: p1 proposes its own increment. It must adopt and decide
  // p0's floating value first, then land its own at the next slot.
  QaResponse<I64> r1;
  world.spawn(1, "w1", [&](SimEnv& env) { return one_inc(env, obj, r1); });
  world.run(10000);

  ASSERT_TRUE(r1.ok());
  const auto frontier = obj.peek_frontier();
  EXPECT_EQ(frontier.state, 2) << "both increments must be applied";
  EXPECT_EQ(frontier.seq, 2u);
  // p0's op was applied exactly once: its uid is recorded at slot 1's
  // chain and its result (value before: 0) is preserved.
  EXPECT_NE(frontier.last_uid[0], 0u);
  EXPECT_EQ(frontier.last_result[0], 0);
  // p1's own op observed p0's adopted increment.
  EXPECT_EQ(r1.value, 1);
}

TEST(QaAdoption, AdoptionIsNotDuplicated) {
  // Same setup, but TWO later proposers race to adopt: the value must
  // still be applied exactly once.
  World world(3, std::make_unique<sim::RandomSchedule>(5));
  QaUniversal<Counter> obj(world, 0);

  QaResponse<I64> r0;
  world.spawn(0, "w0", [&](SimEnv& env) { return one_inc(env, obj, r0); });
  ASSERT_TRUE(world.run_until(
      [&] { return obj.peek_record(0).accepted.seq == 1; }, 10000, 1));
  world.crash(0);

  QaResponse<I64> r1, r2;
  world.spawn(1, "w1", [&](SimEnv& env) { return one_inc(env, obj, r1); });
  world.spawn(2, "w2", [&](SimEnv& env) { return one_inc(env, obj, r2); });

  struct Driver {
    static Task drain(SimEnv& env, QaUniversal<Counter>& obj,
                      QaResponse<I64>& r) {
      while (r.bottom()) {
        r = co_await obj.query(env);
        if (r.bottom()) co_await env.yield();
      }
    }
  };
  world.run(100000);
  // Resolve any bottoms through query.
  if (r1.bottom()) {
    world.spawn(1, "q1", [&](SimEnv& env) {
      return Driver::drain(env, obj, r1);
    });
  }
  if (r2.bottom()) {
    world.spawn(2, "q2", [&](SimEnv& env) {
      return Driver::drain(env, obj, r2);
    });
  }
  world.run(100000);

  const auto frontier = obj.peek_frontier();
  const int applied_later = (r1.ok() ? 1 : 0) + (r2.ok() ? 1 : 0);
  // p0's adopted op + every later op that reported success.
  EXPECT_EQ(frontier.state, 1 + applied_later);
  EXPECT_NE(frontier.last_uid[0], 0u) << "p0's op must have been adopted";
}

TEST(QaAdoption, QueryReportsAdoptedOpOfItsOwner) {
  // p0's accept floats; p0 is NOT crashed, merely descheduled; after
  // p1 adopts and decides it, p0's query must report Ok with the
  // original result.
  // Phase control via stall windows: p0 active early (starts its op),
  // then stalled while p1 works, then active again (runs its query).
  World w2(2, std::make_unique<sim::TimelinessSchedule>(
                  std::vector<sim::ActivitySpec>{
                      sim::ActivitySpec::stall(60, 100000),
                      sim::ActivitySpec::stall(0, 60)},
                  7));
  QaUniversal<Counter> obj(w2, 0);
  QaResponse<I64> r0, q0;
  struct InvokeThenQuery {
    static Task run(SimEnv& env, QaUniversal<Counter>& obj,
                    QaResponse<I64>& r, QaResponse<I64>& q) {
      r = co_await obj.invoke(env, Counter::Op{1});
      if (r.bottom()) {
        do {
          q = co_await obj.query(env);
          if (q.bottom()) co_await env.yield();
        } while (q.bottom());
      }
    }
  };
  w2.spawn(0, "w0", [&](SimEnv& env) {
    return InvokeThenQuery::run(env, obj, r0, q0);
  });
  QaResponse<I64> r1;
  w2.spawn(1, "w1", [&](SimEnv& env) { return one_inc(env, obj, r1); });
  w2.run(300000);

  // p0 either completed cleanly (if its window sufficed) or was
  // adopted and learned the fate via query.
  const auto frontier = obj.peek_frontier();
  if (r0.ok()) {
    EXPECT_NE(frontier.last_uid[0], 0u);
  } else if (q0.ok()) {
    EXPECT_EQ(q0.value, frontier.last_result[0]);
  }
  // Whatever happened, accounting is exact.
  const int expected = (r0.ok() || q0.ok() ? 1 : 0) + (r1.ok() ? 1 : 0);
  EXPECT_EQ(frontier.state, expected);
}

}  // namespace
}  // namespace tbwf::qa
