// Unit tests of the Definition 5 / Theorem 7 run-checker itself, using
// synthetic trajectories: a checker that cannot detect violations would
// silently validate broken Omega-Delta implementations.
#include <gtest/gtest.h>

#include <memory>

#include "omega/omega_spec.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {
using sim::Pid;
using sim::Step;
}  // namespace
}  // namespace tbwf::omega

// The checker takes an OmegaRecord; to unit-test its logic with
// synthetic data we run tiny *live* worlds whose sub-tasks write the
// scripted outputs. This keeps a single code path under test.
namespace tbwf::omega {
namespace {

struct ScriptPoint {
  Step step;
  Pid leader;
};

sim::Task play_script(sim::SimEnv& env, OmegaIO& io,
                      std::vector<ScriptPoint> script) {
  std::size_t i = 0;
  for (;;) {
    while (i < script.size() && env.now() >= script[i].step) {
      io.leader = script[i].leader;
      ++i;
    }
    co_await env.yield();
  }
}

struct LiveHarness {
  std::unique_ptr<sim::World> world;
  std::vector<OmegaIO> ios;
  std::unique_ptr<OmegaRecord> record;

  LiveHarness(int n, std::vector<std::vector<ScriptPoint>> scripts)
      : ios(n) {
    world = std::make_unique<sim::World>(
        n, std::make_unique<sim::RoundRobinSchedule>());
    std::vector<OmegaIO*> ptrs;
    for (auto& io : ios) ptrs.push_back(&io);
    record = std::make_unique<OmegaRecord>(*world, ptrs);
    for (Pid p = 0; p < n; ++p) {
      auto script = scripts[p];
      OmegaIO* io = &ios[p];
      world->spawn(p, "script", [io, script](sim::SimEnv& env) {
        return play_script(env, *io, script);
      });
    }
  }
};

TEST(OmegaSpecChecker, AcceptsConvergedRun) {
  LiveHarness h(2, {{{0, kNoLeader}, {10, 0}}, {{0, kNoLeader}, {20, 0}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  const auto r = check_omega_spec(*h.record, classes, {0, 1}, 500);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.elected, 0);
}

TEST(OmegaSpecChecker, RejectsDisagreeingLeaders) {
  LiveHarness h(2, {{{10, 0}}, {{10, 1}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  const auto r = check_omega_spec(*h.record, classes, {0, 1}, 500);
  EXPECT_FALSE(r.ok);
}

TEST(OmegaSpecChecker, RejectsLateLeaderFlip) {
  // Converged... then flips after check_from: property 1b violated.
  LiveHarness h(2, {{{10, 0}}, {{10, 0}, {800, 1}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  const auto r = check_omega_spec(*h.record, classes, {0, 1}, 500);
  EXPECT_FALSE(r.ok);
}

TEST(OmegaSpecChecker, RejectsNonCandidateWithLeaderOutput) {
  // p1 never competes but keeps a leader output != "?": property 2.
  LiveHarness h(2, {{{10, 0}}, {{10, 0}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0};
  classes.ncandidates = {1};
  const auto r = check_omega_spec(*h.record, classes, {0, 1}, 500);
  EXPECT_FALSE(r.ok);
}

TEST(OmegaSpecChecker, AcceptsRCandidateInQuestionOrLeader) {
  LiveHarness h(3, {{{10, 0}},
                    {{10, 0}},
                    {{10, kNoLeader}, {200, 0}, {400, kNoLeader}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  classes.rcandidates = {2};
  const auto r = check_omega_spec(*h.record, classes, {0, 1, 2}, 500);
  EXPECT_TRUE(r.ok) << r.summary();
}

TEST(OmegaSpecChecker, RejectsRCandidateTrustingThirdParty) {
  // The repeated candidate outputs some other process: property 1c.
  LiveHarness h(3, {{{10, 0}}, {{10, 0}}, {{10, 1}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  classes.rcandidates = {2};
  const auto r = check_omega_spec(*h.record, classes, {0, 1, 2}, 500);
  EXPECT_FALSE(r.ok);
}

TEST(OmegaSpecChecker, RejectsUntimelyElectedLeader) {
  LiveHarness h(2, {{{10, 0}}, {{10, 0}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  // p0 declared NOT timely: electing it violates Definition 5.
  const auto r = check_omega_spec(*h.record, classes, /*timely=*/{1}, 500);
  EXPECT_FALSE(r.ok);
}

TEST(OmegaSpecChecker, Theorem7RequiresPermanentLeader) {
  LiveHarness h(2, {{{10, 1}}, {{10, 1}}});
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0};
  classes.rcandidates = {1};
  // Definition 5 allows electing the R-candidate...
  EXPECT_TRUE(check_omega_spec(*h.record, classes, {0, 1}, 500).ok);
  // ...canonical use (Theorem 7) does not. (Note: leader_0 = 1 != 0, so
  // 1a is checked against l = 1.)
  EXPECT_FALSE(check_omega_spec(*h.record, classes, {0, 1}, 500,
                                /*require_leader_permanent=*/true)
                   .ok);
}

TEST(OmegaSpecChecker, VacuouslyOkWithoutTimelyPermanentCandidate) {
  LiveHarness h(2, {{{10, 0}}, {{10, 1}}});  // disagreement...
  h.world->run(1000);
  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  // ...but no permanent candidate is timely, so property 1 is vacuous.
  const auto r = check_omega_spec(*h.record, classes, /*timely=*/{}, 500);
  EXPECT_TRUE(r.ok) << r.summary();
}

}  // namespace
}  // namespace tbwf::omega
