// RtSupervisor integration tests: directed fault plans on real threads.
// Exactness under no faults, kill/restart mechanics, stall accounting,
// calibrator integration, and -- the safety property of this subsystem
// -- that a revived worker can never commit under its stale lease.
//
// Single-core note: one CPU, so runs are short, yields are frequent,
// and no test asserts wall-clock performance -- only events, counters,
// and safety invariants.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qa/sequential_type.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_tbwf.hpp"
#include "rt/rt_trace.hpp"
#include "rt/rt_workloads.hpp"

namespace tbwf::rt {
namespace {

using std::chrono::milliseconds;

std::uint64_t count_kind(const RtTraceSnapshot& snap, std::uint32_t tid,
                         RtEventKind kind) {
  std::uint64_t n = 0;
  for (const auto& ev : snap.per_tid[tid]) {
    if (ev.kind == kind) ++n;
  }
  return n;
}

TEST(RtSupervisorTest, NoFaultRunCountsExactly) {
  // Three workers drive an RtTbwfObject<Counter> (uid-deduplicated, so
  // exactly-once even across lease churn); the final counter value must
  // equal the total number of completed invokes.
  constexpr int kThreads = 3;
  RtTbwfObject<qa::Counter> obj(kThreads, 0);
  std::atomic<std::uint64_t> total{0};

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(10);
  RtSupervisor sup(options, RtFaultPlan{}, [&](RtWorkerContext& ctx) {
    std::uint64_t mine = 0;
    while (!ctx.should_stop()) {
      ctx.fault_point();
      ctx.op_start();
      obj.invoke(ctx.tid(), qa::Counter::Op{1});
      ctx.op_complete(++mine);
    }
    total.fetch_add(mine);
  });
  sup.run();

  const auto value =
      obj.invoke(/*tid=*/0, qa::Counter::Op{0});  // read via +0
  EXPECT_EQ(static_cast<std::uint64_t>(value), total.load());
  EXPECT_GT(total.load(), 0u);
  // No faults planned, none may fire.
  for (int t = 0; t < kThreads; ++t) {
    const std::string tid = ".t" + std::to_string(t);
    EXPECT_EQ(sup.counters().get("rt.kills" + tid), 0u);
    EXPECT_EQ(sup.counters().get("rt.stalls" + tid), 0u);
    EXPECT_EQ(sup.counters().get("rt.restarts" + tid), 0u);
  }
}

TEST(RtSupervisorTest, KillFiresAndRestartRejoins) {
  constexpr int kThreads = 2;
  LeasedCounterWorkload work(kThreads);
  RtFaultPlan plan;
  plan.kill(/*tid=*/0, /*at_ns=*/3000000, /*restart_after_ns=*/1000000);

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(16);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  sup.run();

  EXPECT_EQ(sup.counters().get("rt.kills.t0"), 1u);
  EXPECT_EQ(sup.counters().get("rt.restarts.t0"), 1u);
  EXPECT_EQ(sup.counters().get("rt.kills.t1"), 0u);

  const auto snap = sup.snapshot();
  EXPECT_EQ(count_kind(snap, 0, RtEventKind::kKill), 1u);
  EXPECT_EQ(count_kind(snap, 0, RtEventKind::kRestart), 1u);
  // The revived incarnation did real work: some tid-0 events carry
  // incarnation 1.
  bool incarnation1_active = false;
  for (const auto& ev : snap.per_tid[0]) {
    if (ev.incarnation == 1 && ev.kind == RtEventKind::kStep) {
      incarnation1_active = true;
      break;
    }
  }
  EXPECT_TRUE(incarnation1_active);
  EXPECT_GT(work.commits(1), 0u);  // the survivor made progress throughout
}

TEST(RtSupervisorTest, PermanentKillLeavesNoZombieEvents) {
  constexpr int kThreads = 2;
  LeasedCounterWorkload work(kThreads);
  RtFaultPlan plan;
  plan.kill(/*tid=*/0, /*at_ns=*/2000000);  // never restarted

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(12);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  sup.run();

  EXPECT_EQ(sup.counters().get("rt.kills.t0"), 1u);
  EXPECT_EQ(sup.counters().get("rt.restarts.t0"), 0u);
  const auto snap = sup.snapshot();
  // Nothing from tid 0 after its death event.
  std::uint64_t death_ns = 0;
  for (const auto& ev : snap.per_tid[0]) {
    if (ev.kind == RtEventKind::kKill) death_ns = ev.at_ns;
  }
  ASSERT_GT(death_ns, 0u);
  for (const auto& ev : snap.per_tid[0]) {
    EXPECT_LE(ev.at_ns, death_ns);
  }
  EXPECT_GT(work.commits(1), 0u);
}

TEST(RtSupervisorTest, StallIsInjectedAndLogged) {
  constexpr int kThreads = 2;
  LeasedCounterWorkload work(kThreads);
  RtFaultPlan plan;
  plan.stall(/*tid=*/1, /*at_ns=*/2000000, /*duration_ns=*/3000000);

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(12);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  sup.run();

  EXPECT_EQ(sup.counters().get("rt.stalls.t1"), 1u);
  EXPECT_EQ(sup.counters().get("rt.kills.t1"), 0u);
  const auto snap = sup.snapshot();
  EXPECT_EQ(count_kind(snap, 1, RtEventKind::kStall), 1u);
  // The stalled thread has a trace gap covering (most of) the stall.
  std::uint64_t worst_gap = 0, prev = 0;
  bool first = true;
  for (const auto& ev : snap.per_tid[1]) {
    if (!first) worst_gap = std::max(worst_gap, ev.at_ns - prev);
    prev = ev.at_ns;
    first = false;
  }
  EXPECT_GE(worst_gap, 2500000u);  // ~the 3 ms stall, minus slack
}

// The acceptance-criteria safety test: a revived worker replaying the
// fence token its previous incarnation captured must be refused, and
// must never commit under it. The supervisor's on_restart hook revokes
// the dead incarnation's lease (bumping the fence) before the new
// thread runs, so the stale validate is deterministically false.
TEST(RtSupervisorTest, RevivedWorkerNeverCommitsUnderStaleLease) {
  constexpr int kThreads = 2;
  LeaseElector elector{std::chrono::milliseconds(8)};  // long: still live at restart
  RtAbortableReg<std::int64_t> cell(0);
  // Written only by tid 0; read by its own later incarnation (the
  // restart join/spawn is the happens-before edge).
  std::uint64_t stale_token = 0;
  bool have_stale_token = false;
  std::atomic<std::uint64_t> stale_attempts{0};
  std::atomic<std::uint64_t> stale_commits{0};

  auto body = [&](RtWorkerContext& ctx) {
    const std::uint32_t tid = ctx.tid();
    if (tid == 0 && ctx.incarnation() > 0 && have_stale_token) {
      // Revived: replay the token the dead incarnation captured.
      stale_attempts.fetch_add(1);
      if (elector.validate(0, stale_token)) {
        stale_commits.fetch_add(1);  // would be a stale commit
        (void)cell.write(-1);
      } else {
        ctx.record(RtEventKind::kStaleFenceBlocked);
      }
    }
    while (!ctx.should_stop()) {
      ctx.fault_point();
      std::uint64_t token = 0;
      if (!elector.try_lead(tid, &token)) {
        std::this_thread::yield();
        continue;
      }
      if (tid == 0 && ctx.incarnation() == 0) {
        stale_token = token;
        have_stale_token = true;
      }
      ctx.fault_point();  // the kill lands here, lease in hand
      if (elector.validate(tid, token)) {
        auto v = cell.read();
        if (v.has_value()) (void)cell.write(*v + 1);
      }
      elector.release(tid);
      ctx.fault_point();
    }
  };

  RtFaultPlan plan;
  plan.kill(/*tid=*/0, /*at_ns=*/3000000, /*restart_after_ns=*/500000);

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(16);
  options.on_restart = [&](std::uint32_t tid, std::uint32_t) {
    elector.revoke(tid);
  };
  RtSupervisor sup(options, plan, body);
  sup.run();

  ASSERT_EQ(sup.counters().get("rt.kills.t0"), 1u);
  ASSERT_EQ(sup.counters().get("rt.restarts.t0"), 1u);
  EXPECT_GE(stale_attempts.load(), 1u);
  EXPECT_EQ(stale_commits.load(), 0u);
  EXPECT_GE(sup.counters().get("rt.stale_blocked.t0"), 1u);
}

TEST(RtSupervisorTest, CalibratorAdaptsDuringSupervisedRun) {
  constexpr int kThreads = 2;
  LeasedCounterWorkload work(kThreads);
  const std::uint64_t initial_term = work.elector().current_term_ns();

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(10);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, RtFaultPlan{}, work.body());
  sup.run();

  EXPECT_GT(work.calibrator().samples(), 0u);
  const std::uint64_t term = work.elector().current_term_ns();
  EXPECT_GE(term, work.calibrator().options().floor_ns);
  EXPECT_LE(term, work.calibrator().options().ceil_ns);
  // The run observed real latencies, so the term moved off its seed
  // value (initial latency 10 us -> term 160 us; real ops differ).
  EXPECT_NE(term, 0u);
  (void)initial_term;  // the direction of movement is load-dependent
  // Commits happened. (The leased counter is not exactly-once -- a
  // leader preempted in the validate-to-write gap past its term can
  // still lose an update -- so the cell is bounded by the commit count,
  // not equal to it; RtTbwfObject covers exactness above.)
  std::uint64_t commits = 0;
  for (int t = 0; t < kThreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u);
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits);
  EXPECT_GT(work.value(), 0);
}

TEST(RtSupervisorTest, StormInjectsAbortsIntoAttachedRegisters) {
  constexpr int kThreads = 2;
  LeasedCounterWorkload work(kThreads);
  RtFaultPlan plan;
  plan.storm(/*from_ns=*/1000000, /*to_ns=*/6000000,
             /*rate_millionths=*/900000);

  RtSupervisorOptions options;
  options.nthreads = kThreads;
  options.run_for = milliseconds(12);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  EXPECT_GT(sup.counters().get("rt.storm_aborts"), 0u);
  std::uint64_t aborts = 0;
  for (int t = 0; t < kThreads; ++t) {
    aborts += sup.counters().get("rt.aborts.t" + std::to_string(t));
  }
  EXPECT_GT(aborts, 0u);
  // Progress resumed after the storm: commits landed and the cell is
  // bounded by them (see the exactness caveat above).
  std::uint64_t commits = 0;
  for (int t = 0; t < kThreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u);
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits);
}

}  // namespace
}  // namespace tbwf::rt
