// Tests of the register fault layer (registers/reg_faults.hpp): the
// deliberately broken medium behind the degraded-channel sweeps. Each
// fault kind is checked against ground truth -- what the injector says
// it inflicted must match what the register demonstrably did -- plus
// arm_link targeting, window boundaries, composition with a calm
// policy, and seed determinism.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "omega/hb_channel.hpp"
#include "omega/msg_channel.hpp"
#include "omega/wire.hpp"
#include "registers/reg_faults.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "util/metrics.hpp"

namespace tbwf::registers {
namespace {

using sim::AbortableReg;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

OpContext ctx_at(std::uint32_t reg, Step t, bool is_write) {
  OpContext ctx;
  ctx.pid = 0;
  ctx.is_write = is_write;
  ctx.invoked_at = t;
  ctx.responded_at = t;
  ctx.reg = reg;
  return ctx;
}

// -- outcome unit tests ----------------------------------------------------------

TEST(RegFaults, JamAbortsEverythingSoloIncluded) {
  RegisterFaultInjector inj(1);
  inj.add_fault(0, RegFaultKind::Jam, 0, kFaultForever);
  for (Step t = 0; t < 20; ++t) {
    EXPECT_EQ(inj.on_solo_read(ctx_at(0, t, false)), ReadOutcome::Abort);
    EXPECT_EQ(inj.on_solo_write(ctx_at(0, t, true)),
              WriteOutcome::AbortNoEffect);
  }
  EXPECT_EQ(inj.injected(RegFaultKind::Jam), 40u);
  EXPECT_EQ(inj.injected_total(), 40u);
}

TEST(RegFaults, DropHitsWritesOnlyStaleHitsReadsOnly) {
  RegisterFaultInjector inj(2);
  inj.add_fault(0, RegFaultKind::Drop, 0, kFaultForever);
  inj.add_fault(1, RegFaultKind::Stale, 0, kFaultForever);
  // Drop: the write reports success (the lie) and reads pass clean.
  EXPECT_EQ(inj.on_solo_write(ctx_at(0, 5, true)), WriteOutcome::SilentDrop);
  EXPECT_EQ(inj.on_solo_read(ctx_at(0, 5, false)), ReadOutcome::Success);
  // Stale: the read reports success but serves the previous value;
  // writes pass clean.
  EXPECT_EQ(inj.on_solo_read(ctx_at(1, 5, false)), ReadOutcome::Stale);
  EXPECT_EQ(inj.on_solo_write(ctx_at(1, 5, true)), WriteOutcome::Success);
  EXPECT_EQ(inj.injected(RegFaultKind::Drop), 1u);
  EXPECT_EQ(inj.injected(RegFaultKind::Stale), 1u);
}

TEST(RegFaults, WindowsAreHalfOpenAndPerRegister) {
  RegisterFaultInjector inj(3);
  inj.add_fault(7, RegFaultKind::Flake, 10, 20, /*rate=*/1.0);
  EXPECT_EQ(inj.on_solo_read(ctx_at(7, 9, false)), ReadOutcome::Success);
  EXPECT_EQ(inj.on_solo_read(ctx_at(7, 10, false)), ReadOutcome::Abort);
  EXPECT_EQ(inj.on_solo_read(ctx_at(7, 19, false)), ReadOutcome::Abort);
  EXPECT_EQ(inj.on_solo_read(ctx_at(7, 20, false)), ReadOutcome::Success);
  // Other registers are untouched even inside the window.
  EXPECT_EQ(inj.on_solo_read(ctx_at(8, 15, false)), ReadOutcome::Success);
}

TEST(RegFaults, CalmPolicyRulesWhenNoFaultFires) {
  AlwaysAbortPolicy calm(AlwaysAbortPolicy::Effect::Never);
  RegisterFaultInjector inj(4, &calm);
  inj.add_fault(0, RegFaultKind::Jam, 100, 200);
  // Outside the window the calm policy decides: contended ops abort,
  // solo ops succeed -- the spec-conforming adversary is preserved.
  EXPECT_EQ(inj.on_contended_read(ctx_at(0, 50, false)), ReadOutcome::Abort);
  EXPECT_EQ(inj.on_solo_read(ctx_at(0, 50, false)), ReadOutcome::Success);
  // Inside the window the jam overrides even solo operations.
  EXPECT_EQ(inj.on_solo_read(ctx_at(0, 150, false)), ReadOutcome::Abort);
}

TEST(RegFaults, JamCoversRequiresFullWindow) {
  RegisterFaultInjector inj(5);
  inj.add_fault(0, RegFaultKind::Jam, 100, 200);
  inj.add_fault(1, RegFaultKind::Jam, 100, kFaultForever);
  inj.add_fault(2, RegFaultKind::Flake, 0, kFaultForever);
  EXPECT_TRUE(inj.jam_covers(0, 100, 200));
  EXPECT_TRUE(inj.jam_covers(0, 120, 180));
  EXPECT_FALSE(inj.jam_covers(0, 50, 150));   // starts before the jam
  EXPECT_FALSE(inj.jam_covers(0, 150, 250));  // outlives the jam
  EXPECT_TRUE(inj.jam_covers(1, 100, 99999999));
  EXPECT_FALSE(inj.jam_covers(2, 0, 10));  // a flake is not a jam
}

TEST(RegFaults, OutcomeStreamIsSeedDeterministic) {
  const auto draw = [](std::uint64_t seed) {
    RegisterFaultInjector inj(seed);
    inj.add_fault(0, RegFaultKind::Flake, 0, kFaultForever, /*rate=*/0.5);
    std::vector<ReadOutcome> outcomes;
    for (Step t = 0; t < 200; ++t) {
      outcomes.push_back(inj.on_solo_read(ctx_at(0, t, false)));
    }
    return outcomes;
  };
  EXPECT_EQ(draw(11), draw(11));
  EXPECT_NE(draw(11), draw(12));
}

TEST(RegFaults, ExportMetricsTalliesPerKind) {
  RegisterFaultInjector inj(6);
  inj.add_fault(0, RegFaultKind::Jam, 0, kFaultForever);
  inj.add_fault(1, RegFaultKind::Drop, 0, kFaultForever);
  (void)inj.on_solo_read(ctx_at(0, 1, false));
  (void)inj.on_solo_write(ctx_at(1, 1, true));
  util::Counters metrics;
  inj.export_metrics(metrics);
  EXPECT_EQ(metrics.get("regfault.injected.jam"), 1u);
  EXPECT_EQ(metrics.get("regfault.injected.drop"), 1u);
  EXPECT_EQ(metrics.get("regfault.injected.stale"), 0u);
}

// -- end-to-end register semantics ----------------------------------------------

Task write_once(SimEnv& env, AbortableReg<I64> reg, I64 v, bool* ok,
                bool* done) {
  *ok = co_await env.write(reg, v);
  *done = true;
}

Task read_once(SimEnv& env, AbortableReg<I64> reg, std::optional<I64>* out,
               bool* done) {
  *out = co_await env.read(reg);
  *done = true;
}

TEST(RegFaultsWorld, DropReportsSuccessWithoutInstalling) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  RegisterFaultInjector inj(21);
  auto reg = world.make_abortable<I64>("r", 0, &inj, /*writer=*/0,
                                       /*reader=*/1);
  inj.add_fault(reg.idx, RegFaultKind::Drop, 0, kFaultForever);

  bool w_ok = false, w_done = false;
  world.spawn(0, "w", [&](SimEnv& env) {
    return write_once(env, reg, 42, &w_ok, &w_done);
  });
  ASSERT_TRUE(world.run_until([&] { return w_done; }, 1000));
  EXPECT_TRUE(w_ok) << "a dropped write must LIE success";

  std::optional<I64> r_val;
  bool r_done = false;
  world.spawn(1, "r", [&](SimEnv& env) {
    return read_once(env, reg, &r_val, &r_done);
  });
  ASSERT_TRUE(world.run_until([&] { return r_done; }, 1000));
  ASSERT_TRUE(r_val.has_value());
  EXPECT_EQ(*r_val, 0) << "the register must be unchanged";
  EXPECT_EQ(inj.injected(RegFaultKind::Drop), 1u);
}

TEST(RegFaultsWorld, StaleReadServesPreviousValue) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  RegisterFaultInjector inj(22);
  auto reg = world.make_abortable<I64>("r", 0, &inj, /*writer=*/0,
                                       /*reader=*/1);
  inj.add_fault(reg.idx, RegFaultKind::Stale, 0, kFaultForever);

  bool ok1 = false, done1 = false, ok2 = false, done2 = false;
  world.spawn(0, "w", [&](SimEnv& env) {
    return write_once(env, reg, 5, &ok1, &done1);
  });
  ASSERT_TRUE(world.run_until([&] { return done1; }, 1000));
  world.spawn(0, "w2", [&](SimEnv& env) {
    return write_once(env, reg, 7, &ok2, &done2);
  });
  ASSERT_TRUE(world.run_until([&] { return done2; }, 1000));
  ASSERT_TRUE(ok1 && ok2);

  std::optional<I64> r_val;
  bool r_done = false;
  world.spawn(1, "r", [&](SimEnv& env) {
    return read_once(env, reg, &r_val, &r_done);
  });
  ASSERT_TRUE(world.run_until([&] { return r_done; }, 1000));
  ASSERT_TRUE(r_val.has_value());
  EXPECT_EQ(*r_val, 5) << "a stale read lags one write behind";
}

using Wire = omega::Sealed<I64>;

Task write_wire(SimEnv& env, sim::AbortableReg<Wire> reg, Wire v, bool* ok,
                bool* done) {
  *ok = co_await env.write(reg, v);
  *done = true;
}

Task read_wire(SimEnv& env, sim::AbortableReg<Wire> reg,
               std::optional<Wire>* out, bool* done) {
  *out = co_await env.read(reg);
  *done = true;
}

TEST(RegFaultsWorld, TornWriteFailsTheSealChecksum) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  RegisterFaultInjector inj(23);
  auto reg = world.make_abortable<Wire>("r", Wire::make(0, 0), &inj,
                                        /*writer=*/0, /*reader=*/1);
  inj.add_fault(reg.idx, RegFaultKind::Torn, 0, kFaultForever);

  bool w_ok = false, w_done = false;
  world.spawn(0, "w", [&](SimEnv& env) {
    return write_wire(env, reg, Wire::make(123456789, 1), &w_ok, &w_done);
  });
  ASSERT_TRUE(world.run_until([&] { return w_done; }, 1000));
  EXPECT_TRUE(w_ok) << "a torn write must LIE success";

  std::optional<Wire> r_val;
  bool r_done = false;
  world.spawn(1, "r", [&](SimEnv& env) {
    return read_wire(env, reg, &r_val, &r_done);
  });
  ASSERT_TRUE(world.run_until([&] { return r_done; }, 1000));
  ASSERT_TRUE(r_val.has_value());
  EXPECT_FALSE(r_val->valid())
      << "half-landed bytes must trip the checksum tripwire";
  EXPECT_EQ(inj.injected(RegFaultKind::Torn), 1u);
}

// -- arm_link targeting ----------------------------------------------------------

TEST(RegFaultsWorld, ArmLinkSelectsByPairPrefixAndPolicy) {
  World world(3, std::make_unique<sim::RoundRobinSchedule>());
  RegisterFaultInjector inj(24);
  NeverAbortPolicy other;
  // The channel meshes the injector governs...
  auto msg = omega::make_msg_mesh<I64>(world, &inj, 0, "MsgRegister");
  auto hb = omega::make_hb_mesh(world, &inj, "HbRegister");
  // ...and a mesh under a different policy that must never be armed.
  auto foreign = omega::make_msg_mesh<I64>(world, &other, 0, "Foreign");
  (void)msg;
  (void)hb;
  (void)foreign;

  EXPECT_EQ(inj.arm_link(world, 0, 1, "MsgRegister", RegFaultKind::Jam, 0,
                         kFaultForever),
            1);
  EXPECT_EQ(inj.arm_link(world, 0, 1, "HbRegister1", RegFaultKind::Jam, 0,
                         kFaultForever),
            1);
  EXPECT_EQ(inj.arm_link(world, 0, 1, "HbRegister", RegFaultKind::Jam, 0,
                         kFaultForever),
            2);  // HbRegister1 and HbRegister2
  EXPECT_EQ(inj.arm_link(world, 1, 2, "", RegFaultKind::Flake, 0, 100, 0.5),
            3);  // msg + both hb registers of the 1 -> 2 link
  EXPECT_EQ(inj.arm_link(world, 0, 1, "Foreign", RegFaultKind::Jam, 0,
                         kFaultForever),
            0)
      << "registers under another policy must be skipped";
  EXPECT_EQ(inj.arm_link(world, 0, 0, "", RegFaultKind::Jam, 0, 10), 0)
      << "no self links exist";
}

}  // namespace
}  // namespace tbwf::registers
