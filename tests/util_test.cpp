#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace tbwf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, BelowStaysInRange) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  util::Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  util::Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InUnitInterval) {
  util::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  util::Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  util::Rng a(19);
  util::Rng child = a.split();
  // The child should not replay the parent's sequence.
  util::Rng b(19);
  b.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (child.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Histogram, EmptyIsSafe) {
  util::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, BasicStats) {
  util::Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 5}) h.add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_EQ(h.p50(), 3u);
}

TEST(Histogram, QuantileEdges) {
  util::Histogram h;
  for (std::uint64_t v = 0; v < 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(1.0), 99u);
  EXPECT_EQ(h.quantile(0.99), 98u);
}

TEST(Histogram, MergeCombinesSamples) {
  util::Histogram a, b;
  a.add(1);
  a.add(2);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 10u);
}

TEST(Histogram, StddevOfConstantIsZero) {
  util::Histogram h;
  for (int i = 0; i < 10; ++i) h.add(7);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Counters, IncrementAndRead) {
  util::Counters c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  EXPECT_EQ(c.get("x"), 5u);
}

TEST(JainFairness, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({5, 5, 5, 5}), 1.0);
}

TEST(JainFairness, Monopoly) {
  EXPECT_NEAR(util::jain_fairness({100, 0, 0, 0}), 0.25, 1e-9);
}

TEST(JainFairness, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness({0, 0}), 1.0);
}

}  // namespace
}  // namespace tbwf

#include "util/logging.hpp"

namespace tbwf {
namespace {

TEST(Logging, LevelRoundTrips) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::Debug);
  EXPECT_EQ(util::log_level(), util::LogLevel::Debug);
  util::set_log_level(util::LogLevel::Off);
  EXPECT_EQ(util::log_level(), util::LogLevel::Off);
  util::set_log_level(prev);
}

TEST(Logging, SuppressedBelowThresholdAndEmitsAbove) {
  const auto prev = util::log_level();
  util::set_log_level(util::LogLevel::Off);
  // Nothing observable to assert on stderr portably; the contract is
  // simply that emitting at any level below Off is a no-op that does
  // not crash, including from the macro path.
  TBWF_LOG(Error) << "suppressed " << 42;
  util::set_log_level(util::LogLevel::Error);
  util::log_emit(util::LogLevel::Warn, "below threshold, dropped");
  util::set_log_level(prev);
  SUCCEED();
}

}  // namespace
}  // namespace tbwf
