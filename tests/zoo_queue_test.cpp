// Zoo object 2: the wait-free bounded MPMC queue, as specialist
// (TurnQueue: Lamport-stamped items + publish/validate/confirm turn
// claims) and as QA-universal twin over BoundedQueueOf<Cap>. Explorer
// + oracle at n = 2, 3; the dropped-claim-fence mutation must produce
// a duplicated dequeue the oracle flags; solo runs never answer
// bottom and see exact full/empty verdicts; randomized differential
// sweeps check conservation on both twins under identical seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/schedule.hpp"
#include "verify/explorer.hpp"
#include "zoo/turn_queue.hpp"
#include "zoo/zoo_harness.hpp"

namespace tbwf::zoo {
namespace {

using verify::ExploreResult;
using verify::Explorer;
using verify::ExplorerOptions;
using verify::OpStatus;

using Q2 = BoundedQueueOf<2>;
using Q4 = BoundedQueueOf<4>;
using Spec2 = TurnQueue<2>;
using Spec4 = TurnQueue<4>;
using Uni2 = UniversalZoo<Q2>;
using Uni4 = UniversalZoo<Q4>;

template <int Cap>
typename ZooExploredRun<BoundedQueueOf<Cap>, TurnQueue<Cap>>::Maker
specialist_maker(TurnQueueMutations m = {}) {
  return [m](sim::World& w, const typename BoundedQueueOf<Cap>::State& init) {
    auto obj = std::make_unique<TurnQueue<Cap>>(w, init);
    obj->set_mutations(m);
    return obj;
  };
}

template <int Cap>
typename ZooExploredRun<BoundedQueueOf<Cap>, UniversalZoo<BoundedQueueOf<Cap>>>::Maker
universal_maker() {
  return [](sim::World& w, const typename BoundedQueueOf<Cap>::State& init) {
    return std::make_unique<UniversalZoo<BoundedQueueOf<Cap>>>(w, init);
  };
}

ExplorerOptions bounds(const char* name, int max_runs = 60000) {
  ExplorerOptions opt;
  opt.name = name;
  opt.max_depth = 500;
  opt.max_runs = max_runs;
  return opt;
}

// -- sequential semantics (solo: exact verdicts, no bottom) ---------------

TEST(ZooQueue, SoloFifoFullEmptyExact) {
  ZooExploreConfig<Q2> config;
  config.n = 2;
  config.ops.resize(2);
  config.ops[0] = {Q2::enqueue(1), Q2::enqueue(2), Q2::enqueue(3),
                   Q2::dequeue(), Q2::dequeue(), Q2::dequeue()};
  const auto outcome = run_zoo_workload<Q2, Spec2>(config,
                                                   specialist_maker<2>());
  ASSERT_TRUE(outcome.completed);
  std::vector<std::int64_t> results;
  for (const auto& op : outcome.history) {
    ASSERT_EQ(op.status, OpStatus::Ok);  // solo never bottoms
    results.push_back(op.result);
  }
  // enq 1 ok, enq 2 ok, enq 3 FULL; deq 1, deq 2, deq EMPTY.
  EXPECT_EQ(results,
            (std::vector<std::int64_t>{1, 2, Q2::kFull, 1, 2, Q2::kEmpty}));
  EXPECT_TRUE(outcome.final_state.empty());
}

// -- explorer at n=2, n=3, both twins -------------------------------------

TEST(ZooQueue, SpecialistExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<Q2, Spec2>(
                        queue_explore_config<2>(2), specialist_maker<2>()),
                    bounds("zoo-queue-spec-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooQueue, UniversalExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<Q2, Uni2>(
                        queue_explore_config<2>(2), universal_maker<2>()),
                    bounds("zoo-queue-uni-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooQueue, SpecialistExplorerCleanN3) {
  // n=3 on capacity 2: enqueues cross the full boundary, dequeues race
  // for turns -- the hostile corner of the protocol.
  Explorer explorer(make_zoo_run_factory<Q2, Spec2>(
                        queue_explore_config<2>(3), specialist_maker<2>()),
                    bounds("zoo-queue-spec-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

TEST(ZooQueue, UniversalExplorerCleanN3) {
  Explorer explorer(make_zoo_run_factory<Q2, Uni2>(
                        queue_explore_config<2>(3), universal_maker<2>()),
                    bounds("zoo-queue-uni-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

// -- mutation: dropped claim fence -> duplicated dequeue ------------------

// One item, two racing dequeuers: without the validation collect both
// confirm the same turn and both return 100 -- the spec can only hand
// the single enqueued value to one of them.
ZooExploreConfig<Q4> duel_config() {
  ZooExploreConfig<Q4> config;
  config.n = 2;
  config.initial = {100};
  config.ops.resize(2);
  config.ops[0] = {Q4::dequeue()};
  config.ops[1] = {Q4::dequeue()};
  return config;
}

TEST(ZooQueue, MutationDropClaimFenceCaught) {
  Explorer explorer(
      make_zoo_run_factory<Q4, Spec4>(
          duel_config(),
          specialist_maker<4>(TurnQueueMutations{.drop_claim_fence = true})),
      bounds("zoo-queue-dropfence"));
  const ExploreResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  EXPECT_NE(result.artifact.violation.find("VIOLATION"), std::string::npos);
  EXPECT_FALSE(result.artifact.schedule.empty());
}

TEST(ZooQueue, IntactQueueCleanAtIdenticalBounds) {
  Explorer explorer(make_zoo_run_factory<Q4, Spec4>(duel_config(),
                                                    specialist_maker<4>()),
                    bounds("zoo-queue-fence-intact"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean()) << result.summary();
}

// -- differential: conservation on both twins under identical seeds -------

// Multiset of effective enqueues minus effective dequeues must equal
// the quiescent state, per twin; cross-twin, matching Ok sets imply
// matching final multisets.
template <class S>
void check_conservation(const ZooRunOutcome<S>& outcome, const char* tag) {
  std::vector<std::int64_t> enq, deq;
  for (const auto& op : outcome.history) {
    if (op.status != OpStatus::Ok) continue;
    if (op.op.is_enqueue && op.result != S::kFull) enq.push_back(op.result);
    if (!op.op.is_enqueue && op.result != S::kEmpty) deq.push_back(op.result);
  }
  std::vector<std::int64_t> remaining(outcome.final_state.begin(),
                                      outcome.final_state.end());
  std::vector<std::int64_t> expect = enq;
  for (const std::int64_t v : deq) {
    auto it = std::find(expect.begin(), expect.end(), v);
    ASSERT_NE(it, expect.end()) << tag << ": dequeued value " << v
                                << " was never enqueued (or dequeued twice)";
    expect.erase(it);
  }
  std::sort(expect.begin(), expect.end());
  std::sort(remaining.begin(), remaining.end());
  EXPECT_EQ(expect, remaining) << tag;
}

TEST(ZooQueue, DifferentialSpecialistVsUniversal) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto config = queue_explore_config<2>(3, seed);
    const auto spec =
        run_zoo_workload<Q2, Spec2>(config, specialist_maker<2>());
    const auto uni = run_zoo_workload<Q2, Uni2>(config, universal_maker<2>());
    ASSERT_TRUE(spec.completed && uni.completed) << "seed " << seed;
    EXPECT_TRUE(spec.linearizable)
        << "seed " << seed << ": " << spec.oracle_summary;
    EXPECT_TRUE(uni.linearizable)
        << "seed " << seed << ": " << uni.oracle_summary;
    check_conservation(spec, "specialist");
    check_conservation(uni, "universal");
  }
}

}  // namespace
}  // namespace tbwf::zoo
