// Edge cases and error handling of the simulation kernel: empty worlds,
// exhausted schedules, register bookkeeping, spec violations, stress
// configurations.
#include <gtest/gtest.h>

#include <memory>

#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

using I64 = std::int64_t;

Task spin(SimEnv& env) {
  for (;;) co_await env.yield();
}

TEST(WorldEdge, RunWithNoTasksStopsImmediately) {
  World world(2, std::make_unique<RoundRobinSchedule>());
  EXPECT_EQ(world.run(100), 0u);
  EXPECT_EQ(world.now(), 0u);
}

TEST(WorldEdge, RunZeroStepsIsANoop) {
  World world(1, std::make_unique<RoundRobinSchedule>());
  world.spawn(0, "s", [](SimEnv& env) { return spin(env); });
  EXPECT_EQ(world.run(0), 0u);
}

TEST(WorldEdge, SingleProcessWorld) {
  World world(1, std::make_unique<RoundRobinSchedule>());
  auto reg = world.make_atomic<I64>("r", 7);
  EXPECT_EQ(world.peek(reg), 7);
  world.spawn(0, "s", [](SimEnv& env) { return spin(env); });
  EXPECT_EQ(world.run(10), 10u);
}

TEST(WorldEdge, CrashingTwiceIsIdempotent) {
  World world(2, std::make_unique<RoundRobinSchedule>());
  world.spawn(0, "s", [](SimEnv& env) { return spin(env); });
  world.spawn(1, "s", [](SimEnv& env) { return spin(env); });
  world.run(10);
  world.crash(0);
  world.crash(0);
  EXPECT_TRUE(world.crashed(0));
  world.run(10);
  EXPECT_EQ(world.trace().steps_of(1), 15u);
}

TEST(WorldEdge, CellInfoTracksNamesAndCounts) {
  World world(1, std::make_unique<RoundRobinSchedule>());
  auto reg = world.make_atomic<I64>("my-register", 0);
  struct W {
    static Task run(SimEnv& env, AtomicReg<I64> reg) {
      for (int i = 0; i < 3; ++i) co_await env.write(reg, i);
      (void)co_await env.read(reg);
    }
  };
  world.spawn(0, "w", [reg](SimEnv& env) { return W::run(env, reg); });
  world.run(100);
  const auto& info = world.cell_info(reg.idx);
  EXPECT_EQ(info.name, "my-register");
  EXPECT_EQ(info.n_writes, 3u);
  EXPECT_EQ(info.n_reads, 1u);
  EXPECT_EQ(world.register_count(), 1u);
}

TEST(WorldEdge, PerProcessRngIsDeterministicAndDistinct) {
  auto sample = [](Pid p) {
    World world(2, std::make_unique<RoundRobinSchedule>());
    return world.env(p).rng().next();
  };
  EXPECT_EQ(sample(0), sample(0));
  EXPECT_NE(sample(0), sample(1));
}

TEST(WorldEdge, SeedChangesAuxRandomness) {
  WorldOptions a, b;
  a.seed = 1;
  b.seed = 2;
  World wa(1, std::make_unique<RoundRobinSchedule>(), a);
  World wb(1, std::make_unique<RoundRobinSchedule>(), b);
  EXPECT_NE(wa.aux_rng().next(), wb.aux_rng().next());
}

// -- stress: many processes, many sub-tasks, many registers ---------------------------

Task stress_worker(SimEnv& env, std::vector<AtomicReg<I64>>& regs) {
  auto& rng = env.rng();
  for (;;) {
    const auto idx = rng.below(regs.size());
    const I64 v = co_await env.read(regs[idx]);
    co_await env.write(regs[idx], v + 1);
  }
}

TEST(WorldStress, SixteenProcessesFourTasksEachStayConsistent) {
  const int n = 16;
  World world(n, std::make_unique<RandomSchedule>(99));
  std::vector<AtomicReg<I64>> regs;
  for (int i = 0; i < 32; ++i) {
    regs.push_back(world.make_atomic<I64>("r" + std::to_string(i), 0));
  }
  for (Pid p = 0; p < n; ++p) {
    for (int t = 0; t < 4; ++t) {
      world.spawn(p, "w" + std::to_string(t), [&regs](SimEnv& env) {
        return stress_worker(env, regs);
      });
    }
  }
  EXPECT_EQ(world.run(2000000), 2000000u);
  // Register values stay within the number of write responses.
  I64 total = 0;
  for (const auto& reg : regs) total += world.peek(reg);
  EXPECT_GT(total, 0);
  EXPECT_LE(static_cast<std::uint64_t>(total), world.total_writes());
  // All processes took steps; under a fair random schedule each gets
  // roughly 1/16th.
  for (Pid p = 0; p < n; ++p) {
    EXPECT_GT(world.trace().steps_of(p), 2000000u / 32);
  }
}

TEST(WorldStress, ManyCrashesManySpawns) {
  const int n = 8;
  World world(n, std::make_unique<RandomSchedule>(7));
  auto reg = world.make_atomic<I64>("r", 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "s", [reg](SimEnv& env) -> Task {
      for (;;) {
        const I64 v = co_await env.read(reg);
        co_await env.write(reg, v + 1);
      }
    });
  }
  for (Pid p = 1; p < n; ++p) {
    world.schedule_crash(p, 10000ULL * p);
  }
  world.run(200000);
  for (Pid p = 1; p < n; ++p) EXPECT_TRUE(world.crashed(p));
  EXPECT_FALSE(world.crashed(0));
  EXPECT_GT(world.peek(reg), 0);
}

// -- assertion behaviour -----------------------------------------------------------

TEST(WorldEdge, SpawnOnCrashedProcessDies) {
  World world(1, std::make_unique<RoundRobinSchedule>());
  world.spawn(0, "s", [](SimEnv& env) { return spin(env); });
  world.run(5);
  world.crash(0);
  EXPECT_DEATH(
      world.spawn(0, "late", [](SimEnv& env) { return spin(env); }),
      "crashed");
}

TEST(WorldEdge, OutOfRangePidDies) {
  World world(2, std::make_unique<RoundRobinSchedule>());
  EXPECT_DEATH(world.crash(7), "pid out of range");
}

}  // namespace
}  // namespace tbwf::sim
