// Internal invariants of the Figure 6 implementation that the paper's
// correctness argument leans on:
//   - the heartbeat gating (dest = writeDone): a process only
//     heartbeats to peers it has successfully written its counter to,
//     preserving "if q eventually considers p active forever then q
//     eventually learns the final value of counter_p[p]";
//   - counter views converge: once the system stabilizes, every
//     candidate's view of the leader's counter matches the leader's
//     own view;
//   - self-punishment happens through max(), so counter_p[p]
//     eventually stops changing (necessary for WriteMsgs to deliver).
#include <gtest/gtest.h>

#include <memory>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::World;

struct Harness {
  std::unique_ptr<World> world;
  registers::ProbabilisticAbortPolicy policy{3, 0.5, 0.5, 0.5};
  std::unique_ptr<OmegaAbortable> omega;

  explicit Harness(int n, std::uint64_t seed = 1) {
    auto specs = sim::uniform_specs(n, ActivitySpec::timely(6 * n));
    world = std::make_unique<World>(
        n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
    omega = std::make_unique<OmegaAbortable>(*world, &policy);
    omega->install_all();
    for (Pid p = 0; p < n; ++p) {
      world->spawn(p, "cand", [this](SimEnv& env) {
        return permanent_candidate(env, omega->io(env.pid()));
      });
    }
  }
};

TEST(OmegaAbortableInvariants, ActivePeersKnowTheLeadersCounter) {
  const int n = 3;
  Harness h(n, 5);
  h.world->run(6000000);

  const Pid ell = h.omega->io(0).leader;
  ASSERT_NE(ell, kNoLeader);
  for (Pid q = 0; q < n; ++q) {
    if (q == ell) continue;
    ASSERT_EQ(h.omega->io(q).leader, ell) << "system not yet stable";
    if (h.omega->hb(q).active_set[ell]) {
      // The key Section 6 invariant: q considers ell active => q has
      // ell's (final) counter value.
      EXPECT_EQ(h.omega->counter_view(q, ell),
                h.omega->counter_view(ell, ell))
          << "q=" << q << " has a stale view of the leader's counter";
    }
  }
}

TEST(OmegaAbortableInvariants, CountersStopChanging) {
  const int n = 3;
  Harness h(n, 7);
  h.world->run(4000000);
  std::vector<std::int64_t> before;
  for (Pid p = 0; p < n; ++p) before.push_back(h.omega->counter_view(p, p));
  h.world->run(4000000);
  for (Pid p = 0; p < n; ++p) {
    EXPECT_EQ(h.omega->counter_view(p, p), before[p])
        << "counter_p[p] must eventually stop changing (WriteMsgs "
           "delivery precondition)";
  }
}

TEST(OmegaAbortableInvariants, LeaderHasSmallestCounterAmongActive) {
  const int n = 4;
  Harness h(n, 9);
  h.world->run(8000000);
  for (Pid p = 0; p < n; ++p) {
    const Pid l = h.omega->io(p).leader;
    ASSERT_NE(l, kNoLeader);
    for (Pid q = 0; q < n; ++q) {
      if (!h.omega->hb(p).active_set[q]) continue;
      const auto cl = h.omega->counter_view(p, l);
      const auto cq = h.omega->counter_view(p, q);
      EXPECT_TRUE(cl < cq || (cl == cq && l <= q))
          << "p" << p << " elected p" << l << " but p" << q
          << " is active with a smaller (counter, pid)";
    }
  }
}

TEST(OmegaAbortableInvariants, NonCandidatesGoSilent) {
  // A process that stops being a candidate stops sending heartbeats and
  // eventually leaves everyone's active set.
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(6 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  registers::ProbabilisticAbortPolicy policy(13, 0.5, 0.5, 0.5);
  OmegaAbortable om(world, &policy);
  om.install_all();
  world.spawn(0, "cand", [&](SimEnv& env) {
    return permanent_candidate(env, om.io(0));
  });
  world.spawn(1, "cand", [&](SimEnv& env) {
    return permanent_candidate(env, om.io(1));
  });
  world.spawn(2, "cand", [&](SimEnv& env) {
    return never_candidate(env, om.io(2), /*dabble=*/50000);
  });
  world.run(6000000);
  EXPECT_FALSE(om.hb(0).active_set[2]);
  EXPECT_FALSE(om.hb(1).active_set[2]);
  EXPECT_EQ(om.io(2).leader, kNoLeader);
}

}  // namespace
}  // namespace tbwf::omega
