// Tests of the baseline implementations: the obstruction-free-only
// object, the CAS-based lock-free / wait-free constructions, and the
// non-gracefully-degrading booster. These are the comparison points of
// the graceful-degradation experiments, so their characteristic
// behaviours (good and bad) are themselves under test.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/boosted_wf.hpp"
#include "baselines/lf_universal.hpp"
#include "baselines/of_object.hpp"
#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::baselines {
namespace {

using qa::Counter;
using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

template <class Obj>
Task forever_worker(SimEnv& env, Obj& obj) {
  for (;;) {
    (void)co_await obj.invoke(env, Counter::Op{1});
  }
}

template <class Obj>
Task bounded_worker(SimEnv& env, Obj& obj, int ops, bool& done) {
  for (int i = 0; i < ops; ++i) {
    (void)co_await obj.invoke(env, Counter::Op{1});
  }
  done = true;
}

// -- OF-only object -------------------------------------------------------------------

TEST(OfObject, SoloCompletesQuickly) {
  World world(1, std::make_unique<sim::RoundRobinSchedule>());
  OfObject<Counter> obj(world, 0);
  bool done = false;
  world.spawn(0, "w", [&](SimEnv& env) {
    return bounded_worker(env, obj, 100, done);
  });
  world.run(100000);
  EXPECT_TRUE(done);
  EXPECT_EQ(obj.qa().peek_frontier().state, 100);
}

TEST(OfObject, ContendedProgressIsUnprotected) {
  // Under a random schedule some ops do land (lock-free-ish in practice),
  // but no per-process guarantee exists; we only check safety here:
  // counter value == total completions.
  const int n = 4;
  World world(n, std::make_unique<sim::RandomSchedule>(3));
  OfObject<Counter> obj(world, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_worker(env, obj);
    });
  }
  world.run(2000000);
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += obj.log().completed(p);
  // Up to n operations can be decided but not yet returned when the run
  // is truncated.
  EXPECT_GE(obj.qa().peek_frontier().state, static_cast<I64>(total));
  EXPECT_LE(obj.qa().peek_frontier().state, static_cast<I64>(total) + n);
  EXPECT_GT(total, 0u);
}

// -- lock-free CAS universal -----------------------------------------------------------

TEST(LfUniversal, AllOpsApplyExactlyOnce) {
  const int n = 4;
  World world(n, std::make_unique<sim::RandomSchedule>(5));
  LfUniversal<Counter> obj(world, 0);
  std::vector<char> done(n, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, p](SimEnv& env) {
      return bounded_worker(env, obj, 50,
                            reinterpret_cast<bool&>(done[p]));
    });
  }
  ASSERT_TRUE(world.run_until(
      [&] {
        return std::all_of(done.begin(), done.end(),
                           [](char d) { return d != 0; });
      },
      20000000));
  EXPECT_EQ(obj.peek(world).state, n * 50);
}

TEST(LfUniversal, SystemWideProgressUnderLockstep) {
  // Round-robin lockstep: the QA-based OF object livelocks here, but the
  // CAS loop guarantees some process always advances.
  const int n = 2;
  World world(n, std::make_unique<sim::RoundRobinSchedule>());
  LfUniversal<Counter> obj(world, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_worker(env, obj);
    });
  }
  world.run(100000);
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += obj.log().completed(p);
  EXPECT_GT(total, 1000u);  // lock-free: throughput survives lockstep
}

// -- wait-free helping construction -----------------------------------------------------

TEST(WfHerlihy, EveryProcessCompletesUnderLockstep) {
  const int n = 4;
  World world(n, std::make_unique<sim::RoundRobinSchedule>());
  WfHerlihy<Counter> obj(world, 0);
  std::vector<char> done(n, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&, p](SimEnv& env) {
      return bounded_worker(env, obj, 50,
                            reinterpret_cast<bool&>(done[p]));
    });
  }
  ASSERT_TRUE(world.run_until(
      [&] {
        return std::all_of(done.begin(), done.end(),
                           [](char d) { return d != 0; });
      },
      20000000));
  EXPECT_EQ(obj.peek(world).state, n * 50);
}

TEST(WfHerlihy, HelpingAppliesOpsOfSlowProcesses) {
  // p1 announces an op then stalls forever; helpers must apply it.
  const int n = 2;
  std::vector<ActivitySpec> specs = {ActivitySpec::timely(4),
                                     ActivitySpec::stall(2000, 100000000)};
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 7));
  WfHerlihy<Counter> obj(world, 0);
  world.spawn(0, "fast", [&](SimEnv& env) {
    return forever_worker(env, obj);
  });
  bool done1 = false;
  world.spawn(1, "slow", [&](SimEnv& env) {
    return bounded_worker(env, obj, 1, done1);
  });
  world.run(200000);
  // p1 stalled mid-protocol, but its announced increment was combined
  // into some helper transition: state counts it.
  const auto rec = obj.peek(world);
  const I64 p0_ops = static_cast<I64>(obj.log().completed(0));
  EXPECT_GE(rec.state, p0_ops);
  EXPECT_LE(rec.state, p0_ops + 1 + 1);
}

// -- the non-graceful booster -------------------------------------------------------------

TEST(BoostedWf, AllTimelyEveryoneProgresses) {
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 9));
  BoostedWf<Counter> obj(world, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_worker(env, obj);
    });
  }
  world.run(4000000);
  for (Pid p = 0; p < n; ++p) {
    EXPECT_GT(obj.log().completed(p), 10u) << "p" << p;
  }
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += obj.log().completed(p);
  EXPECT_GE(obj.qa().peek_frontier().state, static_cast<I64>(total));
  EXPECT_LE(obj.qa().peek_frontier().state, static_cast<I64>(total) + n);
}

TEST(BoostedWf, StalledTokenOwnerBlocksEveryone) {
  // The headline failure TBWF fixes. A process that stops being timely
  // exactly while holding the token freezes every other process: the
  // booster waits on the owner with no timeout, because its correctness
  // argument assumes ALL processes are timely. We realize the stall as
  // a crash (the limit case of untimeliness); the TBWF stack under the
  // same event keeps every surviving timely process wait-free.
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  BoostedWf<Counter> obj(world, 0);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_worker(env, obj);
    });
  }
  // Run until p3 owns the token in panic mode, then stall it forever.
  const bool captured = world.run_until(
      [&] {
        return world.peek(obj.token_handle()).owner == 3 &&
               world.peek(obj.panic_handle());
      },
      30000000,
      /*check_every=*/1);
  ASSERT_TRUE(captured) << "p3 never acquired the token";
  world.crash(3);

  std::vector<std::uint64_t> before(n);
  for (Pid p = 0; p < n; ++p) before[p] = obj.log().completed(p);
  world.run(4000000);
  // Nobody makes progress: the token is stuck with the crashed owner.
  std::uint64_t after_total = 0, before_total = 0;
  for (Pid p = 0; p < 3; ++p) {
    before_total += before[p];
    after_total += obj.log().completed(p);
  }
  EXPECT_LE(after_total, before_total + 3)
      << "booster should freeze after the owner stalls";

  // Control: the TBWF stack with the same crash keeps the timely
  // survivors progressing.
  World world2(n, std::make_unique<sim::TimelinessSchedule>(specs, 11));
  core::TbwfSystem<Counter> sys(world2, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world2.spawn(p, "w", [&](SimEnv& env) {
      return forever_worker(env, sys.object());
    });
  }
  world2.run(2000000);
  world2.crash(3);
  std::vector<std::uint64_t> before2(n);
  for (Pid p = 0; p < 3; ++p) before2[p] = sys.object().log().completed(p);
  world2.run(4000000);
  for (Pid p = 0; p < 3; ++p) {
    EXPECT_GT(sys.object().log().completed(p), before2[p] + 10)
        << "TBWF survivor p" << p << " must keep completing";
  }
}

}  // namespace
}  // namespace tbwf::baselines
