// Tests of the public facade (TbwfSystem) across the backend matrix:
// both Omega-Delta implementations x both QA register bases, plus the
// non-counter types through the facade.
#include <gtest/gtest.h>

#include <memory>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::core {
namespace {

using qa::Counter;
using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

template <class Obj>
Task n_ops(SimEnv& env, Obj& obj, int ops, int& done) {
  for (int i = 0; i < ops; ++i) {
    (void)co_await obj.invoke(env, Counter::Op{1});
  }
  ++done;
}

TEST(Facade, AtomicOmegaAtomicBase) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 1));
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
  int done = 0;
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return n_ops(env, sys.object(), 20, done);
    });
  }
  ASSERT_TRUE(world.run_until([&] { return done == n; }, 50000000));
  EXPECT_EQ(sys.object().qa().peek_frontier().state, n * 20);
}

TEST(Facade, AtomicOmegaAbortableBase) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 2));
  registers::ProbabilisticAbortPolicy qa_policy(5, 0.6, 0.6, 0.5);
  TbwfSystem<Counter, qa::AbortableBase> sys(
      world, 0, OmegaBackend::AtomicRegisters, &qa_policy);
  int done = 0;
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return n_ops(env, sys.object(), 20, done);
    });
  }
  ASSERT_TRUE(world.run_until([&] { return done == n; }, 50000000));
  EXPECT_EQ(sys.object().qa().peek_frontier().state, n * 20);
}

TEST(Facade, AbortableOmegaAtomicBase) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(6 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 3));
  registers::ProbabilisticAbortPolicy omega_policy(7, 0.5, 0.5, 0.5);
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AbortableRegisters,
                          nullptr, &omega_policy);
  int done = 0;
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return n_ops(env, sys.object(), 10, done);
    });
  }
  ASSERT_TRUE(world.run_until([&] { return done == n; }, 100000000));
  EXPECT_EQ(sys.object().qa().peek_frontier().state, n * 10);
}

TEST(Facade, OnceRegisterConsensusThroughFacade) {
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 4));
  TbwfSystem<qa::OnceRegister> sys(world, qa::OnceRegister::kUndecided,
                                   OmegaBackend::AtomicRegisters);
  std::vector<I64> decided(n, qa::OnceRegister::kUndecided);
  std::vector<char> won(n, 0);
  int done = 0;
  struct Propose {
    static Task run(SimEnv& env, TbwfObject<qa::OnceRegister>& obj,
                    I64& out, char& w, int& done) {
      const auto r = co_await obj.invoke(
          env, qa::OnceRegister::propose(500 + env.pid()));
      out = r.value;
      w = r.won ? 1 : 0;
      ++done;
    }
  };
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "c", [&, p](SimEnv& env) {
      return Propose::run(env, sys.object(), decided[p], won[p], done);
    });
  }
  ASSERT_TRUE(world.run_until([&] { return done == n; }, 50000000));
  int winners = 0;
  for (Pid p = 0; p < n; ++p) {
    EXPECT_EQ(decided[p], decided[0]) << "agreement violated";
    winners += won[p];
  }
  EXPECT_EQ(winners, 1);
  EXPECT_GE(decided[0], 500);
  EXPECT_LT(decided[0], 500 + n);
}

TEST(Facade, OmegaIoIsSharedWithObject) {
  World world(2, std::make_unique<sim::RoundRobinSchedule>());
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
  // Before anyone invokes, no process is a candidate.
  EXPECT_FALSE(sys.omega_io(0).candidate);
  EXPECT_FALSE(sys.omega_io(1).candidate);
  int done = 0;
  world.spawn(0, "w", [&](SimEnv& env) {
    return n_ops(env, sys.object(), 1, done);
  });
  world.run(100);  // mid-operation: p0 competes
  if (done == 0) EXPECT_TRUE(sys.omega_io(0).candidate);
  world.run(5000000);
  EXPECT_EQ(done, 1);
  // After completing, p0 retired its candidacy.
  EXPECT_FALSE(sys.omega_io(0).candidate);
}

}  // namespace
}  // namespace tbwf::core
