// LeaseElector unit tests: the owner-sentinel regression, 40-bit clock
// wraparound, fencing, and the adaptive LeaseCalibrator. All timing
// here is synthetic -- the elector takes an injectable clock, so these
// tests are exact, single-threaded, and instant.
#include <atomic>
#include <chrono>
#include <cstdint>

#include <gtest/gtest.h>

#include "rt/rt_tbwf.hpp"

namespace tbwf::rt {
namespace {

using std::chrono::microseconds;
using std::chrono::nanoseconds;

// The elector's ClockFn is a plain function pointer, so the synthetic
// clock lives in a file-scope atomic.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() { return g_fake_now.load(); }

LeaseElector make_elector(std::uint64_t term_ns, std::uint64_t start_ns = 0) {
  g_fake_now.store(start_ns);
  return LeaseElector(nanoseconds(term_ns), &fake_clock);
}

// -- satellite 1: the kNoOwner sentinel regression ---------------------------
//
// The seed packed kNoOwner into the 24-bit owner field as kNoOwner >> 8
// but compared owner() against the unshifted 32-bit constant, so a
// freshly constructed (or released) elector never reported "no owner".
// The sentinel is now a single 24-bit constant used on both sides.

TEST(LeaseElectorSentinelTest, SentinelFitsTheOwnerField) {
  // A 24-bit field can represent kNoOwner without truncation; if the
  // sentinel ever grows past the field, packing would corrupt it again.
  static_assert(LeaseElector::kNoOwner <= 0xFFFFFFu);
  static_assert((LeaseElector::kNoOwner & 0xFFFFFFu) ==
                LeaseElector::kNoOwner);
}

TEST(LeaseElectorSentinelTest, FreshElectorHasNoOwner) {
  LeaseElector e = make_elector(1000000);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
}

TEST(LeaseElectorSentinelTest, ReleaseRestoresTheSentinel) {
  LeaseElector e = make_elector(1000000);
  ASSERT_TRUE(e.try_lead(3));
  EXPECT_EQ(e.owner(), 3u);
  e.release(3);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
  // And the freed word is immediately acquirable by anyone.
  EXPECT_TRUE(e.try_lead(7));
  EXPECT_EQ(e.owner(), 7u);
}

TEST(LeaseElectorSentinelTest, MaxRealTidRoundTrips) {
  // The largest real tid (one below the sentinel) must survive the
  // 24-bit pack/unpack intact.
  LeaseElector e = make_elector(1000000);
  const std::uint32_t tid = LeaseElector::kNoOwner - 1;
  ASSERT_TRUE(e.try_lead(tid));
  EXPECT_EQ(e.owner(), tid);
}

// -- satellite 2: 40-bit expiry wraparound -----------------------------------
//
// The 40-bit nanosecond clock wraps every ~18.3 minutes. The seed
// compared `now < expiry` directly, so a lease whose expiry wrapped
// past 2^40 read as already expired (instantly stealable), and a stale
// pre-wrap expiry read as live forever after the clock wrapped. The
// ring comparison fixes both; these tests pin the exact boundary cases
// with a synthetic clock.

constexpr std::uint64_t kWrap = 1ULL << 40;

TEST(LeaseElectorWrapTest, LeaseStraddlingTheWrapIsLive) {
  // Acquire 1 us before the clock wraps with a 10 us term: the packed
  // expiry is a *small* number (9 us past zero). The lease must still
  // be held and not stealable.
  LeaseElector e = make_elector(10000, kWrap - 1000);
  ASSERT_TRUE(e.try_lead(1));
  EXPECT_EQ(e.owner(), 1u);
  EXPECT_FALSE(e.try_lead(2));

  // Cross the wrap; the lease has 9 us left.
  g_fake_now.store(kWrap + 5000);
  EXPECT_EQ(e.owner(), 1u);
  EXPECT_FALSE(e.try_lead(2));

  // Past the wrapped expiry it must become stealable.
  g_fake_now.store(kWrap + 20000);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
  EXPECT_TRUE(e.try_lead(2));
  EXPECT_EQ(e.owner(), 2u);
}

TEST(LeaseElectorWrapTest, StaleExpiryIsNotImmortalAfterTheWrap) {
  // Acquire just before the wrap so the expiry stays below 2^40, then
  // let the clock wrap. now (small) < expiry (huge) -- the naive
  // comparison would call this lease live forever. The ring comparison
  // sees expiry ~2^40 *behind* now and expires it.
  LeaseElector e = make_elector(10000, kWrap - 20000);
  ASSERT_TRUE(e.try_lead(1));  // expiry = 2^40 - 10000
  g_fake_now.store(kWrap + 1000);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
  EXPECT_TRUE(e.try_lead(2));
}

TEST(LeaseElectorWrapTest, ValidateRespectsTheRingComparison) {
  LeaseElector e = make_elector(10000, kWrap - 1000);
  std::uint64_t token = 0;
  ASSERT_TRUE(e.try_lead(1, &token));
  g_fake_now.store(kWrap + 5000);  // wrapped, lease still live
  EXPECT_TRUE(e.validate(1, token));
  g_fake_now.store(kWrap + 20000);  // wrapped AND expired
  EXPECT_FALSE(e.validate(1, token));
}

TEST(LeaseElectorWrapTest, TermsAreClampedToTheHalfWindowSafeCap) {
  // A pathological term must not place the expiry past the half-window
  // (where the ring comparison would read a live lease as expired).
  LeaseElector e(std::chrono::hours(24), &fake_clock);
  g_fake_now.store(0);
  ASSERT_TRUE(e.try_lead(1));
  EXPECT_EQ(e.owner(), 1u);  // live despite the absurd requested term
  g_fake_now.store(LeaseElector::kMaxTermNs + 1000);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);  // expired at the cap
}

// -- fencing ----------------------------------------------------------------

TEST(LeaseElectorFenceTest, TokenSurvivesRenewalButNotReacquisition) {
  LeaseElector e = make_elector(10000);
  std::uint64_t t1 = 0;
  ASSERT_TRUE(e.try_lead(1, &t1));
  // Renewal: same tenure, same token.
  g_fake_now.fetch_add(5000);
  std::uint64_t t1b = 0;
  ASSERT_TRUE(e.try_lead(1, &t1b));
  EXPECT_EQ(t1b, t1);
  EXPECT_TRUE(e.validate(1, t1));
  // Lapse and reacquire: new tenure, new token; the old one is dead.
  g_fake_now.fetch_add(50000);
  std::uint64_t t2 = 0;
  ASSERT_TRUE(e.try_lead(1, &t2));
  EXPECT_GT(t2, t1);
  EXPECT_TRUE(e.validate(1, t2));
  EXPECT_FALSE(e.validate(1, t1));
}

TEST(LeaseElectorFenceTest, StolenLeaseFencesOutTheOldHolder) {
  LeaseElector e = make_elector(10000);
  std::uint64_t t1 = 0;
  ASSERT_TRUE(e.try_lead(1, &t1));
  g_fake_now.fetch_add(50000);  // thread 1 sleeps through its term
  std::uint64_t t2 = 0;
  ASSERT_TRUE(e.try_lead(2, &t2));
  EXPECT_FALSE(e.validate(1, t1));  // wrong owner
  EXPECT_TRUE(e.validate(2, t2));
  // Even if thread 2 releases (owner field free again), thread 1's old
  // token must never validate.
  e.release(2);
  EXPECT_FALSE(e.validate(1, t1));
}

TEST(LeaseElectorFenceTest, RevokeKillsTheTokenImmediately) {
  // The supervisor-restart path: the lease is still live (the dead
  // worker's term has not lapsed) when revoke fires on its behalf.
  LeaseElector e = make_elector(1000000);
  std::uint64_t t1 = 0;
  ASSERT_TRUE(e.try_lead(1, &t1));
  const std::uint64_t fence_before = e.fence();
  e.revoke(1);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
  EXPECT_GT(e.fence(), fence_before);
  // The revived incarnation replays the stale token: must fail, even
  // though nobody else has touched the lease in between.
  EXPECT_FALSE(e.validate(1, t1));
  // And a fresh acquisition by the same tid gets a fresh token.
  std::uint64_t t2 = 0;
  ASSERT_TRUE(e.try_lead(1, &t2));
  EXPECT_GT(t2, t1);
  EXPECT_FALSE(e.validate(1, t1));
  EXPECT_TRUE(e.validate(1, t2));
}

TEST(LeaseElectorFenceTest, RevokeOfANonHolderIsANoOp) {
  LeaseElector e = make_elector(1000000);
  std::uint64_t t1 = 0;
  ASSERT_TRUE(e.try_lead(1, &t1));
  const std::uint64_t fence_before = e.fence();
  e.revoke(2);  // tid 2 holds nothing
  EXPECT_EQ(e.owner(), 1u);
  EXPECT_EQ(e.fence(), fence_before);
  EXPECT_TRUE(e.validate(1, t1));
}

// -- the adaptive calibrator -------------------------------------------------

TEST(RtLeaseCalibratorTest, ConvergesToTheObservedLatency) {
  LeaseCalibrator c(LeaseCalibrator::Options{}, /*initial_latency_ns=*/10000);
  for (int i = 0; i < 200; ++i) c.observe(1000);
  // EWMA with alpha 0.125 converges geometrically; 200 samples is
  // plenty for +-1 ns.
  EXPECT_NEAR(static_cast<double>(c.ewma_ns()), 1000.0, 2.0);
  EXPECT_EQ(c.samples(), 200u);
  // term = 16 * ewma, above the 2 us floor here.
  EXPECT_NEAR(static_cast<double>(c.term_ns()), 16000.0, 64.0);
}

TEST(RtLeaseCalibratorTest, TermClampsToFloorAndCeil) {
  LeaseCalibrator c;
  for (int i = 0; i < 300; ++i) c.observe(1);  // 16 * 1 ns << floor
  EXPECT_EQ(c.term_ns(), c.options().floor_ns);
  for (int i = 0; i < 300; ++i) c.observe(100000000);  // 100 ms >> ceil
  EXPECT_EQ(c.term_ns(), c.options().ceil_ns);
}

TEST(RtLeaseCalibratorTest, ElectorFollowsTheCalibratedTerm) {
  LeaseCalibrator c(LeaseCalibrator::Options{}, /*initial_latency_ns=*/1000);
  LeaseElector e = make_elector(999999999);
  e.set_calibrator(&c);
  EXPECT_EQ(e.current_term_ns(), c.term_ns());
  ASSERT_TRUE(e.try_lead(1));
  // The granted lease used the calibrated term (16 us), not the fixed
  // ~1 s constructor term: it must lapse right after 16 us.
  g_fake_now.store(c.term_ns() + 1000);
  EXPECT_EQ(e.owner(), LeaseElector::kNoOwner);
  // Detaching restores the (clamped) constructor term.
  e.set_calibrator(nullptr);
  EXPECT_EQ(e.current_term_ns(), 999999999u);
}

}  // namespace
}  // namespace tbwf::rt
