// Tests of schedules and activity specs: the timeliness adversary must
// actually deliver the timeliness patterns the experiments rely on.
#include <gtest/gtest.h>

#include <memory>

#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

Task spin(SimEnv& env) {
  for (;;) co_await env.yield();
}

void spawn_spinners(World& w) {
  for (Pid p = 0; p < w.n(); ++p) {
    w.spawn(p, "spin", [](SimEnv& env) { return spin(env); });
  }
}

// -- ActivitySpec window logic ---------------------------------------------------

TEST(ActivitySpec, AlwaysActive) {
  auto s = ActivitySpec::eager();
  EXPECT_TRUE(s.active_at(0));
  EXPECT_TRUE(s.active_at(1000000));
}

TEST(ActivitySpec, SilentNeverActive) {
  auto s = ActivitySpec::silent();
  EXPECT_FALSE(s.active_at(0));
  EXPECT_FALSE(s.active_at(42));
}

TEST(ActivitySpec, FlickerAlternates) {
  auto s = ActivitySpec::flicker(/*on=*/10, /*off=*/5);
  for (Step t = 0; t < 10; ++t) EXPECT_TRUE(s.active_at(t)) << t;
  for (Step t = 10; t < 15; ++t) EXPECT_FALSE(s.active_at(t)) << t;
  EXPECT_TRUE(s.active_at(15));
  EXPECT_FALSE(s.active_at(29));
  EXPECT_TRUE(s.active_at(30));
}

TEST(ActivitySpec, FlickerPhaseShifts) {
  auto s = ActivitySpec::flicker(10, 5, /*phase=*/10);
  EXPECT_FALSE(s.active_at(0));  // starts inside the off-window
  EXPECT_TRUE(s.active_at(5));
}

TEST(ActivitySpec, StallWindow) {
  auto s = ActivitySpec::stall(100, 200);
  EXPECT_TRUE(s.active_at(99));
  EXPECT_FALSE(s.active_at(100));
  EXPECT_FALSE(s.active_at(199));
  EXPECT_TRUE(s.active_at(200));
}

TEST(ActivitySpec, CrashMakesInactive) {
  auto s = ActivitySpec::eager().crash(50);
  EXPECT_TRUE(s.active_at(49));
  EXPECT_FALSE(s.active_at(50));
}

// -- TimelinessSchedule ------------------------------------------------------------

TEST(TimelinessSchedule, TimelyProcessMeetsItsBound) {
  const int n = 4;
  std::vector<ActivitySpec> specs;
  specs.push_back(ActivitySpec::timely(8));
  for (int i = 1; i < n; ++i) specs.push_back(ActivitySpec::eager(3.0));
  auto w = std::make_unique<World>(
      n, std::make_unique<TimelinessSchedule>(specs, /*seed=*/1));
  spawn_spinners(*w);
  w->run(10000);
  const auto v = w->trace().timeliness(0);
  EXPECT_TRUE(v.timely_with_bound(8))
      << "empirical bound " << v.empirical_bound;
}

TEST(TimelinessSchedule, SilentProcessTakesNoSteps) {
  std::vector<ActivitySpec> specs = {ActivitySpec::timely(4),
                                     ActivitySpec::silent()};
  auto w = std::make_unique<World>(
      2, std::make_unique<TimelinessSchedule>(specs, 1));
  spawn_spinners(*w);
  w->run(1000);
  EXPECT_EQ(w->trace().steps_of(1), 0u);
  EXPECT_EQ(w->trace().steps_of(0), 1000u);
}

TEST(TimelinessSchedule, FlickerProcessIsNotTimely) {
  std::vector<ActivitySpec> specs = {
      ActivitySpec::timely(4),
      ActivitySpec::flicker(/*on=*/50, /*off=*/200)};
  auto w = std::make_unique<World>(
      2, std::make_unique<TimelinessSchedule>(specs, 7));
  spawn_spinners(*w);
  w->run(5000);
  const auto v = w->trace().timeliness(1);
  EXPECT_GT(v.steps_taken, 0u);          // it does run sometimes...
  EXPECT_GE(v.empirical_bound, 200u);    // ...but with huge gaps
  EXPECT_FALSE(v.timely_with_bound(100));
}

TEST(TimelinessSchedule, CrashedProcessStopsForever) {
  std::vector<ActivitySpec> specs = {ActivitySpec::timely(4),
                                     ActivitySpec::eager().crash(100)};
  auto w = std::make_unique<World>(
      2, std::make_unique<TimelinessSchedule>(specs, 3));
  // Crashes come from the world's crash list; mirror the spec.
  w->schedule_crash(1, 100);
  spawn_spinners(*w);
  w->run(2000);
  EXPECT_TRUE(w->crashed(1));
  EXPECT_LE(w->trace().steps_of(1), 100u);
  EXPECT_GE(w->trace().steps_of(0), 1900u);
}

TEST(TimelinessSchedule, MultipleTimelyBoundsAllHold) {
  const int n = 6;
  std::vector<ActivitySpec> specs;
  for (int i = 0; i < 3; ++i) specs.push_back(ActivitySpec::timely(12));
  for (int i = 3; i < n; ++i) specs.push_back(ActivitySpec::eager());
  auto w = std::make_unique<World>(
      n, std::make_unique<TimelinessSchedule>(specs, 99));
  spawn_spinners(*w);
  w->run(20000);
  for (Pid p = 0; p < 3; ++p) {
    EXPECT_TRUE(w->trace().timeliness(p).timely_with_bound(12)) << p;
  }
}

TEST(TimelinessSchedule, IntendedTimelyReportsGuaranteedPids) {
  std::vector<ActivitySpec> specs = {
      ActivitySpec::timely(4), ActivitySpec::eager(),
      ActivitySpec::timely_flicker(4, 10, 10), ActivitySpec::timely(9)};
  TimelinessSchedule sched(specs, 1);
  const auto t = sched.intended_timely();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], 0);
  EXPECT_EQ(t[1], 3);
}

TEST(TimelinessSchedule, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    std::vector<ActivitySpec> specs = {ActivitySpec::timely(5),
                                       ActivitySpec::eager(),
                                       ActivitySpec::eager(2.0)};
    auto w = std::make_unique<World>(
        3, std::make_unique<TimelinessSchedule>(specs, seed));
    spawn_spinners(*w);
    w->run(500);
    std::vector<Step> counts;
    for (Pid p = 0; p < 3; ++p) counts.push_back(w->trace().steps_of(p));
    return counts;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

// -- RandomSchedule -------------------------------------------------------------------

TEST(RandomSchedule, WeightsBiasStepShares) {
  auto w = std::make_unique<World>(
      2, std::make_unique<RandomSchedule>(11, std::vector<double>{1.0, 9.0}));
  spawn_spinners(*w);
  w->run(10000);
  const double share1 =
      static_cast<double>(w->trace().steps_of(1)) / 10000.0;
  EXPECT_NEAR(share1, 0.9, 0.03);
}

TEST(RandomSchedule, SkipsNonRunnable) {
  auto w = std::make_unique<World>(2, std::make_unique<RandomSchedule>(1));
  spawn_spinners(*w);
  w->schedule_crash(0, 10);
  w->run(100);
  EXPECT_EQ(w->trace().steps_of(0) + w->trace().steps_of(1), 100u);
  EXPECT_GE(w->trace().steps_of(1), 90u);
}

// -- ScriptedSchedule ------------------------------------------------------------------

TEST(ScriptedSchedule, StopsWhenExhausted) {
  auto w = std::make_unique<World>(
      1, std::make_unique<ScriptedSchedule>(std::vector<Pid>{0, 0, 0}));
  spawn_spinners(*w);
  EXPECT_EQ(w->run(100), 3u);
}

TEST(ScriptedSchedule, LoopsWhenAsked) {
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(std::vector<Pid>{0, 1},
                                            /*loop=*/true));
  spawn_spinners(*w);
  EXPECT_EQ(w->run(100), 100u);
  EXPECT_EQ(w->trace().steps_of(0), 50u);
}

// -- RoundRobin fallback behaviour -------------------------------------------------------

TEST(RoundRobinSchedule, AllCrashedStopsRun) {
  auto w = std::make_unique<World>(2,
                                   std::make_unique<RoundRobinSchedule>());
  spawn_spinners(*w);
  w->schedule_crash(0, 5);
  w->schedule_crash(1, 5);
  const Step taken = w->run(100);
  EXPECT_LE(taken, 6u);
}

}  // namespace
}  // namespace tbwf::sim
