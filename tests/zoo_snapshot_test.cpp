// Zoo object 1: the wait-free atomic snapshot, as specialist
// (WfSnapshot, double-collect with writer-embedded scans) and as
// QA-universal twin (UniversalZoo/BatchedZoo over SnapshotType), both
// driven through the SAME harness: explorer + Wing-Gong oracle at
// n = 2, 3, mutation seams that the tooling provably bites on
// (dropped embedded scan -> non-linearizable; refused borrow ->
// starvation caught by conformance), and differential
// universal-vs-specialist cross-checks under identical seeds.
#include <gtest/gtest.h>

#include <memory>

#include "core/conformance.hpp"
#include "core/tbwf_object.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "verify/explorer.hpp"
#include "zoo/snapshot.hpp"
#include "zoo/zoo_harness.hpp"

namespace tbwf::zoo {
namespace {

using verify::ExploreResult;
using verify::Explorer;
using verify::ExplorerOptions;
using verify::HistoryOp;
using verify::OpStatus;

using SpecRun = ZooExploredRun<SnapshotType, WfSnapshot>;
using UniSnap = UniversalZoo<SnapshotType>;
using UniRun = ZooExploredRun<SnapshotType, UniSnap>;
using BatSnap = BatchedZoo<SnapshotType>;
using BatRun = ZooExploredRun<SnapshotType, BatSnap>;

SpecRun::Maker specialist_maker(SnapshotMutations m = {}) {
  return [m](sim::World& w, const SnapshotType::State& init) {
    auto obj = std::make_unique<WfSnapshot>(w, init);
    obj->set_mutations(m);
    return obj;
  };
}

UniRun::Maker universal_maker() {
  return [](sim::World& w, const SnapshotType::State& init) {
    return std::make_unique<UniSnap>(w, init);
  };
}

BatRun::Maker batched_maker() {
  return [](sim::World& w, const SnapshotType::State& init) {
    qa::BatchedQaUniversal<SnapshotType>::Options options;
    options.patience = 1;
    options.combine_attempts = 2;
    return std::make_unique<BatSnap>(w, init, nullptr, options);
  };
}

ExplorerOptions bounds(const char* name, int max_runs = 60000) {
  ExplorerOptions opt;
  opt.name = name;
  opt.max_depth = 500;
  opt.max_runs = max_runs;
  return opt;
}

// -- explorer at n=2, n=3, both twins -------------------------------------

TEST(ZooSnapshot, SpecialistExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, WfSnapshot>(
                        snapshot_explore_config(2), specialist_maker()),
                    bounds("zoo-snap-spec-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooSnapshot, UniversalExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, UniSnap>(
                        snapshot_explore_config(2), universal_maker()),
                    bounds("zoo-snap-uni-n2"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 10000)
      << result.summary();
}

TEST(ZooSnapshot, BatchedExplorerCleanN2) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, BatSnap>(
                        snapshot_explore_config(2), batched_maker()),
                    bounds("zoo-snap-bat-n2", 12000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

TEST(ZooSnapshot, SpecialistExplorerCleanN3) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, WfSnapshot>(
                        snapshot_explore_config(3), specialist_maker()),
                    bounds("zoo-snap-spec-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

TEST(ZooSnapshot, UniversalExplorerCleanN3) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, UniSnap>(
                        snapshot_explore_config(3), universal_maker()),
                    bounds("zoo-snap-uni-n3", 8000));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean() || result.stats.runs >= 5000)
      << result.summary();
}

// -- mutation 1: dropped embedded scan -> non-linearizable ----------------

// The scanner-vs-double-updater workload: p0 only scans; p1 updates
// twice, so a dirty scan borrows p1's second embedded view. With
// non-zero initial segments a zeroed embedded view can never be a
// legal scan result.
ZooExploreConfig<SnapshotType> borrow_config() {
  ZooExploreConfig<SnapshotType> config;
  config.n = 2;
  config.initial = {5, 6};
  config.ops.resize(2);
  config.ops[0] = {SnapshotType::scan()};
  config.ops[1] = {SnapshotType::update(1, 7), SnapshotType::update(1, 8)};
  return config;
}

TEST(ZooSnapshot, MutationDropEmbeddedScanCaught) {
  Explorer explorer(
      make_zoo_run_factory<SnapshotType, WfSnapshot>(
          borrow_config(),
          specialist_maker(SnapshotMutations{.drop_embedded_scan = true})),
      bounds("zoo-snap-dropscan"));
  const ExploreResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  EXPECT_NE(result.artifact.violation.find("VIOLATION"), std::string::npos);
  EXPECT_FALSE(result.artifact.schedule.empty());
}

TEST(ZooSnapshot, IntactSnapshotCleanAtIdenticalBounds) {
  Explorer explorer(make_zoo_run_factory<SnapshotType, WfSnapshot>(
                        borrow_config(), specialist_maker()),
                    bounds("zoo-snap-intact"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean()) << result.summary();
}

// -- mutation 2: refused borrow -> scanner starvation (conformance) -------

core::ConformanceReport starvation_run(bool never_borrow) {
  const int n = 2;
  // The classic double-collect adversary, as an exact script: one full
  // update by p1 is 6 steps (4-read embedded scan + own read + write),
  // one collect by p0 is 2 reads. Looping [p1 x6, p0 x2] lands exactly
  // one p1 write between every pair of p0 collects, so p0's
  // double-collect stays dirty forever -- yet p0 remains timely (a
  // step every <= 7 global steps). Only the borrow rule lets p0
  // finish; refusing it starves a timely process, which is precisely
  // what the conformance checker must flag.
  sim::World world(n, std::make_unique<sim::ScriptedSchedule>(
                          std::vector<sim::Pid>{1, 1, 1, 1, 1, 1, 0, 0},
                          /*loop_forever=*/true));
  WfSnapshot snap(world, SnapshotType::initial(n));
  snap.set_mutations(SnapshotMutations{.never_borrow = never_borrow});
  core::OpLog log(n);

  struct Worker {
    static sim::Task scans(sim::SimEnv& env, WfSnapshot& snap,
                           core::OpLog& log) {
      for (;;) {
        ++log.started[0];
        (void)co_await snap.invoke(env, SnapshotType::scan());
        log.completions[0].push_back(env.now());
      }
    }
    static sim::Task updates(sim::SimEnv& env, WfSnapshot& snap,
                             core::OpLog& log) {
      std::int64_t v = 0;
      for (;;) {
        ++log.started[1];
        (void)co_await snap.invoke(env, SnapshotType::update(1, ++v));
        log.completions[1].push_back(env.now());
      }
    }
  };
  world.spawn(0, "scan", [&](sim::SimEnv& env) {
    return Worker::scans(env, snap, log);
  });
  world.spawn(1, "upd", [&](sim::SimEnv& env) {
    return Worker::updates(env, snap, log);
  });
  world.run(300000);

  core::ConformanceOptions copt;
  copt.timely_bound = 64;
  copt.stabilization = 50000;
  copt.max_completion_gap = 50000;
  copt.min_suffix = 100000;
  return core::check_chaos_conformance(world.trace(), log, sim::FaultPlan{},
                                       {0, 1}, copt);
}

TEST(ZooSnapshot, MutationNeverBorrowStarvesTheScanner) {
  const auto report = starvation_run(true);
  ASSERT_FALSE(report.ok) << report.summary();
  bool wait_freedom_violated = false;
  for (const std::string& v : report.violations) {
    if (v.find("wait-freedom") != std::string::npos) {
      wait_freedom_violated = true;
    }
  }
  EXPECT_TRUE(wait_freedom_violated) << report.summary();
}

TEST(ZooSnapshot, IntactBorrowKeepsTheScannerWaitFree) {
  const auto report = starvation_run(false);
  EXPECT_TRUE(report.ok) << report.summary();
}

// -- differential: specialist vs universal under identical seeds ----------

// Final abstract state implied by the Ok fates: segment p holds the
// value of p's LAST Ok update (updates to one segment are issued by
// one process, hence totally ordered by program order).
SnapshotType::State expected_final(
    const ZooExploreConfig<SnapshotType>& config,
    const std::vector<HistoryOp<SnapshotType>>& history) {
  SnapshotType::State state = config.initial;
  for (const auto& op : history) {
    if (op.status == OpStatus::Ok && op.op.is_update) {
      state[static_cast<std::size_t>(op.op.index)] = op.op.value;
    }
  }
  return state;
}

TEST(ZooSnapshot, DifferentialSpecialistVsUniversal) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto config = snapshot_explore_config(2, 2, seed);
    const auto spec = run_zoo_workload<SnapshotType, WfSnapshot>(
        config, specialist_maker());
    const auto uni = run_zoo_workload<SnapshotType, UniSnap>(
        config, universal_maker());
    ASSERT_TRUE(spec.completed && uni.completed) << "seed " << seed;
    EXPECT_TRUE(spec.linearizable) << "seed " << seed << ": "
                                   << spec.oracle_summary;
    EXPECT_TRUE(uni.linearizable) << "seed " << seed << ": "
                                  << uni.oracle_summary;
    // Each twin's quiescent state must equal the state its own Ok
    // fates imply; when the Ok sets agree the states agree with each
    // other transitively.
    EXPECT_EQ(spec.final_state, expected_final(config, spec.history))
        << "seed " << seed;
    EXPECT_EQ(uni.final_state, expected_final(config, uni.history))
        << "seed " << seed;
    // The specialist never aborts: every fate is Ok.
    for (const auto& op : spec.history) {
      EXPECT_EQ(op.status, OpStatus::Ok) << "seed " << seed;
    }
  }
}

TEST(ZooSnapshot, SoloOpsNeverBottom) {
  ZooExploreConfig<SnapshotType> config;
  config.n = 2;
  config.initial = SnapshotType::initial(2);
  config.ops.resize(2);
  config.ops[0] = {SnapshotType::update(0, 3), SnapshotType::scan(),
                   SnapshotType::update(0, 4), SnapshotType::scan()};
  for (const bool universal : {false, true}) {
    const auto outcome =
        universal ? run_zoo_workload<SnapshotType, UniSnap>(config,
                                                            universal_maker())
                  : run_zoo_workload<SnapshotType, WfSnapshot>(
                        config, specialist_maker());
    ASSERT_TRUE(outcome.completed);
    for (const auto& op : outcome.history) {
      EXPECT_EQ(op.status, OpStatus::Ok) << (universal ? "uni" : "spec");
    }
  }
}

}  // namespace
}  // namespace tbwf::zoo
