// Unit tests of the progress analyzer (Definition 3 operationalized)
// over synthetic operation logs.
#include <gtest/gtest.h>

#include "core/progress.hpp"

namespace tbwf::core {
namespace {

OpLog make_log(int n) { return OpLog(n); }

TEST(Progress, SteadyCompleterIsProgressing) {
  auto log = make_log(1);
  for (sim::Step s = 100; s <= 10000; s += 100) {
    log.completions[0].push_back(s);
  }
  const auto report = analyze_progress(log, 10000, 0, 200, {0});
  EXPECT_TRUE(report.of(0).progressing);
  EXPECT_EQ(report.of(0).completed, 100u);
  EXPECT_LE(report.of(0).max_completion_gap, 200u);
}

TEST(Progress, GapInTheMiddleViolatesBound) {
  auto log = make_log(1);
  log.completions[0] = {100, 200, 5000, 5100};
  const auto report = analyze_progress(log, 6000, 0, 1000, {0});
  EXPECT_FALSE(report.of(0).progressing);
  EXPECT_EQ(report.of(0).max_completion_gap, 4800u);
}

TEST(Progress, SilentSuffixViolatesBound) {
  auto log = make_log(1);
  log.completions[0] = {100, 200, 300};
  const auto report = analyze_progress(log, 100000, 0, 1000, {0});
  EXPECT_FALSE(report.of(0).progressing);
}

TEST(Progress, WarmupExcludesEarlyGaps) {
  auto log = make_log(1);
  // Nothing before step 5000 (e.g. election warmup), steady after.
  for (sim::Step s = 5000; s <= 10000; s += 100) {
    log.completions[0].push_back(s);
  }
  EXPECT_FALSE(analyze_progress(log, 10000, 0, 200, {0}).of(0).progressing);
  EXPECT_TRUE(
      analyze_progress(log, 10000, 5000, 200, {0}).of(0).progressing);
}

TEST(Progress, NonIssuingProcessesAreNotClassified) {
  auto log = make_log(2);
  log.completions[0] = {100, 200};
  const auto report = analyze_progress(log, 10000, 0, 100000, {0});
  EXPECT_TRUE(report.of(0).progressing);
  EXPECT_FALSE(report.of(1).progressing);
  EXPECT_EQ(report.progressing.size(), 1u);
}

TEST(Progress, TbwfVerdictFlagsStarvedTimely) {
  auto log = make_log(3);
  for (sim::Step s = 100; s <= 9900; s += 100) {
    log.completions[0].push_back(s);
    log.completions[1].push_back(s + 7);
  }
  log.completions[2] = {500};  // starves afterwards
  std::vector<sim::Pid> all = {0, 1, 2};
  const auto report = analyze_progress(log, 10000, 0, 500, all);

  EXPECT_TRUE(check_tbwf(report, {0, 1}).holds);
  const auto verdict = check_tbwf(report, {0, 1, 2});
  EXPECT_FALSE(verdict.holds);
  ASSERT_EQ(verdict.violators.size(), 1u);
  EXPECT_EQ(verdict.violators[0], 2);
}

TEST(Progress, EmptyTimelySetHoldsVacuously) {
  auto log = make_log(2);
  const auto report = analyze_progress(log, 1000, 0, 10, {});
  EXPECT_TRUE(check_tbwf(report, {}).holds);
}

TEST(Progress, SummariesMentionEveryProcess) {
  auto log = make_log(2);
  log.completions[0] = {10};
  const auto report = analyze_progress(log, 100, 0, 1000, {0, 1});
  const auto s = report.summary();
  EXPECT_NE(s.find("p0"), std::string::npos);
  EXPECT_NE(s.find("p1"), std::string::npos);
}

}  // namespace
}  // namespace tbwf::core
