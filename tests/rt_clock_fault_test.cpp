// Clock-fault injection and drift-tolerant leasing, unit scale.
//
// Four layers under test:
//   - the generated clock-fault family appends after every older family
//     (pinned digests: old seeds replay byte for byte with the family
//     disabled, and adding it leaves every older draw untouched);
//   - FaultClock's distortion math (skew / drift / jumps / freeze,
//     window summing, origin clamping, thread binding);
//   - LeaseElector's clock hardening: the monotone clamp (a backward
//     jump can neither resurrect an expired lease nor stretch a live
//     one), forward-jump self-fencing, the 40-bit expiry ring across
//     wraparound under contention, and the calibrator's drift margin;
//   - the soak-level breach: a clock-fault plan that fails exactly the
//     TBWF axis of the joint verdict while the SLO stays green.
//
// Suite names keep the Rt-/LeaseElector- prefix: the tsan CI jobs
// select rt tests with ctest -R '^(Rt|LeaseElector)'.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/rt_clock.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_tbwf.hpp"
#include "soak/soak.hpp"
#include "util/hash.hpp"

namespace tbwf::rt {
namespace {

// -- plan family: append-only draws --------------------------------------------

RtFaultPlan::GenOptions all_family_options() {
  RtFaultPlan::GenOptions g;
  g.nthreads = 4;
  g.max_reg_faults = 2;
  g.max_membership_cycles = 2;
  return g;
}

/// `summary()` minus the clock lines: the prefix every pre-clock family
/// contributes.
std::string strip_clock_lines(const std::string& summary) {
  std::istringstream in(summary);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("  clock ", 0) == 0) continue;
    out << line << '\n';
  }
  return out.str();
}

// Digests captured on the commit BEFORE the clock family existed: any
// change here means old seeds no longer replay bit-identically and the
// acceptance contract ("re-run with the seed reproduces the exact
// plan") is broken for every plan already recorded in CI artifacts.
TEST(RtClockPlanTest, PinnedDigestsReplayWithFamilyDisabled) {
  const std::uint64_t kAllFamilies[6] = {
      0xcd8da26cbe17bb1eull, 0xc600e188bebb4520ull, 0x1e27b7dcfd2bd13cull,
      0xc52a09724fce0f65ull, 0x72d614b7e8f537dcull, 0x800b1ec0af73556full};
  const std::uint64_t kSweepDefaults[6] = {
      0x51abfb63890f5d64ull, 0xd52b2dbcebae754bull, 0x1e27b7dcfd2bd13cull,
      0x9c29b3c9d61c7366ull, 0x00259bc141ecea52ull, 0x800b1ec0af73556full};
  const auto all = all_family_options();
  RtFaultPlan::GenOptions sweep;
  sweep.nthreads = 4;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    EXPECT_EQ(util::fnv1a(RtFaultPlan::generate(seed, all).summary()),
              kAllFamilies[seed - 1])
        << "all-families seed " << seed;
    EXPECT_EQ(util::fnv1a(RtFaultPlan::generate(seed, sweep).summary()),
              kSweepDefaults[seed - 1])
        << "sweep-defaults seed " << seed;
  }
}

TEST(RtClockPlanTest, ClockDrawsAppendAfterEveryOlderFamily) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const auto base = all_family_options();
    auto with_clock = base;
    with_clock.max_clock_faults = 3;
    const RtFaultPlan a = RtFaultPlan::generate(seed, base);
    const RtFaultPlan b = RtFaultPlan::generate(seed, with_clock);
    const std::string stripped = strip_clock_lines(b.summary());
    const std::string header = "rt plan seed=" + std::to_string(seed) + "\n";
    if (stripped == header && !b.clock_faults().empty()) {
      // Every older draw came up zero: the base plan (and only it)
      // gets the generator's never-empty fallback stall, because the
      // clock events already keep plan b non-empty.
      EXPECT_NE(a.summary().find("  stall "), std::string::npos)
          << "seed " << seed;
      continue;
    }
    // Every older family's draws are untouched by enabling the clock
    // family: the plans differ only in appended clock lines.
    EXPECT_EQ(a.summary(), stripped) << "seed " << seed;
  }
}

TEST(RtClockPlanTest, GeneratedWindowsRespectTheQuietTail) {
  RtFaultPlan::GenOptions g;
  g.nthreads = 4;
  g.max_clock_faults = 4;
  const auto hi = static_cast<std::uint64_t>(
      static_cast<double>(g.horizon_ns) * (1.0 - g.quiet_tail));
  bool saw_any = false;
  for (std::uint64_t seed = 1; seed <= 48; ++seed) {
    const RtFaultPlan plan = RtFaultPlan::generate(seed, g);
    EXPECT_LE(plan.last_event_ns(), hi) << "seed " << seed;
    for (const auto& c : plan.clock_faults()) {
      saw_any = true;
      EXPECT_LT(c.tid, static_cast<std::uint32_t>(g.nthreads));
      EXPECT_LT(c.from_ns, hi);
      if (c.to_ns == RtClockFaultEvent::kForeverNs) {
        // Only the kinds whose distortion is a stable property may
        // stay open forever.
        EXPECT_TRUE(c.kind == RtClockFaultKind::Skew ||
                    c.kind == RtClockFaultKind::Drift);
      } else {
        EXPECT_LT(c.from_ns, c.to_ns);
        EXPECT_LE(c.to_ns, hi);
      }
      if (c.kind != RtClockFaultKind::Freeze) {
        EXPECT_NE(c.magnitude, 0) << to_string(c.kind);
      }
    }
  }
  EXPECT_TRUE(saw_any);
}

// -- FaultClock distortion math ------------------------------------------------

constexpr std::uint64_t kOrigin = 5000000000ull;

TEST(RtFaultClockTest, SkewOffsetsOnlyInsideTheWindow) {
  FaultClock clock;
  clock.arm(kOrigin, {{RtClockFaultKind::Skew, /*tid=*/1, 100, 200, 500}});
  EXPECT_EQ(clock.observed_ns(1, kOrigin + 50), kOrigin + 50);
  EXPECT_EQ(clock.observed_ns(1, kOrigin + 100), kOrigin + 600);
  EXPECT_EQ(clock.observed_ns(1, kOrigin + 199), kOrigin + 699);
  EXPECT_EQ(clock.observed_ns(1, kOrigin + 200), kOrigin + 200);
  // Another thread is untouched.
  EXPECT_EQ(clock.observed_ns(0, kOrigin + 150), kOrigin + 150);
}

TEST(RtFaultClockTest, DriftGrowsLinearlyFromTheWindowStart) {
  FaultClock clock;
  // +100000 ppm = 10% fast from rel 1000, forever.
  clock.arm(kOrigin, {{RtClockFaultKind::Drift, 0, 1000,
                       RtClockFaultEvent::kForeverNs, 100000}});
  EXPECT_EQ(clock.observed_ns(0, kOrigin + 1000), kOrigin + 1000);
  EXPECT_EQ(clock.observed_ns(0, kOrigin + 2000), kOrigin + 2100);
  EXPECT_EQ(clock.observed_ns(0, kOrigin + 11000), kOrigin + 12000);
}

TEST(RtFaultClockTest, FreezeOverridesAndSnapsBack) {
  FaultClock clock;
  clock.arm(kOrigin, {{RtClockFaultKind::Freeze, 2, 300, 400, 0},
                      {RtClockFaultKind::Skew, 2, 0,
                       RtClockFaultEvent::kForeverNs, 7}});
  // Inside the freeze the skew is overridden, not summed.
  EXPECT_EQ(clock.observed_ns(2, kOrigin + 350), kOrigin + 300);
  // After it closes, time snaps back to the (skewed) source.
  EXPECT_EQ(clock.observed_ns(2, kOrigin + 400), kOrigin + 407);
}

TEST(RtFaultClockTest, OverlappingWindowsSumAndClampAtOrigin) {
  FaultClock clock;
  clock.arm(kOrigin, {{RtClockFaultKind::Skew, 0, 100, 300, 40},
                      {RtClockFaultKind::JumpForward, 0, 200, 300, 60},
                      {RtClockFaultKind::JumpBackward, 3, 100, 200, -9999}});
  EXPECT_EQ(clock.observed_ns(0, kOrigin + 250), kOrigin + 350);
  // A backward fault larger than the elapsed run clamps at the origin
  // instead of underflowing the 64-bit clock.
  EXPECT_EQ(clock.observed_ns(3, kOrigin + 150), kOrigin);
}

TEST(RtFaultClockTest, BindingRoutesReadAndRestoresOnExit) {
  FaultClock clock;
  clock.arm(0, {{RtClockFaultKind::Skew, 7, 0,
                 RtClockFaultEvent::kForeverNs, 3600000000000ll}});
  ASSERT_FALSE(FaultClock::bound());
  const std::uint64_t before = FaultClock::read();
  {
    FaultClock::Binding bind(&clock, 7);
    ASSERT_TRUE(FaultClock::bound());
    // An hour of skew dwarfs any scheduling delay between the reads.
    EXPECT_GT(FaultClock::read(), before + 3000000000000ull);
    {
      FaultClock::Binding inner(nullptr, 0);
      EXPECT_FALSE(FaultClock::bound());
      EXPECT_LT(FaultClock::read(), before + 3000000000000ull);
    }
    EXPECT_TRUE(FaultClock::bound());
  }
  EXPECT_FALSE(FaultClock::bound());
  EXPECT_LT(FaultClock::read(), before + 3000000000000ull);
}

// -- LeaseElector clock hardening ----------------------------------------------

// Synthetic time source: a plain function over an atomic, usable as
// LeaseElector::ClockFn. relaxed throughout -- the tests sequence their
// own mutations, and the stress test only needs atomicity.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() {
  return g_fake_now.load(std::memory_order_relaxed);
}

TEST(LeaseElectorClockTest, BackwardJumpCannotResurrectAnExpiredLease) {
  g_fake_now.store(1000000000ull, std::memory_order_relaxed);
  LeaseElector elector(std::chrono::milliseconds(1), &fake_clock);
  std::uint64_t token = 0;
  ASSERT_TRUE(elector.try_lead(0, &token));
  ASSERT_TRUE(elector.validate(0, token));
  // Let the lease expire on the true timeline...
  g_fake_now.fetch_add(2000000, std::memory_order_relaxed);
  EXPECT_FALSE(elector.validate(0, token));
  EXPECT_EQ(elector.owner(), LeaseElector::kNoOwner);
  // ...then jump the source 10 ms backward. The monotone clamp keeps
  // judging at the high-water mark: the corpse stays expired and the
  // seat is immediately electable by someone honest.
  g_fake_now.fetch_sub(10000000, std::memory_order_relaxed);
  EXPECT_FALSE(elector.validate(0, token));
  EXPECT_EQ(elector.owner(), LeaseElector::kNoOwner);
  std::uint64_t token1 = 0;
  EXPECT_TRUE(elector.try_lead(1, &token1));
  EXPECT_TRUE(elector.validate(1, token1));
  EXPECT_EQ(elector.jumps_detected(), 0u);
}

TEST(LeaseElectorClockTest, ForwardJumpFencesTheJumperAndResetsCalibration) {
  g_fake_now.store(2000000000ull, std::memory_order_relaxed);
  LeaseElector elector(std::chrono::milliseconds(1), &fake_clock);
  LeaseCalibrator calibrator;
  elector.set_calibrator(&calibrator);
  calibrator.observe(40000);
  calibrator.observe(40000);
  ASSERT_GT(calibrator.samples(), 0u);
  std::uint64_t token = 0;
  ASSERT_TRUE(elector.try_lead(0, &token));
  // The source leaps 2 s forward -- past the default 1 s suspicion
  // threshold. The jumper must lose: self-revoked (its token is dead),
  // tallied, and the jump-spanning latency samples discarded.
  g_fake_now.fetch_add(2000000000ull, std::memory_order_relaxed);
  EXPECT_FALSE(elector.try_lead(0, &token));
  EXPECT_EQ(elector.jumps_detected(), 1u);
  EXPECT_FALSE(elector.validate(0, token));
  EXPECT_EQ(calibrator.samples(), 0u);
  // The detection consumed the jump (the high-water mark caught up):
  // the same thread re-elects cleanly under a fresh fence.
  std::uint64_t fresh = 0;
  EXPECT_TRUE(elector.try_lead(0, &fresh));
  EXPECT_NE(fresh, token);
  EXPECT_TRUE(elector.validate(0, fresh));
  EXPECT_EQ(elector.jumps_detected(), 1u);
}

TEST(LeaseElectorClockTest, ZeroSuspicionThresholdDisablesDetection) {
  g_fake_now.store(3000000000ull, std::memory_order_relaxed);
  LeaseElector elector(std::chrono::milliseconds(1), &fake_clock);
  elector.set_jump_suspect(0);
  std::uint64_t token = 0;
  ASSERT_TRUE(elector.try_lead(0, &token));
  g_fake_now.fetch_add(10000000000ull, std::memory_order_relaxed);
  EXPECT_TRUE(elector.try_lead(0, &token));
  EXPECT_EQ(elector.jumps_detected(), 0u);
}

// The 40-bit expiry ring under contention, across the wrap boundary,
// with small backward stutters thrown in: at most one thread may hold
// a validated lease at any instant, before, across and after the wrap.
// (Registered RUN_SERIAL: four spinning threads on a timesliced box.)
TEST(LeaseElectorClockTest, WraparoundStressKeepsLeasesExclusive) {
  constexpr int kThreads = 4;
  constexpr int kIters = 4000;
  // Start 6 ms short of the 40-bit wrap; the threads advance the source
  // far past it. The 100 ms term dwarfs the total advancement between a
  // successful validate and the matching release, so expiry can never
  // race the exclusivity window itself.
  g_fake_now.store((1ULL << 40) - 6000000, std::memory_order_relaxed);
  LeaseElector elector(std::chrono::milliseconds(100), &fake_clock);
  std::atomic<int> active{0};
  std::atomic<int> overlap{0};
  std::atomic<std::uint64_t> held{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        g_fake_now.fetch_add(1000, std::memory_order_relaxed);
        if (t == 0 && i % 64 == 0) {
          // A small backward stutter; the monotone clamp absorbs it.
          g_fake_now.fetch_sub(700, std::memory_order_relaxed);
        }
        std::uint64_t token = 0;
        if (!elector.try_lead(static_cast<std::uint32_t>(t), &token)) {
          continue;
        }
        if (elector.validate(static_cast<std::uint32_t>(t), token)) {
          if (active.fetch_add(1, std::memory_order_acq_rel) != 0) {
            overlap.fetch_add(1, std::memory_order_relaxed);
          }
          held.fetch_add(1, std::memory_order_relaxed);
          active.fetch_sub(1, std::memory_order_acq_rel);
        }
        elector.release(static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(overlap.load(std::memory_order_relaxed), 0);
  EXPECT_GT(held.load(std::memory_order_relaxed), 0u);
  // The run crossed the wrap: the masked clock is far below where it
  // started, yet elections kept working the whole way.
  EXPECT_GT(g_fake_now.load(std::memory_order_relaxed), 1ULL << 40);
  EXPECT_EQ(elector.jumps_detected(), 0u);
}

TEST(RtCalibratorClockTest, DriftMarginShortensTermNeverLengthens) {
  LeaseCalibrator::Options plain;
  plain.floor_ns = 1;
  LeaseCalibrator::Options guarded = plain;
  guarded.drift_margin_ppm = 200000;  // tolerate clocks up to 20% fast
  LeaseCalibrator a(plain, /*initial_latency_ns=*/120000);
  LeaseCalibrator b(guarded, /*initial_latency_ns=*/120000);
  EXPECT_LT(b.term_ns(), a.term_ns());
  // Exactly the discount factor: term * 1e6 / (1e6 + margin).
  EXPECT_EQ(b.term_ns(),
            static_cast<std::uint64_t>(static_cast<double>(a.term_ns()) *
                                       1e6 / 1.2e6));
  // margin 0 is the default: the legacy formula, bit for bit.
  EXPECT_EQ(LeaseCalibrator::Options{}.drift_margin_ppm, 0u);
}

// -- the soak-level breach ------------------------------------------------------

// The clock twin of ViewThrashFailsOnlyTheProgressAxis: skew windows
// flapping on the spare seat through the end of the run keep the
// plan's last edge moving, so the stable suffix never fits -- the TBWF
// axis fails as inconclusive while the well-clocked seats keep serving
// and the SLO stays green.
TEST(RtClockSoakTest, ClockBreachFailsOnlyTheProgressAxis) {
  auto options = soak::RtSoakOptions::quick(21);
  const auto breach = soak::rt_clock_breach_plan(21, options.nthreads, 40,
                                                 4000000, 700000);
  options.plan_override = &breach;
  const auto result = soak::run_rt_soak(options);
  EXPECT_FALSE(result.joint.progress_ok);
  EXPECT_TRUE(result.slo.ok) << result.joint.summary();
  ASSERT_FALSE(result.progress.violations.empty());
  EXPECT_NE(result.progress.violations.front().find(
                "stable suffix too short"),
            std::string::npos)
      << result.progress.violations.front();
}

}  // namespace
}  // namespace tbwf::rt
