// Tests of Figure 5's two-register heartbeat over abortable registers,
// including the one-register ablation that motivates the design.
#include <gtest/gtest.h>

#include <memory>

#include "omega/hb_channel.hpp"
#include "registers/reg_faults.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Task;
using sim::World;

Task sender_proc(SimEnv& env, HbEndpoint& ep, const std::vector<bool>& dest) {
  for (;;) {
    co_await send_heartbeat(env, ep, dest);
    co_await env.yield();
  }
}

Task receiver_proc(SimEnv& env, HbEndpoint& ep) {
  for (;;) {
    co_await receive_heartbeat(env, ep);
    co_await env.yield();
  }
}

struct HbHarness {
  std::unique_ptr<World> world;
  registers::AlwaysAbortPolicy policy{
      registers::AlwaysAbortPolicy::Effect::Alternate};
  std::vector<HbEndpoint> eps;
  std::vector<std::vector<bool>> dest;

  explicit HbHarness(std::vector<ActivitySpec> specs, std::uint64_t seed = 1) {
    const int n = static_cast<int>(specs.size());
    world = std::make_unique<World>(
        n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
    for (int p = 0; p < n; ++p) {
      if (specs[p].crash_at != sim::Trace::kNever) {
        world->schedule_crash(p, specs[p].crash_at);
      }
    }
    eps = make_hb_mesh(*world, &policy);
    dest.assign(n, std::vector<bool>(n, true));
    for (Pid p = 0; p < n; ++p) {
      world->spawn(p, "hb-send", [this, p](SimEnv& env) {
        return sender_proc(env, eps[p], dest[p]);
      });
      world->spawn(p, "hb-recv", [this, p](SimEnv& env) {
        return receiver_proc(env, eps[p]);
      });
    }
  }
};

TEST(HbChannel, TimelySenderEventuallyAlwaysActive) {
  HbHarness h({ActivitySpec::timely(4), ActivitySpec::timely(4)}, 3);
  h.world->run(100000);
  // Long suffix: p1 must never drop p0 from its active set again.
  bool dropped = false;
  h.world->add_step_observer([&](sim::Step, Pid) {
    if (!h.eps[1].active_set[0]) dropped = true;
  });
  h.world->run(200000);
  EXPECT_FALSE(dropped);
  EXPECT_TRUE(h.eps[1].active_set[0]);
  EXPECT_TRUE(h.eps[0].active_set[1]);
}

TEST(HbChannel, CrashedSenderEventuallyInactive) {
  auto specs = std::vector<ActivitySpec>{ActivitySpec::timely(4),
                                         ActivitySpec::timely(4)};
  specs[0].crash(50000);
  HbHarness h(specs, 5);
  h.world->run(400000);
  EXPECT_TRUE(h.world->crashed(0));
  EXPECT_FALSE(h.eps[1].active_set[0]);
  EXPECT_TRUE(h.eps[1].active_set[1]);  // self stays in
}

TEST(HbChannel, SilencedDestinationEventuallyInactive) {
  HbHarness h({ActivitySpec::timely(4), ActivitySpec::timely(4)}, 7);
  h.world->run(100000);
  EXPECT_TRUE(h.eps[1].active_set[0]);
  h.dest[0][1] = false;  // p0 stops heartbeating towards p1
  h.world->run(400000);
  EXPECT_FALSE(h.eps[1].active_set[0]);
}

TEST(HbChannel, UntimelySenderSuspectedInfinitelyOften) {
  // p0's gaps double forever; p1's active_set[0] must keep toggling (the
  // growing hbTimeout never permanently outruns growing gaps).
  HbHarness h({ActivitySpec::growing_flicker(2000, 100),
               ActivitySpec::timely(4)},
              9);
  h.world->run(500000);
  int drops = 0;
  bool was_active = h.eps[1].active_set[0];
  h.world->add_step_observer([&](sim::Step, Pid) {
    const bool now_active = h.eps[1].active_set[0];
    if (was_active && !now_active) ++drops;
    was_active = now_active;
  });
  h.world->run(3000000);
  EXPECT_GE(drops, 1);
}

// -- the two-register rationale -----------------------------------------------------

// A sender stalled *inside* a single write forever: with one register,
// every read overlaps the pending write and aborts, so the flawed
// "abort-or-fresh" receiver believes the sender is timely forever. The
// two-register receiver consults the second register, whose reads run
// solo and return the same stale value, exposing the stall.
Task stuck_sender(SimEnv& env, HbEndpoint::Reg reg) {
  (void)co_await env.write(reg, HbStamp::make(1));  // never responds
}

Task single_receiver(SimEnv& env, SingleRegHbReceiver& r) {
  for (;;) {
    co_await receive_heartbeat_single(env, r);
    co_await env.yield();
  }
}

TEST(HbChannel, TwoRegisterSchemeExposesStuckWriter) {
  // Full comparison: p0 invokes one write on register 1 and then stalls
  // forever (the schedule never grants it another step). The single-
  // register receiver stays fooled; the paper's receiver goes inactive.
  std::vector<Pid> script;
  script.push_back(0);  // p0: invoke write on hb1, then silence
  for (int i = 0; i < 200000; ++i) script.push_back(1);

  auto world = std::make_unique<World>(
      2, std::make_unique<sim::ScriptedSchedule>(script));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);

  auto eps = make_hb_mesh(*world, &policy);
  SingleRegHbReceiver single{eps[1].in1[0]};

  world->spawn(0, "stuck", [&eps](SimEnv& env) {
    return stuck_sender(env, eps[0].out1[1]);
  });
  world->spawn(1, "recv2", [&eps](SimEnv& env) {
    return receiver_proc(env, eps[1]);
  });
  world->spawn(1, "recv1", [&single](SimEnv& env) {
    return single_receiver(env, single);
  });
  world->run(script.size());

  EXPECT_TRUE(single.active)
      << "one-register receiver should be fooled forever";
  EXPECT_FALSE(eps[1].active_set[0])
      << "two-register receiver must expose the stall";
}

TEST(HbChannel, OneHealthyRegisterStillExposesSlowness) {
  // Ablation extension for the degraded medium: HbRegister1[0,1] is
  // permanently jammed (every read aborts -- which the Figure 5
  // judgment must treat as fresh), so the whole burden of exposing a
  // slow or silent writer falls on the one healthy register. The
  // two-register receiver still gets it right; an abort-or-fresh
  // receiver watching only the jammed register is fooled forever.
  auto world = std::make_unique<World>(
      2, std::make_unique<sim::RandomSchedule>(31));
  registers::RegisterFaultInjector injector(31);
  auto eps = make_hb_mesh(*world, &injector, "Hb");
  ASSERT_EQ(injector.arm_link(*world, 0, 1, "Hb1",
                              registers::RegFaultKind::Jam, 0,
                              registers::kFaultForever),
            1);
  SingleRegHbReceiver fooled{eps[1].in1[0]};

  std::vector<std::vector<bool>> dest(2, std::vector<bool>(2, true));
  for (Pid p = 0; p < 2; ++p) {
    world->spawn(p, "hb-send", [&eps, &dest, p](SimEnv& env) {
      return sender_proc(env, eps[p], dest[p]);
    });
    world->spawn(p, "hb-recv", [&eps, p](SimEnv& env) {
      return receiver_proc(env, eps[p]);
    });
  }
  world->spawn(1, "recv1", [&fooled](SimEnv& env) {
    return single_receiver(env, fooled);
  });

  // Phase 1: the sender is timely. The healthy second register keeps
  // delivering fresh stamps, so p1 judges p0 active despite the jam --
  // and the mixed abort/fresh rounds never feed the jam streak, so the
  // link is not quarantined.
  world->run(200000);
  EXPECT_TRUE(eps[1].active_set[0]);
  EXPECT_FALSE(eps[1].in_health[0].quarantined());

  // Phase 2: the sender goes silent towards p1. Register 2's reads now
  // return the same stale stamp; the two-register conjunction exposes
  // the silence even though register 1 keeps aborting.
  dest[0][1] = false;
  world->run(600000);
  EXPECT_FALSE(eps[1].active_set[0])
      << "the healthy register must expose the silence";
  EXPECT_TRUE(fooled.active)
      << "abort-or-fresh on the jammed register alone is fooled forever";
}

}  // namespace
}  // namespace tbwf::omega
