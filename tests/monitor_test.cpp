// Tests of the activity monitor A(p,q) -- Figure 2 against Definition 9.
//
// Setup: process 0 (p) monitors process 1 (q). Inputs MONITORING[q] and
// ACTIVE-FOR[p] are local variables; tests drive them between run
// phases, which is equivalent to another sub-task of the owning process
// writing them. Timeliness of q is controlled by the schedule.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "monitor/activity_monitor.hpp"
#include "sim/schedule.hpp"
#include "sim/trajectory.hpp"
#include "sim/world.hpp"

namespace tbwf::monitor {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::Step;
using sim::World;

constexpr Pid kP = 0;  // monitoring process
constexpr Pid kQ = 1;  // monitored process

struct Harness {
  std::unique_ptr<World> world;
  std::unique_ptr<MonitorMatrix> matrix;

  explicit Harness(std::vector<ActivitySpec> specs, std::uint64_t seed = 1) {
    world = std::make_unique<World>(
        static_cast<int>(specs.size()),
        std::make_unique<sim::TimelinessSchedule>(specs, seed));
    for (std::size_t p = 0; p < specs.size(); ++p) {
      if (specs[p].crash_at != sim::Trace::kNever) {
        world->schedule_crash(static_cast<Pid>(p), specs[p].crash_at);
      }
    }
    matrix = std::make_unique<MonitorMatrix>(*world);
    matrix->install_all();
  }

  MonitorIO& io() { return matrix->io(kP, kQ); }
  ActiveForFlag& active_for() { return matrix->active_for(kQ, kP); }
};

std::vector<ActivitySpec> both_timely() {
  return {ActivitySpec::timely(4), ActivitySpec::timely(4)};
}

// -- Definition 9, Property 1: monitoring eventually off => status eventually ? --

TEST(ActivityMonitor, Property1_MonitoringOffYieldsUnknown) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(2000);
  EXPECT_NE(h.io().status, Status::Unknown);  // sanity: it was monitoring
  h.io().monitoring = false;
  h.world->run(2000);
  EXPECT_EQ(h.io().status, Status::Unknown);
}

// -- Property 2: monitoring eventually on => status eventually not ? ------------

TEST(ActivityMonitor, Property2_MonitoringOnYieldsVerdict) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.world->run(2000);
  EXPECT_NE(h.io().status, Status::Unknown);
}

// -- Property 3: q crashes or active-for off => eventually status != active -----

TEST(ActivityMonitor, Property3_CrashedTargetNotActive) {
  auto specs = both_timely();
  specs[kQ].crash(500);
  Harness h(specs);
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(500);
  h.world->run(5000);
  EXPECT_TRUE(h.world->crashed(kQ));
  EXPECT_EQ(h.io().status, Status::Inactive);
}

TEST(ActivityMonitor, Property3_WillinglyInactiveTargetNotActive) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(2000);
  EXPECT_EQ(h.io().status, Status::Active);
  h.active_for().active_for = false;
  h.world->run(5000);
  EXPECT_EQ(h.io().status, Status::Inactive);
}

// -- Property 4: q p-timely and active-for on => eventually status != inactive --

TEST(ActivityMonitor, Property4_TimelyActiveTargetSeenActive) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(5000);
  // Sample the status over a long suffix: it must never be inactive.
  sim::Trajectory<Status> traj;
  traj.attach(*h.world, &h.io().status);
  h.world->run(5000);
  for (const auto& [step, value] : traj.points()) {
    EXPECT_NE(value, Status::Inactive) << "at step " << step;
  }
  EXPECT_EQ(h.io().status, Status::Active);
}

TEST(ActivityMonitor, Property4_HoldsEvenWhenQIsSlowButTimely) {
  // q runs 16x slower than p but with a guaranteed bound: still timely.
  std::vector<ActivitySpec> specs = {ActivitySpec::timely(2),
                                     ActivitySpec::timely(32, 0.05)};
  Harness h(specs, 3);
  h.io().monitoring = true;
  h.active_for().active_for = true;
  // Let the adaptive timeout stabilize, then require no inactive verdicts.
  h.world->run(60000);
  sim::Trajectory<Status> traj;
  traj.attach(*h.world, &h.io().status);
  h.world->run(30000);
  for (const auto& [step, value] : traj.points()) {
    EXPECT_NE(value, Status::Inactive) << "at step " << step;
  }
}

// -- Property 5: faultCntr bounded ------------------------------------------------

TEST(ActivityMonitor, Property5a_TimelyTargetBoundedFaults) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(20000);
  const auto mid = h.io().fault_cntr;
  h.world->run(200000);
  EXPECT_EQ(h.io().fault_cntr, mid);  // no growth in the long suffix
}

TEST(ActivityMonitor, Property5b_CrashedTargetBoundedFaults) {
  auto specs = both_timely();
  specs[kQ].crash(1000);
  Harness h(specs);
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(20000);
  const auto mid = h.io().fault_cntr;
  h.world->run(200000);
  // After the crash the register freezes; faultCntr can increment at
  // most once more (the "allow increment" latch), then never again.
  EXPECT_LE(h.io().fault_cntr, mid + 1);
}

TEST(ActivityMonitor, Property5c_WillinglyOffTargetBoundedFaults) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(5000);
  h.active_for().active_for = false;  // q writes -1 and idles
  h.world->run(20000);
  const auto mid = h.io().fault_cntr;
  h.world->run(200000);
  EXPECT_LE(h.io().fault_cntr, mid + 1);
}

TEST(ActivityMonitor, Property5d_MonitoringOffBoundedFaults) {
  Harness h(both_timely());
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(5000);
  h.io().monitoring = false;
  h.world->run(5000);
  const auto mid = h.io().fault_cntr;
  h.world->run(100000);
  EXPECT_EQ(h.io().fault_cntr, mid);
}

TEST(ActivityMonitor, Property5_IntermittentActiveForStaysBounded) {
  // q oscillates between active-for on and off forever; the -1 sentinel
  // (condition (a) in the paper) prevents unbounded growth: each on/off
  // cycle can contribute at most a constant number of increments, and
  // the adaptive timeout eventually outlasts the off windows.
  Harness h(both_timely());
  h.io().monitoring = true;
  std::uint64_t prev = 0;
  std::uint64_t growth_last_quarter = 0;
  for (int cycle = 0; cycle < 40; ++cycle) {
    h.active_for().active_for = true;
    h.world->run(500);
    h.active_for().active_for = false;
    h.world->run(500);
    if (cycle == 29) prev = h.io().fault_cntr;
  }
  growth_last_quarter = h.io().fault_cntr - prev;
  EXPECT_LE(growth_last_quarter, 2u);
}

// -- Property 6: faultCntr unbounded --------------------------------------------

TEST(ActivityMonitor, Property6_UntimelyTargetUnboundedFaults) {
  // q is correct but its silent gaps double forever: not p-timely.
  std::vector<ActivitySpec> specs = {ActivitySpec::timely(4),
                                     ActivitySpec::growing_flicker(200, 50)};
  Harness h(specs, 5);
  h.io().monitoring = true;
  h.active_for().active_for = true;
  h.world->run(100000);
  const auto first = h.io().fault_cntr;
  h.world->run(900000);
  const auto second = h.io().fault_cntr;
  EXPECT_GT(first, 0u);
  EXPECT_GT(second, first);  // still growing deep into the run
}

// -- input matrix sweep ------------------------------------------------------------
// All nine combinations of (monitoring, active-for) limit behaviours:
// each input is eventually-on, eventually-off, or oscillating forever.
// For each combination the applicable Definition 9 properties must hold.

enum class InputMode { EventuallyOn, EventuallyOff, Oscillating };

const char* mode_name(InputMode m) {
  switch (m) {
    case InputMode::EventuallyOn:  return "on";
    case InputMode::EventuallyOff: return "off";
    case InputMode::Oscillating:   return "osc";
  }
  return "?";
}

class MonitorMatrixSweep
    : public ::testing::TestWithParam<std::tuple<InputMode, InputMode>> {};

TEST_P(MonitorMatrixSweep, Definition9HoldsInAllInputCases) {
  const auto [mon_mode, act_mode] = GetParam();
  Harness h(both_timely(), 11);

  auto drive = [](InputMode mode, bool& flag, int cycle) {
    switch (mode) {
      case InputMode::EventuallyOn:
        flag = true;  // on from the start (limit behaviour is what matters)
        break;
      case InputMode::EventuallyOff:
        flag = (cycle < 3);  // on briefly, then off forever
        break;
      case InputMode::Oscillating:
        flag = (cycle % 2 == 0);
        break;
    }
  };

  for (int cycle = 0; cycle < 30; ++cycle) {
    drive(mon_mode, h.io().monitoring, cycle);
    drive(act_mode, h.active_for().active_for, cycle);
    h.world->run(800);
  }
  // Long settling suffix with the limit input values.
  drive(mon_mode, h.io().monitoring, 1000000);
  drive(act_mode, h.active_for().active_for, 1000001);
  h.world->run(30000);
  const auto faults_mid = h.io().fault_cntr;
  h.world->run(120000);

  // Property 5: q is timely here, so faultCntr is bounded in every case.
  EXPECT_LE(h.io().fault_cntr, faults_mid + 1)
      << "monitoring=" << mode_name(mon_mode)
      << " active_for=" << mode_name(act_mode);

  if (mon_mode == InputMode::EventuallyOff) {
    // Property 1.
    EXPECT_EQ(h.io().status, Status::Unknown);
  }
  if (mon_mode == InputMode::EventuallyOn) {
    // Property 2.
    EXPECT_NE(h.io().status, Status::Unknown);
    if (act_mode == InputMode::EventuallyOn) {
      // Property 4 (q timely): not inactive; with convergence, active.
      EXPECT_EQ(h.io().status, Status::Active);
    }
    if (act_mode == InputMode::EventuallyOff) {
      // Property 3.
      EXPECT_EQ(h.io().status, Status::Inactive);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllInputCombinations, MonitorMatrixSweep,
    ::testing::Combine(::testing::Values(InputMode::EventuallyOn,
                                         InputMode::EventuallyOff,
                                         InputMode::Oscillating),
                       ::testing::Values(InputMode::EventuallyOn,
                                         InputMode::EventuallyOff,
                                         InputMode::Oscillating)),
    [](const auto& info) {
      return std::string("monitoring_") +
             mode_name(std::get<0>(info.param)) + "_activefor_" +
             mode_name(std::get<1>(info.param));
    });

// -- multi-pair matrix -------------------------------------------------------------

TEST(MonitorMatrix, AllPairsOperateIndependently) {
  const int n = 4;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(2 * n)), 13);
  // Everyone monitors everyone and is active for everyone.
  for (Pid p = 0; p < n; ++p) {
    for (Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      h.matrix->io(p, q).monitoring = true;
      h.matrix->active_for(q, p).active_for = true;
    }
  }
  h.world->run(100000);
  for (Pid p = 0; p < n; ++p) {
    for (Pid q = 0; q < n; ++q) {
      if (p == q) continue;
      EXPECT_EQ(h.matrix->io(p, q).status, Status::Active)
          << p << " about " << q;
    }
  }
}

TEST(MonitorMatrix, SelectiveActiveFor) {
  // q is active for p0 but not for p2: their verdicts must differ.
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(2 * n)), 17);
  h.matrix->io(0, 1).monitoring = true;
  h.matrix->io(2, 1).monitoring = true;
  h.matrix->active_for(1, 0).active_for = true;
  h.matrix->active_for(1, 2).active_for = false;
  h.world->run(50000);
  EXPECT_EQ(h.matrix->io(0, 1).status, Status::Active);
  EXPECT_EQ(h.matrix->io(2, 1).status, Status::Inactive);
}

}  // namespace
}  // namespace tbwf::monitor

namespace tbwf::monitor {
namespace {

TEST(ActivityMonitor, CrashDuringHeartbeatWriteConverges) {
  // Crash the monitored process at an odd step so there is a fair
  // chance it dies between a heartbeat write's invocation and response;
  // either way the monitor must converge to inactive with a bounded
  // fault counter (property 3 + 5b under mid-operation crashes).
  for (sim::Step crash_at : {101, 202, 303, 404, 505}) {
    std::vector<sim::ActivitySpec> specs = {sim::ActivitySpec::timely(4),
                                            sim::ActivitySpec::timely(4)};
    sim::World world(2,
                     std::make_unique<sim::TimelinessSchedule>(specs,
                                                               crash_at));
    world.schedule_crash(1, crash_at);
    MonitorMatrix monitors(world);
    monitors.install_all();
    monitors.io(0, 1).monitoring = true;
    monitors.active_for(1, 0).active_for = true;
    world.run(100000);
    const auto mid = monitors.io(0, 1).fault_cntr;
    world.run(400000);
    EXPECT_EQ(monitors.io(0, 1).status, Status::Inactive)
        << "crash_at=" << crash_at;
    EXPECT_LE(monitors.io(0, 1).fault_cntr, mid + 1)
        << "crash_at=" << crash_at;
  }
}

TEST(ActivityMonitor, MonitoringFlagFlipDuringReadIsSafe) {
  // Flip MONITORING off/on aggressively (every few steps) while the
  // monitor is mid-read; the implementation must neither wedge nor
  // leak suspicions against a timely target.
  std::vector<sim::ActivitySpec> specs = {sim::ActivitySpec::timely(4),
                                          sim::ActivitySpec::timely(4)};
  sim::World world(2, std::make_unique<sim::TimelinessSchedule>(specs, 9));
  MonitorMatrix monitors(world);
  monitors.install_all();
  monitors.active_for(1, 0).active_for = true;
  for (int i = 0; i < 2000; ++i) {
    monitors.io(0, 1).monitoring = (i % 2 == 0);
    world.run(7);
  }
  monitors.io(0, 1).monitoring = true;
  world.run(200000);
  EXPECT_EQ(monitors.io(0, 1).status, Status::Active);
  const auto mid = monitors.io(0, 1).fault_cntr;
  world.run(200000);
  EXPECT_EQ(monitors.io(0, 1).fault_cntr, mid);
}

}  // namespace
}  // namespace tbwf::monitor
