// Unit tests for the Wing-Gong linearizability oracle over handcrafted
// histories: the T_QA fate semantics (Ok required, Bottom/Pending
// optional, F forbidden), real-time ordering, duplicate-delivery
// handling, resource limits, and the safety x progress grading glue.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/conformance.hpp"
#include "qa/sequential_type.hpp"
#include "verify/history.hpp"
#include "verify/lin_oracle.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::verify {
namespace {

using qa::CasCell;
using qa::Counter;
using sim::Step;

HistoryOp<Counter> op(sim::Pid pid, std::int64_t delta, OpStatus status,
                      Step inv, Step resp, std::int64_t result = 0) {
  HistoryOp<Counter> h;
  h.pid = pid;
  h.op = Counter::Op{delta};
  h.status = status;
  h.invoked_at = inv;
  h.responded_at = resp;
  h.responses = resp == kNoStep ? 0 : 1;
  if (status == OpStatus::Ok) h.result = result;
  return h;
}

TEST(LinOracle, EmptyHistoryIsLinearizable) {
  const auto r = check_linearizable<Counter>({});
  EXPECT_EQ(r.verdict, LinVerdict::kLinearizable);
  EXPECT_TRUE(r.linearizable());
  EXPECT_EQ(r.ops, 0u);
}

TEST(LinOracle, SequentialHistoryLinearizesInOrder) {
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 0));
  h.push_back(op(0, 2, OpStatus::Ok, 2, 3, 1));
  h.push_back(op(1, 4, OpStatus::Ok, 4, 5, 3));
  const auto r = check_linearizable<Counter>(h);
  ASSERT_TRUE(r.linearizable()) << r.summary();
  EXPECT_EQ(r.required, 3u);
  EXPECT_EQ(r.order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(LinOracle, LostUpdateIsAViolation) {
  // Two non-overlapping increments both claim to have seen 0: the
  // second op's result ignores the first's committed effect. This is
  // exactly the shape the dropped decide-fence mutation produces.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 0));
  h.push_back(op(1, 1, OpStatus::Ok, 2, 3, 0));
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_FALSE(r.witness.empty());
}

TEST(LinOracle, ConcurrentOpsMayReorder) {
  // p0's long op saw p1's effect, so p1 linearizes first even though
  // p0 invoked earlier -- legal because the intervals overlap.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 10, 2));
  h.push_back(op(1, 2, OpStatus::Ok, 1, 2, 0));
  const auto r = check_linearizable<Counter>(h);
  ASSERT_TRUE(r.linearizable()) << r.summary();
  EXPECT_EQ(r.order, (std::vector<std::size_t>{1, 0}));
}

TEST(LinOracle, BottomOpMayTakeEffect) {
  // The aborted op's increment is visible in the later Ok result: the
  // oracle must be willing to linearize the bottom op (adoption).
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Bottom, 0, 1));
  h.push_back(op(1, 2, OpStatus::Ok, 2, 3, 1));
  const auto r = check_linearizable<Counter>(h);
  ASSERT_TRUE(r.linearizable()) << r.summary();
  EXPECT_EQ(r.optional, 1u);
  EXPECT_EQ(r.order, (std::vector<std::size_t>{0, 1}));
}

TEST(LinOracle, BottomOpMayBeDropped) {
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Bottom, 0, 1));
  h.push_back(op(1, 2, OpStatus::Ok, 2, 3, 0));
  const auto r = check_linearizable<Counter>(h);
  ASSERT_TRUE(r.linearizable()) << r.summary();
  EXPECT_EQ(r.order, (std::vector<std::size_t>{1}));
}

TEST(LinOracle, NotAppliedEffectVisibleIsViolation) {
  // Same history as BottomOpMayTakeEffect, but the first op's fate was
  // resolved to F (never took effect). Its increment showing up in a
  // later result is the committed-aborted-effect bug.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::NotApplied, 0, 1));
  h.push_back(op(1, 2, OpStatus::Ok, 2, 3, 1));
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_EQ(r.forbidden, 1u);
}

TEST(LinOracle, PendingOpAtTraceEndIsOptional) {
  // An invocation with no response by run end may or may not have taken
  // effect; both continuations must be accepted.
  for (const std::int64_t later_result : {0, 1}) {
    std::vector<HistoryOp<Counter>> h;
    h.push_back(op(0, 1, OpStatus::Pending, 0, kNoStep));
    h.push_back(op(1, 2, OpStatus::Ok, 2, 3, later_result));
    const auto r = check_linearizable<Counter>(h);
    EXPECT_TRUE(r.linearizable())
        << "later_result=" << later_result << ": " << r.summary();
  }
}

TEST(LinOracle, BottomEffectCannotSurfaceAfterLaterSlotDecides) {
  // Force-drop semantics: once an op that was invoked after the bottom
  // op's response linearizes, the floating accept is dead -- the
  // protocol's slot order forbids it landing later. A history that
  // needs the bottom effect to appear between two later sequential ops
  // is a violation.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Bottom, 0, 1));
  h.push_back(op(1, 2, OpStatus::Ok, 5, 6, 0));   // no bottom effect yet
  h.push_back(op(1, 4, OpStatus::Ok, 7, 8, 3));   // ...but now it shows
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation) << r.summary();
}

TEST(LinOracle, ConflictingDuplicateResponsesAreAViolation) {
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 0));
  h.back().responses = 2;
  h.back().duplicate_mismatch = true;
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_NE(r.witness.find("duplicate"), std::string::npos);
}

TEST(LinOracle, BenignDuplicateResponsesPass) {
  // A restarted process re-observing the same response is harmless.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 0));
  h.back().responses = 2;
  const auto r = check_linearizable<Counter>(h);
  EXPECT_TRUE(r.linearizable()) << r.summary();
}

TEST(LinOracle, MoreThan64LiveOpsHitsResourceLimit) {
  std::vector<HistoryOp<Counter>> h;
  for (int i = 0; i < 65; ++i) {
    h.push_back(op(0, 0, OpStatus::Pending, 2 * i, kNoStep));
  }
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kResourceLimit);
  EXPECT_FALSE(r.linearizable());
}

TEST(LinOracle, StateBudgetExhaustionIsNeverAVerdict) {
  LinOracle<Counter>::Options opt;
  opt.max_states = 1;
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 10, 2));
  h.push_back(op(1, 2, OpStatus::Ok, 1, 2, 0));
  const auto r = LinOracle<Counter>(opt).check(h);
  EXPECT_EQ(r.verdict, LinVerdict::kResourceLimit);
}

TEST(LinOracle, MemoizationCollapsesExhaustiveSearch) {
  // Two commuting reads linearize in either order onto the same
  // (resolved-set, state) pair, and the impossible third op forces the
  // search to exhaust the tree -- so the converging orders must hit the
  // memo table instead of being expanded twice.
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 0, OpStatus::Ok, 0, 100, 0));
  h.push_back(op(1, 0, OpStatus::Ok, 1, 101, 0));
  h.push_back(op(2, 1, OpStatus::Ok, 2, 102, 5));
  const auto r = check_linearizable<Counter>(h);
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_GT(r.memo_hits, 0u);
}

TEST(LinOracle, CasCellResultsCompareFieldwise) {
  std::vector<HistoryOp<CasCell>> h;
  HistoryOp<CasCell> a;
  a.pid = 0;
  a.op = CasCell::cas(0, 5);
  a.status = OpStatus::Ok;
  a.invoked_at = 0;
  a.responded_at = 1;
  a.responses = 1;
  a.result = CasCell::Result{true, 0};
  HistoryOp<CasCell> b = a;
  b.pid = 1;
  b.op = CasCell::cas(0, 7);
  b.invoked_at = 2;
  b.responded_at = 3;
  b.result = CasCell::Result{false, 5};
  h.push_back(a);
  h.push_back(b);
  EXPECT_TRUE(check_linearizable<CasCell>(h).linearizable());

  // Both CASes claiming success from the same expected value cannot be
  // linearized.
  h[1].result = CasCell::Result{true, 0};
  EXPECT_EQ(check_linearizable<CasCell>(h).verdict,
            LinVerdict::kViolation);
}

TEST(LinOracle, NonZeroInitialStateIsRespected) {
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 41));
  EXPECT_TRUE(check_linearizable<Counter>(h, 41).linearizable());
  EXPECT_EQ(check_linearizable<Counter>(h, 0).verdict,
            LinVerdict::kViolation);
}

// -- T_QA fates over vector results -------------------------------------------
//
// The zoo's snapshot type returns a whole vector per scan. The oracle
// compares vector results by value through the spec, so every fate rule
// exercised above on scalar counters must hold verbatim when results
// are multi-valued -- including partial-effect shapes scalars cannot
// express (a scan vector that mixes states which never coexisted).

using Snap = zoo::SnapshotType;

HistoryOp<Snap> snap_op(sim::Pid pid, Snap::Op o, OpStatus status, Step inv,
                        Step resp, Snap::Result result = {}) {
  HistoryOp<Snap> h;
  h.pid = pid;
  h.op = o;
  h.status = status;
  h.invoked_at = inv;
  h.responded_at = resp;
  h.responses = resp == kNoStep ? 0 : 1;
  if (status == OpStatus::Ok) h.result = std::move(result);
  return h;
}

TEST(LinOracle, VectorResultsLinearizeSequentially) {
  std::vector<HistoryOp<Snap>> h;
  h.push_back(snap_op(0, Snap::update(0, 7), OpStatus::Ok, 0, 1));
  h.push_back(snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {7, 0}));
  ASSERT_TRUE(check_linearizable<Snap>(h, {0, 0}).linearizable());
  // The same scan claiming the pre-update view out of order is a
  // violation: {0, 0} after a committed update(0, 7) never existed.
  h[1] = snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {0, 0});
  EXPECT_EQ(check_linearizable<Snap>(h, {0, 0}).verdict,
            LinVerdict::kViolation);
}

TEST(LinOracle, MixedVectorThatNeverCoexistedIsAViolation) {
  // p0 writes segment 0 then segment 1 sequentially; a later scan
  // reporting the NEW segment 1 with the OLD segment 0 tore the
  // snapshot -- the exact shape the drop_embedded_scan mutation
  // produces, undetectable with scalar results.
  std::vector<HistoryOp<Snap>> h;
  h.push_back(snap_op(0, Snap::update(0, 5), OpStatus::Ok, 0, 1));
  h.push_back(snap_op(0, Snap::update(1, 6), OpStatus::Ok, 2, 3));
  h.push_back(snap_op(1, Snap::scan(), OpStatus::Ok, 4, 5, {0, 6}));
  EXPECT_EQ(check_linearizable<Snap>(h, {0, 0}).verdict,
            LinVerdict::kViolation);
}

TEST(LinOracle, BottomUpdateMayTakeEffectInAVectorResult) {
  // Adoption over vectors: the aborted update's value surfaces in the
  // scan, so the oracle must be willing to linearize the bottom op...
  std::vector<HistoryOp<Snap>> h;
  h.push_back(snap_op(0, Snap::update(0, 9), OpStatus::Bottom, 0, 1));
  h.push_back(snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {9, 0}));
  ASSERT_TRUE(check_linearizable<Snap>(h, {0, 0}).linearizable());
  // ...and equally willing to drop it.
  h[1] = snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {0, 0});
  EXPECT_TRUE(check_linearizable<Snap>(h, {0, 0}).linearizable());
}

TEST(LinOracle, NotAppliedUpdateVisibleInAVectorResultIsAViolation) {
  // F is final: a fate resolved to NotApplied must never surface, even
  // through a single component of a later vector.
  std::vector<HistoryOp<Snap>> h;
  h.push_back(snap_op(0, Snap::update(0, 9), OpStatus::NotApplied, 0, 1));
  h.push_back(snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {9, 0}));
  const auto r = check_linearizable<Snap>(h, {0, 0});
  EXPECT_EQ(r.verdict, LinVerdict::kViolation);
  EXPECT_EQ(r.forbidden, 1u);
}

TEST(LinOracle, PendingUpdateAtTraceEndIsOptionalOverVectors) {
  for (const std::int64_t seen : {0, 9}) {
    std::vector<HistoryOp<Snap>> h;
    h.push_back(snap_op(0, Snap::update(0, 9), OpStatus::Pending, 0, kNoStep));
    h.push_back(snap_op(1, Snap::scan(), OpStatus::Ok, 2, 3, {seen, 0}));
    EXPECT_TRUE(check_linearizable<Snap>(h, {0, 0}).linearizable())
        << "seen=" << seen;
  }
}

// -- safety x progress grading ------------------------------------------------

TEST(GradeRun, OracleVerdictMapsOntoSafetySummary) {
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 1, 0));
  const auto good = core::safety_from_oracle(check_linearizable<Counter>(h));
  EXPECT_TRUE(good.checked);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.verdict, "LINEARIZABLE");

  h.push_back(op(1, 1, OpStatus::Ok, 2, 3, 0));
  const auto bad = core::safety_from_oracle(check_linearizable<Counter>(h));
  EXPECT_TRUE(bad.checked);
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.witness.empty());
}

TEST(GradeRun, ResourceLimitNeverPasses) {
  LinOracle<Counter>::Options opt;
  opt.max_states = 1;
  std::vector<HistoryOp<Counter>> h;
  h.push_back(op(0, 1, OpStatus::Ok, 0, 10, 2));
  h.push_back(op(1, 2, OpStatus::Ok, 1, 2, 0));
  const auto s = core::safety_from_oracle(LinOracle<Counter>(opt).check(h));
  EXPECT_TRUE(s.checked);
  EXPECT_FALSE(s.ok);
}

TEST(GradeRun, CombinesSafetyAndProgress) {
  core::ConformanceReport progress;
  progress.ok = true;
  core::SafetySummary safety;
  safety.checked = true;
  safety.ok = true;
  safety.verdict = "LINEARIZABLE";

  util::Counters metrics;
  auto graded = core::grade_run(progress, safety, &metrics);
  EXPECT_TRUE(graded.ok());
  EXPECT_EQ(metrics.get("graded.ok"), 1u);

  safety.ok = false;
  safety.verdict = "VIOLATION";
  graded = core::grade_run(progress, safety, &metrics);
  EXPECT_FALSE(graded.ok());
  EXPECT_EQ(metrics.get("graded.safety_violation"), 1u);

  // A safety-unchecked run is graded on progress alone.
  core::SafetySummary unchecked;
  EXPECT_TRUE(core::grade_run(progress, unchecked).ok());
  progress.ok = false;
  progress.violations.push_back("wait-freedom: ...");
  EXPECT_FALSE(core::grade_run(progress, unchecked).ok());
}

}  // namespace
}  // namespace tbwf::verify
