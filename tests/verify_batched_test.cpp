// Verify-stack coverage for the batched throughput engine: the
// Wing-Gong oracle judges batched histories in terms of the INNER type
// (batching must be invisible to clients), the bounded-DFS explorer
// drives the combiner seam clean at the same bounds as the unbatched
// construction, and the planted drop-from-batch mutation (a combiner
// credits an op it never applied) is provably caught.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/schedule.hpp"
#include "verify/explorer.hpp"
#include "verify/qa_batched_harness.hpp"

namespace tbwf::verify {
namespace {

using qa::Counter;
using sim::Step;

// -- oracle: random batched runs are linearizable -----------------------------

TEST(LinOracleBatched, RandomAtomicRunsAreLinearizable) {
  auto config = batched_counter_explore_config(3, 2);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    config.world_seed = seed;
    auto factory = make_qa_batched_run_factory(config);
    auto run = factory(std::make_unique<sim::RandomSchedule>(seed * 131 + 5));
    run->world().run(200000);
    EXPECT_EQ(run->check(), "") << "seed " << seed << "\n" << run->describe();
  }
}

TEST(LinOracleBatched, RandomAbortableRunsAreLinearizable) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    registers::ProbabilisticAbortPolicy policy(seed, 0.4, 0.4, 0.5);
    QaBatchedExploreConfig<Counter, qa::AbortableBase> config;
    config.n = 2;
    config.world_seed = seed;
    config.engine.patience = 2;
    config.ops = {{Counter::Op{1}, Counter::Op{2}},
                  {Counter::Op{4}, Counter::Op{8}}};
    config.policy = &policy;
    auto factory = make_qa_batched_run_factory(config);
    auto run = factory(std::make_unique<sim::RandomSchedule>(seed * 977 + 13));
    run->world().run(400000);
    EXPECT_EQ(run->check(), "") << "seed " << seed << "\n" << run->describe();
  }
}

// -- explorer: the combiner seam is clean at bounded-DFS bounds ---------------

ExplorerOptions batched_bounds(const char* name) {
  ExplorerOptions opt;
  opt.name = name;
  opt.max_depth = 300;
  opt.max_runs = 60000;
  return opt;
}

TEST(ExplorerBatched, BoundedDfsFindsNoViolation) {
  Explorer explorer(
      make_qa_batched_run_factory(batched_counter_explore_config(2, 1)),
      batched_bounds("batched-clean"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
  EXPECT_TRUE(result.clean()) << result.summary();
  EXPECT_GT(result.stats.runs, 100u);
}

// -- mutation: a combiner that credits-without-applying is caught -------------

TEST(MutationBatched, DropFromBatchIsCaughtAndReplays) {
  auto config = batched_counter_explore_config(2, 1);
  config.mutations.drop_from_batch = true;
  Explorer explorer(make_qa_batched_run_factory(config),
                    batched_bounds("drop-from-batch"));
  const ExploreResult result = explorer.explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  EXPECT_NE(result.artifact.violation.find("VIOLATION"), std::string::npos);
  ASSERT_FALSE(result.artifact.schedule.empty());

  // The counterexample replays: the scripted prefix reproduces the
  // non-linearizable history and the exact trace digest.
  auto factory = make_qa_batched_run_factory(config);
  auto run = factory(
      std::make_unique<sim::ScriptedSchedule>(result.artifact.schedule));
  run->world().run(static_cast<Step>(result.artifact.schedule.size()));
  EXPECT_FALSE(run->check().empty());
  EXPECT_EQ(run->world().trace().digest(), result.artifact.trace_digest);
}

TEST(MutationBatched, UnmutatedEngineIsCleanAtTheSameBounds) {
  Explorer explorer(
      make_qa_batched_run_factory(batched_counter_explore_config(2, 1)),
      batched_bounds("batched-intact"));
  const ExploreResult result = explorer.explore();
  EXPECT_FALSE(result.violation_found) << result.summary();
}

}  // namespace
}  // namespace tbwf::verify
