// Tests of the simulation kernel: step accounting, register-operation
// intervals, crash handling, trace timeliness measurement.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>

#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

using I64 = std::int64_t;

std::unique_ptr<World> make_world(int n) {
  return std::make_unique<World>(n, std::make_unique<RoundRobinSchedule>());
}

// -- basic stepping -----------------------------------------------------------

struct CounterState {
  int resumed = 0;
};

Task count_resumptions(SimEnv& env, CounterState& state) {
  for (;;) {
    ++state.resumed;
    co_await env.yield();
  }
}

TEST(World, OneStepPerResumption) {
  auto w = make_world(1);
  CounterState st;
  w->spawn(0, "counter", [&st](SimEnv& env) {
    return count_resumptions(env, st);
  });
  EXPECT_EQ(w->run(10), 10u);
  // First resumption starts the coroutine; each subsequent step resumes
  // after a yield. 10 steps => 10 increments.
  EXPECT_EQ(st.resumed, 10);
  EXPECT_EQ(w->local_steps(0), 10u);
}

Task write_then_read(SimEnv& env, AtomicReg<I64> reg, I64& out) {
  co_await env.write(reg, 41);
  out = co_await env.read(reg);
}

TEST(World, AtomicRegisterRoundTrip) {
  auto w = make_world(1);
  auto reg = w->make_atomic<I64>("r", 0);
  I64 out = -1;
  w->spawn(0, "rw", [&](SimEnv& env) { return write_then_read(env, reg, out); });
  w->run(100);
  EXPECT_EQ(out, 41);
  EXPECT_EQ(w->peek(reg), 41);
  EXPECT_EQ(w->total_writes(), 1u);
  EXPECT_EQ(w->total_reads(), 1u);
}

TEST(World, RegisterOpCostsTwoSteps) {
  auto w = make_world(1);
  auto reg = w->make_atomic<I64>("r", 0);
  I64 out = -1;
  w->spawn(0, "rw", [&](SimEnv& env) { return write_then_read(env, reg, out); });
  // Step 1: start coroutine, runs to the write's invocation.
  // Step 2: write response, runs to the read's invocation.
  // Step 3: read response, coroutine completes.
  EXPECT_EQ(w->run(3), 3u);
  EXPECT_EQ(out, 41);
  EXPECT_FALSE(w->runnable(0));  // sub-task finished
}

// -- multi-process interleaving ------------------------------------------------

Task incrementer(SimEnv& env, AtomicReg<I64> reg, int times) {
  for (int i = 0; i < times; ++i) {
    I64 v = co_await env.read(reg);
    co_await env.write(reg, v + 1);
  }
}

TEST(World, RoundRobinInterleavesProcesses) {
  auto w = make_world(2);
  auto reg = w->make_atomic<I64>("c", 0);
  w->spawn(0, "inc", [&](SimEnv& env) { return incrementer(env, reg, 50); });
  w->spawn(1, "inc", [&](SimEnv& env) { return incrementer(env, reg, 50); });
  w->run(100000);
  // Lost updates are expected (read-modify-write is not atomic), but the
  // final value must be positive and at most 100.
  EXPECT_GT(w->peek(reg), 0);
  EXPECT_LE(w->peek(reg), 100);
  // Under strict round-robin with identical programs, every interleaved
  // read happens between the other's read and write => heavy loss.
  EXPECT_EQ(w->trace().steps_of(0), w->trace().steps_of(1));
}

// -- sub-task fairness -----------------------------------------------------------

Task bump_forever(SimEnv& env, int& counter) {
  for (;;) {
    ++counter;
    co_await env.yield();
  }
}

TEST(World, SubTasksShareProcessStepsFairly) {
  auto w = make_world(1);
  int a = 0, b = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(0, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->run(100);
  EXPECT_EQ(a + b, 100);
  EXPECT_NEAR(a, 50, 1);
  EXPECT_NEAR(b, 50, 1);
}

TEST(World, SpawnFromInsideCoroutine) {
  auto w = make_world(1);
  int child_runs = 0;
  struct Spawner {
    static Task parent(SimEnv& env, int& child_runs) {
      env.spawn("child", [&child_runs](SimEnv& e) {
        return bump_forever(e, child_runs);
      });
      co_await env.yield();
    }
  };
  w->spawn(0, "parent", [&](SimEnv& env) {
    return Spawner::parent(env, child_runs);
  });
  w->run(20);
  EXPECT_GT(child_runs, 0);
}

// -- abortable registers: solo ops never abort ------------------------------------

Task abortable_rw(SimEnv& env, AbortableReg<I64> reg, bool& write_ok,
                  std::optional<I64>& read_back) {
  write_ok = co_await env.write(reg, 7);
  read_back = co_await env.read(reg);
}

TEST(World, AbortableSoloOpsNeverAbort) {
  auto w = make_world(1);
  registers::AlwaysAbortPolicy policy;  // aborts only contended ops
  auto reg = w->make_abortable<I64>("ar", 0, &policy);
  bool write_ok = false;
  std::optional<I64> read_back;
  w->spawn(0, "rw", [&](SimEnv& env) {
    return abortable_rw(env, reg, write_ok, read_back);
  });
  w->run(100);
  EXPECT_TRUE(write_ok);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, 7);
}

// -- abortable registers: overlapping ops abort under AlwaysAbortPolicy ------------

Task one_write(SimEnv& env, AbortableReg<I64> reg, I64 value, bool& ok) {
  ok = co_await env.write(reg, value);
}

Task one_read(SimEnv& env, AbortableReg<I64> reg, std::optional<I64>& out) {
  out = co_await env.read(reg);
}

TEST(World, AbortableOverlappingOpsAbort) {
  // Script: p0 invokes write (step0), p1 invokes read (step1) -- overlap --
  // p0 write responds (step2), p1 read responds (step3).
  auto script = std::vector<Pid>{0, 1, 0, 1};
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(script));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Never);
  auto reg = w->make_abortable<I64>("ar", 0, &policy);
  bool write_ok = true;
  std::optional<I64> read_out = 123;
  w->spawn(0, "w", [&](SimEnv& env) {
    return one_write(env, reg, 9, write_ok);
  });
  w->spawn(1, "r", [&](SimEnv& env) { return one_read(env, reg, read_out); });
  w->run(4);
  EXPECT_FALSE(write_ok);                   // aborted
  EXPECT_FALSE(read_out.has_value());       // aborted
  EXPECT_EQ(w->peek(reg), 0);               // Effect::Never: no effect
  EXPECT_EQ(w->total_write_aborts(), 1u);
  EXPECT_EQ(w->total_read_aborts(), 1u);
}

TEST(World, AbortedWriteMayTakeEffect) {
  auto script = std::vector<Pid>{0, 1, 0, 1};
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(script));
  registers::AlwaysAbortPolicy policy(
      registers::AlwaysAbortPolicy::Effect::Always);
  auto reg = w->make_abortable<I64>("ar", 0, &policy);
  bool write_ok = true;
  std::optional<I64> read_out;
  w->spawn(0, "w", [&](SimEnv& env) {
    return one_write(env, reg, 9, write_ok);
  });
  w->spawn(1, "r", [&](SimEnv& env) { return one_read(env, reg, read_out); });
  w->run(4);
  EXPECT_FALSE(write_ok);      // caller sees bottom...
  EXPECT_EQ(w->peek(reg), 9);  // ...but the value landed
}

TEST(World, NonOverlappingSequentialOpsSucceed) {
  // p0 completes its write fully before p1 starts reading.
  auto script = std::vector<Pid>{0, 0, 1, 1};
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(script));
  registers::AlwaysAbortPolicy policy;
  auto reg = w->make_abortable<I64>("ar", 0, &policy);
  bool write_ok = false;
  std::optional<I64> read_out;
  w->spawn(0, "w", [&](SimEnv& env) {
    return one_write(env, reg, 5, write_ok);
  });
  w->spawn(1, "r", [&](SimEnv& env) { return one_read(env, reg, read_out); });
  w->run(4);
  EXPECT_TRUE(write_ok);
  ASSERT_TRUE(read_out.has_value());
  EXPECT_EQ(*read_out, 5);
}

// -- SWSR enforcement --------------------------------------------------------------

TEST(World, SwsrWriterEnforced) {
  auto w = make_world(2);
  registers::NeverAbortPolicy policy;
  auto reg = w->make_abortable<I64>("swsr", 0, &policy, /*writer=*/0,
                                    /*reader=*/1);
  bool ok = false;
  // Process 1 attempts to write a register owned by process 0.
  w->spawn(1, "bad", [&](SimEnv& env) { return one_write(env, reg, 1, ok); });
  EXPECT_THROW(w->run(10), util::SpecViolation);
}

// -- safe registers -----------------------------------------------------------------

Task safe_read(SimEnv& env, SafeReg<I64> reg, I64& out) {
  out = co_await env.read(reg);
}

Task safe_write(SimEnv& env, SafeReg<I64> reg, I64 v) {
  co_await env.write(reg, v);
}

TEST(World, SafeRegisterQuiescentReadIsCorrect) {
  auto w = make_world(1);
  auto reg = w->make_safe<I64>("s", 77);
  I64 out = 0;
  w->spawn(0, "r", [&](SimEnv& env) { return safe_read(env, reg, out); });
  w->run(10);
  EXPECT_EQ(out, 77);
}

TEST(World, SafeRegisterConcurrentReadMayReturnGarbage) {
  // Overlap a read with a write; with the default world seed the
  // arbitrary value differs from both old and new with overwhelming
  // probability. We only assert the run completes and the final value
  // is the written one.
  auto script = std::vector<Pid>{0, 1, 0, 1};
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(script));
  auto reg = w->make_safe<I64>("s", 1);
  I64 out = 0;
  w->spawn(0, "w", [&](SimEnv& env) { return safe_write(env, reg, 2); });
  w->spawn(1, "r", [&](SimEnv& env) { return safe_read(env, reg, out); });
  w->run(4);
  EXPECT_EQ(w->peek(reg), 2);
}

// -- crashes ------------------------------------------------------------------------

TEST(World, CrashStopsProcess) {
  auto w = make_world(2);
  int a = 0, b = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->schedule_crash(0, 10);
  w->run(100);
  EXPECT_TRUE(w->crashed(0));
  EXPECT_FALSE(w->crashed(1));
  EXPECT_LE(a, 6);  // p0 had at most ~5 of the first 10 alternating steps
  EXPECT_GT(b, 90);  // p1 got nearly all steps after the crash
  EXPECT_TRUE(w->trace().crashed(0));
}

TEST(World, CrashMidOperationSettlesWrite) {
  // p0 invokes a write then crashes before the response step.
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(std::vector<Pid>{0, 1, 1, 1},
                                            /*loop=*/true));
  auto reg = w->make_atomic<I64>("r", 0);
  I64 out = -1;
  w->spawn(0, "w", [&](SimEnv& env) { return write_then_read(env, reg, out); });
  int b = 0;
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->schedule_crash(0, 1);  // after p0's invocation step
  w->run(20);
  EXPECT_TRUE(w->crashed(0));
  // The crashed write either took effect (41) or not (0); both are legal.
  EXPECT_TRUE(w->peek(reg) == 0 || w->peek(reg) == 41);
  EXPECT_EQ(out, -1);  // p0 never received a response
}

// -- trace / timeliness ---------------------------------------------------------------

TEST(Trace, TimelinessUnderRoundRobin) {
  auto w = make_world(3);
  int c0 = 0, c1 = 0, c2 = 0;
  w->spawn(0, "x", [&c0](SimEnv& env) { return bump_forever(env, c0); });
  w->spawn(1, "y", [&c1](SimEnv& env) { return bump_forever(env, c1); });
  w->spawn(2, "z", [&c2](SimEnv& env) { return bump_forever(env, c2); });
  w->run(300);
  for (Pid p = 0; p < 3; ++p) {
    const auto v = w->trace().timeliness(p);
    EXPECT_FALSE(v.crashed);
    EXPECT_EQ(v.steps_taken, 100u);
    EXPECT_LE(v.empirical_bound, 3u);
    EXPECT_TRUE(v.timely_with_bound(3));
  }
  EXPECT_EQ(w->trace().timely_set(3).size(), 3u);
}

TEST(Trace, MaxGapDetectsStarvation) {
  Trace t(2);
  for (int i = 0; i < 10; ++i) t.record_step(0);
  t.record_step(1);
  for (int i = 0; i < 10; ++i) t.record_step(0);
  EXPECT_EQ(t.max_gap(1), 10u);
  EXPECT_EQ(t.max_gap(0), 1u);
  EXPECT_EQ(t.timeliness(1).empirical_bound, 11u);
}

TEST(Trace, NoStepsMeansUntimely) {
  Trace t(2);
  t.record_step(0);
  const auto v = t.timeliness(1);
  EXPECT_EQ(v.steps_taken, 0u);
  EXPECT_FALSE(v.timely_with_bound(1000000));
}

TEST(World, RunUntilPredicate) {
  auto w = make_world(1);
  int a = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  EXPECT_TRUE(w->run_until([&a] { return a >= 5; }, 1000, 1));
  EXPECT_GE(a, 5);
  EXPECT_LT(a, 20);
}

TEST(World, WriteLogRecordsEffects) {
  World::Options opts;
  opts.log_writes = true;
  auto w = std::make_unique<World>(1, std::make_unique<RoundRobinSchedule>(),
                                   opts);
  auto reg = w->make_atomic<I64>("r", 0);
  w->spawn(0, "inc", [&](SimEnv& env) { return incrementer(env, reg, 3); });
  w->run(100);
  EXPECT_EQ(w->write_log().size(), 3u);
  for (const auto& ev : w->write_log()) {
    EXPECT_EQ(ev.pid, 0);
    EXPECT_EQ(ev.reg, reg.idx);
  }
}

}  // namespace
}  // namespace tbwf::sim

namespace tbwf::sim {
namespace {

// -- nested sub-procedure coroutines (Co<T>) -------------------------------------

Co<I64> read_twice(SimEnv& env, AtomicReg<I64> reg) {
  const I64 a = co_await env.read(reg);
  const I64 b = co_await env.read(reg);
  co_return a + b;
}

Co<void> write_both(SimEnv& env, AtomicReg<I64> r1, AtomicReg<I64> r2,
                    I64 v) {
  co_await env.write(r1, v);
  co_await env.write(r2, v + 1);
}

Task nested_driver(SimEnv& env, AtomicReg<I64> r1, AtomicReg<I64> r2,
                   I64& sum) {
  co_await write_both(env, r1, r2, 10);
  sum = co_await read_twice(env, r1) + co_await read_twice(env, r2);
}

TEST(World, NestedProceduresExecuteAndReturnValues) {
  auto w = std::make_unique<World>(1, std::make_unique<RoundRobinSchedule>());
  auto r1 = w->make_atomic<I64>("r1", 0);
  auto r2 = w->make_atomic<I64>("r2", 0);
  I64 sum = -1;
  w->spawn(0, "nest", [&](SimEnv& env) {
    return nested_driver(env, r1, r2, sum);
  });
  w->run(1000);
  EXPECT_EQ(sum, 2 * 10 + 2 * 11);
  // 6 register ops pipelined back-to-back cost 7 steps (each response
  // step doubles as the next op's invocation step); calls/returns are
  // free.
  EXPECT_EQ(w->trace().now(), 7u);
}

Co<I64> recurse_sum(SimEnv& env, AtomicReg<I64> reg, int depth) {
  if (depth == 0) co_return co_await env.read(reg);
  co_return co_await recurse_sum(env, reg, depth - 1) + 1;
}

Task recursion_driver(SimEnv& env, AtomicReg<I64> reg, I64& out) {
  out = co_await recurse_sum(env, reg, 5);
}

TEST(World, DeeplyNestedProcedures) {
  auto w = std::make_unique<World>(1, std::make_unique<RoundRobinSchedule>());
  auto reg = w->make_atomic<I64>("r", 100);
  I64 out = 0;
  w->spawn(0, "rec", [&](SimEnv& env) {
    return recursion_driver(env, reg, out);
  });
  w->run(100);
  EXPECT_EQ(out, 105);
}

Task crash_inside_nested(SimEnv& env, AtomicReg<I64> reg) {
  co_await write_both(env, reg, reg, 5);
  for (;;) co_await env.yield();
}

TEST(World, CrashDestroysNestedFramesCleanly) {
  // Crash the process while it is suspended inside a nested procedure's
  // register operation; RAII must release all frames (ASAN would flag
  // leaks/double-frees).
  auto w = std::make_unique<World>(1, std::make_unique<RoundRobinSchedule>());
  auto reg = w->make_atomic<I64>("r", 0);
  w->spawn(0, "c", [&](SimEnv& env) {
    return crash_inside_nested(env, reg);
  });
  w->run(1);           // inside the first write's window
  w->crash(0);
  EXPECT_TRUE(w->crashed(0));
  EXPECT_EQ(w->run(10), 0u);  // nothing left to run
}

TEST(World, StepObserverSeesEveryStep) {
  auto w = std::make_unique<World>(2, std::make_unique<RoundRobinSchedule>());
  int a = 0, b = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  std::vector<Pid> seen;
  w->add_step_observer([&seen](Step, Pid p) { seen.push_back(p); });
  w->run(6);
  EXPECT_EQ(seen, (std::vector<Pid>{0, 1, 0, 1, 0, 1}));
}

}  // namespace
}  // namespace tbwf::sim
