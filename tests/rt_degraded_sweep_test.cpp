// Degraded-register sweeps on real threads: seeded RtFaultPlans that
// jam, drop and stale-serve the shared cell (on top of kills, stalls
// and abort storms), judged by the rt conformance checker. The rt stack
// has a single shared register rather than per-link channels, so a Jam
// window covering the whole stable suffix makes the run unjudgeable for
// completions -- the checker must then report medium_jammed, award no
// grade, and demand nothing a jammed medium could never deliver.
//
// The deterministic recovery case at the bottom is the rt half of the
// self-healing acceptance: workers quarantine the jammed cell, pace
// recovery probes on BoundedBackoff, and rejoin (commits resume) after
// the jam lifts.
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/conformance.hpp"
#include "registers/reg_faults.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_workloads.hpp"
#include "util/metrics.hpp"

namespace tbwf::rt {
namespace {

RtFaultPlan::GenOptions degraded_gen_options() {
  RtFaultPlan::GenOptions g;
  g.nthreads = 4;
  g.horizon_ns = 24000000;  // 24 ms, 40% quiet tail
  g.max_reg_faults = 2;
  return g;
}

core::RtConformanceOptions sweep_conformance_options() {
  core::RtConformanceOptions c;
  c.timely_bound_ns = 2500000;
  c.stabilization_ns = 3000000;
  c.min_suffix_ns = 4000000;
  c.max_completion_gap_ns = 12000000;
  return c;
}

void append_report_line(const std::string& line) {
  const char* path = std::getenv("RT_CONFORMANCE_REPORT");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// The instantiation prefix must keep the Rt- prefix: the tsan CI job
// selects rt tests with ctest -R '^(Rt|LeaseElector)'.
class RtDegradedSweepTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RtDegradedSweepTest, NoUnearnedGuarantee) {
  const std::uint64_t seed = GetParam();
  const auto gen = degraded_gen_options();
  const RtFaultPlan plan = RtFaultPlan::generate(seed, gen);

  LeasedCounterWorkload work(gen.nthreads);
  RtSupervisorOptions options;
  options.nthreads = gen.nthreads;
  options.run_for = std::chrono::nanoseconds(gen.horizon_ns + 6000000);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto report = core::check_rt_conformance(
      sup.snapshot(), plan, sweep_conformance_options(), &sup.counters());

  append_report_line(report.summary());
  ASSERT_TRUE(report.ok) << report.summary() << "\n" << plan.summary();

  // The soundness core: a jam covering the whole judged suffix must
  // void the grade -- wait-freedom over a register that serves nothing
  // cannot be earned, so it must not be claimed.
  EXPECT_EQ(report.medium_jammed,
            plan.jam_covers(report.suffix_from_ns, report.run_end_ns))
      << report.summary() << "\n" << plan.summary();
  if (report.medium_jammed) {
    EXPECT_EQ(report.grade, core::RtGuaranteeGrade::kNone)
        << report.summary();
    EXPECT_EQ(sup.counters().get("rt.conformance.medium_jammed"), 1u);
    // work.value() spins on reads and would hang against a permanent
    // jam; the checks below are meaningless here anyway.
    return;
  }

  // Fault accounting must match the plan exactly.
  std::uint64_t kills = 0, restarts = 0;
  for (int t = 0; t < gen.nthreads; ++t) {
    kills += sup.counters().get("rt.kills.t" + std::to_string(t));
    restarts += sup.counters().get("rt.restarts.t" + std::to_string(t));
  }
  std::uint64_t planned_restarts = 0;
  for (const auto& k : plan.kills()) {
    if (k.restart_after_ns > 0) ++planned_restarts;
  }
  EXPECT_EQ(kills, plan.kills().size()) << plan.summary();
  EXPECT_EQ(restarts, planned_restarts) << plan.summary();

  // Liveness floor on the judgeable runs: someone committed, and the
  // cell never exceeds the commit tally.
  std::uint64_t commits = 0;
  for (int t = 0; t < gen.nthreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u) << plan.summary();
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits);
}

INSTANTIATE_TEST_SUITE_P(RtSeeds, RtDegradedSweepTest,
                         ::testing::Range<std::uint64_t>(1, 102));

TEST(RtDegradedPlanTest, GenerationIsDeterministicAndDrawsRegFaults) {
  const auto gen = degraded_gen_options();
  int with_reg_faults = 0;
  for (std::uint64_t seed = 1; seed <= 101; ++seed) {
    const RtFaultPlan a = RtFaultPlan::generate(seed, gen);
    const RtFaultPlan b = RtFaultPlan::generate(seed, gen);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
    for (const auto& f : a.reg_faults()) {
      // Only jams may be permanent (any other permanent fault would
      // deny the checker a judgeable suffix).
      if (f.to_ns == RtAbortInjector::kForeverNs) {
        EXPECT_EQ(f.kind, registers::RegFaultKind::Jam) << "seed " << seed;
      }
    }
    if (!a.reg_faults().empty()) ++with_reg_faults;
  }
  EXPECT_GT(with_reg_faults, 30);
}

// Zero-default knobs keep existing seeds byte-identical: a plan drawn
// with reg faults disabled matches the pre-extension generator draw for
// draw.
TEST(RtDegradedPlanTest, DisabledKnobsLeaveOldPlansUntouched) {
  RtFaultPlan::GenOptions off = degraded_gen_options();
  off.max_reg_faults = 0;
  RtFaultPlan::GenOptions legacy;
  legacy.nthreads = off.nthreads;
  legacy.horizon_ns = off.horizon_ns;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    EXPECT_EQ(RtFaultPlan::generate(seed, off).summary(),
              RtFaultPlan::generate(seed, legacy).summary())
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Self-healing acceptance, rt half: a transient whole-cell jam trips
// per-worker quarantine; probes are paced on BoundedBackoff; the first
// post-jam success heals and commits resume, so the run still earns a
// clean conformance verdict.
// ---------------------------------------------------------------------------

TEST(RtDegradedRecovery, QuarantinedCellHealsAndCommitsResume) {
  RtFaultPlan plan(7);
  plan.reg_fault(registers::RegFaultKind::Jam, 2000000, 14000000);

  const int nthreads = 4;
  LeasedCounterWorkload work(nthreads);
  RtSupervisorOptions options;
  options.nthreads = nthreads;
  options.run_for = std::chrono::nanoseconds(32000000);  // 32 ms
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto report = core::check_rt_conformance(
      sup.snapshot(), plan, sweep_conformance_options(), &sup.counters());
  EXPECT_TRUE(report.ok) << report.summary() << "\n" << plan.summary();
  EXPECT_FALSE(report.medium_jammed);

  // The jam was real...
  EXPECT_GT(sup.counters().get("rt.regfault.injected.jam"), 0u);

  // ...some worker confirmed it and later healed...
  util::Counters health;
  work.export_health_metrics(health);
  std::uint64_t quarantines = 0, recoveries = 0, probes = 0,
                abort_rounds = 0;
  for (int t = 0; t < nthreads; ++t) {
    const std::string prefix = "rt.link.cell.t" + std::to_string(t);
    quarantines += health.get(prefix + ".quarantines");
    recoveries += health.get(prefix + ".recoveries");
    probes += health.get(prefix + ".probes");
    abort_rounds += health.get(prefix + ".abort_rounds");
  }
  EXPECT_GE(quarantines, 1u)
      << "the jam never tripped quarantine (abort rounds seen: "
      << abort_rounds << ")";
  EXPECT_GE(recoveries, 1u) << "the healed cell never rejoined";
  EXPECT_GE(probes, 1u) << "quarantine must pace recovery probes";

  // ...and the rotation recovered: commits happened and the cell value
  // is consistent with the tally.
  std::uint64_t commits = 0;
  for (int t = 0; t < nthreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u);
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits);
}

}  // namespace
}  // namespace tbwf::rt
