// Tests of Figure 4's final-value communication over abortable registers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "omega/msg_channel.hpp"
#include "registers/reg_faults.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

// The periodic-call discipline from the paper: a process calls
// WriteMsgs / ReadMsgs from its main loop, forever.
Task writer_proc(SimEnv& env, MsgEndpoint<I64>& ep,
                 const std::vector<I64>& msg_to_source) {
  for (;;) {
    co_await write_msgs(env, ep, msg_to_source);
    co_await env.yield();
  }
}

Task reader_proc(SimEnv& env, MsgEndpoint<I64>& ep) {
  for (;;) {
    co_await read_msgs(env, ep);
    co_await env.yield();
  }
}

struct Mesh {
  std::unique_ptr<World> world;
  registers::AlwaysAbortPolicy policy{
      registers::AlwaysAbortPolicy::Effect::Alternate};
  std::vector<MsgEndpoint<I64>> eps;
  std::vector<std::vector<I64>> sources;  // msgTo per process

  explicit Mesh(int n, std::uint64_t seed = 1) {
    world = std::make_unique<World>(
        n, std::make_unique<sim::RandomSchedule>(seed));
    eps = make_msg_mesh<I64>(*world, &policy, 0);
    sources.assign(n, std::vector<I64>(n, 0));
    for (Pid p = 0; p < n; ++p) {
      world->spawn(p, "writer", [this, p](SimEnv& env) {
        return writer_proc(env, eps[p], sources[p]);
      });
      world->spawn(p, "reader", [this, p](SimEnv& env) {
        return reader_proc(env, eps[p]);
      });
    }
  }
};

TEST(MsgChannel, DeliversStableValueUnderMaximalAdversary) {
  Mesh m(2, 3);
  m.sources[0][1] = 42;
  ASSERT_TRUE(m.world->run_until(
      [&] { return m.eps[1].prev_msg_from[0] == 42; }, 2000000));
}

TEST(MsgChannel, DeliversInBothDirections) {
  Mesh m(2, 5);
  m.sources[0][1] = 7;
  m.sources[1][0] = 9;
  ASSERT_TRUE(m.world->run_until(
      [&] {
        return m.eps[1].prev_msg_from[0] == 7 &&
               m.eps[0].prev_msg_from[1] == 9;
      },
      2000000));
}

TEST(MsgChannel, FinalValueWinsAfterChanges) {
  Mesh m(2, 7);
  // The source changes several times while the run is in progress; the
  // reader must converge to the final value (intermediate values may be
  // skipped entirely -- only the final one is guaranteed).
  m.sources[0][1] = 1;
  m.world->run(5000);
  m.sources[0][1] = 2;
  m.world->run(5000);
  m.sources[0][1] = 3;
  ASSERT_TRUE(m.world->run_until(
      [&] { return m.eps[1].prev_msg_from[0] == 3; }, 2000000));
  // And it stays delivered.
  m.world->run(50000);
  EXPECT_EQ(m.eps[1].prev_msg_from[0], 3);
}

TEST(MsgChannel, FullMeshPairwiseDelivery) {
  const int n = 4;
  Mesh m(n, 11);
  for (Pid p = 0; p < n; ++p) {
    for (Pid q = 0; q < n; ++q) {
      if (p != q) m.sources[p][q] = 100 * p + q;
    }
  }
  ASSERT_TRUE(m.world->run_until(
      [&] {
        for (Pid p = 0; p < n; ++p) {
          for (Pid q = 0; q < n; ++q) {
            if (p == q) continue;
            if (m.eps[q].prev_msg_from[p] != 100 * p + q) return false;
          }
        }
        return true;
      },
      8000000));
}

TEST(MsgChannel, WriterFinishesPendingValueBeforeNewOne) {
  // Figure 4 line 4: after an aborted write, the writer keeps pushing
  // msgCurr (the old pending value) even if msgTo has moved on; only a
  // successful write lets it pick up the new value. We verify the
  // invariant structurally: msg_curr changes only when prev_write_done.
  Mesh m(2, 13);
  m.sources[0][1] = 5;
  bool invariant_held = true;
  I64 last_curr = m.eps[0].msg_curr[1];
  bool last_done = m.eps[0].prev_write_done[1];
  m.world->add_step_observer([&](Step, Pid) {
    const I64 curr = m.eps[0].msg_curr[1];
    if (curr != last_curr && !last_done) invariant_held = false;
    last_curr = curr;
    last_done = m.eps[0].prev_write_done[1];
  });
  for (int i = 0; i < 50; ++i) {
    m.sources[0][1] = i;
    m.world->run(997);
  }
  EXPECT_TRUE(invariant_held);
}

TEST(MsgChannel, ReaderBacksOffOnAbortsAndUnchangedValues) {
  Mesh m(2, 17);
  m.sources[0][1] = 1;
  ASSERT_TRUE(m.world->run_until(
      [&] { return m.eps[1].prev_msg_from[0] == 1; }, 2000000));
  const auto after_delivery = m.eps[1].read_timeout[0];
  // With the value now stable, every further read returns an unchanged
  // value, so the timeout keeps growing (by design: the reader yields
  // the register to the writer).
  m.world->run(300000);
  EXPECT_GT(m.eps[1].read_timeout[0], after_delivery);
}

TEST(MsgChannel, FreshValueResetsBackoffToOne) {
  Mesh m(2, 19);
  m.sources[0][1] = 1;
  ASSERT_TRUE(m.world->run_until(
      [&] { return m.eps[1].prev_msg_from[0] == 1; }, 2000000));
  // Let the timeout grow well past 1 on the now-stable value...
  m.world->run(300000);
  ASSERT_GT(m.eps[1].read_timeout[0], 1);
  // ...then change the source and watch the reset: the smallest timeout
  // observed after the fresh value lands must be exactly 1 (line 18).
  std::int64_t min_after_fresh = m.eps[1].read_timeout[0];
  m.world->add_step_observer([&](Step, Pid) {
    if (m.eps[1].prev_msg_from[0] == 2) {
      min_after_fresh = std::min(min_after_fresh, m.eps[1].read_timeout[0]);
    }
  });
  m.sources[0][1] = 2;
  ASSERT_TRUE(m.world->run_until(
      [&] { return m.eps[1].prev_msg_from[0] == 2; }, 2000000));
  EXPECT_EQ(min_after_fresh, 1);
}

TEST(MsgChannel, BackoffSaturatesAtCapUnderPermanentJam) {
  // A permanently jammed link: every read aborts forever. The adaptive
  // timeout must grow (each abort adds one) but saturate at
  // read_timeout_cap -- unbounded growth would make any later repair
  // invisible for an unbounded time.
  auto world = std::make_unique<World>(
      2, std::make_unique<sim::RandomSchedule>(23));
  registers::RegisterFaultInjector injector(23);
  auto eps = make_msg_mesh<I64>(*world, &injector, 0, "MsgRegister");
  ASSERT_EQ(injector.arm_link(*world, 0, 1, "MsgRegister",
                              registers::RegFaultKind::Jam, 0,
                              registers::kFaultForever),
            1);
  eps[1].read_timeout_cap = 64;

  std::vector<std::vector<I64>> sources(2, std::vector<I64>(2, 0));
  sources[0][1] = 9;
  for (Pid p = 0; p < 2; ++p) {
    world->spawn(p, "writer", [&eps, &sources, p](SimEnv& env) {
      return writer_proc(env, eps[p], sources[p]);
    });
    world->spawn(p, "reader", [&eps, p](SimEnv& env) {
      return reader_proc(env, eps[p]);
    });
  }
  ASSERT_TRUE(world->run_until(
      [&] { return eps[1].read_timeout[0] == 64; }, 2000000))
      << "backoff never grew to the cap";
  world->run(500000);
  EXPECT_EQ(eps[1].read_timeout[0], 64) << "backoff must saturate, not grow";
  EXPECT_EQ(eps[1].prev_msg_from[0], 0) << "nothing can cross a jammed link";
  EXPECT_GT(eps[1].in_health[0].abort_rounds(), 0u);
  // The healthy reverse link backs off on its own (unchanged-value)
  // schedule, bounded by its own cap.
  EXPECT_LE(eps[0].read_timeout[1], eps[0].read_timeout_cap);
}

TEST(MsgChannel, SwsrConstraintEnforced) {
  auto world = std::make_unique<World>(
      3, std::make_unique<sim::RoundRobinSchedule>());
  registers::NeverAbortPolicy policy;
  auto eps = make_msg_mesh<I64>(*world, &policy, 0);
  // Process 2 tries to read MsgRegister[0,1] (reader must be 1).
  struct Intruder {
    static Task run(SimEnv& env, MsgEndpoint<I64>::Reg reg) {
      (void)co_await env.read(reg);
    }
  };
  auto stolen = eps[0].out[1];
  world->spawn(2, "intruder", [stolen](SimEnv& env) {
    return Intruder::run(env, stolen);
  });
  EXPECT_THROW(world->run(10), util::SpecViolation);
}

}  // namespace
}  // namespace tbwf::omega
