// Deterministic-replay regression: a run is a pure function of its
// (schedule seed, fault plan, configuration). Two runs with identical
// inputs must produce bit-identical traces -- Trace::digest() covers
// every step and every fault event -- and this must hold per
// configuration with the scan cache on and off. (On vs off are NOT
// compared: caching legitimately changes how many register operations
// the omega tasks issue, hence the schedule of steps. What replay
// guarantees is that each configuration is self-deterministic.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "core/tbwf.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "soak/soak.hpp"
#include "verify/artifact.hpp"
#include "verify/explorer.hpp"
#include "zoo/turn_queue.hpp"
#include "zoo/zoo_harness.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

constexpr int kN = 3;

Task forever_inc(SimEnv& env, core::TbwfObject<Counter>& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

/// One full chaos run of the TBWF stack; returns the trace digest.
std::uint64_t chaos_digest(std::uint64_t seed) {
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 150000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 2;
  opt.max_stutters = 2;
  opt.max_storms = 0;
  const FaultPlan plan = FaultPlan::generate(seed, opt);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 977 + 13)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  plan.install(world);
  world.run(300000);
  return world.trace().digest();
}

TEST(ReplayDeterminism, ChaosRunsReplayBitIdentically) {
  for (const std::uint64_t seed : {3u, 17u}) {
    EXPECT_EQ(chaos_digest(seed), chaos_digest(seed)) << "seed " << seed;
  }
}

TEST(ReplayDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(chaos_digest(3), chaos_digest(17));
}

/// Omega-on-registers election run with the scan cache toggled.
std::uint64_t omega_digest(bool scan_cache, std::uint64_t seed) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  omega::OmegaRegisters om(world);
  om.set_scan_cache(scan_cache);
  om.install_all();
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "cand", [&, p](SimEnv& env) {
      return omega::permanent_candidate(env, om.io(p));
    });
  }
  world.run(200000);
  return world.trace().digest();
}

TEST(ReplayDeterminism, ScanCacheConfigsAreEachSelfDeterministic) {
  EXPECT_EQ(omega_digest(false, 5), omega_digest(false, 5));
  EXPECT_EQ(omega_digest(true, 5), omega_digest(true, 5));
}

/// The soak harness extends the replay property all the way up: one
/// seed fixes not just the trace but the SLO verdict -- every measured
/// number the budgets grade -- and the joint service verdict.
TEST(ReplayDeterminism, SoakSloVerdictsReplayIdentically) {
  for (const std::uint64_t seed : {1ULL, 9ULL}) {
    const soak::SimSoakResult a =
        soak::run_sim_soak(soak::SimSoakOptions::quick(seed));
    const soak::SimSoakResult b =
        soak::run_sim_soak(soak::SimSoakOptions::quick(seed));
    EXPECT_EQ(a.trace_digest, b.trace_digest) << "seed " << seed;
    EXPECT_EQ(a.stats.submitted, b.stats.submitted);
    EXPECT_EQ(a.stats.completed, b.stats.completed);
    EXPECT_EQ(a.stats.route_probes, b.stats.route_probes);
    EXPECT_EQ(a.stats.commit.p999(), b.stats.commit.p999());
    EXPECT_EQ(a.availability.total_unavailable(),
              b.availability.total_unavailable());
    EXPECT_EQ(a.slo.ok, b.slo.ok);
    EXPECT_EQ(a.slo.violations, b.slo.violations);
    EXPECT_EQ(a.joint.ok(), b.joint.ok());
    EXPECT_EQ(a.state_value, b.state_value);
  }
}

TEST(ReplayDeterminism, SoakSeedsDiverge) {
  EXPECT_NE(soak::run_sim_soak(soak::SimSoakOptions::quick(1)).trace_digest,
            soak::run_sim_soak(soak::SimSoakOptions::quick(9)).trace_digest);
}

// -- zoo counterexample artifacts -----------------------------------------

/// The zoo's canonical counterexample generator: two dequeuers race for
/// one item through a TurnQueue whose claim-validation collect is
/// mutated away, and both walk off with the same value. The artifact
/// the explorer emits for that violation must replay bit-identically --
/// twice, and through the on-disk save/load round trip, because what CI
/// uploads is exactly what a developer replays locally.
TEST(ReplayDeterminism, ZooCounterexampleArtifactReplaysBitIdentically) {
  using Q = zoo::BoundedQueueOf<4>;
  using Spec = zoo::TurnQueue<4>;

  zoo::ZooExploreConfig<Q> config;
  config.n = 2;
  config.initial = {100};
  config.ops.resize(2);
  config.ops[0] = {Q::dequeue()};
  config.ops[1] = {Q::dequeue()};

  const typename zoo::ZooExploredRun<Q, Spec>::Maker maker =
      [](sim::World& w, const Q::State& init) {
        auto obj = std::make_unique<Spec>(w, init);
        obj->set_mutations(zoo::TurnQueueMutations{.drop_claim_fence = true});
        return obj;
      };
  const verify::RunFactory factory =
      zoo::make_zoo_run_factory<Q, Spec>(config, maker);

  verify::ExplorerOptions opt;
  opt.name = "replay-zoo-queue-dropfence";
  opt.max_depth = 500;
  opt.max_runs = 60000;
  const verify::ExploreResult result = verify::Explorer(factory, opt).explore();
  ASSERT_TRUE(result.violation_found) << result.summary();
  ASSERT_FALSE(result.artifact.schedule.empty());

  // Round-trip the artifact through its file format first; all replays
  // below run from the LOADED copy, not the in-memory original.
  const std::string path = ::testing::TempDir() + "zoo_dropfence_cex.txt";
  ASSERT_TRUE(result.artifact.save(path));
  const auto loaded = verify::CounterexampleArtifact::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->schedule, result.artifact.schedule);
  EXPECT_EQ(loaded->trace_digest, result.artifact.trace_digest);
  EXPECT_EQ(loaded->world_seed, result.artifact.world_seed);
  EXPECT_EQ(loaded->n, 2);

  for (int round = 0; round < 2; ++round) {
    auto run = factory(
        std::make_unique<sim::ScriptedSchedule>(loaded->schedule));
    run->world().run(static_cast<Step>(loaded->schedule.size()));
    EXPECT_EQ(run->world().trace().digest(), loaded->trace_digest)
        << "replay round " << round;
    const std::string verdict = run->check();
    EXPECT_NE(verdict.find("VIOLATION"), std::string::npos) << verdict;
  }
}

}  // namespace
}  // namespace tbwf
