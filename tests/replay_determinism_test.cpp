// Deterministic-replay regression: a run is a pure function of its
// (schedule seed, fault plan, configuration). Two runs with identical
// inputs must produce bit-identical traces -- Trace::digest() covers
// every step and every fault event -- and this must hold per
// configuration with the scan cache on and off. (On vs off are NOT
// compared: caching legitimately changes how many register operations
// the omega tasks issue, hence the schedule of steps. What replay
// guarantees is that each configuration is self-deterministic.)
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "core/tbwf.hpp"
#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "soak/soak.hpp"

namespace tbwf {
namespace {

using qa::Counter;
using sim::FaultPlan;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;

constexpr int kN = 3;

Task forever_inc(SimEnv& env, core::TbwfObject<Counter>& obj) {
  for (;;) (void)co_await obj.invoke(env, Counter::Op{1});
}

/// One full chaos run of the TBWF stack; returns the trace digest.
std::uint64_t chaos_digest(std::uint64_t seed) {
  FaultPlan::GenOptions opt;
  opt.n = kN;
  opt.horizon = 150000;
  opt.quiet_tail = 0.5;
  opt.max_crash_cycles = 2;
  opt.max_stutters = 2;
  opt.max_storms = 0;
  const FaultPlan plan = FaultPlan::generate(seed, opt);

  World world(kN, plan.wrap(std::make_unique<sim::RandomSchedule>(
                      seed * 977 + 13)));
  core::TbwfSystem<Counter> sys(world, 0,
                                core::OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < kN; ++p) {
    world.spawn(p, "w", [&](SimEnv& env) {
      return forever_inc(env, sys.object());
    });
  }
  plan.install(world);
  world.run(300000);
  return world.trace().digest();
}

TEST(ReplayDeterminism, ChaosRunsReplayBitIdentically) {
  for (const std::uint64_t seed : {3u, 17u}) {
    EXPECT_EQ(chaos_digest(seed), chaos_digest(seed)) << "seed " << seed;
  }
}

TEST(ReplayDeterminism, DifferentSeedsDiverge) {
  EXPECT_NE(chaos_digest(3), chaos_digest(17));
}

/// Omega-on-registers election run with the scan cache toggled.
std::uint64_t omega_digest(bool scan_cache, std::uint64_t seed) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, sim::ActivitySpec::timely(4 * n));
  World world(n, std::make_unique<sim::TimelinessSchedule>(specs, seed));
  omega::OmegaRegisters om(world);
  om.set_scan_cache(scan_cache);
  om.install_all();
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "cand", [&, p](SimEnv& env) {
      return omega::permanent_candidate(env, om.io(p));
    });
  }
  world.run(200000);
  return world.trace().digest();
}

TEST(ReplayDeterminism, ScanCacheConfigsAreEachSelfDeterministic) {
  EXPECT_EQ(omega_digest(false, 5), omega_digest(false, 5));
  EXPECT_EQ(omega_digest(true, 5), omega_digest(true, 5));
}

/// The soak harness extends the replay property all the way up: one
/// seed fixes not just the trace but the SLO verdict -- every measured
/// number the budgets grade -- and the joint service verdict.
TEST(ReplayDeterminism, SoakSloVerdictsReplayIdentically) {
  for (const std::uint64_t seed : {1ULL, 9ULL}) {
    const soak::SimSoakResult a =
        soak::run_sim_soak(soak::SimSoakOptions::quick(seed));
    const soak::SimSoakResult b =
        soak::run_sim_soak(soak::SimSoakOptions::quick(seed));
    EXPECT_EQ(a.trace_digest, b.trace_digest) << "seed " << seed;
    EXPECT_EQ(a.stats.submitted, b.stats.submitted);
    EXPECT_EQ(a.stats.completed, b.stats.completed);
    EXPECT_EQ(a.stats.route_probes, b.stats.route_probes);
    EXPECT_EQ(a.stats.commit.p999(), b.stats.commit.p999());
    EXPECT_EQ(a.availability.total_unavailable(),
              b.availability.total_unavailable());
    EXPECT_EQ(a.slo.ok, b.slo.ok);
    EXPECT_EQ(a.slo.violations, b.slo.violations);
    EXPECT_EQ(a.joint.ok(), b.joint.ok());
    EXPECT_EQ(a.state_value, b.state_value);
  }
}

TEST(ReplayDeterminism, SoakSeedsDiverge) {
  EXPECT_NE(soak::run_sim_soak(soak::SimSoakOptions::quick(1)).trace_digest,
            soak::run_sim_soak(soak::SimSoakOptions::quick(9)).trace_digest);
}

}  // namespace
}  // namespace tbwf
