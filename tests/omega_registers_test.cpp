// Tests of Omega-Delta from activity monitors + atomic registers
// (Figure 3) against Definition 5 and Theorem 7.
#include <gtest/gtest.h>

#include <memory>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_registers.hpp"
#include "omega/omega_spec.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::omega {
namespace {

using sim::ActivitySpec;
using sim::Pid;
using sim::Step;
using sim::World;

struct Harness {
  std::unique_ptr<World> world;
  std::unique_ptr<OmegaRegisters> omega;
  std::unique_ptr<OmegaRecord> record;
  std::vector<Pid> intended_timely;

  Harness(std::vector<ActivitySpec> specs, std::uint64_t seed = 1,
          sim::WorldOptions opts = sim::WorldOptions()) {
    auto sched = std::make_unique<sim::TimelinessSchedule>(specs, seed);
    intended_timely = sched->intended_timely();
    world = std::make_unique<World>(static_cast<int>(specs.size()),
                                    std::move(sched), opts);
    for (std::size_t p = 0; p < specs.size(); ++p) {
      if (specs[p].crash_at != sim::Trace::kNever) {
        world->schedule_crash(static_cast<Pid>(p), specs[p].crash_at);
      }
    }
    omega = std::make_unique<OmegaRegisters>(*world);
    omega->install_all();
    record = std::make_unique<OmegaRecord>(*world, omega->ios());
  }

  void drive_permanent(Pid p) {
    world->spawn(p, "cand", [this](sim::SimEnv& env) {
      return permanent_candidate(env, omega->io(env.pid()));
    });
  }
  void drive_never(Pid p, Step dabble = 0) {
    world->spawn(p, "cand", [this, dabble](sim::SimEnv& env) {
      return never_candidate(env, omega->io(env.pid()), dabble);
    });
  }
  void drive_repeated(Pid p, Step on, Step off, bool canonical) {
    world->spawn(p, "cand", [this, on, off, canonical](sim::SimEnv& env) {
      return canonical
                 ? canonical_repeated_candidate(env, omega->io(env.pid()),
                                                on, off)
                 : repeated_candidate(env, omega->io(env.pid()), on, off);
    });
  }
};

// -- all timely, all permanent candidates -----------------------------------------

TEST(OmegaRegisters, AllTimelyPermanentCandidatesElectStableLeader) {
  const int n = 4;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)), 1);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(400000);

  CandidateClassification classes;
  for (Pid p = 0; p < n; ++p) classes.pcandidates.push_back(p);
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 200000);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_NE(result.elected, kNoLeader);
}

TEST(OmegaRegisters, SingleCandidateElectsItself) {
  const int n = 3;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)), 2);
  h.drive_permanent(1);
  h.drive_never(0);
  h.drive_never(2);
  h.world->run(200000);

  CandidateClassification classes;
  classes.pcandidates = {1};
  classes.ncandidates = {0, 2};
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 100000);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.elected, 1);
}

// -- the headline property: untimely candidates lose to timely ones ----------------

TEST(OmegaRegisters, TimelyCandidateBeatsUntimelyLowerPid) {
  // p0 would win every lexicographic tie-break, but it is not timely
  // (growing silent gaps); the elected leader must be timely p1.
  std::vector<ActivitySpec> specs = {
      ActivitySpec::growing_flicker(400, 100),
      ActivitySpec::timely(8),
      ActivitySpec::eager(),
  };
  Harness h(specs, 3);
  for (Pid p = 0; p < 3; ++p) h.drive_permanent(p);
  h.world->run(1500000);

  CandidateClassification classes;
  classes.pcandidates = {0, 1, 2};
  // p0 is a permanent candidate but not timely: property 1b does not
  // constrain it the same way -- it is still required to converge to l.
  // Check only over processes that take steps in the suffix: p0's
  // trajectory updates only when p0 runs, so give a generous margin.
  const auto result =
      check_omega_spec(*h.record, classes, /*timely=*/{1, 2}, 1200000);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_NE(result.elected, 0) << "untimely process must not stay leader";
}

TEST(OmegaRegisters, FlickeringCandidateNeverStaysLeader) {
  // p0 flickers (correct, not timely) and competes forever; p1 and p2
  // are timely permanent candidates. Eventually leader must settle on a
  // timely process at p1/p2 even though p0 keeps coming back.
  std::vector<ActivitySpec> specs = {
      ActivitySpec::growing_flicker(300, 200),
      ActivitySpec::timely(6),
      ActivitySpec::timely(6),
  };
  Harness h(specs, 7);
  for (Pid p = 0; p < 3; ++p) h.drive_permanent(p);
  h.world->run(2000000);

  // In the suffix, leaders at the timely processes settle on one of them.
  const Pid l1 = h.record->leader(1).value_at(1700000);
  EXPECT_TRUE(l1 == 1 || l1 == 2) << "leader at p1 = " << l1;
  EXPECT_TRUE(h.record->leader(1).constant_since(1700000));
  EXPECT_EQ(h.record->leader(2).value_at(1700000), l1);
  EXPECT_TRUE(h.record->leader(2).constant_since(1700000));
}

// -- non-candidates --------------------------------------------------------------

TEST(OmegaRegisters, NonCandidatesConvergeToQuestion) {
  const int n = 4;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)), 5);
  h.drive_permanent(0);
  h.drive_never(1, /*dabble=*/500);  // candidate briefly, then never again
  h.drive_never(2);
  h.drive_never(3, /*dabble=*/2000);
  h.world->run(300000);

  CandidateClassification classes;
  classes.pcandidates = {0};
  classes.ncandidates = {1, 2, 3};
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 150000);
  EXPECT_TRUE(result.ok) << result.summary();
  EXPECT_EQ(result.elected, 0);
}

// -- repeated candidates -----------------------------------------------------------

TEST(OmegaRegisters, RepeatedCandidatesStayInQuestionOrLeader) {
  const int n = 4;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)), 9);
  h.drive_permanent(0);
  h.drive_permanent(1);
  h.drive_repeated(2, 3000, 3000, /*canonical=*/false);
  h.drive_repeated(3, 5000, 2000, /*canonical=*/true);
  h.world->run(4000000);

  CandidateClassification classes;
  classes.pcandidates = {0, 1};
  classes.rcandidates = {2, 3};
  const auto result = check_omega_spec(*h.record, classes,
                                       h.intended_timely, 3000000,
                                       /*require_leader_permanent=*/true);
  EXPECT_TRUE(result.ok) << result.summary();
}

// -- crash of the incumbent leader ---------------------------------------------------

TEST(OmegaRegisters, LeaderCrashTriggersReelection) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  Harness h(specs, 11);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(200000);
  const Pid first = h.omega->io(2).leader;
  EXPECT_NE(first, kNoLeader);

  h.world->crash(first);
  h.world->run(400000);
  // The survivors elect a new, live leader.
  for (Pid p = 0; p < n; ++p) {
    if (p == first) continue;
    const Pid l = h.omega->io(p).leader;
    EXPECT_NE(l, first) << "p" << p << " still trusts the crashed leader";
    EXPECT_NE(l, kNoLeader);
    EXPECT_FALSE(h.world->crashed(l));
  }
}

// -- write efficiency (closing remark of Section 5.2) --------------------------------

TEST(OmegaRegisters, EventuallyOnlyLeaderWrites) {
  const int n = 4;
  sim::WorldOptions opts;
  opts.log_writes = true;
  Harness h(sim::uniform_specs(n, ActivitySpec::timely(4 * n)), 13, opts);
  for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
  h.world->run(600000);

  const Pid leader = h.omega->io(0).leader;
  ASSERT_NE(leader, kNoLeader);
  // In the last 100k steps, every shared write must come from the leader.
  const Step cutoff = 500000;
  for (const auto& ev : h.world->write_log()) {
    if (ev.step < cutoff) continue;
    EXPECT_EQ(ev.pid, leader) << "non-leader write at step " << ev.step;
  }
}

// -- determinism ----------------------------------------------------------------------

TEST(OmegaRegisters, RunsAreReproducible) {
  auto run_once = [](std::uint64_t seed) {
    const int n = 4;
    Harness h(sim::uniform_specs(n, ActivitySpec::eager()), seed);
    for (Pid p = 0; p < n; ++p) h.drive_permanent(p);
    h.world->run(150000);
    std::vector<Pid> leaders;
    for (Pid p = 0; p < n; ++p) leaders.push_back(h.omega->io(p).leader);
    return leaders;
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

}  // namespace
}  // namespace tbwf::omega
