// Tests of the wait-free query-abortable universal construction,
// exercised over both atomic and abortable base registers.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "qa/qa_universal.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::qa {
namespace {

using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

sim::ActivitySpec ActivitySpec_active() { return sim::ActivitySpec::eager(); }

// -- typed fixture over the two base-register policies --------------------------------

template <class BasePolicy>
struct BaseTraits;

template <>
struct BaseTraits<AtomicBase> {
  static registers::AbortPolicy* policy(std::uint64_t) { return nullptr; }
};

template <>
struct BaseTraits<AbortableBase> {
  static registers::AbortPolicy* policy(std::uint64_t seed) {
    static thread_local std::vector<
        std::unique_ptr<registers::ProbabilisticAbortPolicy>>
        pool;
    pool.push_back(std::make_unique<registers::ProbabilisticAbortPolicy>(
        seed, 0.6, 0.6, 0.5));
    return pool.back().get();
  }
};

template <class BasePolicy>
class QaUniversalTest : public ::testing::Test {};

using BasePolicies = ::testing::Types<AtomicBase, AbortableBase>;
TYPED_TEST_SUITE(QaUniversalTest, BasePolicies);

// -- workload helpers --------------------------------------------------------------------

struct WorkerStats {
  std::uint64_t applied = 0;
  std::uint64_t dropped = 0;  // ops whose fate resolved to F
  std::vector<I64> results;   // results of applied ops
  bool done = false;
};

template <class Obj>
Task counter_worker(SimEnv& env, Obj& obj, int ops, WorkerStats& st) {
  for (int i = 0; i < ops; ++i) {
    auto r = co_await obj.invoke(env, Counter::Op{1});
    while (r.bottom()) {
      r = co_await obj.query(env);
      if (r.bottom()) co_await env.yield();
    }
    if (r.ok()) {
      ++st.applied;
      st.results.push_back(r.value);
    } else {
      ++st.dropped;
    }
  }
  st.done = true;
}

// -- solo behaviour ------------------------------------------------------------------------

TYPED_TEST(QaUniversalTest, SoloOperationsAlwaysSucceed) {
  auto w = std::make_unique<World>(1,
                                   std::make_unique<sim::RoundRobinSchedule>());
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(1));
  WorkerStats st;
  w->spawn(0, "worker", [&](SimEnv& env) {
    return counter_worker(env, obj, 100, st);
  });
  w->run(10000000);
  ASSERT_TRUE(st.done);
  EXPECT_EQ(st.applied, 100u);
  EXPECT_EQ(st.dropped, 0u);
  EXPECT_EQ(obj.peek_frontier().state, 100);
}

TYPED_TEST(QaUniversalTest, SoloOperationStepsAreBounded) {
  // Wait-freedom: the number of the caller's own steps per invoke is
  // bounded by a constant (for fixed n). Measure the max over 50 ops.
  const int n = 4;  // three idle processes present but silent
  std::vector<sim::ActivitySpec> specs = {ActivitySpec_active(),
                                          sim::ActivitySpec::silent(),
                                          sim::ActivitySpec::silent(),
                                          sim::ActivitySpec::silent()};
  auto w = std::make_unique<World>(
      n, std::make_unique<sim::TimelinessSchedule>(specs, 1));
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(2));

  struct Probe {
    static Task run(SimEnv& env, QaUniversal<Counter, TypeParam>& obj,
                    Step& max_steps, bool& done) {
      for (int i = 0; i < 50; ++i) {
        const Step before = env.local_steps();
        auto r = co_await obj.invoke(env, Counter::Op{1});
        const Step used = env.local_steps() - before;
        if (used > max_steps) max_steps = used;
        EXPECT_TRUE(r.ok());
      }
      done = true;
    }
  };
  Step max_steps = 0;
  bool done = false;
  w->spawn(0, "probe", [&](SimEnv& env) {
    return Probe::run(env, obj, max_steps, done);
  });
  w->run(1000000);
  ASSERT_TRUE(done);
  // 2 attempts x ~3n register ops x 2 steps, plus slack for locals.
  EXPECT_LE(max_steps, static_cast<Step>(16 * n + 32));
}

// -- contended fate accounting ------------------------------------------------------------

TYPED_TEST(QaUniversalTest, ContendedCounterAccountingIsExact) {
  const int n = 4;
  const int ops = 60;
  auto w = std::make_unique<World>(n,
                                   std::make_unique<sim::RandomSchedule>(7));
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(3));
  std::vector<WorkerStats> stats(n);
  for (Pid p = 0; p < n; ++p) {
    w->spawn(p, "worker", [&, p](SimEnv& env) {
      return counter_worker(env, obj, ops, stats[p]);
    });
  }
  ASSERT_TRUE(w->run_until(
      [&] {
        return std::all_of(stats.begin(), stats.end(),
                           [](const WorkerStats& s) { return s.done; });
      },
      80000000));

  std::uint64_t total_applied = 0;
  std::vector<I64> all_results;
  for (const auto& s : stats) {
    total_applied += s.applied;
    all_results.insert(all_results.end(), s.results.begin(),
                       s.results.end());
  }
  // The final object value equals the number of applied increments.
  EXPECT_EQ(obj.peek_frontier().state,
            static_cast<I64>(total_applied));
  // Linearizability of a fetch-and-add counter: the "value before"
  // results of the applied increments are exactly {0, ..., K-1}.
  std::sort(all_results.begin(), all_results.end());
  for (std::size_t i = 0; i < all_results.size(); ++i) {
    EXPECT_EQ(all_results[i], static_cast<I64>(i));
  }
}

TYPED_TEST(QaUniversalTest, CasCellAtMostOneWinnerPerExpectedValue) {
  const int n = 4;
  auto w = std::make_unique<World>(n,
                                   std::make_unique<sim::RandomSchedule>(9));
  QaUniversal<CasCell, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(4));

  struct CasWorker {
    static Task run(SimEnv& env, QaUniversal<CasCell, TypeParam>& obj,
                    char& won, char& done) {
      // Try to CAS 0 -> pid+1 until the fate is determined.
      auto r = co_await obj.invoke(
          env, CasCell::cas(0, env.pid() + 1));
      while (r.bottom()) {
        r = co_await obj.query(env);
        if (r.bottom()) co_await env.yield();
      }
      won = (r.ok() && r.value.success) ? 1 : 0;
      done = 1;
    }
  };
  std::vector<char> won(n, 0), done(n, 0);
  for (Pid p = 0; p < n; ++p) {
    w->spawn(p, "cas", [&, p](SimEnv& env) {
      return CasWorker::run(env, obj, won[p], done[p]);
    });
  }
  ASSERT_TRUE(w->run_until(
      [&] {
        return std::all_of(done.begin(), done.end(),
                           [](char d) { return d != 0; });
      },
      80000000));
  const int winners =
      static_cast<int>(std::count(won.begin(), won.end(), 1));
  EXPECT_LE(winners, 1);
  const I64 final_value = obj.peek_frontier().state;
  if (winners == 1) {
    for (Pid p = 0; p < n; ++p) {
      if (won[p]) {
        EXPECT_EQ(final_value, p + 1);
      }
    }
  }
}

TYPED_TEST(QaUniversalTest, QueueIsFifoPerProducer) {
  const int n = 3;
  const int per_proc = 30;
  auto w = std::make_unique<World>(n,
                                   std::make_unique<sim::RandomSchedule>(11));
  QaUniversal<Queue, TypeParam> obj(*w, Queue::State{},
                                    BaseTraits<TypeParam>::policy(5));

  struct Producer {
    static Task run(SimEnv& env, QaUniversal<Queue, TypeParam>& obj,
                    int count, std::vector<I64>& applied, char& done) {
      for (int i = 0; i < count; ++i) {
        const I64 v = env.pid() * 1000 + i;
        auto r = co_await obj.invoke(env, Queue::enqueue(v));
        while (r.bottom()) {
          r = co_await obj.query(env);
          if (r.bottom()) co_await env.yield();
        }
        if (r.ok()) applied.push_back(v);
      }
      done = 1;
    }
  };
  std::vector<std::vector<I64>> applied(n);
  std::vector<char> done(n, 0);
  for (Pid p = 0; p < n; ++p) {
    w->spawn(p, "prod", [&, p](SimEnv& env) {
      return Producer::run(env, obj, per_proc, applied[p], done[p]);
    });
  }
  ASSERT_TRUE(w->run_until(
      [&] {
        return std::all_of(done.begin(), done.end(),
                           [](char d) { return d != 0; });
      },
      80000000));

  // The decided queue must contain every applied value exactly once, in
  // per-producer FIFO order.
  const auto frontier = obj.peek_frontier();
  std::vector<I64> in_queue(frontier.state.begin(), frontier.state.end());
  std::size_t total_applied = 0;
  for (Pid p = 0; p < n; ++p) {
    total_applied += applied[p].size();
    std::vector<I64> mine;
    for (I64 v : in_queue) {
      if (v / 1000 == p) mine.push_back(v);
    }
    EXPECT_EQ(mine, applied[p]) << "producer " << p;
  }
  EXPECT_EQ(in_queue.size(), total_applied);
}

// -- query semantics -------------------------------------------------------------------------

TYPED_TEST(QaUniversalTest, QueryWithNoPriorOpReturnsF) {
  auto w = std::make_unique<World>(2,
                                   std::make_unique<sim::RoundRobinSchedule>());
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(6));
  struct Q {
    static Task run(SimEnv& env, QaUniversal<Counter, TypeParam>& obj,
                    QaTag& tag, bool& done) {
      auto r = co_await obj.query(env);
      tag = r.tag;
      done = true;
    }
  };
  QaTag tag = QaTag::Ok;
  bool done = false;
  w->spawn(0, "q", [&](SimEnv& env) { return Q::run(env, obj, tag, done); });
  w->run(100000);
  ASSERT_TRUE(done);
  EXPECT_EQ(tag, QaTag::NotApplied);
}

TYPED_TEST(QaUniversalTest, QueryAfterSuccessReturnsSameResult) {
  auto w = std::make_unique<World>(2,
                                   std::make_unique<sim::RoundRobinSchedule>());
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(7));
  struct Q {
    static Task run(SimEnv& env, QaUniversal<Counter, TypeParam>& obj,
                    bool& consistent, bool& done) {
      auto r = co_await obj.invoke(env, Counter::Op{5});
      auto q = co_await obj.query(env);
      consistent = r.ok() && q.ok() && r.value == q.value;
      done = true;
    }
  };
  bool consistent = false, done = false;
  w->spawn(0, "q", [&](SimEnv& env) {
    return Q::run(env, obj, consistent, done);
  });
  w->run(100000);
  ASSERT_TRUE(done);
  EXPECT_TRUE(consistent);
}

// -- crash robustness --------------------------------------------------------------------------

TYPED_TEST(QaUniversalTest, SurvivorsContinueAfterCrash) {
  const int n = 3;
  auto w = std::make_unique<World>(n,
                                   std::make_unique<sim::RandomSchedule>(13));
  QaUniversal<Counter, TypeParam> obj(*w, 0,
                                      BaseTraits<TypeParam>::policy(8));
  std::vector<WorkerStats> stats(n);
  for (Pid p = 0; p < n; ++p) {
    w->spawn(p, "worker", [&, p](SimEnv& env) {
      return counter_worker(env, obj, 40, stats[p]);
    });
  }
  w->schedule_crash(0, 2000);
  ASSERT_TRUE(w->run_until(
      [&] { return stats[1].done && stats[2].done; }, 80000000));

  // Survivors applied everything they report; the final value counts
  // their applied ops plus however many of p0's landed before the crash.
  const I64 final_value = obj.peek_frontier().state;
  const I64 survivors =
      static_cast<I64>(stats[1].applied + stats[2].applied);
  EXPECT_GE(final_value, survivors);
  EXPECT_LE(final_value, survivors + 40);
}

}  // namespace
}  // namespace tbwf::qa
