// Epoch-based dynamic membership: the core epoch timeline, the sim
// MembershipDirector, seed-replayable membership generation, the
// service-level epoch fence (a removed leader's stale writes are
// REJECTED, not trusted), re-stabilization after a remove-and-rejoin,
// per-epoch conformance grading, and the view-thrash breach that flips
// only the TBWF axis of the joint verdict.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/membership.hpp"
#include "sim/faultplan.hpp"
#include "sim/membership.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "soak/soak.hpp"

namespace tbwf {
namespace {

// -- core::epoch_windows --------------------------------------------------------

TEST(EpochWindows, NoEventsIsOneFullWindow) {
  const auto windows = core::epoch_windows(3, {}, 1000);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].epoch, 0u);
  EXPECT_EQ(windows[0].from, 0u);
  EXPECT_EQ(windows[0].to, 1000u);
  EXPECT_EQ(windows[0].member_count(), 3);
}

TEST(EpochWindows, LeaveAndJoinSplitTheTimeline) {
  std::vector<core::MembershipEvent> events = {
      {core::MembershipKind::kLeave, 1, -1, 100},
      {core::MembershipKind::kJoin, 1, -1, 400},
  };
  const auto windows = core::epoch_windows(3, events, 1000);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].to, 100u);
  EXPECT_TRUE(windows[0].members[1]);
  EXPECT_EQ(windows[1].epoch, 1u);
  EXPECT_EQ(windows[1].from, 100u);
  EXPECT_EQ(windows[1].to, 400u);
  EXPECT_FALSE(windows[1].members[1]);
  EXPECT_EQ(windows[1].member_count(), 2);
  EXPECT_EQ(windows[2].epoch, 2u);
  EXPECT_TRUE(windows[2].members[1]);
  EXPECT_EQ(windows[2].to, 1000u);
}

TEST(EpochWindows, ReplaceSwapsOneSeatInOneEpoch) {
  // Seat 3 leaves first so the later replace genuinely swaps one seat
  // for another: the membership count is conserved across the replace.
  std::vector<core::MembershipEvent> events = {
      {core::MembershipKind::kLeave, 3, -1, 100},
      {core::MembershipKind::kReplace, 0, 3, 500},
  };
  const auto windows = core::epoch_windows(4, events, 1000);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[1].member_count(), 3);
  EXPECT_FALSE(windows[2].members[0]);
  EXPECT_TRUE(windows[2].members[3]);
  EXPECT_EQ(windows[2].member_count(), 3);
}

TEST(EpochWindows, UnsortedEventsAreOrderedByTime) {
  std::vector<core::MembershipEvent> events = {
      {core::MembershipKind::kJoin, 2, -1, 700},
      {core::MembershipKind::kLeave, 2, -1, 200},
  };
  const auto windows = core::epoch_windows(3, events, 1000);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_FALSE(windows[1].members[2]);
  EXPECT_TRUE(windows[2].members[2]);
}

// -- MembershipDirector ---------------------------------------------------------

TEST(MembershipDirector, AppliesEventsAtTheirSteps) {
  sim::World world(2, std::make_unique<sim::RoundRobinSchedule>());
  sim::MembershipDirector director(2);
  std::vector<core::MembershipEvent> events = {
      {core::MembershipKind::kLeave, 1, -1, 50},
      {core::MembershipKind::kJoin, 1, -1, 120},
  };
  director.install(world, events);
  // Keep both pids stepping so the observer fires.
  for (sim::Pid p = 0; p < 2; ++p) {
    world.spawn(p, "idle", [](sim::SimEnv& env) -> sim::Task {
      for (;;) co_await env.yield();
    });
  }
  EXPECT_EQ(director.epoch(), 0u);
  EXPECT_TRUE(director.member(1));
  world.run(80);
  EXPECT_EQ(director.epoch(), 1u);
  EXPECT_FALSE(director.member(1));
  EXPECT_TRUE(director.member(0));
  world.run(200);
  EXPECT_EQ(director.epoch(), 2u);
  EXPECT_TRUE(director.member(1));
  EXPECT_EQ(director.member_count(), 2);
}

// -- FaultPlan membership generation --------------------------------------------

std::string without_view_lines(const std::string& summary) {
  std::istringstream in(summary);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("view ") == std::string::npos) out << line << "\n";
  }
  return out.str();
}

TEST(FaultPlanMembership, DrawsAppendAfterEveryOtherFamily) {
  // The membership knob must not perturb any other draw: a plan
  // generated with churn enabled is the churn-free plan plus view
  // events -- existing seeds replay byte for byte.
  sim::FaultPlan::GenOptions base;
  base.n = 4;
  base.max_storms = 1;
  base.max_link_faults = 2;
  const sim::FaultPlan before = sim::FaultPlan::generate(321, base);
  sim::FaultPlan::GenOptions churn = base;
  churn.max_membership_cycles = 3;
  churn.churn_pid = 3;
  const sim::FaultPlan after = sim::FaultPlan::generate(321, churn);
  EXPECT_TRUE(before.membership().empty());
  EXPECT_EQ(without_view_lines(before.summary()),
            without_view_lines(after.summary()));
}

TEST(FaultPlanMembership, GeneratedChurnTargetsThePinnedSeat) {
  sim::FaultPlan::GenOptions gen;
  gen.n = 4;
  gen.max_membership_cycles = 3;
  gen.churn_pid = 3;
  bool any = false;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::FaultPlan plan = sim::FaultPlan::generate(seed, gen);
    for (const auto& ev : plan.membership()) {
      any = true;
      EXPECT_EQ(ev.pid, 3);
      EXPECT_LT(ev.at, gen.horizon);
      if (ev.kind == core::MembershipKind::kReplace) {
        EXPECT_EQ(ev.replacement, 3);
      }
    }
    // Cycles come in matched leave/join pairs or single replaces, so
    // the seat is always back in the view at the end.
    EXPECT_TRUE(plan.member_at_end(gen.n, 3));
    EXPECT_EQ(plan.epoch_timeline(gen.n, 2 * gen.horizon).size(),
              plan.membership().size() + 1);
  }
  EXPECT_TRUE(any) << "no seed drew membership events";
}

TEST(FaultPlanMembership, BuildersExtendLastEventStep) {
  sim::FaultPlan plan(7);
  plan.crash(0, 100).restart(0, 200);
  EXPECT_EQ(plan.last_event_step(), 200u);
  plan.leave(1, 5000).join(1, 9000);
  EXPECT_EQ(plan.last_event_step(), 9000u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.member_at_end(2, 1));  // rejoined at 9000
}

// -- the service-level epoch fence ----------------------------------------------

// A leader removed by a view change must have ZERO accepted stale
// writes after the change: every serving-round write re-validates the
// epoch first. The election layer is pinned (a constant view that
// always names p0 leader) so the test isolates the service fence.
TEST(MembershipFence, RemovedLeaderStaleWritesAreRejected) {
  const int n = 2;
  sim::WorldOptions world_options;
  world_options.log_writes = true;
  sim::World world(n, std::make_unique<sim::RandomSchedule>(42),
                   world_options);
  sim::MembershipDirector director(n);

  omega::OmegaIO fixed;
  fixed.leader = 0;
  soak::SimLeaderService::LeaderView view =
      [&fixed](sim::Pid) -> const omega::OmegaIO& { return fixed; };
  soak::SimServiceOptions service_options;
  service_options.client_pids = {1};
  soak::SimLeaderService service(world, view, service_options);
  service.set_membership(&director);
  service.install();

  const sim::Step leave_at = 60000;
  std::vector<core::MembershipEvent> events = {
      {core::MembershipKind::kLeave, 0, -1, leave_at},
  };
  director.install(world, events);
  world.run(120000);

  // p0 served before the view change...
  bool wrote_before = false;
  sim::Step last_p0_write = 0;
  for (const auto& ev : world.write_log()) {
    if (ev.pid != 0) continue;
    if (ev.step < leave_at) wrote_before = true;
    last_p0_write = std::max(last_p0_write, ev.step);
  }
  EXPECT_TRUE(wrote_before);
  // ...and the fence closed at the boundary. p0 runs only the server
  // task here, so every p0 write is a served-round write. The service
  // re-validates the view before EVERY write, but a write whose check
  // passed just before the event lands a few steps after it -- at most
  // that single in-flight write crosses the boundary, and every later
  // write is rejected.
  std::size_t stale_writes = 0;
  for (const auto& ev : world.write_log()) {
    if (ev.pid == 0 && ev.step > leave_at) ++stale_writes;
  }
  EXPECT_LE(stale_writes, 1u);
  EXPECT_LE(last_p0_write, leave_at + 64);
  // The abandoned rounds were counted.
  EXPECT_GT(world.counters().get("membership.fenced.p0"), 0u);
}

// -- epoch churn through the full soak ------------------------------------------

TEST(MembershipSoak, RemoveAndRejoinRestabilizesAndGradesEpochs) {
  for (const auto backend :
       {soak::SimBackend::kAtomic, soak::SimBackend::kAbortable}) {
    auto options = soak::SimSoakOptions::quick(5, backend);
    options.membership = soak::MembershipMode::kEpochChurn;
    // Remove the initial leader p0 from the view, then re-admit it:
    // leadership must re-stabilize among {p1, p2, p3} in epoch 1 and
    // the run must still pass jointly, with each epoch graded on its
    // own sub-suffix.
    sim::FaultPlan plan(5);
    plan.leave(0, 60000).join(0, 160000);
    options.plan_override = &plan;
    const auto result = soak::run_sim_soak(options);
    EXPECT_TRUE(result.joint.ok())
        << to_string(backend) << "\n"
        << result.joint.summary();
    ASSERT_EQ(result.progress.epoch_grades.size(), 3u);
    EXPECT_FALSE(result.progress.epoch_grades[1].members[0]);
    EXPECT_EQ(result.progress.epoch_grades[1].epoch, 1u);
    // Epoch 1 is a short mid-run window: reported, not violated.
    EXPECT_FALSE(result.progress.epoch_grades[1].conclusive);
    // The final epoch independently earns its verdict.
    EXPECT_TRUE(result.progress.epoch_grades[2].conclusive);
    EXPECT_EQ(result.progress.epoch_grades[2].suffix_timely.size(),
              static_cast<std::size_t>(options.n));
    // Seed-replayable: the whole run is bit-identical.
    const auto replay = soak::run_sim_soak(options);
    EXPECT_EQ(result.trace_digest, replay.trace_digest);
    EXPECT_EQ(result.state_value, replay.state_value);
  }
}

TEST(MembershipSoak, GeneratedChurnModeStaysDeterministic) {
  auto options = soak::SimSoakOptions::quick(2, soak::SimBackend::kAtomic);
  options.membership = soak::MembershipMode::kEpochChurn;
  const auto a = soak::run_sim_soak(options);
  const auto b = soak::run_sim_soak(options);
  EXPECT_EQ(a.trace_digest, b.trace_digest);
  EXPECT_FALSE(a.plan.membership().empty());
  EXPECT_TRUE(a.joint.ok()) << a.joint.summary();
  EXPECT_EQ(a.progress.epoch_grades.size(), a.plan.membership().size() + 1);
}

TEST(MembershipSoak, FlickerModeReplaysLegacySeeds) {
  // The kFlicker compat shim must be draw-for-draw identical to the old
  // membership_flicker bool: same seed, same digest, whether or not the
  // epoch machinery is compiled in. (The digests here pin the behavior
  // observed before the membership layer existed.)
  auto options = soak::SimSoakOptions::quick(1, soak::SimBackend::kAtomic);
  ASSERT_EQ(options.membership, soak::MembershipMode::kFlicker);
  const auto result = soak::run_sim_soak(options);
  EXPECT_EQ(result.trace_digest, 0xab82371b139eaa92ull);
  EXPECT_EQ(result.state_value, 206752);
}

TEST(MembershipSoak, ViewThrashFailsOnlyTheProgressAxis) {
  auto options = soak::SimSoakOptions::quick(11, soak::SimBackend::kAbortable);
  options.membership = soak::MembershipMode::kEpochChurn;
  // Thrash the spare seat's membership through the end of the run: the
  // epoch never stops bumping, so the global stable suffix never fits.
  const auto thrash =
      soak::view_thrash_plan(11, options.n, 40, 200000, 25000);
  options.plan_override = &thrash;
  const auto result = soak::run_sim_soak(options);
  EXPECT_FALSE(result.joint.progress_ok);
  EXPECT_TRUE(result.slo.ok) << result.joint.summary();
  EXPECT_TRUE(result.joint.slo.ok);
  ASSERT_FALSE(result.progress.violations.empty());
  EXPECT_NE(result.progress.violations.front().find(
                "stable suffix too short"),
            std::string::npos);
  // Every thrash epoch is reported inconclusive, none violated.
  EXPECT_EQ(result.progress.epoch_grades.size(), 41u);
  for (const auto& grade : result.progress.epoch_grades) {
    EXPECT_FALSE(grade.conclusive);
  }
}

}  // namespace
}  // namespace tbwf
