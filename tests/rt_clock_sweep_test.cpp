// The clock-fault chaos sweep: 72 seed-replayable plans that combine
// the full pre-existing fault menu (kills, stalls, abort storms) with
// generated per-seat clock faults -- skew, progressive drift, forward
// and backward jumps, freezes -- applied through the supervisor's
// FaultClock, against the canonical leased counter on real threads.
//
// What must hold under a lying clock:
//   - SAFETY, unconditionally: the fenced lease never admits a stale
//     write (value() stays bounded by the commit tally), no matter how
//     a seat's time is distorted;
//   - only EXCUSED timeliness losses: the conformance checker grades
//     the faulted seats clock-degraded (untimely, blameless) and the
//     run must still pass -- a violation means a distorted clock broke
//     the degradation contract for a WELL-clocked seat, which is
//     exactly the bug class the drift-tolerant leasing layer exists to
//     prevent.
//
// A failing case replays from its seed alone; the plan prints in full
// on failure. With RT_CONFORMANCE_REPORT set, every case appends its
// summary (the CI clock-faults job uploads it as an artifact).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/conformance.hpp"
#include "rt/rt_faults.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_workloads.hpp"

namespace tbwf::rt {
namespace {

RtFaultPlan::GenOptions clock_sweep_gen_options() {
  RtFaultPlan::GenOptions g;
  g.nthreads = 4;
  g.horizon_ns = 24000000;  // 24 ms, 40% quiet tail
  g.max_clock_faults = 2;
  return g;
}

core::RtConformanceOptions sweep_conformance_options() {
  core::RtConformanceOptions c;
  // Same bounds as the plain rt fault sweep: one-core timeslicing opens
  // multi-ms gaps on its own; the OS-starved grade as non-timely, never
  // as violations.
  c.timely_bound_ns = 2500000;
  c.stabilization_ns = 3000000;
  c.min_suffix_ns = 4000000;
  c.max_completion_gap_ns = 12000000;
  return c;
}

void append_report_line(const std::string& line) {
  const char* path = std::getenv("RT_CONFORMANCE_REPORT");
  if (path == nullptr || *path == '\0') return;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fputs(line.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

class RtClockSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtClockSweepTest, OnlyExcusedTimelinessLosses) {
  const std::uint64_t seed = GetParam();
  const auto gen = clock_sweep_gen_options();
  const RtFaultPlan plan = RtFaultPlan::generate(seed, gen);

  LeasedCounterWorkload work(gen.nthreads);
  RtSupervisorOptions options;
  options.nthreads = gen.nthreads;
  options.run_for = std::chrono::nanoseconds(gen.horizon_ns + 6000000);
  options.on_restart = work.on_restart();
  RtSupervisor sup(options, plan, work.body());
  work.attach_storms(sup);
  sup.run();

  const auto report = core::check_rt_conformance(
      sup.snapshot(), plan, sweep_conformance_options(), &sup.counters());

  append_report_line(report.summary());
  // The graded contract holds: every timeliness loss the checker found
  // is an excused one (clock-degraded seats are already out of
  // suffix_timely and out of blame), so no violation may remain.
  ASSERT_TRUE(report.ok) << report.summary() << "\n" << plan.summary();

  // The excuse set is exactly the plan's doing: a seat is graded
  // clock-degraded iff the plan faulted its clock within reach of the
  // stable suffix -- the checker must neither excuse a well-clocked
  // seat nor blame a faulted one.
  for (int t = 0; t < gen.nthreads; ++t) {
    const bool excused =
        std::find(report.clock_degraded.begin(), report.clock_degraded.end(),
                  static_cast<std::uint32_t>(t)) !=
        report.clock_degraded.end();
    EXPECT_EQ(excused,
              plan.clock_faulted_in(static_cast<std::uint32_t>(t),
                                    report.suffix_from_ns,
                                    report.run_end_ns))
        << "t" << t << "\n" << report.summary() << plan.summary();
    if (excused) {
      // Never unearned wait-freedom through a lying clock.
      EXPECT_EQ(std::find(report.suffix_timely.begin(),
                          report.suffix_timely.end(),
                          static_cast<std::uint32_t>(t)),
                report.suffix_timely.end())
          << "t" << t << " graded timely with a faulted clock";
    }
  }

  // Safety floor, distortion-independent: the fence kept every stale
  // lease's write out, so the cell never exceeds the commit tally; and
  // somebody made progress despite the combined churn.
  std::uint64_t commits = 0;
  for (int t = 0; t < gen.nthreads; ++t) commits += work.commits(t);
  EXPECT_GT(commits, 0u) << plan.summary();
  EXPECT_LE(static_cast<std::uint64_t>(work.value()), commits)
      << plan.summary();
}

// The instantiation prefix must keep the Rt- prefix: the tsan CI jobs
// select rt tests with ctest -R '^(Rt|LeaseElector)'.
INSTANTIATE_TEST_SUITE_P(RtClockSeeds, RtClockSweepTest,
                         ::testing::Range<std::uint64_t>(1, 73));

TEST(RtClockSweepPlanTest, GenerationIsDeterministic) {
  const auto gen = clock_sweep_gen_options();
  for (std::uint64_t seed = 1; seed <= 72; ++seed) {
    const RtFaultPlan a = RtFaultPlan::generate(seed, gen);
    const RtFaultPlan b = RtFaultPlan::generate(seed, gen);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tbwf::rt
