// Integration tests of the full TBWF stack (Figure 7 over Omega-Delta
// and the query-abortable universal object): Theorems 14 and 15, plus
// the canonical-use requirement.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/progress.hpp"
#include "core/tbwf.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::core {
namespace {

using qa::Counter;
using sim::ActivitySpec;
using sim::Pid;
using sim::SimEnv;
using sim::Step;
using sim::Task;
using sim::World;
using I64 = std::int64_t;

template <class Obj>
Task forever_worker(SimEnv& env, Obj& obj) {
  for (;;) {
    (void)co_await obj.invoke(env, Counter::Op{1});
  }
}

// -- Theorem 14: all-timely run => every process wait-free ---------------------------

TEST(Tbwf, AllTimelyProcessesAreWaitFree) {
  const int n = 4;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, 1);
  const auto timely = sched->intended_timely();
  World world(n, std::move(sched));
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "worker", [&](SimEnv& env) {
      return forever_worker(env, sys.object());
    });
  }
  world.run(6000000);

  const auto& log = sys.object().log();
  std::vector<Pid> all(n);
  for (Pid p = 0; p < n; ++p) all[p] = p;
  const auto report =
      analyze_progress(log, world.now(), /*warmup=*/2000000,
                       /*max_gap=*/500000, all);
  const auto verdict = check_tbwf(report, timely);
  EXPECT_TRUE(verdict.holds) << verdict.summary() << "\n"
                             << report.summary();

  // Consistency: the counter's decided value equals total completions
  // (no lost and no duplicated operations).
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += log.completed(p);
  EXPECT_GT(total, 20u);
  EXPECT_GE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total));
  EXPECT_LE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total) + n);
}

// -- graceful degradation: untimely processes cannot hinder timely ones ---------------

TEST(Tbwf, UntimelyProcessesDoNotHinderTimelyOnes) {
  const int n = 4;
  std::vector<ActivitySpec> specs = {
      ActivitySpec::timely(8),
      ActivitySpec::timely(8),
      ActivitySpec::growing_flicker(1000, 200),
      ActivitySpec::growing_flicker(1500, 300),
  };
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, 3);
  const auto timely = sched->intended_timely();
  ASSERT_EQ(timely.size(), 2u);
  World world(n, std::move(sched));
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "worker", [&](SimEnv& env) {
      return forever_worker(env, sys.object());
    });
  }
  world.run(8000000);

  const auto& log = sys.object().log();
  std::vector<Pid> all(n);
  for (Pid p = 0; p < n; ++p) all[p] = p;
  const auto report =
      analyze_progress(log, world.now(), /*warmup=*/3000000,
                       /*max_gap=*/1000000, all);
  const auto verdict = check_tbwf(report, timely);
  EXPECT_TRUE(verdict.holds) << verdict.summary() << "\n"
                             << report.summary();

  // Consistency under flicker chaos.
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += log.completed(p);
  EXPECT_GE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total));
  EXPECT_LE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total) + n);
}

// -- TBWF implies obstruction-freedom: a solo process completes ----------------------

TEST(Tbwf, SoloProcessCompletesEveryOperation) {
  const int n = 3;
  // p0 issues operations; p1/p2 are present (omega installed) but never
  // invoke anything and never become candidates.
  World world(n, std::make_unique<sim::RoundRobinSchedule>());
  TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);

  struct SoloWorker {
    static Task run(SimEnv& env, TbwfObject<Counter>& obj, int ops,
                    bool& done) {
      for (int i = 0; i < ops; ++i) {
        const I64 before = co_await obj.invoke(env, Counter::Op{1});
        EXPECT_EQ(before, i);
      }
      done = true;
    }
  };
  bool done = false;
  world.spawn(0, "solo", [&](SimEnv& env) {
    return SoloWorker::run(env, sys.object(), 50, done);
  });
  world.run(5000000);
  EXPECT_TRUE(done);
  EXPECT_EQ(sys.object().qa().peek_frontier().state, 50);
}

// -- Theorem 15: the whole stack from abortable registers only ------------------------

TEST(Tbwf, Theorem15FullAbortableStack) {
  const int n = 3;
  auto specs = sim::uniform_specs(n, ActivitySpec::timely(6 * n));
  auto sched = std::make_unique<sim::TimelinessSchedule>(specs, 5);
  const auto timely = sched->intended_timely();
  World world(n, std::move(sched));
  registers::ProbabilisticAbortPolicy qa_policy(11, 0.5, 0.5, 0.5);
  registers::ProbabilisticAbortPolicy omega_policy(13, 0.5, 0.5, 0.5);
  TbwfSystem<Counter, qa::AbortableBase> sys(
      world, 0, OmegaBackend::AbortableRegisters, &qa_policy,
      &omega_policy);
  for (Pid p = 0; p < n; ++p) {
    world.spawn(p, "worker", [&](SimEnv& env) {
      return forever_worker(env, sys.object());
    });
  }
  world.run(12000000);

  const auto& log = sys.object().log();
  // Every timely process keeps completing operations.
  for (Pid p : timely) {
    EXPECT_GE(log.completed(p), 5u) << "p" << p;
  }
  std::uint64_t total = 0;
  for (Pid p = 0; p < n; ++p) total += log.completed(p);
  EXPECT_GE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total));
  EXPECT_LE(sys.object().qa().peek_frontier().state,
            static_cast<I64>(total) + n);
}

// -- the canonical wait is load-bearing ------------------------------------------------

TEST(Tbwf, NonCanonicalUseLetsOneProcessMonopolize) {
  const int n = 4;
  auto run_mode = [&](bool canonical) {
    auto specs = sim::uniform_specs(n, ActivitySpec::timely(4 * n));
    World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 7));
    TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
    sys.object().set_canonical(canonical);
    for (Pid p = 0; p < n; ++p) {
      world.spawn(p, "worker", [&](SimEnv& env) {
        return forever_worker(env, sys.object());
      });
    }
    world.run(8000000);
    // Count completions in the suffix: monopolization is an eventual
    // property (early leadership jitter dilutes whole-run totals).
    const Step cutoff = 4000000;
    std::vector<std::uint64_t> counts;
    for (Pid p = 0; p < n; ++p) {
      const auto& cs = sys.object().log().completions[p];
      counts.push_back(static_cast<std::uint64_t>(std::count_if(
          cs.begin(), cs.end(), [&](Step s) { return s >= cutoff; })));
    }
    return counts;
  };

  const auto canonical = run_mode(true);
  const auto rogue = run_mode(false);
  const double fair_canonical = util::jain_fairness(canonical);
  const double fair_rogue = util::jain_fairness(rogue);

  // Canonical use shares the object; without the wait, one process hogs
  // the leadership in the suffix and the others starve.
  EXPECT_GT(fair_canonical, 0.9)
      << "canonical fairness " << fair_canonical;
  EXPECT_LT(fair_rogue, 0.5) << "rogue fairness " << fair_rogue;
  const auto max_rogue = *std::max_element(rogue.begin(), rogue.end());
  const auto min_rogue = *std::min_element(rogue.begin(), rogue.end());
  EXPECT_GT(max_rogue, 20 * std::max<std::uint64_t>(min_rogue, 1));
}

// -- determinism across the whole stack -------------------------------------------------

TEST(Tbwf, FullStackDeterminism) {
  auto run_once = [] {
    const int n = 3;
    auto specs = sim::uniform_specs(n, ActivitySpec::eager());
    World world(n, std::make_unique<sim::TimelinessSchedule>(specs, 9));
    TbwfSystem<Counter> sys(world, 0, OmegaBackend::AtomicRegisters);
    for (Pid p = 0; p < n; ++p) {
      world.spawn(p, "worker", [&](SimEnv& env) {
        return forever_worker(env, sys.object());
      });
    }
    world.run(1000000);
    std::vector<std::uint64_t> counts;
    for (Pid p = 0; p < n; ++p) {
      counts.push_back(sys.object().log().completed(p));
    }
    return counts;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tbwf::core
