// Direct unit coverage of crash settlement for pending operations across
// every register environment: a process crashes between an operation's
// invocation and its response, and the register-kind-specific rule
// decides whether a pending write takes effect (env.hpp settle_crash).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

using I64 = std::int64_t;

Task bump_forever(SimEnv& env, int& counter) {
  for (;;) {
    ++counter;
    co_await env.yield();
  }
}

// One writer task per register kind; each invokes a single write of 9
// over the initial value 1 and is crashed mid-interval by the harness.
Task atomic_write(SimEnv& env, AtomicReg<I64> reg) {
  co_await env.write(reg, 9);
}
Task safe_write(SimEnv& env, SafeReg<I64> reg) {
  co_await env.write(reg, 9);
}
Task abortable_write(SimEnv& env, AbortableReg<I64> reg) {
  (void)co_await env.write(reg, 9);
}
Task cas_write(SimEnv& env, AtomicReg<I64> reg) {
  (void)co_await env.cas(reg, 1, 9);
}
Task atomic_read(SimEnv& env, AtomicReg<I64> reg, I64& out) {
  out = co_await env.read(reg);
}

/// Build a 2-process world where p0 invokes one operation (step 0) and
/// is crashed before its response (step 1); p1 keeps the world alive.
/// Returns the world so the test can inspect the register.
template <class SpawnFn>
std::unique_ptr<World> crash_mid_op(std::uint64_t world_seed,
                                    SpawnFn&& spawn_p0, int& keepalive) {
  World::Options opts;
  opts.seed = world_seed;
  auto w = std::make_unique<World>(
      2,
      std::make_unique<ScriptedSchedule>(std::vector<Pid>{0, 1},
                                         /*loop=*/true),
      opts);
  spawn_p0(*w);
  w->spawn(1, "b", [&keepalive](SimEnv& env) {
    return bump_forever(env, keepalive);
  });
  w->schedule_crash(0, 1);
  return w;
}

// -- atomic registers: 50/50, decided by the world seed -----------------------

TEST(CrashSettle, AtomicWriteBothOutcomesAcrossSeeds) {
  bool saw_effect = false, saw_no_effect = false;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    int keepalive = 0;
    AtomicReg<I64> reg;
    auto w = crash_mid_op(
        seed,
        [&](World& world) {
          reg = world.make_atomic<I64>("r", 1);
          world.spawn(0, "w",
                      [&](SimEnv& env) { return atomic_write(env, reg); });
        },
        keepalive);
    w->run(10);
    ASSERT_TRUE(w->crashed(0));
    const I64 v = w->peek(reg);
    ASSERT_TRUE(v == 1 || v == 9) << "seed " << seed << " value " << v;
    (v == 9 ? saw_effect : saw_no_effect) = true;
  }
  EXPECT_TRUE(saw_effect);
  EXPECT_TRUE(saw_no_effect);
}

TEST(CrashSettle, AtomicWriteSettlementIsSeedDeterministic) {
  auto value_for = [](std::uint64_t seed) {
    int keepalive = 0;
    AtomicReg<I64> reg;
    auto w = crash_mid_op(
        seed,
        [&](World& world) {
          reg = world.make_atomic<I64>("r", 1);
          world.spawn(0, "w",
                      [&](SimEnv& env) { return atomic_write(env, reg); });
        },
        keepalive);
    w->run(10);
    return w->peek(reg);
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    EXPECT_EQ(value_for(seed), value_for(seed)) << "seed " << seed;
  }
}

// -- safe registers: a crashed write always takes effect ----------------------

TEST(CrashSettle, SafeWriteAlwaysTakesEffect) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    int keepalive = 0;
    SafeReg<I64> reg;
    auto w = crash_mid_op(
        seed,
        [&](World& world) {
          reg = world.make_safe<I64>("s", 1);
          world.spawn(0, "w",
                      [&](SimEnv& env) { return safe_write(env, reg); });
        },
        keepalive);
    w->run(10);
    EXPECT_EQ(w->peek(reg), 9) << "seed " << seed;
  }
}

// -- abortable registers: the policy decides ----------------------------------

TEST(CrashSettle, AbortableWriteDefaultPolicyHasNoEffect) {
  // The AbortPolicy base default (NeverAbortPolicy inherits it) says a
  // crashed write never reaches the register.
  registers::NeverAbortPolicy policy;
  int keepalive = 0;
  AbortableReg<I64> reg;
  auto w = crash_mid_op(
      1,
      [&](World& world) {
        reg = world.make_abortable<I64>("a", 1, &policy);
        world.spawn(0, "w",
                    [&](SimEnv& env) { return abortable_write(env, reg); });
      },
      keepalive);
  w->run(10);
  EXPECT_EQ(w->peek(reg), 1);
}

TEST(CrashSettle, AbortableWriteProbabilisticEffectExtremes) {
  for (const double p_effect : {0.0, 1.0}) {
    registers::ProbabilisticAbortPolicy policy(7, 0.5, 0.5, p_effect);
    int keepalive = 0;
    AbortableReg<I64> reg;
    auto w = crash_mid_op(
        1,
        [&](World& world) {
          reg = world.make_abortable<I64>("a", 1, &policy);
          world.spawn(0, "w", [&](SimEnv& env) {
            return abortable_write(env, reg);
          });
        },
        keepalive);
    w->run(10);
    EXPECT_EQ(w->peek(reg), p_effect == 1.0 ? 9 : 1);
  }
}

TEST(CrashSettle, AbortableWriteDuringStormUsesStormEffect) {
  // The crash (at step 1) falls inside the storm window, whose
  // p_effect = 1 forces the crashed write through.
  registers::PhasedAbortPolicy policy(3);
  policy.add_phase({/*from=*/0, /*to=*/100, /*rate=*/1.0, /*p_effect=*/1.0});
  int keepalive = 0;
  AbortableReg<I64> reg;
  auto w = crash_mid_op(
      1,
      [&](World& world) {
        reg = world.make_abortable<I64>("a", 1, &policy);
        world.spawn(0, "w",
                    [&](SimEnv& env) { return abortable_write(env, reg); });
      },
      keepalive);
  w->run(10);
  EXPECT_EQ(w->peek(reg), 9);
}

TEST(CrashSettle, AbortableWriteOutsideStormFallsBackToNoEffect) {
  registers::PhasedAbortPolicy policy(3);
  policy.add_phase({/*from=*/50, /*to=*/100, /*rate=*/1.0, /*p_effect=*/1.0});
  int keepalive = 0;
  AbortableReg<I64> reg;
  auto w = crash_mid_op(
      1,
      [&](World& world) {
        reg = world.make_abortable<I64>("a", 1, &policy);
        world.spawn(0, "w",
                    [&](SimEnv& env) { return abortable_write(env, reg); });
      },
      keepalive);
  w->run(10);
  EXPECT_EQ(w->peek(reg), 1);  // crash at step 1 is before the window
}

// -- CAS: crash settlement may apply the swap ---------------------------------

TEST(CrashSettle, CasBothOutcomesAcrossSeeds) {
  bool saw_effect = false, saw_no_effect = false;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    int keepalive = 0;
    AtomicReg<I64> reg;
    auto w = crash_mid_op(
        seed,
        [&](World& world) {
          reg = world.make_atomic<I64>("r", 1);
          world.spawn(0, "w",
                      [&](SimEnv& env) { return cas_write(env, reg); });
        },
        keepalive);
    w->run(10);
    const I64 v = w->peek(reg);
    ASSERT_TRUE(v == 1 || v == 9) << "seed " << seed << " value " << v;
    (v == 9 ? saw_effect : saw_no_effect) = true;
  }
  EXPECT_TRUE(saw_effect);
  EXPECT_TRUE(saw_no_effect);
}

// -- reads: crash settlement never touches the register -----------------------

TEST(CrashSettle, CrashedReadLeavesRegisterUntouched) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    int keepalive = 0;
    AtomicReg<I64> reg;
    I64 out = -1;
    auto w = crash_mid_op(
        seed,
        [&](World& world) {
          reg = world.make_atomic<I64>("r", 1);
          world.spawn(0, "r", [&](SimEnv& env) {
            return atomic_read(env, reg, out);
          });
        },
        keepalive);
    w->run(10);
    EXPECT_EQ(w->peek(reg), 1);
    EXPECT_EQ(out, -1);  // the read never responded
  }
}

}  // namespace
}  // namespace tbwf::sim
