// Tests of the real-threads backend: try-lock abortable registers, the
// lease elector, the TBWF-style counter and the baselines, under real
// std::thread concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rt/rt_baselines.hpp"
#include "rt/rt_registers.hpp"
#include "rt/rt_tbwf.hpp"

namespace tbwf::rt {
namespace {

TEST(RtAbortableReg, SoloOpsNeverAbort) {
  RtAbortableReg<int> reg(5);
  for (int i = 0; i < 1000; ++i) {
    auto v = reg.read();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 5 + i);
    ASSERT_TRUE(reg.write(5 + i + 1));
  }
}

TEST(RtAbortableReg, SuccessfulReadsSeeLatestSuccessfulWrite) {
  RtAbortableReg<std::int64_t> reg(0);
  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> last_written{0};
  std::atomic<bool> violation{false};

  std::thread writer([&] {
    std::int64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (reg.write(v + 1)) {
        ++v;
        last_written.store(v, std::memory_order_release);
      }
    }
  });
  std::thread reader([&] {
    std::int64_t prev = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = reg.read();
      if (r.has_value()) {
        // Monotone: single writer, effects ordered by the cell lock.
        if (*r < prev) violation.store(true);
        prev = *r;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  writer.join();
  reader.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(last_written.load(), 0);
}

TEST(LeaseElector, SingleThreadAcquiresImmediately) {
  LeaseElector e(std::chrono::milliseconds(10));
  EXPECT_TRUE(e.try_lead(3));
  EXPECT_TRUE(e.try_lead(3));  // renew while valid
  EXPECT_FALSE(e.try_lead(4));  // someone else holds it
  e.release(3);
  EXPECT_TRUE(e.try_lead(4));
}

TEST(LeaseElector, ExpiredLeaseIsStealable) {
  LeaseElector e(std::chrono::microseconds(200));
  ASSERT_TRUE(e.try_lead(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(e.try_lead(2)) << "expired lease must be stealable";
}

TEST(LeaseElector, MutualExclusionWhileValid) {
  LeaseElector e(std::chrono::seconds(5));
  std::atomic<int> holders{0};
  std::atomic<int> max_holders{0};
  std::vector<std::thread> threads;
  for (std::uint32_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if (e.try_lead(t)) {
          const int h = holders.fetch_add(1) + 1;
          int m = max_holders.load();
          while (h > m && !max_holders.compare_exchange_weak(m, h)) {
          }
          std::this_thread::yield();
          holders.fetch_sub(1);
          e.release(t);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(max_holders.load(), 1);
}

TEST(RtTbwfCounter, SingleThreadCountsExactly) {
  RtTbwfCounter counter;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(counter.fetch_add(0, 1), i);
  }
}

TEST(RtTbwfCounter, MultiThreadExactlyOnce) {
  RtTbwfCounter counter(std::chrono::microseconds(20));
  const int threads = 4;
  const int per_thread = 2000;
  std::vector<std::thread> pool;
  std::atomic<std::int64_t> sum_before{0};
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        sum_before.fetch_add(counter.fetch_add(t, 1));
      }
    });
  }
  for (auto& th : pool) th.join();
  const std::int64_t total = threads * per_thread;
  // Final value == total increments; and the multiset of "before"
  // values is {0..total-1} iff the sum matches total*(total-1)/2.
  EXPECT_EQ(counter.fetch_add(0, 0), total);
  EXPECT_EQ(sum_before.load(), total * (total - 1) / 2);
}

TEST(RtBaselines, CountersAgreeUnderConcurrency) {
  RtMutexCounter m;
  RtCasCounter c;
  RtFaaCounter f;
  const int threads = 4, per_thread = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < per_thread; ++i) {
        m.fetch_add(1);
        c.fetch_add(1);
        f.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(m.fetch_add(0), threads * per_thread);
  EXPECT_EQ(c.fetch_add(0), threads * per_thread);
  EXPECT_EQ(f.fetch_add(0), threads * per_thread);
}

}  // namespace
}  // namespace tbwf::rt

// -- the real-threads QA universal construction -------------------------------------

#include "rt/rt_qa.hpp"

namespace tbwf::rt {
namespace {

TEST(RtQaUniversal, SoloOpsAlwaysSucceed) {
  RtQaUniversal<qa::Counter> obj(1, 0);
  for (int i = 0; i < 200; ++i) {
    auto r = obj.invoke(0, qa::Counter::Op{1});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, i);
  }
  EXPECT_EQ(obj.frontier_snapshot().state, 200);
}

TEST(RtQaUniversal, QueryReportsLastOpFate) {
  RtQaUniversal<qa::Counter> obj(2, 0);
  EXPECT_TRUE(obj.query(0).not_applied());  // no prior op
  auto r = obj.invoke(0, qa::Counter::Op{5});
  ASSERT_TRUE(r.ok());
  auto q = obj.query(0);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value, r.value);
}

TEST(RtQaUniversal, ContendedAccountingIsExact) {
  const int threads = 4;
  const int ops = 3000;
  RtQaUniversal<qa::Counter> obj(threads, 0);
  std::atomic<std::int64_t> applied{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < ops; ++i) {
        auto r = obj.invoke(t, qa::Counter::Op{1});
        while (r.bottom()) {
          r = obj.query(t);
          if (r.bottom()) std::this_thread::yield();
        }
        if (r.ok()) applied.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(obj.frontier_snapshot().state, applied.load());
}

TEST(RtTbwfObject, CounterExactlyOnceAcrossThreads) {
  const int threads = 4;
  const int ops = 1500;
  RtTbwfObject<qa::Counter> obj(threads, 0,
                                std::chrono::microseconds(30));
  std::atomic<std::int64_t> sum_before{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < ops; ++i) {
        sum_before.fetch_add(obj.invoke(t, qa::Counter::Op{1}));
      }
    });
  }
  for (auto& th : pool) th.join();
  const std::int64_t total = threads * ops;
  EXPECT_EQ(obj.qa().frontier_snapshot().state, total);
  // Linearizable fetch-and-add: the "before" values are {0..total-1}.
  EXPECT_EQ(sum_before.load(), total * (total - 1) / 2);
}

TEST(RtTbwfObject, QueueExactlyOnceAcrossThreads) {
  const int threads = 3;
  const int per_thread = 400;
  RtTbwfObject<qa::Queue> obj(threads, {});
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < per_thread; ++i) {
        (void)obj.invoke(t, qa::Queue::enqueue(t * 100000 + i));
      }
    });
  }
  for (auto& th : pool) th.join();
  const auto state = obj.qa().frontier_snapshot().state;
  ASSERT_EQ(state.size(),
            static_cast<std::size_t>(threads * per_thread));
  // Per-producer FIFO order.
  std::vector<std::int64_t> last(threads, -1);
  for (const auto v : state) {
    const int t = static_cast<int>(v / 100000);
    EXPECT_GT(v % 100000, last[t]);
    last[t] = v % 100000;
  }
}

}  // namespace
}  // namespace tbwf::rt
