// Tests of the fault-plan subsystem: plan builders and generation,
// deterministic crash/restart application, World::restart semantics,
// the ChaosSchedule stutter decorator, and the PhasedAbortPolicy.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/chaos_schedule.hpp"
#include "sim/env.hpp"
#include "sim/faultplan.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {
namespace {

using I64 = std::int64_t;

Task bump_forever(SimEnv& env, int& counter) {
  for (;;) {
    ++counter;
    co_await env.yield();
  }
}

// -- plan builders and introspection ------------------------------------------

TEST(FaultPlan, BuildersAndIntrospection) {
  FaultPlan plan(42);
  plan.crash(0, 100)
      .restart(0, 200)
      .stutter(1, 50, 250, 10)
      .abort_storm("qa", 120, 180, 0.9);
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.restarts().size(), 1u);
  EXPECT_EQ(plan.stutters().size(), 1u);
  EXPECT_EQ(plan.storms().size(), 1u);
  EXPECT_EQ(plan.last_event_step(), 250u);  // stutter end is latest
  EXPECT_FALSE(plan.crashed_at_end(0));     // restarted after its crash
  EXPECT_FALSE(plan.crashed_at_end(1));
  EXPECT_NE(plan.summary().find("seed=42"), std::string::npos);
}

TEST(FaultPlan, CrashedAtEndFollowsEventOrder) {
  FaultPlan plan;
  plan.crash(0, 100);
  EXPECT_TRUE(plan.crashed_at_end(0));
  plan.restart(0, 300);
  EXPECT_FALSE(plan.crashed_at_end(0));
  plan.crash(0, 500);
  EXPECT_TRUE(plan.crashed_at_end(0));
  // Same-step crash + restart: the world applies the crash first, so the
  // process ends up alive.
  FaultPlan plan2;
  plan2.restart(1, 50).crash(1, 50);
  EXPECT_FALSE(plan2.crashed_at_end(1));
}

TEST(FaultPlan, PhaseBoundariesSortedDeduplicated) {
  FaultPlan plan;
  plan.crash(0, 100).restart(0, 300).stutter(1, 100, 400, 10);
  const auto edges = plan.phase_boundaries(1000);
  EXPECT_EQ(edges, (std::vector<Step>{0, 100, 300, 400, 1000}));
  // Edges at or past run_end are dropped.
  const auto clipped = plan.phase_boundaries(350);
  EXPECT_EQ(clipped, (std::vector<Step>{0, 100, 300, 350}));
}

// -- random generation --------------------------------------------------------

TEST(FaultPlan, GenerateIsDeterministic) {
  FaultPlan::GenOptions opt;
  opt.n = 4;
  opt.horizon = 100000;
  bool any_difference = false;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto a = FaultPlan::generate(seed, opt);
    const auto b = FaultPlan::generate(seed, opt);
    EXPECT_EQ(a.summary(), b.summary()) << "seed " << seed;
    if (a.summary() != FaultPlan::generate(seed + 1, opt).summary()) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "all seeds generated the same plan";
}

TEST(FaultPlan, GenerateRespectsQuietTailAndKeepsASurvivor) {
  FaultPlan::GenOptions opt;
  opt.n = 3;
  opt.horizon = 200000;
  opt.quiet_tail = 0.4;
  opt.max_crash_cycles = 3;
  opt.p_restart = 0.2;  // most crashes are permanent
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const auto plan = FaultPlan::generate(seed, opt);
    EXPECT_FALSE(plan.empty()) << "seed " << seed;
    EXPECT_LE(plan.last_event_step(),
              static_cast<Step>(opt.horizon * (1.0 - opt.quiet_tail)))
        << "seed " << seed;
    int survivors = 0;
    for (Pid p = 0; p < opt.n; ++p) {
      if (!plan.crashed_at_end(p)) ++survivors;
    }
    EXPECT_GE(survivors, 1) << "seed " << seed << "\n" << plan.summary();
  }
}

// -- plan application on a world ----------------------------------------------

TEST(FaultPlan, InstallAppliesCrashesAndRestarts) {
  auto w = std::make_unique<World>(2,
                                   std::make_unique<RoundRobinSchedule>());
  int a = 0, b = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  FaultPlan plan(7);
  plan.crash(0, 10).restart(0, 30);
  plan.install(*w);
  w->run(100);
  EXPECT_FALSE(w->crashed(0));
  EXPECT_EQ(w->trace().crash_count(0), 1u);
  EXPECT_EQ(w->trace().restart_count(0), 1u);
  ASSERT_EQ(w->trace().fault_log().size(), 2u);
  EXPECT_EQ(w->trace().fault_log()[0].at, 10u);
  EXPECT_FALSE(w->trace().fault_log()[0].restart);
  EXPECT_EQ(w->trace().fault_log()[1].at, 30u);
  EXPECT_TRUE(w->trace().fault_log()[1].restart);
  // p0 took no steps while down: the gap spans the outage.
  EXPECT_GE(w->trace().max_gap_in(0, 10, 30), 19u);
  EXPECT_EQ(w->counters().get("world.crashes"), 1u);
  EXPECT_EQ(w->counters().get("world.restarts"), 1u);
}

// -- World::restart semantics -------------------------------------------------

Task boot_counter(SimEnv& env, int& boots, int& steps) {
  ++boots;  // runs once per (re)boot: fresh coroutine frame each time
  for (;;) {
    ++steps;
    co_await env.yield();
  }
}

TEST(World, RestartRebootsRootTasksWithFreshState) {
  auto w = std::make_unique<World>(1,
                                   std::make_unique<RoundRobinSchedule>());
  int boots = 0, steps = 0;
  w->spawn(0, "bc", [&](SimEnv& env) {
    return boot_counter(env, boots, steps);
  });
  w->run(10);
  EXPECT_EQ(boots, 1);
  w->crash(0);
  EXPECT_EQ(w->run(10), 0u);  // crashed: nothing runnable
  w->restart(0);
  EXPECT_FALSE(w->crashed(0));
  w->run(10);
  EXPECT_EQ(boots, 2);  // the root task was re-created from its recipe
  EXPECT_GT(steps, 10);
}

TEST(World, RestartOfAliveProcessIsNoOp) {
  auto w = std::make_unique<World>(1,
                                   std::make_unique<RoundRobinSchedule>());
  int boots = 0, steps = 0;
  w->spawn(0, "bc", [&](SimEnv& env) {
    return boot_counter(env, boots, steps);
  });
  w->run(5);
  w->restart(0);
  w->run(5);
  EXPECT_EQ(boots, 1);
  EXPECT_EQ(w->trace().restart_count(0), 0u);
}

Task write_then_read(SimEnv& env, AtomicReg<I64> reg, I64& out) {
  co_await env.write(reg, 41);
  out = co_await env.read(reg);
}

TEST(World, CrashMidOpThenRestartCompletesFromScratch) {
  // p0 crashes inside its write's operation interval, then restarts; the
  // rebooted task re-issues the write and finishes normally.
  auto w = std::make_unique<World>(
      2, std::make_unique<ScriptedSchedule>(std::vector<Pid>{0, 1},
                                            /*loop=*/true));
  auto reg = w->make_atomic<I64>("r", 0);
  I64 out = -1;
  int b = 0;
  w->spawn(0, "w", [&](SimEnv& env) { return write_then_read(env, reg, out); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->schedule_crash(0, 1);    // after p0's invocation step
  w->schedule_restart(0, 9);
  w->run(40);
  EXPECT_FALSE(w->crashed(0));
  EXPECT_EQ(out, 41);
  EXPECT_EQ(w->peek(reg), 41);
}

// -- deterministic fault application order (regression) -----------------------

TEST(World, SameStepCrashesApplyInPidOrder) {
  // Scheduled out of pid order; the fault log must show pid order.
  auto w = std::make_unique<World>(3,
                                   std::make_unique<RoundRobinSchedule>());
  int a = 0, b = 0, c = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->spawn(2, "c", [&c](SimEnv& env) { return bump_forever(env, c); });
  w->schedule_crash(2, 5);
  w->schedule_crash(0, 5);
  w->schedule_crash(1, 5);
  w->run(20);
  const auto& log = w->trace().fault_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].pid, 0);
  EXPECT_EQ(log[1].pid, 1);
  EXPECT_EQ(log[2].pid, 2);
  for (const auto& ev : log) EXPECT_EQ(ev.at, 5u);
}

TEST(World, SameStepCrashAppliesBeforeRestart) {
  auto w = std::make_unique<World>(1,
                                   std::make_unique<RoundRobinSchedule>());
  int boots = 0, steps = 0;
  w->spawn(0, "bc", [&](SimEnv& env) {
    return boot_counter(env, boots, steps);
  });
  // Scheduled restart-first; the crash still applies first, so the
  // process ends the step alive (and rebooted).
  w->schedule_restart(0, 5);
  w->schedule_crash(0, 5);
  w->run(20);
  EXPECT_FALSE(w->crashed(0));
  EXPECT_EQ(boots, 2);
  ASSERT_EQ(w->trace().fault_log().size(), 2u);
  EXPECT_FALSE(w->trace().fault_log()[0].restart);
  EXPECT_TRUE(w->trace().fault_log()[1].restart);
}

// -- ChaosSchedule ------------------------------------------------------------

TEST(ChaosSchedule, StutterWindowDegradesTimeliness) {
  std::vector<StutterPhase> stutters{{/*pid=*/0, /*from=*/200, /*to=*/700,
                                      /*period=*/50}};
  auto w = std::make_unique<World>(
      2, std::make_unique<ChaosSchedule>(
             std::make_unique<RoundRobinSchedule>(), stutters));
  int a = 0, b = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
  w->run(1000);
  const auto& t = w->trace();
  // Inside the window p0 is starved to at most one step per period.
  EXPECT_GE(t.max_gap_in(0, 200, 700), 49u);
  EXPECT_LE(t.steps_of_in(0, 200, 700), 11u);
  // Outside the window round-robin fairness resumes untouched.
  EXPECT_LE(t.max_gap_in(0, 700, 1000), 2u);
  EXPECT_LE(t.max_gap_in(0, 0, 200), 2u);
  EXPECT_LE(t.max_gap_in(1, 0, 1000), 50u);
}

TEST(ChaosSchedule, ReplayIsDeterministic) {
  const std::vector<StutterPhase> stutters{{0, 100, 400, 7},
                                           {1, 300, 600, 13}};
  auto run_once = [&] {
    auto w = std::make_unique<World>(
        3, std::make_unique<ChaosSchedule>(
               std::make_unique<RandomSchedule>(99), stutters));
    int a = 0, b = 0, c = 0;
    w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
    w->spawn(1, "b", [&b](SimEnv& env) { return bump_forever(env, b); });
    w->spawn(2, "c", [&c](SimEnv& env) { return bump_forever(env, c); });
    std::vector<Pid> owners;
    w->add_step_observer([&owners](Step, Pid p) { owners.push_back(p); });
    w->run(2000);
    return owners;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ChaosSchedule, TotalBlackoutStillAdvancesTime) {
  // The only process is blacked out for the entire window; time must
  // still advance one step per unit (the fallback grants it the step).
  std::vector<StutterPhase> stutters{{0, 1, 100, 1000}};
  auto w = std::make_unique<World>(
      1, std::make_unique<ChaosSchedule>(
             std::make_unique<RoundRobinSchedule>(), stutters));
  int a = 0;
  w->spawn(0, "a", [&a](SimEnv& env) { return bump_forever(env, a); });
  EXPECT_EQ(w->run(50), 50u);
  EXPECT_EQ(a, 50);
}

}  // namespace
}  // namespace tbwf::sim

// -- PhasedAbortPolicy --------------------------------------------------------

namespace tbwf::registers {
namespace {

OpContext ctx_at(sim::Step t, bool is_write) {
  OpContext ctx;
  ctx.pid = 0;
  ctx.is_write = is_write;
  ctx.invoked_at = t > 0 ? t - 1 : 0;
  ctx.responded_at = t;
  ctx.overlap_pids = {1};
  ctx.any_overlap_write = true;
  return ctx;
}

TEST(PhasedAbortPolicy, StormWindowEscalatesAborts) {
  PhasedAbortPolicy policy(5);
  policy.add_phase({/*from=*/100, /*to=*/200, /*rate=*/1.0,
                    /*p_effect=*/1.0});
  // Inside the window every contended op aborts (rate 1).
  EXPECT_EQ(policy.on_contended_read(ctx_at(150, false)),
            ReadOutcome::Abort);
  EXPECT_EQ(policy.on_contended_write(ctx_at(150, true)),
            WriteOutcome::AbortWithEffect);  // p_effect = 1
  EXPECT_EQ(policy.storm_aborts(), 2u);
  EXPECT_TRUE(policy.crashed_write_takes_effect(ctx_at(150, true)));
  // Outside the window, with no calm policy, contended ops succeed.
  EXPECT_EQ(policy.on_contended_read(ctx_at(99, false)),
            ReadOutcome::Success);
  EXPECT_EQ(policy.on_contended_write(ctx_at(200, true)),
            WriteOutcome::Success);
  EXPECT_FALSE(policy.crashed_write_takes_effect(ctx_at(300, true)));
  EXPECT_EQ(policy.storm_aborts(), 2u);
}

TEST(PhasedAbortPolicy, DelegatesToCalmPolicyOutsideWindows) {
  AlwaysAbortPolicy calm(AlwaysAbortPolicy::Effect::Never);
  PhasedAbortPolicy policy(5, &calm);
  policy.add_phase({100, 200, 1.0, 1.0});
  EXPECT_EQ(policy.on_contended_read(ctx_at(50, false)),
            ReadOutcome::Abort);  // calm AlwaysAbort rules when no storm
  EXPECT_EQ(policy.on_contended_write(ctx_at(50, true)),
            WriteOutcome::AbortNoEffect);
  EXPECT_EQ(policy.storm_aborts(), 0u);  // calm aborts are not storm aborts
}

TEST(PhasedAbortPolicy, ArmedFromPlanGroups) {
  sim::FaultPlan plan;
  plan.abort_storm("qa", 100, 200, 0.9);
  plan.abort_storm("", 300, 400, 0.8);  // matches every policy
  PhasedAbortPolicy qa_policy(1), omega_policy(2), any_policy(3);
  plan.arm(qa_policy, "qa");
  plan.arm(omega_policy, "omega");
  plan.arm(any_policy);  // unlabeled policy takes every storm
  EXPECT_EQ(qa_policy.phases().size(), 2u);
  EXPECT_EQ(omega_policy.phases().size(), 1u);
  EXPECT_EQ(any_policy.phases().size(), 2u);
}

}  // namespace
}  // namespace tbwf::registers
