#!/usr/bin/env bash
# Lint the rt backend for implicit-seq_cst atomic operations.
#
# The rt memory-order discipline (docs/MODEL.md, "The rt memory model")
# requires every atomic operation in src/rt/ to name its memory order
# explicitly. Default-argument forms (x.load(), x.store(v),
# x.fetch_add(1), ...) silently mean seq_cst, which both hides the
# intended contract and costs a full fence on weakly ordered machines.
#
# Rule: any line performing an atomic member operation must also name a
# memory_order on that line. Multi-line calls put the order argument on
# the operation's own line by convention. The `++`/`--`/assignment
# sugar on atomics is banned outright (it is always seq_cst).
set -u

fail=0
files=$(find src/rt -name '*.hpp' -o -name '*.cpp')

ops='\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong|test_and_set|clear|wait|notify_one|notify_all)\('
# A call may wrap; accept a memory_order named on the call line or on
# either of the two continuation lines.
hits=$(for f in $files; do
  awk -v ops="$ops" -v fname="$f" '
    { lines[NR] = $0 }
    END {
      for (i = 1; i <= NR; ++i) {
        if (lines[i] !~ ops || lines[i] ~ /^[ \t]*\/\//) continue
        ok = 0
        for (j = i; j <= i + 2 && j <= NR; ++j) {
          if (lines[j] ~ /memory_order/) { ok = 1; break }
        }
        if (!ok) printf "%s:%d:%s\n", fname, i, lines[i]
      }
    }' "$f"
done || true)
if [ -n "$hits" ]; then
  echo "implicit-seq_cst atomic operations (add an explicit memory_order):"
  echo "$hits"
  fail=1
fi

# ++/--/+=/-= on members that are declared std::atomic in the same file.
for f in $files; do
  atomics=$(grep -oE 'std::atomic[^>]*> +[a-zA-Z_][a-zA-Z0-9_]*' "$f" \
    | awk '{print $NF}' | sort -u)
  for a in $atomics; do
    sugar=$(grep -nE "(\+\+|--)${a}\b|\b${a}(\+\+|--)|\b${a}\s*(\+=|-=|=[^=])" "$f" \
      | grep -vE 'std::atomic|memory_order|^\s*//' || true)
    if [ -n "$sugar" ]; then
      echo "seq_cst operator sugar on atomic '${a}' in ${f}:"
      echo "$sugar"
      fail=1
    fi
  done
done

if [ "$fail" -eq 0 ]; then
  echo "OK: no implicit-seq_cst atomics in src/rt"
fi
exit "$fail"
