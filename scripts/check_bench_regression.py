#!/usr/bin/env python3
"""Compare a freshly produced tbwf-bench-v1 JSON against the checked-in
baseline and fail on regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.25]

Rows are matched on (metric, config minus the "variant" key), NEVER on
their position in the rows array: reordering the emitting bench must not
silently compare unrelated rows. Rows sharing a (metric, config) pair
are disambiguated by occurrence index, in emission order. Only rows with
variant == "after" (or no variant) participate -- "before" rows in the
baseline document the pre-optimization state and are informational.
Fresh rows with no baseline counterpart are reported as warnings (new
metrics are visible, not regressions); baseline rows with no fresh
counterpart fail (a gated metric silently disappearing IS a regression).

Direction is inferred from the unit:
  items/s, rounds          higher is better; fail below (1 - tol) * base
  reads/round, steps       lower is better; fail above (1 + tol) * base
  bool                     exact; fail if fresh < baseline (a 1 -> 0 flip)
  anything else            informational only
"""

import argparse
import json
import os
import sys

HIGHER_BETTER = {"items/s", "rounds"}
LOWER_BETTER = {"reads/round", "steps"}


def key(row):
    config = {k: v for k, v in row.get("config", {}).items() if k != "variant"}
    return (row["metric"], tuple(sorted(config.items())))


def after_rows(doc):
    out = {}
    seen = {}
    for row in doc["rows"]:
        if row.get("config", {}).get("variant", "after") != "after":
            continue
        k = key(row)
        idx = seen.get(k, 0)
        seen[k] = idx + 1
        out[k + (idx,)] = row
    return out


def label_of(k, row):
    metric, config, idx = k
    suffix = f" #{idx + 1}" if idx > 0 else ""
    return f"{row['metric']} {dict(config)}{suffix}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        # A fresh clone (or a new experiment) has no baseline yet; that
        # is not a regression. Warn so the gap is visible and pass.
        print(f"WARNING: baseline {args.baseline} not found; "
              "nothing to compare against (skipping)")
        sys.exit(0)

    with open(args.baseline) as f:
        base_doc = json.load(f)
    with open(args.fresh) as f:
        fresh_doc = json.load(f)
    if base_doc.get("schema") != "tbwf-bench-v1":
        sys.exit(f"{args.baseline}: not a tbwf-bench-v1 document")
    if fresh_doc.get("schema") != "tbwf-bench-v1":
        sys.exit(f"{args.fresh}: not a tbwf-bench-v1 document")

    base = after_rows(base_doc)
    fresh = after_rows(fresh_doc)

    failures = []
    warnings = []
    checked = 0
    for k, frow in sorted(fresh.items()):
        if k not in base:
            warnings.append(
                f"NEW      {label_of(k, frow)}: no baseline counterpart "
                "(informational until the baseline is regenerated)")
    for k, brow in sorted(base.items()):
        frow = fresh.get(k)
        label = label_of(k, brow)
        if frow is None:
            failures.append(f"MISSING  {label}: no matching fresh row")
            continue
        unit, bv, fv = brow["unit"], brow["value"], frow["value"]
        if unit in HIGHER_BETTER:
            checked += 1
            floor = bv * (1.0 - args.tolerance)
            if fv < floor:
                failures.append(
                    f"REGRESSED {label}: {fv:.6g} {unit} < floor "
                    f"{floor:.6g} (baseline {bv:.6g})")
        elif unit in LOWER_BETTER:
            checked += 1
            ceil = bv * (1.0 + args.tolerance)
            if fv > ceil:
                failures.append(
                    f"REGRESSED {label}: {fv:.6g} {unit} > ceiling "
                    f"{ceil:.6g} (baseline {bv:.6g})")
        elif unit == "bool":
            checked += 1
            if fv < bv:
                failures.append(f"REGRESSED {label}: {bv:g} -> {fv:g}")

    print(f"{args.fresh}: {checked} rows checked against {args.baseline}, "
          f"{len(failures)} failures, {len(warnings)} warnings")
    for w in warnings:
        print("  " + w)
    for f in failures:
        print("  " + f)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
