#!/usr/bin/env python3
"""Compare a freshly produced tbwf-bench-v1 JSON against the checked-in
baseline and fail on regressions.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--tolerance 0.25]

Rows are matched on (metric, config minus the "variant" key), NEVER on
their position in the rows array: reordering the emitting bench must not
silently compare unrelated rows. Rows sharing a (metric, config) pair
are disambiguated by occurrence index, in emission order. Only rows with
variant == "after" (or no variant) participate -- "before" rows in the
baseline document the pre-optimization state and are informational.
Fresh rows with no baseline counterpart are reported as warnings (new
metrics are visible, not regressions); baseline rows with no fresh
counterpart fail (a gated metric silently disappearing IS a regression).

Direction is inferred from the unit:
  items/s, rounds          higher is better; fail below (1 - tol) * base
  reads/round, steps       lower is better; fail above (1 + tol) * base
  bool                     exact; fail if fresh < baseline (a 1 -> 0 flip)
  anything else            informational only

Metadata must agree before values are compared -- a number from a
different experimental setup is not a regression signal, it is a
category error, and it must fail LOUDLY rather than produce a
plausible-looking verdict:
  * a matched row whose unit or seed differs from its baseline row
    fails with MISMATCH (the row's meaning changed; regenerate the
    baseline instead of comparing unlike runs);
  * a baseline row whose config has no fresh counterpart, while
    same-named fresh rows ran under a different config, fails with
    MISMATCH listing both configs (e.g. membership=epoch-churn vs
    static, or a different n);
  * document-level meta keys present in BOTH files must agree, except
    the volatile provenance keys {git_sha, rows, distinct_seeds,
    backend_filter}; a key present in only one file warns.
"""

import argparse
import json
import os
import sys

HIGHER_BETTER = {"items/s", "rounds"}
LOWER_BETTER = {"reads/round", "steps"}

# Provenance keys that legitimately differ run to run; every other meta
# key describes the experimental setup and must match.
VOLATILE_META = {"git_sha", "rows", "distinct_seeds", "backend_filter"}


def key(row):
    config = {k: v for k, v in row.get("config", {}).items() if k != "variant"}
    return (row["metric"], tuple(sorted(config.items())))


def after_rows(doc):
    out = {}
    seen = {}
    for row in doc["rows"]:
        if row.get("config", {}).get("variant", "after") != "after":
            continue
        k = key(row)
        idx = seen.get(k, 0)
        seen[k] = idx + 1
        out[k + (idx,)] = row
    return out


def label_of(k, row):
    metric, config, idx = k
    suffix = f" #{idx + 1}" if idx > 0 else ""
    return f"{row['metric']} {dict(config)}{suffix}"


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--tolerance", type=float, default=0.25)
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        # A fresh clone (or a new experiment) has no baseline yet; that
        # is not a regression. Warn so the gap is visible and pass.
        print(f"WARNING: baseline {args.baseline} not found; "
              "nothing to compare against (skipping)")
        sys.exit(0)

    # A brand-new experiment often lands with an empty / truncated /
    # hand-started baseline file before the first real run regenerates
    # it. Like a missing baseline, that is a visible gap, not a
    # regression: warn and pass rather than crash with a traceback.
    try:
        with open(args.baseline) as f:
            base_doc = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"WARNING: baseline {args.baseline} is not readable JSON "
              f"({exc}); nothing to compare against (skipping)")
        sys.exit(0)
    if not isinstance(base_doc, dict) or \
            not isinstance(base_doc.get("rows"), list):
        print(f"WARNING: baseline {args.baseline} has no rows array; "
              "nothing to compare against (skipping)")
        sys.exit(0)
    # The fresh file is the one this run just produced -- if IT is
    # unreadable the producing bench is broken, and that must fail.
    try:
        with open(args.fresh) as f:
            fresh_doc = json.load(f)
    except (OSError, ValueError) as exc:
        sys.exit(f"{args.fresh}: not readable JSON ({exc})")
    if base_doc.get("schema") != "tbwf-bench-v1":
        print(f"WARNING: baseline {args.baseline} is not a tbwf-bench-v1 "
              "document; nothing to compare against (skipping)")
        sys.exit(0)
    if fresh_doc.get("schema") != "tbwf-bench-v1":
        sys.exit(f"{args.fresh}: not a tbwf-bench-v1 document")
    if not isinstance(fresh_doc.get("rows"), list):
        sys.exit(f"{args.fresh}: no rows array")

    base = after_rows(base_doc)
    fresh = after_rows(fresh_doc)

    failures = []
    warnings = []
    checked = 0

    if base_doc.get("experiment") != fresh_doc.get("experiment"):
        failures.append(
            f"MISMATCH experiment: baseline is "
            f"{base_doc.get('experiment')!r}, fresh is "
            f"{fresh_doc.get('experiment')!r} -- these files describe "
            "different experiments and cannot be compared")
    base_meta = {k: v for k, v in base_doc.get("meta", {}).items()
                 if k not in VOLATILE_META}
    fresh_meta = {k: v for k, v in fresh_doc.get("meta", {}).items()
                  if k not in VOLATILE_META}
    for mk in sorted(base_meta.keys() | fresh_meta.keys()):
        if mk not in base_meta or mk not in fresh_meta:
            warnings.append(
                f"META     {mk}: present only in "
                f"{'baseline' if mk in base_meta else 'fresh'} "
                "(regenerate the baseline to record it on both sides)")
        elif base_meta[mk] != fresh_meta[mk]:
            failures.append(
                f"MISMATCH meta {mk}: baseline {base_meta[mk]!r} != fresh "
                f"{fresh_meta[mk]!r} -- the fresh run used a different "
                "setup; regenerate the baseline instead of comparing "
                "unlike runs")

    for k, frow in sorted(fresh.items()):
        if k not in base:
            warnings.append(
                f"NEW      {label_of(k, frow)}: no baseline counterpart "
                "(informational until the baseline is regenerated)")
    for k, brow in sorted(base.items()):
        frow = fresh.get(k)
        label = label_of(k, brow)
        if frow is None:
            same_name = sorted({str(dict(k2[1])) for k2 in fresh
                                if k2[0] == k[0]})
            if same_name:
                failures.append(
                    f"MISMATCH {label}: no fresh row with this config; "
                    f"fresh '{k[0]}' rows ran with "
                    f"{', '.join(same_name)} -- the config metadata "
                    "differs; regenerate the baseline instead of "
                    "comparing unlike runs")
            else:
                failures.append(f"MISSING  {label}: no matching fresh row")
            continue
        if frow.get("unit") != brow.get("unit"):
            failures.append(
                f"MISMATCH {label}: unit {brow.get('unit')!r} -> "
                f"{frow.get('unit')!r} -- the row's meaning changed; "
                "regenerate the baseline instead of comparing unlike runs")
            continue
        if frow.get("seed") != brow.get("seed"):
            failures.append(
                f"MISMATCH {label}: seed {brow.get('seed')} -> "
                f"{frow.get('seed')} -- not the same seeded run; "
                "regenerate the baseline instead of comparing unlike runs")
            continue
        unit, bv, fv = brow["unit"], brow["value"], frow["value"]
        if unit in HIGHER_BETTER:
            checked += 1
            floor = bv * (1.0 - args.tolerance)
            if fv < floor:
                failures.append(
                    f"REGRESSED {label}: {fv:.6g} {unit} < floor "
                    f"{floor:.6g} (baseline {bv:.6g})")
        elif unit in LOWER_BETTER:
            checked += 1
            ceil = bv * (1.0 + args.tolerance)
            if fv > ceil:
                failures.append(
                    f"REGRESSED {label}: {fv:.6g} {unit} > ceiling "
                    f"{ceil:.6g} (baseline {bv:.6g})")
        elif unit == "bool":
            checked += 1
            if fv < bv:
                failures.append(f"REGRESSED {label}: {bv:g} -> {fv:g}")

    print(f"{args.fresh}: {checked} rows checked against {args.baseline}, "
          f"{len(failures)} failures, {len(warnings)} warnings")
    for w in warnings:
        print("  " + w)
    for f in failures:
        print("  " + f)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
