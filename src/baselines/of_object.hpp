// Baseline: obstruction-free-only object.
//
// The query-abortable universal object used directly with naive retry --
// no leader election, no contention management. Solo operations succeed
// (obstruction-freedom), but under contention nothing is guaranteed:
// symmetric lockstep schedules can livelock every process forever. This
// is the floor TBWF improves on; bench_graceful_degradation and
// bench_obstruction_freedom chart it.
#pragma once

#include "core/tbwf_object.hpp"
#include "qa/qa_universal.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"

namespace tbwf::baselines {

template <qa::Sequential S, class Base = qa::AtomicBase>
class OfObject {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;

  OfObject(sim::World& world, State initial,
           registers::AbortPolicy* qa_policy = nullptr)
      : qa_(world, std::move(initial), qa_policy), log_(world.n()) {}

  /// Retry until the operation lands. Obstruction-free: terminates if
  /// the caller eventually runs solo; may spin forever under contention.
  sim::Co<Result> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    ++log_.started[p];
    bool next_is_query = false;
    for (;;) {
      qa::QaResponse<Result> res = next_is_query
                                       ? co_await qa_.query(env)
                                       : co_await qa_.invoke(env, op);
      if (res.ok()) {
        log_.completions[p].push_back(env.now());
        co_return res.value;
      }
      next_is_query = res.bottom();
      co_await env.yield();
    }
  }

  qa::QaUniversal<S, Base>& qa() { return qa_; }
  const core::OpLog& log() const { return log_; }

 private:
  qa::QaUniversal<S, Base> qa_;
  core::OpLog log_;
};

}  // namespace tbwf::baselines
