// Baseline: boosting obstruction-freedom to wait-freedom assuming ALL
// processes are timely -- in the style of [7] (Fich-Luchangco-Moir-
// Shavit) and [11] (Taubenfeld), the algorithms Section 2 contrasts
// TBWF against.
//
// Mechanism (representative of that family): a global PANIC flag and a
// timestamped TOKEN. Processes run the obstruction-free object directly
// while there is no panic; on contention they panic, queue on the
// token, and the token owner runs solo while everyone else WAITS --
// with no timeout, because the scheme assumes every process is timely
// and will finish and release.
//
// This is exactly what makes it non-gracefully degrading: if a single
// untimely process acquires the token and stalls, every process --
// including all the timely ones -- blocks forever. Compare the TBWF
// stack, where untimely processes can only hurt themselves.
// bench_boosting_collapse quantifies the difference.
//
// Token acquisition uses CAS, like the boosting algorithm of [11]
// (which the paper notes uses registers and compare-and-swap) -- also a
// reminder that this baseline needs a primitive stronger than anything
// in the TBWF stack.
#pragma once

#include <cstdint>

#include "core/tbwf_object.hpp"
#include "qa/qa_universal.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"

namespace tbwf::baselines {

template <qa::Sequential S, class Base = qa::AtomicBase>
class BoostedWf {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;

  struct Token {
    std::int64_t ts = 0;
    sim::Pid owner = sim::kNoPid;
    bool operator==(const Token&) const = default;
  };

  BoostedWf(sim::World& world, State initial,
            registers::AbortPolicy* qa_policy = nullptr)
      : qa_(world, std::move(initial), qa_policy), log_(world.n()) {
    panic_ = world.make_atomic<bool>("BoostPanic", false);
    token_ = world.make_atomic<Token>("BoostToken", Token{});
  }

  sim::Co<Result> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    ++log_.started[p];
    bool next_is_query = false;
    int fast_failures = 0;

    for (;;) {
      const bool panicked = co_await env.read(panic_);
      if (!panicked) {
        // Fast path: operate directly on the OF object.
        qa::QaResponse<Result> res = next_is_query
                                         ? co_await qa_.query(env)
                                         : co_await qa_.invoke(env, op);
        if (res.ok()) {
          log_.completions[p].push_back(env.now());
          co_return res.value;
        }
        next_is_query = res.bottom();
        if (++fast_failures < 2) {
          co_await env.yield();
          continue;
        }
        // Contention detected twice: escalate to the token.
      }

      // Slow path: queue on the token. NOTE: no timeout while waiting --
      // the scheme trusts the owner to be timely.
      std::int64_t my_ts = 0;
      for (;;) {
        const Token t = co_await env.read(token_);
        if (t.owner == sim::kNoPid) {
          my_ts = t.ts + 1;
          auto [acquired, witnessed] =
              co_await env.cas(token_, t, Token{my_ts, p});
          (void)witnessed;
          if (acquired) break;
        }
        co_await env.yield();
      }
      co_await env.write(panic_, true);

      // Owner phase: run to completion, effectively solo.
      for (;;) {
        qa::QaResponse<Result> res = next_is_query
                                         ? co_await qa_.query(env)
                                         : co_await qa_.invoke(env, op);
        if (res.ok()) {
          co_await env.write(panic_, false);
          co_await env.write(token_, Token{my_ts, sim::kNoPid});
          log_.completions[p].push_back(env.now());
          co_return res.value;
        }
        next_is_query = res.bottom();
        co_await env.yield();
      }
    }
  }

  qa::QaUniversal<S, Base>& qa() { return qa_; }
  const core::OpLog& log() const { return log_; }
  /// Test/bench introspection: the token and panic registers.
  sim::AtomicReg<Token> token_handle() const { return token_; }
  sim::AtomicReg<bool> panic_handle() const { return panic_; }

 private:
  qa::QaUniversal<S, Base> qa_;
  sim::AtomicReg<bool> panic_;
  sim::AtomicReg<Token> token_;
  core::OpLog log_;
};

}  // namespace tbwf::baselines
