// Baselines built on compare-and-swap.
//
// The paper's Section 1.2 observes that any object has a wait-free
// implementation from strong primitives like CAS [9], but that such
// primitives are stronger than what TBWF needs. These two baselines
// quantify that trade in the benches:
//
//   * LfUniversal -- the classic lock-free CAS loop: read the state
//     record, apply the operation, CAS it in; retry on failure. Some
//     process always makes progress, but an individual process can
//     starve under contention.
//
//   * WfHerlihy -- a wait-free helping construction: processes announce
//     operations; each CAS transition applies EVERY pending announced
//     operation (combining), so any successful transition -- whoever
//     performs it -- completes the announced op too. Bounded retries
//     per operation regardless of timing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tbwf_object.hpp"
#include "qa/sequential_type.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"

namespace tbwf::baselines {

namespace detail {

template <class S>
struct VersionedState {
  std::uint64_t seq = 0;
  typename S::State state{};
  /// uid of the last applied op per process, and its result.
  std::vector<std::uint64_t> applied_uid;
  std::vector<typename S::Result> result;

  bool operator==(const VersionedState& other) const {
    // seq uniquely identifies a record in a CAS chain.
    return seq == other.seq;
  }
};

template <class S>
struct Announce {
  std::uint64_t uid = 0;  ///< 0 = nothing pending
  typename S::Op op{};

  bool operator==(const Announce& other) const {
    return uid == other.uid;
  }
};

}  // namespace detail

/// Lock-free CAS-loop universal construction.
template <qa::Sequential S>
class LfUniversal {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Rec = detail::VersionedState<S>;

  LfUniversal(sim::World& world, State initial) : log_(world.n()) {
    Rec rec;
    rec.state = std::move(initial);
    rec.applied_uid.assign(world.n(), 0);
    rec.result.assign(world.n(), Result{});
    cell_ = world.make_atomic<Rec>("LfState", std::move(rec));
    uid_.assign(world.n(), 0);
  }

  sim::Co<Result> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    ++log_.started[p];
    for (;;) {
      Rec current = co_await env.read(cell_);
      Rec next = current;
      next.seq = current.seq + 1;
      const Result r = S::apply(next.state, op);
      next.result[p] = r;
      auto [ok, witnessed] = co_await env.cas(cell_, current, next);
      (void)witnessed;
      if (ok) {
        log_.completions[p].push_back(env.now());
        co_return r;
      }
    }
  }

  const core::OpLog& log() const { return log_; }
  const Rec& peek(sim::World& w) const { return w.peek(cell_); }

 private:
  sim::AtomicReg<Rec> cell_;
  std::vector<std::uint64_t> uid_;
  core::OpLog log_;
};

/// Wait-free universal construction with helping (Herlihy-style,
/// flattened into an announce array + combining CAS).
template <qa::Sequential S>
class WfHerlihy {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Rec = detail::VersionedState<S>;
  using Ann = detail::Announce<S>;

  WfHerlihy(sim::World& world, State initial)
      : n_(world.n()), log_(world.n()) {
    Rec rec;
    rec.state = std::move(initial);
    rec.applied_uid.assign(n_, 0);
    rec.result.assign(n_, Result{});
    cell_ = world.make_atomic<Rec>("WfState", std::move(rec));
    announce_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      announce_.push_back(world.make_atomic<Ann>(
          "WfAnnounce[" + std::to_string(p) + "]", Ann{}));
    }
    uid_.assign(n_, 0);
  }

  sim::Co<Result> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    ++log_.started[p];
    const std::uint64_t uid = ++uid_[p] * n_ + p;
    co_await env.write(announce_[p], Ann{uid, op});

    for (;;) {
      Rec current = co_await env.read(cell_);
      if (current.applied_uid[p] == uid) {
        // Someone (possibly a helper) applied our op.
        log_.completions[p].push_back(env.now());
        co_return current.result[p];
      }
      // Combine every pending announced operation into one transition.
      Rec next = current;
      next.seq = current.seq + 1;
      for (sim::Pid q = 0; q < n_; ++q) {
        Ann a = co_await env.read(announce_[q]);
        if (a.uid != 0 && current.applied_uid[q] != a.uid) {
          next.result[q] = S::apply(next.state, a.op);
          next.applied_uid[q] = a.uid;
        }
      }
      auto [ok, witnessed] = co_await env.cas(cell_, current, next);
      (void)ok;
      (void)witnessed;
      // Whether our CAS won or a competitor's did, our announced op is
      // either applied now or will be combined into the next
      // transition; at most a bounded number of retries suffice.
    }
  }

  const core::OpLog& log() const { return log_; }
  const Rec& peek(sim::World& w) const { return w.peek(cell_); }

 private:
  int n_;
  sim::AtomicReg<Rec> cell_;
  std::vector<sim::AtomicReg<Ann>> announce_;
  std::vector<std::uint64_t> uid_;
  core::OpLog log_;
};

}  // namespace tbwf::baselines
