// Sequential specification types for the data-structure zoo.
//
// Each zoo object exists twice -- as a QA-universal instantiation
// (these types plugged into QaUniversal / BatchedQaUniversal) and as a
// handwritten register-based specialist (snapshot.hpp, turn_queue.hpp,
// ledger.hpp). The types below are the *common spec*: the universal
// twin executes them directly, the Wing-Gong oracle replays candidate
// linearizations of BOTH twins against them, and the differential
// cross-check folds Ok results of both twins through them to compare
// final abstract states.
//
// States are deliberately encoded in hashable containers
// (vector/deque of int64) so DefaultStateHash and the harness
// fingerprint folds cover them without bespoke overloads.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "qa/sequential_type.hpp"

namespace tbwf::zoo {

/// Atomic snapshot over `m` single-writer segments. State is the
/// segment vector (sized by the initial state -- use
/// SnapshotType::initial(n)). Update writes one segment and returns
/// {}; Scan returns the whole vector. The multi-value (vector) Result
/// is what exercises the oracle's non-scalar fate handling.
struct SnapshotType {
  using State = std::vector<std::int64_t>;
  struct Op {
    bool is_update = false;
    int index = 0;
    std::int64_t value = 0;
  };
  using Result = std::vector<std::int64_t>;  ///< scan: the view; update: {}

  static Result apply(State& state, const Op& op) {
    if (op.is_update) {
      if (op.index >= 0 && op.index < static_cast<int>(state.size())) {
        state[static_cast<std::size_t>(op.index)] = op.value;
      }
      return {};
    }
    return state;
  }

  static State initial(int segments) {
    return State(static_cast<std::size_t>(segments), 0);
  }
  static Op update(int index, std::int64_t value) {
    return Op{true, index, value};
  }
  static Op scan() { return Op{false, 0, 0}; }
};
static_assert(qa::Sequential<SnapshotType>);

/// Bounded FIFO queue of capacity Cap. Enqueue on a full queue returns
/// kFull (the op is a no-op); dequeue on an empty queue returns kEmpty.
/// A successful enqueue echoes the enqueued value.
template <int Cap>
struct BoundedQueueOf {
  static_assert(Cap >= 1);
  static constexpr int kCapacity = Cap;
  static constexpr std::int64_t kEmpty = -1;
  static constexpr std::int64_t kFull = -2;

  using State = std::deque<std::int64_t>;
  struct Op {
    bool is_enqueue = false;
    std::int64_t value = 0;
  };
  using Result = std::int64_t;

  static Result apply(State& state, const Op& op) {
    if (op.is_enqueue) {
      if (static_cast<int>(state.size()) >= Cap) return kFull;
      state.push_back(op.value);
      return op.value;
    }
    if (state.empty()) return kEmpty;
    const Result front = state.front();
    state.pop_front();
    return front;
  }

  static Op enqueue(std::int64_t value) { return Op{true, value}; }
  static Op dequeue() { return Op{false, 0}; }
};
using BoundedQueue4 = BoundedQueueOf<4>;
static_assert(qa::Sequential<BoundedQueue4>);

/// Append-ordered ledger/map: the state IS the append log, flattened
/// as [k0, v0, k1, v1, ...]. Put appends a (key, value) pair and
/// echoes the value; Get scans from the tail and returns the latest
/// binding (kAbsent if the key was never put). Keeping the log -- not
/// a folded map -- as the state means two linearizations that bind
/// the same final values in different orders still hash differently,
/// which is exactly the discrimination the oracle needs.
struct LedgerType {
  static constexpr std::int64_t kAbsent = -1;

  using State = std::vector<std::int64_t>;  ///< flattened (key, value) pairs
  struct Op {
    bool is_put = false;
    std::int64_t key = 0;
    std::int64_t value = 0;
  };
  using Result = std::int64_t;

  static Result apply(State& state, const Op& op) {
    if (op.is_put) {
      state.push_back(op.key);
      state.push_back(op.value);
      return op.value;
    }
    for (std::size_t i = state.size(); i >= 2; i -= 2) {
      if (state[i - 2] == op.key) return state[i - 1];
    }
    return kAbsent;
  }

  static Op put(std::int64_t key, std::int64_t value) {
    return Op{true, key, value};
  }
  static Op get(std::int64_t key) { return Op{false, key, 0}; }
};
static_assert(qa::Sequential<LedgerType>);

}  // namespace tbwf::zoo
