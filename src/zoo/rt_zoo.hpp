// Real-thread specialists of the zoo objects, on genuinely abortable
// try-lock registers (RtAbortableReg) -- the rt twins of snapshot.hpp,
// turn_queue.hpp and ledger.hpp. The universal rt twins are simply
// RtQaUniversal<S> / RtQaBatched<S> over the same zoo_types.hpp specs.
//
// Same protocols as the sim specialists; the difference is the base
// register: every read may return nullopt and every write may return
// false (cell busy, injected fault). The T_QA translation is uniform:
//  - an aborted READ aborts the surrounding operation with bottom; no
//    shared state was touched, so the fate is F (NotApplied) and query
//    resolves it immediately.
//  - an aborted WRITE of the caller's own record retries boundedly;
//    an operation whose tentative item / pending claim could not be
//    settled before return parks the obligation and query finishes the
//    settlement (self-help on abort) -- bottom persists only until a
//    settlement write lands.
// Solo, try-lock cells never abort (no contending holder), so solo
// operations never answer bottom -- the graded-guarantee base case.
//
// Everything here is single-writer: thread t writes only slot t, so
// the per-thread Local blocks need no atomics (owner-thread access
// only) and the shared cells carry all cross-thread communication.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "qa/qa_object.hpp"
#include "rt/rt_registers.hpp"
#include "util/assert.hpp"
#include "util/cacheline.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {

/// Bounded settlement retries for own-record writes: the cell is only
/// ever held for the duration of one copy, so a handful of tries
/// almost always lands; what does not land is parked for query.
inline constexpr int kRtSettleTries = 64;

// -- snapshot -------------------------------------------------------------

class RtZooSnapshot {
 public:
  using S = SnapshotType;
  using Result = S::Result;
  using Response = qa::QaResponse<Result>;
  using Tid = std::uint32_t;

  RtZooSnapshot(int nthreads, S::State initial) : n_(nthreads) {
    TBWF_ASSERT(static_cast<int>(initial.size()) == n_,
                "RtZooSnapshot: one segment per thread");
    segs_.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      Seg seg;
      seg.value = initial[static_cast<std::size_t>(i)];
      segs_.emplace_back(std::make_unique<rt::RtAbortableReg<Seg>>(seg));
    }
    locals_ = std::vector<util::CachelinePadded<Local>>(
        static_cast<std::size_t>(n_));
  }

  Response invoke(Tid tid, S::Op op) {
    Local& local = locals_[tid].value;
    local.started = true;
    if (op.is_update) {
      TBWF_ASSERT(static_cast<Tid>(op.index) == tid,
                  "RtZooSnapshot: a thread updates its own segment");
      Result view;
      if (!scan(view)) {
        local.applied = false;
        return Response::make_bottom();
      }
      std::optional<Seg> mine = segs_[tid]->read();
      if (!mine) {
        local.applied = false;
        return Response::make_bottom();
      }
      Seg seg;
      seg.value = op.value;
      seg.seq = mine->seq + 1;
      seg.view = std::move(view);
      if (!write_settled(*segs_[tid], seg)) {
        local.applied = false;
        return Response::make_bottom();
      }
      local.applied = true;
      local.result = Result{};
      return Response::make_ok(Result{});
    }
    Result view;
    if (!scan(view)) {
      local.applied = false;
      return Response::make_bottom();
    }
    local.applied = true;
    local.result = view;
    return Response::make_ok(view);
  }

  /// Aborted ops touched nothing shared, so the fate is locally known.
  Response query(Tid tid) {
    const Local& local = locals_[tid].value;
    if (!local.started) return Response::make_not_applied();
    return local.applied ? Response::make_ok(local.result)
                         : Response::make_not_applied();
  }

  int n() const { return n_; }

 private:
  struct Seg {
    std::int64_t value = 0;
    std::uint64_t seq = 0;
    std::vector<std::int64_t> view;
  };
  struct Local {
    bool started = false;
    bool applied = false;
    Result result;
  };

  bool collect(std::vector<Seg>& out) {
    out.clear();
    out.reserve(static_cast<std::size_t>(n_));
    for (int q = 0; q < n_; ++q) {
      std::optional<Seg> seg = segs_[static_cast<std::size_t>(q)]->read();
      if (!seg) return false;
      out.push_back(std::move(*seg));
    }
    return true;
  }

  bool scan(Result& view) {
    std::vector<int> moved(static_cast<std::size_t>(n_), 0);
    std::vector<Seg> prev;
    if (!collect(prev)) return false;
    // Bounded by pigeonhole exactly as in the sim specialist: after
    // n + 1 dirty double-collects some writer moved twice.
    for (int attempt = 0; attempt <= n_ + 1; ++attempt) {
      std::vector<Seg> cur;
      if (!collect(cur)) return false;
      bool clean = true;
      for (int q = 0; q < n_; ++q) {
        const std::size_t i = static_cast<std::size_t>(q);
        if (cur[i].seq != prev[i].seq) {
          clean = false;
          if (++moved[i] >= 2) {
            view = cur[i].view;
            return true;
          }
        }
      }
      if (clean) {
        view.clear();
        for (const Seg& seg : cur) view.push_back(seg.value);
        return true;
      }
      prev = std::move(cur);
    }
    return false;  // unreachable; kept as a hard bound
  }

  static bool write_settled(rt::RtAbortableReg<Seg>& reg, const Seg& seg) {
    for (int k = 0; k < kRtSettleTries; ++k) {
      if (reg.write(seg)) return true;
    }
    return false;
  }

  int n_;
  std::vector<std::unique_ptr<rt::RtAbortableReg<Seg>>> segs_;
  std::vector<util::CachelinePadded<Local>> locals_;
};

// -- ledger ---------------------------------------------------------------

class RtZooLedger {
 public:
  using S = LedgerType;
  using Result = S::Result;
  using Response = qa::QaResponse<Result>;
  using Tid = std::uint32_t;

  RtZooLedger(int nthreads, S::State initial) : n_(nthreads) {
    Log genesis;
    for (std::size_t i = 0; i + 1 < initial.size(); i += 2) {
      genesis.entries.push_back(Entry{initial[i], initial[i + 1], 0});
    }
    logs_.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      logs_.emplace_back(
          std::make_unique<rt::RtAbortableReg<Log>>(i == 0 ? genesis : Log{}));
    }
    locals_ = std::vector<util::CachelinePadded<Local>>(
        static_cast<std::size_t>(n_));
  }

  Response invoke(Tid tid, S::Op op) {
    Local& local = locals_[tid].value;
    local.started = true;
    local.applied = false;
    if (op.is_put) {
      std::uint64_t max_ts = 0;
      for (int q = 0; q < n_; ++q) {
        std::optional<Log> log = logs_[static_cast<std::size_t>(q)]->read();
        if (!log) return Response::make_bottom();
        for (const Entry& e : log->entries) {
          if (e.ts > max_ts) max_ts = e.ts;
        }
      }
      std::optional<Log> mine = logs_[tid]->read();
      if (!mine) return Response::make_bottom();
      mine->entries.push_back(Entry{op.key, op.value, max_ts + 1});
      bool landed = false;
      for (int k = 0; k < kRtSettleTries && !landed; ++k) {
        landed = logs_[tid]->write(*mine);
      }
      if (!landed) return Response::make_bottom();
      local.applied = true;
      local.result = op.value;
      return Response::make_ok(op.value);
    }
    std::int64_t value = S::kAbsent;
    std::uint64_t best_ts = 0;
    int best_tid = -1;
    for (int q = 0; q < n_; ++q) {
      std::optional<Log> log = logs_[static_cast<std::size_t>(q)]->read();
      if (!log) return Response::make_bottom();
      for (const Entry& e : log->entries) {
        if (e.key != op.key) continue;
        if (value == S::kAbsent || e.ts > best_ts ||
            (e.ts == best_ts && q > best_tid)) {
          value = e.value;
          best_ts = e.ts;
          best_tid = q;
        }
      }
    }
    local.applied = true;
    local.result = value;
    return Response::make_ok(value);
  }

  Response query(Tid tid) {
    const Local& local = locals_[tid].value;
    if (!local.started) return Response::make_not_applied();
    return local.applied ? Response::make_ok(local.result)
                         : Response::make_not_applied();
  }

  int n() const { return n_; }

 private:
  struct Entry {
    std::int64_t key = 0;
    std::int64_t value = 0;
    std::uint64_t ts = 0;
  };
  struct Log {
    std::vector<Entry> entries;
  };
  struct Local {
    bool started = false;
    bool applied = false;
    Result result = 0;
  };

  int n_;
  std::vector<std::unique_ptr<rt::RtAbortableReg<Log>>> logs_;
  std::vector<util::CachelinePadded<Local>> locals_;
};

// -- bounded MPMC queue ---------------------------------------------------

template <int Cap>
class RtZooQueue {
 public:
  using S = BoundedQueueOf<Cap>;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;
  using Tid = std::uint32_t;

  explicit RtZooQueue(int nthreads) : n_(nthreads) {
    recs_.reserve(static_cast<std::size_t>(n_));
    for (int i = 0; i < n_; ++i) {
      recs_.emplace_back(std::make_unique<rt::RtAbortableReg<Rec>>(Rec{}));
    }
    locals_ = std::vector<util::CachelinePadded<Local>>(
        static_cast<std::size_t>(n_));
  }

  Response invoke(Tid tid, typename S::Op op) {
    Local& local = locals_[tid].value;
    local.started = true;
    local.pending = Pending::kNone;
    return op.is_enqueue ? enqueue(tid, op.value) : dequeue(tid);
  }

  /// Finishes parked settlements (self-help): a tentative item or
  /// pending claim left by an aborted settlement write is retried
  /// here; until it lands the fate stays bottom.
  Response query(Tid tid) {
    Local& local = locals_[tid].value;
    if (!local.started) return Response::make_not_applied();
    switch (local.pending) {
      case Pending::kNone:
        break;
      case Pending::kRetractItem:
        if (!set_last_item_state(tid, kRetracted)) {
          return Response::make_bottom();
        }
        local.pending = Pending::kNone;
        local.applied = false;
        break;
      case Pending::kDropClaim:
        if (!set_last_claim_state(tid, kDropped)) {
          return Response::make_bottom();
        }
        local.pending = Pending::kNone;
        local.applied = false;
        break;
    }
    return local.applied ? Response::make_ok(local.result)
                         : Response::make_not_applied();
  }

  int n() const { return n_; }

 private:
  enum ItemState : std::uint8_t { kTentative = 0, kCommitted, kRetracted };
  enum ClaimState : std::uint8_t { kPending = 0, kConfirmed, kDropped };
  enum class Pending : std::uint8_t { kNone, kRetractItem, kDropClaim };

  struct Item {
    std::int64_t value = 0;
    std::uint64_t ts = 0;
    std::uint8_t state = kTentative;
  };
  struct Claim {
    std::uint32_t owner = 0;
    std::uint32_t index = 0;
    std::uint8_t state = kPending;
  };
  struct Rec {
    std::vector<Item> items;
    std::vector<Claim> claims;
  };
  using View = std::vector<Rec>;

  struct ItemRef {
    std::uint32_t owner = 0;
    std::uint32_t index = 0;
    std::uint64_t ts = 0;
    std::int64_t value = 0;
    bool operator<(const ItemRef& o) const {
      return ts != o.ts ? ts < o.ts : owner < o.owner;
    }
    bool same(const ItemRef& o) const {
      return owner == o.owner && index == o.index;
    }
  };

  struct Local {
    bool started = false;
    bool applied = false;
    Result result = 0;
    Pending pending = Pending::kNone;
  };

  bool collect(View& view) {
    view.clear();
    view.reserve(static_cast<std::size_t>(n_));
    for (int q = 0; q < n_; ++q) {
      std::optional<Rec> rec = recs_[static_cast<std::size_t>(q)]->read();
      if (!rec) return false;
      view.push_back(std::move(*rec));
    }
    return true;
  }

  static bool consumed_in(const View& view, std::uint32_t owner,
                          std::uint32_t index) {
    for (const Rec& rec : view) {
      for (const Claim& c : rec.claims) {
        if (c.state == kConfirmed && c.owner == owner && c.index == index) {
          return true;
        }
      }
    }
    return false;
  }

  static std::vector<ItemRef> unconsumed(const View& view) {
    std::vector<ItemRef> out;
    for (std::uint32_t q = 0; q < view.size(); ++q) {
      const Rec& rec = view[q];
      for (std::uint32_t k = 0; k < rec.items.size(); ++k) {
        if (rec.items[k].state != kCommitted) continue;
        if (consumed_in(view, q, k)) continue;
        out.push_back(ItemRef{q, k, rec.items[k].ts, rec.items[k].value});
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static bool foreign_pending_claim(const View& view, Tid self) {
    for (std::uint32_t q = 0; q < view.size(); ++q) {
      if (q == self) continue;
      for (const Claim& c : view[q].claims) {
        if (c.state == kPending) return true;
      }
    }
    return false;
  }

  static bool foreign_tentative_item(const View& view, Tid self) {
    for (std::uint32_t q = 0; q < view.size(); ++q) {
      if (q == self) continue;
      for (const Item& item : view[q].items) {
        if (item.state == kTentative) return true;
      }
    }
    return false;
  }

  static std::uint64_t max_ts(const View& view) {
    std::uint64_t ts = 0;
    for (const Rec& rec : view) {
      for (const Item& item : rec.items) {
        if (item.ts > ts) ts = item.ts;
      }
    }
    return ts;
  }

  static std::uint64_t view_digest(const View& view, Tid self) {
    std::uint64_t h = 1469598103934665603ull;  // FNV offset
    const auto mix = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ull;
    };
    for (std::uint32_t q = 0; q < view.size(); ++q) {
      if (q == self) continue;
      mix(view[q].items.size());
      for (const Item& item : view[q].items) mix(item.state);
      mix(view[q].claims.size());
      for (const Claim& c : view[q].claims) mix(c.state);
    }
    return h;
  }

  bool append_item(Tid tid, Item item) {
    std::optional<Rec> mine = recs_[tid]->read();
    if (!mine) return false;
    mine->items.push_back(item);
    for (int k = 0; k < kRtSettleTries; ++k) {
      if (recs_[tid]->write(*mine)) return true;
    }
    return false;
  }

  bool append_claim(Tid tid, Claim claim) {
    std::optional<Rec> mine = recs_[tid]->read();
    if (!mine) return false;
    mine->claims.push_back(claim);
    for (int k = 0; k < kRtSettleTries; ++k) {
      if (recs_[tid]->write(*mine)) return true;
    }
    return false;
  }

  bool set_last_item_state(Tid tid, std::uint8_t state) {
    for (int k = 0; k < kRtSettleTries; ++k) {
      std::optional<Rec> mine = recs_[tid]->read();
      if (!mine) continue;
      mine->items.back().state = state;
      if (recs_[tid]->write(*mine)) return true;
    }
    return false;
  }

  bool set_last_claim_state(Tid tid, std::uint8_t state) {
    for (int k = 0; k < kRtSettleTries; ++k) {
      std::optional<Rec> mine = recs_[tid]->read();
      if (!mine) continue;
      mine->claims.back().state = state;
      if (recs_[tid]->write(*mine)) return true;
    }
    return false;
  }

  Response enqueue(Tid tid, std::int64_t v) {
    Local& local = locals_[tid].value;
    local.applied = false;
    View c1;
    if (!collect(c1)) return Response::make_bottom();
    const std::uint64_t ts = max_ts(c1) + 1;
    const int size1 = static_cast<int>(unconsumed(c1).size());
    if (size1 + n_ <= Cap) {
      if (!append_item(tid, Item{v, ts, kCommitted})) {
        return Response::make_bottom();  // nothing landed: fate F
      }
      local.applied = true;
      local.result = v;
      return Response::make_ok(v);
    }
    if (!append_item(tid, Item{v, ts, kTentative})) {
      return Response::make_bottom();  // nothing landed: fate F
    }
    View c2;
    if (!collect(c2)) return park_item(local);
    const int size2 = static_cast<int>(unconsumed(c2).size());
    const bool stable = view_digest(c1, tid) == view_digest(c2, tid);
    if (size2 >= Cap && stable) {
      if (!set_last_item_state(tid, kRetracted)) return park_item(local);
      local.applied = true;
      local.result = S::kFull;
      return Response::make_ok(S::kFull);
    }
    const bool quiet = stable && !foreign_tentative_item(c2, tid) &&
                       !foreign_pending_claim(c2, tid);
    if (size2 < Cap && (size2 + n_ <= Cap || quiet)) {
      if (!set_last_item_state(tid, kCommitted)) return park_item(local);
      local.applied = true;
      local.result = v;
      return Response::make_ok(v);
    }
    if (!set_last_item_state(tid, kRetracted)) return park_item(local);
    return Response::make_bottom();
  }

  Response dequeue(Tid tid) {
    Local& local = locals_[tid].value;
    local.applied = false;
    View c1;
    if (!collect(c1)) return Response::make_bottom();
    if (foreign_pending_claim(c1, tid)) return Response::make_bottom();
    std::vector<ItemRef> items = unconsumed(c1);
    if (items.empty()) {
      View c2;
      if (!collect(c2)) return Response::make_bottom();
      if (view_digest(c1, tid) == view_digest(c2, tid)) {
        local.applied = true;
        local.result = S::kEmpty;
        return Response::make_ok(S::kEmpty);
      }
      return Response::make_bottom();
    }
    const ItemRef head = items.front();
    if (!append_claim(tid, Claim{head.owner, head.index, kPending})) {
      return Response::make_bottom();  // nothing landed: fate F
    }
    View c2;
    if (!collect(c2)) return park_claim(local);
    std::vector<ItemRef> items2 = unconsumed(c2);
    const bool head_gone = items2.empty() || !items2.front().same(head);
    if (foreign_pending_claim(c2, tid) || head_gone) {
      if (!set_last_claim_state(tid, kDropped)) return park_claim(local);
      return Response::make_bottom();
    }
    if (!set_last_claim_state(tid, kConfirmed)) return park_claim(local);
    local.applied = true;
    local.result = head.value;
    return Response::make_ok(head.value);
  }

  /// A settlement write aborted: park the obligation for query.
  Response park_item(Local& local) {
    local.pending = Pending::kRetractItem;
    return Response::make_bottom();
  }
  Response park_claim(Local& local) {
    local.pending = Pending::kDropClaim;
    return Response::make_bottom();
  }

  int n_;
  std::vector<std::unique_ptr<rt::RtAbortableReg<Rec>>> recs_;
  std::vector<util::CachelinePadded<Local>> locals_;
};

}  // namespace tbwf::zoo
