// The zoo's shared object interface and its explorer harness.
//
// Every zoo object -- handwritten specialist or QA-universal twin --
// exposes the same T_QA surface the verify stack already speaks:
//
//   sim::Co<QaResponse<Result>> invoke(SimEnv&, Op)
//   sim::Co<QaResponse<Result>> query(SimEnv&)
//   std::uint64_t fingerprint() const          (state-hash pruning)
//   S::State abstract_state() const            (quiescent differential)
//
// ZooObject pins that contract; UniversalZoo / BatchedZoo adapt
// QaUniversal / BatchedQaUniversal onto it (adding the fingerprint and
// abstract-state accessors the harnesses need); the specialists
// (snapshot.hpp, turn_queue.hpp, ledger.hpp) implement it natively.
// ZooExploredRun then drives ANY such object through the bounded-DFS
// explorer and grades every interleaving with the Wing-Gong oracle
// against the shared sequential spec -- the same harness code verifies
// both twins, which is the point.
#pragma once

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qa/qa_batched.hpp"
#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/env.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "verify/explorer.hpp"
#include "verify/history.hpp"
#include "verify/lin_oracle.hpp"
#include "verify/qa_harness.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {

/// The shared zoo object contract (see file comment).
template <class Obj, class S>
concept ZooObject = qa::Sequential<S> &&
    requires(Obj o, const Obj co, sim::SimEnv& env, typename S::Op op) {
      { o.invoke(env, op) }
          -> std::same_as<sim::Co<qa::QaResponse<typename S::Result>>>;
      { o.query(env) }
          -> std::same_as<sim::Co<qa::QaResponse<typename S::Result>>>;
      { co.fingerprint() } -> std::convertible_to<std::uint64_t>;
      { co.abstract_state() } -> std::convertible_to<typename S::State>;
    };

/// QaUniversal adapted onto the zoo contract.
template <qa::Sequential S, class Base = qa::AtomicBase>
class UniversalZoo {
 public:
  using Inner = qa::QaUniversal<S, Base>;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;

  UniversalZoo(sim::World& world, typename S::State initial,
               registers::AbortPolicy* policy = nullptr)
      : n_(world.n()), inner_(world, std::move(initial), policy) {}

  void set_mutations(qa::QaMutations m) { inner_.set_mutations(m); }

  sim::Co<Response> invoke(sim::SimEnv& env, typename S::Op op) {
    return inner_.invoke(env, std::move(op));
  }
  sim::Co<Response> query(sim::SimEnv& env) { return inner_.query(env); }

  typename S::State abstract_state() const {
    return inner_.peek_frontier().state;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid p = 0; p < n_; ++p) {
      h = fold_record(h, inner_.peek_record(p));
      h = fold_record(h, inner_.local_mine(p));
      h = fold_state_rec(h, inner_.local_decided_rec(p));
      h = util::hash_mix(h, inner_.round(p));
      h = util::hash_mix(h, inner_.pending_uid(p));
      h = util::hash_mix(h, inner_.pending_slot(p));
      h = util::hash_mix(h, inner_.last_real_uid(p));
    }
    return h;
  }

  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }

 private:
  static std::uint64_t fold_token(std::uint64_t h,
                                  const typename Inner::Token& t) {
    h = util::hash_mix(h, t.seq);
    h = util::hash_mix(h, t.round);
    return util::hash_mix(h, t.pid);
  }
  static std::uint64_t fold_state_rec(std::uint64_t h,
                                      const typename Inner::StateRec& r) {
    h = util::hash_mix(h, r.seq);
    h = verify::detail::fold_value(h, r.state);
    h = util::hash_range(h, r.last_uid);
    h = util::hash_mix(h, r.last_result.size());
    for (const Result& res : r.last_result) {
      h = verify::detail::fold_value(h, res);
    }
    return h;
  }
  static std::uint64_t fold_record(std::uint64_t h,
                                   const typename Inner::Record& rec) {
    h = fold_token(h, rec.promised);
    h = fold_token(h, rec.accepted);
    h = fold_state_rec(h, rec.accepted_state);
    return fold_state_rec(h, rec.decided);
  }

  int n_;
  Inner inner_;
};

/// BatchedQaUniversal adapted onto the zoo contract (T_QA surface:
/// invoke/query; the saturating apply() stays reachable via engine()).
template <qa::Sequential S, class Base = qa::AtomicBase>
class BatchedZoo {
 public:
  using Engine = qa::BatchedQaUniversal<S, Base>;
  using Inner = typename Engine::Inner;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;

  BatchedZoo(sim::World& world, typename S::State initial,
             registers::AbortPolicy* policy = nullptr,
             typename Engine::Options options = {})
      : n_(world.n()),
        engine_(world, std::move(initial), policy, options) {}

  void set_mutations(qa::BatchMutations m) { engine_.set_mutations(m); }

  sim::Co<Response> invoke(sim::SimEnv& env, typename S::Op op) {
    return engine_.invoke(env, std::move(op));
  }
  sim::Co<Response> query(sim::SimEnv& env) { return engine_.query(env); }
  sim::Co<Result> apply(sim::SimEnv& env, typename S::Op op) {
    return engine_.apply(env, std::move(op));
  }

  typename S::State abstract_state() const {
    return engine_.inner().peek_frontier().state.inner;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = util::kFnvOffset;
    const Inner& inner = engine_.inner();
    for (sim::Pid p = 0; p < n_; ++p) {
      h = fold_record(h, inner.peek_record(p));
      h = fold_record(h, inner.local_mine(p));
      h = fold_state_rec(h, inner.local_decided_rec(p));
      h = util::hash_mix(h, inner.round(p));
      h = fold_announce(h, engine_.peek_announce(p));
      h = fold_announce(h, engine_.local_announce(p));
    }
    return h;
  }

  Engine& engine() { return engine_; }
  const Engine& engine() const { return engine_; }

 private:
  static std::uint64_t fold_token(std::uint64_t h,
                                  const typename Inner::Token& t) {
    h = util::hash_mix(h, t.seq);
    h = util::hash_mix(h, t.round);
    return util::hash_mix(h, t.pid);
  }
  static std::uint64_t fold_state_rec(std::uint64_t h,
                                      const typename Inner::StateRec& r) {
    h = util::hash_mix(h, r.seq);
    h = verify::detail::fold_value(h, r.state.inner);
    h = util::hash_range(h, r.state.done_uid);
    h = util::hash_range(h, r.state.done_void);
    for (const Result& res : r.state.done_result) {
      h = verify::detail::fold_value(h, res);
    }
    h = util::hash_range(h, r.last_uid);
    return util::hash_range(h, r.last_result);
  }
  static std::uint64_t fold_record(std::uint64_t h,
                                   const typename Inner::Record& rec) {
    h = fold_token(h, rec.promised);
    h = fold_token(h, rec.accepted);
    h = fold_state_rec(h, rec.accepted_state);
    return fold_state_rec(h, rec.decided);
  }
  static std::uint64_t fold_announce(std::uint64_t h,
                                     const typename Engine::Announce& a) {
    h = util::hash_mix(h, a.uid);
    return util::hash_mix(h, a.has_op);
  }

  int n_;
  Engine engine_;
};

// -- explorer harness -----------------------------------------------------

template <qa::Sequential S>
struct ZooExploreConfig {
  int n = 2;
  std::uint64_t world_seed = 1;
  typename S::State initial{};
  /// ops[p] = the operations process p issues, in order.
  std::vector<std::vector<typename S::Op>> ops;
  /// Chase each bottom response with one query to resolve its fate.
  bool query_to_resolve = true;
  /// Oracle node budget per run.
  std::uint64_t oracle_max_states = 200000;
};

/// One bounded workload over any ZooObject, packaged as an ExploredRun.
/// The fingerprint covers the object's shared/private protocol state
/// (via its own fingerprint()), each process's local step count
/// (specialist scan loops carry coroutine-local state -- moved
/// counters, previous collects -- invisible to the object fingerprint,
/// exactly the batched-harness precedent), and the history fates.
template <qa::Sequential S, class Obj>
  requires ZooObject<Obj, S>
class ZooExploredRun final : public verify::ExploredRun {
 public:
  /// Builds the object under test. Receives the config's initial
  /// abstract state so the object and the oracle can never disagree
  /// about where the run starts.
  using Maker = std::function<std::unique_ptr<Obj>(
      sim::World&, const typename S::State&)>;

  ZooExploredRun(const ZooExploreConfig<S>& config, const Maker& maker,
                 std::unique_ptr<sim::Schedule> schedule)
      : config_(config),
        world_(config.n, std::move(schedule), world_options(config)),
        object_(maker(world_, config.initial)) {
    TBWF_ASSERT(static_cast<int>(config_.ops.size()) == config_.n,
                "ZooExploreConfig::ops needs one op list per process");
    for (sim::Pid p = 0; p < config_.n; ++p) {
      world_.spawn(p, "zoo-explore", [this](sim::SimEnv& env) {
        return worker(env, *this);
      });
    }
  }

  sim::World& world() override { return world_; }
  std::uint64_t seed() const override { return config_.world_seed; }

  std::uint64_t fingerprint() const override {
    std::uint64_t h = object_->fingerprint();
    for (sim::Pid p = 0; p < config_.n; ++p) {
      h = util::hash_mix(h, world_.local_steps(p));
    }
    for (const verify::HistoryOp<S>& op : recorder_.history()) {
      h = util::hash_mix(h, op.pid);
      h = util::hash_mix(h, op.status);
      h = util::hash_mix(h, op.responses);
      if (op.status == verify::OpStatus::Ok) {
        h = verify::detail::fold_value(h, op.result);
      }
    }
    return h;
  }

  std::string check() override {
    typename verify::LinOracle<S>::Options opt;
    opt.max_states = config_.oracle_max_states;
    oracle_ = verify::LinOracle<S>(opt).check(recorder_.history(),
                                              config_.initial);
    if (oracle_.linearizable()) return {};
    return oracle_.summary();
  }

  std::string describe() const override {
    std::ostringstream out;
    out << "history (" << recorder_.size() << " ops):\n"
        << recorder_.render();
    out << "oracle: " << oracle_.summary() << "\n";
    return out.str();
  }

  const verify::OracleResult& oracle() const { return oracle_; }
  const verify::HistoryRecorder<S>& recorder() const { return recorder_; }
  const Obj& object() const { return *object_; }

 private:
  static sim::WorldOptions world_options(const ZooExploreConfig<S>& config) {
    sim::WorldOptions options;
    options.track_accesses = true;
    options.seed = config.world_seed;
    return options;
  }

  static sim::Task worker(sim::SimEnv& env, ZooExploredRun& self) {
    const sim::Pid p = env.pid();
    for (const typename S::Op& op : self.config_.ops[p]) {
      auto response = co_await self.recorder_.invoke(*self.object_, env, op);
      if (self.config_.query_to_resolve && response.bottom()) {
        (void)co_await self.recorder_.query(*self.object_, env);
      }
    }
  }

  ZooExploreConfig<S> config_;
  sim::World world_;
  std::unique_ptr<Obj> object_;
  verify::HistoryRecorder<S> recorder_;
  verify::OracleResult oracle_;
};

/// Factory adapter for Explorer. Config and maker are copied into
/// every run; the maker must be pure up to its World argument.
template <qa::Sequential S, class Obj>
  requires ZooObject<Obj, S>
verify::RunFactory make_zoo_run_factory(
    ZooExploreConfig<S> config,
    typename ZooExploredRun<S, Obj>::Maker maker) {
  return [config, maker](std::unique_ptr<sim::Schedule> schedule)
             -> std::unique_ptr<verify::ExploredRun> {
    return std::make_unique<ZooExploredRun<S, Obj>>(config, maker,
                                                    std::move(schedule));
  };
}

// -- canned workloads (the n=2,3 explorer configs) ------------------------

/// Each process updates its own segment with a distinct value, then
/// scans; a lost, duplicated or time-travelling update is visible in
/// every later scan.
inline ZooExploreConfig<SnapshotType> snapshot_explore_config(
    int n, int rounds = 1, std::uint64_t world_seed = 1) {
  ZooExploreConfig<SnapshotType> config;
  config.n = n;
  config.world_seed = world_seed;
  config.initial = SnapshotType::initial(n);
  config.ops.resize(n);
  for (int p = 0; p < n; ++p) {
    for (int k = 0; k < rounds; ++k) {
      config.ops[p].push_back(SnapshotType::update(
          p, std::int64_t{1} << (p * rounds + k)));
      config.ops[p].push_back(SnapshotType::scan());
    }
  }
  return config;
}

/// Each process enqueues a distinct value then dequeues once; FIFO,
/// exactly-once and the capacity bound are all observable.
template <int Cap>
ZooExploreConfig<BoundedQueueOf<Cap>> queue_explore_config(
    int n, std::uint64_t world_seed = 1) {
  ZooExploreConfig<BoundedQueueOf<Cap>> config;
  config.n = n;
  config.world_seed = world_seed;
  config.ops.resize(n);
  for (int p = 0; p < n; ++p) {
    config.ops[p].push_back(BoundedQueueOf<Cap>::enqueue(100 + p));
    config.ops[p].push_back(BoundedQueueOf<Cap>::dequeue());
  }
  return config;
}

/// All processes contend on one key (writes must order), plus a
/// per-process private key (reads must not lose bindings).
inline ZooExploreConfig<LedgerType> ledger_explore_config(
    int n, std::uint64_t world_seed = 1) {
  ZooExploreConfig<LedgerType> config;
  config.n = n;
  config.world_seed = world_seed;
  config.ops.resize(n);
  for (int p = 0; p < n; ++p) {
    config.ops[p].push_back(LedgerType::put(7, 10 + p));
    config.ops[p].push_back(LedgerType::get(7));
  }
  return config;
}

// -- differential cross-check ---------------------------------------------

template <qa::Sequential S>
struct ZooRunOutcome {
  bool completed = false;      ///< all processes finished their op lists
  bool linearizable = false;   ///< Wing-Gong verdict over the history
  std::vector<verify::HistoryOp<S>> history;
  typename S::State final_state{};  ///< object's quiescent abstract state
  std::string oracle_summary;
};

/// Run a config's workload to completion under RandomSchedule(seed)
/// and grade it: the engine of the differential universal-vs-specialist
/// cross-check (identical seeds, identical op lists, both twins must
/// linearize; matching Ok multisets must yield matching final states).
template <qa::Sequential S, class Obj>
  requires ZooObject<Obj, S>
ZooRunOutcome<S> run_zoo_workload(
    const ZooExploreConfig<S>& config,
    const typename ZooExploredRun<S, Obj>::Maker& maker,
    sim::Step budget = 2000000) {
  struct Driver {
    const ZooExploreConfig<S>* config = nullptr;
    Obj* object = nullptr;
    verify::HistoryRecorder<S>* recorder = nullptr;
    int done = 0;

    static sim::Task run(sim::SimEnv& env, Driver& self) {
      const sim::Pid p = env.pid();
      for (const typename S::Op& op : self.config->ops[p]) {
        auto response =
            co_await self.recorder->invoke(*self.object, env, op);
        // Chase bottoms until the fate settles (F or Ok): the
        // differential check wants fully resolved histories.
        int chases = 0;
        while (response.bottom() && chases++ < 64) {
          response = co_await self.recorder->query(*self.object, env);
          if (response.bottom()) co_await env.yield();
        }
      }
      ++self.done;
    }
  };

  sim::WorldOptions options;
  options.seed = config.world_seed;
  sim::World world(config.n,
                   std::make_unique<sim::RandomSchedule>(config.world_seed),
                   options);
  std::unique_ptr<Obj> object = maker(world, config.initial);
  verify::HistoryRecorder<S> recorder;
  Driver driver{&config, object.get(), &recorder, 0};
  for (sim::Pid p = 0; p < config.n; ++p) {
    world.spawn(p, "zoo-diff", [&driver](sim::SimEnv& env) {
      return Driver::run(env, driver);
    });
  }
  world.run_until([&] { return driver.done == config.n; }, budget);

  ZooRunOutcome<S> outcome;
  outcome.completed = driver.done == config.n;
  typename verify::LinOracle<S>::Options opt;
  opt.max_states = config.oracle_max_states;
  auto verdict = verify::LinOracle<S>(opt).check(recorder.history(),
                                                 config.initial);
  outcome.linearizable = verdict.linearizable();
  outcome.oracle_summary = verdict.summary();
  outcome.history = recorder.history();
  outcome.final_state = object->abstract_state();
  return outcome;
}

}  // namespace tbwf::zoo
