// Handwritten register-based ledger/map -- the specialist twin of
// QaUniversal<LedgerType>.
//
// One single-writer append-only log per process. put(k, v) collects
// all logs, picks ts = (max timestamp seen) + 1, and appends
// {k, v, ts} to its own log with a single write; get(k) collects all
// logs and returns the binding with the lexicographically greatest
// (ts, pid). Both operations are one or two collects plus at most one
// write -- wait-free point reads and writes with O(n) register
// operations, no helping needed because logs are append-only and
// single-writer.
//
// Linearizability sketch: between two non-overlapping puts the later
// one collects the earlier one's entry, so its ts is strictly larger
// -- (ts, pid) order extends the real-time order, ties arise only
// between overlapping puts and are broken consistently for every
// reader. A get linearizes at its last collect read.
//
// Mutation seam: stale_ts makes put skip the collect and use a
// process-local counter -- two *sequential* puts by different
// processes can then order newest-first, which the Wing-Gong oracle
// flags as non-linearizable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "qa/qa_object.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/hash.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {

struct LedgerMutations {
  /// put uses a process-local timestamp instead of a fresh collect.
  bool stale_ts = false;
};

class WfLedger {
 public:
  using S = LedgerType;
  using Result = S::Result;
  using Response = qa::QaResponse<Result>;

  WfLedger(sim::World& world, S::State initial)
      : world_(world), n_(world.n()) {
    Log genesis;
    // Pre-existing bindings (the spec's initial log) live in a
    // virtual log owned by no process, replicated into p0's genesis.
    for (std::size_t i = 0; i + 1 < initial.size(); i += 2) {
      genesis.entries.push_back(
          Entry{initial[i], initial[i + 1], 0});
    }
    logs_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      logs_.push_back(world.make_atomic<Log>(
          "zoo.ledger.log." + std::to_string(p), p == 0 ? genesis : Log{}));
    }
    last_.assign(n_, Response::make_not_applied());
    has_op_.assign(n_, false);
    local_ts_.assign(n_, 0);
    op_digest_.assign(n_, 0);
  }

  void set_mutations(LedgerMutations m) { mut_ = m; }

  sim::Co<Response> invoke(sim::SimEnv& env, S::Op op) {
    const sim::Pid p = env.pid();
    const std::size_t i = static_cast<std::size_t>(p);
    has_op_[i] = true;
    op_digest_[i] = util::kFnvOffset;
    if (op.is_put) {
      std::uint64_t ts;
      if (mut_.stale_ts) {
        ts = ++local_ts_[i];
      } else {
        std::uint64_t max_ts = 0;
        for (sim::Pid q = 0; q < n_; ++q) {
          const Log log = co_await env.read(logs_[static_cast<std::size_t>(q)]);
          fold_read(p, log);
          for (const Entry& e : log.entries) {
            if (e.ts > max_ts) max_ts = e.ts;
          }
        }
        ts = max_ts + 1;
      }
      Log mine = co_await env.read(logs_[i]);
      fold_read(p, mine);
      mine.entries.push_back(Entry{op.key, op.value, ts});
      co_await env.write(logs_[i], mine);
      last_[i] = Response::make_ok(op.value);
    } else {
      std::int64_t value = S::kAbsent;
      std::uint64_t best_ts = 0;
      sim::Pid best_pid = -1;
      for (sim::Pid q = 0; q < n_; ++q) {
        const Log log = co_await env.read(logs_[static_cast<std::size_t>(q)]);
        fold_read(p, log);
        for (const Entry& e : log.entries) {
          if (e.key != op.key) continue;
          if (value == S::kAbsent || e.ts > best_ts ||
              (e.ts == best_ts && q > best_pid)) {
            value = e.value;
            best_ts = e.ts;
            best_pid = q;
          }
        }
      }
      last_[i] = Response::make_ok(value);
    }
    // The op is done; its locals no longer constrain future behaviour.
    op_digest_[i] = 0;
    co_return last_[i];
  }

  sim::Co<Response> query(sim::SimEnv& env) {
    const std::size_t i = static_cast<std::size_t>(env.pid());
    co_await env.yield();
    co_return has_op_[i] ? last_[i] : Response::make_not_applied();
  }

  /// Quiescent-only: replay all entries in (ts, pid) order through the
  /// spec to obtain the abstract append log.
  S::State abstract_state() const {
    std::vector<Entry> all;
    for (sim::Pid p = 0; p < n_; ++p) {
      const Log& log = world_.peek<Log>(logs_[static_cast<std::size_t>(p)]);
      for (const Entry& e : log.entries) {
        Entry tagged = e;
        tagged.pid_tiebreak = p;
        all.push_back(tagged);
      }
    }
    std::sort(all.begin(), all.end(), [](const Entry& a, const Entry& b) {
      return a.ts != b.ts ? a.ts < b.ts : a.pid_tiebreak < b.pid_tiebreak;
    });
    S::State state;
    for (const Entry& e : all) {
      state.push_back(e.key);
      state.push_back(e.value);
    }
    return state;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid p = 0; p < n_; ++p) {
      const Log& log = world_.peek<Log>(logs_[static_cast<std::size_t>(p)]);
      h = util::hash_mix(h, log.entries.size());
      for (const Entry& e : log.entries) {
        h = util::hash_mix(h, e.key);
        h = util::hash_mix(h, e.value);
        h = util::hash_mix(h, e.ts);
      }
    }
    // Keep in-flight ops with different partial collects distinct under
    // explorer state caching (continuations are a function of values
    // read so far in the current op).
    for (sim::Pid p = 0; p < n_; ++p) {
      h = util::hash_mix(h, op_digest_[static_cast<std::size_t>(p)]);
    }
    return h;
  }

  int n() const { return n_; }

 private:
  struct Entry {
    std::int64_t key = 0;
    std::int64_t value = 0;
    std::uint64_t ts = 0;
    sim::Pid pid_tiebreak = 0;  ///< only used by abstract_state()
  };
  struct Log {
    std::vector<Entry> entries;
  };

  void fold_read(sim::Pid p, const Log& log) {
    std::uint64_t& h = op_digest_[static_cast<std::size_t>(p)];
    h = util::hash_mix(h, log.entries.size());
    for (const Entry& e : log.entries) {
      h = util::hash_mix(h, e.key);
      h = util::hash_mix(h, e.value);
      h = util::hash_mix(h, e.ts);
    }
  }

  sim::World& world_;
  int n_;
  std::vector<sim::AtomicReg<Log>> logs_;
  std::vector<Response> last_;
  std::vector<bool> has_op_;
  std::vector<std::uint64_t> local_ts_;
  std::vector<std::uint64_t> op_digest_;  ///< per-pid in-flight read digest
  LedgerMutations mut_;
};

}  // namespace tbwf::zoo
