// Handwritten wait-free atomic snapshot -- the specialist twin of
// QaUniversal<SnapshotType>.
//
// Classic bounded double-collect construction (Afek et al., and the
// canonical presentation in Aspnes's notes): one single-writer atomic
// segment per process holding {value, seq, embedded view}. An update
// first performs a full scan and embeds it next to the new value; a
// scan repeats collects until either two consecutive collects agree
// (a clean double-collect -- the view was atomic at any point between
// them) or some updater is seen to move TWICE, in which case its
// second embedded view was taken entirely inside the scanner's
// interval and can be borrowed. By pigeonhole a scan finishes within
// n + 2 collects, so both operations are wait-free with O(n^2) reads.
//
// The specialist lives on the same T_QA surface as the universal twin
// (invoke/query returning QaResponse) so HistoryRecorder and the zoo
// explorer harness drive either interchangeably; being built on atomic
// single-writer registers it simply never answers bottom.
//
// Mutation seams (verification bites, see zoo_snapshot_test):
//  - drop_embedded_scan: updates embed a stale (genesis) view; a
//    scanner that borrows returns a view that never existed -> the
//    Wing-Gong oracle flags the history as non-linearizable.
//  - never_borrow: scans refuse to borrow and keep re-collecting; under
//    continuous updates the scanner starves -> the TBWF conformance
//    checker flags a wait-freedom violation for a timely process.
#pragma once

#include <cstdint>
#include <vector>

#include "qa/qa_object.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/hash.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {

struct SnapshotMutations {
  /// Updates embed the genesis view instead of a fresh scan.
  bool drop_embedded_scan = false;
  /// Scans never borrow an embedded view (unbounded retry loop).
  bool never_borrow = false;
};

class WfSnapshot {
 public:
  using S = SnapshotType;
  using Result = S::Result;
  using Response = qa::QaResponse<Result>;

  WfSnapshot(sim::World& world, S::State initial)
      : world_(world), n_(world.n()) {
    TBWF_ASSERT(static_cast<int>(initial.size()) == n_,
                "WfSnapshot: one segment per process (use "
                "SnapshotType::initial(n))");
    segs_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      Seg seg;
      seg.value = initial[static_cast<std::size_t>(p)];
      segs_.push_back(world.make_atomic<Seg>(
          "zoo.snap.seg." + std::to_string(p), seg));
    }
    last_.assign(n_, Response::make_not_applied());
    has_op_.assign(n_, false);
    op_digest_.assign(n_, 0);
  }

  void set_mutations(SnapshotMutations m) { mut_ = m; }

  /// Specialist updates write the caller's own segment (single-writer
  /// base registers); workloads must use op.index == pid.
  sim::Co<Response> invoke(sim::SimEnv& env, S::Op op) {
    const sim::Pid p = env.pid();
    has_op_[static_cast<std::size_t>(p)] = true;
    op_digest_[static_cast<std::size_t>(p)] = util::kFnvOffset;
    if (op.is_update) {
      TBWF_ASSERT(op.index == p,
                  "WfSnapshot specialist: a process updates its own "
                  "segment");
      Seg seg;
      if (!mut_.drop_embedded_scan) {
        seg.view = co_await scan(env);
      } else {
        seg.view.assign(static_cast<std::size_t>(n_), 0);
      }
      const Seg mine = co_await env.read(segs_[static_cast<std::size_t>(p)]);
      fold_read(p, mine);
      seg.value = op.value;
      seg.seq = mine.seq + 1;
      co_await env.write(segs_[static_cast<std::size_t>(p)], seg);
      last_[static_cast<std::size_t>(p)] = Response::make_ok(Result{});
    } else {
      Result view = co_await scan(env);
      last_[static_cast<std::size_t>(p)] = Response::make_ok(view);
    }
    // The op is done: its coroutine locals are dead, so the in-flight
    // digest no longer constrains future behaviour.
    op_digest_[static_cast<std::size_t>(p)] = 0;
    co_return last_[static_cast<std::size_t>(p)];
  }

  /// The specialist never answers bottom, so query just restates the
  /// last operation's (already final) fate.
  sim::Co<Response> query(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    co_await env.yield();
    co_return has_op_[static_cast<std::size_t>(p)]
        ? last_[static_cast<std::size_t>(p)]
        : Response::make_not_applied();
  }

  /// Quiescent-only abstract state for differential cross-checks.
  S::State abstract_state() const {
    S::State state;
    state.reserve(static_cast<std::size_t>(n_));
    for (sim::Pid p = 0; p < n_; ++p) {
      state.push_back(world_.peek<Seg>(segs_[static_cast<std::size_t>(p)]).value);
    }
    return state;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid p = 0; p < n_; ++p) {
      const Seg& seg = world_.peek<Seg>(segs_[static_cast<std::size_t>(p)]);
      h = util::hash_mix(h, seg.value);
      h = util::hash_mix(h, seg.seq);
      h = util::hash_range(h, seg.view);
    }
    // In-flight coroutine locals (prev collect, moved counters) are a
    // deterministic function of the values each pending op has read so
    // far; folding the per-pid read digests keeps states with different
    // continuations distinct under explorer state caching.
    for (sim::Pid p = 0; p < n_; ++p) {
      h = util::hash_mix(h, op_digest_[static_cast<std::size_t>(p)]);
    }
    return h;
  }

  int n() const { return n_; }

 private:
  struct Seg {
    std::int64_t value = 0;
    std::uint64_t seq = 0;
    std::vector<std::int64_t> view;  ///< writer-embedded scan
  };

  void fold_read(sim::Pid p, const Seg& seg) {
    std::uint64_t& h = op_digest_[static_cast<std::size_t>(p)];
    h = util::hash_mix(h, seg.value);
    h = util::hash_mix(h, seg.seq);
    h = util::hash_range(h, seg.view);
  }

  sim::Co<std::vector<Seg>> collect(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    std::vector<Seg> out;
    out.reserve(static_cast<std::size_t>(n_));
    for (sim::Pid q = 0; q < n_; ++q) {
      out.push_back(co_await env.read(segs_[static_cast<std::size_t>(q)]));
      fold_read(p, out.back());
    }
    co_return out;
  }

  sim::Co<Result> scan(sim::SimEnv& env) {
    std::vector<int> moved(static_cast<std::size_t>(n_), 0);
    std::vector<Seg> prev = co_await collect(env);
    for (;;) {
      std::vector<Seg> cur = co_await collect(env);
      bool clean = true;
      for (sim::Pid q = 0; q < n_; ++q) {
        const std::size_t i = static_cast<std::size_t>(q);
        if (cur[i].seq != prev[i].seq) {
          clean = false;
          if (++moved[i] >= 2 && !mut_.never_borrow) {
            // q moved twice since we started: its latest embedded view
            // was scanned entirely inside our interval.
            co_return cur[i].view;
          }
        }
      }
      if (clean) {
        Result view;
        view.reserve(static_cast<std::size_t>(n_));
        for (const Seg& seg : cur) view.push_back(seg.value);
        co_return view;
      }
      prev = std::move(cur);
    }
  }

  sim::World& world_;
  int n_;
  std::vector<sim::AtomicReg<Seg>> segs_;
  std::vector<Response> last_;
  std::vector<bool> has_op_;
  std::vector<std::uint64_t> op_digest_;  ///< per-pid in-flight read digest
  SnapshotMutations mut_;
};

}  // namespace tbwf::zoo
