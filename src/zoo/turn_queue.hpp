// Handwritten wait-free bounded MPMC queue -- the specialist twin of
// QaUniversal<BoundedQueueOf<Cap>>.
//
// One single-writer register per process holding an append-only record
// of (a) enqueue items stamped with a Lamport timestamp and a
// commit state, and (b) dequeue *claims* naming an item and a turn.
// The abstract queue is derived: committed items ordered by
// (ts, owner), minus items named by confirmed claims.
//
// Enqueue: collect, stamp ts = max seen + 1.
//   - fast path: if committed-unconsumed <= Cap - n, append a
//     committed item directly (the slack n covers every concurrent
//     unseen append -- each process has at most one in flight).
//   - near-full slow path: append the item *tentative*, re-collect,
//     then either (i) conclude full (stable double-collect showing
//     >= Cap unconsumed: retract, return kFull), (ii) commit (stable
//     double-collect, no foreign tentative item or pending claim, and
//     room left -- the solo-stable case; or room with full slack), or
//     (iii) retract and answer bottom. A retracted item never counts.
// Dequeue: collect; a foreign pending claim is contention -> bottom.
//   Otherwise claim the oldest unconsumed item (publish pending
//   claim), validate with a second collect (any foreign pending claim,
//   the item consumed, or a new older item -> retract, bottom), then
//   confirm. Publish-then-validate gives per-turn mutual exclusion: of
//   two claimants for one turn, whichever published second necessarily
//   reads the other's pending claim during validation and retracts.
// Empty/full verdicts come from clean double-collects (the collected
// state co-existed between the two collects), so Ok(kEmpty)/Ok(kFull)
// linearize inside the operation's interval.
//
// T_QA surface: contention can yield bottom, but every return path
// settles the caller's own tentative item / pending claim first
// (self-help on abort), so a bottomed op's fate is already final and
// query resolves it to Ok or F from local state alone -- and a crashed
// process can wedge at most its own claim, never another's record.
// Solo runs take the fast path or the solo-stable path and never
// answer bottom.
//
// Mutation seam: drop_claim_fence skips dequeue validation -- two
// dequeuers can then confirm the same turn and both return the same
// value, which the Wing-Gong oracle flags as non-linearizable.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qa/qa_object.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/hash.hpp"
#include "zoo/zoo_types.hpp"

namespace tbwf::zoo {

struct TurnQueueMutations {
  /// Dequeue confirms without the validation collect.
  bool drop_claim_fence = false;
};

template <int Cap>
class TurnQueue {
 public:
  using S = BoundedQueueOf<Cap>;
  using Result = typename S::Result;
  using Response = qa::QaResponse<Result>;

  TurnQueue(sim::World& world, typename S::State initial)
      : world_(world), n_(world.n()) {
    Rec genesis;
    // Pre-loaded items live in p0's record with ascending timestamps.
    std::uint64_t ts = 0;
    for (const std::int64_t v : initial) {
      genesis.items.push_back(Item{v, ++ts, kCommitted});
    }
    recs_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      recs_.push_back(world.make_atomic<Rec>(
          "zoo.queue.rec." + std::to_string(p), p == 0 ? genesis : Rec{}));
    }
    last_.assign(n_, Response::make_not_applied());
    has_op_.assign(n_, false);
    op_digest_.assign(n_, 0);
  }

  void set_mutations(TurnQueueMutations m) { mut_ = m; }

  sim::Co<Response> invoke(sim::SimEnv& env, typename S::Op op) {
    const sim::Pid p = env.pid();
    const std::size_t i = static_cast<std::size_t>(p);
    has_op_[i] = true;
    op_digest_[i] = util::kFnvOffset;
    Response r = op.is_enqueue ? co_await enqueue(env, p, op.value)
                               : co_await dequeue(env, p);
    last_[i] = r;
    // Coroutine locals (collected views, the chosen head) die here.
    op_digest_[i] = 0;
    co_return r;
  }

  /// Every invoke settles its own item/claim before returning, so the
  /// last op's fate is final and locally known: bottom never survives
  /// a query here.
  sim::Co<Response> query(sim::SimEnv& env) {
    const std::size_t i = static_cast<std::size_t>(env.pid());
    co_await env.yield();
    if (!has_op_[i]) co_return Response::make_not_applied();
    if (last_[i].bottom()) co_return Response::make_not_applied();
    co_return last_[i];
  }

  /// Quiescent-only abstract state for differential cross-checks:
  /// committed unconsumed items in (ts, owner) order.
  typename S::State abstract_state() const {
    View view = peek_view();
    typename S::State state;
    for (const ItemRef& ref : unconsumed(view)) state.push_back(ref.value);
    return state;
  }

  std::uint64_t fingerprint() const {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid p = 0; p < n_; ++p) {
      fold_rec(h, world_.peek<Rec>(recs_[static_cast<std::size_t>(p)]));
    }
    // A pending op's continuation (held collect, chosen head item) is a
    // deterministic function of the values it has read so far; without
    // the per-pid read digests, explorer state caching merges states
    // whose registers agree but whose in-flight dequeues hold different
    // views -- exactly how the dropped-fence double-dequeue once hid.
    for (sim::Pid p = 0; p < n_; ++p) {
      h = util::hash_mix(h, op_digest_[static_cast<std::size_t>(p)]);
    }
    return h;
  }

  int n() const { return n_; }

 private:
  enum ItemState : std::uint8_t { kTentative = 0, kCommitted, kRetracted };
  enum ClaimState : std::uint8_t { kPending = 0, kConfirmed, kDropped };

  struct Item {
    std::int64_t value = 0;
    std::uint64_t ts = 0;
    std::uint8_t state = kTentative;
  };
  struct Claim {
    sim::Pid owner = 0;       ///< owner of the claimed item
    std::uint32_t index = 0;  ///< index into the owner's item log
    std::uint64_t turn = 0;   ///< consumed count in the claimant's view
    std::uint8_t state = kPending;
  };
  struct Rec {
    std::vector<Item> items;
    std::vector<Claim> claims;
  };
  using View = std::vector<Rec>;

  struct ItemRef {
    sim::Pid owner = 0;
    std::uint32_t index = 0;
    std::uint64_t ts = 0;
    std::int64_t value = 0;
    bool operator<(const ItemRef& o) const {
      return ts != o.ts ? ts < o.ts : owner < o.owner;
    }
    bool same(const ItemRef& o) const {
      return owner == o.owner && index == o.index;
    }
  };

  // -- view helpers (pure, over a collected View) -------------------------

  static bool consumed_in(const View& view, sim::Pid owner,
                          std::uint32_t index) {
    for (const Rec& rec : view) {
      for (const Claim& c : rec.claims) {
        if (c.state == kConfirmed && c.owner == owner && c.index == index) {
          return true;
        }
      }
    }
    return false;
  }

  static std::uint64_t consumed_count(const View& view) {
    std::uint64_t count = 0;
    for (const Rec& rec : view) {
      for (const Claim& c : rec.claims) {
        if (c.state == kConfirmed) ++count;
      }
    }
    return count;
  }

  /// Committed items not named by a confirmed claim, (ts, owner) sorted.
  static std::vector<ItemRef> unconsumed(const View& view) {
    std::vector<ItemRef> out;
    for (sim::Pid q = 0; q < static_cast<sim::Pid>(view.size()); ++q) {
      const Rec& rec = view[static_cast<std::size_t>(q)];
      for (std::uint32_t k = 0; k < rec.items.size(); ++k) {
        if (rec.items[k].state != kCommitted) continue;
        if (consumed_in(view, q, k)) continue;
        out.push_back(ItemRef{q, k, rec.items[k].ts, rec.items[k].value});
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static bool foreign_pending_claim(const View& view, sim::Pid self) {
    for (sim::Pid q = 0; q < static_cast<sim::Pid>(view.size()); ++q) {
      if (q == self) continue;
      for (const Claim& c : view[static_cast<std::size_t>(q)].claims) {
        if (c.state == kPending) return true;
      }
    }
    return false;
  }

  static bool foreign_tentative_item(const View& view, sim::Pid self) {
    for (sim::Pid q = 0; q < static_cast<sim::Pid>(view.size()); ++q) {
      if (q == self) continue;
      for (const Item& item : view[static_cast<std::size_t>(q)].items) {
        if (item.state == kTentative) return true;
      }
    }
    return false;
  }

  static std::uint64_t max_ts(const View& view) {
    std::uint64_t ts = 0;
    for (const Rec& rec : view) {
      for (const Item& item : rec.items) {
        if (item.ts > ts) ts = item.ts;
      }
    }
    return ts;
  }

  /// Stability digest over every record EXCEPT the caller's own: the
  /// caller writes its own record between collects (tentative append,
  /// claim publish), which must not defeat the double-collect; only
  /// foreign quiescence carries the co-existence argument.
  static std::uint64_t view_digest(const View& view, sim::Pid self) {
    std::uint64_t h = util::kFnvOffset;
    for (sim::Pid q = 0; q < static_cast<sim::Pid>(view.size()); ++q) {
      if (q == self) continue;
      const Rec& rec = view[static_cast<std::size_t>(q)];
      h = util::hash_mix(h, rec.items.size());
      for (const Item& item : rec.items) h = util::hash_mix(h, item.state);
      h = util::hash_mix(h, rec.claims.size());
      for (const Claim& c : rec.claims) h = util::hash_mix(h, c.state);
    }
    return h;
  }

  static void fold_rec(std::uint64_t& h, const Rec& rec) {
    h = util::hash_mix(h, rec.items.size());
    for (const Item& item : rec.items) {
      h = util::hash_mix(h, item.value);
      h = util::hash_mix(h, item.ts);
      h = util::hash_mix(h, item.state);
    }
    h = util::hash_mix(h, rec.claims.size());
    for (const Claim& c : rec.claims) {
      h = util::hash_mix(h, c.owner);
      h = util::hash_mix(h, c.index);
      h = util::hash_mix(h, c.turn);
      h = util::hash_mix(h, c.state);
    }
  }

  void fold_read(sim::Pid p, const Rec& rec) {
    fold_rec(op_digest_[static_cast<std::size_t>(p)], rec);
  }

  sim::Co<View> collect(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    View view;
    view.reserve(static_cast<std::size_t>(n_));
    for (sim::Pid q = 0; q < n_; ++q) {
      view.push_back(co_await env.read(recs_[static_cast<std::size_t>(q)]));
      fold_read(p, view.back());
    }
    co_return view;
  }

  View peek_view() const {
    View view;
    view.reserve(static_cast<std::size_t>(n_));
    for (sim::Pid q = 0; q < n_; ++q) {
      view.push_back(world_.peek<Rec>(recs_[static_cast<std::size_t>(q)]));
    }
    return view;
  }

  /// Rewrite the state of the caller's last item (append order).
  sim::Co<void> set_last_item_state(sim::SimEnv& env, sim::Pid p,
                                    std::uint8_t state) {
    Rec mine = co_await env.read(recs_[static_cast<std::size_t>(p)]);
    fold_read(p, mine);
    mine.items.back().state = state;
    co_await env.write(recs_[static_cast<std::size_t>(p)], mine);
  }

  sim::Co<void> set_last_claim_state(sim::SimEnv& env, sim::Pid p,
                                     std::uint8_t state) {
    Rec mine = co_await env.read(recs_[static_cast<std::size_t>(p)]);
    fold_read(p, mine);
    mine.claims.back().state = state;
    co_await env.write(recs_[static_cast<std::size_t>(p)], mine);
  }

  // -- enqueue ------------------------------------------------------------

  sim::Co<Response> enqueue(sim::SimEnv& env, sim::Pid p, std::int64_t v) {
    View c1 = co_await collect(env);
    const std::uint64_t ts = max_ts(c1) + 1;
    const int size1 = static_cast<int>(unconsumed(c1).size());
    if (size1 + n_ <= Cap) {
      // Fast path: even if every other process lands one unseen item,
      // the bound holds.
      Rec mine = co_await env.read(recs_[static_cast<std::size_t>(p)]);
      fold_read(p, mine);
      mine.items.push_back(Item{v, ts, kCommitted});
      co_await env.write(recs_[static_cast<std::size_t>(p)], mine);
      co_return Response::make_ok(v);
    }
    // Near-full slow path: tentative append, validate, then commit /
    // conclude full / retract.
    {
      Rec mine = co_await env.read(recs_[static_cast<std::size_t>(p)]);
      fold_read(p, mine);
      mine.items.push_back(Item{v, ts, kTentative});
      co_await env.write(recs_[static_cast<std::size_t>(p)], mine);
    }
    View c2 = co_await collect(env);
    const int size2 = static_cast<int>(unconsumed(c2).size());
    const bool stable = view_digest(c1, p) == view_digest(c2, p);
    if (size2 >= Cap && stable) {
      // The >= Cap unconsumed items co-existed between the collects:
      // the queue was full inside our interval.
      co_await set_last_item_state(env, p, kRetracted);
      co_return Response::make_ok(S::kFull);
    }
    const bool quiet = stable && !foreign_tentative_item(c2, p) &&
                       !foreign_pending_claim(c2, p);
    if (size2 < Cap && (size2 + n_ <= Cap || quiet)) {
      // Full slack, or solo-stable: any unseen concurrent appender
      // will observe our (tentative or committed) item during ITS
      // validation and yield, so committing here cannot overflow.
      co_await set_last_item_state(env, p, kCommitted);
      co_return Response::make_ok(v);
    }
    co_await set_last_item_state(env, p, kRetracted);
    co_return Response::make_bottom();
  }

  // -- dequeue ------------------------------------------------------------

  sim::Co<Response> dequeue(sim::SimEnv& env, sim::Pid p) {
    View c1 = co_await collect(env);
    if (foreign_pending_claim(c1, p)) co_return Response::make_bottom();
    std::vector<ItemRef> items = unconsumed(c1);
    if (items.empty()) {
      View c2 = co_await collect(env);
      if (view_digest(c1, p) == view_digest(c2, p)) {
        co_return Response::make_ok(S::kEmpty);
      }
      co_return Response::make_bottom();
    }
    const ItemRef head = items.front();
    {  // Publish a pending claim for the head item's turn.
      Rec mine = co_await env.read(recs_[static_cast<std::size_t>(p)]);
      fold_read(p, mine);
      mine.claims.push_back(
          Claim{head.owner, head.index, consumed_count(c1), kPending});
      co_await env.write(recs_[static_cast<std::size_t>(p)], mine);
    }
    if (!mut_.drop_claim_fence) {
      View c2 = co_await collect(env);
      std::vector<ItemRef> items2 = unconsumed(c2);
      const bool head_gone =
          items2.empty() || !items2.front().same(head);
      if (foreign_pending_claim(c2, p) || head_gone) {
        co_await set_last_claim_state(env, p, kDropped);
        co_return Response::make_bottom();
      }
    }
    co_await set_last_claim_state(env, p, kConfirmed);
    co_return Response::make_ok(head.value);
  }

  sim::World& world_;
  int n_;
  std::vector<sim::AtomicReg<Rec>> recs_;
  std::vector<Response> last_;
  std::vector<bool> has_op_;
  std::vector<std::uint64_t> op_digest_;  ///< per-pid in-flight read digest
  TurnQueueMutations mut_;
};

}  // namespace tbwf::zoo
