// Minimal leveled logging.
//
// The simulator is deterministic and single-threaded, but the rt backend
// logs from multiple threads, so emission is serialized internally.
// Logging defaults to Warn to keep test and bench output clean.
#pragma once

#include <sstream>
#include <string>

namespace tbwf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_emit(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace tbwf::util

#define TBWF_LOG(level)                                               \
  if (::tbwf::util::log_level() <= ::tbwf::util::LogLevel::level)     \
  ::tbwf::util::detail::LogLine(::tbwf::util::LogLevel::level)
