// Lightweight metrics: counters, gauges and step-valued histograms.
//
// Benchmarks aggregate per-run measurements (steps per operation, election
// latency, abort rates) through these types and print paper-style tables.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tbwf::util {

/// Streaming histogram over non-negative integer samples (e.g. steps/op).
/// Keeps all samples; runs are laptop-scale so memory is not a concern,
/// and exact quantiles beat approximate sketches for a reproduction.
class Histogram {
 public:
  void add(std::uint64_t sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  std::uint64_t min() const;
  std::uint64_t max() const;
  double mean() const;
  double stddev() const;

  /// Exact quantile, q in [0, 1]. Returns 0 on an empty histogram.
  std::uint64_t quantile(double q) const;

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }

  void merge(const Histogram& other);
  void clear();

  /// Sum of all samples (exact; used for throughput-over-window tallies).
  std::uint64_t sum() const;

  /// "n=... mean=... p50=... p99=... max=..." one-liner for tables.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<std::uint64_t> samples_;
  mutable bool sorted_ = true;
};

/// Named counter bag; used by the simulator to expose per-run statistics
/// (register writes, aborts, elections, ...) without threading dozens of
/// out-parameters through the stack.
class Counters {
 public:
  void inc(const std::string& name, std::uint64_t delta = 1) {
    values_[name] += delta;
  }
  /// Keep the running maximum of `value` under `name` (e.g. worst-case
  /// re-election latency across a sweep).
  void max_of(const std::string& name, std::uint64_t value) {
    auto& slot = values_[name];
    slot = std::max(slot, value);
  }
  std::uint64_t get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return values_; }
  void clear() { values_.clear(); }

 private:
  std::map<std::string, std::uint64_t> values_;
};

/// Jain's fairness index over per-process throughput: 1.0 = perfectly
/// fair, 1/n = one process monopolizes. Used by the canonical-use bench.
double jain_fairness(const std::vector<std::uint64_t>& xs);

}  // namespace tbwf::util
