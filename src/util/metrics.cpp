#include "util/metrics.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

#include "util/assert.hpp"

namespace tbwf::util {

void Histogram::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<std::uint64_t>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

std::uint64_t Histogram::min() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.front();
}

std::uint64_t Histogram::max() const {
  if (samples_.empty()) return 0;
  ensure_sorted();
  return samples_.back();
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  long double sum = 0;
  for (auto s : samples_) sum += s;
  return static_cast<double>(sum / samples_.size());
}

double Histogram::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  long double acc = 0;
  for (auto s : samples_) {
    const double d = static_cast<double>(s) - m;
    acc += d * d;
  }
  return std::sqrt(static_cast<double>(acc / (samples_.size() - 1)));
}

std::uint64_t Histogram::quantile(double q) const {
  if (samples_.empty()) return 0;
  TBWF_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void Histogram::merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

void Histogram::clear() {
  samples_.clear();
  sorted_ = true;
}

std::uint64_t Histogram::sum() const {
  std::uint64_t total = 0;
  for (auto s : samples_) total += s;
  return total;
}

std::string Histogram::summary() const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << p50()
     << " p99=" << p99() << " max=" << max();
  return os.str();
}

double jain_fairness(const std::vector<std::uint64_t>& xs) {
  if (xs.empty()) return 1.0;
  long double sum = 0, sumsq = 0;
  for (auto x : xs) {
    sum += x;
    sumsq += static_cast<long double>(x) * x;
  }
  if (sumsq == 0) return 1.0;
  const long double n = static_cast<long double>(xs.size());
  return static_cast<double>((sum * sum) / (n * sumsq));
}

}  // namespace tbwf::util
