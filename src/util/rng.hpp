// Deterministic pseudo-random number generation for reproducible runs.
//
// All randomness in the simulator (schedules, abort policies, workloads)
// flows through SplitMix64/Xoshiro256** seeded explicitly, so a run is a
// pure function of its seed. std::mt19937 is avoided because its seeding
// and distribution behaviour is not identical across standard libraries.
#pragma once

#include <cstdint>
#include <limits>

namespace tbwf::util {

/// SplitMix64: used to expand a single 64-bit seed into independent
/// streams (e.g. one per process, one per policy object).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the workhorse generator. Fast, high quality, and
/// deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child generator (stream splitting).
  Rng split() { return Rng(next() ^ 0xA3EC647659359ACDULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace tbwf::util
