// Cache-line isolation helpers for the hot shared-memory paths.
//
// False sharing -- two logically independent cells mapped onto one
// hardware cache line -- turns every relaxed counter bump into a
// cross-core invalidation. The rt backend's per-thread tallies
// (commit counters, supervisor slots, trace rings, injector draw
// counters) are exactly the shape that suffers: written at high rate by
// one thread, read rarely by others. This header centralizes the line
// size and a padding wrapper so each such cell owns its line outright.
//
// kCacheLineSize is a compile-time constant (64 bytes covers x86-64 and
// mainstream AArch64; std::hardware_destructive_interference_size is
// deliberately not used -- its value can differ between translation
// units compiled with different tuning flags, which would be an ODR
// trap for the ABI of every struct padded with it).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace tbwf::util {

inline constexpr std::size_t kCacheLineSize = 64;

/// Wrap a value so it starts on its own cache line and no neighbouring
/// object can share that line (alignment rounds sizeof up to a multiple
/// of the line). Use for per-thread slots that live in arrays: each
/// element's writes then stay on the owning core.
///
///   CachelinePadded<std::atomic<std::uint64_t>> counters[kThreads];
///
/// The wrapper adds nothing else: access the cell through value or *,->.
template <class T>
struct alignas(kCacheLineSize) CachelinePadded {
  T value;

  CachelinePadded() = default;
  template <class... Args>
  explicit CachelinePadded(Args&&... args)
      : value(std::forward<Args>(args)...) {}

  T& operator*() { return value; }
  const T& operator*() const { return value; }
  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
};

static_assert(sizeof(CachelinePadded<char>) == kCacheLineSize,
              "padding must round a small cell up to one full line");
static_assert(alignof(CachelinePadded<char>) == kCacheLineSize,
              "padded cells must start on a line boundary");

}  // namespace tbwf::util
