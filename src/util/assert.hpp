// Always-on invariant checking.
//
// Simulator and algorithm invariants are checked in every build type:
// a reproduction whose correctness checks vanish in release mode is not
// trustworthy. TBWF_ASSERT aborts with a message; TBWF_CHECK throws
// (used where the caller can meaningfully handle spec violations).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace tbwf::util {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::fprintf(stderr, "TBWF_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg.c_str());
  std::abort();
}

/// Thrown by TBWF_CHECK on model/spec violations (e.g. writing to an
/// abortable register from a process that is not its designated writer).
class SpecViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

}  // namespace tbwf::util

#define TBWF_ASSERT(expr, ...)                                          \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::tbwf::util::assert_fail(#expr, __FILE__, __LINE__,              \
                                ::std::string(__VA_ARGS__));            \
    }                                                                   \
  } while (0)

#define TBWF_CHECK(expr, msg)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      throw ::tbwf::util::SpecViolation(::std::string("TBWF_CHECK: ") + \
                                        (msg));                         \
    }                                                                   \
  } while (0)
