#include "util/rng.hpp"

namespace tbwf::util {

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tbwf::util
