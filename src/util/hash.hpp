// Deterministic non-cryptographic hashing for state fingerprints.
//
// The verify layer (schedule explorer, linearizability oracle, replay
// regression tests) identifies simulator states and traces by 64-bit
// digests. Everything here is FNV-1a based: stable across platforms and
// standard libraries (std::hash is not), cheap enough for the explorer's
// per-node fingerprinting hot path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <type_traits>

namespace tbwf::util {

inline constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

/// FNV-1a over a byte range, continuing from `seed`.
inline std::uint64_t fnv1a(const void* data, std::size_t size,
                           std::uint64_t seed = kFnvOffset) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t seed = kFnvOffset) {
  return fnv1a(s.data(), s.size(), seed);
}

/// Fold one integral value into a running digest. Values are widened to
/// 64 bits first so the digest does not depend on the caller's choice of
/// integer width.
template <class T>
  requires std::is_integral_v<T> || std::is_enum_v<T>
std::uint64_t hash_mix(std::uint64_t seed, T value) {
  std::uint64_t v;
  if constexpr (std::is_enum_v<T>) {
    v = static_cast<std::uint64_t>(
        static_cast<std::make_unsigned_t<std::underlying_type_t<T>>>(value));
  } else if constexpr (std::is_same_v<T, bool>) {
    v = value ? 1 : 0;
  } else {
    v = static_cast<std::uint64_t>(static_cast<std::make_unsigned_t<T>>(value));
  }
  return fnv1a(&v, sizeof(v), seed);
}

/// Fold a range of integral values into a running digest, length first
/// (so {1,2} and {1,2,0} differ even when the tail is zero).
template <class Range>
std::uint64_t hash_range(std::uint64_t seed, const Range& range) {
  seed = hash_mix(seed, static_cast<std::uint64_t>(range.size()));
  for (const auto& v : range) seed = hash_mix(seed, v);
  return seed;
}

}  // namespace tbwf::util
