// Batched fast-path/slow-path throughput engine in front of the QA
// universal construction (sim backend).
//
// The plain construction (qa_universal.hpp) pays one full promise /
// accept / decide round per operation, so n contending processes fight
// for every slot. Following the Nerio batch-of-edicts idea and the
// write-contention lower bounds of Alistarh-Gelashvili-Nadiradze (many
// logical ops must share one shared-register write to beat per-op
// contention), this engine commits an ordered BATCH per decided slot:
//
//   announce   every caller publishes its pending op in a single-writer
//              announce register (one shared write per op, wait-free);
//   combine    the process that runs the slot protocol first drains the
//              announce array into one BatchOp and commits the whole
//              batch as one decided StateRec -- one Paxos round applies
//              many ops;
//   help       a caller whose op stays announced for more than
//              `patience` of its own polls runs the slot protocol
//              itself. Any combine whose drain starts after an announce
//              is published includes that announce (or finds it already
//              applied), so an op is included within a bounded number
//              of batch epochs -- the paper's graded guarantees restate
//              per batch epoch (core/conformance,
//              check_batch_conformance).
//
// Exactly-once demultiplexing: the batched object's state carries, per
// announcer, the highest applied uid and its result (done_uid /
// done_result). apply() skips any item whose uid is already covered, so
// re-draining a stale announce, adopting a floating batch, or two
// combiners racing on overlapping drains are all idempotent -- the
// decided chain is unique per slot and every proposer computes its
// batch against the unique previous decided state.
//
// Fate sealing (query): a caller whose invoke returned bottom seals the
// fate of uid u by committing a batch whose item for it is a TOMBSTONE
// for u: if u is already in the chain the tombstone dedups away (Ok);
// otherwise it marks u consumed-void, after which every later drain of
// the stale announce dedups -- F is final even against combiners that
// drained the announce before the tombstone decided (their floating
// accepts die at sealed slots, and their re-proposals recompute against
// a state that already covers u).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/batch_log.hpp"
#include "qa/qa_object.hpp"
#include "qa/qa_universal.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::qa {

/// One announced operation inside a BatchOp.
template <Sequential S>
struct BatchItem {
  sim::Pid owner = sim::kNoPid;
  std::uint64_t uid = 0;
  typename S::Op op{};
  /// Mark `uid` consumed WITHOUT applying: the owner's query seals F.
  bool tombstone = false;
  /// Mutation seam (BatchMutations::drop_from_batch): credit the owner
  /// without applying the inner op -- the lost-update bug the verify
  /// stack must catch.
  bool skip_effect = false;
};

/// The batched sequential type: a Sequential whose Op is an ordered
/// batch of announced ops of the inner type S, with per-owner
/// exactly-once dedup and response demultiplexing baked into the state.
template <Sequential S>
struct BatchSeq {
  struct State {
    typename S::State inner{};
    /// Highest applied (or voided) uid per announcer; uids are strictly
    /// monotone per owner, so `uid <= done_uid[owner]` means covered.
    std::vector<std::uint64_t> done_uid;
    std::vector<std::uint8_t> done_void;  ///< 1 = covered by a tombstone
    std::vector<typename S::Result> done_result;
  };
  using Op = std::vector<BatchItem<S>>;
  using Result = std::int64_t;  ///< fresh ops this batch applied

  static Result apply(State& state, const Op& batch) {
    Result fresh = 0;
    for (const auto& item : batch) {
      const auto owner = static_cast<std::size_t>(item.owner);
      if (owner >= state.done_uid.size()) {
        state.done_uid.resize(owner + 1, 0);
        state.done_void.resize(owner + 1, 0);
        state.done_result.resize(owner + 1, typename S::Result{});
      }
      if (item.uid <= state.done_uid[owner]) continue;  // already covered
      state.done_uid[owner] = item.uid;
      state.done_void[owner] = item.tombstone ? 1 : 0;
      state.done_result[owner] =
          (item.tombstone || item.skip_effect)
              ? typename S::Result{}
              : S::apply(state.inner, item.op);
      ++fresh;
    }
    return fresh;
  }
};

static_assert(Sequential<BatchSeq<Counter>>);

/// Injectable protocol faults for the verify layer (mirrors
/// QaMutations): production code never sets these.
struct BatchMutations {
  /// The combiner drops one drained (non-self) op from the batch but
  /// still credits it: the announcer gets Ok with a default result and
  /// the effect is lost. The linearizability oracle must flag the
  /// resulting history.
  bool drop_from_batch = false;
};

template <Sequential S, class Base = AtomicBase>
class BatchedQaUniversal {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Response = QaResponse<Result>;
  using BS = BatchSeq<S>;
  using Inner = QaUniversal<BS, Base>;
  using InnerStateRec = typename Inner::StateRec;
  using InnerRecord = typename Inner::Record;

  struct Options {
    /// Frontier polls an announcer grants the combiners before running
    /// the slot protocol itself (the helping slow-path trigger B).
    int patience = 8;
    /// Inner slot attempts in invoke()'s bounded slow path.
    int combine_attempts = 2;
  };

  /// Single-writer announce cell of process p.
  struct Announce {
    std::uint64_t uid = 0;
    bool has_op = false;
    Op op{};
  };

  BatchedQaUniversal(sim::World& world, State initial,
                     registers::AbortPolicy* policy = nullptr,
                     Options options = {})
      : world_(world),
        n_(world.n()),
        options_(options),
        inner_(world, make_genesis(world.n(), std::move(initial)), policy) {
    ann_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      ann_.push_back(Base::template make<Announce>(
          world, "QaAnn[" + std::to_string(p) + "]", Announce{}, policy, p));
    }
    ann_mine_.assign(n_, Announce{});
    patience_.assign(n_, options_.patience);
    uid_counter_.assign(n_, 0);
    last_uid_.assign(n_, 0);
    ops_started_.assign(n_, 0);
    combines_.assign(n_, 0);
    fast_completions_.assign(n_, 0);
    announce_writes_.assign(n_, 0);
    inner_.set_decide_hook(
        [this](sim::Pid decider, sim::Step step, const InnerStateRec& prev,
               const InnerStateRec& decided) {
          record_commit(decider, step, prev, decided);
        });
  }

  /// Saturating surface: announce once, then wait -- polling the
  /// frontier and combining every `patience` polls -- until the op is
  /// applied. Exactly-once by uid dedup; never returns bottom. Per-op
  /// completion is bounded whenever any process keeps committing
  /// batches (helping), and solo the caller combines for itself.
  sim::Co<Result> apply(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    const std::uint64_t uid = announce(p, std::move(op), env.now());
    // Single-writer cell: only an abortable base can make this spin,
    // and only under a concurrent combiner's drain read.
    while (!co_await Base::template write<Announce>(env, ann_[p],
                                                    ann_mine_[p])) {
      co_await env.yield();
    }
    ++announce_writes_[p];
    int polls = 0;
    bool combined = false;
    for (;;) {
      auto fr = co_await inner_.read_frontier(env);
      if (fr.has_value() && fr->state.done_uid[p] == uid) {
        TBWF_ASSERT(!fr->state.done_void[p],
                    "apply() op voided without a query tombstone");
        if (!combined) ++fast_completions_[p];
        co_return fr->state.done_result[p];
      }
      if (++polls > patience_[p]) {
        polls = 0;
        combined = true;
        (void)co_await combine_once(env, /*tombstone_uid=*/0);
      }
    }
  }

  /// T_QA surface: bounded; may return bottom under contention.
  sim::Co<Response> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    const std::uint64_t uid = announce(p, std::move(op), env.now());
    if (!co_await Base::template write<Announce>(env, ann_[p],
                                                 ann_mine_[p])) {
      // Aborted announce write (abortable base): it may or may not be
      // visible to combiners, so the fate is open -- bottom; query
      // seals it with a tombstone.
      co_return Response::make_bottom();
    }
    ++announce_writes_[p];
    for (int poll = 0; poll < patience_[p]; ++poll) {
      auto fr = co_await inner_.read_frontier(env);
      if (fr.has_value()) {
        if (auto r = resolve(*fr, p, uid)) {
          ++fast_completions_[p];
          co_return *r;
        }
      }
    }
    for (int attempt = 0; attempt < options_.combine_attempts; ++attempt) {
      (void)co_await combine_once(env, /*tombstone_uid=*/0);
      auto fr = co_await inner_.read_frontier(env);
      if (fr.has_value()) {
        if (auto r = resolve(*fr, p, uid)) co_return *r;
      }
    }
    co_return Response::make_bottom();
  }

  /// Fate of this process's last invoke (Ok / F / bottom); F is final.
  sim::Co<Response> query(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    const std::uint64_t uid = last_uid_[p];
    if (uid == 0) co_return Response::make_not_applied();
    auto fr = co_await inner_.read_frontier(env);
    if (fr.has_value()) {
      if (auto r = resolve(*fr, p, uid)) co_return *r;
    }
    // Seal the fate (see file comment): a decided batch carrying our
    // tombstone makes the verdict final either way.
    const bool sealed = co_await combine_once(env, uid);
    fr = co_await inner_.read_frontier(env);
    if (sealed && fr.has_value()) {
      if (auto r = resolve(*fr, p, uid)) co_return *r;
    }
    co_return Response::make_bottom();
  }

  // -- introspection (non-step) ----------------------------------------------
  Inner& inner() { return inner_; }
  const Inner& inner() const { return inner_; }
  int n() const { return n_; }
  const core::BatchLog& batch_log() const { return log_; }
  std::uint64_t ops_started(sim::Pid p) const { return ops_started_[p]; }
  /// Slot-protocol runs this process performed as a combiner.
  std::uint64_t combines(sim::Pid p) const { return combines_[p]; }
  /// Ops that completed purely by helping (no own combine).
  std::uint64_t fast_completions(sim::Pid p) const {
    return fast_completions_[p];
  }
  /// Shared-register writes p issued: announce writes plus the inner
  /// construction's promise/accept/decide publishes (E19 accounting).
  std::uint64_t shared_writes(sim::Pid p) const {
    return announce_writes_[p] + inner_.publishes(p);
  }
  std::uint64_t last_real_uid(sim::Pid p) const { return last_uid_[p]; }
  const Announce& peek_announce(sim::Pid p) const {
    return world_.template peek<Announce>(ann_[p].idx);
  }
  const Announce& local_announce(sim::Pid p) const { return ann_mine_[p]; }

  void set_mutations(BatchMutations mutations) { mutations_ = mutations; }
  const BatchMutations& mutations() const { return mutations_; }
  /// Per-process patience override (helping/starvation experiments).
  void set_patience(sim::Pid p, int patience) { patience_[p] = patience; }

 private:
  static typename BS::State make_genesis(int n, State initial) {
    typename BS::State genesis;
    genesis.inner = std::move(initial);
    genesis.done_uid.assign(n, 0);
    genesis.done_void.assign(n, 0);
    genesis.done_result.assign(n, Result{});
    return genesis;
  }

  std::uint64_t announce(sim::Pid p, Op op, sim::Step now) {
    const std::uint64_t uid = ++uid_counter_[p] * n_ + p;
    last_uid_[p] = uid;
    ++ops_started_[p];
    ann_mine_[p] = Announce{uid, true, std::move(op)};
    core::BatchAnnounceEvent ev;
    ev.owner = p;
    ev.uid = uid;
    ev.announced_at = now;
    announce_index_[uid] = log_.announces.size();
    log_.announces.push_back(std::move(ev));
    return uid;
  }

  std::optional<Response> resolve(const InnerStateRec& fr, sim::Pid p,
                                  std::uint64_t uid) const {
    if (fr.state.done_uid[p] != uid) return std::nullopt;
    if (fr.state.done_void[p]) return Response::make_not_applied();
    return Response::make_ok(fr.state.done_result[p]);
  }

  /// Drain the announce array against the current frontier and commit
  /// one batch through the inner construction. Returns true iff a batch
  /// containing this caller's item (op or tombstone) decided, or there
  /// was nothing pending.
  sim::Co<bool> combine_once(sim::SimEnv& env, std::uint64_t tombstone_uid) {
    const sim::Pid p = env.pid();
    auto fr = co_await inner_.read_frontier(env);
    if (!fr.has_value()) co_return false;
    const auto& done = fr->state.done_uid;

    typename BS::Op batch;
    batch.reserve(static_cast<std::size_t>(n_) + 1);
    if (tombstone_uid != 0) {
      if (tombstone_uid > done[p]) {
        BatchItem<S> item;
        item.owner = p;
        item.uid = tombstone_uid;
        item.tombstone = true;
        batch.push_back(std::move(item));
      }
    } else if (ann_mine_[p].has_op && ann_mine_[p].uid > done[p]) {
      batch.push_back(BatchItem<S>{p, ann_mine_[p].uid, ann_mine_[p].op});
    }
    for (sim::Pid q = 0; q < n_; ++q) {
      if (q == p) continue;
      auto a = co_await Base::template read<Announce>(env, ann_[q]);
      if (!a.has_value()) continue;  // aborted drain read: helped later
      if (a->has_op && a->uid > done[static_cast<std::size_t>(q)]) {
        batch.push_back(BatchItem<S>{q, a->uid, a->op});
      }
    }
    if (mutations_.drop_from_batch) {
      // Deterministic victim: the last drained non-self item.
      for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        if (it->owner != p && !it->tombstone) {
          it->skip_effect = true;
          break;
        }
      }
    }
    if (batch.empty()) co_return true;  // nothing pending anywhere
    ++combines_[p];
    const auto resp = co_await inner_.invoke(env, std::move(batch));
    co_return resp.ok();
  }

  void record_commit(sim::Pid decider, sim::Step step,
                     const InnerStateRec& prev, const InnerStateRec& decided) {
    // Two processes can both pass the decide fence for one slot (the
    // adopter and the original proposer) with the SAME value; log the
    // first only. Slots are journalled in order: slot s must be decided
    // (and hence logged) before any proposal for s+1 exists.
    if (decided.seq <= last_logged_slot_) return;
    last_logged_slot_ = decided.seq;
    core::BatchCommitEvent commit;
    commit.slot = decided.seq;
    commit.decider = decider;
    commit.step = step;
    for (sim::Pid q = 0; q < n_; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (decided.state.done_uid[qi] == prev.state.done_uid[qi]) continue;
      ++commit.batch_size;
      auto it = announce_index_.find(decided.state.done_uid[qi]);
      if (it != announce_index_.end()) {
        auto& ev = log_.announces[it->second];
        if (ev.applied_at == core::BatchAnnounceEvent::kNever) {
          ev.applied_at = step;
          ev.applied_slot = decided.seq;
          ev.voided = decided.state.done_void[qi] != 0;
        }
      }
    }
    log_.commits.push_back(commit);
  }

  sim::World& world_;
  int n_;
  Options options_;
  Inner inner_;
  std::vector<typename Base::template Reg<Announce>> ann_;
  /// Mirror of what p last tried to announce (== cell content under an
  /// atomic base; the combiner's self-drain uses this, never a read).
  std::vector<Announce> ann_mine_;
  std::vector<int> patience_;
  std::vector<std::uint64_t> uid_counter_;
  std::vector<std::uint64_t> last_uid_;
  std::vector<std::uint64_t> ops_started_;
  std::vector<std::uint64_t> combines_;
  std::vector<std::uint64_t> fast_completions_;
  std::vector<std::uint64_t> announce_writes_;
  core::BatchLog log_;
  std::unordered_map<std::uint64_t, std::size_t> announce_index_;
  std::uint64_t last_logged_slot_ = 0;
  BatchMutations mutations_;
};

}  // namespace tbwf::qa
