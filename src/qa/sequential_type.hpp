// Sequential object types -- the "type T" of the paper's universal
// constructions.
//
// A Sequential type supplies a State, an Op, a Result, and a pure-ish
// static apply(State&, Op) -> Result. The canned types below cover the
// spectrum used in tests, benches and examples: a counter and a
// read/write register (consensus number 1), and a queue, a stack, and a
// compare-and-swap cell (consensus number >= 2 -- the interesting cases
// for a universal construction from registers, which is possible
// precisely because T_QA operations are allowed to abort).
#pragma once

#include <concepts>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace tbwf::qa {

template <class S>
concept Sequential = requires(typename S::State& state,
                              const typename S::Op& op) {
  requires std::copyable<typename S::State>;
  requires std::default_initializable<typename S::State>;
  requires std::copyable<typename S::Op>;
  requires std::copyable<typename S::Result>;
  requires std::default_initializable<typename S::Result>;
  { S::apply(state, op) } -> std::same_as<typename S::Result>;
};

/// Fetch-and-add counter. Get is Add{0}.
struct Counter {
  using State = std::int64_t;
  struct Op {
    std::int64_t delta = 0;
  };
  using Result = std::int64_t;  ///< value BEFORE the add

  static Result apply(State& state, const Op& op) {
    const Result before = state;
    state += op.delta;
    return before;
  }
};

/// Read/write register object (not to be confused with the base shared
/// registers; this is an implemented *object* of register type).
struct RegisterType {
  using State = std::int64_t;
  struct Op {
    bool is_write = false;
    std::int64_t value = 0;
  };
  using Result = std::int64_t;  ///< previous value

  static Result apply(State& state, const Op& op) {
    const Result previous = state;
    if (op.is_write) state = op.value;
    return previous;
  }
};

/// FIFO queue of integers. Dequeue on empty returns -1.
struct Queue {
  using State = std::deque<std::int64_t>;
  struct Op {
    bool is_enqueue = false;
    std::int64_t value = 0;
  };
  using Result = std::int64_t;  ///< enqueue: value; dequeue: front or -1

  static Result apply(State& state, const Op& op) {
    if (op.is_enqueue) {
      state.push_back(op.value);
      return op.value;
    }
    if (state.empty()) return -1;
    const Result front = state.front();
    state.pop_front();
    return front;
  }

  static Op enqueue(std::int64_t v) { return Op{true, v}; }
  static Op dequeue() { return Op{false, 0}; }
};

/// LIFO stack of integers. Pop on empty returns -1.
struct Stack {
  using State = std::vector<std::int64_t>;
  struct Op {
    bool is_push = false;
    std::int64_t value = 0;
  };
  using Result = std::int64_t;

  static Result apply(State& state, const Op& op) {
    if (op.is_push) {
      state.push_back(op.value);
      return op.value;
    }
    if (state.empty()) return -1;
    const Result top = state.back();
    state.pop_back();
    return top;
  }

  static Op push(std::int64_t v) { return Op{true, v}; }
  static Op pop() { return Op{false, 0}; }
};

/// Compare-and-swap cell: consensus number infinity, the canonical
/// "cannot be built wait-free from registers" type -- unless aborts are
/// allowed, which is the whole point of T_QA.
struct CasCell {
  using State = std::int64_t;
  struct Op {
    bool is_cas = false;  ///< false: plain read
    std::int64_t expected = 0;
    std::int64_t desired = 0;
  };
  struct Result {
    bool success = false;
    std::int64_t old_value = 0;
  };

  static Result apply(State& state, const Op& op) {
    Result r;
    r.old_value = state;
    if (op.is_cas) {
      if (state == op.expected) {
        state = op.desired;
        r.success = true;
      }
    } else {
      r.success = true;
    }
    return r;
  }

  static Op cas(std::int64_t expected, std::int64_t desired) {
    return Op{true, expected, desired};
  }
  static Op read() { return Op{}; }
};

/// Write-once ("sticky") register: the first successful propose wins and
/// every later operation returns the winning value. A TBWF object of
/// this type IS consensus among the timely processes -- the closing
/// remark of Section 1.2 (Omega, and hence consensus, from abortable
/// registers plus one timely process) made executable. See
/// examples/consensus.cpp.
struct OnceRegister {
  static constexpr std::int64_t kUndecided = -1;

  using State = std::int64_t;  ///< kUndecided until the first propose
  struct Op {
    std::int64_t proposal = kUndecided;  ///< kUndecided = pure read
  };
  struct Result {
    bool won = false;            ///< this op's proposal was the first
    std::int64_t value = kUndecided;  ///< the decided value (if any)
  };

  static Result apply(State& state, const Op& op) {
    Result r;
    if (state == kUndecided && op.proposal != kUndecided) {
      state = op.proposal;
      r.won = true;
    }
    r.value = state;
    return r;
  }

  static Op propose(std::int64_t v) { return Op{v}; }
  static Op read() { return Op{}; }
};

static_assert(Sequential<Counter>);
static_assert(Sequential<RegisterType>);
static_assert(Sequential<Queue>);
static_assert(Sequential<Stack>);
static_assert(Sequential<CasCell>);
static_assert(Sequential<OnceRegister>);

}  // namespace tbwf::qa
