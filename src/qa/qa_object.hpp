// The query-abortable type T_QA -- interface semantics (Section 7,
// footnote 3, after [2]).
//
// An object of type T_QA behaves like an object of type T except:
//  (i)  an operation that runs concurrently with another operation may
//       abort: it returns bottom and may or may not have taken effect;
//  (ii) an extra operation `query` lets a process learn the fate of its
//       last non-query operation: the response that operation should
//       have returned if it took effect, or F if it did not (and never
//       will) take effect. query itself may abort and return bottom.
#pragma once

#include <utility>

namespace tbwf::qa {

enum class QaTag {
  Ok,          ///< a normal response v
  Bottom,      ///< the paper's bottom: aborted, effect unknown
  NotApplied,  ///< the paper's F: the queried operation did not take effect
};

inline const char* to_string(QaTag tag) {
  switch (tag) {
    case QaTag::Ok:         return "ok";
    case QaTag::Bottom:     return "bottom";
    case QaTag::NotApplied: return "F";
  }
  return "<bad>";
}

template <class R>
struct QaResponse {
  QaTag tag = QaTag::Bottom;
  R value{};  ///< meaningful iff tag == Ok

  bool ok() const { return tag == QaTag::Ok; }
  bool bottom() const { return tag == QaTag::Bottom; }
  bool not_applied() const { return tag == QaTag::NotApplied; }

  static QaResponse make_ok(R v) {
    return QaResponse{QaTag::Ok, std::move(v)};
  }
  static QaResponse make_bottom() { return QaResponse{QaTag::Bottom, R{}}; }
  static QaResponse make_not_applied() {
    return QaResponse{QaTag::NotApplied, R{}};
  }
};

}  // namespace tbwf::qa
