// Wait-free universal construction of T_QA from registers.
//
// The paper obtains a wait-free implementation of O_QA (the
// query-abortable counterpart of any type T) from the universal
// construction of [2] (Aguilera, Frolund, Hadzilacos, Horn, Toueg,
// PODC'07), whose text is outside this paper. This file provides our
// own construction with the same interface guarantees, which is all the
// TBWF transformation (Figure 7) relies on:
//
//   * every operation returns within a bounded number of its caller's
//     steps (wait-free), possibly with bottom;
//   * an operation that runs with no concurrent operation never aborts
//     (in particular, solo runs always succeed);
//   * successful operations are linearizable applications of T's
//     sequential semantics;
//   * query reports the fate of the caller's last operation: its
//     response if it took (or will have taken) effect, F if it is
//     permanently without effect, bottom if undetermined.
//
// Design: single-writer multi-reader "record" registers, one per
// process, driven by an abort-on-contention variant of shared-memory
// (disk) Paxos. The object's history is a chain of decided StateRecs,
// one per slot; slot s's value is computed from slot s-1's decided
// state. An attempt by p at slot s:
//
//   1. read all records; the decided frontier D fixes s = D.seq + 1 and
//      a fresh round token (s, round, p);
//   2. publish a promise for (s, round) in p's own record;
//   3. read all records: abort on any higher promise/accept at slot s or
//      any record at a later slot; otherwise adopt the highest-round
//      accepted value at slot s if one exists, else propose
//      apply(D.state, op);
//   4. publish the accept (s, round, value) in p's own record;
//   5. read all records: abort (effect now unknown -- the accept is
//      adoptable) on any conflict; otherwise the value is DECIDED;
//   6. publish the decision (best-effort: even if this write aborts, the
//      surviving accept record forces every later round at slot s to
//      re-decide the same value).
//
// Safety is the standard Paxos argument specialized to single-writer
// registers: a decided value's accept is visible to every higher round's
// read phase (otherwise that round's earlier promise would have aborted
// the decider at step 5), so higher rounds can only re-propose it.
// Abort-instead-of-wait preserves wait-freedom; adoption (finishing
// another process's floating value, then retrying once at the next
// slot) preserves solo success.
//
// The same code runs on atomic or abortable base registers via the Base
// policy: with abortable registers a base-level abort simply aborts the
// attempt, and since solo operations on abortable registers never abort,
// solo attempts still succeed -- which is how Theorem 15 gets T_QA from
// abortable registers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "qa/qa_object.hpp"
#include "qa/sequential_type.hpp"
#include "registers/abort_policy.hpp"
#include "sim/co.hpp"
#include "sim/env.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::qa {

// ---------------------------------------------------------------------------
// Base-register policies.
// ---------------------------------------------------------------------------

/// Atomic base registers: reads/writes never abort.
struct AtomicBase {
  template <class Rec>
  using Reg = sim::AtomicReg<Rec>;

  template <class Rec>
  static Reg<Rec> make(sim::World& world, const std::string& name, Rec init,
                       registers::AbortPolicy*, sim::Pid /*writer*/) {
    return world.make_atomic<Rec>(name, std::move(init));
  }
  template <class Rec>
  static sim::Co<std::optional<Rec>> read(sim::SimEnv& env, Reg<Rec> r) {
    co_return co_await env.read(r);
  }
  template <class Rec>
  static sim::Co<bool> write(sim::SimEnv& env, Reg<Rec> r, Rec v) {
    co_await env.write(r, std::move(v));
    co_return true;
  }
};

/// Abortable base registers (single-writer, any reader): any operation
/// may abort under contention; an aborted base write may or may not
/// have taken effect, which the protocol treats as "accept adoptable".
struct AbortableBase {
  template <class Rec>
  using Reg = sim::AbortableReg<Rec>;

  template <class Rec>
  static Reg<Rec> make(sim::World& world, const std::string& name, Rec init,
                       registers::AbortPolicy* policy, sim::Pid writer) {
    return world.make_abortable<Rec>(name, std::move(init), policy, writer,
                                     sim::kNoPid);
  }
  template <class Rec>
  static sim::Co<std::optional<Rec>> read(sim::SimEnv& env, Reg<Rec> r) {
    co_return co_await env.read(r);
  }
  template <class Rec>
  static sim::Co<bool> write(sim::SimEnv& env, Reg<Rec> r, Rec v) {
    co_return co_await env.write(r, std::move(v));
  }
};

// ---------------------------------------------------------------------------
// The universal construction.
// ---------------------------------------------------------------------------

/// Injectable protocol faults for the verify layer's mutation tests
/// (tests/verify_mutation_test.cpp). Production code never sets these;
/// they exist so the schedule explorer + linearizability oracle can be
/// shown to CATCH the bugs they are meant to catch.
struct QaMutations {
  /// Skip the step-5 validation read before deciding. That read is the
  /// fence that makes a published accept safe to decide: without it two
  /// rounds can decide different values at one slot, and the oracle must
  /// flag the resulting history as non-linearizable.
  bool drop_decide_fence = false;
};

template <Sequential S, class Base = AtomicBase>
class QaUniversal {
 public:
  using State = typename S::State;
  using Op = typename S::Op;
  using Result = typename S::Result;
  using Response = QaResponse<Result>;

  /// Round token; comparisons are only meaningful within one slot.
  struct Token {
    std::uint64_t seq = 0;  ///< slot; 0 = none
    std::uint64_t round = 0;
    sim::Pid pid = sim::kNoPid;

    bool gt(const Token& other) const {
      return round > other.round ||
             (round == other.round && pid > other.pid);
    }
  };

  /// One link of the decided chain: the object state after `seq` decided
  /// operations plus each process's last applied (uid, result).
  struct StateRec {
    std::uint64_t seq = 0;
    State state{};
    std::vector<std::uint64_t> last_uid;
    std::vector<Result> last_result;
  };

  /// REG[p]: everything process p publishes.
  struct Record {
    Token promised;
    Token accepted;
    StateRec accepted_state;
    StateRec decided;
  };

  QaUniversal(sim::World& world, State initial,
              registers::AbortPolicy* policy = nullptr)
      : world_(world), n_(world.n()) {
    StateRec genesis;
    genesis.seq = 0;
    genesis.state = std::move(initial);
    genesis.last_uid.assign(n_, 0);
    genesis.last_result.assign(n_, Result{});
    Record init;
    init.decided = genesis;
    init.accepted_state = genesis;
    regs_.reserve(n_);
    for (sim::Pid p = 0; p < n_; ++p) {
      regs_.push_back(Base::template make<Record>(
          world, "QaReg[" + std::to_string(p) + "]", init, policy, p));
    }
    mine_.assign(n_, init);
    local_decided_.assign(n_, genesis);
    round_.assign(n_, 0);
    uid_counter_.assign(n_, 0);
    last_real_uid_.assign(n_, 0);
    pending_slot_.assign(n_, 0);
    pending_uid_.assign(n_, 0);
    ops_started_.assign(n_, 0);
    publishes_.assign(n_, 0);
  }

  /// Apply `op` to the object; may return bottom under contention.
  sim::Co<Response> invoke(sim::SimEnv& env, Op op) {
    const sim::Pid p = env.pid();
    const std::uint64_t uid = ++uid_counter_[p] * n_ + p;
    last_real_uid_[p] = uid;
    pending_uid_[p] = 0;
    pending_slot_[p] = 0;
    ++ops_started_[p];

    Proposal proposal;
    proposal.has_op = true;
    proposal.op = std::move(op);
    proposal.uid = uid;

    // Up to two attempts: the first may spend itself finishing another
    // process's floating value (adoption); the second then runs on a
    // fresh slot. Solo, this bounds the operation at two attempts.
    for (int attempt = 0; attempt < 2; ++attempt) {
      const AttemptOutcome out = co_await attempt_once(env, p, proposal);
      switch (out.kind) {
        case AttemptKind::DecidedSelf:
          co_return Response::make_ok(out.result);
        case AttemptKind::DecidedOther:
          continue;
        case AttemptKind::AbortNoEffect:
          co_return Response::make_bottom();
        case AttemptKind::AbortMaybeEffect:
          co_return Response::make_bottom();
      }
    }
    co_return Response::make_bottom();
  }

  /// Determine the fate of this process's last invoke.
  sim::Co<Response> query(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    const std::uint64_t uid = last_real_uid_[p];
    if (uid == 0) co_return Response::make_not_applied();

    // One no-op attempt: if our value is still floating at its slot,
    // this either decides it (possibly by adoption through a peer) or
    // seals the slot with a different value, making F final.
    Proposal noop;
    noop.has_op = false;
    (void)co_await attempt_once(env, p, noop);

    auto recs = co_await read_all(env, p);
    if (!recs.has_value()) co_return Response::make_bottom();
    const StateRec& d = frontier(*recs, p);
    if (d.last_uid[p] == uid) {
      co_return Response::make_ok(d.last_result[p]);
    }
    if (pending_uid_[p] != uid) {
      // The op never reached an accept: it cannot ever take effect.
      co_return Response::make_not_applied();
    }
    if (d.seq >= pending_slot_[p]) {
      // The slot our accept targeted is sealed with someone else's
      // value; stale accepts at sealed slots are never adopted.
      co_return Response::make_not_applied();
    }
    co_return Response::make_bottom();
  }

  /// One wait-free read pass over all records: the decided frontier as
  /// currently visible to the caller (nullopt if a base read aborted).
  /// Read-only w.r.t. shared memory; refreshes the caller's local
  /// decided cache. The batched engine polls this between announces.
  sim::Co<std::optional<StateRec>> read_frontier(sim::SimEnv& env) {
    const sim::Pid p = env.pid();
    auto recs = co_await read_all(env, p);
    if (!recs.has_value()) co_return std::nullopt;
    StateRec d = frontier(*recs, p);
    if (d.seq > local_decided_[p].seq) local_decided_[p] = d;
    co_return d;
  }

  /// Hook fired at the moment a slot is decided, before the best-effort
  /// decide publish: (decider, global step, slot s-1 state, slot s
  /// state). The batched engine uses it to journal batch commits; it
  /// takes no simulator step and must not touch shared registers.
  using DecideHook =
      std::function<void(sim::Pid, sim::Step, const StateRec&,
                         const StateRec&)>;
  void set_decide_hook(DecideHook hook) { decide_hook_ = std::move(hook); }

  /// Shared-register writes this process has issued through the
  /// construction (promise/accept/decide publishes), for the E19
  /// write-contention accounting.
  std::uint64_t publishes(sim::Pid p) const { return publishes_[p]; }

  /// Non-step introspection for tests/benches: the highest decided
  /// record currently visible in shared memory.
  StateRec peek_frontier() const {
    StateRec best;
    for (sim::Pid q = 0; q < n_; ++q) {
      const auto& rec = world_.template peek<Record>(regs_[q].idx);
      if (rec.decided.seq >= best.seq) best = rec.decided;
    }
    for (sim::Pid q = 0; q < n_; ++q) {
      if (local_decided_[q].seq > best.seq) best = local_decided_[q];
    }
    return best;
  }

  std::uint64_t ops_started(sim::Pid p) const { return ops_started_[p]; }
  int n() const { return n_; }

  /// Non-step test introspection: the raw record register of process p.
  const Record& peek_record(sim::Pid p) const {
    return world_.template peek<Record>(regs_[p].idx);
  }

  // -- verify-layer introspection (non-step) ---------------------------------
  // The schedule explorer fingerprints the object's private per-process
  // state alongside the shared records; these accessors expose exactly
  // what a state digest needs and nothing mutable.
  const Record& local_mine(sim::Pid p) const { return mine_[p]; }
  const StateRec& local_decided_rec(sim::Pid p) const {
    return local_decided_[p];
  }
  std::uint64_t round(sim::Pid p) const { return round_[p]; }
  std::uint64_t pending_uid(sim::Pid p) const { return pending_uid_[p]; }
  std::uint64_t pending_slot(sim::Pid p) const { return pending_slot_[p]; }
  std::uint64_t last_real_uid(sim::Pid p) const { return last_real_uid_[p]; }

  void set_mutations(QaMutations mutations) { mutations_ = mutations; }
  const QaMutations& mutations() const { return mutations_; }

 private:
  struct Proposal {
    bool has_op = false;
    Op op{};
    std::uint64_t uid = 0;
  };

  enum class AttemptKind {
    DecidedSelf,       ///< our proposal decided; result valid
    DecidedOther,      ///< we finished someone else's floating value
    AbortNoEffect,     ///< aborted before our accept: no effect, ever
    AbortMaybeEffect,  ///< aborted at/after our accept: effect unknown
  };
  struct AttemptOutcome {
    AttemptKind kind = AttemptKind::AbortNoEffect;
    Result result{};
  };

  sim::Co<std::optional<std::vector<Record>>> read_all(sim::SimEnv& env,
                                                       sim::Pid self) {
    std::vector<Record> recs(n_);
    for (sim::Pid q = 0; q < n_; ++q) {
      if (q == self) {
        recs[q] = mine_[self];
        continue;
      }
      std::optional<Record> r = co_await Base::template read<Record>(
          env, regs_[q]);
      if (!r.has_value()) co_return std::nullopt;
      recs[q] = std::move(*r);
    }
    co_return recs;
  }

  /// Highest decided record across `recs` and p's local cache.
  const StateRec& frontier(const std::vector<Record>& recs,
                           sim::Pid p) const {
    const StateRec* best = &local_decided_[p];
    for (const auto& rec : recs) {
      if (rec.decided.seq > best->seq) best = &rec.decided;
    }
    return *best;
  }

  /// Conflict: any evidence of a competitor that step 3/5 must yield to.
  bool conflicts(const std::vector<Record>& recs, sim::Pid self,
                 const Token& me) const {
    for (sim::Pid q = 0; q < n_; ++q) {
      if (q == self) continue;
      const Record& rec = recs[q];
      if (rec.decided.seq >= me.seq) return true;
      if (rec.promised.seq > me.seq) return true;
      if (rec.promised.seq == me.seq && rec.promised.gt(me)) return true;
      if (rec.accepted.seq > me.seq) return true;
      if (rec.accepted.seq == me.seq && rec.accepted.gt(me)) return true;
    }
    return false;
  }

  sim::Co<bool> publish(sim::SimEnv& env, sim::Pid p) {
    // mine_[p] holds the record we want visible; the register write may
    // abort under an abortable base.
    ++publishes_[p];
    co_return co_await Base::template write<Record>(env, regs_[p],
                                                    mine_[p]);
  }

  sim::Co<AttemptOutcome> attempt_once(sim::SimEnv& env, sim::Pid p,
                                       const Proposal& proposal) {
    AttemptOutcome out;

    // Step 1: read the frontier.
    auto recs1 = co_await read_all(env, p);
    if (!recs1.has_value()) {
      out.kind = AttemptKind::AbortNoEffect;
      co_return out;
    }
    StateRec d = frontier(*recs1, p);
    if (d.seq > local_decided_[p].seq) local_decided_[p] = d;
    const Token me{d.seq + 1, ++round_[p], p};

    // Step 2: publish the promise (and the frontier, as catch-up help).
    mine_[p].promised = me;
    mine_[p].decided = local_decided_[p];
    if (!co_await publish(env, p)) {
      out.kind = AttemptKind::AbortNoEffect;
      co_return out;
    }

    // Step 3: read; abort on conflict; adopt the highest floating accept.
    auto recs2 = co_await read_all(env, p);
    if (!recs2.has_value() || conflicts(*recs2, p, me)) {
      out.kind = AttemptKind::AbortNoEffect;
      co_return out;
    }
    const Record* adopt = nullptr;
    for (sim::Pid q = 0; q < n_; ++q) {
      if (q == p) continue;
      const Record& rec = (*recs2)[q];
      if (rec.accepted.seq == me.seq &&
          (adopt == nullptr || rec.accepted.gt(adopt->accepted))) {
        adopt = &rec;
      }
    }

    StateRec value;
    bool adopted = false;
    if (adopt != nullptr) {
      value = adopt->accepted_state;
      adopted = true;
    } else {
      value = d;  // copy of the frontier
      value.seq = me.seq;
      if (proposal.has_op) {
        value.last_result[p] = S::apply(value.state, proposal.op);
        value.last_uid[p] = proposal.uid;
      }
    }

    // Step 4: publish the accept. From here on our value is adoptable,
    // so every failure is "maybe effect".
    mine_[p].accepted = me;
    mine_[p].accepted_state = value;
    if (proposal.has_op && !adopted) {
      pending_uid_[p] = proposal.uid;
      pending_slot_[p] = me.seq;
    }
    if (!co_await publish(env, p)) {
      out.kind = AttemptKind::AbortMaybeEffect;
      co_return out;
    }

    // Step 5: validate. (The drop_decide_fence mutant skips this read --
    // exactly the bug the verify layer's explorer must catch.)
    if (!mutations_.drop_decide_fence) {
      auto recs3 = co_await read_all(env, p);
      if (!recs3.has_value() || conflicts(*recs3, p, me)) {
        out.kind = AttemptKind::AbortMaybeEffect;
        co_return out;
      }
    }

    // Decided. Step 6: publish (best effort -- see file comment).
    if (decide_hook_) decide_hook_(p, env.now(), d, value);
    local_decided_[p] = value;
    mine_[p].decided = value;
    (void)co_await publish(env, p);

    if (adopted) {
      out.kind = AttemptKind::DecidedOther;
    } else if (proposal.has_op) {
      out.kind = AttemptKind::DecidedSelf;
      out.result = value.last_result[p];
    } else {
      out.kind = AttemptKind::DecidedSelf;  // no-op decided
    }
    co_return out;
  }

  sim::World& world_;
  int n_;
  std::vector<typename Base::template Reg<Record>> regs_;
  /// Mirror of what p last tried to publish in its own register; with an
  /// atomic base this equals the register content.
  std::vector<Record> mine_;
  std::vector<StateRec> local_decided_;
  std::vector<std::uint64_t> round_;
  std::vector<std::uint64_t> uid_counter_;
  std::vector<std::uint64_t> last_real_uid_;
  std::vector<std::uint64_t> pending_slot_;
  std::vector<std::uint64_t> pending_uid_;
  std::vector<std::uint64_t> ops_started_;
  std::vector<std::uint64_t> publishes_;
  QaMutations mutations_;
  DecideHook decide_hook_;
};

}  // namespace tbwf::qa
