// The sim-side view of dynamic membership: a MembershipDirector applies
// a FaultPlan's membership events at their exact steps (via a World
// step observer, so replays are bit-identical) and exposes the current
// epoch + member set as plain fields. Coroutine code reads them with
// ordinary loads -- NO co_await is involved, so attaching a director
// changes zero schedules: a run with an empty event list is
// digest-identical to a run with no director at all.
//
// Election code (OmegaRegisters line 12, OmegaAbortable line 48) skips
// non-members exactly the way it already skips quarantined channels;
// the service's server half fences itself by validating
// (epoch unchanged && member(self)) before every shared write, so a
// leader removed by reconfiguration that wakes up late has its writes
// rejected, not trusted (counted under "membership.fenced.p<i>").
#pragma once

#include <cstdint>
#include <vector>

#include "core/membership.hpp"
#include "sim/types.hpp"

namespace tbwf::sim {

class World;

class MembershipDirector {
 public:
  /// Everyone is a member of epoch 0.
  explicit MembershipDirector(int n) : members_(static_cast<std::size_t>(n), true) {}

  /// Register a step observer on `world` that applies `events` (sorted
  /// by step, stable for ties) at their exact steps. Call once, before
  /// World::run. An empty list registers nothing.
  void install(World& world, std::vector<core::MembershipEvent> events);

  /// Apply one event immediately (tests / manual orchestration).
  void apply(const core::MembershipEvent& event);

  std::uint32_t epoch() const { return epoch_; }
  bool member(Pid p) const {
    return p >= 0 && static_cast<std::size_t>(p) < members_.size() &&
           members_[static_cast<std::size_t>(p)];
  }
  int n() const { return static_cast<int>(members_.size()); }
  int member_count() const;

 private:
  std::uint32_t epoch_ = 0;
  std::vector<bool> members_;
  std::vector<core::MembershipEvent> pending_;
  std::size_t next_ = 0;
};

}  // namespace tbwf::sim
