#include "sim/trace.hpp"

#include "util/assert.hpp"
#include "util/hash.hpp"

namespace tbwf::sim {

const char* to_string(RegKind kind) {
  switch (kind) {
    case RegKind::Atomic:    return "atomic";
    case RegKind::Safe:      return "safe";
    case RegKind::Abortable: return "abortable";
  }
  return "?";
}

Step Trace::steps_of(Pid p) const {
  Step count = 0;
  for (auto s : steps_) {
    if (static_cast<Pid>(s) == p) ++count;
  }
  return count;
}

Step Trace::steps_of_in(Pid p, Step from, Step to) const {
  TBWF_ASSERT(from <= to && to <= steps_.size(), "window out of range");
  Step count = 0;
  for (Step s = from; s < to; ++s) {
    if (static_cast<Pid>(steps_[s]) == p) ++count;
  }
  return count;
}

Step Trace::max_gap_in(Pid p, Step from, Step to) const {
  TBWF_ASSERT(from <= to && to <= steps_.size(), "window out of range");
  Step best = 0;
  Step gap = 0;
  for (Step s = from; s < to; ++s) {
    if (static_cast<Pid>(steps_[s]) == p) {
      if (gap > best) best = gap;
      gap = 0;
    } else {
      ++gap;
    }
  }
  return gap > best ? gap : best;
}

Step Trace::max_gap(Pid p) const {
  Step best = 0;
  Step gap = 0;
  bool seen = false;
  for (auto s : steps_) {
    if (static_cast<Pid>(s) == p) {
      if (gap > best) best = gap;
      gap = 0;
      seen = true;
    } else {
      ++gap;
    }
  }
  if (!seen) return kNever;
  if (gap > best) best = gap;
  return best;
}

TimelinessVerdict Trace::timeliness(Pid p) const {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  TimelinessVerdict v;
  v.crashed = crashed(p);
  v.steps_taken = steps_of(p);
  const Step gap = max_gap(p);
  v.empirical_bound = (gap == kNever) ? kNever : gap + 1;
  return v;
}

std::vector<Pid> Trace::timely_set(Step bound) const {
  std::vector<Pid> result;
  for (Pid p = 0; p < n_; ++p) {
    if (timeliness(p).timely_with_bound(bound)) result.push_back(p);
  }
  return result;
}

std::uint64_t Trace::digest() const {
  std::uint64_t h = util::hash_range(util::kFnvOffset, steps_);
  h = util::hash_mix(h, fault_log_.size());
  for (const FaultEvent& ev : fault_log_) {
    h = util::hash_mix(h, ev.at);
    h = util::hash_mix(h, ev.pid);
    h = util::hash_mix(h, ev.restart);
  }
  return h;
}

}  // namespace tbwf::sim
