#include "sim/world.hpp"

#include <algorithm>

#include "sim/env.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace tbwf::sim {

World::World(int n, std::unique_ptr<Schedule> schedule, Options options)
    : n_(n),
      schedule_(std::move(schedule)),
      options_(options),
      trace_(n),
      aux_rng_(options.seed) {
  TBWF_ASSERT(n >= 1, "world needs at least one process");
  TBWF_ASSERT(schedule_ != nullptr, "world needs a schedule");
  envs_.reserve(static_cast<std::size_t>(n));
  for (Pid p = 0; p < n; ++p) {
    procs_.emplace_back();
    procs_.back().pid = p;
    envs_.push_back(std::make_unique<SimEnv>(this, p));
  }
}

World::~World() = default;

bool World::runnable(Pid p) const {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  const auto& ps = procs_[p];
  return !ps.crashed && (!ps.subtasks.empty() || !ps.newborn.empty());
}

bool World::has_pending_op(Pid p) const {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  const auto& ps = procs_[p];
  for (const auto& st : ps.subtasks) {
    if (st.has_pending()) return true;
  }
  for (const auto& st : ps.newborn) {
    if (st.has_pending()) return true;
  }
  return false;
}

SimEnv& World::env(Pid p) {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  return *envs_[p];
}

void World::boot_subtask(detail::ProcessState& ps, const std::string& name,
                         const std::function<Task(SimEnv&)>& factory) {
  detail::SubTask st;
  st.task = factory(*envs_[ps.pid]);
  st.name = name;
  TBWF_ASSERT(st.task.valid(), "spawn factory returned an empty task");
  st.resume_handle = st.task.handle();
  // If the process is currently mid-step, appending directly to
  // `subtasks` could reallocate under the running advance(); park
  // newborns instead.
  if (current_pid_ == ps.pid && current_subtask_ != nullptr) {
    ps.newborn.push_back(std::move(st));
  } else {
    ps.subtasks.push_back(std::move(st));
  }
}

void World::spawn(Pid p, std::string name,
                  std::function<Task(SimEnv&)> factory) {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  auto& ps = procs_[p];
  TBWF_ASSERT(!ps.crashed, "cannot spawn on a crashed process");
  boot_subtask(ps, name, factory);
  // Root sub-tasks (spawned from outside any step, i.e. the process
  // bring-up code) are what restart() re-creates; sub-tasks spawned from
  // inside a running coroutine are that coroutine's children and will be
  // re-created by their respawned parent.
  if (current_subtask_ == nullptr) {
    ps.boot.push_back(
        detail::BootRecord{std::move(name), std::move(factory)});
  }
}

void World::schedule_crash(Pid p, Step at) {
  pending_faults_.push_back(detail::PendingFault{at, /*restart=*/false, p});
  std::sort(pending_faults_.begin(), pending_faults_.end());
}

void World::schedule_restart(Pid p, Step at) {
  pending_faults_.push_back(detail::PendingFault{at, /*restart=*/true, p});
  std::sort(pending_faults_.begin(), pending_faults_.end());
}

void World::restart(Pid p) {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  auto& ps = procs_[p];
  if (!ps.crashed) return;
  ps.crashed = false;
  ps.rr = 0;
  trace_.record_restart(p);
  counters_.inc("world.restarts");
  for (const auto& record : ps.boot) {
    boot_subtask(ps, record.name, record.factory);
  }
}

void World::crash(Pid p) {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  auto& ps = procs_[p];
  if (ps.crashed) return;
  ps.crashed = true;
  trace_.record_crash(p);
  counters_.inc("world.crashes");

  // Settle operations that were pending at the moment of the crash: the
  // operation never responds, its interval ends here, and for writes the
  // policy decides whether the value reached the register.
  auto settle = [&](detail::SubTask& st) {
    if (!st.has_pending()) return;
    auto* cell = st.pending_cell;
    auto it = std::find_if(cell->active.begin(), cell->active.end(),
                           [&](const detail::ActiveOp& op) {
                             return op.id == st.pending_op;
                           });
    TBWF_ASSERT(it != cell->active.end(), "pending op missing from cell");
    registers::OpContext ctx;
    ctx.pid = p;
    ctx.is_write = it->is_write;
    ctx.invoked_at = it->invoked_at;
    ctx.responded_at = now();
    ctx.reg = cell->idx;
    ctx.overlap_pids = it->overlap_pids;
    ctx.any_overlap_write = it->saw_overlap_write;
    st.pending_completion->settle_crash(*this, ctx);
    cell->active.erase(it);
    st.pending_cell = nullptr;
    st.pending_is_write = false;
    st.pending_completion = nullptr;
  };
  for (auto& st : ps.subtasks) settle(st);
  for (auto& st : ps.newborn) settle(st);

  // Destroying the Task objects destroys the suspended coroutine frames
  // (and the awaiters inside them) -- safe now that no cell refers to them.
  ps.subtasks.clear();
  ps.newborn.clear();
}

void World::apply_due_faults() {
  // pending_faults_ is kept sorted by (step, crash-before-restart, pid),
  // so same-step events apply in a fixed order no matter what order they
  // were scheduled in -- runs replay identically.
  while (!pending_faults_.empty() && pending_faults_.front().at <= now()) {
    const auto fault = pending_faults_.front();
    pending_faults_.erase(pending_faults_.begin());
    if (fault.restart) {
      restart(fault.pid);
    } else {
      crash(fault.pid);
    }
  }
}

void World::begin_op(detail::RegCellBase* cell, bool is_write,
                     detail::OpCompletion* completion) {
  TBWF_ASSERT(current_subtask_ != nullptr,
              "register operation outside of a scheduled step");
  TBWF_ASSERT(!current_subtask_->has_pending(),
              "sub-task already has a pending operation");
  const Pid p = current_pid_;

  if (cell->kind == RegKind::Abortable) {
    if (is_write) {
      TBWF_CHECK(cell->writer == kNoPid || cell->writer == p,
                 "process " + std::to_string(p) +
                     " is not the designated writer of " + cell->name);
    } else {
      TBWF_CHECK(cell->reader == kNoPid || cell->reader == p,
                 "process " + std::to_string(p) +
                     " is not the designated reader of " + cell->name);
    }
  }

  detail::ActiveOp op;
  op.id = next_op_id_++;
  op.pid = p;
  op.is_write = is_write;
  op.invoked_at = current_step_;
  op.saw_overlap = !cell->active.empty();
  op.completion = completion;
  for (auto& other : cell->active) {
    other.saw_overlap = true;
    if (is_write) other.saw_overlap_write = true;
    if (other.is_write) op.saw_overlap_write = true;
    other.overlap_pids.push_back(p);
    op.overlap_pids.push_back(other.pid);
  }
  cell->active.push_back(std::move(op));

  current_subtask_->pending_cell = cell;
  current_subtask_->pending_op = cell->active.back().id;
  current_subtask_->pending_is_write = is_write;
  current_subtask_->pending_completion = completion;

  if (options_.track_accesses) {
    last_accesses_.push_back(StepAccess{cell->idx, is_write,
                                        /*invocation=*/true,
                                        cell->kind == RegKind::Atomic});
  }
}

void World::complete_pending(detail::SubTask& st) {
  auto* cell = st.pending_cell;
  auto it = std::find_if(
      cell->active.begin(), cell->active.end(),
      [&](const detail::ActiveOp& op) { return op.id == st.pending_op; });
  TBWF_ASSERT(it != cell->active.end(), "pending op missing from cell");

  registers::OpContext ctx;
  ctx.pid = it->pid;
  ctx.is_write = it->is_write;
  ctx.invoked_at = it->invoked_at;
  ctx.responded_at = current_step_;
  ctx.reg = cell->idx;
  ctx.overlap_pids = std::move(it->overlap_pids);
  ctx.any_overlap_write = it->saw_overlap_write;
  const bool overlapped = it->saw_overlap;
  auto* completion = it->completion;
  cell->active.erase(it);

  st.pending_cell = nullptr;
  st.pending_is_write = false;
  st.pending_completion = nullptr;

  if (options_.track_accesses) {
    last_accesses_.push_back(StepAccess{cell->idx, ctx.is_write,
                                        /*invocation=*/false,
                                        /*inert=*/false});
  }

  completion->complete(*this, ctx, overlapped);
}

std::uint64_t World::process_signature(Pid p) const {
  TBWF_ASSERT(p >= 0 && p < n_, "pid out of range");
  const auto& ps = procs_[p];
  std::uint64_t h = util::kFnvOffset;
  h = util::hash_mix(h, ps.crashed);
  h = util::hash_mix(h, ps.rr);
  const auto fold = [&](const detail::SubTask& st) {
    h = util::hash_mix(h, st.has_pending());
    if (st.has_pending()) {
      h = util::hash_mix(h, st.pending_cell->idx);
      h = util::hash_mix(h, st.pending_is_write);
    }
  };
  h = util::hash_mix(h, ps.subtasks.size() + ps.newborn.size());
  for (const auto& st : ps.subtasks) fold(st);
  for (const auto& st : ps.newborn) fold(st);
  return h;
}

void World::note_write_effect(std::uint32_t reg_idx, Pid pid) {
  if (options_.log_writes) {
    write_log_.push_back(WriteEvent{current_step_, pid, reg_idx});
  }
}

void World::note_read(bool aborted, detail::RegCellBase* cell) {
  ++total_reads_;
  ++cell->n_reads;
  if (aborted) {
    ++total_read_aborts_;
    ++cell->n_read_aborts;
  }
}

void World::note_write(bool aborted, detail::RegCellBase* cell) {
  ++total_writes_;
  ++cell->n_writes;
  if (aborted) {
    ++total_write_aborts_;
    ++cell->n_write_aborts;
  }
}

}  // namespace tbwf::sim
