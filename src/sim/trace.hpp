// Run trace: which process took each global step, plus crash times.
//
// The trace is the ground truth for the paper's timeliness definitions
// (Definitions 1-2): process p is timely with bound i iff every window of
// i consecutive steps contains a step of p. For a finite run we report
// the smallest such empirical bound; experiment harnesses compare it
// against the bound the schedule was asked to guarantee.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "sim/types.hpp"

namespace tbwf::sim {

/// Verdict about one process's timeliness over a finite trace.
struct TimelinessVerdict {
  bool crashed = false;
  Step steps_taken = 0;
  /// Smallest i such that every window of i consecutive global steps in
  /// the run contains a step of p. Infinite (max uint64) if p took no
  /// steps at all.
  Step empirical_bound = 0;

  /// Timely relative to a target bound (and not crashed).
  bool timely_with_bound(Step bound) const {
    return !crashed && steps_taken > 0 && empirical_bound <= bound;
  }
};

/// One crash or restart, in the order it was applied to the world. The
/// ordered log is the ground truth the chaos conformance checker (and
/// the apply-order regression tests) read back.
struct FaultEvent {
  Step at = 0;
  Pid pid = kNoPid;
  bool restart = false;  ///< false = crash, true = restart
};

class Trace {
 public:
  explicit Trace(int n)
      : n_(n), crashed_at_(n, kNever), crash_count_(n, 0),
        restart_count_(n, 0) {}

  void record_step(Pid p) { steps_.push_back(static_cast<std::uint16_t>(p)); }
  void record_crash(Pid p) {
    crashed_at_[p] = now();
    ++crash_count_[p];
    fault_log_.push_back(FaultEvent{now(), p, /*restart=*/false});
  }
  void record_restart(Pid p) {
    crashed_at_[p] = kNever;
    ++restart_count_[p];
    fault_log_.push_back(FaultEvent{now(), p, /*restart=*/true});
  }

  Step now() const { return static_cast<Step>(steps_.size()); }
  int n() const { return n_; }
  bool empty() const { return steps_.empty(); }

  Pid step_owner(Step s) const { return static_cast<Pid>(steps_[s]); }

  /// Currently crashed (i.e. crashed and not subsequently restarted).
  bool crashed(Pid p) const { return crashed_at_[p] != kNever; }
  /// Time of the latest crash p has not recovered from; kNever if alive.
  Step crash_time(Pid p) const { return crashed_at_[p]; }

  std::uint64_t crash_count(Pid p) const { return crash_count_[p]; }
  std::uint64_t restart_count(Pid p) const { return restart_count_[p]; }

  /// Every crash/restart in application order.
  const std::vector<FaultEvent>& fault_log() const { return fault_log_; }

  /// Number of steps taken by p over the whole run.
  Step steps_of(Pid p) const;

  /// Number of steps taken by p in the half-open window [from, to).
  Step steps_of_in(Pid p, Step from, Step to) const;

  /// Maximum number of consecutive steps *not* taken by p, including the
  /// prefix before p's first step and the suffix after p's last step.
  Step max_gap(Pid p) const;

  /// max_gap restricted to the half-open window [from, to): the longest
  /// run of non-p steps inside the window, counting the stretch from
  /// `from` to p's first step and from p's last step to `to`. If p takes
  /// no step in the window this is the window length (not kNever);
  /// callers distinguish "starved" from "absent" via steps_of_in.
  Step max_gap_in(Pid p, Step from, Step to) const;

  TimelinessVerdict timeliness(Pid p) const;

  /// Processes whose empirical bound is <= `bound` and did not crash.
  std::vector<Pid> timely_set(Step bound) const;

  /// Order-sensitive 64-bit digest of the whole trace: every step owner
  /// in sequence plus the fault log. Two runs are schedule-identical iff
  /// their digests match (up to hash collision); the replay-determinism
  /// regression tests pin seeded runs to this.
  std::uint64_t digest() const;

  static constexpr Step kNever = std::numeric_limits<Step>::max();

 private:
  int n_;
  std::vector<std::uint16_t> steps_;
  std::vector<Step> crashed_at_;
  std::vector<std::uint64_t> crash_count_;
  std::vector<std::uint64_t> restart_count_;
  std::vector<FaultEvent> fault_log_;
};

}  // namespace tbwf::sim
