// The step-granting engine: World::step / advance / run.
#include "sim/env.hpp"
#include "sim/world.hpp"

namespace tbwf::sim {

bool World::step() {
  apply_due_faults();
  const Pid p = schedule_->next(*this);
  if (p == kNoPid) return false;
  TBWF_ASSERT(p >= 0 && p < n_, "schedule returned invalid pid");
  TBWF_ASSERT(runnable(p), "schedule returned a non-runnable pid");
  advance(p);
  return true;
}

void World::advance(Pid p) {
  auto& ps = procs_[p];

  // Fold in sub-tasks spawned outside of p's own steps.
  while (!ps.newborn.empty()) {
    ps.subtasks.push_back(std::move(ps.newborn.front()));
    ps.newborn.pop_front();
  }
  TBWF_ASSERT(!ps.subtasks.empty(), "advance on process with no sub-tasks");

  // This grant is one step of p.
  if (options_.track_accesses) last_accesses_.clear();
  current_step_ = trace_.now();
  trace_.record_step(p);
  ++ps.steps;
  current_pid_ = p;

  // Round-robin across p's sub-tasks: each step advances exactly one.
  if (ps.rr >= ps.subtasks.size()) ps.rr = 0;
  const std::size_t idx = ps.rr;
  ps.rr = (ps.rr + 1) % ps.subtasks.size();

  detail::SubTask& st = ps.subtasks[idx];
  current_subtask_ = &st;

  if (st.has_pending()) {
    // Response step: decide the pending operation's outcome, then resume
    // the coroutine with the result. The coroutine may run local code
    // and invoke its next operation within this same resumption -- that
    // is fine: the next operation's interval opens at this step and its
    // response will consume a future step.
    complete_pending(st);
  }
  resume_subtask(st);

  current_subtask_ = nullptr;
  current_pid_ = kNoPid;

  if (st.task.done()) {
    ps.subtasks.erase(ps.subtasks.begin() +
                      static_cast<std::ptrdiff_t>(idx));
    if (ps.rr > idx) --ps.rr;
  }

  // Fold in sub-tasks spawned during this step.
  while (!ps.newborn.empty()) {
    ps.subtasks.push_back(std::move(ps.newborn.front()));
    ps.newborn.pop_front();
  }

  for (auto& observer : step_observers_) observer(current_step_, p);
}

void World::resume_subtask(detail::SubTask& st) {
  TBWF_ASSERT(st.resume_handle && !st.resume_handle.done(),
              "resuming a finished frame");
  st.resume_handle.resume();
  // Exceptions from any depth of the call stack propagate into the
  // top-level Task's promise via Co<T>::await_resume rethrows.
  if (st.task.done()) {
    auto& promise = st.task.handle().promise();
    if (promise.exception) {
      auto ex = std::exchange(promise.exception, nullptr);
      try {
        std::rethrow_exception(ex);
      } catch (const StopRequested&) {
        // clean shutdown of a `repeat forever` loop
      }
    }
  }
}

Step World::run(Step max_steps) {
  Step taken = 0;
  while (taken < max_steps && step()) ++taken;
  return taken;
}

bool World::run_until(const std::function<bool()>& pred, Step max_steps,
                      Step check_every) {
  TBWF_ASSERT(check_every >= 1, "check_every must be positive");
  Step taken = 0;
  while (taken < max_steps) {
    for (Step i = 0; i < check_every && taken < max_steps; ++i) {
      if (!step()) return pred();
      ++taken;
    }
    if (pred()) return true;
  }
  return pred();
}

}  // namespace tbwf::sim
