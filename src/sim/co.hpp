// Co<T>: an awaitable sub-procedure coroutine.
//
// The paper's algorithms are structured as procedures that perform
// register operations (WriteMsgs, ReadMsgs, SendHeartbeat,
// ReceiveHeartbeat in Figures 4-5) and are called from a main loop
// (Figure 6). In the simulator a procedure call is `co_await proc(...)`:
// control transfers into the child coroutine immediately (a call costs no
// extra step), the child's own register operations suspend the whole
// stack, and on completion control transfers back to the caller, again
// within the same step. Step accounting therefore charges procedures
// only for the shared-memory operations and explicit yields they perform,
// matching the paper's model where a "step" is a shared-memory access or
// an explicit local transition -- not a function call.
//
// Ownership: the Co object (living in the caller's frame as the awaited
// temporary) owns the child frame, so destroying a suspended call stack
// from the top (process crash) releases every frame via RAII.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "util/assert.hpp"

namespace tbwf::sim {

namespace detail {

struct CoFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <class Promise>
  std::coroutine_handle<> await_suspend(
      std::coroutine_handle<Promise> h) noexcept {
    auto continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct CoPromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;

  std::suspend_always initial_suspend() noexcept { return {}; }
  CoFinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { exception = std::current_exception(); }
};

}  // namespace detail

template <class T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase {
    std::optional<T> value;

    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    template <class U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;  // start the child immediately (same step)
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
    TBWF_ASSERT(p.value.has_value(), "Co<T> completed without a value");
    return std::move(*p.value);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() noexcept {}
  };

  Co(Co&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co& operator=(Co&&) = delete;
  ~Co() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.exception) std::rethrow_exception(p.exception);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : handle_(h) {}
  std::coroutine_handle<promise_type> handle_;
};

}  // namespace tbwf::sim
