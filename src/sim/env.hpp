// SimEnv: the interface simulated algorithm code is written against.
//
// A process sub-task is a coroutine `Task body(SimEnv& env, ...)` that
// performs shared-memory operations with co_await:
//
//   std::int64_t v = co_await env.read(atomic_reg);
//   co_await env.write(atomic_reg, v + 1);
//   std::optional<std::int64_t> r = co_await env.read(abortable_reg);
//   bool ok = co_await env.write(abortable_reg, 7);
//   co_await env.yield();   // one local step (the paper's "skip")
//
// Each co_await on a register operation consumes exactly two scheduled
// steps of the process (invocation, then response); yield() consumes one.
//
// Lifetime rule: everything a sub-task coroutine references (the SimEnv,
// shared registers' World, per-process local-variable structs) must
// outlive the World run. Do not spawn capturing-lambda coroutines: a
// lambda coroutine's captures live in the closure object, not the frame.
// Use free functions / static members with explicit reference parameters.
#pragma once

#include <coroutine>
#include <cstdint>
#include <cstring>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/world.hpp"

namespace tbwf::sim {

namespace detail {

// -- awaiters ---------------------------------------------------------------

template <class T>
struct AtomicReadOp final : OpCompletion {
  AtomicReadOp(World* w, RegCell<T>* c) : world(w), cell(c) {}
  World* world;
  RegCell<T>* cell;
  T result{};

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/false, this);
  }
  T await_resume() { return std::move(result); }

  void complete(World& w, const registers::OpContext&, bool) override {
    result = cell->value;
    w.note_read(/*aborted=*/false, cell);
  }
  void settle_crash(World&, const registers::OpContext&) override {}
};

template <class T>
struct AtomicWriteOp final : OpCompletion {
  AtomicWriteOp(World* w, RegCell<T>* c, T v)
      : world(w), cell(c), value(std::move(v)) {}
  World* world;
  RegCell<T>* cell;
  T value;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/true, this);
  }
  void await_resume() {}

  void complete(World& w, const registers::OpContext& ctx, bool) override {
    cell->value = std::move(value);
    w.note_write(/*aborted=*/false, cell);
    w.note_write_effect(cell->idx, ctx.pid);
  }
  void settle_crash(World& w, const registers::OpContext& ctx) override {
    // A write interrupted by a crash may or may not take effect; decided
    // deterministically from the world seed so runs replay exactly.
    if (w.aux_rng().chance(0.5)) {
      cell->value = std::move(value);
      w.note_write_effect(cell->idx, ctx.pid);
    }
  }
};

template <class T>
struct SafeReadOp final : OpCompletion {
  SafeReadOp(World* w, RegCell<T>* c) : world(w), cell(c) {}
  World* world;
  RegCell<T>* cell;
  T result{};

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/false, this);
  }
  T await_resume() { return std::move(result); }

  void complete(World& w, const registers::OpContext& ctx, bool) override {
    if (ctx.any_overlap_write) {
      // A safe-register read overlapping a write returns an arbitrary
      // value of the type.
      if constexpr (std::is_integral_v<T>) {
        result = static_cast<T>(w.aux_rng().next());
      } else {
        result = T{};
      }
    } else {
      result = cell->value;
    }
    w.note_read(/*aborted=*/false, cell);
  }
  void settle_crash(World&, const registers::OpContext&) override {}
};

template <class T>
struct SafeWriteOp final : OpCompletion {
  SafeWriteOp(World* w, RegCell<T>* c, T v)
      : world(w), cell(c), value(std::move(v)) {}
  World* world;
  RegCell<T>* cell;
  T value;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/true, this);
  }
  void await_resume() {}

  void complete(World& w, const registers::OpContext& ctx, bool) override {
    cell->value = std::move(value);
    w.note_write(/*aborted=*/false, cell);
    w.note_write_effect(cell->idx, ctx.pid);
  }
  void settle_crash(World& w, const registers::OpContext& ctx) override {
    cell->value = std::move(value);
    w.note_write_effect(cell->idx, ctx.pid);
  }
};

template <class T>
struct AbortableReadOp final : OpCompletion {
  AbortableReadOp(World* w, RegCell<T>* c) : world(w), cell(c) {}
  World* world;
  RegCell<T>* cell;
  std::optional<T> result;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/false, this);
  }
  std::optional<T> await_resume() { return std::move(result); }

  void complete(World& w, const registers::OpContext& ctx,
                bool overlapped) override {
    // Solo operations never abort under any spec-conforming policy (the
    // base on_solo_read returns Success); only the register fault layer
    // -- a deliberately broken medium -- overrides the solo hook.
    const auto outcome = overlapped ? cell->policy->on_contended_read(ctx)
                                    : cell->policy->on_solo_read(ctx);
    switch (outcome) {
      case registers::ReadOutcome::Success:
        result = cell->value;
        w.note_read(/*aborted=*/false, cell);
        break;
      case registers::ReadOutcome::Stale:
        result = cell->prev_value;
        w.note_read(/*aborted=*/false, cell);
        break;
      case registers::ReadOutcome::Abort:
        result.reset();
        w.note_read(/*aborted=*/true, cell);
        break;
    }
  }
  void settle_crash(World&, const registers::OpContext&) override {}
};

template <class T>
struct AbortableWriteOp final : OpCompletion {
  AbortableWriteOp(World* w, RegCell<T>* c, T v)
      : world(w), cell(c), value(std::move(v)) {}
  World* world;
  RegCell<T>* cell;
  T value;
  bool ok = false;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/true, this);
  }
  /// true  => the write took effect (the caller knows it succeeded)
  /// false => bottom: the write may or may not have taken effect
  bool await_resume() { return ok; }

  void complete(World& w, const registers::OpContext& ctx,
                bool overlapped) override {
    using registers::WriteOutcome;
    const WriteOutcome outcome = overlapped
                                     ? cell->policy->on_contended_write(ctx)
                                     : cell->policy->on_solo_write(ctx);
    switch (outcome) {
      case WriteOutcome::Success:
        install(w, ctx);
        ok = true;
        w.note_write(/*aborted=*/false, cell);
        break;
      case WriteOutcome::AbortWithEffect:
        install(w, ctx);
        ok = false;
        w.note_write(/*aborted=*/true, cell);
        break;
      case WriteOutcome::AbortNoEffect:
        ok = false;
        w.note_write(/*aborted=*/true, cell);
        break;
      case WriteOutcome::SilentDrop:
        // The medium lies: the caller sees success, the register never
        // changes, and no abort evidence exists. Counted as a clean
        // write; only end-to-end channel discipline can recover.
        ok = true;
        w.note_write(/*aborted=*/false, cell);
        break;
      case WriteOutcome::Torn:
        install_torn(w, ctx);
        ok = true;
        w.note_write(/*aborted=*/false, cell);
        break;
    }
  }
  void settle_crash(World& w, const registers::OpContext& ctx) override {
    if (cell->policy->crashed_write_takes_effect(ctx)) {
      cell->prev_value = cell->value;
      cell->value = std::move(value);
      w.note_write_effect(cell->idx, ctx.pid);
    }
  }

 private:
  void install(World& w, const registers::OpContext& ctx) {
    cell->prev_value = cell->value;
    cell->value = value;
    w.note_write_effect(cell->idx, ctx.pid);
  }
  /// A torn multi-word write: the low half of the value's bytes land,
  /// the rest keep their old contents. Only meaningful for trivially
  /// copyable multi-byte payloads; otherwise degrades to a full install
  /// (the checksummed channel payloads are trivially copyable, which is
  /// where torn writes matter).
  void install_torn(World& w, const registers::OpContext& ctx) {
    if constexpr (std::is_trivially_copyable_v<T> && sizeof(T) > 1) {
      T mixed = cell->value;
      std::memcpy(static_cast<void*>(reinterpret_cast<unsigned char*>(&mixed)),
                  reinterpret_cast<const unsigned char*>(&value),
                  sizeof(T) / 2);
      cell->prev_value = cell->value;
      cell->value = mixed;
      w.note_write_effect(cell->idx, ctx.pid);
    } else {
      install(w, ctx);
    }
  }
};

/// Compare-and-swap on an atomic register cell: used by the BASELINE
/// implementations only (the paper's point is that TBWF needs no such
/// primitive). Linearizes at the response step like every other op.
template <class T>
struct CasOp final : OpCompletion {
  CasOp(World* w, RegCell<T>* c, T e, T d)
      : world(w), cell(c), expected(std::move(e)), desired(std::move(d)) {}
  World* world;
  RegCell<T>* cell;
  T expected;
  T desired;
  bool success = false;
  T witnessed{};

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    world->set_resume_handle(h);
    world->begin_op(cell, /*is_write=*/true, this);
  }
  /// (success, value observed at the linearization point)
  std::pair<bool, T> await_resume() {
    return {success, std::move(witnessed)};
  }

  void complete(World& w, const registers::OpContext& ctx, bool) override {
    witnessed = cell->value;
    if (cell->value == expected) {
      cell->value = desired;
      success = true;
      w.note_write(/*aborted=*/false, cell);
      w.note_write_effect(cell->idx, ctx.pid);
    } else {
      success = false;
      w.note_read(/*aborted=*/false, cell);
    }
  }
  void settle_crash(World& w, const registers::OpContext& ctx) override {
    if (w.aux_rng().chance(0.5) && cell->value == expected) {
      cell->value = std::move(desired);
      w.note_write_effect(cell->idx, ctx.pid);
    }
  }
};

struct YieldOp {
  World* world;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) noexcept {
    world->set_resume_handle(h);
  }
  void await_resume() const noexcept {}
};

}  // namespace detail

// ---------------------------------------------------------------------------
// SimEnv
// ---------------------------------------------------------------------------

class SimEnv {
 public:
  SimEnv(World* world, Pid pid)
      : world_(world), pid_(pid), rng_(world->aux_rng().next() ^
                                       (0x9E3779B97F4A7C15ULL * (pid + 1))) {}

  Pid pid() const { return pid_; }
  int n() const { return world_->n(); }
  Step now() const { return world_->now(); }
  Step local_steps() const { return world_->local_steps(pid_); }
  World& world() { return *world_; }

  /// Deterministic per-process randomness for workload generation.
  util::Rng& rng() { return rng_; }

  /// One local step (the paper's "skip" / busy-wait step).
  detail::YieldOp yield() { return {world_}; }

  /// Same as yield() in the simulator; the rt backend additionally checks
  /// for shutdown here. Algorithm code uses checkpoint() inside its
  /// `repeat forever` loops.
  detail::YieldOp checkpoint() { return {world_}; }

  // -- atomic registers ------------------------------------------------------
  template <class T>
  detail::AtomicReadOp<T> read(AtomicReg<T> r) {
    return {world_, world_->typed_cell<T>(r.idx)};
  }
  template <class T>
  detail::AtomicWriteOp<T> write(AtomicReg<T> r, std::type_identity_t<T> value) {
    return {world_, world_->typed_cell<T>(r.idx), std::move(value)};
  }

  /// Baseline-only CAS on an atomic register (requires T ==).
  template <class T>
  detail::CasOp<T> cas(AtomicReg<T> r, std::type_identity_t<T> expected,
                       std::type_identity_t<T> desired) {
    return {world_, world_->typed_cell<T>(r.idx), std::move(expected),
            std::move(desired)};
  }

  // -- safe registers ----------------------------------------------------------
  template <class T>
  detail::SafeReadOp<T> read(SafeReg<T> r) {
    return {world_, world_->typed_cell<T>(r.idx)};
  }
  template <class T>
  detail::SafeWriteOp<T> write(SafeReg<T> r, std::type_identity_t<T> value) {
    return {world_, world_->typed_cell<T>(r.idx), std::move(value)};
  }

  // -- abortable registers -------------------------------------------------------
  template <class T>
  detail::AbortableReadOp<T> read(AbortableReg<T> r) {
    return {world_, world_->typed_cell<T>(r.idx)};
  }
  template <class T>
  detail::AbortableWriteOp<T> write(AbortableReg<T> r, std::type_identity_t<T> value) {
    return {world_, world_->typed_cell<T>(r.idx), std::move(value)};
  }

  /// Spawn a sibling sub-task on this process.
  void spawn(std::string name, std::function<Task(SimEnv&)> factory) {
    world_->spawn(pid_, std::move(name), std::move(factory));
  }

 private:
  World* world_;
  Pid pid_;
  util::Rng rng_;
};

}  // namespace tbwf::sim
