// Trajectory<T>: change-point recording of a sampled variable over model
// time, used to verify "there is a time after which ..." properties
// (Definitions 5 and 9) on finite runs.
//
// Attach a trajectory to a world and a variable; after the run, query
// when the variable last changed, what it converged to, and how often it
// changed inside any window.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/world.hpp"
#include "util/assert.hpp"

namespace tbwf::sim {

template <class T>
class Trajectory {
 public:
  /// Record `value` as of step `t` (only stores change-points).
  void sample(Step t, const T& value) {
    if (!points_.empty() && points_.back().second == value) return;
    points_.emplace_back(t, value);
  }

  bool empty() const { return points_.empty(); }
  std::size_t change_count() const {
    return points_.empty() ? 0 : points_.size() - 1;
  }

  const T& final_value() const {
    TBWF_ASSERT(!points_.empty(), "empty trajectory");
    return points_.back().second;
  }

  /// Step at which the final value was established.
  Step last_change() const {
    TBWF_ASSERT(!points_.empty(), "empty trajectory");
    return points_.back().first;
  }

  /// Value in effect at step t (last sample at or before t).
  const T& value_at(Step t) const {
    TBWF_ASSERT(!points_.empty() && points_.front().first <= t,
                "no sample at or before t");
    const T* best = &points_.front().second;
    for (const auto& [s, v] : points_) {
      if (s > t) break;
      best = &v;
    }
    return *best;
  }

  /// True iff the variable never changes from step t to the end.
  bool constant_since(Step t) const {
    return !points_.empty() && last_change() <= t;
  }

  /// Number of change-points with step in [from, to).
  std::size_t changes_in(Step from, Step to) const {
    std::size_t count = 0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
      if (points_[i].first >= from && points_[i].first < to) ++count;
    }
    return count;
  }

  /// True iff the variable equals `v` at every sampled point in [from, to).
  bool always_in(Step from, Step to, const T& v) const {
    if (points_.empty()) return false;
    for (Step t = from; t < to; ++t) {
      if (points_.front().first > t) continue;
      if (!(value_at(t) == v)) return false;
    }
    return true;
  }

  const std::vector<std::pair<Step, T>>& points() const { return points_; }

  /// Register a step observer on `world` that samples `*source` after
  /// every step. Both this trajectory and *source must outlive the run.
  void attach(World& world, const T* source) {
    world.add_step_observer(
        [this, source](Step t, Pid) { this->sample(t, *source); });
  }

 private:
  std::vector<std::pair<Step, T>> points_;
};

}  // namespace tbwf::sim
