#include "sim/membership.hpp"

#include <algorithm>

#include "sim/world.hpp"

namespace tbwf::sim {

void MembershipDirector::install(World& world,
                                 std::vector<core::MembershipEvent> events) {
  if (events.empty()) return;
  std::stable_sort(events.begin(), events.end(),
                   [](const core::MembershipEvent& a,
                      const core::MembershipEvent& b) { return a.at < b.at; });
  pending_ = std::move(events);
  next_ = 0;
  world.add_step_observer([this](Step step, Pid) {
    while (next_ < pending_.size() && pending_[next_].at <= step) {
      apply(pending_[next_]);
      ++next_;
    }
  });
}

void MembershipDirector::apply(const core::MembershipEvent& event) {
  epoch_ += 1;
  auto set_member = [&](int pid, bool in) {
    if (pid >= 0 && static_cast<std::size_t>(pid) < members_.size()) {
      members_[static_cast<std::size_t>(pid)] = in;
    }
  };
  switch (event.kind) {
    case core::MembershipKind::kJoin:
      set_member(event.pid, true);
      break;
    case core::MembershipKind::kLeave:
      set_member(event.pid, false);
      break;
    case core::MembershipKind::kReplace:
      set_member(event.pid, false);
      set_member(event.replacement, true);
      break;
  }
}

int MembershipDirector::member_count() const {
  return static_cast<int>(
      std::count(members_.begin(), members_.end(), true));
}

}  // namespace tbwf::sim
