// World: the deterministic shared-memory system simulator.
//
// A World owns n processes, the shared registers, the schedule (the
// adversary choosing who steps), and the run trace. One call to step()
// advances exactly one process by exactly one step:
//
//   - a *local* step: resume one of the process's sub-task coroutines,
//     which runs local code until its next co_await;
//   - an *invocation* step: the resumed coroutine reached a register
//     operation; the operation's interval opens at the end of this step
//     and the coroutine suspends;
//   - a *response* step: the process's pending operation completes (its
//     outcome decided now, with full knowledge of which operations
//     overlapped it) and the coroutine resumes with the result.
//
// This matches the paper's Section 3 model: in each step a process
// invokes an operation, receives a response, or takes a local step; at
// most one step per time unit; a register operation spans at least two
// distinct steps of its caller, so operations of different processes can
// genuinely overlap -- which is what "concurrent" means for abortable
// registers.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "registers/abort_policy.hpp"
#include "sim/schedule.hpp"
#include "sim/co.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace tbwf::sim {

class World;
class SimEnv;

// ---------------------------------------------------------------------------
// Typed register handles. The type parameter is compile-time only; the
// handle itself is a cheap index into the world's register arena.
// ---------------------------------------------------------------------------

inline constexpr std::uint32_t kInvalidReg = 0xFFFFFFFFu;

template <class T>
struct AtomicReg {
  std::uint32_t idx = kInvalidReg;
  bool valid() const { return idx != kInvalidReg; }
};

template <class T>
struct SafeReg {
  std::uint32_t idx = kInvalidReg;
  bool valid() const { return idx != kInvalidReg; }
};

template <class T>
struct AbortableReg {
  std::uint32_t idx = kInvalidReg;
  bool valid() const { return idx != kInvalidReg; }
};

// ---------------------------------------------------------------------------
// Internal register-cell representation.
// ---------------------------------------------------------------------------

namespace detail {

/// Completion interface implemented by the register-operation awaiters.
/// The awaiter object lives in the suspended coroutine frame, so it is
/// stable while the operation is pending.
struct OpCompletion {
  virtual ~OpCompletion() = default;
  /// Decide the operation's outcome and apply any effect. `overlapped`
  /// is true iff some other operation's interval intersected this one.
  virtual void complete(World& world, const registers::OpContext& ctx,
                        bool overlapped) = 0;
  /// The owning process crashed while the operation was pending.
  virtual void settle_crash(World& world, const registers::OpContext& ctx) = 0;
};

struct ActiveOp {
  OpId id = 0;
  Pid pid = kNoPid;
  bool is_write = false;
  Step invoked_at = 0;
  bool saw_overlap = false;
  bool saw_overlap_write = false;
  std::vector<Pid> overlap_pids;
  OpCompletion* completion = nullptr;
};

struct RegCellBase {
  RegKind kind = RegKind::Atomic;
  std::string name;
  std::uint32_t idx = kInvalidReg;
  /// SWSR constraints for abortable registers; kNoPid = unconstrained.
  Pid writer = kNoPid;
  Pid reader = kNoPid;
  registers::AbortPolicy* policy = nullptr;

  std::vector<ActiveOp> active;

  // Per-register statistics (E5 / E6 benches read these).
  std::uint64_t n_reads = 0;
  std::uint64_t n_writes = 0;
  std::uint64_t n_read_aborts = 0;
  std::uint64_t n_write_aborts = 0;

  virtual ~RegCellBase() = default;
};

template <class T>
struct RegCell final : RegCellBase {
  explicit RegCell(T init) : value(init), prev_value(std::move(init)) {}
  T value;
  /// Value before the most recent effectful write. A Stale read fault
  /// (ReadOutcome::Stale) serves this instead of `value`, modeling a
  /// register whose read window lags one write behind.
  T prev_value;
};

struct SubTask {
  Task task;
  std::string name;
  /// The deepest suspended coroutine in this sub-task's call stack; the
  /// frame the next granted step resumes. Top-level handle initially;
  /// every awaiter updates it on suspension.
  std::coroutine_handle<> resume_handle;
  RegCellBase* pending_cell = nullptr;
  OpId pending_op = 0;
  bool pending_is_write = false;
  OpCompletion* pending_completion = nullptr;

  bool has_pending() const { return pending_completion != nullptr; }
};

/// A root sub-task's recipe, kept so World::restart can boot the process
/// again with fresh coroutine frames (the crash destroyed the old ones).
struct BootRecord {
  std::string name;
  std::function<Task(SimEnv&)> factory;
};

struct ProcessState {
  Pid pid = kNoPid;
  bool crashed = false;
  Step steps = 0;  ///< local step count
  std::size_t rr = 0;
  std::deque<SubTask> subtasks;
  /// Sub-tasks spawned while this process is mid-step; folded into
  /// `subtasks` after the current resumption returns.
  std::deque<SubTask> newborn;
  /// Recipes of the root sub-tasks (spawned from outside any step);
  /// re-invoked by World::restart. Child sub-tasks spawned from inside
  /// coroutines are not recorded -- their parents re-create them.
  std::vector<BootRecord> boot;
};

/// A scheduled crash or restart, applied at the start of the step whose
/// index reaches `at`. Events due at the same step apply in a fixed
/// order -- crashes before restarts, then ascending pid -- regardless of
/// the order schedule_crash / schedule_restart were called in.
struct PendingFault {
  Step at = 0;
  bool restart = false;
  Pid pid = kNoPid;

  friend bool operator<(const PendingFault& a, const PendingFault& b) {
    if (a.at != b.at) return a.at < b.at;
    if (a.restart != b.restart) return !a.restart;
    return a.pid < b.pid;
  }
};

}  // namespace detail

// ---------------------------------------------------------------------------
// World
// ---------------------------------------------------------------------------

struct WorldOptions {
  /// Record every successful register write in write_log() -- used by
  /// the write-efficiency experiment (E5).
  bool log_writes = false;
  /// Record the register accesses of each step in last_step_accesses()
  /// -- used by the schedule explorer's independence-based reduction.
  /// Off by default: the sweeps and benches do not pay for the clears.
  bool track_accesses = false;
  /// Seed for the world's auxiliary randomness (safe-register garbage).
  std::uint64_t seed = 1;
};

/// One register touch made by a step (verify/explorer reduction input).
/// `invocation` marks the interval-opening half of an operation; on an
/// Atomic register that half has no observable effect (atomic outcomes
/// ignore overlap), so the explorer treats it as commuting with
/// everything -- the `inert` flag.
struct StepAccess {
  std::uint32_t reg = kInvalidReg;
  bool write = false;
  bool invocation = false;
  bool inert = false;
};

class World final : public WorldView {
 public:
  using Options = WorldOptions;

  struct WriteEvent {
    Step step;
    Pid pid;
    std::uint32_t reg;
  };

  World(int n, std::unique_ptr<Schedule> schedule,
        Options options = Options());
  ~World() override;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  // -- WorldView ------------------------------------------------------------
  Step now() const override { return trace_.now(); }
  int n() const override { return n_; }
  bool runnable(Pid p) const override;
  bool has_pending_op(Pid p) const override;

  // -- register construction -------------------------------------------------
  template <class T>
  AtomicReg<T> make_atomic(std::string name, T init) {
    auto* cell = add_cell<T>(RegKind::Atomic, std::move(name),
                             std::move(init));
    return AtomicReg<T>{cell->idx};
  }

  template <class T>
  SafeReg<T> make_safe(std::string name, T init) {
    auto* cell = add_cell<T>(RegKind::Safe, std::move(name), std::move(init));
    return SafeReg<T>{cell->idx};
  }

  /// policy must outlive the world. writer/reader restrict access
  /// (single-writer single-reader as used throughout Section 6);
  /// kNoPid leaves the corresponding side unconstrained (MWMR).
  template <class T>
  AbortableReg<T> make_abortable(std::string name, T init,
                                 registers::AbortPolicy* policy,
                                 Pid writer = kNoPid, Pid reader = kNoPid) {
    TBWF_ASSERT(policy != nullptr, "abortable register needs a policy");
    auto* cell = add_cell<T>(RegKind::Abortable, std::move(name),
                             std::move(init));
    cell->policy = policy;
    cell->writer = writer;
    cell->reader = reader;
    return AbortableReg<T>{cell->idx};
  }

  /// Direct (non-step) access to a register's current value; for tests,
  /// checkers and benches only -- simulated processes must go through
  /// their SimEnv.
  template <class T>
  const T& peek(std::uint32_t idx) const {
    return typed_cell<T>(idx)->value;
  }
  template <class T>
  const T& peek(AtomicReg<T> r) const { return peek<T>(r.idx); }
  template <class T>
  const T& peek(SafeReg<T> r) const { return peek<T>(r.idx); }
  template <class T>
  const T& peek(AbortableReg<T> r) const { return peek<T>(r.idx); }

  const detail::RegCellBase& cell_info(std::uint32_t idx) const {
    return *cells_.at(idx);
  }
  std::size_t register_count() const { return cells_.size(); }

  // -- processes --------------------------------------------------------------
  SimEnv& env(Pid p);

  /// Add a sub-task to process p. The factory is invoked immediately; the
  /// coroutine starts lazily on p's first granted step. Safe to call
  /// while the world is running (e.g. from inside another coroutine).
  void spawn(Pid p, std::string name, std::function<Task(SimEnv&)> factory);

  void crash(Pid p);
  void schedule_crash(Pid p, Step at);
  /// Revive a crashed process: its pending operation was already settled
  /// by crash(); restart re-boots every root sub-task with a fresh
  /// coroutine frame (shared registers keep their values -- recovery is
  /// from shared state, not from the lost local state). No-op if p is
  /// not currently crashed.
  void restart(Pid p);
  void schedule_restart(Pid p, Step at);
  bool crashed(Pid p) const { return procs_[p].crashed; }
  Step local_steps(Pid p) const { return procs_[p].steps; }

  // -- execution ---------------------------------------------------------------
  /// One global step. Returns false if the schedule declined (nobody
  /// runnable or script exhausted).
  bool step();

  /// Run up to max_steps; returns the number of steps actually taken.
  Step run(Step max_steps);

  /// Run until pred() holds (checked every `check_every` steps) or
  /// max_steps elapse; returns true iff pred() held.
  bool run_until(const std::function<bool()>& pred, Step max_steps,
                 Step check_every = 64);

  // -- observability -----------------------------------------------------------
  const Trace& trace() const { return trace_; }

  /// Observers run after every completed step (step index, stepping pid).
  /// Spec checkers use them to sample algorithm outputs over model time.
  using StepObserver = std::function<void(Step, Pid)>;
  void add_step_observer(StepObserver observer) {
    step_observers_.push_back(std::move(observer));
  }

  util::Counters& counters() { return counters_; }
  const std::vector<WriteEvent>& write_log() const { return write_log_; }

  /// Register accesses made by the most recently completed step; empty
  /// unless Options::track_accesses is set.
  const std::vector<StepAccess>& last_step_accesses() const {
    return last_accesses_;
  }

  /// Digest of process p's scheduling-relevant control state: crash
  /// flag, sub-task count, round-robin cursor, and each sub-task's
  /// pending-operation signature (register + direction). The explorer
  /// folds this into its state fingerprints; register *contents* are the
  /// harness's responsibility (it knows the types).
  std::uint64_t process_signature(Pid p) const;

  std::uint64_t total_reads() const { return total_reads_; }
  std::uint64_t total_writes() const { return total_writes_; }
  std::uint64_t total_read_aborts() const { return total_read_aborts_; }
  std::uint64_t total_write_aborts() const { return total_write_aborts_; }

  // -- internal API used by the awaiters in env.hpp ------------------------------
  /// Open an operation interval on `cell` for the currently-stepping
  /// sub-task. Called from OpAwaiter::await_suspend.
  void begin_op(detail::RegCellBase* cell, bool is_write,
                detail::OpCompletion* completion);

  template <class T>
  detail::RegCell<T>* typed_cell(std::uint32_t idx) {
    TBWF_ASSERT(idx < cells_.size(), "register index out of range");
    auto* cell = static_cast<detail::RegCell<T>*>(cells_[idx].get());
    return cell;
  }
  template <class T>
  const detail::RegCell<T>* typed_cell(std::uint32_t idx) const {
    TBWF_ASSERT(idx < cells_.size(), "register index out of range");
    return static_cast<const detail::RegCell<T>*>(cells_[idx].get());
  }

  util::Rng& aux_rng() { return aux_rng_; }
  Pid current_pid() const { return current_pid_; }
  Step current_step() const { return current_step_; }

  /// Record the frame to resume on this sub-task's next step; called by
  /// every awaiter from await_suspend.
  void set_resume_handle(std::coroutine_handle<> h) {
    TBWF_ASSERT(current_subtask_ != nullptr,
                "suspension outside of a scheduled step");
    current_subtask_->resume_handle = h;
  }

  void note_write_effect(std::uint32_t reg_idx, Pid pid);
  void note_read(bool aborted, detail::RegCellBase* cell);
  void note_write(bool aborted, detail::RegCellBase* cell);

 private:
  template <class T>
  detail::RegCell<T>* add_cell(RegKind kind, std::string name, T init) {
    auto cell = std::make_unique<detail::RegCell<T>>(std::move(init));
    cell->kind = kind;
    cell->name = std::move(name);
    cell->idx = static_cast<std::uint32_t>(cells_.size());
    auto* raw = cell.get();
    cells_.push_back(std::move(cell));
    return raw;
  }

  void advance(Pid p);
  void resume_subtask(detail::SubTask& st);
  void complete_pending(detail::SubTask& st);
  void apply_due_faults();
  void boot_subtask(detail::ProcessState& ps, const std::string& name,
                    const std::function<Task(SimEnv&)>& factory);

  int n_;
  std::unique_ptr<Schedule> schedule_;
  Options options_;
  Trace trace_;
  util::Counters counters_;
  util::Rng aux_rng_;

  std::deque<detail::ProcessState> procs_;
  std::vector<std::unique_ptr<SimEnv>> envs_;
  std::vector<std::unique_ptr<detail::RegCellBase>> cells_;
  std::vector<detail::PendingFault> pending_faults_;
  std::vector<StepObserver> step_observers_;

  std::vector<WriteEvent> write_log_;
  std::vector<StepAccess> last_accesses_;
  std::uint64_t total_reads_ = 0;
  std::uint64_t total_writes_ = 0;
  std::uint64_t total_read_aborts_ = 0;
  std::uint64_t total_write_aborts_ = 0;

  OpId next_op_id_ = 1;
  Pid current_pid_ = kNoPid;
  Step current_step_ = 0;
  detail::SubTask* current_subtask_ = nullptr;
};

}  // namespace tbwf::sim
