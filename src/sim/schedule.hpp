// Schedules: the adversary that decides which process takes each step.
//
// A Schedule sees only scheduling-relevant state (via WorldView) and
// returns the pid that takes the next step. All schedules are
// deterministic functions of their seed, so any run can be replayed.
#pragma once

#include <memory>
#include <vector>

#include "sim/timeline.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace tbwf::sim {

/// What a schedule may observe about the world.
class WorldView {
 public:
  virtual ~WorldView() = default;
  virtual Step now() const = 0;
  virtual int n() const = 0;
  /// Alive (not crashed) and has at least one unfinished sub-task.
  virtual bool runnable(Pid p) const = 0;
  /// True iff some sub-task of p has an invoked-but-unresponded register
  /// operation. Adversarial schedules use this to engineer overlaps.
  virtual bool has_pending_op(Pid p) const = 0;
};

class Schedule {
 public:
  virtual ~Schedule() = default;
  /// Pick the process that takes the next step, or kNoPid if the schedule
  /// declines to schedule anyone (the run then stops).
  virtual Pid next(const WorldView& view) = 0;
};

/// Cycles through runnable processes in pid order. Every runnable process
/// is timely with bound n under this schedule.
class RoundRobinSchedule : public Schedule {
 public:
  Pid next(const WorldView& view) override;

 private:
  Pid last_ = kNoPid;
};

/// Seeded uniform (optionally weighted) random choice among runnable
/// processes. With n processes and uniform weights, every process is
/// timely with high probability for a run-dependent bound.
class RandomSchedule : public Schedule {
 public:
  explicit RandomSchedule(std::uint64_t seed) : rng_(seed) {}
  RandomSchedule(std::uint64_t seed, std::vector<double> weights)
      : rng_(seed), weights_(std::move(weights)) {}

  Pid next(const WorldView& view) override;

 private:
  util::Rng rng_;
  std::vector<double> weights_;
};

/// Replays an explicit pid sequence; used by unit tests to force exact
/// interleavings (e.g. to make two register operations overlap).
class ScriptedSchedule : public Schedule {
 public:
  explicit ScriptedSchedule(std::vector<Pid> script,
                            bool loop_forever = false)
      : script_(std::move(script)), loop_(loop_forever) {}

  Pid next(const WorldView& view) override;

 private:
  std::vector<Pid> script_;
  bool loop_;
  std::size_t pos_ = 0;
};

/// Contention adversary: drives its victim pids so that their register
/// operations overlap as much as possible -- grant steps to a victim
/// until it has an operation pending, then switch to the next victim,
/// and only then let the operations respond. Against abortable
/// registers this maximizes the abort rate; the paper's adaptive
/// backoffs must still win eventually. Non-victim processes receive
/// round-robin leftovers.
class ContentionSchedule : public Schedule {
 public:
  explicit ContentionSchedule(std::vector<Pid> victims)
      : victims_(std::move(victims)) {}

  Pid next(const WorldView& view) override;

 private:
  std::vector<Pid> victims_;
  std::size_t cursor_ = 0;
  Pid rr_last_ = kNoPid;
};

/// The timeliness-controlled adversary. Each process follows an
/// ActivitySpec; processes with a timely bound are guaranteed a step in
/// every window of that many global steps (while active); other eligible
/// processes receive leftover steps by weighted random choice. Silent /
/// stalled / flicker-off processes take no steps.
class TimelinessSchedule : public Schedule {
 public:
  TimelinessSchedule(std::vector<ActivitySpec> specs, std::uint64_t seed);

  Pid next(const WorldView& view) override;

  const ActivitySpec& spec(Pid p) const { return specs_[p]; }

  /// Pids whose spec guarantees a timeliness bound (and never crashes or
  /// goes silent): the set the TBWF property must protect.
  std::vector<Pid> intended_timely() const;

 private:
  std::vector<ActivitySpec> specs_;
  util::Rng rng_;
  std::vector<Step> last_step_;  // last step index granted to each pid
};

}  // namespace tbwf::sim
