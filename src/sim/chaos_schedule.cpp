#include "sim/chaos_schedule.hpp"

#include "util/assert.hpp"

namespace tbwf::sim {

namespace {

/// The inner schedule's window onto the world with stuttered processes
/// masked out while they are blacked out.
class MaskedView final : public WorldView {
 public:
  MaskedView(const WorldView& base, const ChaosSchedule& chaos)
      : base_(base), chaos_(chaos) {}

  Step now() const override { return base_.now(); }
  int n() const override { return base_.n(); }
  bool runnable(Pid p) const override {
    return base_.runnable(p) && !chaos_.blacked_out(p, base_.now());
  }
  bool has_pending_op(Pid p) const override {
    return base_.has_pending_op(p);
  }

 private:
  const WorldView& base_;
  const ChaosSchedule& chaos_;
};

}  // namespace

ChaosSchedule::ChaosSchedule(std::unique_ptr<Schedule> inner,
                             std::vector<StutterPhase> stutters)
    : inner_(std::move(inner)), stutters_(std::move(stutters)) {
  TBWF_ASSERT(inner_ != nullptr, "chaos schedule needs an inner schedule");
  for (const auto& st : stutters_) {
    TBWF_ASSERT(st.period >= 1, "stutter period must be >= 1");
    TBWF_ASSERT(st.from <= st.to, "stutter window must be ordered");
  }
}

bool ChaosSchedule::blacked_out(Pid p, Step t) const {
  for (const auto& st : stutters_) {
    if (st.pid != p || t < st.from || t >= st.to) continue;
    if ((t - st.from) % st.period != 0) return true;
  }
  return false;
}

Pid ChaosSchedule::next(const WorldView& view) {
  const MaskedView masked(view, *this);
  const Pid p = inner_->next(masked);
  if (p != kNoPid) return p;
  // The inner schedule declined. If that is only because every runnable
  // process is currently blacked out, time must still advance (the model
  // has one step per time unit while anyone is alive): grant the step to
  // the smallest-pid runnable process. If nobody is runnable at all the
  // run genuinely stops.
  for (Pid q = 0; q < view.n(); ++q) {
    if (view.runnable(q)) return q;
  }
  return kNoPid;
}

}  // namespace tbwf::sim
