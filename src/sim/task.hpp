// Coroutine task type for simulated processes.
//
// Every process "sub-task" (application loop, Omega-Delta loop, activity
// monitor loops, heartbeat loops) is a lazily-started coroutine. The
// scheduler advances a sub-task by exactly one step per resumption, which
// makes the paper's step-counting model exact: one resumption == one step
// of the owning process. Register operations suspend the coroutine so the
// invocation and the response land on distinct steps, as in the paper's
// automaton model.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace tbwf::sim {

/// Thrown out of a coroutine when its process is asked to stop cleanly
/// (used by the rt backend and by tests that wind down infinite loops).
struct StopRequested {};

class Task {
 public:
  struct promise_type {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::exception_ptr exception;
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(handle_); }
  bool done() const { return handle_ && handle_.done(); }

  /// Resume the coroutine once. Rethrows any exception that escaped the
  /// coroutine body, except StopRequested which is swallowed (it marks a
  /// clean shutdown of a `repeat forever` loop).
  void resume() {
    handle_.resume();
    if (handle_.done() && handle_.promise().exception) {
      auto ex = std::exchange(handle_.promise().exception, nullptr);
      try {
        std::rethrow_exception(ex);
      } catch (const StopRequested&) {
        // clean stop
      }
    }
  }

  std::coroutine_handle<promise_type> handle() const { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_{};
};

}  // namespace tbwf::sim
