#include "sim/faultplan.hpp"

#include <algorithm>
#include <sstream>

#include "registers/abort_policy.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace tbwf::sim {

FaultPlan& FaultPlan::crash(Pid p, Step at) {
  crashes_.push_back({p, at});
  return *this;
}

FaultPlan& FaultPlan::restart(Pid p, Step at) {
  restarts_.push_back({p, at});
  return *this;
}

FaultPlan& FaultPlan::stutter(Pid p, Step from, Step to, Step period) {
  TBWF_ASSERT(period >= 1, "stutter period must be >= 1");
  TBWF_ASSERT(from <= to, "stutter window must be ordered");
  stutters_.push_back({p, from, to, period});
  return *this;
}

FaultPlan& FaultPlan::abort_storm(std::string group, Step from, Step to,
                                  double rate, double p_effect) {
  TBWF_ASSERT(from <= to, "storm window must be ordered");
  storms_.push_back({std::move(group), from, to, rate, p_effect});
  return *this;
}

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const GenOptions& options) {
  TBWF_ASSERT(options.n >= 1, "need at least one process");
  TBWF_ASSERT(options.horizon >= 100, "horizon too small for a plan");
  TBWF_ASSERT(options.quiet_tail >= 0.0 && options.quiet_tail < 0.95,
              "quiet_tail out of range");

  FaultPlan plan(seed);
  util::Rng rng(seed ^ 0x5FA017C0FFEE5EEDULL);

  const Step lo = options.horizon / 20;
  const Step hi = static_cast<Step>(
      static_cast<double>(options.horizon) * (1.0 - options.quiet_tail));
  TBWF_ASSERT(lo + 16 < hi, "event window is empty; widen the horizon");

  // One process is exempt from *permanent* crashes (its crashes are
  // always followed by a restart), so every run keeps a live process.
  const Pid protected_pid =
      options.allow_crash_all ? kNoPid : static_cast<Pid>(rng.below(
                                             static_cast<std::uint64_t>(
                                                 options.n)));

  const auto draw_count = [&rng](int max) {
    return max > 0 ? static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(max) + 1))
                   : 0;
  };
  int cycles = draw_count(options.max_crash_cycles);
  const int stutters = draw_count(options.max_stutters);
  const int storms = draw_count(options.max_storms);
  if (cycles == 0 && stutters == 0 && storms == 0) {
    cycles = 1;  // never generate an empty plan
  }

  // Crash / restart cycles. Per-pid cursors keep each process's events
  // ordered: a second crash of p is drawn after p's previous restart.
  std::vector<Step> cursor(static_cast<std::size_t>(options.n), lo);
  for (int c = 0; c < cycles; ++c) {
    const Pid p = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n)));
    const Step earliest = cursor[static_cast<std::size_t>(p)];
    if (earliest + 4 >= hi) continue;  // no room left for this pid
    const Step at = rng.range(earliest, hi - 3);
    plan.crash(p, at);
    if (p == protected_pid || rng.chance(options.p_restart)) {
      const Step back = rng.range(at + 1, hi - 1);
      plan.restart(p, back);
      cursor[static_cast<std::size_t>(p)] = back + 1;
    } else {
      cursor[static_cast<std::size_t>(p)] = hi;  // down for good
    }
  }

  // Stutter windows: untimely-then-recover phases. Overlap between
  // windows (even of the same process) is fine -- blackout is the union.
  for (int s = 0; s < stutters; ++s) {
    const Pid p = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n)));
    const Step period =
        rng.range(options.min_stutter_period, options.max_stutter_period);
    const Step len = period * rng.range(2, 10);
    if (lo + len >= hi) continue;  // window would not fit before the tail
    const Step from = rng.range(lo, hi - len);
    plan.stutter(p, from, from + len, period);
  }

  // Abort storms (only bite when a PhasedAbortPolicy is armed).
  for (int s = 0; s < storms; ++s) {
    const Step len = rng.range((hi - lo) / 16 + 1, (hi - lo) / 4 + 1);
    const Step from = rng.range(lo, hi - len);
    const double rate = 0.5 + 0.5 * rng.uniform01();
    plan.abort_storm(options.storm_group, from, from + len, rate);
  }

  return plan;
}

void FaultPlan::install(World& world) const {
  for (const auto& ev : crashes_) world.schedule_crash(ev.pid, ev.at);
  for (const auto& ev : restarts_) world.schedule_restart(ev.pid, ev.at);
}

std::unique_ptr<Schedule> FaultPlan::wrap(
    std::unique_ptr<Schedule> inner) const {
  return std::make_unique<ChaosSchedule>(std::move(inner), stutters_);
}

void FaultPlan::arm(registers::PhasedAbortPolicy& policy,
                    std::string_view group) const {
  for (const auto& storm : storms_) {
    if (!storm.group.empty() && !group.empty() && storm.group != group) {
      continue;
    }
    policy.add_phase({storm.from, storm.to, storm.rate, storm.p_effect});
  }
}

Step FaultPlan::last_event_step() const {
  Step last = 0;
  for (const auto& ev : crashes_) last = std::max(last, ev.at);
  for (const auto& ev : restarts_) last = std::max(last, ev.at);
  for (const auto& st : stutters_) last = std::max(last, st.to);
  for (const auto& storm : storms_) last = std::max(last, storm.to);
  return last;
}

bool FaultPlan::crashed_at_end(Pid p) const {
  // Replay p's crash/restart events in the order the world applies them
  // (ascending step, crash before restart at the same step).
  struct Ev {
    Step at;
    bool restart;
  };
  std::vector<Ev> evs;
  for (const auto& ev : crashes_) {
    if (ev.pid == p) evs.push_back({ev.at, false});
  }
  for (const auto& ev : restarts_) {
    if (ev.pid == p) evs.push_back({ev.at, true});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    return !a.restart && b.restart;
  });
  bool crashed = false;
  for (const auto& ev : evs) crashed = !ev.restart;
  return crashed;
}

std::vector<Step> FaultPlan::phase_boundaries(Step run_end) const {
  std::vector<Step> edges{0, run_end};
  auto add = [&](Step s) {
    if (s > 0 && s < run_end) edges.push_back(s);
  };
  for (const auto& ev : crashes_) add(ev.at);
  for (const auto& ev : restarts_) add(ev.at);
  for (const auto& st : stutters_) {
    add(st.from);
    add(st.to);
  }
  for (const auto& storm : storms_) {
    add(storm.from);
    add(storm.to);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << "fault plan seed=" << seed_ << "\n";
  for (const auto& ev : crashes_) {
    out << "  crash   p" << ev.pid << " at " << ev.at << "\n";
  }
  for (const auto& ev : restarts_) {
    out << "  restart p" << ev.pid << " at " << ev.at << "\n";
  }
  for (const auto& st : stutters_) {
    out << "  stutter p" << st.pid << " in [" << st.from << ", " << st.to
        << ") period " << st.period << "\n";
  }
  for (const auto& storm : storms_) {
    out << "  storm   group '" << storm.group << "' in [" << storm.from
        << ", " << storm.to << ") rate " << storm.rate << "\n";
  }
  if (empty()) out << "  (no events)\n";
  return out.str();
}

}  // namespace tbwf::sim
