#include "sim/faultplan.hpp"

#include <algorithm>
#include <sstream>

#include "registers/abort_policy.hpp"
#include "sim/world.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace tbwf::sim {

FaultPlan& FaultPlan::crash(Pid p, Step at) {
  crashes_.push_back({p, at});
  return *this;
}

FaultPlan& FaultPlan::restart(Pid p, Step at) {
  restarts_.push_back({p, at});
  return *this;
}

FaultPlan& FaultPlan::stutter(Pid p, Step from, Step to, Step period) {
  TBWF_ASSERT(period >= 1, "stutter period must be >= 1");
  TBWF_ASSERT(from <= to, "stutter window must be ordered");
  stutters_.push_back({p, from, to, period});
  return *this;
}

FaultPlan& FaultPlan::abort_storm(std::string group, Step from, Step to,
                                  double rate, double p_effect) {
  TBWF_ASSERT(from <= to, "storm window must be ordered");
  storms_.push_back({std::move(group), from, to, rate, p_effect});
  return *this;
}

const char* to_string(LinkPart part) {
  switch (part) {
    case LinkPart::All:
      return "all";
    case LinkPart::Msg:
      return "msg";
    case LinkPart::Hb1:
      return "hb1";
    case LinkPart::Hb2:
      return "hb2";
  }
  return "?";
}

FaultPlan& FaultPlan::link_fault(Pid writer, Pid reader, LinkPart part,
                                 registers::RegFaultKind kind, Step from,
                                 Step to, double rate) {
  TBWF_ASSERT(writer != reader, "a link joins two distinct processes");
  TBWF_ASSERT(to == registers::kFaultForever || from <= to,
              "link-fault window must be ordered");
  link_faults_.push_back({writer, reader, part, kind, from, to, rate});
  return *this;
}

FaultPlan& FaultPlan::join(Pid p, Step at) {
  membership_.push_back({core::MembershipKind::kJoin, p, -1, at});
  return *this;
}

FaultPlan& FaultPlan::leave(Pid p, Step at) {
  membership_.push_back({core::MembershipKind::kLeave, p, -1, at});
  return *this;
}

FaultPlan& FaultPlan::replace(Pid out, Pid in, Step at) {
  membership_.push_back({core::MembershipKind::kReplace, out, in, at});
  return *this;
}

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const GenOptions& options) {
  TBWF_ASSERT(options.n >= 1, "need at least one process");
  TBWF_ASSERT(options.horizon >= 100, "horizon too small for a plan");
  TBWF_ASSERT(options.quiet_tail >= 0.0 && options.quiet_tail < 0.95,
              "quiet_tail out of range");

  FaultPlan plan(seed);
  util::Rng rng(seed ^ 0x5FA017C0FFEE5EEDULL);

  const Step lo = options.horizon / 20;
  const Step hi = static_cast<Step>(
      static_cast<double>(options.horizon) * (1.0 - options.quiet_tail));
  TBWF_ASSERT(lo + 16 < hi, "event window is empty; widen the horizon");

  // One process is exempt from *permanent* crashes (its crashes are
  // always followed by a restart), so every run keeps a live process.
  const Pid protected_pid =
      options.allow_crash_all ? kNoPid : static_cast<Pid>(rng.below(
                                             static_cast<std::uint64_t>(
                                                 options.n)));

  const auto draw_count = [&rng](int max) {
    return max > 0 ? static_cast<int>(
                         rng.below(static_cast<std::uint64_t>(max) + 1))
                   : 0;
  };
  int cycles = draw_count(options.max_crash_cycles);
  const int stutters = draw_count(options.max_stutters);
  const int storms = draw_count(options.max_storms);
  const int link_faults =
      options.n >= 2 ? draw_count(options.max_link_faults) : 0;
  if (cycles == 0 && stutters == 0 && storms == 0 && link_faults == 0) {
    cycles = 1;  // never generate an empty plan
  }

  // Crash / restart cycles. Per-pid cursors keep each process's events
  // ordered: a second crash of p is drawn after p's previous restart.
  std::vector<Step> cursor(static_cast<std::size_t>(options.n), lo);
  for (int c = 0; c < cycles; ++c) {
    const Pid p = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n)));
    const Step earliest = cursor[static_cast<std::size_t>(p)];
    if (earliest + 4 >= hi) continue;  // no room left for this pid
    const Step at = rng.range(earliest, hi - 3);
    plan.crash(p, at);
    if (p == protected_pid || rng.chance(options.p_restart)) {
      const Step back = rng.range(at + 1, hi - 1);
      plan.restart(p, back);
      cursor[static_cast<std::size_t>(p)] = back + 1;
    } else {
      cursor[static_cast<std::size_t>(p)] = hi;  // down for good
    }
  }

  // Stutter windows: untimely-then-recover phases. Overlap between
  // windows (even of the same process) is fine -- blackout is the union.
  for (int s = 0; s < stutters; ++s) {
    const Pid p = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n)));
    const Step period =
        rng.range(options.min_stutter_period, options.max_stutter_period);
    const Step len = period * rng.range(2, 10);
    if (lo + len >= hi) continue;  // window would not fit before the tail
    const Step from = rng.range(lo, hi - len);
    plan.stutter(p, from, from + len, period);
  }

  // Abort storms (only bite when a PhasedAbortPolicy is armed).
  for (int s = 0; s < storms; ++s) {
    const Step len = rng.range((hi - lo) / 16 + 1, (hi - lo) / 4 + 1);
    const Step from = rng.range(lo, hi - len);
    const double rate = 0.5 + 0.5 * rng.uniform01();
    plan.abort_storm(options.storm_group, from, from + len, rate);
  }

  // Degraded links (only bite when a RegisterFaultInjector is armed).
  // Transient faults close inside the event window; a permanent one
  // stays open through the quiet tail -- the conformance checker then
  // grades the writer's side of the link through channel_degraded().
  for (int f = 0; f < link_faults; ++f) {
    const Pid w = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n)));
    Pid r = static_cast<Pid>(
        rng.below(static_cast<std::uint64_t>(options.n - 1)));
    if (r >= w) ++r;
    const auto part = static_cast<LinkPart>(rng.below(4));
    registers::RegFaultKind kind;
    if (rng.chance(options.p_link_jam)) {
      kind = registers::RegFaultKind::Jam;
    } else {
      constexpr registers::RegFaultKind kOther[] = {
          registers::RegFaultKind::Drop, registers::RegFaultKind::Stale,
          registers::RegFaultKind::Torn, registers::RegFaultKind::Flake};
      kind = kOther[rng.below(4)];
    }
    const Step len = rng.range((hi - lo) / 8 + 1, (hi - lo) / 2 + 1);
    const Step from = rng.range(lo, hi > len ? hi - len : lo + 1);
    const bool permanent = rng.chance(options.p_link_permanent);
    const double rate = kind == registers::RegFaultKind::Jam
                            ? 1.0
                            : 0.5 + 0.5 * rng.uniform01();
    plan.link_fault(w, r, part, kind, from,
                    permanent ? registers::kFaultForever : from + len, rate);
  }

  // Membership churn (only bites when a MembershipDirector is
  // installed). Cycles are sequential in time, so the view history per
  // cycle is a clean leave -> rejoin chain (or one replace event:
  // crash-and-be-replaced on the same seat). The cycle count is drawn
  // HERE, after every other family's draws, so enabling the knob
  // appends view events to the plan a churn-free generation of the
  // same seed would produce instead of perturbing its other draws.
  const int membership_cycles =
      options.n >= 2 ? draw_count(options.max_membership_cycles) : 0;
  Step mcursor = lo;
  for (int m = 0; m < membership_cycles; ++m) {
    if (mcursor + 8 >= hi) break;  // no room left in the event window
    const Pid p = options.churn_pid != kNoPid
                      ? options.churn_pid
                      : static_cast<Pid>(rng.below(
                            static_cast<std::uint64_t>(options.n)));
    if (rng.chance(options.p_replace)) {
      const Step at = rng.range(mcursor, hi - 1);
      plan.replace(p, p, at);
      mcursor = at + 1;
    } else {
      const Step out_at = rng.range(mcursor, hi - 3);
      const Step back = rng.range(out_at + 1, hi - 1);
      plan.leave(p, out_at);
      plan.join(p, back);
      mcursor = back + 1;
    }
  }

  return plan;
}

void FaultPlan::install(World& world) const {
  for (const auto& ev : crashes_) world.schedule_crash(ev.pid, ev.at);
  for (const auto& ev : restarts_) world.schedule_restart(ev.pid, ev.at);
}

std::unique_ptr<Schedule> FaultPlan::wrap(
    std::unique_ptr<Schedule> inner) const {
  return std::make_unique<ChaosSchedule>(std::move(inner), stutters_);
}

void FaultPlan::arm(registers::PhasedAbortPolicy& policy,
                    std::string_view group) const {
  for (const auto& storm : storms_) {
    if (!storm.group.empty() && !group.empty() && storm.group != group) {
      continue;
    }
    policy.add_phase({storm.from, storm.to, storm.rate, storm.p_effect});
  }
}

int FaultPlan::arm(registers::RegisterFaultInjector& injector,
                   const World& world, const std::string& msg_prefix,
                   const std::string& hb_prefix) const {
  int armed = 0;
  const auto arm_prefix = [&](const LinkFaultEvent& f,
                              const std::string& prefix) {
    armed += injector.arm_link(world, f.writer, f.reader, prefix, f.kind,
                               f.from, f.to, f.rate);
  };
  for (const auto& f : link_faults_) {
    if (f.part == LinkPart::All || f.part == LinkPart::Msg) {
      arm_prefix(f, msg_prefix);
    }
    if (f.part == LinkPart::All || f.part == LinkPart::Hb1) {
      arm_prefix(f, hb_prefix + "1");
    }
    if (f.part == LinkPart::All || f.part == LinkPart::Hb2) {
      arm_prefix(f, hb_prefix + "2");
    }
  }
  return armed;
}

Step FaultPlan::last_event_step() const {
  Step last = 0;
  for (const auto& ev : crashes_) last = std::max(last, ev.at);
  for (const auto& ev : restarts_) last = std::max(last, ev.at);
  for (const auto& st : stutters_) last = std::max(last, st.to);
  for (const auto& storm : storms_) last = std::max(last, storm.to);
  for (const auto& f : link_faults_) {
    // A permanent fault never closes: its start is the boundary, the
    // degradation itself is part of the stable suffix.
    last = std::max(last,
                    f.to == registers::kFaultForever ? f.from : f.to);
  }
  for (const auto& ev : membership_) last = std::max(last, ev.at);
  return last;
}

std::vector<core::EpochWindow> FaultPlan::epoch_timeline(
    int n, Step run_end) const {
  return core::epoch_windows(n, membership_, run_end);
}

bool FaultPlan::member_at_end(int n, Pid p) const {
  const auto windows = epoch_timeline(n, /*run_end=*/last_event_step() + 1);
  const auto& final_members = windows.back().members;
  return p >= 0 && p < n && final_members[static_cast<std::size_t>(p)];
}

bool FaultPlan::crashed_at_end(Pid p) const {
  // Replay p's crash/restart events in the order the world applies them
  // (ascending step, crash before restart at the same step).
  struct Ev {
    Step at;
    bool restart;
  };
  std::vector<Ev> evs;
  for (const auto& ev : crashes_) {
    if (ev.pid == p) evs.push_back({ev.at, false});
  }
  for (const auto& ev : restarts_) {
    if (ev.pid == p) evs.push_back({ev.at, true});
  }
  std::sort(evs.begin(), evs.end(), [](const Ev& a, const Ev& b) {
    if (a.at != b.at) return a.at < b.at;
    return !a.restart && b.restart;
  });
  bool crashed = false;
  for (const auto& ev : evs) crashed = !ev.restart;
  return crashed;
}

bool FaultPlan::link_jam_dead(Pid w, Pid r, Step from, Step to) const {
  const auto covered = [&](LinkPart part) {
    return std::any_of(
        link_faults_.begin(), link_faults_.end(),
        [&](const LinkFaultEvent& f) {
          if (f.writer != w || f.reader != r) return false;
          if (f.kind != registers::RegFaultKind::Jam) return false;
          if (f.part != LinkPart::All && f.part != part) return false;
          return f.from <= from &&
                 (f.to == registers::kFaultForever || f.to >= to);
        });
  };
  // A jam admits no coin flip: every operation in its window aborts, so
  // single-window coverage of [from, to) means the register served
  // nothing there. The message register alone carries counters; the
  // heartbeat pair is only dead when BOTH registers are (the channel's
  // Figure 5 judgment survives on one healthy register).
  return covered(LinkPart::Msg) ||
         (covered(LinkPart::Hb1) && covered(LinkPart::Hb2));
}

bool FaultPlan::link_suppressed(Pid w, Pid r, Step from, Step to) const {
  if (link_jam_dead(w, r, from, to)) return true;
  // At this rate an abort flake is a jam for all practical purposes:
  // with the sweep's windows, runs of consecutive aborted rounds long
  // enough to confirm a jam streak recur throughout [from, to).
  constexpr double kFlakeJamRate = 0.9;
  const auto covered = [&](LinkPart part, auto&& qualifies) {
    return std::any_of(
        link_faults_.begin(), link_faults_.end(),
        [&](const LinkFaultEvent& f) {
          if (f.writer != w || f.reader != r) return false;
          if (!qualifies(f)) return false;
          if (f.part != LinkPart::All && f.part != part) return false;
          return f.from <= from &&
                 (f.to == registers::kFaultForever || f.to >= to);
        });
  };
  // A torn, stale or frozen stamp is NEGATIVE evidence, unlike an abort
  // (which Figure 5 treats as fresh): one bad heartbeat register breaks
  // the freshness conjunction, r judges w inactive, and Figure 6 line 52
  // punishes w out of every leadership choice. The same faults on the
  // message register alone are benign for w's progress: torn and stale
  // stamps are caught by checksum/regression evidence and the
  // quarantined counter view is skipped in elections, while a dropped
  // counter is repaired by the periodic refresh.
  const auto corrupting = [](const LinkFaultEvent& f) {
    return f.kind == registers::RegFaultKind::Torn ||
           f.kind == registers::RegFaultKind::Stale ||
           f.kind == registers::RegFaultKind::Drop;
  };
  if (covered(LinkPart::Hb1, corrupting) ||
      covered(LinkPart::Hb2, corrupting)) {
    return true;
  }
  // A near-total abort flake behaves like the jam it almost is: message
  // writes abort, dest = writeDone gates the heartbeats off, and r
  // punishes the silence; on the heartbeat pair the all-abort streak
  // confirms as a jam. Lighter flakes (and any flake on a single
  // heartbeat register) leave enough sound fresh rounds through.
  const auto heavy_flake = [](const LinkFaultEvent& f) {
    return f.kind == registers::RegFaultKind::Flake &&
           f.rate >= kFlakeJamRate;
  };
  return covered(LinkPart::Msg, heavy_flake) ||
         (covered(LinkPart::Hb1, heavy_flake) &&
          covered(LinkPart::Hb2, heavy_flake));
}

bool FaultPlan::link_partitioned(int n, Step from, Step to) const {
  // Below this rate the periodic counter refresh lands often enough to
  // thaw the reader's view well inside the completion-gap bound.
  constexpr double kDropPartitionRate = 0.95;
  return std::any_of(
      link_faults_.begin(), link_faults_.end(),
      [&](const LinkFaultEvent& f) {
        if (f.kind != registers::RegFaultKind::Drop) return false;
        if (f.part != LinkPart::Msg) return false;
        if (f.rate < kDropPartitionRate) return false;
        if (f.writer >= n || f.reader >= n) return false;
        if (crashed_at_end(f.writer) || crashed_at_end(f.reader)) {
          return false;
        }
        return f.from <= from &&
               (f.to == registers::kFaultForever || f.to >= to);
      });
}

std::vector<Pid> FaultPlan::channel_degraded(int n, Step from,
                                             Step to) const {
  std::vector<Pid> degraded;
  if (link_faults_.empty()) return degraded;
  for (Pid p = 0; p < n; ++p) {
    for (Pid q = 0; q < n; ++q) {
      if (q == p || crashed_at_end(q)) continue;
      if (link_suppressed(p, q, from, to)) {
        degraded.push_back(p);
        break;
      }
    }
  }
  return degraded;
}

std::vector<Step> FaultPlan::phase_boundaries(Step run_end) const {
  std::vector<Step> edges{0, run_end};
  auto add = [&](Step s) {
    if (s > 0 && s < run_end) edges.push_back(s);
  };
  for (const auto& ev : crashes_) add(ev.at);
  for (const auto& ev : restarts_) add(ev.at);
  for (const auto& st : stutters_) {
    add(st.from);
    add(st.to);
  }
  for (const auto& storm : storms_) {
    add(storm.from);
    add(storm.to);
  }
  for (const auto& f : link_faults_) {
    add(f.from);
    if (f.to != registers::kFaultForever) add(f.to);
  }
  for (const auto& ev : membership_) add(ev.at);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  out << "fault plan seed=" << seed_ << "\n";
  for (const auto& ev : crashes_) {
    out << "  crash   p" << ev.pid << " at " << ev.at << "\n";
  }
  for (const auto& ev : restarts_) {
    out << "  restart p" << ev.pid << " at " << ev.at << "\n";
  }
  for (const auto& st : stutters_) {
    out << "  stutter p" << st.pid << " in [" << st.from << ", " << st.to
        << ") period " << st.period << "\n";
  }
  for (const auto& storm : storms_) {
    out << "  storm   group '" << storm.group << "' in [" << storm.from
        << ", " << storm.to << ") rate " << storm.rate << "\n";
  }
  for (const auto& f : link_faults_) {
    out << "  link    p" << f.writer << "->p" << f.reader << " "
        << to_string(f.part) << " " << registers::to_string(f.kind)
        << " in [" << f.from << ", ";
    if (f.to == registers::kFaultForever) {
      out << "forever";
    } else {
      out << f.to;
    }
    out << ") rate " << f.rate << "\n";
  }
  for (const auto& ev : membership_) {
    out << "  view    " << core::describe(ev) << "\n";
  }
  if (empty()) out << "  (no events)\n";
  return out.str();
}

}  // namespace tbwf::sim
