// Per-process activity patterns used to drive timeliness-controlled
// schedules.
//
// The paper's adversary controls which process takes each step. An
// ActivitySpec describes one process's behaviour over a run:
//   - timely(bound):  guaranteed at least one step in every window of
//                     `bound` global steps (Definition 1's bound i)
//   - eager(weight):  competes for steps with the given weight but has no
//                     guarantee (under a fair random schedule it is
//                     usually timely with some run-dependent bound)
//   - flicker(on,off): alternates active windows (eligible for steps) and
//                     silent windows (takes no steps) forever -- the
//                     "repeatedly oscillates between timely and very
//                     slow" adversary from Section 1.1
//   - stall(from,to): one long silent interval, active otherwise
//   - silent():       never takes a step (present but starved)
// Any spec can additionally crash at a given step.
#pragma once

#include <vector>

#include "sim/types.hpp"
#include "sim/trace.hpp"

namespace tbwf::sim {

struct ActivitySpec {
  enum class Window { Always, Flicker, Stall, Silent, GrowingFlicker };

  double weight = 1.0;
  /// If > 0: while active, the schedule guarantees a step at least every
  /// `timely_bound` global steps.
  Step timely_bound = 0;

  Window window = Window::Always;
  Step flicker_on = 0;
  Step flicker_off = 0;
  Step phase = 0;
  Step stall_from = 0;
  Step stall_to = 0;

  Step crash_at = Trace::kNever;

  /// Is this process in an active window at global step t?
  bool active_at(Step t) const;

  static ActivitySpec timely(Step bound, double weight = 1.0);
  static ActivitySpec eager(double weight = 1.0);
  static ActivitySpec flicker(Step on, Step off, Step phase = 0,
                              double weight = 1.0);
  /// A flickering process that is guaranteed timely inside its active
  /// windows: it looks perfectly healthy, then disappears, forever.
  static ActivitySpec timely_flicker(Step bound, Step on, Step off,
                                     Step phase = 0);
  static ActivitySpec stall(Step from, Step to, double weight = 1.0);
  static ActivitySpec silent();
  /// Active windows of length `on` separated by silent windows that
  /// double every cycle (off0, 2*off0, 4*off0, ...): the process is
  /// *provably not timely* -- its step gaps grow without bound -- yet it
  /// is correct (takes infinitely many steps). This is the adversary
  /// needed for Definition 9's Property 6 and the paper's "flickering"
  /// processes in Section 4.
  static ActivitySpec growing_flicker(Step on, Step off0);

  ActivitySpec& crash(Step t) {
    crash_at = t;
    return *this;
  }
};

/// Convenience: n copies of the same spec.
std::vector<ActivitySpec> uniform_specs(int n, const ActivitySpec& spec);

}  // namespace tbwf::sim
