#include "sim/timeline.hpp"

#include "util/assert.hpp"

namespace tbwf::sim {

bool ActivitySpec::active_at(Step t) const {
  if (crash_at != Trace::kNever && t >= crash_at) return false;
  switch (window) {
    case Window::Always:
      return true;
    case Window::Silent:
      return false;
    case Window::Stall:
      return t < stall_from || t >= stall_to;
    case Window::Flicker: {
      const Step period = flicker_on + flicker_off;
      TBWF_ASSERT(period > 0, "flicker pattern needs a non-empty period");
      const Step pos = (t + phase) % period;
      return pos < flicker_on;
    }
    case Window::GrowingFlicker: {
      // Cycle k: `flicker_on` active steps, then flicker_off * 2^k silent
      // steps. Walk cycles until t falls inside one (O(log t) cycles).
      Step start = 0;
      Step off = flicker_off;
      for (;;) {
        if (t < start + flicker_on) return true;
        if (t < start + flicker_on + off) return false;
        start += flicker_on + off;
        if (off < (Step{1} << 62)) off *= 2;
      }
    }
  }
  return true;
}

ActivitySpec ActivitySpec::timely(Step bound, double weight) {
  TBWF_ASSERT(bound >= 1, "timeliness bound must be >= 1");
  ActivitySpec s;
  s.timely_bound = bound;
  s.weight = weight;
  return s;
}

ActivitySpec ActivitySpec::eager(double weight) {
  ActivitySpec s;
  s.weight = weight;
  return s;
}

ActivitySpec ActivitySpec::flicker(Step on, Step off, Step phase,
                                   double weight) {
  TBWF_ASSERT(on > 0 && off > 0, "flicker windows must be non-empty");
  ActivitySpec s;
  s.window = Window::Flicker;
  s.flicker_on = on;
  s.flicker_off = off;
  s.phase = phase;
  s.weight = weight;
  return s;
}

ActivitySpec ActivitySpec::timely_flicker(Step bound, Step on, Step off,
                                          Step phase) {
  ActivitySpec s = flicker(on, off, phase);
  s.timely_bound = bound;
  return s;
}

ActivitySpec ActivitySpec::stall(Step from, Step to, double weight) {
  TBWF_ASSERT(from < to, "stall interval must be non-empty");
  ActivitySpec s;
  s.window = Window::Stall;
  s.stall_from = from;
  s.stall_to = to;
  s.weight = weight;
  return s;
}

ActivitySpec ActivitySpec::silent() {
  ActivitySpec s;
  s.window = Window::Silent;
  return s;
}

ActivitySpec ActivitySpec::growing_flicker(Step on, Step off0) {
  TBWF_ASSERT(on > 0 && off0 > 0, "growing flicker windows must be non-empty");
  ActivitySpec s;
  s.window = Window::GrowingFlicker;
  s.flicker_on = on;
  s.flicker_off = off0;
  return s;
}

std::vector<ActivitySpec> uniform_specs(int n, const ActivitySpec& spec) {
  return std::vector<ActivitySpec>(static_cast<std::size_t>(n), spec);
}

}  // namespace tbwf::sim
