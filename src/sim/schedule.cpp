#include "sim/schedule.hpp"

#include "util/assert.hpp"

namespace tbwf::sim {

Pid RoundRobinSchedule::next(const WorldView& view) {
  const int n = view.n();
  for (int i = 1; i <= n; ++i) {
    const Pid candidate = (last_ + i) % n;
    if (view.runnable(candidate)) {
      last_ = candidate;
      return candidate;
    }
  }
  return kNoPid;
}

Pid RandomSchedule::next(const WorldView& view) {
  const int n = view.n();
  double total = 0;
  for (Pid p = 0; p < n; ++p) {
    if (!view.runnable(p)) continue;
    total += weights_.empty() ? 1.0 : weights_[p];
  }
  if (total <= 0) return kNoPid;
  double target = rng_.uniform01() * total;
  for (Pid p = 0; p < n; ++p) {
    if (!view.runnable(p)) continue;
    const double w = weights_.empty() ? 1.0 : weights_[p];
    target -= w;
    if (target <= 0) return p;
  }
  // Floating-point slack: return the last runnable pid.
  for (Pid p = n - 1; p >= 0; --p) {
    if (view.runnable(p)) return p;
  }
  return kNoPid;
}

Pid ScriptedSchedule::next(const WorldView& view) {
  const std::size_t size = script_.size();
  if (size == 0) return kNoPid;
  // Skip script entries for processes that are not runnable; a scripted
  // test is expected to keep its processes runnable, but crashes may
  // invalidate a suffix of the script.
  for (std::size_t tries = 0; tries < size; ++tries) {
    if (pos_ >= size) {
      if (!loop_) return kNoPid;
      pos_ = 0;
    }
    const Pid p = script_[pos_++];
    if (view.runnable(p)) return p;
  }
  return kNoPid;
}

Pid ContentionSchedule::next(const WorldView& view) {
  // Phase 1: find a victim without a pending op and step it until its
  // next operation opens (it becomes "armed").
  for (std::size_t i = 0; i < victims_.size(); ++i) {
    const Pid v = victims_[(cursor_ + i) % victims_.size()];
    if (view.runnable(v) && !view.has_pending_op(v)) {
      cursor_ = (cursor_ + i) % victims_.size();
      return v;
    }
  }
  // Phase 2: every runnable victim is armed -- release them one by one;
  // their responses now all overlap.
  for (std::size_t i = 0; i < victims_.size(); ++i) {
    const Pid v = victims_[(cursor_ + i) % victims_.size()];
    if (view.runnable(v)) {
      cursor_ = (cursor_ + i + 1) % victims_.size();
      return v;
    }
  }
  // No victim runnable: round-robin the rest.
  const int n = view.n();
  for (int i = 1; i <= n; ++i) {
    const Pid candidate = (rr_last_ + i) % n;
    if (view.runnable(candidate)) {
      rr_last_ = candidate;
      return candidate;
    }
  }
  return kNoPid;
}

TimelinessSchedule::TimelinessSchedule(std::vector<ActivitySpec> specs,
                                       std::uint64_t seed)
    : specs_(std::move(specs)), rng_(seed) {
  last_step_.assign(specs_.size(), Trace::kNever);
}

Pid TimelinessSchedule::next(const WorldView& view) {
  const int n = view.n();
  TBWF_ASSERT(static_cast<std::size_t>(n) == specs_.size(),
              "spec count must equal process count");
  const Step t = view.now();

  // 1. A process with a timeliness guarantee whose deadline has arrived
  //    must be scheduled now; pick the most overdue (then smallest pid).
  Pid due_pid = kNoPid;
  Step due_slack = 0;
  for (Pid p = 0; p < n; ++p) {
    const auto& spec = specs_[p];
    if (spec.timely_bound == 0) continue;
    if (!view.runnable(p) || !spec.active_at(t)) continue;
    // last == kNever means "no step yet": the prefix gap must also stay
    // below the bound, so treat the virtual last step as step -1.
    const Step last = last_step_[p];
    const Step elapsed = (last == Trace::kNever) ? t + 1 : t - last;
    if (elapsed >= spec.timely_bound) {
      const Step slack = elapsed - spec.timely_bound;
      if (due_pid == kNoPid || slack > due_slack) {
        due_pid = p;
        due_slack = slack;
      }
    }
  }
  if (due_pid != kNoPid) {
    last_step_[due_pid] = t;
    return due_pid;
  }

  // 2. Otherwise: weighted random among active, runnable processes.
  double total = 0;
  for (Pid p = 0; p < n; ++p) {
    if (view.runnable(p) && specs_[p].active_at(t)) total += specs_[p].weight;
  }
  if (total > 0) {
    double target = rng_.uniform01() * total;
    for (Pid p = 0; p < n; ++p) {
      if (!view.runnable(p) || !specs_[p].active_at(t)) continue;
      target -= specs_[p].weight;
      if (target <= 0) {
        last_step_[p] = t;
        return p;
      }
    }
  }

  // 3. Everyone active is blocked/silent. Rather than deadlock the run,
  //    grant the step to any runnable process (time must advance: the
  //    model has one step per time unit as long as someone is alive).
  for (Pid p = 0; p < n; ++p) {
    if (view.runnable(p)) {
      last_step_[p] = t;
      return p;
    }
  }
  return kNoPid;
}

std::vector<Pid> TimelinessSchedule::intended_timely() const {
  std::vector<Pid> result;
  for (Pid p = 0; p < static_cast<Pid>(specs_.size()); ++p) {
    const auto& s = specs_[p];
    if (s.timely_bound > 0 && s.window == ActivitySpec::Window::Always &&
        s.crash_at == Trace::kNever) {
      result.push_back(p);
    }
  }
  return result;
}

}  // namespace tbwf::sim
