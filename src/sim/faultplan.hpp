// FaultPlan: a declarative, seed-replayable timeline of faults for one
// run -- the chaos harness's input.
//
// A plan is a set of events over model time:
//   - Crash{p, at}:    p crashes at step `at` (pending op settled there);
//   - Restart{p, at}:  p revives with fresh root sub-tasks (shared
//                      registers keep their values);
//   - StutterPhase{p, from, to, period}: p is untimely inside the
//                      window -- one step per `period` at most -- then
//                      timely again (applied by ChaosSchedule);
//   - AbortStorm{group, from, to, rate}: every PhasedAbortPolicy armed
//                      for `group` aborts contended operations with
//                      probability `rate` inside the window.
//
// Plans map onto the paper's run definitions: a crash is Definition 2's
// crashed process; a stutter makes the realized timeliness bound
// (Definition 1) exceed `period` for the window, i.e. the process drops
// out of the timely set exactly there; a restart creates the
// "subsequently timely" process whose graded guarantee the conformance
// checker re-derives. generate() draws a random but deterministic plan
// from a seed, so any failing sweep case replays from its seed alone.
//
// Degraded links: a LinkFault degrades the channel registers of one
// SWSR link (MsgRegister[p,q] and/or the HbRegister pair) beyond the
// abortable-register spec -- jams, silent drops, stale serves, torn
// writes (registers/reg_faults.hpp). Faults are armed on a
// RegisterFaultInjector; the conformance checker uses the plan's
// link_jam_dead/channel_degraded views to refuse wait-free verdicts a
// jammed medium cannot earn.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/membership.hpp"
#include "registers/reg_faults.hpp"
#include "sim/chaos_schedule.hpp"
#include "sim/types.hpp"

namespace tbwf::registers {
class PhasedAbortPolicy;
}  // namespace tbwf::registers

namespace tbwf::sim {

class World;

struct CrashEvent {
  Pid pid = kNoPid;
  Step at = 0;
};

struct RestartEvent {
  Pid pid = kNoPid;
  Step at = 0;
};

/// Escalated aborts on the registers of one policy group ("" = every
/// armed policy) inside [from, to).
struct AbortStorm {
  std::string group;
  Step from = 0;
  Step to = 0;
  double rate = 1.0;
  double p_effect = 0.5;
};

/// Which channel registers of the SWSR link writer -> reader a
/// LinkFault covers: the Figure 4 message register, one or both of the
/// Figure 5 heartbeat pair, or all three.
enum class LinkPart : std::uint8_t { All, Msg, Hb1, Hb2 };

const char* to_string(LinkPart part);

/// A degraded-medium fault on the channel registers of one link inside
/// [from, to); to == registers::kFaultForever never closes.
struct LinkFaultEvent {
  Pid writer = kNoPid;
  Pid reader = kNoPid;
  LinkPart part = LinkPart::All;
  registers::RegFaultKind kind = registers::RegFaultKind::Flake;
  Step from = 0;
  Step to = 0;
  double rate = 1.0;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // -- builders ---------------------------------------------------------------
  FaultPlan& crash(Pid p, Step at);
  FaultPlan& restart(Pid p, Step at);
  FaultPlan& stutter(Pid p, Step from, Step to, Step period);
  FaultPlan& abort_storm(std::string group, Step from, Step to, double rate,
                         double p_effect = 0.5);
  FaultPlan& link_fault(Pid writer, Pid reader, LinkPart part,
                        registers::RegFaultKind kind, Step from, Step to,
                        double rate = 1.0);
  /// Membership events (epoch-based reconfiguration): each bumps the
  /// view epoch at `at` (applied by a sim::MembershipDirector).
  FaultPlan& join(Pid p, Step at);
  FaultPlan& leave(Pid p, Step at);
  FaultPlan& replace(Pid out, Pid in, Step at);

  // -- random generation --------------------------------------------------------
  struct GenOptions {
    int n = 2;
    /// Events are drawn inside [horizon * 0.05, horizon * (1 - quiet_tail)].
    Step horizon = 1000000;
    /// Last fraction of the horizon kept event-free: the stable tail the
    /// conformance checker asserts the graded guarantees over.
    double quiet_tail = 0.4;
    int max_crash_cycles = 2;  ///< crash (optionally + restart) pairs
    int max_stutters = 2;
    int max_storms = 1;
    double p_restart = 0.75;  ///< chance a crash is followed by a restart
    Step min_stutter_period = 64;
    Step max_stutter_period = 4096;
    /// Unless set, one process is kept free of permanent crashes so the
    /// run always has a survivor.
    bool allow_crash_all = false;
    /// Group label stamped on generated storms ("" = every policy).
    std::string storm_group;
    /// Degraded links, all off by default: a plan generated without
    /// them is unchanged draw for draw, so existing seeds replay byte
    /// for byte. Each link fault picks an ordered pair, a part, a kind
    /// and a window.
    int max_link_faults = 0;
    /// Chance a link fault is a Jam (the rest split evenly over Drop,
    /// Stale, Torn and Flake).
    double p_link_jam = 0.5;
    /// Chance a link fault never heals (to = registers::kFaultForever).
    double p_link_permanent = 0.5;
    /// Membership churn, off by default: a plan generated without it is
    /// unchanged draw for draw (membership draws append after every
    /// other family), so existing seeds replay byte for byte. Each
    /// cycle removes `churn_pid` from the view and re-admits it (or,
    /// with p_replace, swaps it for itself via a replace event -- same
    /// set, two epoch bumps collapsed into one).
    int max_membership_cycles = 0;
    /// Pid the generated churn targets; kNoPid draws one per cycle.
    Pid churn_pid = kNoPid;
    /// Chance a cycle is a single replace event instead of leave+join.
    double p_replace = 0.25;
  };

  /// Deterministic: the same (seed, options) always yields the same plan.
  static FaultPlan generate(std::uint64_t seed, const GenOptions& options);

  // -- application --------------------------------------------------------------
  /// Schedule every crash and restart on the world.
  void install(World& world) const;

  /// Wrap `inner` in a ChaosSchedule applying this plan's stutter phases.
  std::unique_ptr<Schedule> wrap(std::unique_ptr<Schedule> inner) const;

  /// Push the storms matching `group` onto a phased abort policy. A storm
  /// with an empty group matches every policy; a policy armed with an
  /// empty group takes every storm.
  void arm(registers::PhasedAbortPolicy& policy,
           std::string_view group = "") const;

  /// Arm every link fault on `injector` against the channel registers
  /// it governs in `world`. Part -> register-name prefixes: Msg matches
  /// msg_prefix, Hb1/Hb2 match hb_prefix + "1"/"2", All matches all
  /// three. Returns the number of registers armed.
  int arm(registers::RegisterFaultInjector& injector, const World& world,
          const std::string& msg_prefix = "MsgRegister",
          const std::string& hb_prefix = "HbRegister") const;

  // -- introspection ------------------------------------------------------------
  std::uint64_t seed() const { return seed_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<RestartEvent>& restarts() const { return restarts_; }
  const std::vector<StutterPhase>& stutters() const { return stutters_; }
  const std::vector<AbortStorm>& storms() const { return storms_; }
  const std::vector<LinkFaultEvent>& link_faults() const {
    return link_faults_;
  }
  const std::vector<core::MembershipEvent>& membership() const {
    return membership_;
  }
  bool empty() const {
    return crashes_.empty() && restarts_.empty() && stutters_.empty() &&
           storms_.empty() && link_faults_.empty() && membership_.empty();
  }

  /// Step of the last event boundary (crash, restart, stutter end, storm
  /// end, membership event, finite link-fault end; a permanent link
  /// fault contributes its start); 0 for an empty plan. Everything
  /// after is the stable tail.
  Step last_event_step() const;

  /// Epoch timeline for a run of n processes ending at run_end: one
  /// window per view, everyone a member of epoch 0. A plan with no
  /// membership events yields the single all-member epoch.
  std::vector<core::EpochWindow> epoch_timeline(int n, Step run_end) const;

  /// True iff p is in the view the plan leaves in force at the end of
  /// the run (non-members are not graded for progress).
  bool member_at_end(int n, Pid p) const;

  /// True iff the plan crashes p without a later restart.
  bool crashed_at_end(Pid p) const;

  /// True iff the channel from writer w to reader r is jam-dead for the
  /// whole of [from, to): its message register is jam-covered, or BOTH
  /// heartbeat registers are. (One healthy heartbeat register still
  /// carries the Figure 5 judgment -- see omega/hb_channel.)
  bool link_jam_dead(Pid w, Pid r, Step from, Step to) const;

  /// True iff the channel w -> r denies w a leadership turn for the
  /// whole of [from, to). Beyond jam-death this covers the value
  /// faults: a torn/stale/dropped stamp on even ONE heartbeat register
  /// is negative evidence (unlike an abort) -- it breaks the Figure 5
  /// freshness conjunction, r judges w inactive, and Figure 6 punishes
  /// w out of every leadership choice -- and a near-total abort flake
  /// behaves like a jam (message writes abort, dest = writeDone gates
  /// the heartbeats off, r punishes the silence).
  bool link_suppressed(Pid w, Pid r, Step from, Step to) const;

  /// True iff some live pair's message register silently drops at a
  /// near-total rate through the whole of [from, to) while the
  /// heartbeat pair stays healthy. Neither side can detect this --
  /// writes report success, reads stay valid -- so the reader's counter
  /// view freezes while the writer still looks timely, and leadership
  /// can deadlock on a mutually-stale minimum. No liveness verdict over
  /// such a window is judgeable; the checker demands none.
  bool link_partitioned(int n, Step from, Step to) const;

  /// Pids unreachable over the channel layer through [from, to): some
  /// peer the plan leaves alive sees them only over a suppressed link.
  /// The conformance checker refuses to grade these pids timely there
  /// -- a faulted medium can never earn a wait-free verdict.
  std::vector<Pid> channel_degraded(int n, Step from, Step to) const;

  /// Step boundaries partitioning [0, run_end) into the plan's phases:
  /// 0, every event edge below run_end, run_end. Sorted, deduplicated.
  std::vector<Step> phase_boundaries(Step run_end) const;

  /// Human-readable one-per-line event list (starts with the seed).
  std::string summary() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<CrashEvent> crashes_;
  std::vector<RestartEvent> restarts_;
  std::vector<StutterPhase> stutters_;
  std::vector<AbortStorm> storms_;
  std::vector<LinkFaultEvent> link_faults_;
  std::vector<core::MembershipEvent> membership_;
};

}  // namespace tbwf::sim
