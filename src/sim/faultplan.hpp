// FaultPlan: a declarative, seed-replayable timeline of faults for one
// run -- the chaos harness's input.
//
// A plan is a set of events over model time:
//   - Crash{p, at}:    p crashes at step `at` (pending op settled there);
//   - Restart{p, at}:  p revives with fresh root sub-tasks (shared
//                      registers keep their values);
//   - StutterPhase{p, from, to, period}: p is untimely inside the
//                      window -- one step per `period` at most -- then
//                      timely again (applied by ChaosSchedule);
//   - AbortStorm{group, from, to, rate}: every PhasedAbortPolicy armed
//                      for `group` aborts contended operations with
//                      probability `rate` inside the window.
//
// Plans map onto the paper's run definitions: a crash is Definition 2's
// crashed process; a stutter makes the realized timeliness bound
// (Definition 1) exceed `period` for the window, i.e. the process drops
// out of the timely set exactly there; a restart creates the
// "subsequently timely" process whose graded guarantee the conformance
// checker re-derives. generate() draws a random but deterministic plan
// from a seed, so any failing sweep case replays from its seed alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/chaos_schedule.hpp"
#include "sim/types.hpp"

namespace tbwf::registers {
class PhasedAbortPolicy;
}  // namespace tbwf::registers

namespace tbwf::sim {

class World;

struct CrashEvent {
  Pid pid = kNoPid;
  Step at = 0;
};

struct RestartEvent {
  Pid pid = kNoPid;
  Step at = 0;
};

/// Escalated aborts on the registers of one policy group ("" = every
/// armed policy) inside [from, to).
struct AbortStorm {
  std::string group;
  Step from = 0;
  Step to = 0;
  double rate = 1.0;
  double p_effect = 0.5;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // -- builders ---------------------------------------------------------------
  FaultPlan& crash(Pid p, Step at);
  FaultPlan& restart(Pid p, Step at);
  FaultPlan& stutter(Pid p, Step from, Step to, Step period);
  FaultPlan& abort_storm(std::string group, Step from, Step to, double rate,
                         double p_effect = 0.5);

  // -- random generation --------------------------------------------------------
  struct GenOptions {
    int n = 2;
    /// Events are drawn inside [horizon * 0.05, horizon * (1 - quiet_tail)].
    Step horizon = 1000000;
    /// Last fraction of the horizon kept event-free: the stable tail the
    /// conformance checker asserts the graded guarantees over.
    double quiet_tail = 0.4;
    int max_crash_cycles = 2;  ///< crash (optionally + restart) pairs
    int max_stutters = 2;
    int max_storms = 1;
    double p_restart = 0.75;  ///< chance a crash is followed by a restart
    Step min_stutter_period = 64;
    Step max_stutter_period = 4096;
    /// Unless set, one process is kept free of permanent crashes so the
    /// run always has a survivor.
    bool allow_crash_all = false;
    /// Group label stamped on generated storms ("" = every policy).
    std::string storm_group;
  };

  /// Deterministic: the same (seed, options) always yields the same plan.
  static FaultPlan generate(std::uint64_t seed, const GenOptions& options);

  // -- application --------------------------------------------------------------
  /// Schedule every crash and restart on the world.
  void install(World& world) const;

  /// Wrap `inner` in a ChaosSchedule applying this plan's stutter phases.
  std::unique_ptr<Schedule> wrap(std::unique_ptr<Schedule> inner) const;

  /// Push the storms matching `group` onto a phased abort policy. A storm
  /// with an empty group matches every policy; a policy armed with an
  /// empty group takes every storm.
  void arm(registers::PhasedAbortPolicy& policy,
           std::string_view group = "") const;

  // -- introspection ------------------------------------------------------------
  std::uint64_t seed() const { return seed_; }
  const std::vector<CrashEvent>& crashes() const { return crashes_; }
  const std::vector<RestartEvent>& restarts() const { return restarts_; }
  const std::vector<StutterPhase>& stutters() const { return stutters_; }
  const std::vector<AbortStorm>& storms() const { return storms_; }
  bool empty() const {
    return crashes_.empty() && restarts_.empty() && stutters_.empty() &&
           storms_.empty();
  }

  /// Step of the last event boundary (crash, restart, stutter end, storm
  /// end); 0 for an empty plan. Everything after is the stable tail.
  Step last_event_step() const;

  /// True iff the plan crashes p without a later restart.
  bool crashed_at_end(Pid p) const;

  /// Step boundaries partitioning [0, run_end) into the plan's phases:
  /// 0, every event edge below run_end, run_end. Sorted, deduplicated.
  std::vector<Step> phase_boundaries(Step run_end) const;

  /// Human-readable one-per-line event list (starts with the seed).
  std::string summary() const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<CrashEvent> crashes_;
  std::vector<RestartEvent> restarts_;
  std::vector<StutterPhase> stutters_;
  std::vector<AbortStorm> storms_;
};

}  // namespace tbwf::sim
