// Fundamental identifiers for the simulated shared-memory system.
//
// The model follows the paper (Section 3): n >= 2 processes
// Pi = {0, ..., n-1} take interleaved steps; at most one step per time
// unit, so "time" and the global step counter coincide.
#pragma once

#include <cstdint>

namespace tbwf::sim {

/// Process identifier, 0 .. n-1.
using Pid = int;

/// Global step counter == model time (one step per time unit).
using Step = std::uint64_t;

/// Unique id of a single register operation (invocation..response).
using OpId = std::uint64_t;

/// Sentinel for "no process".
inline constexpr Pid kNoPid = -1;

/// Register kinds supported by the simulator.
enum class RegKind : std::uint8_t {
  Atomic,     ///< MWMR atomic register (linearized at response step)
  Safe,       ///< reads overlapping a write return arbitrary values
  Abortable,  ///< concurrent ops may abort (return bottom); solo ops succeed
};

const char* to_string(RegKind kind);

}  // namespace tbwf::sim
