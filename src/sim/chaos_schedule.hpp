// ChaosSchedule: a composable decorator that applies timing-degradation
// phases ("stutters") from a FaultPlan on top of any inner schedule.
//
// A StutterPhase makes one process untimely for a window of model time:
// inside [from, to) the process is blacked out except at one step in
// every `period`, so its realized timeliness bound in the window is at
// least `period` -- the paper's "p is timely, then oscillates between
// timely and very slow, then recovers" adversary (Section 1.1), made
// finite. Outside its windows the process competes normally, so the
// inner schedule's guarantees (round-robin fairness, TimelinessSchedule
// bounds, contention adversary, ...) resume untouched.
//
// The decorator only filters the WorldView the inner schedule sees; it
// adds no randomness of its own, so determinism and replay are exactly
// the inner schedule's.
#pragma once

#include <memory>
#include <vector>

#include "sim/schedule.hpp"
#include "sim/types.hpp"

namespace tbwf::sim {

/// One timing-degradation window for one process. During [from, to) the
/// process is eligible for steps only when (t - from) % period == 0.
struct StutterPhase {
  Pid pid = kNoPid;
  Step from = 0;
  Step to = 0;
  Step period = 1;
};

class ChaosSchedule final : public Schedule {
 public:
  ChaosSchedule(std::unique_ptr<Schedule> inner,
                std::vector<StutterPhase> stutters);

  Pid next(const WorldView& view) override;

  /// True iff some stutter phase makes p ineligible at step t.
  bool blacked_out(Pid p, Step t) const;

  Schedule& inner() { return *inner_; }

 private:
  std::unique_ptr<Schedule> inner_;
  std::vector<StutterPhase> stutters_;
};

}  // namespace tbwf::sim
