// RtLeaderService: the leader-routed request service on real threads --
// the rt twin of SimLeaderService, built on the fenced LeaseElector.
//
// Every supervised worker runs BOTH roles each pump -- server half
// first (so a vacant lease is re-won before anyone burns route patience
// on it), then client half. The server half competes for the lease,
// scans tails while leading, applies the new requests to the shared
// abortable state cell under the fence, publishes watermarks, and
// voluntarily rotates after `tenure_rounds` serving rounds
// (canonical-use fairness: wait for the fence to advance or a bounded
// timeout before re-competing). The client half routes request batches
// by observing elector.owner() (advice mode trusts the first live
// owner; probe mode demands `confirm_probes` consecutive identical
// observations, one yield per probe), publishes them on its
// single-writer tail counter and completes them against the leader's
// ack/commit watermarks.
//
// Routing buys latency, not correctness: delivery is via the tail
// counters, so a stale or absent owner costs route time while the
// published batch stays servable by whoever leads next. The route loop
// gives up after `route_patience` probes and retries next pump so a
// leaderless startup or outage can never wedge the pump loop.
//
// Crash model: per-thread slots are touched only by their own worker
// thread; the supervisor's monitor joins a dead incarnation before
// spawning its replacement, which orders the accesses. Client
// bookkeeping survives incarnations (durable client); server
// bookkeeping is reset on election, so a new leader rescans
// conservatively from zero -- re-acking is harmless (clients take
// monotone maxima) and re-applying only over-counts the at-least-once
// state cell. Commit watermarks are repaired every `repair_every`
// rounds against stale deposed-leader writes, as in the sim service.
//
// Trace discipline: one kOpStart per submitted batch, one kOpComplete
// per drain (arg = requests drained), NOT one pair per request -- a
// full soak pushes millions of requests through a bounded trace ring,
// and per-request events would evict the stable suffix the conformance
// checker needs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "rt/rt_membership.hpp"
#include "rt/rt_supervisor.hpp"
#include "rt/rt_tbwf.hpp"
#include "util/cacheline.hpp"
#include "util/metrics.hpp"
#include "soak/service_stats.hpp"

namespace tbwf::soak {

struct RtServiceOptions {
  RouteMode route = RouteMode::kProbe;
  /// Probe-mode confirmation threshold (advice mode ignores it).
  int confirm_probes = 3;
  /// Requests per routed batch.
  int batch = 8;
  /// Max pending requests per client; submission pauses at the cap so a
  /// frozen service shows up as a commit stall, not unbounded memory.
  int max_inflight = 64;
  /// Route probes before giving up on this pump and retrying later.
  /// Deliberately small: a failed route costs one pump and the server
  /// half runs in between, so short patience keeps a vacant lease from
  /// soaking up milliseconds of probing during every handover.
  int route_patience = 16;
  /// Leadership stint length before voluntary rotation. Time-based, not
  /// round-based: idle pump rounds complete in microseconds, so a
  /// round-counted stint finishes almost instantly and the service
  /// spends most of its life in rotation vacancy (observed: ~50us
  /// stints behind ~200us+ handovers).
  std::uint64_t tenure_ns = 2000000;
  /// Serving rounds between commit-watermark repair scans (0 = never).
  int repair_every = 64;
  /// Bounded state-apply attempts per server pump; an unapplied backlog
  /// is kept and retried so a storm or jam window stalls instead of
  /// spinning.
  int apply_attempts = 8;
  /// Post-release rotation wait: fence advance or this timeout.
  std::uint64_t rotation_wait_ns = 200000;
  /// Starting lease term. The calibrator adapts it to the observed
  /// inter-renewal gap but never below term_floor_ns: on a timesliced
  /// box the gap EWMA is swamped by sub-us same-burst renewals, and a
  /// micro-term reads as "no leader" at every sampled instant even
  /// while commits flow (observed: 98% phantom unavailability).
  std::chrono::nanoseconds lease_term = std::chrono::milliseconds(4);
  std::uint64_t term_floor_ns = 2000000;
  std::uint64_t term_ceil_ns = 20000000;
  /// Drift-margin guard forwarded to the LeaseCalibrator: assume own
  /// clock may run this many ppm fast and shorten claimed terms
  /// accordingly. 0 (default) = trust the clock, exactly the pre-PR-8
  /// behaviour; the soak harness sets it when clock faults are on.
  std::uint64_t drift_margin_ppm = 0;
};

class RtLeaderService {
 public:
  RtLeaderService(int nthreads, RtServiceOptions options);

  /// Expose the state cell to the supervisor's storm/reg-fault
  /// injector. Call before RtSupervisor::run().
  void attach_storms(rt::RtSupervisor& supervisor) {
    state_.set_injector(&supervisor.injector());
  }

  /// Fence off a dead incarnation's lease before its replacement runs,
  /// and restart the term calibration: the replacement must not inherit
  /// the corpse's timing estimate.
  std::function<void(std::uint32_t, std::uint32_t)> on_restart() {
    return [this](std::uint32_t tid, std::uint32_t) {
      elector_.revoke(tid);
      calibrator_.reset(
          static_cast<std::uint64_t>(options_.lease_term.count()) / 32);
    };
  }

  /// Apply a plan membership event (supervisor monitor thread): bump
  /// the packed view, and for a departing seat revoke its lease -- the
  /// monotone fence then rejects the removed leader's stale token
  /// before its next state write (kStaleFenceBlocked), which is the rt
  /// epoch fence. A joining/replacing seat restarts the term
  /// calibration like a restart does.
  std::function<void(const core::MembershipEvent&)> on_membership() {
    return [this](const core::MembershipEvent& event) {
      membership_.apply(event);
      if (event.kind == core::MembershipKind::kLeave ||
          event.kind == core::MembershipKind::kReplace) {
        elector_.revoke(static_cast<std::uint32_t>(event.pid));
      }
      if (event.kind == core::MembershipKind::kJoin ||
          event.kind == core::MembershipKind::kReplace) {
        calibrator_.reset(
            static_cast<std::uint64_t>(options_.lease_term.count()) / 32);
      }
    };
  }

  rt::RtMembership& membership() { return membership_; }
  const rt::RtMembership& membership() const { return membership_; }

  rt::RtWorkerBody body() {
    return [this](rt::RtWorkerContext& ctx) { run_worker(ctx); };
  }

  rt::LeaseElector& elector() { return elector_; }

  /// Merged request statistics. Quiescent-only (after run() joined).
  ServiceStats stats() const;

  /// Final shared-state value (diagnostics). Quiescent-only.
  std::int64_t state_value();

 private:
  enum class Role : std::uint8_t { kFollower, kLeader, kRotating };

  struct Pending {
    std::int64_t seq = 0;
    std::uint64_t submitted_ns = 0;
    bool acked = false;
  };

  /// Per-thread slot, touched only by its own worker thread (the
  /// monitor's join happens-before the replacement incarnation).
  struct Slot {
    // Client half: survives incarnations (durable client).
    std::int64_t next_seq = 1;
    std::int64_t ack_seen = 0;
    std::int64_t commit_seen = 0;
    std::deque<Pending> pending;
    ServiceStats stats;
    // Server half: reset on election / incarnation boot.
    Role role = Role::kFollower;
    std::uint64_t token = 0;
    std::uint64_t last_renew_ns = 0;
    std::uint64_t stint_begin_ns = 0;
    std::uint64_t fence_at_release = 0;
    std::uint64_t rotate_wait_begin_ns = 0;
    std::uint64_t rounds_total = 0;
    std::vector<std::int64_t> acked;
    std::vector<std::int64_t> committed;
    std::int64_t backlog = 0;
    int lost_elections = 0;
    std::uint64_t pumps = 0;
    std::uint64_t undrained_log = 0;
  };

  void run_worker(rt::RtWorkerContext& ctx);
  void client_pump(rt::RtWorkerContext& ctx, Slot& slot);
  void server_pump(rt::RtWorkerContext& ctx, Slot& slot);
  bool route(rt::RtWorkerContext& ctx, Slot& slot);

  const RtServiceOptions options_;
  const int nthreads_;
  rt::LeaseElector elector_;
  rt::LeaseCalibrator calibrator_;
  /// Current election view; mutated only through on_membership (the
  /// supervisor's monitor thread). Clients keep running regardless of
  /// membership -- the leader serves every tail -- but only members
  /// compete for the lease.
  rt::RtMembership membership_;
  rt::RtAbortableReg<std::int64_t> state_;
  /// Striped watermark counters: tails_[t] is written by client t and
  /// read by the leader; acks_/commits_[t] are written by the leader
  /// and read by client t.
  std::unique_ptr<util::CachelinePadded<std::atomic<std::int64_t>>[]> tails_;
  std::unique_ptr<util::CachelinePadded<std::atomic<std::int64_t>>[]> acks_;
  std::unique_ptr<util::CachelinePadded<std::atomic<std::int64_t>>[]>
      commits_;
  std::vector<Slot> slots_;
};

}  // namespace tbwf::soak
