#include "soak/soak.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "omega/candidate_drivers.hpp"
#include "omega/omega_abortable.hpp"
#include "omega/omega_registers.hpp"
#include "registers/abort_policy.hpp"
#include "registers/reg_faults.hpp"
#include "rt/rt_registers.hpp"
#include "sim/schedule.hpp"
#include "sim/world.hpp"

namespace tbwf::soak {

// -- sim ------------------------------------------------------------------------

const char* to_string(SimBackend backend) {
  switch (backend) {
    case SimBackend::kAtomic: return "atomic";
    case SimBackend::kAbortable: return "abortable";
  }
  return "?";
}

const char* to_string(MembershipMode mode) {
  switch (mode) {
    case MembershipMode::kStatic: return "static";
    case MembershipMode::kFlicker: return "flicker";
    case MembershipMode::kEpochChurn: return "epoch-churn";
  }
  return "?";
}

SloBudget default_sim_budget(sim::Step run_steps) {
  SloBudget budget;
  budget.route_p99 = 20000;
  budget.commit_p99 = 80000;
  budget.commit_p999 = run_steps / 10;
  budget.max_unavailable_fraction = 0.25;
  budget.max_outage = run_steps / 4;
  budget.min_completed_fraction = 0.9;
  budget.max_commit_stall = run_steps / 10;
  return budget;
}

SimSoakOptions SimSoakOptions::quick(std::uint64_t seed,
                                     SimBackend backend) {
  SimSoakOptions options;
  options.backend = backend;
  options.seed = seed;
  options.run_steps = 1200000;
  options.horizon = 240000;
  options.conformance.stabilization = 300000;
  options.conformance.max_completion_gap = 250000;
  options.conformance.min_suffix = 200000;
  options.budget = default_sim_budget(options.run_steps);
  return options;
}

SimSoakOptions SimSoakOptions::full(std::uint64_t seed,
                                    SimBackend backend) {
  // The struct defaults ARE the acceptance scale.
  SimSoakOptions options;
  options.backend = backend;
  options.seed = seed;
  return options;
}

namespace {

sim::FaultPlan::GenOptions sim_gen_options(const SimSoakOptions& options) {
  sim::FaultPlan::GenOptions gen;
  gen.n = options.n;
  gen.horizon = options.horizon;
  gen.quiet_tail = 0.4;
  gen.max_crash_cycles = 2;
  gen.max_stutters = 2;
  gen.p_restart = 0.9;
  if (options.backend == SimBackend::kAbortable) {
    gen.max_storms = 1;
    gen.max_link_faults = 2;
    // Every drawn link fault heals: the soak's degraded channels are
    // quarantine-and-rejoin cycles. Permanent jams are a deliberate
    // breach scenario, not background churn.
    gen.p_link_permanent = 0.0;
  }
  if (options.membership == MembershipMode::kEpochChurn) {
    // Membership draws append after every other family, so flicker- and
    // static-mode plans from the same seed are unchanged draw for draw.
    // Churn only the spare clientless seat: removing a routed client's
    // seat would (correctly) starve its router, which is a different
    // scenario than background reconfiguration churn.
    gen.max_membership_cycles = 2;
    gen.churn_pid = options.n - 1;
  }
  return gen;
}

/// Degraded-sweep health tuning: quarantine must confirm AND heal well
/// inside the run, or a jam window freezes counter views into a
/// leader disagreement that outlives the churn.
omega::OmegaAbortable::Options soak_omega_options() {
  omega::OmegaAbortable::Options options;
  options.msg_refresh_period = 8;
  options.link_health.suspect_after = 12;
  options.link_health.jam_rounds = 8;
  options.link_health.heal_rounds = 2;
  options.link_health.write_jam_rounds = 64;
  options.link_health.probe_backoff = {/*base=*/16, /*cap=*/128,
                                       /*free_retries=*/0};
  return options;
}

void spawn_candidates(sim::World& world, const SimSoakOptions& options,
                      const SimLeaderService::LeaderView& view,
                      const sim::MembershipDirector* director) {
  for (sim::Pid p = 0; p < options.n; ++p) {
    // The view returns a reference into the omega backend's io array;
    // cast away const for the driver, which owns the CANDIDATE input.
    omega::OmegaIO* io = const_cast<omega::OmegaIO*>(&view(p));
    if (options.membership == MembershipMode::kEpochChurn) {
      world.spawn(p, "cand", [io, director](sim::SimEnv& env) {
        return omega::membership_candidate(env, *io, *director);
      });
    } else if (options.membership == MembershipMode::kFlicker &&
               p == options.n - 1) {
      world.spawn(p, "cand", [io](sim::SimEnv& env) {
        return omega::canonical_repeated_candidate(env, *io, 30000, 30000);
      });
    } else {
      world.spawn(p, "cand", [io](sim::SimEnv& env) {
        return omega::permanent_candidate(env, *io);
      });
    }
  }
}

std::vector<sim::Pid> issuing_clients(const SimLeaderService& service,
                                      const sim::FaultPlan& plan, int n) {
  std::vector<sim::Pid> issuing;
  for (const sim::Pid p : service.client_pids()) {
    // A client whose seat the plan leaves outside the final view is
    // not held to completion guarantees (the checker also grades it
    // untimely); with the generated churn pinned to the clientless
    // spare seat this only matters for hand-built plans.
    if (!plan.crashed_at_end(p) && plan.member_at_end(n, p)) {
      issuing.push_back(p);
    }
  }
  return issuing;
}

}  // namespace

SimSoakResult run_sim_soak(const SimSoakOptions& options) {
  SimSoakResult result;
  result.plan = options.plan_override
                    ? *options.plan_override
                    : (options.churn
                           ? sim::FaultPlan::generate(
                                 options.seed, sim_gen_options(options))
                           : sim::FaultPlan(options.seed));
  const sim::FaultPlan& plan = result.plan;

  sim::World world(options.n,
                   plan.wrap(std::make_unique<sim::RandomSchedule>(
                       options.seed * 991 + 7)));

  // Epoch-churn mode: a director applies the plan's membership events
  // at their steps; the election backends and the service fence on it.
  // Null in the other modes -- a null director changes no schedule and
  // no digest.
  std::unique_ptr<sim::MembershipDirector> director;
  if (options.membership == MembershipMode::kEpochChurn) {
    director = std::make_unique<sim::MembershipDirector>(options.n);
  }

  // Backend objects outlive the run via these scope-level owners.
  std::unique_ptr<omega::OmegaRegisters> om_atomic;
  std::unique_ptr<omega::OmegaAbortable> om_abortable;
  std::optional<registers::PhasedAbortPolicy> calm;
  std::optional<registers::RegisterFaultInjector> injector;
  SimLeaderService::LeaderView view;
  if (options.backend == SimBackend::kAtomic) {
    om_atomic = std::make_unique<omega::OmegaRegisters>(world);
    om_atomic->set_membership(director.get());
    om_atomic->install_all();
    view = [om = om_atomic.get()](sim::Pid p) -> const omega::OmegaIO& {
      return om->io(p);
    };
  } else {
    calm.emplace(options.seed * 5 + 2);
    plan.arm(*calm);
    // Channel registers run behind the fault injector; the calm phased
    // policy still rules whenever no register fault fires, so the
    // plan's abort storms stay in force.
    injector.emplace(options.seed * 13 + 11, &*calm);
    om_abortable = std::make_unique<omega::OmegaAbortable>(
        world, &*injector, soak_omega_options());
    om_abortable->set_membership(director.get());
    om_abortable->install_all();
    plan.arm(*injector, world);
    view = [om = om_abortable.get()](sim::Pid p) -> const omega::OmegaIO& {
      return om->io(p);
    };
  }

  spawn_candidates(world, options, view, director.get());

  SimServiceOptions service_options = options.service;
  if (service_options.client_pids.empty() &&
      options.membership != MembershipMode::kStatic) {
    // The flickering / churned candidate legitimately rests at "?" --
    // keep it clientless (see SimSoakOptions::membership).
    for (sim::Pid p = 0; p < options.n - 1; ++p) {
      service_options.client_pids.push_back(p);
    }
  }
  SimLeaderService service(world, view, service_options);
  service.set_membership(director.get());
  service.install();

  if (director) director->install(world, plan.membership());
  plan.install(world);
  world.run(options.run_steps);
  result.run_end = world.now();
  service.finish(result.run_end);

  result.stats = service.stats();
  result.availability = service.availability();
  result.slo = grade_slo(result.stats, result.availability, options.budget,
                         "steps", result.run_end);
  result.progress = core::check_chaos_conformance(
      world.trace(), service.log(), plan,
      issuing_clients(service, plan, options.n), options.conformance,
      &world.counters());
  result.joint = core::grade_service_run(
      result.progress, slo_summary(result.slo), &world.counters());
  result.trace_digest = world.trace().digest();
  result.state_value = service.state_value();
  return result;
}

std::string SimSoakResult::summary() const {
  std::ostringstream out;
  out << "sim soak: seed " << plan.seed() << ", " << stats.completed << "/"
      << stats.submitted << " requests over " << run_end
      << " steps, trace digest " << trace_digest << "\n"
      << joint.summary();
  return out.str();
}

sim::FaultPlan blackout_churn_plan(std::uint64_t seed, int n, int blackouts,
                                   sim::Step first_at, sim::Step spacing,
                                   sim::Step outage) {
  sim::FaultPlan plan(seed);
  for (int k = 0; k < blackouts; ++k) {
    const sim::Step at = first_at + static_cast<sim::Step>(k) * spacing;
    // Spare pid n-1: simulated time IS steps, so crashing every process
    // freezes the clock and the restart events would never come due.
    // The survivor keeps the world stepping; until it elects itself the
    // service is a guaranteed no-leader outage.
    for (sim::Pid p = 0; p < n - 1; ++p) {
      plan.crash(p, at);
      plan.restart(p, at + outage);
    }
  }
  return plan;
}

sim::FaultPlan view_thrash_plan(std::uint64_t seed, int n, int flips,
                                sim::Step first_at, sim::Step spacing) {
  sim::FaultPlan plan(seed);
  const sim::Pid spare = static_cast<sim::Pid>(n - 1);
  for (int k = 0; k < flips; ++k) {
    const sim::Step at = first_at + static_cast<sim::Step>(k) * spacing;
    if (k % 2 == 0) {
      plan.leave(spare, at);
    } else {
      plan.join(spare, at);
    }
  }
  return plan;
}

// -- rt -------------------------------------------------------------------------

SloBudget default_rt_budget(std::uint64_t run_ns) {
  SloBudget budget;
  budget.route_p99 = 5000000;     // 5 ms: timeslicing is multi-ms here
  budget.commit_p99 = 10000000;   // 10 ms
  budget.commit_p999 = 20000000;  // 20 ms
  budget.max_unavailable_fraction = 0.35;
  budget.max_outage = run_ns / 2;
  budget.min_completed_fraction = 0.8;
  budget.max_commit_stall = run_ns / 2;
  return budget;
}

RtSoakOptions RtSoakOptions::quick(std::uint64_t seed) {
  // The struct defaults ARE the smoke scale (~32 ms wall).
  RtSoakOptions options;
  options.seed = seed;
  return options;
}

RtSoakOptions RtSoakOptions::full(std::uint64_t seed) {
  RtSoakOptions options;
  options.seed = seed;
  options.horizon_ns = 2400000000ULL;  // 2.4 s of churn
  options.extra_run_ns = 800000000ULL;
  options.budget =
      default_rt_budget(options.horizon_ns + options.extra_run_ns);
  // Tens of millions of requests flow at this scale; batch them 32 at a
  // time (one op-event pair per batch) and keep a large ring so the
  // conformance suffix (~55% of the run) survives the event volume.
  // The memory cost is why the CI smoke job uses quick() instead.
  options.service.batch = 32;
  options.service.max_inflight = 256;
  options.trace_capacity = 1 << 21;
  return options;
}

namespace {

rt::RtFaultPlan::GenOptions rt_gen_options(const RtSoakOptions& options) {
  rt::RtFaultPlan::GenOptions gen;
  gen.nthreads = options.nthreads;
  gen.horizon_ns = options.horizon_ns;
  gen.max_kills = 2;
  gen.max_stalls = 2;
  gen.max_storms = 1;
  gen.max_reg_faults = 1;
  // As in the sim soak: background reg faults heal; a permanent jam is
  // the explicit breach scenario (jammed_medium_plan).
  gen.p_reg_permanent = 0.0;
  if (options.membership_churn) {
    // Membership draws append after every other family: plans without
    // churn are unchanged draw for draw. Spare seat only, as in sim.
    gen.max_membership_cycles = 2;
    gen.churn_tid = options.nthreads - 1;
  }
  if (options.clock_faults) {
    // Clock draws append after membership: plans without them are
    // unchanged draw for draw. Any seat may be hit -- the conformance
    // escape, not seat placement, is what keeps the run judgeable.
    gen.max_clock_faults = 2;
  }
  return gen;
}

}  // namespace

RtSoakResult run_rt_soak(const RtSoakOptions& options) {
  RtSoakResult result;
  result.plan =
      options.plan_override
          ? *options.plan_override
          : (options.churn ? rt::RtFaultPlan::generate(
                                 options.seed, rt_gen_options(options))
                           : rt::RtFaultPlan(options.seed));

  RtServiceOptions service_options = options.service;
  if (options.clock_faults && service_options.drift_margin_ppm == 0) {
    // Defend against the worst drift the generator can draw: the
    // calibrator shortens claimed terms so a fast-clocked leaseholder
    // undershoots the expiry everyone else computes.
    service_options.drift_margin_ppm = 200000;
  }
  RtLeaderService service(options.nthreads, service_options);
  rt::RtSupervisorOptions sup_options;
  sup_options.nthreads = options.nthreads;
  sup_options.run_for =
      std::chrono::nanoseconds(options.horizon_ns + options.extra_run_ns);
  sup_options.trace_capacity = options.trace_capacity;
  sup_options.on_restart = service.on_restart();
  // Always wired: it only fires for plans that carry membership events,
  // so a plain run pays one empty check per monitor wake.
  sup_options.on_membership = service.on_membership();
  rt::RtSupervisor supervisor(sup_options, result.plan, service.body());
  service.attach_storms(supervisor);

  // Availability sampler: its own thread and steady-clock origin (the
  // budgets consume durations and fractions, so origin alignment with
  // the supervisor does not matter). It stops itself at the run
  // deadline so the post-deadline join window -- workers stopped, lease
  // expiring -- cannot register a phantom outage.
  const std::uint64_t sample_until =
      options.horizon_ns + options.extra_run_ns;
  std::atomic<bool> sampler_stop{false};
  AvailabilityTracker availability;
  std::uint64_t sampler_end = 0;
  std::thread sampler([&] {
    const auto origin = std::chrono::steady_clock::now();
    const auto elapsed_ns = [&origin] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - origin)
              .count());
    };
    for (;;) {
      if (sampler_stop.load(std::memory_order_acquire)) break;
      const std::uint64_t at = elapsed_ns();
      if (at >= sample_until) break;
      availability.observe(
          at, service.elector().owner() == rt::LeaseElector::kNoOwner
                  ? ServiceState::kNoLeader
                  : ServiceState::kOk);
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(options.sample_period_ns));
    }
    sampler_end = elapsed_ns();
  });

  supervisor.run();
  sampler_stop.store(true, std::memory_order_release);
  sampler.join();
  availability.finish(sampler_end);

  result.run_end_ns = supervisor.run_end_ns();
  result.stats = service.stats();
  result.availability = availability;
  result.slo = grade_slo(result.stats, result.availability, options.budget,
                         "ns", result.run_end_ns);
  result.progress = core::check_rt_conformance(
      supervisor.snapshot(), result.plan, options.conformance,
      &supervisor.counters());
  result.joint = core::grade_service_run(
      result.progress, slo_summary(result.slo), &supervisor.counters());
  result.state_value = service.state_value();
  return result;
}

std::string RtSoakResult::summary() const {
  std::ostringstream out;
  out << "rt soak: seed " << plan.seed() << ", " << stats.completed << "/"
      << stats.submitted << " requests over " << run_end_ns << " ns\n"
      << joint.summary();
  return out.str();
}

rt::RtFaultPlan jammed_medium_plan(std::uint64_t seed,
                                   std::uint64_t from_ns) {
  rt::RtFaultPlan plan(seed);
  plan.reg_fault(registers::RegFaultKind::Jam, from_ns,
                 rt::RtAbortInjector::kForeverNs);
  return plan;
}

rt::RtFaultPlan rt_view_thrash_plan(std::uint64_t seed, int nthreads,
                                    int flips, std::uint64_t first_ns,
                                    std::uint64_t spacing_ns) {
  rt::RtFaultPlan plan(seed);
  const std::uint32_t spare = static_cast<std::uint32_t>(nthreads - 1);
  for (int k = 0; k < flips; ++k) {
    const std::uint64_t at = first_ns + static_cast<std::uint64_t>(k) * spacing_ns;
    if (k % 2 == 0) {
      plan.leave(spare, at);
    } else {
      plan.join(spare, at);
    }
  }
  return plan;
}

rt::RtFaultPlan rt_clock_breach_plan(std::uint64_t seed, int nthreads,
                                     int windows, std::uint64_t first_ns,
                                     std::uint64_t spacing_ns) {
  rt::RtFaultPlan plan(seed);
  const std::uint32_t spare = static_cast<std::uint32_t>(nthreads - 1);
  for (int k = 0; k < windows; ++k) {
    const std::uint64_t at =
        first_ns + static_cast<std::uint64_t>(k) * spacing_ns;
    // Alternating-sign skew, each window half the spacing: the spare
    // seat's clock flaps while every other seat stays honest. Kept
    // well under the elector's jump-suspect threshold -- the breach is
    // about the conformance axis, not the self-fencing defense.
    plan.clock_fault(rt::RtClockFaultKind::Skew, spare, at,
                     at + spacing_ns / 2,
                     (k % 2 == 0) ? 1500000 : -1500000);
  }
  return plan;
}

}  // namespace tbwf::soak
