// SLO grading for the leader-service soak: latency budgets (p99/p999
// per phase), availability budgets (cumulative and longest-outage),
// and end-state budgets (completion fraction, final commit stall),
// graded over one run's ServiceStats + AvailabilityTracker.
//
// The verdict is deliberately separate from the TBWF conformance
// verdict: progress conformance judges the paper's graded guarantees
// over the stable suffix, the SLO judges what the churn cost clients
// over the WHOLE run. A run can pass progress yet blow its budgets
// (heavy mid-run churn with a clean tail), or meet every budget while
// violating a graded guarantee. core::grade_service_run joins the two.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/conformance.hpp"
#include "soak/availability.hpp"
#include "soak/service_stats.hpp"

namespace tbwf::soak {

/// Budgets in the backend's time unit (sim steps / rt nanoseconds).
/// Zero (or negative, for the fractions) disables that budget --
/// a default-constructed SloBudget grades nothing and always passes.
struct SloBudget {
  std::uint64_t route_p99 = 0;
  std::uint64_t ack_p99 = 0;
  std::uint64_t commit_p99 = 0;
  std::uint64_t commit_p999 = 0;
  /// Cumulative outage budget as a fraction of the observed span.
  double max_unavailable_fraction = -1.0;
  /// Longest single outage window tolerated.
  std::uint64_t max_outage = 0;
  /// completed / submitted at run end; in-flight tails and crash-lost
  /// requests eat into this.
  double min_completed_fraction = -1.0;
  /// Budget on run_end - last commit observation: catches a service
  /// frozen mid-run (e.g. a permanently jammed commit medium) whose
  /// recorded latencies are all pre-freeze and fine.
  std::uint64_t max_commit_stall = 0;
};

struct SloReport {
  bool ok = false;
  /// False when the run submitted nothing: no budget is gradeable and
  /// the verdict is "inconclusive", which does NOT count as ok.
  bool conclusive = false;
  std::string unit;  ///< "steps" or "ns"

  // Measured numbers (also what the bench JSON rows carry).
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  double completed_fraction = 0.0;
  std::uint64_t route_p50 = 0, route_p99 = 0, route_max = 0;
  std::uint64_t ack_p99 = 0;
  std::uint64_t commit_p50 = 0, commit_p99 = 0, commit_p999 = 0,
                commit_max = 0;
  std::uint64_t route_probes = 0;
  std::uint64_t outage_total = 0, outage_longest = 0;
  double outage_fraction = 0.0;
  std::uint64_t outage_windows = 0;
  std::uint64_t commit_stall = 0;

  std::vector<std::string> violations;

  std::string summary() const;
};

/// Grade one finished run. `run_end` is the run's end time in the same
/// unit as the stats (for the commit-stall budget); the availability
/// tracker must already be finish()ed.
SloReport grade_slo(const ServiceStats& stats,
                    const AvailabilityTracker& availability,
                    const SloBudget& budget, const std::string& unit,
                    std::uint64_t run_end);

/// Type-erase into the conformance layer's joint-grading input.
core::SloSummary slo_summary(const SloReport& report);

}  // namespace tbwf::soak
