#include "soak/sim_service.hpp"

#include <algorithm>
#include <string>

#include "sim/env.hpp"
#include "util/assert.hpp"

namespace tbwf::soak {

SimLeaderService::SimLeaderService(sim::World& world, LeaderView view,
                                   SimServiceOptions options)
    : world_(world),
      view_(std::move(view)),
      options_(std::move(options)),
      client_state_(static_cast<std::size_t>(world.n())),
      log_(world.n()) {
  TBWF_ASSERT(view_ != nullptr, "leader view required");
  TBWF_ASSERT(options_.batch > 0, "batch must be positive");
  TBWF_ASSERT(options_.max_inflight >= options_.batch,
              "inflight window must fit one batch");
  if (options_.client_pids.empty()) {
    for (sim::Pid p = 0; p < world_.n(); ++p) clients_on_.push_back(p);
  } else {
    clients_on_ = options_.client_pids;
  }
}

void SimLeaderService::install() {
  TBWF_ASSERT(!installed_, "install called twice");
  installed_ = true;
  const int n = world_.n();
  for (sim::Pid p = 0; p < n; ++p) {
    const std::string suffix = std::to_string(p);
    tail_.push_back(world_.make_atomic<std::int64_t>("SvcTail" + suffix, 0));
    ack_.push_back(world_.make_atomic<std::int64_t>("SvcAck" + suffix, 0));
    commit_.push_back(
        world_.make_atomic<std::int64_t>("SvcCommit" + suffix, 0));
  }
  state_ = world_.make_atomic<std::int64_t>("SvcState", 0);

  for (const sim::Pid p : clients_on_) {
    world_.spawn(p, "svc-client",
                 [this](sim::SimEnv& env) { return client_task(env, *this); });
  }
  for (sim::Pid p = 0; p < n; ++p) {
    world_.spawn(p, "svc-server",
                 [this](sim::SimEnv& env) { return server_task(env, *this); });
  }
  world_.add_step_observer([this](sim::Step at, sim::Pid) {
    if (at % options_.sample_every == 0) availability_.observe(at, classify());
  });
}

ServiceStats SimLeaderService::stats() const {
  ServiceStats merged;
  for (const auto& c : client_state_) merged.merge(c.stats);
  return merged;
}

ServiceState SimLeaderService::classify() const {
  const int n = world_.n();
  bool any_self_leader = false;
  for (sim::Pid p = 0; p < n; ++p) {
    if (!world_.crashed(p) && view_(p).leader == p) any_self_leader = true;
  }
  if (!any_self_leader) return ServiceState::kNoLeader;
  for (sim::Pid p = 0; p < n; ++p) {
    if (world_.crashed(p)) continue;
    const sim::Pid target = view_(p).leader;
    if (target == omega::kNoLeader || target == p) continue;
    // A live process would route to a target that is crashed or does
    // not consider itself leader: its requests go to the wrong place.
    if (world_.crashed(target) || view_(target).leader != target) {
      return ServiceState::kWrongLeader;
    }
  }
  return ServiceState::kOk;
}

sim::Task SimLeaderService::client_task(sim::SimEnv& env,
                                        SimLeaderService& svc) {
  const sim::Pid self = env.pid();
  ClientState& cs = svc.client_state_[self];
  for (;;) {
    // Drain: watermarks only move the client's view forward -- a stale
    // deposed-leader write may regress the registers themselves.
    const std::int64_t commit_reg = co_await env.read(svc.commit_[self]);
    if (commit_reg > cs.commit_seen) cs.commit_seen = commit_reg;
    const std::int64_t ack_reg = co_await env.read(svc.ack_[self]);
    if (ack_reg > cs.ack_seen) cs.ack_seen = ack_reg;

    const sim::Step now = env.now();
    while (!cs.pending.empty() &&
           cs.pending.front().seq <= cs.commit_seen) {
      const Pending& req = cs.pending.front();
      cs.stats.commit.record(now - req.submitted_at);
      ++cs.stats.completed;
      cs.stats.last_commit_at = now;
      svc.log_.completions[self].push_back(now);
      cs.pending.pop_front();
    }
    for (Pending& req : cs.pending) {
      if (req.acked || req.seq > cs.ack_seen) continue;
      req.acked = true;
      cs.stats.ack.record(now - req.submitted_at);
    }

    const int batch = svc.options_.batch;
    if (static_cast<int>(cs.pending.size()) + batch <=
        svc.options_.max_inflight) {
      // Route: wait for a leader hint this client trusts. The hint buys
      // latency only -- delivery is via the tail register -- so an
      // untrusted or absent hint costs route time, never correctness.
      const sim::Step route_start = env.now();
      std::uint64_t probes = 0;
      if (svc.options_.route == RouteMode::kAdvice) {
        ++probes;
        while (svc.view_(self).leader == omega::kNoLeader) {
          co_await env.yield();
          ++probes;
        }
      } else {
        sim::Pid last = omega::kNoLeader;
        int streak = 0;
        for (;;) {
          const sim::Pid hint = svc.view_(self).leader;
          ++probes;
          if (hint != omega::kNoLeader && hint == last) {
            ++streak;
          } else {
            last = hint;
            streak = hint == omega::kNoLeader ? 0 : 1;
          }
          if (streak >= svc.options_.confirm_probes) break;
          co_await env.yield();
        }
      }
      cs.stats.route_probes += probes;
      cs.stats.route.record_n(env.now() - route_start,
                              static_cast<std::uint64_t>(batch));

      const sim::Step submitted_at = env.now();
      for (int i = 0; i < batch; ++i) {
        cs.pending.push_back({cs.next_seq++, submitted_at, false});
      }
      cs.stats.submitted += static_cast<std::uint64_t>(batch);
      svc.log_.started[self] += static_cast<std::uint64_t>(batch);
      co_await env.write(svc.tail_[self], cs.next_seq - 1);
    }

    for (int i = 0; i < svc.options_.pace; ++i) co_await env.yield();
  }
}

sim::Task SimLeaderService::server_task(sim::SimEnv& env,
                                        SimLeaderService& svc) {
  const sim::Pid self = env.pid();
  // Frame-local, so a restart or re-election rescans conservatively
  // from zero: re-acking is harmless (clients take monotone maxima) and
  // re-applying only over-counts the at-least-once state register.
  std::vector<std::int64_t> acked(static_cast<std::size_t>(env.n()), 0);
  std::vector<std::int64_t> committed(static_cast<std::size_t>(env.n()), 0);
  std::uint64_t round = 0;
  util::Counters& metrics = env.world().counters();
  const std::string fenced_key = "membership.fenced.p" + std::to_string(self);
  for (;;) {
    if (svc.view_(self).leader != self) {
      co_await env.yield();
      continue;
    }
    // Epoch fence: capture the view this round serves under. Before
    // every shared write below the round re-validates (epoch unchanged
    // && self still a member); a reconfiguration in between means this
    // leader may already be deposed in the new view, so the round is
    // abandoned and the write REJECTED, not trusted. Plain field reads
    // -- no co_await -- so a null/event-free director changes nothing.
    const std::uint32_t epoch_at =
        svc.membership_ != nullptr ? svc.membership_->epoch() : 0;
    const auto fenced = [&] {
      return svc.membership_ != nullptr &&
             (svc.membership_->epoch() != epoch_at ||
              !svc.membership_->member(self));
    };
    if (fenced()) {
      metrics.inc(fenced_key);
      co_await env.yield();
      continue;
    }
    ++round;
    if (svc.options_.repair_every > 0 &&
        round % static_cast<std::uint64_t>(svc.options_.repair_every) == 0) {
      // Repair: a deposed leader's stale late write can leave a commit
      // register BELOW this leader's committed[] view, which would
      // otherwise never be overwritten again -- the affected client
      // stalls at its inflight cap forever. Forgetting committed[]
      // forces one refresh write per client at a bounded cadence.
      std::fill(committed.begin(), committed.end(), 0);
    }

    bool abandoned = false;
    std::int64_t newly = 0;
    for (const sim::Pid q : svc.clients_on_) {
      if (svc.view_(self).leader != self) break;
      const std::int64_t tail = co_await env.read(svc.tail_[q]);
      if (tail <= acked[q]) continue;
      if (fenced()) {  // a view change landed mid-round: reject the write
        metrics.inc(fenced_key);
        abandoned = true;
        break;
      }
      newly += tail - acked[q];
      acked[q] = tail;
      co_await env.write(svc.ack_[q], tail);
    }
    if (abandoned) continue;

    if (newly > 0 && svc.view_(self).leader == self) {
      const std::int64_t state = co_await env.read(svc.state_);
      if (fenced()) {
        metrics.inc(fenced_key);
        continue;
      }
      co_await env.write(svc.state_, state + newly);
    }

    bool committed_any = false;
    for (const sim::Pid q : svc.clients_on_) {
      if (svc.view_(self).leader != self) break;
      if (committed[q] >= acked[q]) continue;
      if (fenced()) {
        metrics.inc(fenced_key);
        abandoned = true;
        break;
      }
      co_await env.write(svc.commit_[q], acked[q]);
      committed[q] = acked[q];
      committed_any = true;
    }
    if (abandoned) continue;

    if (newly == 0 && !committed_any) co_await env.yield();
  }
}

}  // namespace tbwf::soak
