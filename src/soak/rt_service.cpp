#include "soak/rt_service.hpp"

#include <algorithm>
#include <thread>

#include "registers/abort_policy.hpp"
#include "util/assert.hpp"

namespace tbwf::soak {

namespace {

void yield_for(std::uint64_t yields) {
  for (std::uint64_t i = 0; i < yields; ++i) std::this_thread::yield();
}

const registers::BoundedBackoff& pump_backoff() {
  static const registers::BoundedBackoff backoff{
      {.base = 1, .cap = 32, .free_retries = 4}};
  return backoff;
}

/// A clock-fault window edge can step a bound worker's clock BACKWARD
/// between the two reads of a latency sample; the interval spans the
/// step and means nothing, so it clamps to zero instead of wrapping to
/// ~2^64 and detonating the SLO percentiles. A no-op for honest clocks
/// (per-thread reads of the monotone source never regress).
std::uint64_t elapsed_ns(std::uint64_t from, std::uint64_t to) {
  return to >= from ? to - from : 0;
}

}  // namespace

RtLeaderService::RtLeaderService(int nthreads, RtServiceOptions options)
    : options_(std::move(options)),
      nthreads_(nthreads),
      // The elector reads time through the shared seam: identical to a
      // raw steady_clock when the calling thread is unbound, distorted
      // per the plan when the supervisor bound it to a FaultClock.
      elector_(options_.lease_term, &rt::FaultClock::read),
      calibrator_(
          {.alpha = 0.125,
           .multiplier = 32.0,
           .floor_ns = options_.term_floor_ns,
           .ceil_ns = options_.term_ceil_ns,
           .drift_margin_ppm = options_.drift_margin_ppm},
          static_cast<std::uint64_t>(options_.lease_term.count()) / 32),
      membership_(nthreads),
      state_(0),
      tails_(std::make_unique<
             util::CachelinePadded<std::atomic<std::int64_t>>[]>(
          static_cast<std::size_t>(nthreads))),
      acks_(std::make_unique<
            util::CachelinePadded<std::atomic<std::int64_t>>[]>(
          static_cast<std::size_t>(nthreads))),
      commits_(std::make_unique<
               util::CachelinePadded<std::atomic<std::int64_t>>[]>(
          static_cast<std::size_t>(nthreads))),
      slots_(static_cast<std::size_t>(nthreads)) {
  TBWF_ASSERT(options_.batch > 0, "batch must be positive");
  TBWF_ASSERT(options_.max_inflight >= options_.batch,
              "inflight window must fit one batch");
  elector_.set_calibrator(&calibrator_);
  for (int t = 0; t < nthreads; ++t) {
    // relaxed: pre-spawn initialization; the thread launch publishes it.
    tails_[t]->store(0, std::memory_order_relaxed);
    acks_[t]->store(0, std::memory_order_relaxed);
    commits_[t]->store(0, std::memory_order_relaxed);
    slots_[t].acked.assign(static_cast<std::size_t>(nthreads), 0);
    slots_[t].committed.assign(static_cast<std::size_t>(nthreads), 0);
  }
}

ServiceStats RtLeaderService::stats() const {
  ServiceStats merged;
  for (const auto& slot : slots_) merged.merge(slot.stats);
  return merged;
}

std::int64_t RtLeaderService::state_value() {
  // Bounded: under a permanently jammed medium every read aborts, and
  // diagnostics must not hang on it.
  for (int attempt = 0; attempt < 4096; ++attempt) {
    const auto v = state_.read();
    if (v.has_value()) return *v;
  }
  return -1;
}

void RtLeaderService::run_worker(rt::RtWorkerContext& ctx) {
  Slot& slot = slots_[ctx.tid()];
  // A dead incarnation may have been killed mid-stint; the monitor
  // already revoked its lease (on_restart), so just drop the role. Its
  // unapplied backlog is forgotten too -- the next leader's from-zero
  // rescan re-derives it from the tail counters.
  slot.role = Role::kFollower;
  slot.backlog = 0;
  slot.lost_elections = 0;
  // Server half first: after a rotation or kill, the next scheduled
  // thread must elect BEFORE its client half starts probing for an
  // owner, or every thread burns its route patience against a vacant
  // lease and the handover stretches into a milliseconds-long outage.
  while (!ctx.should_stop()) {
    server_pump(ctx, slot);
    if (ctx.should_stop()) break;
    client_pump(ctx, slot);
  }
}

bool RtLeaderService::route(rt::RtWorkerContext& ctx, Slot& slot) {
  constexpr std::uint32_t kNoOwner = rt::LeaseElector::kNoOwner;
  std::uint64_t probes = 0;
  bool routed = false;
  if (options_.route == RouteMode::kAdvice) {
    for (int i = 0; i < options_.route_patience && !ctx.should_stop();
         ++i) {
      ++probes;
      if (elector_.owner() != kNoOwner) {
        routed = true;
        break;
      }
      ctx.fault_point();
      std::this_thread::yield();
    }
  } else {
    std::uint32_t last = kNoOwner;
    int streak = 0;
    for (int i = 0; i < options_.route_patience && !ctx.should_stop();
         ++i) {
      ++probes;
      const std::uint32_t owner = elector_.owner();
      if (owner != kNoOwner && owner == last) {
        ++streak;
      } else {
        last = owner;
        streak = owner == kNoOwner ? 0 : 1;
      }
      if (streak >= options_.confirm_probes) {
        routed = true;
        break;
      }
      ctx.fault_point();
      std::this_thread::yield();
    }
  }
  slot.stats.route_probes += probes;
  return routed;
}

void RtLeaderService::client_pump(rt::RtWorkerContext& ctx, Slot& slot) {
  const std::uint32_t tid = ctx.tid();
  // Thinned: an idle pump takes ~200ns, so a fault_point every pump
  // floods the bounded trace ring with kStep events (the supervisor
  // logs one per 16 calls) and evicts the conformance suffix at full
  // soak scale. Every 8th pump still fires plan events within ~2us.
  if (++slot.pumps % 8 == 0) ctx.fault_point();

  // Drain: acquire pairs with the leader's release stores; the client's
  // view only moves forward (a deposed leader's stale late store may
  // regress the counters themselves).
  const std::int64_t commit_reg =
      commits_[tid]->load(std::memory_order_acquire);
  if (commit_reg > slot.commit_seen) slot.commit_seen = commit_reg;
  const std::int64_t ack_reg = acks_[tid]->load(std::memory_order_acquire);
  if (ack_reg > slot.ack_seen) slot.ack_seen = ack_reg;

  const std::uint64_t now = ctx.now_ns();
  std::uint64_t drained = 0;
  while (!slot.pending.empty() &&
         slot.pending.front().seq <= slot.commit_seen) {
    const Pending& req = slot.pending.front();
    slot.stats.commit.record(elapsed_ns(req.submitted_ns, now));
    ++slot.stats.completed;
    slot.stats.last_commit_at = now;
    slot.pending.pop_front();
    ++drained;
  }
  // Coalesce completion events to batch granularity: commits trickle in
  // a request or two per pump, and logging each dribble floods the
  // bounded trace ring (millions of kOpComplete events evict the
  // conformance suffix). A full batch or an empty window flushes.
  slot.undrained_log += drained;
  if (slot.undrained_log > 0 &&
      (slot.pending.empty() ||
       slot.undrained_log >= static_cast<std::uint64_t>(options_.batch))) {
    ctx.op_complete(slot.undrained_log);
    slot.undrained_log = 0;
  }
  for (Pending& req : slot.pending) {
    if (req.acked || req.seq > slot.ack_seen) continue;
    req.acked = true;
    slot.stats.ack.record(elapsed_ns(req.submitted_ns, now));
  }

  const int batch = options_.batch;
  if (static_cast<int>(slot.pending.size()) + batch >
      options_.max_inflight) {
    return;
  }
  const std::uint64_t route_start = ctx.now_ns();
  if (!route(ctx, slot)) return;  // leaderless; retry next pump
  slot.stats.route.record_n(elapsed_ns(route_start, ctx.now_ns()),
                            static_cast<std::uint64_t>(batch));

  const std::uint64_t submitted_at = ctx.now_ns();
  for (int i = 0; i < batch; ++i) {
    slot.pending.push_back({slot.next_seq++, submitted_at, false});
  }
  slot.stats.submitted += static_cast<std::uint64_t>(batch);
  ctx.op_start();
  // release: publishes the batch to the leader's acquire scan.
  tails_[tid]->store(slot.next_seq - 1, std::memory_order_release);
}

void RtLeaderService::server_pump(rt::RtWorkerContext& ctx, Slot& slot) {
  const std::uint32_t tid = ctx.tid();
  if (++slot.pumps % 8 == 0) ctx.fault_point();
  switch (slot.role) {
    case Role::kFollower: {
      // Only members of the current view compete for the lease. A
      // non-member keeps its client half (the leader serves every
      // tail); its server half idles until a later epoch re-admits it.
      if (!membership_.member(static_cast<int>(tid))) return;
      std::uint64_t token = 0;
      if (!elector_.try_lead(tid, &token)) {
        yield_for(pump_backoff().delay(slot.lost_elections++));
        return;
      }
      slot.lost_elections = 0;
      slot.token = token;
      slot.last_renew_ns = ctx.now_ns();
      slot.stint_begin_ns = slot.last_renew_ns;
      ctx.record(rt::RtEventKind::kLeaseAcquire, token);
      slot.role = Role::kLeader;
      // Conservative from-zero rescan (see header).
      std::fill(slot.acked.begin(), slot.acked.end(), 0);
      std::fill(slot.committed.begin(), slot.committed.end(), 0);
      slot.backlog = 0;
      return;
    }
    case Role::kLeader: {
      // Renew (same tenure, same token); a false return means the lease
      // expired and was stolen or revoked -- step down.
      if (!elector_.try_lead(tid, &slot.token)) {
        ctx.record(rt::RtEventKind::kStaleFenceBlocked);
        slot.role = Role::kFollower;
        return;
      }
      // Calibrate the lease term on the INTER-RENEWAL gap, not on op
      // latency: on a timesliced box the gap is dominated by how long
      // this thread goes unscheduled between pumps, which is exactly
      // what the term must outlast for the lease to read as held.
      {
        const std::uint64_t renewed_at = ctx.now_ns();
        if (slot.last_renew_ns != 0) {
          calibrator_.observe(renewed_at - slot.last_renew_ns);
        }
        slot.last_renew_ns = renewed_at;
      }
      ++slot.rounds_total;
      if (options_.repair_every > 0 &&
          slot.rounds_total %
                  static_cast<std::uint64_t>(options_.repair_every) ==
              0) {
        // Commit-watermark repair against stale deposed-leader stores;
        // same rationale as the sim server.
        std::fill(slot.committed.begin(), slot.committed.end(), 0);
      }

      std::int64_t newly = 0;
      for (int q = 0; q < nthreads_; ++q) {
        // acquire pairs with the client's release tail store.
        const std::int64_t tail =
            tails_[q]->load(std::memory_order_acquire);
        if (tail <= slot.acked[q]) continue;
        newly += tail - slot.acked[q];
        slot.acked[q] = tail;
        // release: the owning client acquires its ack watermark.
        acks_[q]->store(tail, std::memory_order_release);
      }
      slot.backlog += newly;

      if (slot.backlog > 0) {
        bool applied = false;
        for (int attempt = 0;
             attempt < options_.apply_attempts && !ctx.should_stop();
             ++attempt) {
          ctx.fault_point();
          const auto value = state_.read();
          if (!value.has_value()) {
            ctx.record(rt::RtEventKind::kAbort);
            yield_for(pump_backoff().delay(attempt));
            continue;
          }
          ctx.fault_point();  // mid-operation danger zone
          if (!elector_.validate(tid, slot.token)) {
            ctx.record(rt::RtEventKind::kStaleFenceBlocked);
            slot.role = Role::kFollower;
            return;
          }
          if (!state_.write(*value + slot.backlog)) {
            ctx.record(rt::RtEventKind::kAbort);
            yield_for(pump_backoff().delay(attempt));
            continue;
          }
          applied = true;
          break;
        }
        // Unapplied backlog (storm/jam window): keep it and retry next
        // pump. Commits must not outrun the state application.
        if (!applied) return;
        slot.backlog = 0;
      }

      for (int q = 0; q < nthreads_; ++q) {
        if (slot.committed[q] >= slot.acked[q]) continue;
        // release: the owning client acquires its commit watermark.
        commits_[q]->store(slot.acked[q], std::memory_order_release);
        slot.committed[q] = slot.acked[q];
      }

      if (ctx.now_ns() - slot.stint_begin_ns >= options_.tenure_ns) {
        slot.fence_at_release = elector_.fence();
        elector_.release(tid);
        ctx.record(rt::RtEventKind::kLeaseRelease);
        slot.role = Role::kRotating;
        slot.rotate_wait_begin_ns = ctx.now_ns();
      }
      return;
    }
    case Role::kRotating: {
      // Canonical-use rotation: wait until someone else has held the
      // lease (fence advanced) or a bounded solo timeout.
      if (elector_.fence() != slot.fence_at_release ||
          ctx.now_ns() - slot.rotate_wait_begin_ns >=
              options_.rotation_wait_ns) {
        slot.role = Role::kFollower;
      } else {
        std::this_thread::yield();
      }
      return;
    }
  }
}

}  // namespace tbwf::soak
