// Service-availability bookkeeping for the soak harness: a sampled
// record of whether the leader-routed service was reachable, collapsed
// into maximal outage windows (no-leader / wrong-leader intervals).
//
// The tracker is clock-agnostic: `at` is whatever monotone time unit
// the backend samples in (simulator steps, rt nanoseconds). Samples
// must arrive in non-decreasing order; a window opens at the first
// non-Ok sample, splits when the outage kind changes, and closes at
// the next Ok sample (or at finish()). Between samples the tracker
// assumes the state of the *previous* sample, so the sampling cadence
// bounds the measurement error, not the verdict's soundness.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace tbwf::soak {

enum class ServiceState : std::uint8_t {
  kOk = 0,
  /// No live process considers itself leader: requests cannot be
  /// served by anyone.
  kNoLeader = 1,
  /// Some live process would route to a target that is not a
  /// self-acknowledged leader (stale or crashed): its requests go to
  /// the wrong place. A "?" view is NOT an outage -- that client just
  /// waits, which shows up as route latency instead.
  kWrongLeader = 2,
};

inline const char* to_string(ServiceState s) {
  switch (s) {
    case ServiceState::kOk: return "ok";
    case ServiceState::kNoLeader: return "no-leader";
    case ServiceState::kWrongLeader: return "wrong-leader";
  }
  return "?";
}

/// One maximal run of a single non-Ok state: [from, to).
struct OutageWindow {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  ServiceState state = ServiceState::kOk;

  std::uint64_t length() const { return to - from; }
};

class AvailabilityTracker {
 public:
  void observe(std::uint64_t at, ServiceState s) {
    TBWF_ASSERT(!finished_, "observe after finish");
    TBWF_ASSERT(!any_ || at >= last_at_, "samples must be monotone");
    if (!any_) {
      any_ = true;
      first_at_ = at;
    }
    last_at_ = at;
    ++samples_;
    if (s == ServiceState::kOk) {
      if (open_) close(at);
      return;
    }
    if (open_ && cur_ != s) close(at);
    if (!open_) {
      open_ = true;
      cur_ = s;
      open_from_ = at;
    }
  }

  /// Seal the record at `end` (>= the last sample); an open outage is
  /// closed there. Idempotent only in the no-sample case; call once.
  void finish(std::uint64_t end) {
    TBWF_ASSERT(!finished_, "finish called twice");
    finished_ = true;
    end_ = any_ && end < last_at_ ? last_at_ : end;
    if (open_) close(end_);
  }

  const std::vector<OutageWindow>& windows() const { return windows_; }
  std::uint64_t samples() const { return samples_; }
  std::uint64_t total_unavailable() const { return total_; }

  std::uint64_t longest_outage() const {
    std::uint64_t worst = 0;
    for (const auto& w : windows_) {
      if (w.length() > worst) worst = w.length();
    }
    return worst;
  }

  /// Observed span: first sample to the finish() edge. 0 if nothing
  /// was ever sampled.
  std::uint64_t observed_span() const {
    return any_ ? end_ - first_at_ : 0;
  }

  double unavailable_fraction() const {
    const std::uint64_t span = observed_span();
    return span == 0 ? 0.0
                     : static_cast<double>(total_) /
                           static_cast<double>(span);
  }

  std::string summary() const {
    std::ostringstream out;
    out << windows_.size() << " outage window(s), " << total_
        << " unavailable over span " << observed_span() << " ("
        << samples_ << " samples)";
    for (const auto& w : windows_) {
      out << "\n    [" << w.from << ", " << w.to << ") "
          << to_string(w.state);
    }
    return out.str();
  }

 private:
  void close(std::uint64_t at) {
    // A same-sample flip (open and close at one instant) is a
    // zero-length window; keep it out of the record.
    if (at > open_from_) {
      windows_.push_back({open_from_, at, cur_});
      total_ += at - open_from_;
    }
    open_ = false;
  }

  bool any_ = false;
  bool open_ = false;
  bool finished_ = false;
  ServiceState cur_ = ServiceState::kOk;
  std::uint64_t open_from_ = 0;
  std::uint64_t first_at_ = 0;
  std::uint64_t last_at_ = 0;
  std::uint64_t end_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t total_ = 0;
  std::vector<OutageWindow> windows_;
};

}  // namespace tbwf::soak
