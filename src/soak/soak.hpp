// The long-haul soak harness: drive millions of leader-routed client
// requests through the full TBWF stack under sustained seed-replayable
// churn, and grade each run JOINTLY -- the paper's graded progress
// guarantees over the stable suffix (core conformance checkers) next
// to client-facing SLO budgets over the whole run (soak/slo.hpp). The
// two axes are independent by design: a run can pass progress yet blow
// its latency/availability budgets, or freeze behind a jammed medium
// the progress checker rightly excuses; the joint ServiceRunReport
// says which axis failed and why.
//
// Two backends:
//   run_sim_soak  deterministic coroutine simulator, Omega-Delta on
//                 atomic or abortable registers, FaultPlan churn
//                 (crash/restart storms, stutters, degraded channels
//                 with quarantine-heal cycles, candidacy flicker or
//                 epoch-based membership reconfiguration).
//                 Bit-replayable: one seed fixes the plan, the
//                 schedule, the trace digest and the joint verdict.
//   run_rt_soak   real threads under RtSupervisor, LeaseElector
//                 leadership, RtFaultPlan churn (kills, stalls, abort
//                 storms, degraded-register windows). Wall-clock real;
//                 the verdict is graded, not bit-replayable.
//
// Breach injectors for acceptance tests: blackout_churn_plan (sim)
// repeatedly crashes every process but one -- guaranteed no-leader
// windows that blow a cumulative-unavailability budget while the
// clean tail still passes progress; jammed_medium_plan (rt) jams
// the state cell permanently -- commits freeze and the commit-stall
// budget fails while the progress checker (correctly) excuses the
// jammed medium; view_thrash_plan / rt_view_thrash_plan thrash the
// spare seat's membership through the tail -- the epoch never stops
// bumping, the stable suffix never fits, and ONLY the TBWF axis fails
// while the SLO stays green. A clean run passes both axes.
#pragma once

#include <cstdint>
#include <string>

#include "core/conformance.hpp"
#include "rt/rt_faults.hpp"
#include "sim/faultplan.hpp"
#include "soak/availability.hpp"
#include "soak/rt_service.hpp"
#include "soak/sim_service.hpp"
#include "soak/slo.hpp"

namespace tbwf::soak {

// -- sim ------------------------------------------------------------------------

enum class SimBackend : std::uint8_t {
  kAtomic,     ///< Figure 3: atomic registers + activity monitors
  kAbortable,  ///< Figure 6: abortable registers (degradable channels)
};

const char* to_string(SimBackend backend);

/// How the soak churns the candidate set.
enum class MembershipMode : std::uint8_t {
  /// Every pid competes permanently; no view changes.
  kStatic,
  /// Compat shim for the old `membership_flicker = true` default: pid
  /// n-1 runs the canonical repeated-candidate join/leave cycle
  /// (Definition 6) with the historical 30000/30000 cadence. Candidacy
  /// flickers but the VIEW never changes -- no MembershipDirector is
  /// constructed -- so existing seeds replay bit-identically.
  kFlicker,
  /// Epoch-based reconfiguration: the generated FaultPlan carries
  /// membership events targeting the spare seat n-1, a
  /// MembershipDirector applies them at their steps, every candidate
  /// follows the current view (omega::membership_candidate), both the
  /// election backend and the service are fenced on it, and the
  /// conformance checker grades each epoch independently.
  kEpochChurn,
};

const char* to_string(MembershipMode mode);

/// Default budgets for a clean churned run of `run_steps`; breach tests
/// tighten individual budgets instead of relying on these.
SloBudget default_sim_budget(sim::Step run_steps);

struct SimSoakOptions {
  SimBackend backend = SimBackend::kAbortable;
  std::uint64_t seed = 1;
  int n = 4;
  /// Total simulated steps. The churn horizon must leave a stable tail
  /// long enough for the conformance suffix.
  sim::Step run_steps = 6000000;
  /// Churn window: generated fault-plan events land in
  /// [0.05 * horizon, 0.6 * horizon].
  sim::Step horizon = 1200000;
  /// Generate a FaultPlan from the seed (false = fault-free run).
  bool churn = true;
  /// Candidate-set churn mode. In kFlicker and kEpochChurn the spare
  /// pid n-1 runs no client: a seat that withdraws (or leaves the
  /// view) legitimately rests at LEADER == "?" (Definition 5), which
  /// would starve its router.
  MembershipMode membership = MembershipMode::kFlicker;
  /// Replaces the generated plan when set (must outlive the call).
  const sim::FaultPlan* plan_override = nullptr;
  SimServiceOptions service;
  SloBudget budget = default_sim_budget(6000000);
  core::ConformanceOptions conformance{.timely_bound = 64,
                                       .stabilization = 1200000,
                                       .max_completion_gap = 600000,
                                       .min_suffix = 500000};

  /// Smoke-test scale: ~1.2M steps, proportionally shrunk churn,
  /// conformance windows and budgets. Seconds per run.
  static SimSoakOptions quick(std::uint64_t seed,
                              SimBackend backend = SimBackend::kAbortable);
  /// Acceptance scale: >= 1M requests through the router.
  static SimSoakOptions full(std::uint64_t seed,
                             SimBackend backend = SimBackend::kAbortable);
};

struct SimSoakResult {
  sim::FaultPlan plan;
  ServiceStats stats;
  AvailabilityTracker availability;
  SloReport slo;
  core::ConformanceReport progress;
  core::ServiceRunReport joint;
  /// Trace digest: two runs with the same options are bit-identical.
  std::uint64_t trace_digest = 0;
  sim::Step run_end = 0;
  std::int64_t state_value = 0;

  std::string summary() const;
};

SimSoakResult run_sim_soak(const SimSoakOptions& options);

/// `blackouts` crash-almost-all events (pid n-1 survives to keep the
/// step-driven clock moving) starting at `first_at`, spaced `spacing`
/// apart, each restarted `outage` steps later: every blackout opens a
/// guaranteed no-leader window until the survivor elects itself, so a
/// tight cumulative unavailability budget fails while the clean tail
/// passes progress.
sim::FaultPlan blackout_churn_plan(std::uint64_t seed, int n, int blackouts,
                                   sim::Step first_at, sim::Step spacing,
                                   sim::Step outage);

/// View-thrash breach (sim): `flips` alternating leave/join events on
/// the spare seat n-1, starting at `first_at` and spaced `spacing`
/// apart. Run it with membership = kEpochChurn and a spacing that
/// carries the flips through the end of the run: every flip bumps the
/// epoch and extends the plan's last event, so the global stable
/// suffix never fits and progress fails as inconclusive ("stable
/// suffix too short") -- while the clients on seats 0..n-2 keep being
/// served and the SLO stays green. The breach that flips ONLY the
/// TBWF axis of the joint verdict.
sim::FaultPlan view_thrash_plan(std::uint64_t seed, int n, int flips,
                                sim::Step first_at, sim::Step spacing);

// -- rt -------------------------------------------------------------------------

/// Default budgets for a clean churned rt run of `run_ns` wall time.
/// Generous: a one-core box timeslices multi-ms gaps into everything.
SloBudget default_rt_budget(std::uint64_t run_ns);

struct RtSoakOptions {
  std::uint64_t seed = 1;
  int nthreads = 4;
  /// Churn window in ns; run_for = horizon_ns + extra_run_ns so the
  /// stable suffix comfortably exceeds the conformance minimum.
  std::uint64_t horizon_ns = 24000000;
  std::uint64_t extra_run_ns = 8000000;
  bool churn = true;
  /// Adds generated membership churn (epoch-based reconfiguration) on
  /// the spare seat nthreads-1 to the fault plan: leave/join cycles or
  /// one-shot replaces, fired from the supervisor's monitor thread
  /// through RtLeaderService::on_membership -- the departing seat's
  /// lease is revoked so its stale token is fence-rejected
  /// (kStaleFenceBlocked), and the conformance checker grades each
  /// epoch independently.
  bool membership_churn = false;
  /// Adds generated clock faults (skew / drift / jumps / freezes on
  /// individual seats, applied through the supervisor's FaultClock) to
  /// the fault plan, and arms the service's drift-margin guard so a
  /// fast-clocked leaseholder undershoots its claimed term. Clock
  /// draws append after every other family: plans without them are
  /// unchanged draw for draw. Conformance grades the faulted seats as
  /// clock-degraded (excused, never timely) -- the sweep asserts the
  /// losses are exactly the excused ones.
  bool clock_faults = false;
  /// Replaces the generated plan when set (must outlive the call).
  const rt::RtFaultPlan* plan_override = nullptr;
  RtServiceOptions service;
  SloBudget budget = default_rt_budget(32000000);
  core::RtConformanceOptions conformance{.timely_bound_ns = 2500000,
                                         .stabilization_ns = 3000000,
                                         .min_suffix_ns = 4000000,
                                         .max_completion_gap_ns = 12000000};
  /// Availability sampler period (dedicated thread polling
  /// elector.owner(); rt availability distinguishes only
  /// ok / no-leader -- real threads have no per-client leader views, so
  /// wrong-leader is undefined here).
  std::uint64_t sample_period_ns = 50000;
  std::size_t trace_capacity = 1 << 18;

  static RtSoakOptions quick(std::uint64_t seed);
  /// Acceptance scale: seconds of wall time, >= 1M requests.
  static RtSoakOptions full(std::uint64_t seed);
};

struct RtSoakResult {
  rt::RtFaultPlan plan;
  ServiceStats stats;
  AvailabilityTracker availability;
  SloReport slo;
  core::RtConformanceReport progress;
  core::ServiceRunReport joint;
  std::uint64_t run_end_ns = 0;
  std::int64_t state_value = 0;

  std::string summary() const;
};

RtSoakResult run_rt_soak(const RtSoakOptions& options);

/// Permanent Jam on the shared state cell from `from_ns`: commits
/// freeze, the commit-stall budget fails, and the progress checker
/// excuses the jammed medium (medium_jammed) -- the canonical
/// "SLO catches what progress conformance must not" breach.
rt::RtFaultPlan jammed_medium_plan(std::uint64_t seed,
                                   std::uint64_t from_ns);

/// View-thrash breach (rt twin of view_thrash_plan): `flips`
/// alternating leave/join events on the spare seat nthreads-1, spaced
/// `spacing_ns` apart from `first_ns`. With a spacing that carries the
/// thrash through the end of the run the global stable suffix never
/// fits, so progress fails as inconclusive while the other seats keep
/// committing and the SLO stays green -- only the TBWF axis flips.
rt::RtFaultPlan rt_view_thrash_plan(std::uint64_t seed, int nthreads,
                                    int flips, std::uint64_t first_ns,
                                    std::uint64_t spacing_ns);

/// Clock-fault breach (the clock twin of rt_view_thrash_plan):
/// `windows` alternating-sign skew windows on the spare seat
/// nthreads-1, spaced `spacing_ns` apart from `first_ns`. With a
/// spacing that carries the flapping through the end of the run the
/// global stable suffix never fits, so progress fails as inconclusive
/// ("stable suffix too short") while the well-clocked seats keep
/// serving and the SLO stays green -- only the TBWF axis flips, and
/// every timeliness loss is the excused clock-degraded kind.
rt::RtFaultPlan rt_clock_breach_plan(std::uint64_t seed, int nthreads,
                                     int windows, std::uint64_t first_ns,
                                     std::uint64_t spacing_ns);

}  // namespace tbwf::soak
