// HDR-style log-bucketed latency histogram for the soak harness.
//
// util::Histogram keeps every sample exactly -- right for laptop-scale
// experiments, hopeless for a soak recording millions of per-request
// phase latencies. LogHistogram trades exactness for O(1) memory:
// values below 2^(kSubBucketBits + 1) are recorded exactly (one bucket
// per value); above that, each power-of-two tier splits into
// 2^kSubBucketBits sub-buckets, so a recorded value is off by at most
// 1/2^kSubBucketBits (~3%) of itself -- the HdrHistogram bucket scheme.
// Quantiles report the inclusive upper bound of the bucket the rank
// falls in (clamped to the exact maximum seen), which makes them
// deterministic and conservative: a quantile never under-reports.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace tbwf::soak {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 sub-buckets per power-of-two tier,
  /// giving <= 1/32 relative bucket width above the exact range.
  static constexpr int kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// Values < 2 * kSubBuckets land in a bucket of width 1 (exact).
  static constexpr std::uint64_t kExactMax = 2 * kSubBuckets - 1;
  /// Highest tier shift for a 64-bit value: bit_width(v) <= 64, so
  /// shift <= 64 - kSubBucketBits - 1; indices reach
  /// kSubBuckets * shift + 2 * kSubBuckets - 1.
  static constexpr std::size_t kBuckets =
      kSubBuckets * (64 - kSubBucketBits + 1);

  /// Bucket index of a value; monotone non-decreasing in v.
  static std::size_t index_of(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int shift = std::bit_width(v) - kSubBucketBits - 1;
    const std::uint64_t sub = v >> shift;  // in [kSubBuckets, 2*kSubBuckets)
    return static_cast<std::size_t>(kSubBuckets) * shift +
           static_cast<std::size_t>(sub);
  }

  /// Smallest value mapped to bucket i.
  static std::uint64_t bucket_lower(std::size_t i) {
    if (i < kSubBuckets) return i;
    const int shift = static_cast<int>(i / kSubBuckets) - 1;
    const std::uint64_t sub = i % kSubBuckets + kSubBuckets;
    return sub << shift;
  }

  /// Largest value mapped to bucket i (inclusive).
  static std::uint64_t bucket_upper(std::size_t i) {
    if (i < kSubBuckets) return i;
    const int shift = static_cast<int>(i / kSubBuckets) - 1;
    const std::uint64_t sub = i % kSubBuckets + kSubBuckets;
    return ((sub + 1) << shift) - 1;
  }

  void record(std::uint64_t v) { record_n(v, 1); }

  /// Record `n` samples of value v (a routed batch shares one measured
  /// route latency; recording it per request keeps quantiles weighted).
  void record_n(std::uint64_t v, std::uint64_t n) {
    if (n == 0) return;
    const std::size_t i = index_of(v);
    if (counts_.empty()) counts_.assign(kBuckets, 0);
    counts_[i] += n;
    total_ += n;
    sum_ += v * n;
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const LogHistogram& other) {
    if (other.total_ == 0) return;
    if (counts_.empty()) counts_.assign(kBuckets, 0);
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return total_; }
  bool empty() const { return total_ == 0; }
  std::uint64_t min() const { return total_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return total_ == 0 ? 0 : max_; }
  double mean() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(total_);
  }

  /// Conservative quantile, q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(q * count)-th sample, clamped to the exact max.
  /// 0 on an empty histogram.
  std::uint64_t quantile(double q) const {
    if (total_ == 0) return 0;
    if (q <= 0.0) return min_;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(total_) + 0.9999999);
    if (rank < 1) rank = 1;
    if (rank > total_) rank = total_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) {
        const std::uint64_t upper = bucket_upper(i);
        return upper < max_ ? upper : max_;
      }
    }
    return max_;  // unreachable: total_ > 0 implies the loop hits rank
  }

  std::uint64_t p50() const { return quantile(0.50); }
  std::uint64_t p90() const { return quantile(0.90); }
  std::uint64_t p99() const { return quantile(0.99); }
  std::uint64_t p999() const { return quantile(0.999); }

  std::string summary() const {
    std::ostringstream out;
    out << "n=" << total_;
    if (total_ > 0) {
      out << " p50=" << p50() << " p99=" << p99() << " p999=" << p999()
          << " max=" << max_;
    }
    return out.str();
  }

 private:
  /// Lazily sized: a default-constructed histogram costs nothing until
  /// the first sample (rt keeps one per phase per thread slot).
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace tbwf::soak
