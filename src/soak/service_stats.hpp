// Per-client request accounting for the leader-service soak: one
// latency histogram per request phase plus throughput tallies. Kept
// per client (sim) / per thread slot (rt) and merged quiescently.
//
// Phase semantics (all latencies in the backend's time unit):
//   route   batch generation -> a leader hint this client trusts
//           (advice mode: first hint; probe mode: confirmed hint);
//   ack     request submission -> the leader's ack watermark covers it
//           (recorded only when the ack is observed before the commit
//           -- a commit subsumes its ack);
//   commit  request submission -> the commit watermark covers it (the
//           client-visible completion latency).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "soak/latency_histogram.hpp"

namespace tbwf::soak {

/// How a client turns leadership output into a routing decision -- the
/// advice-mode ablation axis shared by both backends.
enum class RouteMode : std::uint8_t {
  /// Trust the first live leader hint (timeliness advice).
  kAdvice,
  /// Demand `confirm_probes` consecutive identical hints before
  /// trusting one; each probe costs a local step / yield.
  kProbe,
};

inline const char* to_string(RouteMode mode) {
  switch (mode) {
    case RouteMode::kAdvice: return "advice";
    case RouteMode::kProbe: return "probe";
  }
  return "?";
}

struct ServiceStats {
  LogHistogram route;
  LogHistogram ack;
  LogHistogram commit;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  /// Leadership probes spent routing; the advice-mode ablation's
  /// second measured delta next to route latency.
  std::uint64_t route_probes = 0;
  /// Time of the most recent commit observation (0 = none): a frozen
  /// service shows up as a large run_end - last_commit_at stall even
  /// when every pre-freeze latency was fine.
  std::uint64_t last_commit_at = 0;

  void merge(const ServiceStats& other) {
    route.merge(other.route);
    ack.merge(other.ack);
    commit.merge(other.commit);
    submitted += other.submitted;
    completed += other.completed;
    route_probes += other.route_probes;
    if (other.last_commit_at > last_commit_at) {
      last_commit_at = other.last_commit_at;
    }
  }

  std::string summary() const {
    std::ostringstream out;
    out << "submitted=" << submitted << " completed=" << completed
        << " probes=" << route_probes;
    out << "\n    route:  " << route.summary();
    out << "\n    ack:    " << ack.summary();
    out << "\n    commit: " << commit.summary();
    return out.str();
  }
};

}  // namespace tbwf::soak
