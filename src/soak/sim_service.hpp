// SimLeaderService: the leader-routed request service the soak harness
// drives on the simulator, promoted out of examples/leader_service.cpp.
//
// Every client pid runs a durable client sub-task: it generates request
// batches, ROUTES each batch by consulting its local Omega-Delta LEADER
// output (advice mode trusts the first non-"?" hint; probe mode demands
// `confirm_probes` consecutive identical hints, paying one local step
// per probe), submits by bumping its single-writer tail register, and
// later observes the leader's ack and commit watermarks to complete
// requests. Every pid also runs a server sub-task that serves only
// while its own LEADER output names itself: it scans client tails,
// acknowledges, applies the new requests to the shared state register,
// and publishes commit watermarks.
//
// Delivery is through the shared registers, so the routing hint buys
// LATENCY, not correctness: a client with a stale or absent hint just
// waits (route phase) while the tail it already wrote stays servable by
// whoever actually leads. Churn shows up exactly where the SLO looks:
// route stalls under "?" views, commit stalls across leader handovers,
// and no-leader/wrong-leader outage windows in the availability record.
//
// Crash behavior: client bookkeeping lives in member structs, so a
// crashed-and-restarted client resumes its pending window (a durable
// client); server bookkeeping lives in the coroutine frame, so a new or
// re-elected leader rescans conservatively from zero. A deposed
// leader's stale late write can regress an ack/commit register; clients
// take monotone maxima, and the server repairs commit watermarks every
// `repair_every` serving rounds by resetting its local committed[] view
// (bounded self-heal; see server_task).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/tbwf_object.hpp"
#include "omega/omega.hpp"
#include "sim/membership.hpp"
#include "sim/task.hpp"
#include "sim/types.hpp"
#include "sim/world.hpp"
#include "soak/availability.hpp"
#include "soak/service_stats.hpp"

namespace tbwf::sim {
class SimEnv;
}  // namespace tbwf::sim

namespace tbwf::soak {

struct SimServiceOptions {
  RouteMode route = RouteMode::kProbe;
  /// Probe-mode confirmation threshold (advice mode ignores it).
  int confirm_probes = 3;
  /// Requests per routed batch.
  int batch = 8;
  /// Max pending requests per client; submission pauses at the cap so a
  /// dead service shows up as a commit stall, not unbounded memory.
  int max_inflight = 64;
  /// Local pacing steps between client iterations.
  int pace = 2;
  /// Serving rounds between commit-watermark repair scans (0 = never).
  int repair_every = 64;
  /// Availability sampling period in steps.
  sim::Step sample_every = 64;
  /// Pids that run a client (empty = every pid). Keep never-candidates
  /// clientless: Definition 5 drives their LEADER view to "?", so their
  /// router would starve by design.
  std::vector<sim::Pid> client_pids;
};

class SimLeaderService {
 public:
  /// Reads pid p's Omega-Delta interface; must outlive the world run
  /// (both backends' io(p) accessors qualify).
  using LeaderView = std::function<const omega::OmegaIO&(sim::Pid)>;

  SimLeaderService(sim::World& world, LeaderView view,
                   SimServiceOptions options);

  /// Create the service registers, spawn a server on every pid and a
  /// client on every client pid, and attach the availability sampler.
  /// Call once, before the world runs.
  void install();

  const SimServiceOptions& options() const { return options_; }
  const std::vector<sim::Pid>& client_pids() const { return clients_on_; }

  /// Epoch-fence the server half against reconfiguration: a serving
  /// round captures the director's epoch when it observes leadership
  /// and re-validates (same epoch && still a member) before EVERY
  /// shared write; on mismatch it abandons the round and bumps the
  /// world counter "membership.fenced.p<i>". A leader removed by a
  /// view change that wakes up late therefore lands at most the one
  /// write already in flight at the boundary (check passed, write not
  /// yet executed); every later write re-validates and is rejected.
  /// Null (the default) keeps the static group. The director must
  /// outlive the run; set before install().
  void set_membership(const sim::MembershipDirector* director) {
    membership_ = director;
  }
  const sim::MembershipDirector* membership() const { return membership_; }

  /// Per-request issue/completion log for the conformance checker.
  const core::OpLog& log() const { return log_; }

  /// Merged request statistics across all clients.
  ServiceStats stats() const;

  /// Seal the availability record at `run_end`; call once, after the
  /// world runs.
  void finish(sim::Step run_end) { availability_.finish(run_end); }
  const AvailabilityTracker& availability() const { return availability_; }

  /// Instantaneous service state (the availability sampler's probe).
  ServiceState classify() const;

  /// Final shared-state value (diagnostics). Call after the world runs.
  std::int64_t state_value() const { return world_.peek(state_); }

 private:
  struct Pending {
    std::int64_t seq = 0;
    sim::Step submitted_at = 0;
    bool acked = false;
  };

  /// Survives crashes: the client is durable, its server-side state
  /// (tail register) is too, so a restart resumes the pending window.
  struct ClientState {
    std::int64_t next_seq = 1;
    std::int64_t ack_seen = 0;
    std::int64_t commit_seen = 0;
    std::deque<Pending> pending;
    ServiceStats stats;
  };

  static sim::Task client_task(sim::SimEnv& env, SimLeaderService& svc);
  static sim::Task server_task(sim::SimEnv& env, SimLeaderService& svc);

  sim::World& world_;
  LeaderView view_;
  SimServiceOptions options_;
  std::vector<sim::Pid> clients_on_;
  const sim::MembershipDirector* membership_ = nullptr;
  bool installed_ = false;

  std::vector<sim::AtomicReg<std::int64_t>> tail_;
  std::vector<sim::AtomicReg<std::int64_t>> ack_;
  std::vector<sim::AtomicReg<std::int64_t>> commit_;
  sim::AtomicReg<std::int64_t> state_;

  std::vector<ClientState> client_state_;
  core::OpLog log_;
  AvailabilityTracker availability_;
};

}  // namespace tbwf::soak
