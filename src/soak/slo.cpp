#include "soak/slo.hpp"

#include <sstream>

namespace tbwf::soak {

namespace {

void check_latency(std::vector<std::string>& violations,
                   const char* phase, const char* which,
                   std::uint64_t measured, std::uint64_t budget,
                   const std::string& unit) {
  if (budget == 0 || measured <= budget) return;
  std::ostringstream out;
  out << phase << " " << which << " " << measured << " " << unit
      << " exceeds budget " << budget << " " << unit;
  violations.push_back(out.str());
}

}  // namespace

SloReport grade_slo(const ServiceStats& stats,
                    const AvailabilityTracker& availability,
                    const SloBudget& budget, const std::string& unit,
                    std::uint64_t run_end) {
  SloReport r;
  r.unit = unit;
  r.submitted = stats.submitted;
  r.completed = stats.completed;
  r.completed_fraction =
      stats.submitted == 0
          ? 0.0
          : static_cast<double>(stats.completed) /
                static_cast<double>(stats.submitted);
  r.route_p50 = stats.route.p50();
  r.route_p99 = stats.route.p99();
  r.route_max = stats.route.max();
  r.ack_p99 = stats.ack.p99();
  r.commit_p50 = stats.commit.p50();
  r.commit_p99 = stats.commit.p99();
  r.commit_p999 = stats.commit.p999();
  r.commit_max = stats.commit.max();
  r.route_probes = stats.route_probes;
  r.outage_total = availability.total_unavailable();
  r.outage_longest = availability.longest_outage();
  r.outage_fraction = availability.unavailable_fraction();
  r.outage_windows = availability.windows().size();
  r.commit_stall = run_end > stats.last_commit_at
                       ? run_end - stats.last_commit_at
                       : 0;

  if (stats.submitted == 0) {
    // Nothing was ever asked of the service; no budget is gradeable.
    r.conclusive = false;
    r.ok = false;
    r.violations.push_back(
        "inconclusive: no requests were submitted (the SLO grades "
        "nothing)");
    return r;
  }
  r.conclusive = true;

  if (stats.completed == 0) {
    std::ostringstream out;
    out << "all " << stats.submitted << " submitted requests failed "
        << "(none committed)";
    r.violations.push_back(out.str());
  }

  // Latency budgets are graded over completed requests only; the
  // all-failed and stall checks cover what never completed.
  if (stats.completed > 0) {
    check_latency(r.violations, "route", "p99", r.route_p99,
                  budget.route_p99, unit);
    check_latency(r.violations, "ack", "p99", r.ack_p99, budget.ack_p99,
                  unit);
    check_latency(r.violations, "commit", "p99", r.commit_p99,
                  budget.commit_p99, unit);
    check_latency(r.violations, "commit", "p999", r.commit_p999,
                  budget.commit_p999, unit);
  }

  if (budget.max_unavailable_fraction >= 0.0 &&
      r.outage_fraction > budget.max_unavailable_fraction) {
    std::ostringstream out;
    out << "cumulative unavailability " << r.outage_total << " " << unit
        << " (" << r.outage_fraction * 100.0 << "% of span) exceeds "
        << budget.max_unavailable_fraction * 100.0 << "% budget across "
        << r.outage_windows << " window(s)";
    r.violations.push_back(out.str());
  }
  if (budget.max_outage > 0 && r.outage_longest > budget.max_outage) {
    std::ostringstream out;
    out << "longest outage window " << r.outage_longest << " " << unit
        << " exceeds budget " << budget.max_outage << " " << unit;
    r.violations.push_back(out.str());
  }
  if (budget.min_completed_fraction >= 0.0 &&
      r.completed_fraction < budget.min_completed_fraction) {
    std::ostringstream out;
    out << "completed fraction " << r.completed_fraction << " ("
        << r.completed << "/" << r.submitted << ") below budget "
        << budget.min_completed_fraction;
    r.violations.push_back(out.str());
  }
  if (budget.max_commit_stall > 0 &&
      r.commit_stall > budget.max_commit_stall) {
    std::ostringstream out;
    out << "final commit stall " << r.commit_stall << " " << unit
        << " (no commit observed since "
        << (stats.last_commit_at == 0 ? "the run started"
                                      : "t=" + std::to_string(
                                            stats.last_commit_at))
        << ") exceeds budget " << budget.max_commit_stall << " " << unit;
    r.violations.push_back(out.str());
  }

  r.ok = r.violations.empty();
  return r;
}

std::string SloReport::summary() const {
  std::ostringstream out;
  out << "slo: "
      << (ok ? "OK" : (conclusive ? "VIOLATED" : "INCONCLUSIVE"));
  out << "\n  requests: " << completed << "/" << submitted
      << " completed (" << completed_fraction * 100.0 << "%), "
      << route_probes << " route probes";
  out << "\n  route (" << unit << "): p50=" << route_p50
      << " p99=" << route_p99 << " max=" << route_max;
  out << "\n  ack p99=" << ack_p99 << " commit: p50=" << commit_p50
      << " p99=" << commit_p99 << " p999=" << commit_p999
      << " max=" << commit_max;
  out << "\n  outages: " << outage_windows << " window(s), total "
      << outage_total << " (" << outage_fraction * 100.0
      << "% of span), longest " << outage_longest
      << "; final commit stall " << commit_stall;
  for (const auto& v : violations) out << "\n  SLO VIOLATION: " << v;
  return out.str();
}

core::SloSummary slo_summary(const SloReport& report) {
  core::SloSummary s;
  s.checked = true;
  s.ok = report.ok;
  s.verdict = report.ok
                  ? "SLO-OK"
                  : (report.conclusive ? "SLO-VIOLATED"
                                       : "SLO-INCONCLUSIVE");
  s.violations = report.violations;
  return s;
}

}  // namespace tbwf::soak
