#include "verify/oracle_result.hpp"

#include <sstream>

namespace tbwf::verify {

const char* to_string(LinVerdict verdict) {
  switch (verdict) {
    case LinVerdict::kLinearizable:  return "LINEARIZABLE";
    case LinVerdict::kViolation:     return "VIOLATION";
    case LinVerdict::kResourceLimit: return "RESOURCE_LIMIT";
  }
  return "?";
}

std::string OracleResult::summary() const {
  std::ostringstream out;
  out << to_string(verdict) << " ops=" << ops << " (required=" << required
      << " optional=" << optional << " forbidden=" << forbidden
      << ") states=" << states_explored << " memo_hits=" << memo_hits;
  if (!witness.empty()) out << "\n  witness: " << witness;
  return out.str();
}

}  // namespace tbwf::verify
