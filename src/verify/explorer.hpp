// Bounded-depth systematic schedule explorer (stateless model checking
// for the coroutine simulator).
//
// The explorer owns the scheduling decisions of a World run: it replays
// a chosen pid prefix through the Schedule seam, extends it one step at
// a time, and backtracks over untried choices -- a DFS over the tree of
// interleavings up to `max_depth` steps. Three reductions keep the tree
// tractable:
//
//   * sleep sets (Godefroid), keyed on register-access independence:
//     after exploring pid p at a node, p "sleeps" in the sibling
//     branches until some step conflicts with p's next step (same
//     register, at least one write, neither side inert). Atomic-register
//     invocation halves are inert -- an atomic outcome never depends on
//     overlap -- so only effectful accesses wake sleepers. Sound because
//     a sleeping process takes no step, so its recorded next accesses
//     stay valid.
//
//   * state-hash pruning: each node is fingerprinted (harness state via
//     ExploredRun::fingerprint + World::process_signature per pid); a
//     node whose fingerprint was already expanded with at least as much
//     remaining depth is cut. Best-effort: the fingerprint covers shared
//     registers, harness object internals and pending-op signatures, but
//     not every buffered coroutine local -- disable via
//     ExplorerOptions::state_pruning for exact (slower) exploration. The
//     mutation suite (tests/verify_mutation_test.cpp) is the empirical
//     evidence that the default configuration catches real bugs.
//
//   * optional preemption bounding (Musuvathi/Qadeer): branches that
//     switch away from a still-runnable process more than
//     `max_preemptions` times are cut.
//
// Every completed run (one DFS leaf) is handed to ExploredRun::check();
// a non-empty verdict stops the search, and the violating schedule is
// minimized to its shortest failing prefix and packaged as a replayable
// CounterexampleArtifact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/schedule.hpp"
#include "sim/world.hpp"
#include "verify/artifact.hpp"

namespace tbwf::verify {

/// One run under the explorer's control. The factory contract: the
/// World is constructed with the schedule the factory receives and with
/// WorldOptions::track_accesses = true, and the run is a deterministic
/// function of (schedule, seed) -- no wall-clock, no global state.
class ExploredRun {
 public:
  virtual ~ExploredRun() = default;
  virtual sim::World& world() = 0;
  /// WorldOptions::seed the run was built with (artifact metadata).
  virtual std::uint64_t seed() const { return 0; }
  /// Digest of all verification-relevant state beyond what the World
  /// itself fingerprints: register contents, object internals, history
  /// fates. Called after every step when state pruning is on.
  virtual std::uint64_t fingerprint() const = 0;
  /// End-of-run safety verdict: empty = clean, otherwise a one-line
  /// description of the violation (e.g. the linearizability witness).
  virtual std::string check() = 0;
  /// Free-text detail for the counterexample artifact (history dump).
  virtual std::string describe() const { return {}; }
};

using RunFactory =
    std::function<std::unique_ptr<ExploredRun>(std::unique_ptr<sim::Schedule>)>;

struct ExplorerOptions {
  /// Name stamped on counterexample artifacts.
  std::string name = "explore";
  /// DFS depth bound (steps per run).
  std::size_t max_depth = 48;
  /// Max context switches away from a runnable process; < 0 = unbounded.
  int max_preemptions = -1;
  /// Budget on complete runs (DFS leaves) before giving up.
  std::uint64_t max_runs = 1u << 20;
  bool sleep_sets = true;
  bool state_pruning = true;
  /// Shrink a violating schedule to its shortest failing prefix.
  bool minimize = true;
};

struct ExploreStats {
  std::uint64_t runs = 0;             ///< complete runs (DFS leaves)
  std::uint64_t steps = 0;            ///< world steps incl. replays
  std::uint64_t sleep_skips = 0;      ///< choices cut by sleep sets
  std::uint64_t preemption_skips = 0; ///< choices cut by the bound
  std::uint64_t state_prunes = 0;     ///< nodes cut by fingerprint reuse
  std::uint64_t distinct_states = 0;  ///< fingerprints seen
  bool run_budget_exhausted = false;  ///< stopped by max_runs, not coverage

  std::string summary() const;
};

struct ExploreResult {
  bool violation_found = false;
  CounterexampleArtifact artifact;  ///< valid iff violation_found
  ExploreStats stats;

  /// True iff the bounded space was fully explored and came back clean.
  bool clean() const {
    return !violation_found && !stats.run_budget_exhausted;
  }
  std::string summary() const;
};

class Explorer {
 public:
  explicit Explorer(RunFactory factory, ExplorerOptions options = {});

  ExploreResult explore();

 private:
  void minimize_artifact(CounterexampleArtifact& artifact,
                         ExploreStats& stats);

  RunFactory factory_;
  ExplorerOptions options_;
};

}  // namespace tbwf::verify
